// Package repro is a fault-tolerant CORBA-style distributed object system
// in pure Go: a reproduction of the infrastructure behind "Lessons Learned
// in Building a Fault-Tolerant CORBA System" (DSN 2002) — the Eternal /
// FT-CORBA line of work.
//
// The public API is a facade over the internal subsystems:
//
//   - NewDomain builds an FT domain: a simulated network of nodes, each
//     running a Totem-style total-order group communication endpoint and a
//     replication engine, plus a Replication Manager (the FT-CORBA
//     PropertyManager + ObjectGroupManager + GenericFactory).
//   - Servants implement application objects; the Replication Manager
//     places replicas on nodes via registered factories and publishes
//     IOGRs.
//   - Proxies issue invocations that are totally ordered, duplicate-
//     suppressed, and transparently failed over. Replication styles:
//     STATELESS, ACTIVE, ACTIVE_WITH_VOTING, WARM_PASSIVE, COLD_PASSIVE.
//   - Fault injection (crash, partition, remerge) is available on the
//     domain for testing and experiments.
//
// See examples/quickstart for a complete program and DESIGN.md for the
// architecture.
package repro

import (
	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/ior"
	"repro/internal/orb"
	"repro/internal/replication"
)

// Domain is a running fault-tolerance domain (see internal/core).
type Domain = core.Domain

// Options configures NewDomain.
type Options = core.Options

// Node bundles one host's endpoints.
type Node = core.Node

// NewDomain builds and starts an FT domain.
func NewDomain(opts Options) (*Domain, error) { return core.NewDomain(opts) }

// Properties are FT-CORBA replication properties.
type Properties = ftcorba.Properties

// Factory creates fresh servant instances for replica placement.
type Factory = ftcorba.Factory

// ReplicationManager administers object groups.
type ReplicationManager = ftcorba.ReplicationManager

// Style selects a replication style.
type Style = replication.Style

// Replication styles.
const (
	Stateless        = replication.Stateless
	Active           = replication.Active
	ActiveWithVoting = replication.ActiveWithVoting
	WarmPassive      = replication.WarmPassive
	ColdPassive      = replication.ColdPassive
)

// Membership styles.
const (
	MembershipInfrastructure = ftcorba.MembershipInfrastructure
	MembershipApplication    = ftcorba.MembershipApplication
)

// Servant is the application object interface.
type Servant = orb.Servant

// Checkpointable lets the infrastructure capture/restore servant state.
type Checkpointable = orb.Checkpointable

// Updatable adds incremental (postimage) state updates.
type Updatable = orb.Updatable

// Invocation carries one request through dispatch.
type Invocation = orb.Invocation

// UserException is an application-level exception.
type UserException = orb.UserException

// MethodServant assembles a servant from a method table.
type MethodServant = orb.MethodServant

// NewMethodServant creates an empty method-table servant.
func NewMethodServant(repoID string) *MethodServant { return orb.NewMethodServant(repoID) }

// Proxy invokes an object group.
type Proxy = replication.Proxy

// GroupRef names a target group.
type GroupRef = replication.GroupRef

// FulfillmentMapper customizes partition-reconciliation replay.
type FulfillmentMapper = replication.FulfillmentMapper

// Nested creates a deterministic proxy for a nested invocation from inside
// a replicated dispatch.
func Nested(inv *Invocation, ref GroupRef, opts ...replication.ProxyOption) *Proxy {
	return replication.Nested(inv, ref, opts...)
}

// WithVotes makes a proxy wait for a majority of n replies.
func WithVotes(n int) replication.ProxyOption { return replication.WithVotes(n) }

// WithShard pins a proxy's target group to a transport shard (0-based) of
// the domain's ring pool; Domain.Proxy applies it automatically for groups
// created with an explicit Properties.Shard placement.
func WithShard(shard int) replication.ProxyOption { return replication.WithShard(shard) }

// Ref is an object (group) reference.
type Ref = ior.Ref

// RefToString renders a reference in the classic "IOR:..." form.
func RefToString(r *Ref) string { return ior.ToString(r) }

// RefFromString parses a stringified reference.
func RefFromString(s string) (*Ref, error) { return ior.FromString(s) }

// Value is a self-describing datum used for arguments and results.
type Value = cdr.Value

// Value constructors, re-exported for application code.
var (
	Void      = cdr.Void
	Bool      = cdr.Bool
	Octet     = cdr.Octet
	Short     = cdr.Short
	UShort    = cdr.UShort
	Long      = cdr.Long
	ULong     = cdr.ULong
	LongLong  = cdr.LongLong
	ULongLong = cdr.ULongLong
	Float     = cdr.Float
	Double    = cdr.Double
	Str       = cdr.Str
	OctetSeq  = cdr.OctetSeq
	Seq       = cdr.Seq
)
