package repro_test

import (
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/cdr"
)

// flag is a tiny servant exercised through the public facade only.
type flag struct {
	mu  sync.Mutex
	set bool
}

func (f *flag) RepoID() string { return "IDL:api/Flag:1.0" }

func (f *flag) Dispatch(inv *repro.Invocation) ([]repro.Value, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch inv.Operation {
	case "raise":
		f.set = true
		return []repro.Value{repro.Bool(f.set)}, nil
	case "state":
		return []repro.Value{repro.Bool(f.set)}, nil
	}
	return nil, &repro.UserException{Name: "IDL:api/Bad:1.0"}
}

func (f *flag) GetState() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteBool(f.set)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (f *flag) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	v, err := d.ReadBool()
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.set = v
	f.mu.Unlock()
	return nil
}

// TestPublicAPI drives the whole stack through the root package the way a
// downstream user would: domain, factory, group, proxy, crash.
func TestPublicAPI(t *testing.T) {
	d, err := repro.NewDomain(repro.Options{
		Nodes:     []string{"x", "y", "z"},
		Heartbeat: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterFactory("IDL:api/Flag:1.0", func() repro.Servant { return &flag{} }); err != nil {
		t.Fatal(err)
	}
	ref, gid, err := d.Create("flag", "IDL:api/Flag:1.0", &repro.Properties{
		ReplicationStyle:      repro.Active,
		InitialNumberReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WaitGroupReady(gid, 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Stringified IOGR round trip through the public helpers.
	s := repro.RefToString(ref)
	back, err := repro.RefFromString(s)
	if err != nil || !back.IsGroup() {
		t.Fatalf("IOGR string round trip: %v", err)
	}

	proxy, err := d.Proxy("z", gid)
	if err != nil {
		t.Fatal(err)
	}
	out, err := proxy.Invoke("raise")
	if err != nil || !out[0].AsBool() {
		t.Fatalf("raise: %v %v", out, err)
	}

	members, _ := d.RM.Members(gid)
	d.CrashNode(members[0])
	out, err = proxy.Invoke("state")
	if err != nil || !out[0].AsBool() {
		t.Fatalf("post-crash state: %v %v", out, err)
	}
}

// TestMethodServantFacade checks the method-table servant helper exported
// by the facade.
func TestMethodServantFacade(t *testing.T) {
	s := repro.NewMethodServant("IDL:api/M:1.0").
		Define("twice", func(inv *repro.Invocation) ([]repro.Value, error) {
			return []repro.Value{repro.Long(inv.Args[0].AsLong() * 2)}, nil
		})
	out, err := s.Dispatch(&repro.Invocation{Operation: "twice", Args: []repro.Value{repro.Long(21)}})
	if err != nil || out[0].AsLong() != 42 {
		t.Fatalf("dispatch: %v %v", out, err)
	}
	if s.RepoID() != "IDL:api/M:1.0" {
		t.Error("RepoID")
	}
}

// TestValueConstructors pins the re-exported value helpers.
func TestValueConstructors(t *testing.T) {
	checks := []struct {
		v    repro.Value
		kind cdr.Kind
	}{
		{repro.Void(), cdr.KindVoid},
		{repro.Bool(true), cdr.KindBool},
		{repro.Octet(1), cdr.KindOctet},
		{repro.Short(-1), cdr.KindShort},
		{repro.UShort(1), cdr.KindUShort},
		{repro.Long(-1), cdr.KindLong},
		{repro.ULong(1), cdr.KindULong},
		{repro.LongLong(-1), cdr.KindLongLong},
		{repro.ULongLong(1), cdr.KindULongLong},
		{repro.Float(1), cdr.KindFloat},
		{repro.Double(1), cdr.KindDouble},
		{repro.Str("s"), cdr.KindString},
		{repro.OctetSeq(nil), cdr.KindOctetSeq},
		{repro.Seq(), cdr.KindSeq},
	}
	for _, c := range checks {
		if c.v.Kind != c.kind {
			t.Errorf("constructor for %v produced kind %v", c.kind, c.v.Kind)
		}
	}
}
