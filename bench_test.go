package repro

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cdr"
	"repro/internal/giop"
	"repro/internal/ior"
	"repro/internal/netsim"
	"repro/internal/totem"
)

// --- Experiment benchmarks: one per evaluation table/figure ------------------
//
// Each Benchmark below regenerates one experiment from DESIGN.md's index at
// reduced scale (use cmd/ftbench for full-scale runs and EXPERIMENTS.md for
// recorded results). The table is printed via b.Log under -v.

func runExperiment(b *testing.B, fn func(bench.Scale) (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table, err := fn(bench.Scale{Invocations: 20, Warmup: 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb stringsBuilder
			table.Fprint(&sb)
			b.Log(sb.String())
		}
	}
}

// stringsBuilder avoids importing strings just for the builder.
type stringsBuilder struct{ buf []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}
func (s *stringsBuilder) String() string { return string(s.buf) }

func BenchmarkE1LatencyByStyle(b *testing.B)    { runExperiment(b, bench.E1LatencyByStyle) }
func BenchmarkE2ReplicationDegree(b *testing.B) { runExperiment(b, bench.E2ReplicationDegree) }
func BenchmarkE3Failover(b *testing.B)          { runExperiment(b, bench.E3Failover) }
func BenchmarkE4StateTransfer(b *testing.B)     { runExperiment(b, bench.E4StateTransfer) }
func BenchmarkE5DuplicateSuppression(b *testing.B) {
	runExperiment(b, bench.E5DuplicateSuppression)
}
func BenchmarkE6CheckpointInterval(b *testing.B) { runExperiment(b, bench.E6CheckpointInterval) }
func BenchmarkE7PartitionRemerge(b *testing.B)   { runExperiment(b, bench.E7PartitionRemerge) }
func BenchmarkE8Approaches(b *testing.B)         { runExperiment(b, bench.E8Approaches) }
func BenchmarkT1Totem(b *testing.B)              { runExperiment(b, bench.T1Totem) }

// --- Invocation micro-benchmarks ---------------------------------------------

// benchDomain builds a 3-server+client domain with one echo group.
func benchDomain(b *testing.B, style Style, replicas int) (*Domain, uint64, *Proxy) {
	b.Helper()
	d, err := NewDomain(Options{
		Nodes:         []string{"n1", "n2", "n3", "client"},
		Net:           netsim.Config{Seed: 7},
		Heartbeat:     3 * time.Millisecond,
		CallTimeout:   30 * time.Second,
		RetryInterval: 10 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Stop)
	if err := d.WaitReady(10 * time.Second); err != nil {
		b.Fatal(err)
	}
	if err := d.RegisterFactory(bench.EchoType,
		func() Servant { return bench.NewEchoServant() }, "n1", "n2", "n3"); err != nil {
		b.Fatal(err)
	}
	_, gid, err := d.Create("echo", bench.EchoType, &Properties{
		ReplicationStyle:      style,
		InitialNumberReplicas: replicas,
		MembershipStyle:       MembershipApplication,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.WaitGroupReady(gid, replicas, 10*time.Second); err != nil {
		b.Fatal(err)
	}
	proxy, err := d.Proxy("client", gid)
	if err != nil {
		b.Fatal(err)
	}
	return d, gid, proxy
}

func benchInvoke(b *testing.B, style Style, replicas int) {
	_, _, proxy := benchDomain(b, style, replicas)
	arg := OctetSeq(make([]byte, 256))
	if _, err := proxy.Invoke("echo", arg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Invoke("echo", arg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInvokeActive3(b *testing.B)      { benchInvoke(b, Active, 3) }
func BenchmarkInvokeWarmPassive3(b *testing.B) { benchInvoke(b, WarmPassive, 3) }
func BenchmarkInvokeColdPassive3(b *testing.B) { benchInvoke(b, ColdPassive, 3) }
func BenchmarkInvokeSingleReplica(b *testing.B) {
	benchInvoke(b, Active, 1)
}

func BenchmarkInvokeVoting3(b *testing.B) {
	d, gid, _ := benchDomain(b, ActiveWithVoting, 3)
	proxy, err := d.Proxy("client", gid, WithVotes(3))
	if err != nil {
		b.Fatal(err)
	}
	arg := OctetSeq(make([]byte, 256))
	if _, err := proxy.Invoke("echo", arg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Invoke("echo", arg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ----------------------------------------------

func BenchmarkOrderedMulticast(b *testing.B) {
	fabric := netsim.NewFabric(netsim.Config{})
	nodes := []string{"a", "b", "c"}
	for _, n := range nodes {
		fabric.AddNode(n)
	}
	var rings []*totem.Ring
	for _, n := range nodes {
		r, err := totem.NewRing(fabric, totem.Config{
			Node: n, Universe: nodes, Port: 4000,
			HeartbeatInterval: 3 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		r.Start()
		rings = append(rings, r)
	}
	b.Cleanup(func() {
		for _, r := range rings {
			r.Stop()
		}
	})
	sender := rings[0]
	sender.JoinGroup("g")
	deliver := make(chan struct{}, 1024)
	go func() {
		for ev := range sender.Events() {
			if _, ok := ev.(totem.Deliver); ok {
				deliver <- struct{}{}
			}
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, m := sender.CurrentRing(); len(m) == 3 {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("ring never formed")
		}
		time.Sleep(time.Millisecond)
	}
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sender.Multicast("g", payload); err != nil {
			b.Fatal(err)
		}
		<-deliver
	}
}

func BenchmarkSequencerMulticast(b *testing.B) {
	fabric := netsim.NewFabric(netsim.Config{})
	nodes := []string{"a", "b", "c"}
	for _, n := range nodes {
		fabric.AddNode(n)
	}
	var seqs []*totem.Sequencer
	for _, n := range nodes {
		s, err := totem.NewSequencer(fabric, n, nodes, 5000)
		if err != nil {
			b.Fatal(err)
		}
		seqs = append(seqs, s)
	}
	b.Cleanup(func() {
		for _, s := range seqs {
			s.Stop()
		}
	})
	sender := seqs[2]
	deliver := make(chan struct{}, 1024)
	go func() {
		for ev := range sender.Events() {
			if _, ok := ev.(totem.Deliver); ok {
				deliver <- struct{}{}
			}
		}
	}()
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sender.Multicast("g", payload); err != nil {
			b.Fatal(err)
		}
		<-deliver
	}
}

// --- Codec micro-benchmarks ----------------------------------------------------

func BenchmarkCDRValueRoundTrip(b *testing.B) {
	vals := []cdr.Value{
		cdr.Str("operation"), cdr.Long(42), cdr.Double(3.14),
		cdr.OctetSeq(make([]byte, 256)),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := cdr.NewEncoder(cdr.BigEndian)
		cdr.EncodeValues(e, vals)
		d := cdr.NewDecoder(e.Bytes(), cdr.BigEndian)
		if _, err := cdr.DecodeValues(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGIOPRequestRoundTrip(b *testing.B) {
	req := &giop.Request{
		RequestID:     7,
		ResponseFlags: giop.ResponseExpected,
		ObjectKey:     []byte("og/42"),
		Operation:     "deposit",
		Contexts: []giop.ServiceContext{
			{ID: giop.SvcFTRequest, Data: giop.FTRequest{ClientID: "c1", RetentionID: 9}.Encode()},
		},
		Body: make([]byte, 256),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := giop.Unmarshal(giop.Marshal(req)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIOGRMarshal(b *testing.B) {
	ref := ior.NewGroup("IDL:repro/Echo:1.0",
		ior.FTGroup{FTDomainID: "d", GroupID: 42, Version: 7},
		[]ior.GroupMember{
			{Host: "n1", Port: 9000, ObjectKey: []byte("og/42"), Primary: true},
			{Host: "n2", Port: 9000, ObjectKey: []byte("og/42")},
			{Host: "n3", Port: 9000, ObjectKey: []byte("og/42")},
		})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ior.Unmarshal(ior.Marshal(ref)); err != nil {
			b.Fatal(err)
		}
	}
}
