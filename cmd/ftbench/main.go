// Command ftbench runs the evaluation experiments (E1–E8, T1, SLO, E2mp)
// and prints their tables. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	ftbench                    # run everything at full scale
//	ftbench -quick             # smaller run sizes
//	ftbench -e e3,e7           # selected experiments
//	ftbench -e slo -json BENCH_pr6.json
//	                           # SLO workload; upsert percentile records
//	ftbench -e slo -smoke -seed 2 -p999max 2s
//	                           # CI smoke: seconds-long run, tail sanity gate
//	ftbench -e e2mp -json BENCH_pr7.json
//	                           # multi-process sharded throughput (spawns
//	                           # replica-node child processes, loopback UDP)
//	ftbench -e dr -json BENCH_pr8.json
//	                           # disaster-recovery failover; upsert RPO/RTO
//	ftbench -e e2p -transport udp
//	                           # in-process experiment, ring traffic on
//	                           # real loopback sockets instead of netsim
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mproc"
	"repro/internal/transport"
	"repro/internal/transport/udp"
)

// fabricOnly lists experiments that inject faults through the netsim
// fabric (partitions, targeted drops, chaos schedules) and therefore
// cannot run with -transport udp: the faults would not touch the ring
// traffic and the run would silently measure nothing.
var fabricOnly = map[string]bool{"e3": true, "e7": true, "e8": true, "slo": true, "dr": true, "fd": true, "lf": true}

func main() {
	quick := flag.Bool("quick", false, "use reduced run sizes")
	smoke := flag.Bool("smoke", false, "use seconds-long smoke run sizes (implies -quick)")
	exps := flag.String("e", "all", "comma-separated experiment ids (e1..e8,e2p,t1,slo,e2mp,dr,fd,lf) or 'all'")
	seed := flag.Int64("seed", 1, "workload seed for the slo experiment")
	jsonOut := flag.String("json", "", "upsert the slo/e2mp experiments' records into this benchjson snapshot")
	p999max := flag.Duration("p999max", 0, "fail if the slo calm-phase p999 exceeds this (0 disables)")
	transp := flag.String("transport", "netsim", "ring transport for in-process experiments: netsim|udp")
	role := flag.String("role", "", "internal: 'node' runs this process as a multi-process replica child")
	flag.Parse()

	if *role == "node" {
		os.Exit(mproc.ChildMain(bench.MPServants))
	}
	if *role != "" {
		fmt.Fprintf(os.Stderr, "ftbench: unknown -role %q\n", *role)
		os.Exit(2)
	}

	scale := bench.FullScale
	switch {
	case *smoke:
		scale = bench.Scale{Invocations: 8, Warmup: 2}
	case *quick:
		scale = bench.QuickScale
	}

	ids := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "t1", "slo"}
	if *exps != "all" {
		ids = nil
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := bench.ByID[id]; !ok {
				fmt.Fprintf(os.Stderr, "ftbench: unknown experiment %q (have e1..e8, e2p, t1, slo, e2mp, dr, fd, lf)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	switch *transp {
	case "netsim":
	case "udp":
		for _, id := range ids {
			if fabricOnly[id] {
				fmt.Fprintf(os.Stderr, "ftbench: experiment %s injects faults through the netsim fabric and cannot run with -transport udp\n", id)
				os.Exit(2)
			}
		}
		bench.TransportFactory = func(nodes []string) (transport.Transport, error) {
			// The logical window covers the ring pool (BaseRingPort+shard)
			// and T1's sequencer port with headroom.
			return udp.NewLoopbackCluster(nodes, core.BaseRingPort, core.BaseRingPort+1008)
		}
	default:
		fmt.Fprintf(os.Stderr, "ftbench: unknown -transport %q (have netsim, udp)\n", *transp)
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		var table *bench.Table
		var err error
		switch id {
		case "slo":
			table, err = runSLO(scale, *seed, *jsonOut, *p999max)
		case "e2mp":
			table, err = runE2MP(scale, *jsonOut)
		case "dr":
			table, err = runDR(scale, *jsonOut)
		case "fd":
			table, err = runFD(scale, *jsonOut)
		case "lf":
			table, err = runLF(scale, *jsonOut)
		default:
			table, err = bench.ByID[id](scale)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// runE2MP drives the multi-process experiment and snapshots its records.
func runE2MP(scale bench.Scale, jsonOut string) (*bench.Table, error) {
	table, recs, err := bench.E2MPMultiProcRecords(scale)
	if err != nil {
		return nil, err
	}
	if jsonOut != "" {
		if err := upsertRecords(jsonOut, recs); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "ftbench: wrote %d e2mp records to %s\n", len(recs), jsonOut)
	}
	return table, nil
}

// runDR drives the disaster-recovery experiment and snapshots its RPO/RTO
// records.
func runDR(scale bench.Scale, jsonOut string) (*bench.Table, error) {
	table, recs, err := bench.DRRecoveryRecords(scale)
	if err != nil {
		return table, err
	}
	if jsonOut != "" {
		if err := upsertRecords(jsonOut, recs); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "ftbench: wrote %d dr records to %s\n", len(recs), jsonOut)
	}
	return table, nil
}

// runFD drives the fail-detection experiment and snapshots its detection
// quality records (false_evictions, detect_ms, detect_ratio).
func runFD(scale bench.Scale, jsonOut string) (*bench.Table, error) {
	table, recs, err := bench.FDDetectionRecords(scale)
	if err != nil {
		return table, err
	}
	if jsonOut != "" {
		if err := upsertRecords(jsonOut, recs); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "ftbench: wrote %d fd records to %s\n", len(recs), jsonOut)
	}
	return table, nil
}

// runLF drives the leader-follower latency experiment and snapshots its
// read/write/failover records.
func runLF(scale bench.Scale, jsonOut string) (*bench.Table, error) {
	table, recs, err := bench.LFLatencyRecords(scale)
	if err != nil {
		return table, err
	}
	if jsonOut != "" {
		if err := upsertRecords(jsonOut, recs); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "ftbench: wrote %d lf records to %s\n", len(recs), jsonOut)
	}
	return table, nil
}

// runSLO drives the SLO experiment with its extra plumbing: live progress,
// the p999 sanity gate, and the snapshot upsert.
func runSLO(scale bench.Scale, seed int64, jsonOut string, p999max time.Duration) (*bench.Table, error) {
	progress := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	table, recs, err := bench.SLOWorkloadSeeded(scale, seed, progress)
	if err != nil {
		return nil, err
	}
	if p999max > 0 {
		for _, r := range recs {
			if r.Name != "slo/calm" {
				continue
			}
			if p999 := time.Duration(r.Extra["p999_us"] * 1e3); p999 > p999max {
				return nil, fmt.Errorf("calm p999 %v exceeds -p999max %v", p999, p999max)
			}
		}
	}
	if jsonOut != "" {
		if err := upsertRecords(jsonOut, recs); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "ftbench: wrote %d slo records to %s\n", len(recs), jsonOut)
	}
	return table, nil
}

// upsertRecords merges the records into a benchjson snapshot: existing
// entries with the same name are replaced, everything else is preserved,
// new names append at the end.
func upsertRecords(path string, recs []bench.Record) error {
	var out []json.RawMessage
	byName := map[string]int{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &out); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for i, raw := range out {
			var peek struct {
				Name string `json:"name"`
			}
			if json.Unmarshal(raw, &peek) == nil {
				byName[peek.Name] = i
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for _, r := range recs {
		raw, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if i, ok := byName[r.Name]; ok {
			out[i] = raw
		} else {
			byName[r.Name] = len(out)
			out = append(out, raw)
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
