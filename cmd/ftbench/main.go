// Command ftbench runs the evaluation experiments (E1–E8, T1) and prints
// their tables. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded results.
//
// Usage:
//
//	ftbench               # run everything at full scale
//	ftbench -quick        # smaller run sizes
//	ftbench -e e3,e7      # selected experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced run sizes")
	exps := flag.String("e", "all", "comma-separated experiment ids (e1..e8,t1) or 'all'")
	flag.Parse()

	scale := bench.FullScale
	if *quick {
		scale = bench.QuickScale
	}

	var runs []struct {
		id string
		fn func(bench.Scale) (*bench.Table, error)
	}
	if *exps == "all" {
		for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "t1"} {
			runs = append(runs, struct {
				id string
				fn func(bench.Scale) (*bench.Table, error)
			}{id, bench.ByID[id]})
		}
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			fn, ok := bench.ByID[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "ftbench: unknown experiment %q (have e1..e8, t1)\n", id)
				os.Exit(2)
			}
			runs = append(runs, struct {
				id string
				fn func(bench.Scale) (*bench.Table, error)
			}{id, fn})
		}
	}

	for _, r := range runs {
		start := time.Now()
		table, err := r.fn(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %s failed: %v\n", r.id, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n", r.id, time.Since(start).Round(time.Millisecond))
	}
}
