// Command ftbench runs the evaluation experiments (E1–E8, T1, SLO) and
// prints their tables. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	ftbench                    # run everything at full scale
//	ftbench -quick             # smaller run sizes
//	ftbench -e e3,e7           # selected experiments
//	ftbench -e slo -json BENCH_pr6.json
//	                           # SLO workload; upsert percentile records
//	ftbench -e slo -smoke -seed 2 -p999max 2s
//	                           # CI smoke: seconds-long run, tail sanity gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced run sizes")
	smoke := flag.Bool("smoke", false, "use seconds-long smoke run sizes (implies -quick)")
	exps := flag.String("e", "all", "comma-separated experiment ids (e1..e8,t1,slo) or 'all'")
	seed := flag.Int64("seed", 1, "workload seed for the slo experiment")
	jsonOut := flag.String("json", "", "upsert the slo experiment's records into this benchjson snapshot")
	p999max := flag.Duration("p999max", 0, "fail if the slo calm-phase p999 exceeds this (0 disables)")
	flag.Parse()

	scale := bench.FullScale
	switch {
	case *smoke:
		scale = bench.Scale{Invocations: 8, Warmup: 2}
	case *quick:
		scale = bench.QuickScale
	}

	ids := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "t1", "slo"}
	if *exps != "all" {
		ids = nil
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := bench.ByID[id]; !ok && id != "slo" {
				fmt.Fprintf(os.Stderr, "ftbench: unknown experiment %q (have e1..e8, t1, slo)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		start := time.Now()
		var table *bench.Table
		var err error
		if id == "slo" {
			table, err = runSLO(scale, *seed, *jsonOut, *p999max)
		} else {
			table, err = bench.ByID[id](scale)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// runSLO drives the SLO experiment with its extra plumbing: live progress,
// the p999 sanity gate, and the snapshot upsert.
func runSLO(scale bench.Scale, seed int64, jsonOut string, p999max time.Duration) (*bench.Table, error) {
	progress := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	table, recs, err := bench.SLOWorkloadSeeded(scale, seed, progress)
	if err != nil {
		return nil, err
	}
	if p999max > 0 {
		for _, r := range recs {
			if r.Name != "slo/calm" {
				continue
			}
			if p999 := time.Duration(r.Extra["p999_us"] * 1e3); p999 > p999max {
				return nil, fmt.Errorf("calm p999 %v exceeds -p999max %v", p999, p999max)
			}
		}
	}
	if jsonOut != "" {
		if err := upsertRecords(jsonOut, recs); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "ftbench: wrote %d slo records to %s\n", len(recs), jsonOut)
	}
	return table, nil
}

// upsertRecords merges the records into a benchjson snapshot: existing
// entries with the same name are replaced, everything else is preserved,
// new names append at the end.
func upsertRecords(path string, recs []bench.Record) error {
	var out []json.RawMessage
	byName := map[string]int{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &out); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for i, raw := range out {
			var peek struct {
				Name string `json:"name"`
			}
			if json.Unmarshal(raw, &peek) == nil {
				byName[peek.Name] = i
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for _, r := range recs {
		raw, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if i, ok := byName[r.Name]; ok {
			out[i] = raw
		} else {
			byName[r.Name] = len(out)
			out = append(out, raw)
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
