// Command benchjson converts `go test -bench` output on stdin into a JSON
// array of benchmark records, one per Benchmark line:
//
//	go test -run '^$' -bench 'PR2' -benchmem ./... | go run ./cmd/benchjson
//
// Records carry the benchmark name (GOMAXPROCS suffix stripped), iteration
// count, ns/op, when -benchmem was used B/op and allocs/op, and any custom
// b.ReportMetric units under "extra". The Makefile's bench target uses it
// to snapshot results into BENCH_pr*.json; cmd/benchcmp diffs snapshots.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_op"`
	BytesOp  *int64  `json:"bytes_op,omitempty"`
	AllocsOp *int64  `json:"allocs_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. the sharded benches'
	// "ops/s" aggregate throughput) keyed by unit name.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	var out []record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			continue
		}
		r := record{Name: name, Iters: iters, NsPerOp: ns}
		for i := 4; i+1 < len(f); i += 2 {
			switch f[i+1] {
			case "B/op", "allocs/op":
				v, err := strconv.ParseInt(f[i], 10, 64)
				if err != nil {
					continue
				}
				if f[i+1] == "B/op" {
					r.BytesOp = &v
				} else {
					r.AllocsOp = &v
				}
			default:
				v, err := strconv.ParseFloat(f[i], 64)
				if err != nil {
					continue
				}
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[f[i+1]] = v
			}
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
