// Command idlgen compiles a CORBA IDL file (the subset documented in
// internal/idl) into Go stubs and skeletons for this repository's ORB and
// replication engine.
//
// Usage:
//
//	idlgen -pkg bankgen -o bank_gen.go bank.idl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/idl"
)

func main() {
	pkg := flag.String("pkg", "", "Go package name for the generated file (required)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if *pkg == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: idlgen -pkg <package> [-o out.go] <file.idl>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "idlgen:", err)
		os.Exit(1)
	}
	mod, err := idl.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "idlgen:", err)
		os.Exit(1)
	}
	code, err := idl.Generate(mod, *pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "idlgen:", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(code)
		return
	}
	if err := os.WriteFile(*out, code, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "idlgen:", err)
		os.Exit(1)
	}
}
