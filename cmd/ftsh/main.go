// Command ftsh is an interactive console for a fault-tolerance domain:
// create replicated key/value objects, invoke them, crash nodes, partition
// the network, and watch the infrastructure recover.
//
// Usage:
//
//	ftsh [-nodes n1,n2,n3,n4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/shell"
)

func main() {
	nodeList := flag.String("nodes", "n1,n2,n3,n4", "comma-separated node names")
	flag.Parse()
	var nodes []string
	for _, n := range strings.Split(*nodeList, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	sh, err := shell.New(nodes, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftsh:", err)
		os.Exit(1)
	}
	defer sh.Close()
	fmt.Printf("FT domain up with nodes %v — type help\n", nodes)
	sh.Run(os.Stdin)
}
