// Command benchcmp diffs benchmark snapshots produced by cmd/benchjson and
// exits non-zero on a regression:
//
//	go run ./cmd/benchcmp -threshold 20 BENCH_pr2.json,BENCH_pr6_base.json BENCH_pr6.json
//
// The first argument is the baseline — a comma-separated list of snapshot
// files merged left-to-right (the first occurrence of a benchmark wins), so
// frozen baselines from different PRs compose without rewriting history.
// The second argument is the candidate.
//
// Gating is table-driven: the metric registry below declares every
// comparable quantity — where to read it from a record, which direction is
// better, how much drift is tolerated, and whether it gates everywhere or
// only on headline benchmarks. Adding a new gated metric (the SLO harness's
// p99_us, goodput_ops, …) is one registry row; no per-metric comparison
// code.
//
// Benchmarks or metrics present on only one side are listed but never gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strings"
)

type record struct {
	Name     string             `json:"name"`
	Iters    int64              `json:"iters"`
	NsPerOp  float64            `json:"ns_op"`
	BytesOp  *int64             `json:"bytes_op,omitempty"`
	AllocsOp *int64             `json:"allocs_op,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

// gate describes when a metric's drift fails the comparison.
type gate int

const (
	// gateAll gates on every benchmark carrying the metric.
	gateAll gate = iota
	// gateHeadline gates only on benchmarks matching the -headline regexp;
	// elsewhere the metric is reported as ungated host drift.
	gateHeadline
	// gateNever reports the metric but never fails on it.
	gateNever
)

// metric is one registry row: a named quantity extractable from a record
// plus its comparison policy.
type metric struct {
	name string
	// get extracts the value; ok=false when the record lacks the metric.
	get func(r record) (v float64, ok bool)
	// higherIsBetter flips the regression direction (goodput vs latency).
	higherIsBetter bool
	// threshold is the tolerated adverse drift in percent; zero means "use
	// the -threshold flag's default".
	threshold float64
	gate      gate
}

// extraMetric builds a registry row reading Extra[key] — the one-liner that
// makes new b.ReportMetric units comparable.
func extraMetric(key string, higherIsBetter bool, threshold float64, g gate) metric {
	return metric{
		name: key,
		get: func(r record) (float64, bool) {
			v, ok := r.Extra[key]
			return v, ok
		},
		higherIsBetter: higherIsBetter,
		threshold:      threshold,
		gate:           g,
	}
}

// registry declares every comparable metric. Order is display order.
//
//   - ns/op gates only on headline benchmarks: end-to-end protocol paths
//     reproduce within a few percent across runs, while CPU-bound
//     micro-loops drift more than 20% with the shared VM's day-to-day
//     performance and gate via their allocation counts instead.
//   - allocs/op is deterministic and host-independent: any growth past the
//     threshold is real, so it gates everywhere.
//   - The SLO harness metrics (cmd/ftbench -e slo): p50/p99 latency and
//     goodput gate; p999 and the blackout tail are reported but ungated —
//     on a single shared core their run-to-run variance is the tail being
//     measured.
var registry = []metric{
	{name: "ns/op", get: func(r record) (float64, bool) { return r.NsPerOp, r.NsPerOp > 0 }, gate: gateHeadline},
	{name: "allocs/op", get: func(r record) (float64, bool) {
		if r.AllocsOp == nil {
			return 0, false
		}
		return float64(*r.AllocsOp), true
	}, gate: gateAll},
	extraMetric("p50_us", false, 0, gateNever),
	extraMetric("p99_us", false, 0, gateAll),
	extraMetric("p999_us", false, 0, gateNever),
	extraMetric("goodput_ops", true, 0, gateAll),
	extraMetric("blackout_p99_ms", false, 0, gateNever),
	extraMetric("errors", false, 0, gateNever),
	// Disaster recovery (cmd/ftbench -e dr). rpo_ops and eo_violations are
	// correctness counters with a zero baseline: any nonzero candidate is
	// infinite adverse drift and fails. rto_ms is wall-clock promotion time
	// on a shared core — the wide threshold catches an order-of-magnitude
	// regression (a stall in the promote path) without tripping on
	// scheduler noise.
	extraMetric("rpo_ops", false, 0, gateAll),
	extraMetric("eo_violations", false, 0, gateAll),
	extraMetric("rto_ms", false, 400, gateAll),
	// Fail detection (cmd/ftbench -e fd). false_evictions is a correctness
	// counter with a zero baseline: one storm-evicted healthy node is an
	// infinite adverse drift and fails. detect_ms is wall-clock confirmed
	// detection latency (suspicion + confirm grace + reformation) on a
	// shared core — the wide threshold catches a stalled detector without
	// tripping on scheduler noise. The storm/calm ratio is informational:
	// both sides gate separately.
	extraMetric("false_evictions", false, 0, gateAll),
	extraMetric("detect_ms", false, 400, gateAll),
	extraMetric("detect_ratio", false, 0, gateNever),
	// Multi-process throughput (cmd/ftbench -e e2mp): cells are best-of-3
	// but still ride a single shared core, where scheduler phasing moves
	// whole cells ±25%; the wide threshold catches real collapses (a cell
	// halving) without tripping on host noise. The derived ratio is
	// informational — its numerator and denominator gate separately.
	extraMetric("ops_s", true, 40, gateAll),
	extraMetric("vs_baseline", true, 0, gateNever),
	// Leader-follower (cmd/ftbench -e lf). read_p99_us is the leased read's
	// tail — single-digit µs of local RPC, so host noise moves it by
	// multiples; the wide threshold still catches the failure it guards
	// against, reads losing the lease and falling back onto the ordered
	// path (a ~10x jump). blackout_ms is dominated by the successor's
	// deterministic lease fence (LeaseDuration+LeaseGuard past takeover),
	// so a doubling means the handover itself stalled. The p50s, the write
	// percentiles, and the write/ACTIVE ratio are informational.
	extraMetric("read_p50_us", false, 0, gateNever),
	extraMetric("read_p99_us", false, 150, gateAll),
	extraMetric("read_p50_spread_us", false, 0, gateNever),
	extraMetric("write_p50_us", false, 0, gateNever),
	extraMetric("write_p99_us", false, 0, gateNever),
	extraMetric("active_p50_us", false, 0, gateNever),
	extraMetric("vs_active", false, 0, gateNever),
	extraMetric("blackout_ms", false, 100, gateAll),
}

// verdict is one (benchmark, metric) comparison.
type verdict struct {
	bench, metric string
	old, new      float64
	delta         float64 // adverse drift in percent (positive = worse)
	gated         bool
	fail          bool
}

// compare runs the registry over one benchmark present in both snapshots.
// defaultThreshold fills registry rows with no explicit threshold;
// headline scopes gateHeadline rows.
func compare(base, cand record, defaultThreshold float64, headline *regexp.Regexp) []verdict {
	var out []verdict
	for _, m := range registry {
		b, okB := m.get(base)
		c, okC := m.get(cand)
		if !okB || !okC {
			continue
		}
		v := verdict{bench: base.Name, metric: m.name, old: b, new: c}
		// Adverse drift: how far the candidate moved in the *worse*
		// direction, in percent of the baseline.
		switch {
		case b == 0 && c == 0:
			v.delta = 0
		case b == 0:
			v.delta = math.Inf(1)
			if m.higherIsBetter {
				v.delta = math.Inf(-1)
			}
		default:
			v.delta = (c - b) / math.Abs(b) * 100
		}
		if m.higherIsBetter {
			v.delta = -v.delta
		}
		thr := m.threshold
		if thr == 0 {
			thr = defaultThreshold
		}
		switch m.gate {
		case gateAll:
			v.gated = true
		case gateHeadline:
			v.gated = headline != nil && headline.MatchString(base.Name)
		}
		v.fail = v.gated && v.delta > thr
		out = append(out, v)
	}
	return out
}

// load reads one snapshot file into name→record plus file order.
func load(path string) (map[string]record, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]record, len(recs))
	order := make([]string, 0, len(recs))
	for _, r := range recs {
		if _, dup := m[r.Name]; !dup {
			order = append(order, r.Name)
		}
		m[r.Name] = r
	}
	return m, order, nil
}

// loadMerged reads a comma-separated list of snapshot files; earlier files
// win name collisions.
func loadMerged(paths string) (map[string]record, []string, error) {
	merged := make(map[string]record)
	var order []string
	for _, path := range strings.Split(paths, ",") {
		m, o, err := load(path)
		if err != nil {
			return nil, nil, err
		}
		for _, name := range o {
			if _, dup := merged[name]; dup {
				continue
			}
			merged[name] = m[name]
			order = append(order, name)
		}
	}
	return merged, order, nil
}

func main() {
	threshold := flag.Float64("threshold", 20, "default max adverse drift in percent before failing")
	// The serial-invocation bench is excluded from the default gate: its
	// latency rides token-rotation timing and swings ±25% run to run,
	// beyond any threshold that would still catch real regressions. The
	// pipelined and marshal benches are CPU-bound and stable.
	headline := flag.String("headline", "PR2(Pipelined|GIOPMarshal)",
		"regexp of benchmarks whose ns/op gates (allocs/op and SLO metrics always gate)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold pct] [-headline re] base.json[,base2.json...] candidate.json")
		os.Exit(2)
	}
	headlineRe, err := regexp.Compile(*headline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp: bad -headline:", err)
		os.Exit(2)
	}
	base, order, err := loadMerged(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cand, _, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	failed := false
	fmt.Printf("%-40s %-16s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "drift")
	for _, name := range order {
		b := base[name]
		c, ok := cand[name]
		if !ok {
			fmt.Printf("%-40s %-16s %14s %14s %9s\n", name, "-", "-", "missing", "-")
			continue
		}
		for _, v := range compare(b, c, *threshold, headlineRe) {
			mark := ""
			switch {
			case v.fail:
				mark = "  FAIL"
				failed = true
			case !v.gated && v.delta > *threshold:
				mark = "  (not gated)"
			}
			fmt.Printf("%-40s %-16s %14.1f %14.1f %+8.1f%%%s\n", name, v.metric, v.old, v.new, v.delta, mark)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: regression beyond %.0f%% against %s\n", *threshold, flag.Arg(0))
		os.Exit(1)
	}
}
