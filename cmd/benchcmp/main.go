// Command benchcmp diffs two benchmark snapshots produced by cmd/benchjson
// and exits non-zero on a regression:
//
//	go run ./cmd/benchcmp -threshold 20 BENCH_pr2.json BENCH_pr5.json
//
// The first file is the baseline, the second the candidate. Two gates run
// over every benchmark present in both files:
//
//   - ns/op, for benchmarks matching -headline only. Headline benches are
//     the end-to-end protocol paths, which reproduce within a few percent
//     across runs; tight CPU-bound micro-loops drift far more than 20%
//     with the shared VM's day-to-day performance and only gate via their
//     allocation counts.
//   - allocs/op, for every benchmark. Allocation counts are deterministic
//     and host-independent, so any growth past the threshold is real.
//
// Benchmarks only present in one file are listed but never gate. The
// Makefile's benchcmp target uses this to hold the PR2 hot-path results
// while later PRs grow the suite.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
)

type record struct {
	Name     string             `json:"name"`
	Iters    int64              `json:"iters"`
	NsPerOp  float64            `json:"ns_op"`
	BytesOp  *int64             `json:"bytes_op,omitempty"`
	AllocsOp *int64             `json:"allocs_op,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

func load(path string) (map[string]record, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]record, len(recs))
	order := make([]string, 0, len(recs))
	for _, r := range recs {
		if _, dup := m[r.Name]; !dup {
			order = append(order, r.Name)
		}
		m[r.Name] = r
	}
	return m, order, nil
}

func main() {
	threshold := flag.Float64("threshold", 20, "max regression in percent before failing")
	headline := flag.String("headline", "PR2(Pipelined|Serial|GIOPMarshal)",
		"regexp of benchmarks whose ns/op gates (allocs/op always gates)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold pct] [-headline re] baseline.json candidate.json")
		os.Exit(2)
	}
	headlineRe, err := regexp.Compile(*headline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp: bad -headline:", err)
		os.Exit(2)
	}
	base, order, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cand, _, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	failed := false
	fmt.Printf("%-36s %12s %12s %8s %14s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs old→new")
	for _, name := range order {
		b := base[name]
		c, ok := cand[name]
		if !ok {
			fmt.Printf("%-36s %12.1f %12s %8s %14s\n", name, b.NsPerOp, "missing", "-", "-")
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		mark := ""
		if delta > *threshold {
			if headlineRe.MatchString(name) {
				mark = "  FAIL ns/op"
				failed = true
			} else {
				mark = "  (host drift, not gated)"
			}
		}
		allocs := "-"
		if b.AllocsOp != nil && c.AllocsOp != nil {
			allocs = fmt.Sprintf("%d→%d", *b.AllocsOp, *c.AllocsOp)
			if float64(*c.AllocsOp) > float64(*b.AllocsOp)*(1+*threshold/100) {
				mark += "  FAIL allocs/op"
				failed = true
			}
		}
		fmt.Printf("%-36s %12.1f %12.1f %+7.1f%% %14s%s\n", name, b.NsPerOp, c.NsPerOp, delta, allocs, mark)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: regression beyond %.0f%% against %s\n", *threshold, flag.Arg(0))
		os.Exit(1)
	}
}
