package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func i64(v int64) *int64 { return &v }

// pick returns the verdict for one metric name, failing the test if absent.
func pick(t *testing.T, vs []verdict, metric string) verdict {
	t.Helper()
	for _, v := range vs {
		if v.metric == metric {
			return v
		}
	}
	t.Fatalf("no verdict for %s in %+v", metric, vs)
	return verdict{}
}

func TestCompareLowerIsBetter(t *testing.T) {
	base := record{Name: "PR2Pipelined", NsPerOp: 1000, AllocsOp: i64(10)}
	head := regexp.MustCompile("PR2")

	// 30% slower on a headline bench: ns/op fails, allocs/op (unchanged) passes.
	vs := compare(base, record{Name: "PR2Pipelined", NsPerOp: 1300, AllocsOp: i64(10)}, 20, head)
	if v := pick(t, vs, "ns/op"); !v.fail || !v.gated || v.delta < 29 || v.delta > 31 {
		t.Fatalf("ns/op verdict %+v", v)
	}
	if v := pick(t, vs, "allocs/op"); v.fail {
		t.Fatalf("allocs/op verdict %+v", v)
	}

	// 30% faster must never fail.
	vs = compare(base, record{Name: "PR2Pipelined", NsPerOp: 700, AllocsOp: i64(10)}, 20, head)
	if v := pick(t, vs, "ns/op"); v.fail || v.delta > 0 {
		t.Fatalf("improvement flagged: %+v", v)
	}

	// Allocation growth gates even off-headline.
	base.Name = "MicroLoop"
	vs = compare(base, record{Name: "MicroLoop", NsPerOp: 5000, AllocsOp: i64(13)}, 20, head)
	if v := pick(t, vs, "ns/op"); v.fail || v.gated {
		t.Fatalf("off-headline ns/op must not gate: %+v", v)
	}
	if v := pick(t, vs, "allocs/op"); !v.fail {
		t.Fatalf("allocs/op 10→13 must fail at 20%%: %+v", v)
	}
}

func TestCompareHigherIsBetter(t *testing.T) {
	base := record{Name: "slo/calm", NsPerOp: 1, Extra: map[string]float64{"goodput_ops": 1000, "p99_us": 800}}
	head := regexp.MustCompile("PR2")

	// Goodput dropping 30% is an adverse drift of +30% and fails.
	vs := compare(base, record{Name: "slo/calm", NsPerOp: 1,
		Extra: map[string]float64{"goodput_ops": 700, "p99_us": 800}}, 20, head)
	if v := pick(t, vs, "goodput_ops"); !v.fail || v.delta < 29 || v.delta > 31 {
		t.Fatalf("goodput verdict %+v", v)
	}
	// Goodput rising must not fail.
	vs = compare(base, record{Name: "slo/calm", NsPerOp: 1,
		Extra: map[string]float64{"goodput_ops": 1400, "p99_us": 800}}, 20, head)
	if v := pick(t, vs, "goodput_ops"); v.fail || v.delta > 0 {
		t.Fatalf("goodput improvement flagged: %+v", v)
	}
	// p99 latency regression fails; p999 never gates.
	vs = compare(base, record{Name: "slo/calm", NsPerOp: 1,
		Extra: map[string]float64{"p99_us": 1200, "p999_us": 9999, "goodput_ops": 1000}}, 20, head)
	if v := pick(t, vs, "p99_us"); !v.fail {
		t.Fatalf("p99 regression must fail: %+v", v)
	}
	for _, v := range vs {
		if v.metric == "p999_us" && (v.gated || v.fail) {
			t.Fatalf("p999_us must never gate: %+v", v)
		}
	}
}

func TestCompareMissingMetrics(t *testing.T) {
	// Metrics absent on either side are skipped, not failed.
	base := record{Name: "x", NsPerOp: 100}
	cand := record{Name: "x", NsPerOp: 100, AllocsOp: i64(50),
		Extra: map[string]float64{"p99_us": 1}}
	vs := compare(base, cand, 20, nil)
	if len(vs) != 1 || vs[0].metric != "ns/op" {
		t.Fatalf("want only ns/op compared, got %+v", vs)
	}
	// A zero baseline with a nonzero candidate is an infinite adverse drift.
	base.Extra = map[string]float64{"p99_us": 0}
	cand.Extra["p99_us"] = 5
	vs = compare(base, cand, 20, nil)
	if v := pick(t, vs, "p99_us"); !v.fail {
		t.Fatalf("0→5 p99 must fail: %+v", v)
	}
}

func TestLoadMergedFirstWins(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	os.WriteFile(a, []byte(`[{"name":"shared","iters":1,"ns_op":100},{"name":"onlyA","iters":1,"ns_op":1}]`), 0o644)
	os.WriteFile(b, []byte(`[{"name":"shared","iters":1,"ns_op":999},{"name":"onlyB","iters":1,"ns_op":2}]`), 0o644)
	m, order, err := loadMerged(a + "," + b)
	if err != nil {
		t.Fatal(err)
	}
	if m["shared"].NsPerOp != 100 {
		t.Fatalf("first file must win: shared ns/op %v", m["shared"].NsPerOp)
	}
	want := []string{"shared", "onlyA", "onlyB"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if _, _, err := loadMerged(a + ",missing.json"); err == nil {
		t.Fatal("missing file must error")
	}
}
