// Command ftdemo narrates a live fault-tolerance session: it builds an FT
// domain, creates a replicated bank account, then injects a crash, a
// partition, and a remerge while a client keeps invoking — printing what
// the infrastructure does at each step.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro"
	"repro/internal/cdr"
)

const accountType = "IDL:demo/Account:1.0"

// accountServant is a replicated bank account with partition-aware
// reconciliation: withdrawals performed in a disconnected component replay
// as withdrawOrOverdraft after the partition heals.
type accountServant struct {
	mu      sync.Mutex
	balance int64
	over    int64
}

func (a *accountServant) RepoID() string { return accountType }

func (a *accountServant) Dispatch(inv *repro.Invocation) ([]repro.Value, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch inv.Operation {
	case "deposit":
		a.balance += int64(inv.Args[0].AsLong())
		return []repro.Value{repro.LongLong(a.balance)}, nil
	case "withdraw":
		amt := int64(inv.Args[0].AsLong())
		if amt > a.balance {
			return nil, &repro.UserException{Name: "IDL:demo/InsufficientFunds:1.0"}
		}
		a.balance -= amt
		return []repro.Value{repro.LongLong(a.balance)}, nil
	case "withdrawOrOverdraft":
		amt := int64(inv.Args[0].AsLong())
		a.balance -= amt
		if a.balance < 0 {
			a.over++
		}
		return []repro.Value{repro.LongLong(a.balance)}, nil
	case "balance":
		return []repro.Value{repro.LongLong(a.balance), repro.LongLong(a.over)}, nil
	}
	return nil, &repro.UserException{Name: "IDL:demo/BadOp:1.0"}
}

func (a *accountServant) MapFulfillment(op string, args []repro.Value) (string, []repro.Value, bool) {
	if op == "withdraw" {
		return "withdrawOrOverdraft", args, true
	}
	if op == "balance" {
		return "", nil, false
	}
	return op, args, true
}

func (a *accountServant) GetState() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := cdrEncoder()
	e.WriteLongLong(a.balance)
	e.WriteLongLong(a.over)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (a *accountServant) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	bal, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	over, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.balance, a.over = bal, over
	a.mu.Unlock()
	return nil
}

func cdrEncoder() *cdr.Encoder { return cdr.NewEncoder(cdr.BigEndian) }

func main() {
	style := flag.String("style", "active", "replication style: active | warm | cold")
	flag.Parse()

	var repl repro.Style
	switch *style {
	case "active":
		repl = repro.Active
	case "warm":
		repl = repro.WarmPassive
	case "cold":
		repl = repro.ColdPassive
	default:
		fmt.Fprintf(os.Stderr, "ftdemo: unknown style %q\n", *style)
		os.Exit(2)
	}

	step := func(format string, args ...any) {
		fmt.Printf("\n==> "+format+"\n", args...)
	}

	step("building a 4-node FT domain (3 servers + 1 client) on the simulated LAN")
	d, err := repro.NewDomain(repro.Options{
		Nodes:     []string{"alpha", "beta", "gamma", "client"},
		Heartbeat: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Stop()
	if err := d.WaitReady(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("    nodes:", d.Nodes())

	step("registering the Account factory and creating a %s object group (3 replicas)", repl)
	if err := d.RegisterFactory(accountType, func() repro.Servant { return &accountServant{} },
		"alpha", "beta", "gamma"); err != nil {
		log.Fatal(err)
	}
	ref, gid, err := d.Create("account", accountType, &repro.Properties{
		ReplicationStyle:      repl,
		InitialNumberReplicas: 3,
		MembershipStyle:       repro.MembershipApplication,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.WaitGroupReady(gid, 3, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	members, _ := d.RM.Members(gid)
	fmt.Printf("    group %d on %v\n    IOGR: %.72s...\n", gid, members, repro.RefToString(ref))

	proxy, err := d.Proxy("client", gid)
	if err != nil {
		log.Fatal(err)
	}
	step("client deposits 1000")
	out, err := proxy.Invoke("deposit", repro.Long(1000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    balance = %d\n", out[0].AsLongLong())

	step("crashing %s (the %s) mid-service", members[0], roleName(repl))
	before := time.Now()
	d.CrashNode(members[0])
	out, err = proxy.Invoke("withdraw", repro.Long(100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    withdraw survived the crash in %v; balance = %d\n",
		time.Since(before).Round(time.Millisecond), out[0].AsLongLong())

	step("partitioning the network: {%s} cut off from {%s, client}", members[2], members[1])
	d.Partition([]string{members[1], "client"}, []string{members[2]})
	time.Sleep(300 * time.Millisecond)

	majority := proxy
	minority, err := d.Proxy(members[2], gid)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := majority.Invoke("withdraw", repro.Long(600)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    primary component withdrew 600\n")
	if _, err := minority.Invoke("withdraw", repro.Long(500)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    disconnected component *also* withdrew 500 (queued as a fulfillment operation)\n")

	step("healing the partition: state transfer + fulfillment replay reconcile the components")
	d.Heal()
	deadline := time.Now().Add(15 * time.Second)
	for {
		out, err = majority.Invoke("balance")
		if err == nil && out[0].AsLongLong() == -200 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("reconciliation did not converge: %v %v", out, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("    reconciled balance = %d with %d overdraft notice(s) — both components' operations honored\n",
		out[0].AsLongLong(), out[1].AsLongLong())

	step("done — every replica holds the identical state")
}

func roleName(s repro.Style) string {
	if s == repro.Active {
		return "senior active replica"
	}
	return "primary replica"
}
