package replication

import (
	"bytes"
	"reflect"
	"testing"
)

// The checkpoint message carries the sender's duplicate-suppression window
// (Covered) so state-transfer adopters cannot re-execute covered
// operations; the round trip must preserve it exactly, including the
// empty-window case.
func TestCheckpointWireRoundTrip(t *testing.T) {
	cases := []*msgCheckpoint{
		{GroupID: 7, Reason: ckptJoin, UpToMsgID: 42, State: []byte("state")},
		{
			GroupID: 9, Reason: ckptPeriodic, UpToMsgID: 1000, State: []byte{0, 1, 2},
			Covered: []opKey{
				{ClientID: "client-a", ParentSeq: 3, OpSeq: 17},
				{ClientID: "client-b", OpSeq: 1},
			},
		},
	}
	for _, in := range cases {
		raw, err := encodeWire(in)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := decodeWire(raw)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		out, ok := got.(*msgCheckpoint)
		if !ok {
			t.Fatalf("decoded %T, want *msgCheckpoint", got)
		}
		if out.GroupID != in.GroupID || out.Reason != in.Reason ||
			out.UpToMsgID != in.UpToMsgID || !bytes.Equal(out.State, in.State) {
			t.Errorf("header mismatch: got %+v want %+v", out, in)
		}
		if !reflect.DeepEqual(out.Covered, in.Covered) {
			t.Errorf("covered mismatch: got %+v want %+v", out.Covered, in.Covered)
		}
	}
}
