package replication

import (
	"testing"
	"time"

	"repro/internal/cdr"
)

func lfDef(id uint64) GroupDef {
	return GroupDef{ID: id, Name: "lf", Style: LeaderFollower, ReadOnlyOps: []string{"get"}}
}

// lfTotal sums a counter across every engine in the cluster.
func (c *cluster) lfTotal(pick func(Stats) uint64) uint64 {
	var total uint64
	for _, e := range c.engines {
		total += pick(e.Stats())
	}
	return total
}

func TestLeaderFollowerConsistency(t *testing.T) {
	c := newCluster(t, 4)
	c.host(lfDef(1), "n1", "n2", "n3")
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 1}, WithLFFastPath("get"))

	var want int64
	for i := 1; i <= 10; i++ {
		out, err := proxy.Invoke("add", cdr.Long(int32(i)))
		if err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		want += int64(i)
		if out[0].AsLongLong() != want {
			t.Fatalf("add %d returned %d, want %d", i, out[0].AsLongLong(), want)
		}
	}
	// The order stream must converge every follower on the leader's state,
	// with each operation executed exactly once.
	waitFor(t, 5*time.Second, "follower convergence", func() bool {
		for _, node := range []string{"n1", "n2", "n3"} {
			bal, ops := c.servants[node][1].snapshot()
			if bal != want || ops != 10 {
				return false
			}
		}
		return true
	})
}

func TestLeaderFollowerLeasedLocalReads(t *testing.T) {
	c := newCluster(t, 4)
	c.host(lfDef(1), "n1", "n2", "n3")
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 1}, WithLFFastPath("get"))

	if _, err := proxy.Invoke("add", cdr.Long(42)); err != nil {
		t.Fatal(err)
	}
	// Once leases circulate, reads must be served from replica-local state
	// on the direct lane (no totem entry). Session tokens guarantee the
	// read observes our own write.
	waitFor(t, 5*time.Second, "leased local read", func() bool {
		out, err := proxy.Invoke("get")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if out[0].AsLongLong() != 42 {
			t.Fatalf("read %d, want 42 (session token violated)", out[0].AsLongLong())
		}
		return c.lfTotal(func(s Stats) uint64 { return s.LfReads }) > 0
	})

	// With the lease machinery warm, a burst of reads should be served on
	// the fast path without growing the ordered execution counters.
	before := c.lfTotal(func(s Stats) uint64 { return s.LfReads })
	for i := 0; i < 20; i++ {
		if _, err := proxy.Invoke("get"); err != nil {
			t.Fatalf("warm get: %v", err)
		}
	}
	after := c.lfTotal(func(s Stats) uint64 { return s.LfReads })
	if after-before < 15 {
		t.Fatalf("only %d of 20 warm reads used the fast path", after-before)
	}
}

func TestLeaderFollowerLeaderCrashNoAckedLoss(t *testing.T) {
	c := newCluster(t, 4)
	c.host(lfDef(1), "n1", "n2", "n3")
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 1}, WithLFFastPath("get"))

	var want int64
	for i := 1; i <= 5; i++ {
		if _, err := proxy.Invoke("add", cdr.Long(int32(i))); err != nil {
			t.Fatalf("pre-crash add %d: %v", i, err)
		}
		want += int64(i)
	}

	// Kill the leader mid-stream: everything acked so far must survive at
	// the followers, and the senior follower must take over.
	c.fabric.CrashNode("n1")
	c.engines["n1"].Stop()
	c.rings["n1"].Stop()

	for i := 6; i <= 10; i++ {
		if _, err := proxy.Invoke("add", cdr.Long(int32(i))); err != nil {
			t.Fatalf("post-crash add %d: %v", i, err)
		}
		want += int64(i)
	}
	waitFor(t, 5*time.Second, "post-failover convergence", func() bool {
		for _, node := range []string{"n2", "n3"} {
			bal, ops := c.servants[node][1].snapshot()
			if bal != want || ops != 10 {
				return false
			}
		}
		return true
	})
	if got := c.lfTotal(func(s Stats) uint64 { return s.LfTakeovers }); got == 0 {
		t.Fatal("no leadership takeover recorded")
	}
}

// lfReadProbe pushes one direct-lane read submit at a specific replica
// (bypassing the proxy's target rotation) and reports whether it was
// served locally or redirected, by watching the node's counters.
func lfReadProbe(t *testing.T, c *cluster, node string, gid uint64, seq uint64) (served, redirected bool) {
	t.Helper()
	e := c.engines[node]
	sub := &msgLfSubmit{
		GroupID:   gid,
		Key:       opKey{ClientID: "probe:" + node, OpSeq: seq},
		Operation: "get",
		ReadOnly:  true,
		From:      node,
	}
	payload, err := encodeWire(sub)
	if err != nil {
		t.Fatal(err)
	}
	r0 := e.Stats()
	e.onDirect(node, invGroupName(gid), payload)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s := e.Stats()
		if s.LfReads > r0.LfReads {
			return true, false
		}
		if s.LfRedirects > r0.LfRedirects {
			return false, true
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("read probe at %s: neither served nor redirected", node)
	return false, false
}

// Lease corner case: the lease expires with no renewal in sight (leader
// process wedged — ring alive, engine stopped). In-flight reads drain and
// later reads must refuse the fast path rather than serve stale state.
func TestLeaseExpiryStopsLocalReads(t *testing.T) {
	c := newCluster(t, 4)
	c.host(lfDef(1), "n1", "n2", "n3")
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 1}, WithLFFastPath("get"))
	if _, err := proxy.Invoke("add", cdr.Long(7)); err != nil {
		t.Fatal(err)
	}
	// Wait until n3 holds a live lease and serves a local read.
	waitFor(t, 5*time.Second, "lease live at n3", func() bool {
		served, _ := lfReadProbe(t, c, "n3", 1, uint64(time.Now().UnixNano()))
		return served
	})

	// Wedge the leader's engine: the ring keeps heartbeating (no view
	// change, no revocation) but lease renewals stop.
	c.engines["n1"].Stop()

	lease := c.engines["n1"].cfg.LeaseDuration
	guard := c.engines["n1"].cfg.LeaseGuard
	time.Sleep(lease + guard + 50*time.Millisecond)
	served, redirected := lfReadProbe(t, c, "n3", 1, uint64(time.Now().UnixNano()))
	if served || !redirected {
		t.Fatal("expired lease still served a local read")
	}
}

// Lease corner case: the guard band. A lease within LeaseGuard of its
// local expiry must refuse reads — that margin is what absorbs bounded
// clock-rate skew and delivery lag across nodes.
func TestLeaseGuardBandBoundary(t *testing.T) {
	c := newCluster(t, 4)
	c.host(lfDef(1), "n1", "n2", "n3")
	// Stop renewals up front so manually planted leases stay put.
	c.engines["n1"].Stop()
	time.Sleep(20 * time.Millisecond)

	r := c.engines["n3"].replicaFor(1)
	guard := c.engines["n3"].cfg.LeaseGuard
	plant := func(expIn time.Duration) {
		r.mu.lock()
		r.lfLeaseHold = r.members[0]
		r.lfLeaseEpoch = r.lfFence
		r.lfLeaseExp = time.Now().Add(expIn)
		r.mu.unlock()
	}

	// Comfortably inside the lease: served.
	plant(guard + 500*time.Millisecond)
	if served, _ := lfReadProbe(t, c, "n3", 1, 1); !served {
		t.Fatal("live lease refused a local read")
	}
	// Inside the guard band (still before nominal expiry): refused.
	plant(guard / 2)
	if served, _ := lfReadProbe(t, c, "n3", 1, 2); served {
		t.Fatal("read served inside the guard band")
	}
}

// Lease corner case: revocation racing a view change. A follower cut off
// by a partition must drop its lease at its own view install — before
// natural expiry — because the primary side may elect new leadership and
// resume writes once the fence lapses.
func TestLeaseRevokedOnViewChange(t *testing.T) {
	c := newCluster(t, 4)
	c.host(lfDef(1), "n1", "n2", "n3")
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 1}, WithLFFastPath("get"))
	if _, err := proxy.Invoke("add", cdr.Long(9)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "lease live at n3", func() bool {
		served, _ := lfReadProbe(t, c, "n3", 1, uint64(time.Now().UnixNano()))
		return served
	})

	c.fabric.Partition([]string{"n1", "n2", "n4"}, []string{"n3"})
	r := c.engines["n3"].replicaFor(1)
	waitFor(t, 5*time.Second, "lease revoked at n3", func() bool {
		r.mu.lock()
		revoked := r.lfLeaseHold == ""
		r.mu.unlock()
		return revoked
	})
	if served, _ := lfReadProbe(t, c, "n3", 1, uint64(time.Now().UnixNano())); served {
		t.Fatal("partitioned follower served a read on a revoked lease")
	}

	// Heal: the post-heal nudge must bring n3 back to operational without
	// any follow-on client traffic.
	c.fabric.Heal()
	waitFor(t, 5*time.Second, "n3 rejoins after heal", func() bool {
		st, ok := c.engines["n3"].GroupStatus(1)
		return ok && !st.Secondary && !st.Syncing
	})
}

// Lease corner case: a follower promoted to leader must serve reads
// (under a fresh self-granted lease) and writes immediately after the
// write fence, with no acked state lost.
func TestReadAfterPromotion(t *testing.T) {
	c := newCluster(t, 4)
	c.host(lfDef(1), "n1", "n2", "n3")
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 1}, WithLFFastPath("get"))
	if _, err := proxy.Invoke("add", cdr.Long(11)); err != nil {
		t.Fatal(err)
	}

	c.fabric.CrashNode("n1")
	c.engines["n1"].Stop()
	c.rings["n1"].Stop()

	// Reads must keep answering across the failover (fallback allowed),
	// always reflecting the acked write.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		out, err := proxy.Invoke("get")
		if err != nil {
			t.Fatalf("read during failover: %v", err)
		}
		if out[0].AsLongLong() != 11 {
			t.Fatalf("read %d during failover, want 11", out[0].AsLongLong())
		}
		// Done once the new leader's own lease serves a local read.
		if served, _ := lfReadProbe(t, c, "n2", 1, uint64(time.Now().UnixNano())); served {
			return
		}
	}
	t.Fatal("promoted leader never served a leased local read")
}

// Satellite: the post-heal catch-up nudge. A partition heal with no
// follow-on traffic must converge the former secondary promptly (it used
// to wait for timer-driven rescue, or stall outright when the returning
// member was a fresh incarnation).
func TestPostHealCatchUpNudge(t *testing.T) {
	c := newCluster(t, 4)
	def := GroupDef{ID: 3, Name: "cold", Style: ColdPassive}
	c.host(def, "n1", "n2", "n3")
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 3})

	c.fabric.Partition([]string{"n1", "n2", "n4"}, []string{"n3"})
	waitFor(t, 5*time.Second, "n3 secondary", func() bool {
		st, ok := c.engines["n3"].GroupStatus(3)
		return ok && st.Secondary
	})
	var want int64
	for i := 1; i <= 5; i++ {
		if _, err := proxy.Invoke("add", cdr.Long(int32(i))); err != nil {
			t.Fatalf("partitioned add %d: %v", i, err)
		}
		want += int64(i)
	}

	// Heal and then send NOTHING: catch-up must be self-triggering.
	c.fabric.Heal()
	waitFor(t, 5*time.Second, "n3 converges with no follow-on traffic", func() bool {
		bal, _ := c.servants["n3"][3].snapshot()
		return bal == want
	})
	if got := c.lfTotal(func(s Stats) uint64 { return s.HealNudges }); got == 0 {
		t.Fatal("no heal nudge recorded")
	}
}

// Satellite: the fresh-incarnation stall. A secondary whose partition
// peers died and were replaced by a brand-new member (not in its
// pre-split view) used to stay secondary forever — nothing marked it
// syncing and the sync-retry loop only covers syncing replicas. The
// nudge makes it request state, and the stateReq rescue elects its
// (senior, state-bearing) replica as authoritative.
func TestHealWithFreshIncarnationRecovers(t *testing.T) {
	c := newCluster(t, 4)
	def := GroupDef{ID: 4, Name: "cold", Style: ColdPassive}
	c.host(def, "n1", "n2", "n3")
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 4})
	if _, err := proxy.Invoke("add", cdr.Long(21)); err != nil {
		t.Fatal(err)
	}
	// Cold backups only log; state materializes at promotion. Wait until
	// the primary executed and n3 has the invocation in its log.
	waitFor(t, 5*time.Second, "pre-split convergence", func() bool {
		bal, _ := c.servants["n1"][4].snapshot()
		n, _ := c.engines["n3"].LogLen(4)
		return bal == 21 && n > 0
	})

	// Isolate n3, then kill its former peers for good.
	c.fabric.Partition([]string{"n1", "n2", "n4"}, []string{"n3"})
	waitFor(t, 5*time.Second, "n3 secondary", func() bool {
		st, ok := c.engines["n3"].GroupStatus(4)
		return ok && st.Secondary
	})
	for _, node := range []string{"n1", "n2"} {
		c.fabric.CrashNode(node)
		c.engines[node].Stop()
		c.rings[node].Stop()
	}

	// Recruit a fresh incarnation on n4 (late join: syncing) and heal.
	a := &account{}
	c.servants["n4"][4] = a
	if err := c.engines["n4"].HostReplica(def, a, false); err != nil {
		t.Fatal(err)
	}
	c.fabric.Heal()

	waitFor(t, 10*time.Second, "n3+n4 recover with n3's state", func() bool {
		st3, ok3 := c.engines["n3"].GroupStatus(4)
		st4, ok4 := c.engines["n4"].GroupStatus(4)
		if !ok3 || !ok4 || st3.Secondary || st3.Syncing || st4.Secondary || st4.Syncing {
			return false
		}
		b3, _ := c.servants["n3"][4].snapshot()
		b4, _ := a.snapshot()
		return b3 == 21 && b4 == 21
	})
}

// The write path must stay exactly-once when a direct-lane ack is lost
// and the client retries through the ordered path.
func TestLFFallbackDedup(t *testing.T) {
	c := newCluster(t, 4)
	c.host(lfDef(1), "n1", "n2", "n3")
	// A proxy with a microscopic attempt budget falls back constantly;
	// every operation must still apply exactly once.
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 1},
		WithLFFastPath("get"), WithLFAttemptTimeout(time.Microsecond))
	var want int64
	for i := 1; i <= 10; i++ {
		out, err := proxy.Invoke("add", cdr.Long(int32(i)))
		if err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		want += int64(i)
		if out[0].AsLongLong() != want {
			t.Fatalf("add %d returned %d, want %d (duplicate execution?)", i, out[0].AsLongLong(), want)
		}
	}
	waitFor(t, 5*time.Second, "convergence", func() bool {
		for _, node := range []string{"n1", "n2", "n3"} {
			bal, ops := c.servants[node][1].snapshot()
			if bal != want || ops != 10 {
				return false
			}
		}
		return true
	})
}

