package replication

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/nondet"
	"repro/internal/orb"
)

// timerPool recycles the two timers every twoway invocation arms (call
// deadline, retransmission backoff). On the fast path neither ever fires
// — the reply lands in microseconds — so without pooling the timers are
// pure per-call garbage plus two runtime timer insertions.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putTimer stops t, drains a pending fire, and recycles it. Callers must
// have no outstanding receive on t.C.
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// CallCtx is attached to orb.Invocation.Caller while a replica executes, so
// servants can perform deterministic nested invocations: every replica of
// the calling group derives the identical operation identifier, letting the
// target group suppress the duplicates.
type CallCtx struct {
	eng   *Engine
	gid   uint64
	msgID uint64
	det   *nondet.Context
}

// ProxyOption customizes a group proxy.
type ProxyOption func(*Proxy)

// WithVotes makes the proxy wait for n replies and return the majority
// outcome (ACTIVE_WITH_VOTING on the client side).
func WithVotes(n int) ProxyOption {
	return func(p *Proxy) {
		if n > 0 {
			p.votes = n
		}
	}
}

// WithShard pins the target group to the given transport shard (0-based)
// instead of the deterministic hash route. Clients need this only for
// groups created with an explicit ftcorba.Properties.Shard placement —
// core.Domain.Proxy applies it automatically from the Replication
// Manager's record. The pin is recorded engine-wide so retransmissions and
// the reply subscription use the same ring.
func WithShard(shard int) ProxyOption {
	return func(p *Proxy) {
		if shard >= 0 {
			p.shard = shard + 1
		}
	}
}

// WithTimeout overrides the engine's call timeout for this proxy.
func WithTimeout(d time.Duration) ProxyOption {
	return func(p *Proxy) {
		if d > 0 {
			p.timeout = d
		}
	}
}

// WithRetryInterval overrides the base retransmission interval (the
// backoff starting point).
func WithRetryInterval(d time.Duration) ProxyOption {
	return func(p *Proxy) {
		if d > 0 {
			p.retry = d
			if p.maxRetry < d {
				p.maxRetry = 8 * d
			}
		}
	}
}

// Proxy issues invocations to one object group. It is safe for concurrent
// use.
type Proxy struct {
	eng      *Engine
	gid      uint64
	votes    int
	shard    int // 1-based explicit shard pin; 0 = engine routing
	timeout  time.Duration
	retry    time.Duration // base retransmission interval
	maxRetry time.Duration // backoff cap
	ctx      *CallCtx      // non-nil for nested (deterministic) proxies
}

// Proxy creates a root (client-side) proxy for the group.
func (e *Engine) Proxy(ref GroupRef, opts ...ProxyOption) *Proxy {
	p := &Proxy{
		eng:      e,
		gid:      ref.ID,
		votes:    1,
		timeout:  e.cfg.CallTimeout,
		retry:    e.cfg.RetryInterval,
		maxRetry: e.cfg.MaxRetryInterval,
	}
	for _, opt := range opts {
		opt(p)
	}
	if p.shard > 0 {
		e.PinShard(p.gid, p.shard-1)
	}
	return p
}

// backoffAfter returns the wait before the next retransmission: the base
// interval doubled per attempt, capped, with ±25% jitter so a herd of
// retrying clients does not resynchronize on the recovering group.
func (p *Proxy) backoffAfter(attempt int) time.Duration {
	d := p.retry << uint(attempt)
	if d <= 0 || d > p.maxRetry {
		d = p.maxRetry
	}
	jitter := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + jitter
}

// Nested creates a proxy for a nested invocation from inside a replica's
// Dispatch. All replicas of the calling group produce the same operation
// identifiers, so the target group executes the operation exactly once.
// It panics if inv did not come through the replication engine.
func Nested(inv *orb.Invocation, ref GroupRef, opts ...ProxyOption) *Proxy {
	ctx, ok := inv.Caller.(*CallCtx)
	if !ok {
		panic("replication: Nested called outside a replicated dispatch")
	}
	p := ctx.eng.Proxy(ref, opts...)
	p.ctx = ctx
	return p
}

// Invoke performs a twoway invocation and returns the decoded outcome.
func (p *Proxy) Invoke(op string, args ...cdr.Value) ([]cdr.Value, error) {
	return p.call(op, args, false)
}

// InvokeOneway multicasts an invocation without waiting for a reply.
func (p *Proxy) InvokeOneway(op string, args ...cdr.Value) error {
	_, err := p.call(op, args, true)
	return err
}

func (p *Proxy) nextKey(op string) opKey {
	if p.ctx != nil {
		return opKey{
			ClientID:  fmt.Sprintf("g:%d", p.ctx.gid),
			ParentSeq: p.ctx.msgID,
			OpSeq:     p.ctx.det.Seq("nested-op"),
		}
	}
	return opKey{
		ClientID:  "c:" + p.eng.cfg.Node,
		ParentSeq: 0,
		OpSeq:     p.eng.nextRootSeq(),
	}
}

func (p *Proxy) call(op string, args []cdr.Value, oneway bool) ([]cdr.Value, error) {
	key := p.nextKey(op)
	inv := &msgInvocation{
		GroupID:   p.gid,
		Key:       key,
		Operation: op,
		Args:      orb.EncodeRequestBody(args),
		Oneway:    oneway,
	}
	payload, err := encodeWire(inv)
	if err != nil {
		return nil, err
	}

	if oneway {
		return nil, p.eng.ringFor(p.gid).Multicast(invGroupName(p.gid), payload)
	}

	// Subscribe to the group's reply stream before sending, so the reply
	// cannot race the subscription.
	p.eng.ensureReplyJoined(p.gid)

	pc, err := p.eng.registerCall(key, p.votes)
	if err != nil {
		return nil, err
	}
	defer p.eng.unregisterCall(key)

	if err := p.eng.ringFor(p.gid).Multicast(invGroupName(p.gid), payload); err != nil {
		return nil, err
	}

	deadline := getTimer(p.timeout)
	defer putTimer(deadline)
	retry := getTimer(p.backoffAfter(0))
	defer putTimer(retry)
	for attempt := 0; ; {
		select {
		case rep, ok := <-pc.ch:
			if !ok {
				return nil, ErrEngineStopped
			}
			return wireToOutcome(rep.Status, rep.Body)
		case <-retry.C:
			// Retransmit with the same operation identifier: the group
			// suppresses the duplicate and re-sends the logged reply if the
			// operation already executed (FT-CORBA request retention).
			// Retransmissions back off exponentially (with jitter, bounded
			// by MaxRetryInterval) so a partitioned or failing-over group is
			// not hammered at a fixed rate by every blocked client.
			p.eng.stat.retries.Add(1)
			if err := p.eng.ringFor(p.gid).Multicast(invGroupName(p.gid), payload); err != nil {
				return nil, err
			}
			attempt++
			retry.Reset(p.backoffAfter(attempt))
		case <-deadline.C:
			return nil, fmt.Errorf("%w: %s on group %d", ErrCallTimeout, op, p.gid)
		case <-p.eng.stopCh:
			return nil, ErrEngineStopped
		}
	}
}
