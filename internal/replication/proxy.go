package replication

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/nondet"
	"repro/internal/orb"
)

// timerPool recycles the two timers every twoway invocation arms (call
// deadline, retransmission backoff). On the fast path neither ever fires
// — the reply lands in microseconds — so without pooling the timers are
// pure per-call garbage plus two runtime timer insertions.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putTimer stops t, drains a pending fire, and recycles it. Callers must
// have no outstanding receive on t.C.
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// CallCtx is attached to orb.Invocation.Caller while a replica executes, so
// servants can perform deterministic nested invocations: every replica of
// the calling group derives the identical operation identifier, letting the
// target group suppress the duplicates.
type CallCtx struct {
	eng   *Engine
	gid   uint64
	msgID uint64
	det   *nondet.Context
}

// ProxyOption customizes a group proxy.
type ProxyOption func(*Proxy)

// WithVotes makes the proxy wait for n replies and return the majority
// outcome (ACTIVE_WITH_VOTING on the client side).
func WithVotes(n int) ProxyOption {
	return func(p *Proxy) {
		if n > 0 {
			p.votes = n
		}
	}
}

// WithShard pins the target group to the given transport shard (0-based)
// instead of the deterministic hash route. Clients need this only for
// groups created with an explicit ftcorba.Properties.Shard placement —
// core.Domain.Proxy applies it automatically from the Replication
// Manager's record. The pin is recorded engine-wide so retransmissions and
// the reply subscription use the same ring.
func WithShard(shard int) ProxyOption {
	return func(p *Proxy) {
		if shard >= 0 {
			p.shard = shard + 1
		}
	}
}

// WithLFFastPath enables the LEADER_FOLLOWER direct lane on this proxy:
// writes go straight to the group leader (one unicast + one unicast reply,
// no totem entry on the client's critical path), and the listed read-only
// operations are served from any replica's local state under its read
// lease. On timeout or redirect the proxy falls back to the ordered
// multicast path, so liveness never depends on the fast path.
func WithLFFastPath(readOps ...string) ProxyOption {
	return func(p *Proxy) {
		p.lf = true
		p.lfReadOps = make(map[string]bool, len(readOps))
		for _, op := range readOps {
			p.lfReadOps[op] = true
		}
	}
}

// WithLFAttemptTimeout overrides how long a direct-lane attempt waits
// before falling back to the ordered path (default 25ms).
func WithLFAttemptTimeout(d time.Duration) ProxyOption {
	return func(p *Proxy) {
		if d > 0 {
			p.lfAttempt = d
		}
	}
}

// WithTimeout overrides the engine's call timeout for this proxy.
func WithTimeout(d time.Duration) ProxyOption {
	return func(p *Proxy) {
		if d > 0 {
			p.timeout = d
		}
	}
}

// WithRetryInterval overrides the base retransmission interval (the
// backoff starting point).
func WithRetryInterval(d time.Duration) ProxyOption {
	return func(p *Proxy) {
		if d > 0 {
			p.retry = d
			if p.maxRetry < d {
				p.maxRetry = 8 * d
			}
		}
	}
}

// Proxy issues invocations to one object group. It is safe for concurrent
// use.
type Proxy struct {
	eng      *Engine
	gid      uint64
	votes    int
	shard    int // 1-based explicit shard pin; 0 = engine routing
	timeout  time.Duration
	retry    time.Duration // base retransmission interval
	maxRetry time.Duration // backoff cap
	ctx      *CallCtx      // non-nil for nested (deterministic) proxies

	// Leader-follower fast path (WithLFFastPath).
	lf        bool
	lfReadOps map[string]bool
	lfAttempt time.Duration
	lfSeq     atomic.Uint64 // session token: highest leader seq observed
	lfRR      atomic.Uint32 // read-target rotor
}

// Proxy creates a root (client-side) proxy for the group.
func (e *Engine) Proxy(ref GroupRef, opts ...ProxyOption) *Proxy {
	p := &Proxy{
		eng:       e,
		gid:       ref.ID,
		votes:     1,
		timeout:   e.cfg.CallTimeout,
		retry:     e.cfg.RetryInterval,
		maxRetry:  e.cfg.MaxRetryInterval,
		lfAttempt: 25 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(p)
	}
	if p.shard > 0 {
		e.PinShard(p.gid, p.shard-1)
	}
	return p
}

// backoffAfter returns the wait before the next retransmission: the base
// interval doubled per attempt, capped, with ±25% jitter so a herd of
// retrying clients does not resynchronize on the recovering group.
func (p *Proxy) backoffAfter(attempt int) time.Duration {
	d := p.retry << uint(attempt)
	if d <= 0 || d > p.maxRetry {
		d = p.maxRetry
	}
	jitter := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + jitter
}

// Nested creates a proxy for a nested invocation from inside a replica's
// Dispatch. All replicas of the calling group produce the same operation
// identifiers, so the target group executes the operation exactly once.
// It panics if inv did not come through the replication engine.
func Nested(inv *orb.Invocation, ref GroupRef, opts ...ProxyOption) *Proxy {
	ctx, ok := inv.Caller.(*CallCtx)
	if !ok {
		panic("replication: Nested called outside a replicated dispatch")
	}
	p := ctx.eng.Proxy(ref, opts...)
	p.ctx = ctx
	return p
}

// Invoke performs a twoway invocation and returns the decoded outcome.
func (p *Proxy) Invoke(op string, args ...cdr.Value) ([]cdr.Value, error) {
	return p.call(op, args, false)
}

// InvokeOneway multicasts an invocation without waiting for a reply.
func (p *Proxy) InvokeOneway(op string, args ...cdr.Value) error {
	_, err := p.call(op, args, true)
	return err
}

func (p *Proxy) nextKey(op string) opKey {
	if p.ctx != nil {
		return opKey{
			ClientID:  fmt.Sprintf("g:%d", p.ctx.gid),
			ParentSeq: p.ctx.msgID,
			OpSeq:     p.ctx.det.Seq("nested-op"),
		}
	}
	return opKey{
		ClientID:  "c:" + p.eng.cfg.Node,
		ParentSeq: 0,
		OpSeq:     p.eng.nextRootSeq(),
	}
}

// lfBump advances the proxy's session token to seq (monotone).
func (p *Proxy) lfBump(seq uint64) {
	for {
		cur := p.lfSeq.Load()
		if seq <= cur || p.lfSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// lfCall attempts the LEADER_FOLLOWER direct lane: a unicast submit to
// the chosen replica and a unicast reply back, bypassing totem on the
// client's critical path entirely. Reads rotate across all replicas
// (served under their leases), writes go to the leader. One redirect is
// honored; any other failure returns done=false and the caller falls
// back to the ordered path with the same operation key.
func (p *Proxy) lfCall(key opKey, op string, args []cdr.Value) ([]cdr.Value, error, bool) {
	ring := p.eng.ringFor(p.gid)
	members := ring.GroupMembers(invGroupName(p.gid))
	if len(members) == 0 {
		return nil, nil, false
	}
	read := p.lfReadOps[op]
	target := members[0]
	if read {
		target = members[int(p.lfRR.Add(1))%len(members)]
	}
	sub := &msgLfSubmit{
		GroupID:   p.gid,
		Key:       key,
		Operation: op,
		Args:      orb.EncodeRequestBody(args),
		ReadOnly:  read,
		MinSeq:    p.lfSeq.Load(),
		From:      p.eng.cfg.Node,
	}
	payload, err := encodeWire(sub)
	if err != nil {
		return nil, nil, false
	}

	for attempt := 0; attempt < 2; attempt++ {
		pc, rerr := p.eng.registerCall(key, 1)
		if rerr != nil {
			return nil, rerr, true
		}
		if serr := ring.SendDirect(target, invGroupName(p.gid), payload); serr != nil {
			p.eng.unregisterCall(key)
			return nil, nil, false
		}
		timer := getTimer(p.lfAttempt)
		select {
		case rep, ok := <-pc.ch:
			putTimer(timer)
			if !ok {
				return nil, ErrEngineStopped, true
			}
			if rep.Status == replyRedirect {
				next := string(rep.Body)
				if next == "" || next == target {
					return nil, nil, false
				}
				target = next
				continue
			}
			p.lfBump(rep.ExecMsgID)
			out, derr := wireToOutcome(rep.Status, rep.Body)
			return out, derr, true
		case <-timer.C:
			putTimer(timer)
			p.eng.unregisterCall(key)
			return nil, nil, false
		case <-p.eng.stopCh:
			putTimer(timer)
			p.eng.unregisterCall(key)
			return nil, ErrEngineStopped, true
		}
	}
	return nil, nil, false
}

func (p *Proxy) call(op string, args []cdr.Value, oneway bool) ([]cdr.Value, error) {
	key := p.nextKey(op)
	inv := &msgInvocation{
		GroupID:   p.gid,
		Key:       key,
		Operation: op,
		Args:      orb.EncodeRequestBody(args),
		Oneway:    oneway,
	}
	payload, err := encodeWire(inv)
	if err != nil {
		return nil, err
	}

	if oneway {
		return nil, p.eng.ringFor(p.gid).Multicast(invGroupName(p.gid), payload)
	}

	if p.lf && p.votes == 1 {
		if out, lfErr, done := p.lfCall(key, op, args); done {
			return out, lfErr
		}
		// Fast path declined (timeout, redirect exhaustion, no view yet):
		// fall through to the ordered path with the same operation key, so
		// a submit that did reach the leader dedups instead of re-running.
	}

	// Subscribe to the group's reply stream before sending, so the reply
	// cannot race the subscription.
	p.eng.ensureReplyJoined(p.gid)

	pc, err := p.eng.registerCall(key, p.votes)
	if err != nil {
		return nil, err
	}
	defer p.eng.unregisterCall(key)

	if err := p.eng.ringFor(p.gid).Multicast(invGroupName(p.gid), payload); err != nil {
		return nil, err
	}

	deadline := getTimer(p.timeout)
	defer putTimer(deadline)
	retry := getTimer(p.backoffAfter(0))
	defer putTimer(retry)
	for attempt := 0; ; {
		select {
		case rep, ok := <-pc.ch:
			if !ok {
				return nil, ErrEngineStopped
			}
			if p.lf {
				// Ordered-path replies on LF groups carry lfMsgID(epoch,
				// seq); keep the session token moving so follower reads
				// stay read-your-writes after a fallback write.
				p.lfBump(rep.ExecMsgID & lfSeqMask)
			}
			return wireToOutcome(rep.Status, rep.Body)
		case <-retry.C:
			// Retransmit with the same operation identifier: the group
			// suppresses the duplicate and re-sends the logged reply if the
			// operation already executed (FT-CORBA request retention).
			// Retransmissions back off exponentially (with jitter, bounded
			// by MaxRetryInterval) so a partitioned or failing-over group is
			// not hammered at a fixed rate by every blocked client.
			p.eng.stat.retries.Add(1)
			if err := p.eng.ringFor(p.gid).Multicast(invGroupName(p.gid), payload); err != nil {
				return nil, err
			}
			attempt++
			retry.Reset(p.backoffAfter(attempt))
		case <-deadline.C:
			return nil, fmt.Errorf("%w: %s on group %d", ErrCallTimeout, op, p.gid)
		case <-p.eng.stopCh:
			return nil, ErrEngineStopped
		}
	}
}
