package replication

// Leader-follower replication (LLFT-style, "The Low Latency Fault
// Tolerance System"): the group leader — the senior primary-component
// member, elected by the existing EVS membership — assigns a per-group
// sequence to each invocation, executes it immediately, and answers the
// client, while the ordered invocation streams to the followers over the
// ordered multicast path off the client's critical path. Followers
// re-execute in leader order, so every replica converges on the same
// state without paying total-order sequencing per invocation.
//
// Identifiers: an LF operation's message id is lfMsgID(epoch, seq) —
// the ring epoch the leader held at assignment in the high bits, the
// leader sequence in the low bits. Epochs only grow across leadership
// changes and the sequence continues across them (a new leader resumes
// from its applied high-water mark), so LF ids are monotone and live in
// the same id space the WAL, checkpoint, and state-transfer machinery
// already orders by.
//
// Acks: a direct-lane write reply is released only when the leader's own
// order message comes back through agreed delivery — at that point every
// current member has the order (or the datagram reached a survivor), so
// leader failover cannot lose an acknowledged invocation (the residual
// window is the same transitional-view caveat the base protocol
// documents). Ordered-path replies are multicast after the order message
// on the same FIFO lane, which gives the equivalent guarantee for free.
//
// Reads: time-bounded leases, granted by the leader through ordered
// multicast, let any replica serve operations listed in
// GroupDef.ReadOnlyOps from local state without entering totem at all.
// Each replica computes its own expiry as local-clock-at-delivery + Dur
// (no cross-node clock synchronization; guard bands absorb bounded rate
// skew and delivery lag). Every membership change revokes the lease, and
// a new leader fences writes for LeaseDuration + LeaseGuard past
// takeover, so a reader that has not yet observed the view change can
// only ever serve pre-failover state while no newer write commits.
// Leader reads are linearizable; follower reads are session-consistent
// (read-your-writes and monotonic reads via the MinSeq session token
// clients carry).

import (
	"time"

	"repro/internal/cdr"
	"repro/internal/nondet"
	"repro/internal/orb"
	"repro/internal/totem"
	"repro/internal/wal"
)

// lfSeqMask extracts the leader sequence from an LF message id.
const lfSeqMask = 1<<40 - 1

// lfMsgID composes the LF message id from the leader's ring epoch and
// per-group sequence. Same packing as totem message ids, so LF ids
// compare correctly against checkpoint horizons.
func lfMsgID(epoch, seq uint64) uint64 { return totem.MsgIDFor(epoch, seq) }

// Executor task kinds for the LF state machine.
type taskLfSubmit struct {
	m *msgLfSubmit
}

type taskLfOrder struct {
	msgID uint64 // totem id of the delivery (buffered-replay horizon)
	m     *msgLfOrder
}

type taskLfLease struct {
	m *msgLfLease
}

// taskLfUnblock fires when a new leader's post-takeover write fence may
// have expired, draining ordered-path writes held behind it.
type taskLfUnblock struct{}

// lfPendingReply is a direct-lane write reply awaiting the ack gate (the
// leader's own agreed delivery of the order message).
type lfPendingReply struct {
	from string
	rep  *msgReply
}

// lfHeldOp is an ordered-path invocation held behind the write fence.
type lfHeldOp struct {
	t   taskInvoke
	rec *opRecord
}

// lfLeaseLiveLocked reports (with r.mu held) whether this replica holds a
// usable read lease: granted by the current view's leader, not fenced off
// by a leadership change, and not within LeaseGuard of expiry.
func (r *replica) lfLeaseLiveLocked(now time.Time) bool {
	return r.lfLeaseHold != "" &&
		len(r.members) > 0 && r.lfLeaseHold == r.members[0] &&
		r.lfLeaseEpoch >= r.lfFence &&
		now.Add(r.eng.cfg.LeaseGuard).Before(r.lfLeaseExp)
}

// lfSendReply sends a direct-lane reply back to the submitting node.
func (r *replica) lfSendReply(to string, m *msgLfReply) {
	if payload := r.eng.encodeOrReport(m); payload != nil {
		_ = r.eng.ringFor(r.def.ID).SendDirect(to, repGroupName(r.def.ID), payload)
	}
}

// lfRedirect answers a direct-lane submit this replica cannot serve.
// target names the node to retry at; empty tells the client to fall back
// to the ordered path.
func (r *replica) lfRedirect(m *msgLfSubmit, target string) {
	r.eng.stat.lfRedirects.Add(1)
	r.lfSendReply(m.From, &msgLfReply{
		GroupID:  r.def.ID,
		Key:      m.Key,
		Status:   replyRedirect,
		Body:     []byte(target),
		Node:     r.eng.cfg.Node,
		Redirect: target,
	})
}

// onLfSubmit handles a direct-lane submit: reads go through the lease
// check, writes through leader assignment.
func (r *replica) onLfSubmit(t taskLfSubmit) {
	m := t.m
	if m.ReadOnly {
		r.lfServeRead(m)
		return
	}

	r.mu.lock()
	node := r.eng.cfg.Node
	leader := len(r.members) > 0 && r.members[0] == node
	target := ""
	if len(r.members) > 0 && r.members[0] != node {
		target = r.members[0]
	}
	healthy := leader && !r.secondary && !r.syncing
	blocked := r.eng.now().Before(r.lfBlockUntil)
	rec, have := r.dedup[m.Key]
	var logged *msgReply
	if have && rec.answered {
		logged = rec.reply
	}
	r.mu.unlock()

	if logged != nil {
		// Retransmission of an already-answered operation: re-send the
		// logged reply (FT-CORBA request retention) on the direct lane.
		r.eng.stat.dupInvocations.Add(1)
		r.lfSendReply(m.From, &msgLfReply{
			GroupID: r.def.ID,
			Key:     m.Key,
			Status:  logged.Status,
			Body:    logged.Body,
			Node:    node,
			Seq:     logged.ExecMsgID & lfSeqMask,
		})
		return
	}
	if have && rec.executedLocal {
		return // executed but unanswered (mid-assignment retry): first copy answers
	}
	if !healthy || blocked {
		// Not the live leader (or writes are fenced): bounce the client.
		// During the fence target is empty, sending the write to the
		// ordered path where the hold queue preserves it.
		if blocked {
			target = ""
		}
		r.lfRedirect(m, target)
		return
	}

	r.mu.lock()
	if rec == nil {
		rec = &opRecord{}
		r.dedup[m.Key] = rec
		r.dedupGCLocked(m.Key)
	}
	rec.deliveredInv = true
	r.mu.unlock()

	rep, seq := r.lfAssign(m.Key, m.Operation, m.Args, false, rec)
	if rep == nil {
		r.lfRedirect(m, "")
		return
	}
	// The reply waits for the ack gate: our own agreed delivery of the
	// order message releases it in onLfOrder.
	r.lfPending[seq] = lfPendingReply{from: m.From, rep: rep}
}

// lfServeRead serves a read-only operation from local state under the
// read lease — no totem entry, no WAL record, no dedup marking (reads are
// side-effect-free; an identical retry re-reads harmlessly).
func (r *replica) lfServeRead(m *msgLfSubmit) {
	now := r.eng.now()
	r.mu.lock()
	okOp := contains(r.def.ReadOnlyOps, m.Operation)
	live := okOp && !r.syncing && !r.secondary && r.lfLeaseLiveLocked(now)
	applied := r.lfApplied
	leaseEpoch := r.lfLeaseEpoch
	target := ""
	if len(r.members) > 0 && r.members[0] != r.eng.cfg.Node {
		target = r.members[0]
	}
	r.mu.unlock()

	if !okOp {
		// Not marked readonly in the group definition: a mislabeled client
		// must not bypass the total order. Force the ordered path.
		r.lfRedirect(m, "")
		return
	}
	if !live || applied < m.MinSeq {
		// No usable lease, or this replica is behind the client's session
		// token: the leader is never behind, try there.
		r.lfRedirect(m, target)
		return
	}

	args, err := orb.DecodeRequestBody(m.Args)
	var results []cdr.Value
	if err == nil {
		det := nondet.NewContext(r.def.ID, lfMsgID(leaseEpoch, applied), epochAnchor)
		results, err = r.servant.Dispatch(&orb.Invocation{
			Operation: m.Operation,
			Args:      args,
			Det:       det,
		})
	}
	r.eng.stat.lfReads.Add(1)
	rep := &msgLfReply{
		GroupID: r.def.ID,
		Key:     m.Key,
		Node:    r.eng.cfg.Node,
		Seq:     applied,
	}
	rep.Status, rep.Body = outcomeToWire(results, err)
	r.lfSendReply(m.From, rep)
}

// lfAssign is the leader's single write entry point: it claims the next
// leader sequence, logs and ships the order record *before* executing
// (and therefore before any ack — the cold-passive RPO-zero discipline),
// streams the order to the followers, and executes immediately. Returns
// the computed reply and the assigned sequence (nil on encode failure).
func (r *replica) lfAssign(key opKey, op string, args []byte, oneway bool, rec *opRecord) (*msgReply, uint64) {
	r.mu.lock()
	epoch := r.lfEpoch
	if r.lfSeq < r.lfApplied {
		// Fresh leadership (takeover, self-promotion, adoption): resume
		// numbering from the applied high-water mark.
		r.lfSeq = r.lfApplied
	}
	r.mu.unlock()
	r.lfSeq++
	seq := r.lfSeq
	id := lfMsgID(epoch, seq)

	order := &msgLfOrder{
		GroupID:   r.def.ID,
		Epoch:     epoch,
		Seq:       seq,
		Leader:    r.eng.cfg.Node,
		Key:       key,
		Operation: op,
		Args:      args,
		Oneway:    oneway,
	}
	data := r.eng.encodeOrReport(order)
	if data == nil {
		r.lfSeq--
		return nil, 0
	}
	wrec := wal.Record{Kind: wal.KindUpdate, MsgID: id, Op: opRecInvoke + op, Data: data}
	r.logUpdate(wrec)
	r.shipUpdate(wrec)
	_ = r.eng.ringFor(r.def.ID).Multicast(invGroupName(r.def.ID), data)

	rep := r.lfExecute(order, rec)
	r.maybeCheckpoint()
	return rep, seq
}

// lfExecute runs one ordered LF invocation on the local servant — at the
// leader this happens at assignment time, at followers at delivery time.
// The deterministic context is keyed on (epoch, seq), which both sides
// know, so timestamps and nested-call identifiers agree everywhere.
func (r *replica) lfExecute(m *msgLfOrder, rec *opRecord) *msgReply {
	id := lfMsgID(m.Epoch, m.Seq)
	det := nondet.NewContext(r.def.ID, id, epochAnchor)
	args, err := orb.DecodeRequestBody(m.Args)
	var results []cdr.Value
	if err == nil {
		inv := &orb.Invocation{
			Operation: m.Operation,
			Args:      args,
			Det:       det,
			Caller:    &CallCtx{eng: r.eng, gid: r.def.ID, msgID: id, det: det},
		}
		results, err = r.servant.Dispatch(inv)
	}
	r.eng.stat.executions.Add(1)

	rep := &msgReply{
		GroupID:   r.def.ID,
		Key:       m.Key,
		Node:      r.eng.cfg.Node,
		ExecMsgID: id,
	}
	rep.Status, rep.Body = outcomeToWire(results, err)

	r.mu.lock()
	if id > r.lastExec {
		r.lastExec = id
	}
	if m.Seq > r.lfApplied {
		r.lfApplied = m.Seq
	}
	rec.executedLocal = true
	if !rec.answered {
		// Followers record the reply but never transmit it: only the
		// leader answers. After promotion the stored reply answers client
		// retries, preserving exactly-once across failover.
		rec.answered = true
		rec.reply = rep
	}
	r.mu.unlock()
	return rep
}

// onLfOrder handles one delivery from the leader's order stream.
func (r *replica) onLfOrder(t taskLfOrder) {
	m := t.m
	r.mu.lock()
	syncing := r.syncing
	r.mu.unlock()
	if syncing {
		// Hold in order; adoptState replays past the transferred horizon.
		r.buffer = append(r.buffer, t)
		return
	}

	r.mu.lock()
	accept := len(r.members) > 0 && r.members[0] == m.Leader && m.Epoch >= r.lfFence
	r.mu.unlock()
	if !accept {
		// A deposed leader's stragglers (queued before a reformation,
		// multicast on the new ring): the fence keeps them from mutating
		// state the new leadership already owns.
		return
	}

	if m.Leader == r.eng.cfg.Node {
		// Our own order back through agreed delivery: every current member
		// has it — release the direct-lane ack.
		if pr, ok := r.lfPending[m.Seq]; ok {
			delete(r.lfPending, m.Seq)
			r.lfSendReply(pr.from, &msgLfReply{
				GroupID: r.def.ID,
				Key:     m.Key,
				Status:  pr.rep.Status,
				Body:    pr.rep.Body,
				Node:    r.eng.cfg.Node,
				Seq:     m.Seq,
			})
		}
		return
	}

	r.mu.lock()
	rec, ok := r.dedup[m.Key]
	if !ok {
		rec = &opRecord{}
		r.dedup[m.Key] = rec
		r.dedupGCLocked(m.Key)
	}
	rec.deliveredInv = true
	executed := rec.executedLocal
	id := lfMsgID(m.Epoch, m.Seq)
	stale := id <= r.lastExec && r.lastExec != 0 && executed
	r.mu.unlock()
	if executed || stale {
		return // covered by a snapshot or an earlier delivery
	}

	// Follower: log before executing so a crash-restart rebuilds from the
	// local WAL (the leader's periodic checkpoints truncate it).
	if data := r.eng.encodeOrReport(m); data != nil {
		r.logUpdate(wal.Record{Kind: wal.KindUpdate, MsgID: id, Op: opRecInvoke + m.Operation, Data: data})
	}
	r.lfExecute(m, rec)
}

// onLfLease installs an ordered lease grant. Expiry is computed from the
// local clock at delivery — no cross-node clock synchronization.
func (r *replica) onLfLease(t taskLfLease) {
	m := t.m
	now := r.eng.now()
	r.mu.lock()
	if len(r.members) > 0 && r.members[0] == m.Leader && m.Epoch >= r.lfFence {
		r.lfLeaseHold = m.Leader
		r.lfLeaseEpoch = m.Epoch
		r.lfLeaseExp = now.Add(m.Dur)
	}
	r.mu.unlock()
}

// lfMaybeGrant multicasts a lease grant/renewal if this replica is the
// live leader. Called from the engine's renewal loop (~Dur/3) and once
// immediately at takeover.
func (r *replica) lfMaybeGrant() {
	r.mu.lock()
	ok := r.def.Style.IsLeaderFollower() &&
		len(r.members) > 0 && r.members[0] == r.eng.cfg.Node &&
		!r.secondary && !r.syncing
	epoch := r.lfEpoch
	r.mu.unlock()
	if !ok {
		return
	}
	r.eng.stat.lfLeases.Add(1)
	if payload := r.eng.encodeOrReport(&msgLfLease{
		GroupID: r.def.ID,
		Epoch:   epoch,
		Leader:  r.eng.cfg.Node,
		Dur:     r.eng.cfg.LeaseDuration,
	}); payload != nil {
		_ = r.eng.ringFor(r.def.ID).Multicast(invGroupName(r.def.ID), payload)
	}
}

// lfClassic handles an ordered-path invocation on an LF group (client
// fallback, retransmissions, fulfillment replay). The leader treats it as
// a submit: assign, execute, stream the order, and multicast the reply —
// the reply is FIFO-ordered after the order message, so its delivery
// implies the order reached the group. Followers ignore it: the order
// stream brings the operation to them.
func (r *replica) lfClassic(t taskInvoke, rec *opRecord) {
	r.mu.lock()
	leader := len(r.members) > 0 && r.members[0] == r.eng.cfg.Node
	blocked := r.eng.now().Before(r.lfBlockUntil)
	r.mu.unlock()
	if !leader {
		return
	}
	if blocked {
		// Post-takeover write fence: hold until every lease the old leader
		// granted has expired at its reader (taskLfUnblock drains).
		r.lfHeld = append(r.lfHeld, lfHeldOp{t: t, rec: rec})
		return
	}
	r.lfClassicRun(t, rec)
}

func (r *replica) lfClassicRun(t taskInvoke, rec *opRecord) {
	r.mu.lock()
	executed := rec.executedLocal
	r.mu.unlock()
	if executed {
		return // a direct-lane copy won the race while this one was held
	}
	rep, _ := r.lfAssign(t.m.Key, t.m.Operation, t.m.Args, t.m.Oneway, rec)
	if rep != nil {
		r.multicastReply(rep)
	}
}

// onLfUnblock drains ordered-path writes held behind the takeover fence,
// re-arming itself if the fence has not expired yet.
func (r *replica) onLfUnblock() {
	r.mu.lock()
	until := r.lfBlockUntil
	r.mu.unlock()
	if now := r.eng.now(); now.Before(until) {
		r.lfArmUnblock(until.Sub(now))
		return
	}
	held := r.lfHeld
	r.lfHeld = nil
	for _, h := range held {
		r.lfClassicRun(h.t, h.rec)
	}
}

// lfArmUnblock schedules a fence-expiry check on the executor.
func (r *replica) lfArmUnblock(d time.Duration) {
	time.AfterFunc(d+time.Millisecond, func() { r.q.push(taskLfUnblock{}) })
}

// lfOnView runs the LF view-change logic after the generic membership
// bookkeeping: epoch/fence maintenance, lease revocation, and leader
// takeover with the write fence that keeps stale-lease reads linearizable.
func (r *replica) lfOnView(old []string, t taskView) {
	node := r.eng.cfg.Node
	oldLeader := ""
	if len(old) > 0 {
		oldLeader = old[0]
	}
	newLeader := ""
	if len(t.members) > 0 {
		newLeader = t.members[0]
	}
	leaderChanged := oldLeader != newLeader
	now := r.eng.now()

	r.mu.lock()
	r.lfEpoch = t.epoch
	if leaderChanged {
		// Fence: the deposed leadership's stragglers must not apply.
		r.lfFence = t.epoch
	}
	// Revocation-on-view-change: every membership change invalidates the
	// current grant; the renewal stream re-establishes it within ~Dur/3.
	r.lfLeaseHold = ""
	r.lfLeaseExp = time.Time{}
	secondary := r.secondary
	syncing := r.syncing
	promoted := leaderChanged && newLeader == node && oldLeader != "" && !secondary && !syncing
	if promoted {
		r.lfBlockUntil = now.Add(r.eng.cfg.LeaseDuration + r.eng.cfg.LeaseGuard)
	}
	r.mu.unlock()

	if leaderChanged && len(r.lfPending) > 0 {
		// Unreleased acks from our deposed leadership: the clients' direct
		// attempts time out and fall back to the ordered path, where the
		// dedup table answers with the logged replies.
		r.lfPending = make(map[uint64]lfPendingReply)
	}
	if promoted {
		r.eng.stat.lfTakeovers.Add(1)
		// Every acked invocation the old leader ordered was delivered to
		// this survivor before the view (virtual synchrony), so state is
		// current; numbering resumes from lfApplied on the next assign.
		// Announce leadership immediately — the grant doubles as the
		// clients' redirect-target refresh.
		r.lfMaybeGrant()
		r.lfArmUnblock(r.eng.cfg.LeaseDuration + r.eng.cfg.LeaseGuard)
	}
}
