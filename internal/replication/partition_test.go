package replication

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/orb"
)

// inventory models the paper's automobile example: a stock counter that
// sells cars, with a fulfillment mapping that turns a partitioned-time
// "sell" into a "sellOrBackOrder" applied to the merged state.
type inventory struct {
	mu         sync.Mutex
	stock      int64
	sold       int64
	backOrders int64
}

func (s *inventory) RepoID() string { return "IDL:repro/Inventory:1.0" }

func (s *inventory) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch inv.Operation {
	case "stockUp":
		s.stock += int64(inv.Args[0].AsLong())
		return []cdr.Value{cdr.LongLong(s.stock)}, nil
	case "sell":
		if s.stock <= 0 {
			return nil, &orb.UserException{Name: "IDL:repro/OutOfStock:1.0"}
		}
		s.stock--
		s.sold++
		return []cdr.Value{cdr.LongLong(s.stock)}, nil
	case "sellOrBackOrder":
		if s.stock > 0 {
			s.stock--
			s.sold++
		} else {
			s.backOrders++
			s.sold++
		}
		return []cdr.Value{cdr.LongLong(s.stock)}, nil
	case "report":
		return []cdr.Value{cdr.LongLong(s.stock), cdr.LongLong(s.sold), cdr.LongLong(s.backOrders)}, nil
	default:
		return nil, &orb.UserException{Name: "IDL:repro/BadOp:1.0"}
	}
}

func (s *inventory) MapFulfillment(op string, args []cdr.Value) (string, []cdr.Value, bool) {
	if op == "sell" {
		return "sellOrBackOrder", args, true
	}
	// Reads performed while partitioned need no fulfillment.
	if op == "report" {
		return "", nil, false
	}
	return op, args, true
}

func (s *inventory) GetState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(s.stock)
	e.WriteLongLong(s.sold)
	e.WriteLongLong(s.backOrders)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (s *inventory) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	stock, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	sold, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	back, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.stock, s.sold, s.backOrders = stock, sold, back
	s.mu.Unlock()
	return nil
}

func (s *inventory) snapshot() (stock, sold, back int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stock, s.sold, s.backOrders
}

// hostInventory places inventory replicas (bypassing the account-based
// helper).
func hostInventory(t *testing.T, c *cluster, def GroupDef, on ...string) map[string]*inventory {
	t.Helper()
	servants := make(map[string]*inventory, len(on))
	for _, node := range on {
		s := &inventory{}
		servants[node] = s
		if err := c.engines[node].HostReplica(def, s, true); err != nil {
			t.Fatal(err)
		}
	}
	c.waitMembers(def.ID, on)
	return servants
}

// TestPartitionBothComponentsOperate reproduces the paper's automobile
// scenario: a partitioned group keeps serving in both components; at
// remerge the primary component's state is transferred and the secondary's
// operations are re-applied as fulfillment operations.
func TestPartitionFulfillment(t *testing.T) {
	c := newCluster(t, 4)
	def := GroupDef{ID: 20, Name: "inv", Style: Active}
	servants := hostInventory(t, c, def, "n1", "n2", "n3")

	// Seed stock through a client on n4.
	seed := c.engines["n4"].Proxy(GroupRef{ID: 20})
	if _, err := seed.Invoke("stockUp", cdr.Long(10)); err != nil {
		t.Fatal(err)
	}

	// Partition: {n1,n2,n4} is the majority (primary) component; {n3} is a
	// disconnected showroom.
	c.fabric.Partition([]string{"n1", "n2", "n4"}, []string{"n3"})
	waitFor(t, 5*time.Second, "secondary component view", func() bool {
		st, ok := c.engines["n3"].GroupStatus(20)
		return ok && st.Secondary && len(st.Members) == 1
	})
	waitFor(t, 5*time.Second, "primary component view", func() bool {
		st, ok := c.engines["n1"].GroupStatus(20)
		return ok && !st.Secondary && len(st.Members) == 2
	})

	// Sales continue on both sides of the partition.
	primarySide := c.engines["n4"].Proxy(GroupRef{ID: 20})
	for i := 0; i < 3; i++ {
		if _, err := primarySide.Invoke("sell"); err != nil {
			t.Fatalf("primary-side sell %d: %v", i, err)
		}
	}
	secondarySide := c.engines["n3"].Proxy(GroupRef{ID: 20})
	for i := 0; i < 2; i++ {
		if _, err := secondarySide.Invoke("sell"); err != nil {
			t.Fatalf("secondary-side sell %d: %v", i, err)
		}
	}

	// The disconnected showroom sees its own (divergent) state.
	stock3, _, _ := servants["n3"].snapshot()
	if stock3 != 8 {
		t.Fatalf("secondary stock = %d, want 8", stock3)
	}

	// Remerge: state transfer from the primary component, then the
	// secondary's two sales replay as fulfillment operations.
	c.fabric.Heal()
	waitFor(t, 10*time.Second, "fulfillment reconciliation", func() bool {
		for _, node := range []string{"n1", "n2", "n3"} {
			stock, sold, back := servants[node].snapshot()
			if stock != 5 || sold != 5 || back != 0 {
				return false
			}
		}
		return true
	})
	if f := c.engines["n3"].Stats().Fulfillments; f != 2 {
		t.Errorf("fulfillment count = %d, want 2", f)
	}
	// All replicas fully consistent and out of secondary mode.
	for _, node := range []string{"n1", "n2", "n3"} {
		st, _ := c.engines[node].GroupStatus(20)
		if st.Secondary || st.Syncing {
			t.Errorf("%s still secondary/syncing: %+v", node, st)
		}
	}
}

// TestPartitionBackOrder drives the conflict case: both components sell
// more than the remaining stock, so fulfillment generates back orders.
func TestPartitionBackOrder(t *testing.T) {
	c := newCluster(t, 4)
	def := GroupDef{ID: 21, Name: "inv", Style: Active}
	servants := hostInventory(t, c, def, "n1", "n2", "n3")

	seed := c.engines["n4"].Proxy(GroupRef{ID: 21})
	if _, err := seed.Invoke("stockUp", cdr.Long(3)); err != nil {
		t.Fatal(err)
	}

	c.fabric.Partition([]string{"n1", "n2", "n4"}, []string{"n3"})
	waitFor(t, 5*time.Second, "split views", func() bool {
		st3, ok3 := c.engines["n3"].GroupStatus(21)
		st1, ok1 := c.engines["n1"].GroupStatus(21)
		return ok3 && ok1 && st3.Secondary && len(st1.Members) == 2
	})

	primarySide := c.engines["n4"].Proxy(GroupRef{ID: 21})
	for i := 0; i < 3; i++ {
		if _, err := primarySide.Invoke("sell"); err != nil {
			t.Fatal(err)
		}
	}
	secondarySide := c.engines["n3"].Proxy(GroupRef{ID: 21})
	for i := 0; i < 2; i++ {
		if _, err := secondarySide.Invoke("sell"); err != nil {
			t.Fatal(err)
		}
	}

	c.fabric.Heal()
	// Primary sold all 3; the secondary's 2 sales have no stock left and
	// become back orders (rush manufacturing, per the paper).
	waitFor(t, 10*time.Second, "back orders recorded", func() bool {
		for _, node := range []string{"n1", "n2", "n3"} {
			stock, sold, back := servants[node].snapshot()
			if stock != 0 || sold != 5 || back != 2 {
				return false
			}
		}
		return true
	})
}

// TestPartitionWarmPassive checks partitioned operation under a passive
// style: each component's senior surviving member acts as its primary.
func TestPartitionWarmPassive(t *testing.T) {
	c := newCluster(t, 4)
	def := GroupDef{ID: 22, Name: "winv", Style: WarmPassive}
	servants := hostInventory(t, c, def, "n1", "n2", "n3")

	seed := c.engines["n4"].Proxy(GroupRef{ID: 22})
	if _, err := seed.Invoke("stockUp", cdr.Long(6)); err != nil {
		t.Fatal(err)
	}

	c.fabric.Partition([]string{"n1", "n4"}, []string{"n2", "n3"})
	waitFor(t, 5*time.Second, "component views", func() bool {
		st1, ok1 := c.engines["n1"].GroupStatus(22)
		st2, ok2 := c.engines["n2"].GroupStatus(22)
		return ok1 && ok2 && len(st1.Members) == 1 && len(st2.Members) == 2 &&
			st2.Primary == "n2"
	})

	// {n2,n3} kept 2 of 3 members: majority → primary component.
	// {n1} is secondary but keeps serving.
	if st, _ := c.engines["n1"].GroupStatus(22); !st.Secondary {
		t.Fatal("n1 should be the secondary component")
	}
	if st, _ := c.engines["n2"].GroupStatus(22); st.Secondary {
		t.Fatal("n2/n3 should be the primary component")
	}

	majority := c.engines["n2"].Proxy(GroupRef{ID: 22})
	if _, err := majority.Invoke("sell"); err != nil {
		t.Fatalf("majority sell: %v", err)
	}
	minority := c.engines["n1"].Proxy(GroupRef{ID: 22})
	if _, err := minority.Invoke("sell"); err != nil {
		t.Fatalf("minority sell: %v", err)
	}

	c.fabric.Heal()
	waitFor(t, 10*time.Second, "warm passive reconciliation", func() bool {
		for _, node := range []string{"n1", "n2", "n3"} {
			stock, sold, _ := servants[node].snapshot()
			if stock != 4 || sold != 2 {
				return false
			}
		}
		return true
	})
}
