package replication

import (
	"errors"
	"sort"
	"time"

	"repro/internal/cdr"
	"repro/internal/drstore"
	"repro/internal/fault"
	"repro/internal/giop"
	"repro/internal/nondet"
	"repro/internal/orb"
	"repro/internal/wal"
)

// FulfillmentMapper is optionally implemented by servants to translate an
// operation performed in a secondary partition component into the
// fulfillment operation applied to the merged state (e.g. a plain "sell"
// becomes "sellOrBackOrder"). Returning ok=false drops the operation.
// Without the interface, operations replay unchanged.
type FulfillmentMapper interface {
	MapFulfillment(op string, args []cdr.Value) (newOp string, newArgs []cdr.Value, ok bool)
}

// Executor task kinds.
type taskInvoke struct {
	msgID uint64
	m     *msgInvocation
}

type taskReply struct {
	msgID uint64
	m     *msgReply
}

type taskCheckpoint struct {
	msgID uint64
	m     *msgCheckpoint
}

type taskView struct {
	members []string
	epoch   uint64 // ring epoch of the view (LF leadership terms)
}

type taskStateReq struct {
	m *msgStateReq
}

// opRecord is one duplicate-detection entry.
type opRecord struct {
	deliveredInv  bool // the invocation itself was delivered here before
	answered      bool // a reply for the operation has been delivered
	executedLocal bool // this replica executed the operation
	reply         *msgReply
}

type fulfillRec struct {
	op   string
	args []byte
}

// replica is one hosted member of an object group. All fields below `mu`
// are shared between the engine loop and the executor; the remaining
// protocol state is owned by the executor goroutine.
type replica struct {
	eng     *Engine
	def     GroupDef
	servant orb.Servant
	q       *taskQueue
	log     wal.Log

	mu        chanMutex
	dedup     map[opKey]*opRecord
	dedupFIFO []opKey
	members   []string
	secondary bool
	syncing   bool
	lastExec  uint64

	// Leader-follower shared state (guarded by mu; the engine's lease
	// renewal loop and the direct-lane handler read it concurrently with
	// the executor). See lf.go for the protocol.
	lfEpoch      uint64    // ring epoch of the current view
	lfFence      uint64    // minimum order epoch accepted (leadership fence)
	lfApplied    uint64    // highest leader sequence applied locally
	lfLeaseHold  string    // current lease holder ("" = no lease)
	lfLeaseEpoch uint64    // epoch the lease was granted under
	lfLeaseExp   time.Time // local-clock lease expiry
	lfBlockUntil time.Time // new-leader write fence

	// Executor-owned state.
	buffer       []any        // tasks held in order while syncing
	pendingOps   []taskInvoke // delivered, not yet covered (warm backups)
	fulfill      []fulfillRec // operations performed while secondary
	preSplit     []string     // view before this member became secondary
	former       map[string]bool
	opsSinceCk   int
	bytesSinceCk int    // update-record bytes appended since the last checkpoint
	lastLogged   uint64 // newest update-record MsgID appended to the WAL (task-loop owned)
	fulfillSeq   uint64
	everHadView  bool
	stuck        map[string]uint64 // members awaiting state transfer → their advertised lastExec
	lastSnapResp time.Time       // rate limit for state-request answers
	healNudges   int             // post-heal catch-up nudges sent (diagnostics)

	// Leader-follower executor-owned state.
	lfSeq     uint64                    // leader's assignment counter
	lfPending map[uint64]lfPendingReply // direct replies awaiting the ack gate
	lfHeld    []lfHeldOp                // ordered writes held behind the takeover fence
}

// chanMutex is a tiny mutex built on a 1-buffered channel (keeps the
// replica struct copy-safe checks simple and supports try-lock if needed).
type chanMutex chan struct{}

func newChanMutex() chanMutex {
	m := make(chanMutex, 1)
	m <- struct{}{}
	return m
}

func (m chanMutex) lock()   { <-m }
func (m chanMutex) unlock() { m <- struct{}{} }

func newReplica(e *Engine, def GroupDef, servant orb.Servant, syncing bool, log wal.Log) *replica {
	if _, ok := servant.(orb.Checkpointable); !ok || def.Style == Stateless {
		// Nothing to transfer: the replica is operational immediately.
		syncing = false
	}
	return &replica{
		eng:       e,
		def:       def,
		servant:   servant,
		q:         newTaskQueue(),
		log:       log,
		mu:        newChanMutex(),
		dedup:     make(map[opKey]*opRecord),
		syncing:   syncing,
		former:    make(map[string]bool),
		stuck:     make(map[string]uint64),
		lfPending: make(map[uint64]lfPendingReply),
	}
}

func (r *replica) status() GroupStatus {
	r.mu.lock()
	defer r.mu.unlock()
	st := GroupStatus{
		Members:   append([]string(nil), r.members...),
		Secondary: r.secondary,
		Syncing:   r.syncing,
		LastExec:  r.lastExec,
	}
	if len(st.Members) > 0 {
		st.Primary = st.Members[0]
	}
	return st
}

// markAnswered is called from the engine loop the moment a reply is
// delivered: it records the logged reply for duplicate answering and
// implements sender-side response suppression (a replica that learns of
// another replica's response before transmitting its own suppresses its
// own).
func (r *replica) markAnswered(m *msgReply) {
	r.mu.lock()
	rec, ok := r.dedup[m.Key]
	if !ok {
		rec = &opRecord{}
		r.dedup[m.Key] = rec
		r.dedupGCLocked(m.Key)
	}
	if !rec.answered {
		rec.answered = true
		rec.reply = m
	}
	r.mu.unlock()
}

// dedupGCLocked bounds the duplicate-detection table.
func (r *replica) dedupGCLocked(k opKey) {
	r.dedupFIFO = append(r.dedupFIFO, k)
	for len(r.dedupFIFO) > dedupRetain {
		old := r.dedupFIFO[0]
		r.dedupFIFO = r.dedupFIFO[1:]
		delete(r.dedup, old)
	}
}

func (r *replica) executorLoop() {
	for {
		item, ok := r.q.pop(r.eng.stopCh)
		if !ok {
			return
		}
		switch t := item.(type) {
		case taskInvoke:
			r.onInvoke(t)
		case taskReply:
			r.onReply(t)
		case taskCheckpoint:
			r.onCheckpoint(t)
		case taskView:
			r.onView(t)
		case taskStateReq:
			r.onStateReq(t)
		case taskLfSubmit:
			r.onLfSubmit(t)
		case taskLfOrder:
			r.onLfOrder(t)
		case taskLfLease:
			r.onLfLease(t)
		case taskLfUnblock:
			r.onLfUnblock()
		}
	}
}

// isPrimary reports whether this node currently leads the group (senior
// member of the current — possibly component-local — view).
func (r *replica) isPrimary() bool {
	r.mu.lock()
	defer r.mu.unlock()
	return len(r.members) > 0 && r.members[0] == r.eng.cfg.Node
}

// shipsDR reports whether this member ships to the disaster-recovery
// store: the senior member of the primary component. Shipping follows the
// primary component — a secondary component's partition-era operations
// reach the store via fulfillment replay after remerge, not directly —
// and seniority picks exactly one shipper per group (the store's MsgID
// idempotence absorbs the overlap when seniority moves during failover).
func (r *replica) shipsDR() bool {
	if r.eng.cfg.DR == nil {
		return false
	}
	r.mu.lock()
	defer r.mu.unlock()
	return !r.secondary && len(r.members) > 0 && r.members[0] == r.eng.cfg.Node
}

// shipsDRActive reports whether this member ships active-style invocation
// records: every member of the primary component (see process for why
// seniority alone is not enough there).
func (r *replica) shipsDRActive() bool {
	if r.eng.cfg.DR == nil {
		return false
	}
	r.mu.lock()
	defer r.mu.unlock()
	return !r.secondary
}

// shipUpdate sends one update record to the DR store (no-op unless this
// member is the group's shipper).
func (r *replica) shipUpdate(rec wal.Record) {
	if r.shipsDR() {
		_ = r.eng.cfg.DR.AppendUpdate(r.def.ID, rec)
	}
}

// logUpdate appends one update record to the local WAL and advances the
// logged horizon the checkpoint-compaction staleness guard compares
// against. Task-loop only (like bytesSinceCk).
func (r *replica) logUpdate(rec wal.Record) {
	_ = r.log.Append(rec)
	r.bytesSinceCk += len(rec.Data)
	if rec.MsgID > r.lastLogged {
		r.lastLogged = rec.MsgID
	}
}

// shipCheckpoint sends a full-state snapshot plus the covered dedup window
// to the DR store.
func (r *replica) shipCheckpoint(upTo uint64, state []byte, covered []opKey) {
	if !r.shipsDR() {
		return
	}
	refs := make([]drstore.OpRef, len(covered))
	for i, k := range covered {
		refs[i] = drstore.OpRef{ClientID: k.ClientID, ParentSeq: k.ParentSeq, OpSeq: k.OpSeq}
	}
	_ = r.eng.cfg.DR.PutCheckpoint(r.def.ID, drstore.Checkpoint{
		UpToMsgID: upTo,
		State:     state,
		Covered:   refs,
	})
}

func (r *replica) onInvoke(t taskInvoke) {
	r.mu.lock()
	syncing := r.syncing
	secondary := r.secondary
	r.mu.unlock()

	if syncing {
		r.buffer = append(r.buffer, t)
		return
	}
	if secondary && !t.m.Fulfillment {
		// Queue for post-remerge fulfillment (every member of the
		// secondary component keeps the queue so any survivor can send it).
		r.fulfill = append(r.fulfill, fulfillRec{op: t.m.Operation, args: t.m.Args})
	}
	r.process(t, false)
}

// process runs the style-appropriate handling for one delivered
// invocation. replay marks failover re-execution of an already-recorded
// operation.
func (r *replica) process(t taskInvoke, replay bool) {
	r.mu.lock()
	rec, ok := r.dedup[t.m.Key]
	if !ok {
		rec = &opRecord{}
		r.dedup[t.m.Key] = rec
		r.dedupGCLocked(t.m.Key)
	}
	duplicate := rec.deliveredInv
	rec.deliveredInv = true
	answered := rec.answered
	executed := rec.executedLocal
	r.mu.unlock()

	if duplicate && !replay {
		// Receiver-side duplicate suppression: the operation was already
		// delivered (redundant client replicas or retransmission).
		r.eng.stat.dupInvocations.Add(1)
		if answered && r.shouldAnswerDuplicates() {
			r.mu.lock()
			logged := rec.reply
			r.mu.unlock()
			if logged != nil {
				r.multicastReply(logged)
			}
		}
		return
	}
	if executed {
		return
	}

	// Cold passive: every member — primary included — logs the ordered
	// invocation before acting on it, so a crashed-and-restarted replica can
	// rebuild its state from its own write-ahead log (wal.Recover + replay)
	// instead of requiring a full state transfer. The same record ships to
	// the DR store *before* execution (and therefore before any client ack),
	// which is what makes cold-passive RPO zero: an acknowledged operation
	// is always either in a shipped checkpoint's covered window or in a
	// shipped segment.
	if r.def.Style == ColdPassive && !replay {
		if data, err := encodeWire(t.m); err == nil {
			rec := wal.Record{
				Kind:  wal.KindUpdate,
				MsgID: t.msgID,
				Op:    opRecInvoke + t.m.Operation,
				Data:  data,
			}
			r.logUpdate(rec)
			r.shipUpdate(rec)
		}
	}

	// Active styles keep no invocation log locally (every replica holds live
	// state), but with a DR store attached every primary-component member
	// ships the ordered invocations so a standby can rebuild active groups
	// by replay too. Unlike the passive styles — where the shipper and the
	// replier are the same senior member — any active member may be the one
	// whose reply acks the client, so each must ship before executing for
	// RPO zero to hold; the store's MsgID idempotence drops the duplicate
	// copies. Stateless groups ship nothing: there is no state to recover.
	if r.def.Style.IsActive() && r.def.Style != Stateless && !replay && r.shipsDRActive() {
		if data, err := encodeWire(t.m); err == nil {
			r.bytesSinceCk += len(data)
			_ = r.eng.cfg.DR.AppendUpdate(r.def.ID, wal.Record{
				Kind:  wal.KindUpdate,
				MsgID: t.msgID,
				Op:    opRecInvoke + t.m.Operation,
				Data:  data,
			})
		}
	}

	// Leader-follower: the leader assigns and executes; followers get the
	// operation through the order stream and hold nothing here.
	if r.def.Style.IsLeaderFollower() {
		r.lfClassic(t, rec)
		return
	}

	if r.def.Style.IsActive() || r.isPrimary() {
		r.run(t, rec)
		return
	}

	// Passive backup: hold the operation for possible failover replay.
	r.pendingOps = append(r.pendingOps, t)
}

// shouldAnswerDuplicates limits who re-sends logged replies for duplicate
// invocations, avoiding a reply storm: the primary for passive styles, the
// senior member for active styles.
func (r *replica) shouldAnswerDuplicates() bool { return r.isPrimary() }

// run executes one invocation on the local servant and multicasts the
// reply (unless suppressed).
func (r *replica) run(t taskInvoke, rec *opRecord) {
	det := nondet.NewContext(r.def.ID, t.msgID, epochAnchor)
	args, err := orb.DecodeRequestBody(t.m.Args)
	var results []cdr.Value
	if err == nil {
		inv := &orb.Invocation{
			Operation: t.m.Operation,
			Args:      args,
			Det:       det,
			Caller:    &CallCtx{eng: r.eng, gid: r.def.ID, msgID: t.msgID, det: det},
		}
		results, err = r.servant.Dispatch(inv)
	}
	r.eng.stat.executions.Add(1)

	rep := &msgReply{
		GroupID:   r.def.ID,
		Key:       t.m.Key,
		Node:      r.eng.cfg.Node,
		ExecMsgID: t.msgID,
	}
	rep.Status, rep.Body = outcomeToWire(results, err)

	// Passive primaries piggyback the state update on the reply.
	if r.def.Style == WarmPassive {
		if upd, ok := r.servant.(orb.Updatable); ok {
			if delta, uerr := upd.LastUpdate(); uerr == nil {
				rep.Update = delta
			}
		}
		if rep.Update == nil {
			if ck, ok := r.servant.(orb.Checkpointable); ok {
				if full, serr := ck.GetState(); serr == nil {
					rep.Update = full
					rep.UpdateFull = true
				}
			}
		}
		if rep.Update != nil {
			rec := wal.Record{Kind: wal.KindUpdate, MsgID: t.msgID, Op: updateOp(rep.UpdateFull), Data: rep.Update}
			r.logUpdate(rec)
			r.shipUpdate(rec)
		}
	}

	r.mu.lock()
	r.lastExec = t.msgID
	rec.executedLocal = true
	send := !rec.answered
	if !rec.answered {
		rec.answered = true
		rec.reply = rep
	}
	if r.def.Style == ActiveWithVoting {
		// Voting clients need every replica's independent response;
		// sender-side suppression would starve the quorum.
		send = true
	}
	r.mu.unlock()

	if send {
		r.multicastReply(rep)
	} else {
		// Another replica's response was delivered before we transmitted
		// ours: sender-side suppression (the paper's Figure 2).
		r.eng.stat.suppressedReplies.Add(1)
	}

	r.maybeCheckpoint()
}

// maybeCheckpoint emits a periodic full-state checkpoint on the compaction
// policy: every CheckpointEvery operations, or — when CheckpointEveryBytes
// is set — as soon as that many update-record bytes accumulated since the
// last one, whichever trips first. For passive groups the primary
// multicasts it (cold backups truncate their invocation logs on it); for
// active groups with a DR store attached, the senior member takes a
// store-only snapshot so the standby's segment replay stays bounded.
func (r *replica) maybeCheckpoint() {
	if (r.def.Style.IsPassive() || r.def.Style.IsLeaderFollower()) && r.isPrimary() {
		r.opsSinceCk++
		if r.opsSinceCk < r.def.CheckpointEvery &&
			(r.def.CheckpointEveryBytes <= 0 || r.bytesSinceCk < r.def.CheckpointEveryBytes) {
			return
		}
		r.opsSinceCk = 0
		r.bytesSinceCk = 0
		r.sendCheckpoint(ckptPeriodic)
		return
	}
	if r.def.Style.IsActive() && r.def.Style != Stateless && r.shipsDR() {
		r.opsSinceCk++
		if r.opsSinceCk < r.def.CheckpointEvery &&
			(r.def.CheckpointEveryBytes <= 0 || r.bytesSinceCk < r.def.CheckpointEveryBytes) {
			return
		}
		r.opsSinceCk = 0
		r.bytesSinceCk = 0
		if ck, ok := r.servant.(orb.Checkpointable); ok {
			if state, err := ck.GetState(); err == nil {
				upTo, covered := r.coveredWindow()
				r.eng.stat.checkpoints.Add(1)
				r.shipCheckpoint(upTo, state, covered)
			}
		}
	}
}

// coveredWindow snapshots the replica's executed-operation dedup window —
// the exactly-once metadata every checkpoint must carry.
func (r *replica) coveredWindow() (upTo uint64, covered []opKey) {
	r.mu.lock()
	defer r.mu.unlock()
	upTo = r.lastExec
	covered = make([]opKey, 0, len(r.dedupFIFO))
	for _, k := range r.dedupFIFO {
		if rec, ok := r.dedup[k]; ok && rec.executedLocal {
			covered = append(covered, k)
		}
	}
	return upTo, covered
}

func (r *replica) sendCheckpoint(reason uint8) {
	ck, ok := r.servant.(orb.Checkpointable)
	if !ok {
		return
	}
	state, err := ck.GetState()
	if err != nil {
		return
	}
	upTo, covered := r.coveredWindow()
	r.mu.lock()
	lfSeq := r.lfApplied
	r.mu.unlock()
	r.eng.stat.checkpoints.Add(1)
	r.shipCheckpoint(upTo, state, covered)
	if payload := r.eng.encodeOrReport(&msgCheckpoint{
		GroupID:   r.def.ID,
		Reason:    reason,
		UpToMsgID: upTo,
		State:     state,
		Covered:   covered,
		LfSeq:     lfSeq,
	}); payload != nil {
		_ = r.eng.ringFor(r.def.ID).Multicast(invGroupName(r.def.ID), payload)
	}
}

func (r *replica) multicastReply(rep *msgReply) {
	if payload := r.eng.encodeOrReport(rep); payload != nil {
		_ = r.eng.ringFor(r.def.ID).Multicast(repGroupName(r.def.ID), payload)
	}
}

// onReply applies passive state updates and clears covered pending
// operations. (Client-call completion and answered-marking already happened
// in the engine loop.)
func (r *replica) onReply(t taskReply) {
	m := t.m
	r.mu.lock()
	syncing := r.syncing
	r.mu.unlock()
	if syncing {
		// Hold updates in order; adoptState replays the ones the
		// transferred snapshot does not already cover.
		r.buffer = append(r.buffer, t)
		return
	}
	if r.def.Style == WarmPassive && m.Node != r.eng.cfg.Node && len(m.Update) > 0 {
		r.mu.lock()
		stale := m.ExecMsgID <= r.lastExec
		r.mu.unlock()
		if !stale {
			applied := false
			if m.UpdateFull {
				if ck, ok := r.servant.(orb.Checkpointable); ok {
					applied = ck.SetState(m.Update) == nil
				}
			} else if upd, ok := r.servant.(orb.Updatable); ok {
				applied = upd.ApplyUpdate(m.Update) == nil
			}
			if applied {
				r.mu.lock()
				r.lastExec = m.ExecMsgID
				r.mu.unlock()
				// logUpdate keeps the byte-policy counter warm on backups
				// too, so a freshly failed-over primary inherits an accurate
				// since-checkpoint volume instead of starting from zero.
				r.logUpdate(wal.Record{Kind: wal.KindUpdate, MsgID: m.ExecMsgID, Op: updateOp(m.UpdateFull), Data: m.Update})
			}
		}
	}
	// The operation is covered: drop it from the failover-pending list.
	for i := range r.pendingOps {
		if r.pendingOps[i].m.Key == m.Key {
			r.pendingOps = append(r.pendingOps[:i], r.pendingOps[i+1:]...)
			break
		}
	}
}

func (r *replica) onCheckpoint(t taskCheckpoint) {
	m := t.m
	r.stuck = make(map[string]uint64) // a snapshot unsticks its adopters
	r.mu.lock()
	syncing := r.syncing
	secondary := r.secondary
	r.mu.unlock()

	if syncing {
		r.adoptState(m)
		return
	}
	if secondary && m.Reason == ckptRemerge {
		// A remerge checkpoint can arrive before our own view task if the
		// primary side reacted first; adopt it as the merged state.
		r.adoptState(m)
		return
	}

	// Gap repair: a checkpoint covering operations beyond this member's
	// execution horizon means those operations were ordered in a ring
	// lineage this member was silently absent from (e.g. a reformation it
	// never noticed — its own view diff was empty, so no remerge logic ran
	// here). The checkpoint is the primary component's authoritative state;
	// adopt it. Cold-passive backups are exempt: their servants lag by
	// design, and the log append below repairs their recovery channel.
	r.mu.lock()
	lastExec := r.lastExec
	r.mu.unlock()
	if m.UpToMsgID > lastExec && r.def.Style != ColdPassive &&
		!(r.def.Style.IsLeaderFollower() && r.isPrimary()) {
		// (The LF leader's own state is authoritative by construction; it
		// never adopts from a checkpoint.)
		r.adoptState(m)
		return
	}

	// Operational members: persist and compact the log (the cold passive
	// truncation point), and drop covered pending operations. Staleness
	// guard: a duplicate checkpoint from behind our logged horizon — a
	// re-sent join answer arriving after this member moved on, e.g. a
	// healed LF senior that already resumed leadership and logged newer
	// assignments — must not compact, because the position-based
	// truncation would wipe every newer update record from the WAL.
	if m.UpToMsgID >= r.lastLogged {
		_ = r.log.Append(wal.Record{Kind: wal.KindCheckpoint, MsgID: m.UpToMsgID, Data: m.State})
		_ = r.log.TruncateAtCheckpoint()
		r.opsSinceCk = 0
		r.bytesSinceCk = 0
	}
	kept := r.pendingOps[:0]
	for _, p := range r.pendingOps {
		if p.msgID > m.UpToMsgID {
			kept = append(kept, p)
		}
	}
	r.pendingOps = kept
}

// adoptState installs a transferred state snapshot and replays buffered
// invocations past it — the join/remerge synchronization point.
func (r *replica) adoptState(m *msgCheckpoint) {
	r.mu.lock()
	// A former secondary always adopts: its msgIDs come from a divergent
	// ring lineage and don't compare against the primary component's, and
	// its own partition-era operations return via fulfillment replay.
	behind := m.UpToMsgID < r.lastExec && !r.secondary
	r.mu.unlock()
	if behind {
		// This replica's state is already *newer* than the offered snapshot —
		// typical for a crash-restarted member that recovered from its own
		// write-ahead log and was then offered a stale periodic checkpoint.
		// Keep the recovered state; just leave the syncing phase and replay
		// anything buffered past it.
		r.mu.lock()
		upTo := r.lastExec
		r.syncing = false
		r.secondary = false
		r.mu.unlock()
		buffered := r.buffer
		r.buffer = nil
		for _, item := range buffered {
			switch t := item.(type) {
			case taskInvoke:
				if t.msgID > upTo {
					r.process(t, false)
				}
			case taskReply:
				r.onReply(t)
			case taskLfOrder:
				if lfMsgID(t.m.Epoch, t.m.Seq) > upTo {
					r.onLfOrder(t)
				}
			}
		}
		return
	}
	ck, ok := r.servant.(orb.Checkpointable)
	if ok {
		if err := ck.SetState(m.State); err != nil {
			return
		}
	}
	r.eng.stat.stateTransfers.Add(1)
	_ = r.log.Append(wal.Record{Kind: wal.KindCheckpoint, MsgID: m.UpToMsgID, Data: m.State})
	_ = r.log.TruncateAtCheckpoint()
	r.opsSinceCk = 0
	r.bytesSinceCk = 0
	// The truncation wiped every update record positioned before the
	// adopted checkpoint; the logged horizon restarts from its coverage.
	r.lastLogged = m.UpToMsgID
	// Seed duplicate suppression with the operations the snapshot covers.
	// An adopter that missed a delivery lineage (the gap-repair path) has
	// no dedup records for them, and a recovery re-delivery would
	// otherwise re-execute an operation whose effect the adopted state
	// already includes. Replies stay with the original executor — the
	// records are marked executed but not answered, so duplicate answers
	// still come from the member that logged them.
	r.mu.lock()
	for _, k := range m.Covered {
		rec, ok := r.dedup[k]
		if !ok {
			rec = &opRecord{}
			r.dedup[k] = rec
			r.dedupGCLocked(k)
		}
		rec.deliveredInv = true
		rec.executedLocal = true
	}
	r.mu.unlock()
	// Operations the adopted state covers must not replay at failover.
	kept := r.pendingOps[:0]
	for _, p := range r.pendingOps {
		if p.msgID > m.UpToMsgID {
			kept = append(kept, p)
		}
	}
	r.pendingOps = kept

	r.mu.lock()
	r.lastExec = m.UpToMsgID
	if m.LfSeq > r.lfApplied {
		// Resume session-token-gated reads (and, on later promotion, the
		// assignment numbering) from the snapshot's leader sequence.
		r.lfApplied = m.LfSeq
	}
	r.syncing = false
	wasSecondary := r.secondary
	if wasSecondary {
		// A former secondary's leadership terms come from a divergent ring
		// lineage: fence them off so its own stale order stream cannot
		// re-apply over the adopted state.
		r.lfFence = r.lfEpoch
	}
	r.secondary = false
	r.mu.unlock()

	if wasSecondary {
		r.sendFulfillments()
	}
	buffered := r.buffer
	r.buffer = nil
	for _, item := range buffered {
		switch t := item.(type) {
		case taskInvoke:
			if t.msgID > m.UpToMsgID {
				r.process(t, false)
			}
		case taskReply:
			r.onReply(t) // re-checks staleness against the adopted state
		case taskLfOrder:
			if lfMsgID(t.m.Epoch, t.m.Seq) > m.UpToMsgID {
				r.onLfOrder(t) // dedup-covered ops skip via executedLocal
			}
		}
	}
}

// sendFulfillments replays the operations this (former) secondary
// component performed during the partition, as fresh ordered invocations
// against the merged state. Only the component's senior surviving member
// transmits; the others clear their queues.
func (r *replica) sendFulfillments() {
	queue := r.fulfill
	r.fulfill = nil
	if len(queue) == 0 {
		return
	}
	r.mu.lock()
	members := append([]string(nil), r.members...)
	r.mu.unlock()
	sender := seniorOf(intersect(r.preSplit, members))
	if sender != r.eng.cfg.Node {
		return
	}
	mapper, _ := r.servant.(FulfillmentMapper)
	for _, f := range queue {
		op, args := f.op, f.args
		if mapper != nil {
			decoded, err := orb.DecodeRequestBody(f.args)
			if err != nil {
				continue
			}
			newOp, newArgs, keep := mapper.MapFulfillment(f.op, decoded)
			if !keep {
				continue
			}
			op, args = newOp, orb.EncodeRequestBody(newArgs)
		}
		r.fulfillSeq++
		r.eng.stat.fulfillments.Add(1)
		if payload := r.eng.encodeOrReport(&msgInvocation{
			GroupID:     r.def.ID,
			Key:         opKey{ClientID: "f:" + r.eng.cfg.Node, ParentSeq: 0, OpSeq: r.fulfillSeq},
			Operation:   op,
			Args:        args,
			Oneway:      true,
			Fulfillment: true,
		}); payload != nil {
			_ = r.eng.ringFor(r.def.ID).Multicast(invGroupName(r.def.ID), payload)
		}
	}
}

func (r *replica) onView(t taskView) {
	r.mu.lock()
	old := r.members
	r.members = append([]string(nil), t.members...)
	secondary := r.secondary
	syncing := r.syncing
	r.mu.unlock()
	r.stuck = make(map[string]uint64) // membership changed: re-learn who is stuck

	if !r.everHadView {
		r.everHadView = true
		if len(old) == 0 {
			return
		}
	}
	if len(old) == 0 {
		return
	}

	removed := subtract(old, t.members)
	added := subtract(t.members, old)

	if len(removed) > 0 {
		for _, n := range removed {
			r.former[n] = true
			if r.eng.cfg.Notifier != nil {
				r.eng.cfg.Notifier.Push(fault.Report{
					Kind:    fault.ObjectCrash,
					Node:    n,
					GroupID: r.def.ID,
					Member:  n,
				})
			}
		}
		// Partition detection: the component retaining a majority of the
		// old view (senior member breaking even splits) is the primary
		// component; the others become secondary and start queueing
		// fulfillment operations. (A minority component is indistinguishable
		// from having watched the majority crash — the classic partition
		// ambiguity — so small components conservatively go secondary.)
		if !secondary && !isPrimaryComponent(old, t.members) {
			r.mu.lock()
			r.secondary = true
			r.mu.unlock()
			r.preSplit = old
		}
		// Failover: the new senior member of a passive group re-executes
		// the uncovered operations.
		if r.def.Style.IsPassive() && !syncing && len(t.members) > 0 &&
			t.members[0] == r.eng.cfg.Node && old[0] != r.eng.cfg.Node {
			r.failover()
		}
	}

	// Leader-follower epoch/fence/lease maintenance and takeover run on
	// every membership change (a join by a lexically-senior node moves
	// leadership too, not just removals).
	if r.def.Style.IsLeaderFollower() {
		r.lfOnView(old, t)
	}

	if len(added) > 0 {
		remerge := false
		for _, n := range added {
			if r.former[n] {
				remerge = true
			}
			delete(r.former, n)
		}
		if secondary {
			// A remerge — for a secondary — means a member of the view we
			// split from is back: its component may hold the primary state,
			// so wait for it, then send fulfillments (adoptState does
			// both). Membership in preSplit distinguishes a true remerge
			// from a crashed member recruited back by the Replication
			// Manager as a fresh incarnation with no state — but either
			// way this member's WAL and servant lag the merged lineage, so
			// it must go syncing; the stateReq rescue (every member stuck
			// → senior self-promotes) guarantees liveness even when the
			// added member has nothing to offer.
			back := false
			for _, n := range added {
				for _, p := range r.preSplit {
					if n == p {
						back = true
					}
				}
			}
			if back {
				r.preSplit = old
			}
			r.mu.lock()
			r.syncing = true
			r.mu.unlock()
			// Post-heal catch-up nudge: a heal that arrives with no
			// follow-on traffic used to leave this member stranded until
			// the sync-retry tick (or forever, when the join was a fresh
			// incarnation and nothing marked us syncing at all). Request
			// state immediately; the request doubles as post-heal traffic
			// that flushes ordered-delivery catch-up.
			r.healNudges++
			r.eng.stat.healNudges.Add(1)
			r.mu.lock()
			myExec := r.lastExec
			r.mu.unlock()
			if payload := r.eng.encodeOrReport(&msgStateReq{GroupID: r.def.ID, From: r.eng.cfg.Node, LastExec: myExec}); payload != nil {
				_ = r.eng.ringFor(r.def.ID).Multicast(invGroupName(r.def.ID), payload)
			}
			return
		}
		if !secondary && !syncing {
			// Existing members bring joiners (or remerging secondaries) up
			// to date; the senior pre-existing member transmits the state.
			stayers := intersect(old, t.members)
			if len(stayers) > 0 && stayers[0] == r.eng.cfg.Node {
				reason := ckptJoin
				if remerge {
					reason = ckptRemerge
				}
				r.sendCheckpoint(reason)
			}
		}
	}
}

// onStateReq answers a stuck replica's state request (totally ordered, so
// every member sees the same request stream). Healthy members respond with
// a snapshot. If every member of the view is stuck — possible after heavy
// membership churn leaves all survivors believing some other component was
// primary — the stuck member with the most applied state promotes its own
// state to authoritative, guaranteeing the group always recovers without
// anointing an empty fresh incarnation over a state-bearing survivor.
func (r *replica) onStateReq(t taskStateReq) {
	r.stuck[t.m.From] = t.m.LastExec
	r.mu.lock()
	syncing := r.syncing
	secondary := r.secondary
	myExec := r.lastExec
	members := append([]string(nil), r.members...)
	r.mu.unlock()

	if !syncing && !secondary {
		// Rate-limit: several stuck members may request at once, and the
		// snapshot can be large.
		if time.Since(r.lastSnapResp) >= 100*time.Millisecond {
			r.lastSnapResp = time.Now()
			r.sendCheckpoint(ckptJoin)
		}
		return
	}
	if len(members) < 2 {
		// A stranded singleton has nobody to offer state and nothing to
		// arbitrate: promoting here would anoint a possibly-empty fresh
		// incarnation as authoritative just before a heal merges a member
		// that still holds real state. Keep waiting for company.
		return
	}
	// Stranded: this replica is syncing or secondary, so no healthy
	// primary-component member answered above. Rescue falls to the senior
	// member that has NOT itself requested state — a member that still
	// considers itself operational would have answered with a checkpoint,
	// so one that is merely quiet may yet do so. This replica is in the
	// stranded branch, so it counts itself stuck regardless of whether its
	// own request has circled back; without that, two mutually-stuck
	// members can each see only the other's request first and both
	// nominate themselves.
	if _, ok := r.stuck[r.eng.cfg.Node]; !ok || r.stuck[r.eng.cfg.Node] < myExec {
		r.stuck[r.eng.cfg.Node] = myExec
	}
	for _, m := range members {
		if _, ok := r.stuck[m]; !ok {
			return // a possibly-healthy member may still answer
		}
	}
	// Every member is stuck: elect the one whose advertised applied-state
	// horizon is highest (ties break by seniority). The stateReq stream is
	// totally ordered and carries each requester's horizon, so every member
	// computes the same rescuer — and a secondary survivor with real state
	// always beats a freshly recruited incarnation advertising zero.
	rescuer := members[0]
	best := r.stuck[members[0]]
	for _, m := range members[1:] {
		if exec := r.stuck[m]; exec > best {
			rescuer, best = m, exec
		}
	}
	if rescuer != r.eng.cfg.Node {
		return
	}
	r.selfPromote()
}

// selfPromote makes this replica's state authoritative after total
// stranding: it stops waiting for a transfer, replays anything it buffered,
// and snapshots the group so the other stuck members adopt its state.
func (r *replica) selfPromote() {
	r.mu.lock()
	r.syncing = false
	r.secondary = false
	upTo := r.lastExec
	r.mu.unlock()
	r.stuck = make(map[string]uint64)
	r.fulfill = nil

	buffered := r.buffer
	r.buffer = nil
	for _, item := range buffered {
		switch t := item.(type) {
		case taskInvoke:
			if t.msgID > upTo {
				r.process(t, false)
			}
		case taskReply:
			r.onReply(t)
		case taskLfOrder:
			if lfMsgID(t.m.Epoch, t.m.Seq) > upTo {
				r.onLfOrder(t)
			}
		}
	}
	r.sendCheckpoint(ckptRemerge)
}

// failover makes this replica the acting primary: cold passive rebuilds
// state from the log, then uncovered operations re-execute in delivery
// order.
func (r *replica) failover() {
	if r.def.Style == ColdPassive {
		cp, updates, ok, err := r.log.Recover()
		if err == nil {
			if ok {
				if ck, isCk := r.servant.(orb.Checkpointable); isCk {
					_ = ck.SetState(cp.Data)
					r.mu.lock()
					r.lastExec = cp.MsgID
					r.mu.unlock()
				}
			}
			for _, rec := range updates {
				m, derr := decodeWire(rec.Data)
				if derr != nil {
					continue
				}
				inv, isInv := m.(*msgInvocation)
				if !isInv {
					continue
				}
				r.eng.stat.replays.Add(1)
				r.replayOne(taskInvoke{msgID: rec.MsgID, m: inv})
			}
		}
		r.pendingOps = nil
		// Give the rebuilt group a fresh checkpoint so the new backups'
		// logs restart small.
		r.sendCheckpoint(ckptPeriodic)
		return
	}

	// Warm passive: state is current (updates were applied); re-execute
	// only the uncovered operations.
	pend := r.pendingOps
	r.pendingOps = nil
	for _, t := range pend {
		r.eng.stat.replays.Add(1)
		r.replayOne(t)
	}
}

// replayOne re-executes an operation during failover. Operations whose
// replies were already delivered re-execute for state effect only (cold
// passive) without re-sending the logged reply.
func (r *replica) replayOne(t taskInvoke) {
	r.mu.lock()
	rec, ok := r.dedup[t.m.Key]
	if !ok {
		rec = &opRecord{}
		r.dedup[t.m.Key] = rec
		r.dedupGCLocked(t.m.Key)
	}
	executed := rec.executedLocal
	r.mu.unlock()
	if executed {
		return
	}
	r.run(t, rec)
}

// outcomeToWire converts a Dispatch outcome to reply status + body.
func outcomeToWire(results []cdr.Value, err error) (uint32, []byte) {
	switch {
	case err == nil:
		return replyOK, orb.EncodeReplyBody(results)
	default:
		var uexc *orb.UserException
		if errors.As(err, &uexc) {
			return replyUserExc, orb.EncodeUserException(uexc)
		}
		var sysExc giop.SystemException
		if errors.As(err, &sysExc) {
			return replySysExc, sysExc.Encode()
		}
		return replySysExc, giop.SystemException{
			RepoID:    giop.ExcInternal,
			Completed: giop.CompletedMaybe,
		}.Encode()
	}
}

// wireToOutcome converts reply status + body back to Dispatch form.
func wireToOutcome(status uint32, body []byte) ([]cdr.Value, error) {
	switch status {
	case replyOK:
		return orb.DecodeReplyBody(body)
	case replyUserExc:
		uexc, err := orb.DecodeUserException(body)
		if err != nil {
			return nil, err
		}
		return nil, uexc
	default:
		sysExc, err := giop.DecodeSystemException(body, cdr.BigEndian)
		if err != nil {
			return nil, err
		}
		return nil, sysExc
	}
}

// --- small set helpers -----------------------------------------------------

func contains(set []string, x string) bool {
	for _, s := range set {
		if s == x {
			return true
		}
	}
	return false
}

func subtract(a, b []string) []string {
	var out []string
	for _, x := range a {
		if !contains(b, x) {
			out = append(out, x)
		}
	}
	return out
}

func intersect(a, b []string) []string {
	var out []string
	for _, x := range a {
		if contains(b, x) {
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}

// isPrimaryComponent decides whether the surviving view is the primary
// component after a membership loss: strict majority of the old view wins;
// an exact half wins only if it retains the old view's senior member.
func isPrimaryComponent(old, survivors []string) bool {
	kept := len(intersect(old, survivors))
	switch {
	case 2*kept > len(old):
		return true
	case 2*kept == len(old):
		return contains(survivors, seniorOf(old))
	default:
		return false
	}
}

func seniorOf(set []string) string {
	if len(set) == 0 {
		return ""
	}
	min := set[0]
	for _, s := range set[1:] {
		if s < min {
			min = s
		}
	}
	return min
}
