package replication

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cdr"
)

// TestChaosSchedules drives an object group through randomized fault
// schedules — crashes, partitions with traffic on both sides, remerges —
// and checks the two invariants that define the system's correctness:
//
//  1. exactly-once accounting: every acknowledged operation is reflected
//     in the final state exactly once (crashes and partitions never lose
//     or duplicate an acknowledged update);
//  2. convergence: after the faults stop, all surviving replicas agree on
//     the state.
//
// Clients are confined to their partition component (cross-component
// retries of one logical operation are the documented application-level
// reconciliation case, exercised separately in the back-order tests).
func TestChaosSchedules(t *testing.T) {
	for _, style := range []Style{Active, WarmPassive} {
		for seed := int64(1); seed <= 3; seed++ {
			style, seed := style, seed
			t.Run(fmt.Sprintf("%v/seed%d", style, seed), func(t *testing.T) {
				runChaos(t, style, seed)
			})
		}
	}
}

func runChaos(t *testing.T, style Style, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	c := newCluster(t, 5) // n1..n3 members, n4/n5 clients
	def := GroupDef{ID: 77, Name: "chaos", Style: style, CheckpointEvery: 5}
	c.host(def, "n1", "n2", "n3")

	alive := map[string]bool{"n1": true, "n2": true, "n3": true}
	aliveMembers := func() []string {
		var out []string
		for _, n := range []string{"n1", "n2", "n3"} {
			if alive[n] {
				out = append(out, n)
			}
		}
		return out
	}

	var acked int64
	invoke := func(from string, amount int64) {
		t.Helper()
		proxy := c.engines[from].Proxy(GroupRef{ID: 77}, WithTimeout(15*time.Second), WithRetryInterval(500*time.Millisecond))
		if _, err := proxy.Invoke("add", cdr.Long(int32(amount))); err != nil {
			t.Fatalf("add from %s: %v", from, err)
		}
		acked += amount
	}

	burst := func(from string, n int) {
		for i := 0; i < n; i++ {
			invoke(from, int64(rng.Intn(9)+1))
		}
	}

	crashed := 0
	partitioned := false
	const events = 6
	for ev := 0; ev < events; ev++ {
		switch action := rng.Intn(3); {
		case action == 0 && crashed == 0 && !partitioned && len(aliveMembers()) == 3:
			// Crash one member (keep a majority of the original three).
			victim := aliveMembers()[rng.Intn(3)]
			t.Logf("event %d: crash %s", ev, victim)
			c.fabric.CrashNode(victim)
			c.engines[victim].Stop()
			c.rings[victim].Stop()
			alive[victim] = false
			crashed++
			burst("n4", 3)

		case action == 1 && !partitioned && len(aliveMembers()) == 3:
			// Partition one member away, drive traffic on both sides,
			// then heal.
			members := aliveMembers()
			minority := members[rng.Intn(len(members))]
			var majority []string
			for _, m := range members {
				if m != minority {
					majority = append(majority, m)
				}
			}
			t.Logf("event %d: partition {%v,n4} | {%s,n5}", ev, majority, minority)
			c.fabric.Partition(append(majority, "n4"), []string{minority, "n5"})
			waitFor(t, 10*time.Second, "secondary forms", func() bool {
				st, ok := c.engines[minority].GroupStatus(77)
				return ok && st.Secondary
			})
			burst("n4", 3) // primary side
			burst("n5", 2) // disconnected side (queued as fulfillment)
			t.Logf("event %d: heal", ev)
			c.fabric.Heal()
			waitFor(t, 20*time.Second, "remerge", func() bool {
				for _, m := range aliveMembers() {
					st, ok := c.engines[m].GroupStatus(77)
					if !ok || st.Secondary || st.Syncing || len(st.Members) != len(aliveMembers()) {
						return false
					}
				}
				return true
			})

		default:
			t.Logf("event %d: normal burst", ev)
			burst("n4", 4)
		}
	}

	// Quiesce and verify both invariants.
	c.fabric.Heal()
	want := acked
	waitFor(t, 30*time.Second, "final convergence", func() bool {
		for _, m := range aliveMembers() {
			bal, _ := c.servants[m][77].snapshot()
			if bal != want {
				return false
			}
		}
		return true
	})

	// Cross-check through a fresh read from each client.
	for _, client := range []string{"n4", "n5"} {
		proxy := c.engines[client].Proxy(GroupRef{ID: 77}, WithTimeout(15*time.Second))
		out, err := proxy.Invoke("get")
		if err != nil {
			t.Fatalf("final get from %s: %v", client, err)
		}
		if out[0].AsLongLong() != want {
			t.Fatalf("final state %d from %s, want %d (lost or duplicated an acknowledged update)",
				out[0].AsLongLong(), client, want)
		}
	}
}

// TestChaosColdPassive drives the cold passive style through a
// crash-heavy schedule (its recovery path is log replay, so repeated
// failovers are the stress case).
func TestChaosColdPassive(t *testing.T) {
	c := newCluster(t, 4)
	def := GroupDef{ID: 78, Name: "cold-chaos", Style: ColdPassive, CheckpointEvery: 4}
	c.host(def, "n1", "n2", "n3")

	var acked int64
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 78}, WithTimeout(20*time.Second), WithRetryInterval(500*time.Millisecond))
	invoke := func(amount int64) {
		t.Helper()
		if _, err := proxy.Invoke("add", cdr.Long(int32(amount))); err != nil {
			t.Fatalf("add: %v", err)
		}
		acked += amount
	}

	for i := 0; i < 7; i++ {
		invoke(int64(i + 1))
	}
	// Crash the primary twice in a row: each failover replays the log.
	for round := 0; round < 2; round++ {
		members := []string{}
		for _, n := range []string{"n1", "n2", "n3"} {
			if st, ok := c.engines[n].GroupStatus(78); ok && len(st.Members) > 0 {
				members = st.Members
				break
			}
		}
		if len(members) == 0 {
			t.Fatal("no live members")
		}
		victim := members[0]
		t.Logf("round %d: crash primary %s", round, victim)
		c.fabric.CrashNode(victim)
		c.engines[victim].Stop()
		c.rings[victim].Stop()
		for i := 0; i < 5; i++ {
			invoke(int64(10 + i))
		}
	}

	out, err := proxy.Invoke("get")
	if err != nil {
		t.Fatal(err)
	}
	if out[0].AsLongLong() != acked {
		t.Fatalf("final state %d, want %d after two failovers", out[0].AsLongLong(), acked)
	}
}
