package replication

import (
	"fmt"
	"strings"

	"repro/internal/nondet"
	"repro/internal/orb"
	"repro/internal/wal"
)

// Write-ahead-log record op conventions. A KindUpdate record carries either
// a logged invocation (cold passive — Data is the encoded msgInvocation) or
// a state update (warm passive — Data is a servant delta or full snapshot).
const (
	opRecInvoke     = "inv:" // prefix; remainder is the operation name
	opRecUpdate     = "update"
	opRecUpdateFull = "update-full"
)

func updateOp(full bool) string {
	if full {
		return opRecUpdateFull
	}
	return opRecUpdate
}

// ReplayLog rebuilds a servant's state from a write-ahead log: it installs
// the latest checkpoint (if any) and then applies every subsequent update
// record — re-executing logged invocations with the same deterministic
// context the original execution used, or re-applying warm-passive state
// updates. It returns the msg id of the last applied record and the
// operation keys of the re-executed invocations (so a rejoining replica can
// seed its duplicate-suppression table and not double-execute them).
//
// Nested invocations are not re-issued during replay (Caller is nil): the
// operations already ran cluster-wide; replay restores local state only.
func ReplayLog(def GroupDef, log wal.Log, servant orb.Servant) (lastMsgID uint64, replayed []opKey, err error) {
	def.fill()
	cp, updates, haveCp, err := log.Recover()
	if err != nil {
		return 0, nil, fmt.Errorf("replication: wal recover: %w", err)
	}
	ck, checkpointable := servant.(orb.Checkpointable)
	if haveCp {
		if !checkpointable {
			return 0, nil, fmt.Errorf("replication: log has checkpoint but servant is not Checkpointable")
		}
		if serr := ck.SetState(cp.Data); serr != nil {
			return 0, nil, fmt.Errorf("replication: install checkpoint: %w", serr)
		}
		lastMsgID = cp.MsgID
	}
	for _, rec := range updates {
		if rec.MsgID <= lastMsgID {
			continue // already covered by the checkpoint
		}
		switch {
		case strings.HasPrefix(rec.Op, opRecInvoke):
			m, derr := decodeWire(rec.Data)
			if derr != nil {
				continue
			}
			inv, isInv := m.(*msgInvocation)
			if !isInv {
				continue
			}
			args, aerr := orb.DecodeRequestBody(inv.Args)
			if aerr != nil {
				continue
			}
			det := nondet.NewContext(def.ID, rec.MsgID, epochAnchor)
			// Dispatch errors (user exceptions) are outcomes, not replay
			// failures: the original execution produced them too.
			_, _ = servant.Dispatch(&orb.Invocation{
				Operation: inv.Operation,
				Args:      args,
				Det:       det,
			})
			replayed = append(replayed, inv.Key)
		case rec.Op == opRecUpdateFull:
			if !checkpointable {
				continue
			}
			if serr := ck.SetState(rec.Data); serr != nil {
				continue
			}
		case rec.Op == opRecUpdate:
			upd, updatable := servant.(orb.Updatable)
			if !updatable {
				continue
			}
			if uerr := upd.ApplyUpdate(rec.Data); uerr != nil {
				continue
			}
		default:
			continue // unknown record kind: skip, do not corrupt state
		}
		lastMsgID = rec.MsgID
	}
	return lastMsgID, replayed, nil
}
