package replication

import (
	"fmt"
	"strings"

	"repro/internal/drstore"
	"repro/internal/nondet"
	"repro/internal/orb"
	"repro/internal/wal"
)

// Write-ahead-log record op conventions. A KindUpdate record carries either
// a logged invocation (cold passive — Data is the encoded msgInvocation) or
// a state update (warm passive — Data is a servant delta or full snapshot).
const (
	opRecInvoke     = "inv:" // prefix; remainder is the operation name
	opRecUpdate     = "update"
	opRecUpdateFull = "update-full"
)

func updateOp(full bool) string {
	if full {
		return opRecUpdateFull
	}
	return opRecUpdate
}

// ReplayLog rebuilds a servant's state from a write-ahead log: it installs
// the latest checkpoint (if any) and then applies every subsequent update
// record — re-executing logged invocations with the same deterministic
// context the original execution used, or re-applying warm-passive state
// updates. It returns the msg id of the last applied record and the
// operation keys of the re-executed invocations (so a rejoining replica can
// seed its duplicate-suppression table and not double-execute them).
//
// Nested invocations are not re-issued during replay (Caller is nil): the
// operations already ran cluster-wide; replay restores local state only.
func ReplayLog(def GroupDef, log wal.Log, servant orb.Servant) (lastMsgID uint64, replayed []opKey, err error) {
	def.fill()
	cp, updates, haveCp, err := log.Recover()
	if err != nil {
		return 0, nil, fmt.Errorf("replication: wal recover: %w", err)
	}
	ck, checkpointable := servant.(orb.Checkpointable)
	if haveCp {
		if !checkpointable {
			return 0, nil, fmt.Errorf("replication: log has checkpoint but servant is not Checkpointable")
		}
		if serr := ck.SetState(cp.Data); serr != nil {
			return 0, nil, fmt.Errorf("replication: install checkpoint: %w", serr)
		}
		lastMsgID = cp.MsgID
	}
	for _, rec := range updates {
		if rec.MsgID <= lastMsgID {
			continue // already covered by the checkpoint
		}
		ref, isInv, applied := ApplyRecord(def, servant, rec)
		if !applied {
			continue
		}
		if isInv {
			replayed = append(replayed, opKey{ClientID: ref.ClientID, ParentSeq: ref.ParentSeq, OpSeq: ref.OpSeq})
		}
		lastMsgID = rec.MsgID
	}
	return lastMsgID, replayed, nil
}

// ApplyRecord applies one update record to a servant — the per-record core
// of log replay, shared by ReplayLog (local crash-restart) and the
// cross-domain standby (core.Standby staging shipped drstore segments). A
// logged invocation re-executes with the same deterministic context the
// original execution used (nested invocations are not re-issued: Caller is
// nil, replay restores local state only); warm-passive deltas and full
// snapshots re-apply through the servant's Updatable/Checkpointable
// interfaces. It returns the invocation's operation reference (isInv true)
// so callers can extend their duplicate-suppression windows, and reports
// whether the record took effect — an unapplied record must not advance the
// caller's replay horizon.
func ApplyRecord(def GroupDef, servant orb.Servant, rec wal.Record) (ref drstore.OpRef, isInv bool, applied bool) {
	switch {
	case strings.HasPrefix(rec.Op, opRecInvoke):
		m, derr := decodeWire(rec.Data)
		if derr != nil {
			return ref, false, false
		}
		// A logged invocation is either an ordered msgInvocation (cold
		// passive) or a leader-follower order record; both re-execute with
		// the deterministic context keyed on the record's message id (for
		// LF records that id is lfMsgID(epoch, seq) — exactly what the
		// original execution used).
		var op string
		var argBytes []byte
		var key opKey
		switch inv := m.(type) {
		case *msgInvocation:
			op, argBytes, key = inv.Operation, inv.Args, inv.Key
		case *msgLfOrder:
			op, argBytes, key = inv.Operation, inv.Args, inv.Key
		default:
			return ref, false, false
		}
		args, aerr := orb.DecodeRequestBody(argBytes)
		if aerr != nil {
			return ref, false, false
		}
		det := nondet.NewContext(def.ID, rec.MsgID, epochAnchor)
		// Dispatch errors (user exceptions) are outcomes, not replay
		// failures: the original execution produced them too.
		_, _ = servant.Dispatch(&orb.Invocation{
			Operation: op,
			Args:      args,
			Det:       det,
		})
		ref = drstore.OpRef{ClientID: key.ClientID, ParentSeq: key.ParentSeq, OpSeq: key.OpSeq}
		return ref, true, true
	case rec.Op == opRecUpdateFull:
		ck, ok := servant.(orb.Checkpointable)
		if !ok {
			return ref, false, false
		}
		return ref, false, ck.SetState(rec.Data) == nil
	case rec.Op == opRecUpdate:
		upd, ok := servant.(orb.Updatable)
		if !ok {
			return ref, false, false
		}
		return ref, false, upd.ApplyUpdate(rec.Data) == nil
	default:
		return ref, false, false // unknown record kind: skip, do not corrupt state
	}
}
