// Package replication implements the core of the fault-tolerant CORBA
// system: consistent object replication over totally ordered group
// communication.
//
// Each node runs one Engine. Engines host replicas of object groups and act
// as clients of other groups. All invocations, replies, state updates, and
// checkpoints travel as totally ordered multicasts on the totem ring, so
// every replica of a group observes the identical sequence of events — the
// foundation of strong replica consistency.
//
// Supported replication styles (FT-CORBA vocabulary):
//
//   - STATELESS: every replica executes; no state transfer ever.
//   - ACTIVE: every replica executes every invocation; duplicate
//     invocations and responses are suppressed via operation identifiers.
//   - ACTIVE_WITH_VOTING: active, with the client collecting a majority of
//     replies (value-fault masking on the client side).
//   - WARM_PASSIVE: only the primary executes; it multicasts the reply
//     together with a state update (postimage) that backups apply.
//   - COLD_PASSIVE: only the primary executes; backups log invocations and
//     periodic checkpoints, and rebuild state by replay at failover.
//
// The engine also implements the partitioned-operation model: when the
// group communication layer partitions, every component keeps operating;
// the component containing the previous view's senior member is the
// *primary component*, the others are secondaries whose operations are
// queued as fulfillment operations and re-applied to the merged state after
// the partition heals (with state transfer from the primary component).
package replication

import (
	"fmt"
	"time"

	"repro/internal/cdr"
)

// Style selects the replication style of an object group.
type Style uint8

// Replication styles.
const (
	Stateless Style = iota + 1
	Active
	ActiveWithVoting
	WarmPassive
	ColdPassive
	// LeaderFollower is the LLFT-style low-latency mode: the senior
	// primary-component member (the leader) assigns a per-group sequence to
	// each invocation, executes immediately, and streams the ordered
	// invocations to the followers over the ordered multicast path; the
	// followers re-execute in leader order, off the client's critical path.
	// Paired with time-bounded leader leases, any replica serves read-only
	// operations from local state without entering totem at all.
	LeaderFollower
)

var styleNames = map[Style]string{
	Stateless:        "STATELESS",
	Active:           "ACTIVE",
	ActiveWithVoting: "ACTIVE_WITH_VOTING",
	WarmPassive:      "WARM_PASSIVE",
	ColdPassive:      "COLD_PASSIVE",
	LeaderFollower:   "LEADER_FOLLOWER",
}

// String names the style in FT-CORBA vocabulary.
func (s Style) String() string {
	if n, ok := styleNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Style(%d)", uint8(s))
}

// IsPassive reports whether the style executes only at the primary.
func (s Style) IsPassive() bool { return s == WarmPassive || s == ColdPassive }

// IsActive reports whether every replica executes.
func (s Style) IsActive() bool {
	return s == Active || s == ActiveWithVoting || s == Stateless
}

// IsLeaderFollower reports whether the style orders at the leader and
// streams to followers (neither classic-active nor classic-passive: every
// replica ends up executing, but only the leader answers).
func (s Style) IsLeaderFollower() bool { return s == LeaderFollower }

// GroupDef describes an object group to be hosted.
type GroupDef struct {
	// ID is the FT-CORBA object group id, unique within the FT domain.
	ID uint64
	// Name is a human-readable group name (diagnostics).
	Name string
	// TypeID is the repository id served by the group.
	TypeID string
	// Style is the replication style.
	Style Style
	// CheckpointEvery is the number of operations between periodic
	// checkpoints (cold passive log truncation and warm passive full-state
	// refresh). Zero means 16.
	CheckpointEvery int
	// CheckpointEveryBytes additionally triggers a periodic checkpoint once
	// the primary has appended this many bytes of update records since the
	// last one, whichever threshold trips first. It bounds WAL growth by
	// volume for groups with large payloads; zero disables the byte policy.
	CheckpointEveryBytes int
	// Shard pins the group to a transport shard, 1-based so the Go zero
	// value keeps today's meaning: 0 selects the deterministic hash route
	// (ShardFor), N>0 pins the group to ring N-1 of the engine's pool.
	// Ignored (treated as shard 0) when the engine runs a single ring.
	Shard int
	// ReadOnlyOps lists operations that do not mutate servant state (the
	// IDL `readonly` marking surfaced through ftcorba.Properties). Under
	// LEADER_FOLLOWER these may be served from any replica's local state on
	// the leased read fast path; replicas refuse the fast path for any
	// operation not listed here, so a mislabeled client cannot mutate state
	// outside the total order.
	ReadOnlyOps []string
}

func (d *GroupDef) fill() {
	if d.CheckpointEvery <= 0 {
		d.CheckpointEvery = 16
	}
}

// GroupRef identifies a target group for client invocations.
type GroupRef struct {
	ID uint64
}

// ShardFor is the deterministic group→shard router: a Fibonacci-hash of the
// group id folded onto [0, shards). Every node computes the same value from
// the same inputs, so all engines in a domain configured with the same ring
// pool agree on each group's transport shard without coordination. Explicit
// placement (GroupDef.Shard / ftcorba.Properties.Shard) overrides it.
func ShardFor(gid uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	// Multiplying by the 64-bit golden-ratio constant spreads consecutive
	// gids (the RM hands them out sequentially) across shards; the high
	// bits carry the mix, so fold them down before the modulus.
	h := gid * 0x9e3779b97f4a7c15
	return int((h >> 33) % uint64(shards))
}

// invGroupName is the totem process group carrying a group's invocations
// and checkpoints.
func invGroupName(gid uint64) string { return fmt.Sprintf("og/%d", gid) }

// repGroupName is the totem process group carrying a group's replies (and,
// for warm passive, the piggybacked state updates).
func repGroupName(gid uint64) string { return fmt.Sprintf("og/%d/r", gid) }

// opKey identifies a logical operation for duplicate detection: identical
// for duplicate invocations from different replicas of the same client and
// for retransmissions, unique across logical operations.
type opKey struct {
	ClientID  string
	ParentSeq uint64
	OpSeq     uint64
}

func (k opKey) String() string {
	return fmt.Sprintf("%s/%d/%d", k.ClientID, k.ParentSeq, k.OpSeq)
}

// --- Wire messages ---------------------------------------------------------

type wireKind uint8

const (
	wireInvocation wireKind = iota + 1
	wireReply
	wireCheckpoint
	wireStateReq
	wireLfOrder  // leader→followers ordered-invocation stream (multicast)
	wireLfSubmit // client→replica invocation submit (direct lane)
	wireLfReply  // replica→client reply (direct lane)
	wireLfLease  // leader→group read-lease grant (ordered multicast)
)

// Reply statuses on the wire.
const (
	replyOK      uint32 = 0
	replyUserExc uint32 = 1
	replySysExc  uint32 = 2
	// replyRedirect is a direct-lane-only status: the addressed replica
	// cannot serve the submit (not the leader, lease lapsed, behind the
	// client's session) and Body names the node to retry at (empty: fall
	// back to the ordered path).
	replyRedirect uint32 = 3
)

// Checkpoint reasons.
const (
	ckptPeriodic uint8 = 1
	ckptJoin     uint8 = 2
	ckptRemerge  uint8 = 3
)

// msgInvocation asks a group to execute an operation.
type msgInvocation struct {
	GroupID     uint64
	Key         opKey
	Operation   string
	Args        []byte // encoded cdr value sequence
	Oneway      bool
	Fulfillment bool // replayed from a secondary component after remerge
}

// msgReply carries the outcome of an operation, plus (for passive styles)
// the state update backups must apply.
type msgReply struct {
	GroupID    uint64
	Key        opKey
	Status     uint32
	Body       []byte // results / user exception / system exception
	Node       string // executing replica (voting and diagnostics)
	ExecMsgID  uint64 // ordered msg id of the invocation this answers
	Update     []byte // postimage (warm passive), empty otherwise
	UpdateFull bool   // Update is a full state snapshot, not a delta
}

// msgCheckpoint transfers full state: periodic (cold passive), to a joining
// replica, or to a remerging secondary component.
type msgCheckpoint struct {
	GroupID   uint64
	Reason    uint8
	UpToMsgID uint64 // state reflects ordered invocations up to this id
	State     []byte
	// Covered is the sender's duplicate-suppression window: keys of
	// executed operations whose effects State already includes. Adopters
	// seed their dedup tables from it, so an operation covered by the
	// snapshot cannot re-execute on top of it if the recovery machinery
	// re-delivers it — state transfer must carry this infrastructure
	// state along with the application state, or exactly-once breaks for
	// members that adopted across a delivery gap.
	Covered []opKey
	// LfSeq is the leader sequence State reflects (LEADER_FOLLOWER only):
	// an adopter resumes serving session-token-gated reads — and, on
	// promotion, numbering — from here.
	LfSeq uint64
}

// msgLfOrder is the leader's order stream: one invocation the leader has
// sequenced (and already executed), multicast on the invocation group so
// followers re-execute it in leader order. Epoch is the ring epoch at which
// the sender became leader; (Epoch, Seq) also seeds the deterministic
// execution context, so leader (executing at submit time) and followers
// (executing at delivery time) draw identical timestamps and nested-call
// sequence numbers.
type msgLfOrder struct {
	GroupID   uint64
	Epoch     uint64
	Seq       uint64
	Leader    string
	Key       opKey
	Operation string
	Args      []byte
	Oneway    bool
}

// msgLfSubmit is a client's direct-lane invocation submit. ReadOnly submits
// may be served from local state by any replica holding a live read lease;
// MinSeq is the client's session token (highest leader sequence it has
// observed), giving read-your-writes and monotonic reads across replicas.
// From is the node the direct reply goes back to.
type msgLfSubmit struct {
	GroupID   uint64
	Key       opKey
	Operation string
	Args      []byte
	ReadOnly  bool
	MinSeq    uint64
	From      string
}

// msgLfReply is the direct-lane reply. Seq carries the leader sequence the
// reply reflects (the client's next session token); Redirect, with status
// replyRedirect, names a better node to retry at.
type msgLfReply struct {
	GroupID  uint64
	Key      opKey
	Status   uint32
	Body     []byte
	Node     string
	Seq      uint64
	Redirect string
}

// msgLfLease is the ordered read-lease grant/renewal. Each replica computes
// its own expiry as local-clock-at-delivery + Dur, so the lease never
// depends on clocks being synchronized across nodes — only on bounded
// clock *rate* skew, absorbed by the guard bands (readers retire the lease
// LeaseGuard early; a new leader waits Dur + LeaseGuard past takeover
// before writing).
type msgLfLease struct {
	GroupID uint64
	Epoch   uint64
	Leader  string
	Dur     time.Duration
}

// msgStateReq is the self-healing sync retry: a replica stuck waiting for
// state transfer (its expected sender vanished in membership churn)
// periodically asks the group for a snapshot. Healthy members answer with
// a checkpoint; if *every* member is stuck, the one with the most applied
// state promotes its own state to authoritative (see replica.onStateReq).
// LastExec advertises the requester's applied-state horizon so that
// election prefers a state-bearing secondary over an empty fresh
// incarnation regardless of request ordering.
type msgStateReq struct {
	GroupID  uint64
	From     string
	LastExec uint64
}

func encodeOpKey(e *cdr.Encoder, k opKey) {
	e.WriteString(k.ClientID)
	e.WriteULongLong(k.ParentSeq)
	e.WriteULongLong(k.OpSeq)
}

func decodeOpKey(d *cdr.Decoder) (opKey, error) {
	var k opKey
	var err error
	if k.ClientID, err = d.ReadStringInterned(); err != nil {
		return k, err
	}
	if k.ParentSeq, err = d.ReadULongLong(); err != nil {
		return k, err
	}
	if k.OpSeq, err = d.ReadULongLong(); err != nil {
		return k, err
	}
	return k, nil
}

// encodeWire marshals an engine message into a caller-owned buffer. The
// buffer comes from the shared encoder pool and is handed to
// Ring.Multicast, which takes ownership (no defensive copies anywhere on
// the path). An unknown message type is a local programming error reported
// to the caller instead of panicking on the invocation path.
func encodeWire(m any) ([]byte, error) {
	e := cdr.GetEncoder(cdr.BigEndian)
	switch v := m.(type) {
	case *msgInvocation:
		e.WriteOctet(byte(wireInvocation))
		e.WriteULongLong(v.GroupID)
		encodeOpKey(e, v.Key)
		e.WriteString(v.Operation)
		e.WriteOctetSeq(v.Args)
		e.WriteBool(v.Oneway)
		e.WriteBool(v.Fulfillment)
	case *msgReply:
		e.WriteOctet(byte(wireReply))
		e.WriteULongLong(v.GroupID)
		encodeOpKey(e, v.Key)
		e.WriteULong(v.Status)
		e.WriteOctetSeq(v.Body)
		e.WriteString(v.Node)
		e.WriteULongLong(v.ExecMsgID)
		e.WriteOctetSeq(v.Update)
		e.WriteBool(v.UpdateFull)
	case *msgCheckpoint:
		e.WriteOctet(byte(wireCheckpoint))
		e.WriteULongLong(v.GroupID)
		e.WriteOctet(v.Reason)
		e.WriteULongLong(v.UpToMsgID)
		e.WriteOctetSeq(v.State)
		e.WriteULong(uint32(len(v.Covered)))
		for _, k := range v.Covered {
			encodeOpKey(e, k)
		}
		e.WriteULongLong(v.LfSeq)
	case *msgStateReq:
		e.WriteOctet(byte(wireStateReq))
		e.WriteULongLong(v.GroupID)
		e.WriteString(v.From)
		e.WriteULongLong(v.LastExec)
	case *msgLfOrder:
		e.WriteOctet(byte(wireLfOrder))
		e.WriteULongLong(v.GroupID)
		e.WriteULongLong(v.Epoch)
		e.WriteULongLong(v.Seq)
		e.WriteString(v.Leader)
		encodeOpKey(e, v.Key)
		e.WriteString(v.Operation)
		e.WriteOctetSeq(v.Args)
		e.WriteBool(v.Oneway)
	case *msgLfSubmit:
		e.WriteOctet(byte(wireLfSubmit))
		e.WriteULongLong(v.GroupID)
		encodeOpKey(e, v.Key)
		e.WriteString(v.Operation)
		e.WriteOctetSeq(v.Args)
		e.WriteBool(v.ReadOnly)
		e.WriteULongLong(v.MinSeq)
		e.WriteString(v.From)
	case *msgLfReply:
		e.WriteOctet(byte(wireLfReply))
		e.WriteULongLong(v.GroupID)
		encodeOpKey(e, v.Key)
		e.WriteULong(v.Status)
		e.WriteOctetSeq(v.Body)
		e.WriteString(v.Node)
		e.WriteULongLong(v.Seq)
		e.WriteString(v.Redirect)
	case *msgLfLease:
		e.WriteOctet(byte(wireLfLease))
		e.WriteULongLong(v.GroupID)
		e.WriteULongLong(v.Epoch)
		e.WriteString(v.Leader)
		e.WriteULongLong(uint64(v.Dur))
	default:
		e.Release()
		return nil, fmt.Errorf("replication: encodeWire: unknown message %T", m)
	}
	out := e.TakeBytes()
	e.Release()
	return out, nil
}

func decodeWire(b []byte) (any, error) {
	// Callers hand decodeWire buffers they own and never modify — a totem
	// delivery (copied off the transport once by the ring) or a WAL
	// record — so Args/Body may alias b instead of copying. The servant
	// boundary still copies: DecodeValues materializes argument values.
	d := cdr.NewDecoder(b, cdr.BigEndian)
	d.SetZeroCopy(true)
	t, err := d.ReadOctet()
	if err != nil {
		return nil, err
	}
	switch wireKind(t) {
	case wireInvocation:
		v := &msgInvocation{}
		if v.GroupID, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Key, err = decodeOpKey(d); err != nil {
			return nil, err
		}
		if v.Operation, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.Args, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		if v.Oneway, err = d.ReadBool(); err != nil {
			return nil, err
		}
		if v.Fulfillment, err = d.ReadBool(); err != nil {
			return nil, err
		}
		return v, nil
	case wireReply:
		v := &msgReply{}
		if v.GroupID, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Key, err = decodeOpKey(d); err != nil {
			return nil, err
		}
		if v.Status, err = d.ReadULong(); err != nil {
			return nil, err
		}
		if v.Body, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		if v.Node, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.ExecMsgID, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Update, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		if v.UpdateFull, err = d.ReadBool(); err != nil {
			return nil, err
		}
		return v, nil
	case wireCheckpoint:
		v := &msgCheckpoint{}
		if v.GroupID, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Reason, err = d.ReadOctet(); err != nil {
			return nil, err
		}
		if v.UpToMsgID, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.State, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		var n uint32
		if n, err = d.ReadULong(); err != nil {
			return nil, err
		}
		if n > 0 {
			v.Covered = make([]opKey, n)
			for i := range v.Covered {
				if v.Covered[i], err = decodeOpKey(d); err != nil {
					return nil, err
				}
			}
		}
		if v.LfSeq, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		return v, nil
	case wireStateReq:
		v := &msgStateReq{}
		if v.GroupID, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.From, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.LastExec, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		return v, nil
	case wireLfOrder:
		v := &msgLfOrder{}
		if v.GroupID, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Epoch, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Seq, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Leader, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.Key, err = decodeOpKey(d); err != nil {
			return nil, err
		}
		if v.Operation, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.Args, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		if v.Oneway, err = d.ReadBool(); err != nil {
			return nil, err
		}
		return v, nil
	case wireLfSubmit:
		v := &msgLfSubmit{}
		if v.GroupID, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Key, err = decodeOpKey(d); err != nil {
			return nil, err
		}
		if v.Operation, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.Args, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		if v.ReadOnly, err = d.ReadBool(); err != nil {
			return nil, err
		}
		if v.MinSeq, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.From, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		return v, nil
	case wireLfReply:
		v := &msgLfReply{}
		if v.GroupID, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Key, err = decodeOpKey(d); err != nil {
			return nil, err
		}
		if v.Status, err = d.ReadULong(); err != nil {
			return nil, err
		}
		if v.Body, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		if v.Node, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.Seq, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Redirect, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		return v, nil
	case wireLfLease:
		v := &msgLfLease{}
		if v.GroupID, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Epoch, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Leader, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		var dur uint64
		if dur, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		v.Dur = time.Duration(dur)
		return v, nil
	default:
		return nil, fmt.Errorf("replication: unknown wire kind %d", t)
	}
}

// taskQueue is an unbounded FIFO feeding a replica's executor goroutine:
// the engine's delivery loop must never block on a servant executing a
// (possibly nested, possibly slow) operation.
type taskQueue struct {
	ch     chan struct{}
	mu     chan struct{} // 1-slot mutex usable in select
	items  []any
	closed bool
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{ch: make(chan struct{}, 1), mu: make(chan struct{}, 1)}
	q.mu <- struct{}{}
	return q
}

func (q *taskQueue) push(item any) {
	<-q.mu
	if !q.closed {
		q.items = append(q.items, item)
	}
	q.mu <- struct{}{}
	select {
	case q.ch <- struct{}{}:
	default:
	}
}

// pop returns the next task, blocking until one exists or stop closes.
func (q *taskQueue) pop(stop <-chan struct{}) (any, bool) {
	for {
		<-q.mu
		if len(q.items) > 0 {
			item := q.items[0]
			q.items = q.items[1:]
			q.mu <- struct{}{}
			return item, true
		}
		closed := q.closed
		q.mu <- struct{}{}
		if closed {
			return nil, false
		}
		select {
		case <-q.ch:
		case <-stop:
			return nil, false
		}
	}
}

func (q *taskQueue) close() {
	<-q.mu
	q.closed = true
	q.mu <- struct{}{}
	select {
	case q.ch <- struct{}{}:
	default:
	}
}
