package replication

import (
	"sync"
	"testing"
)

// The delivery fan-in does a replicaFor map lookup for every ordered
// message on every shard. These benchmarks pin down why the engine guards
// its group map with a RWMutex: under multi-shard fan-in (R delivery loops
// in parallel) read-locks proceed concurrently while an exclusive Mutex
// serializes the shards against each other. Compare:
//
//	go test -bench 'EngineLookup' -cpu 1,4,8 ./internal/replication
//
// The mutex baseline flatlines (or regresses) with more CPUs; the RWMutex
// path scales with them.

func benchEngine(groups int) *Engine {
	e := &Engine{
		hosted:      make(map[uint64]*replica),
		pending:     make(map[opKey]*pendingCall),
		replyJoined: make(map[uint64]bool),
		shardPin:    make(map[uint64]int),
	}
	for gid := uint64(1); gid <= uint64(groups); gid++ {
		e.hosted[gid] = &replica{}
		e.replyJoined[gid] = true
	}
	return e
}

// BenchmarkEngineLookupContention exercises the real read path (replicaFor
// + the ensureReplyJoined fast path) from parallel goroutines, as R shard
// delivery loops would.
func BenchmarkEngineLookupContention(b *testing.B) {
	e := benchEngine(8)
	b.RunParallel(func(pb *testing.PB) {
		gid := uint64(1)
		for pb.Next() {
			gid = gid%8 + 1
			if e.replicaFor(gid) == nil {
				b.Fatal("missing replica")
			}
			e.ensureReplyJoined(gid)
		}
	})
}

// BenchmarkEngineLookupMutexBaseline is the pre-sharding discipline: the
// same lookups behind one exclusive Mutex.
func BenchmarkEngineLookupMutexBaseline(b *testing.B) {
	hosted := make(map[uint64]*replica)
	replyJoined := make(map[uint64]bool)
	for gid := uint64(1); gid <= 8; gid++ {
		hosted[gid] = &replica{}
		replyJoined[gid] = true
	}
	var mu sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		gid := uint64(1)
		for pb.Next() {
			gid = gid%8 + 1
			mu.Lock()
			r := hosted[gid]
			mu.Unlock()
			if r == nil {
				b.Fatal("missing replica")
			}
			mu.Lock()
			_ = replyJoined[gid]
			mu.Unlock()
		}
	})
}
