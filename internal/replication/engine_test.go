package replication

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/netsim"
	"repro/internal/orb"
	"repro/internal/totem"
)

// account is a deterministic, checkpointable test servant: a balance plus
// an operation count.
type account struct {
	mu      sync.Mutex
	balance int64
	ops     int64
}

func (a *account) RepoID() string { return "IDL:repro/Account:1.0" }

func (a *account) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch inv.Operation {
	case "add":
		a.ops++
		a.balance += int64(inv.Args[0].AsLong())
		return []cdr.Value{cdr.LongLong(a.balance)}, nil
	case "get":
		return []cdr.Value{cdr.LongLong(a.balance), cdr.LongLong(a.ops)}, nil
	case "overdraw":
		return nil, &orb.UserException{Name: "IDL:repro/Overdraft:1.0", Info: []cdr.Value{cdr.LongLong(a.balance)}}
	default:
		return nil, errors.New("bad op")
	}
}

func (a *account) GetState() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(a.balance)
	e.WriteLongLong(a.ops)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (a *account) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	bal, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	ops, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.balance, a.ops = bal, ops
	a.mu.Unlock()
	return nil
}

func (a *account) snapshot() (int64, int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance, a.ops
}

// cluster is the replication test harness: n nodes, each with a ring and
// an engine.
type cluster struct {
	t        *testing.T
	fabric   *netsim.Fabric
	nodes    []string
	rings    map[string]*totem.Ring
	engines  map[string]*Engine
	servants map[string]map[uint64]*account
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{
		t:        t,
		fabric:   netsim.NewFabric(netsim.Config{Latency: 50 * time.Microsecond}),
		rings:    make(map[string]*totem.Ring),
		engines:  make(map[string]*Engine),
		servants: make(map[string]map[uint64]*account),
	}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, fmt.Sprintf("n%d", i+1))
	}
	for _, node := range c.nodes {
		c.fabric.AddNode(node)
	}
	for _, node := range c.nodes {
		r, err := totem.NewRing(c.fabric, totem.Config{
			Node:              node,
			Universe:          c.nodes,
			Port:              4000,
			HeartbeatInterval: 4 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		c.rings[node] = r
		e, err := NewEngine(Config{
			Node:          node,
			Ring:          r,
			CallTimeout:   8 * time.Second,
			RetryInterval: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Start()
		c.engines[node] = e
		c.servants[node] = make(map[uint64]*account)
	}
	t.Cleanup(func() {
		for _, e := range c.engines {
			e.Stop()
		}
		for _, r := range c.rings {
			r.Stop()
		}
	})
	return c
}

// host places replicas of a fresh group on the given nodes.
func (c *cluster) host(def GroupDef, on ...string) {
	c.t.Helper()
	for _, node := range on {
		a := &account{}
		c.servants[node][def.ID] = a
		if err := c.engines[node].HostReplica(def, a, true); err != nil {
			c.t.Fatal(err)
		}
	}
	c.waitMembers(def.ID, on)
}

// waitMembers waits until every hosting node sees the expected membership.
func (c *cluster) waitMembers(gid uint64, on []string) {
	c.t.Helper()
	want := append([]string(nil), on...)
	sortStrings(want)
	waitFor(c.t, 5*time.Second, fmt.Sprintf("group %d membership %v", gid, want), func() bool {
		for _, node := range on {
			st, ok := c.engines[node].GroupStatus(gid)
			if !ok || st.Syncing || !equalStrings(st.Members, want) {
				return false
			}
		}
		return true
	})
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestActiveReplicationConsistency(t *testing.T) {
	c := newCluster(t, 4)
	def := GroupDef{ID: 1, Name: "acct", Style: Active}
	c.host(def, "n1", "n2", "n3")

	proxy := c.engines["n4"].Proxy(GroupRef{ID: 1})
	var want int64
	for i := 1; i <= 10; i++ {
		out, err := proxy.Invoke("add", cdr.Long(int32(i)))
		if err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		want += int64(i)
		if out[0].AsLongLong() != want {
			t.Fatalf("add %d returned %d, want %d", i, out[0].AsLongLong(), want)
		}
	}
	// Every replica must have executed every operation and hold the same
	// state.
	waitFor(t, 5*time.Second, "replica convergence", func() bool {
		for _, node := range []string{"n1", "n2", "n3"} {
			bal, ops := c.servants[node][1].snapshot()
			if bal != want || ops != 10 {
				return false
			}
		}
		return true
	})
}

func TestActiveReplicaCrashIsTransparent(t *testing.T) {
	c := newCluster(t, 4)
	def := GroupDef{ID: 1, Name: "acct", Style: Active}
	c.host(def, "n1", "n2", "n3")
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 1})

	if _, err := proxy.Invoke("add", cdr.Long(5)); err != nil {
		t.Fatal(err)
	}
	c.fabric.CrashNode("n2")
	c.engines["n2"].Stop()
	c.rings["n2"].Stop()

	// Invocations keep succeeding with no client-visible change.
	out, err := proxy.Invoke("add", cdr.Long(7))
	if err != nil {
		t.Fatalf("post-crash add: %v", err)
	}
	if out[0].AsLongLong() != 12 {
		t.Fatalf("post-crash balance %d, want 12", out[0].AsLongLong())
	}
}

func TestWarmPassivePrimaryOnlyExecution(t *testing.T) {
	c := newCluster(t, 4)
	def := GroupDef{ID: 2, Name: "warm", Style: WarmPassive}
	c.host(def, "n1", "n2", "n3")
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 2})

	for i := 0; i < 5; i++ {
		if _, err := proxy.Invoke("add", cdr.Long(10)); err != nil {
			t.Fatal(err)
		}
	}
	// Only the primary (n1, senior member) executes; backups apply state.
	waitFor(t, 5*time.Second, "backup state sync", func() bool {
		b2, _ := c.servants["n2"][2].snapshot()
		b3, _ := c.servants["n3"][2].snapshot()
		return b2 == 50 && b3 == 50
	})
	_, opsPrimary := c.servants["n1"][2].snapshot()
	if opsPrimary != 5 {
		t.Errorf("primary executed %d ops, want 5", opsPrimary)
	}
	// Backups applied full-state updates: their op counters mirror the
	// primary's because state includes the counter.
	if ex := c.engines["n2"].Stats().Executions; ex != 0 {
		t.Errorf("backup n2 executed %d operations, want 0", ex)
	}
}

func TestWarmPassiveFailover(t *testing.T) {
	c := newCluster(t, 4)
	def := GroupDef{ID: 3, Name: "warm", Style: WarmPassive}
	c.host(def, "n1", "n2", "n3")
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 3})

	if _, err := proxy.Invoke("add", cdr.Long(100)); err != nil {
		t.Fatal(err)
	}
	c.fabric.CrashNode("n1") // kill the primary
	c.engines["n1"].Stop()
	c.rings["n1"].Stop()

	out, err := proxy.Invoke("add", cdr.Long(1))
	if err != nil {
		t.Fatalf("failover add: %v", err)
	}
	if out[0].AsLongLong() != 101 {
		t.Fatalf("state lost in failover: got %d, want 101", out[0].AsLongLong())
	}
	waitFor(t, 5*time.Second, "new primary", func() bool {
		st, ok := c.engines["n2"].GroupStatus(3)
		return ok && st.Primary == "n2"
	})
}

func TestColdPassiveFailoverReplaysLog(t *testing.T) {
	c := newCluster(t, 4)
	def := GroupDef{ID: 4, Name: "cold", Style: ColdPassive, CheckpointEvery: 3}
	c.host(def, "n1", "n2", "n3")
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 4})

	var want int64
	for i := 1; i <= 7; i++ {
		if _, err := proxy.Invoke("add", cdr.Long(int32(i))); err != nil {
			t.Fatal(err)
		}
		want += int64(i)
	}
	// Backups have NOT executed anything yet.
	if bal, _ := c.servants["n2"][4].snapshot(); bal != 0 {
		// A periodic checkpoint may have installed state; that's fine too —
		// but executions must be zero.
		if ex := c.engines["n2"].Stats().Executions; ex != 0 {
			t.Fatalf("cold backup executed %d ops", ex)
		}
		_ = bal
	}

	c.fabric.CrashNode("n1")
	c.engines["n1"].Stop()
	c.rings["n1"].Stop()

	out, err := proxy.Invoke("get")
	if err != nil {
		t.Fatalf("post-failover get: %v", err)
	}
	if out[0].AsLongLong() != want {
		t.Fatalf("cold failover state %d, want %d", out[0].AsLongLong(), want)
	}
	if re := c.engines["n2"].Stats().Replays; re == 0 {
		t.Error("expected replayed operations at the new cold primary")
	}
}

func TestDuplicateInvocationSuppression(t *testing.T) {
	c := newCluster(t, 2)
	def := GroupDef{ID: 5, Name: "dup", Style: Active}
	c.host(def, "n1")
	// An aggressive retry interval forces retransmissions of the same
	// logical operation.
	proxy := c.engines["n2"].Proxy(GroupRef{ID: 5}, WithRetryInterval(3*time.Millisecond))

	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		if _, err := proxy.Invoke("add", cdr.Long(1)); err != nil {
			t.Errorf("add: %v", err)
		}
	}()
	<-slowDone
	time.Sleep(50 * time.Millisecond)

	bal, ops := c.servants["n1"][5].snapshot()
	if bal != 1 || ops != 1 {
		t.Fatalf("retransmissions corrupted state: balance=%d ops=%d", bal, ops)
	}
	if c.engines["n2"].Stats().Retries == 0 {
		t.Skip("no retransmission happened (fast network); suppression not exercised")
	}
	if c.engines["n1"].Stats().DupInvocations == 0 {
		t.Error("duplicates were retransmitted but none suppressed")
	}
}

func TestNestedInvocationMixedStyles(t *testing.T) {
	c := newCluster(t, 4)
	// Group A (active, 2 replicas) calls group B (warm passive, 2
	// replicas) from inside its dispatch — the paper's central scenario.
	defB := GroupDef{ID: 11, Name: "B", Style: WarmPassive}
	c.host(defB, "n3", "n4")

	defA := GroupDef{ID: 10, Name: "A", Style: Active}
	for _, node := range []string{"n1", "n2"} {
		node := node
		forwarder := orb.NewMethodServant("IDL:repro/Forwarder:1.0").
			Define("addVia", func(inv *orb.Invocation) ([]cdr.Value, error) {
				nested := Nested(inv, GroupRef{ID: 11})
				return nested.Invoke("add", inv.Args[0])
			})
		if err := c.engines[node].HostReplica(defA, forwarder, true); err != nil {
			t.Fatal(err)
		}
	}
	c.waitMembers(10, []string{"n1", "n2"})

	client := c.engines["n3"].Proxy(GroupRef{ID: 10})
	out, err := client.Invoke("addVia", cdr.Long(42))
	if err != nil {
		t.Fatalf("nested invoke: %v", err)
	}
	if out[0].AsLongLong() != 42 {
		t.Fatalf("nested result = %d", out[0].AsLongLong())
	}

	// Both replicas of A invoked B; B must have executed the operation
	// exactly once.
	waitFor(t, 5*time.Second, "B state", func() bool {
		bal, ops := c.servants["n3"][11].snapshot()
		return bal == 42 && ops == 1
	})
	time.Sleep(50 * time.Millisecond)
	if _, ops := c.servants["n3"][11].snapshot(); ops != 1 {
		t.Fatalf("duplicate nested invocation executed: ops=%d", ops)
	}
	dups := c.engines["n3"].Stats().DupInvocations + c.engines["n4"].Stats().DupInvocations
	if dups == 0 {
		t.Error("expected receiver-side duplicate suppression of the second replica's invocation")
	}
}

func TestVotingMajority(t *testing.T) {
	c := newCluster(t, 4)
	def := GroupDef{ID: 12, Name: "vote", Style: ActiveWithVoting}
	c.host(def, "n1", "n2", "n3")
	proxy := c.engines["n4"].Proxy(GroupRef{ID: 12}, WithVotes(3))
	// Many sequential calls: each needs all three replicas' responses, so
	// this also guards against sender-side suppression starving the quorum
	// (a voting group must never suppress its responses).
	var want int64
	for i := 1; i <= 40; i++ {
		out, err := proxy.Invoke("add", cdr.Long(int32(i)))
		if err != nil {
			t.Fatalf("voted add %d: %v", i, err)
		}
		want += int64(i)
		if out[0].AsLongLong() != want {
			t.Fatalf("voted result = %d, want %d", out[0].AsLongLong(), want)
		}
	}
}

func TestUserExceptionPropagates(t *testing.T) {
	c := newCluster(t, 2)
	def := GroupDef{ID: 13, Name: "exc", Style: Active}
	c.host(def, "n1")
	proxy := c.engines["n2"].Proxy(GroupRef{ID: 13})
	_, err := proxy.Invoke("overdraw")
	var uexc *orb.UserException
	if !errors.As(err, &uexc) || uexc.Name != "IDL:repro/Overdraft:1.0" {
		t.Fatalf("got %v", err)
	}
}

func TestOnewayInvocation(t *testing.T) {
	c := newCluster(t, 2)
	def := GroupDef{ID: 14, Name: "ow", Style: Active}
	c.host(def, "n1")
	proxy := c.engines["n2"].Proxy(GroupRef{ID: 14})
	if err := proxy.InvokeOneway("add", cdr.Long(3)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "oneway effect", func() bool {
		bal, _ := c.servants["n1"][14].snapshot()
		return bal == 3
	})
}

func TestJoinerStateTransfer(t *testing.T) {
	c := newCluster(t, 3)
	def := GroupDef{ID: 15, Name: "join", Style: Active}
	c.host(def, "n1", "n2")
	proxy := c.engines["n3"].Proxy(GroupRef{ID: 15})
	for i := 0; i < 4; i++ {
		if _, err := proxy.Invoke("add", cdr.Long(25)); err != nil {
			t.Fatal(err)
		}
	}

	// A new replica joins mid-stream and must be brought up to state.
	late := &account{}
	c.servants["n3"][15] = late
	if err := c.engines["n3"].HostReplica(def, late, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "joiner synced", func() bool {
		st, ok := c.engines["n3"].GroupStatus(15)
		if !ok || st.Syncing {
			return false
		}
		bal, _ := late.snapshot()
		return bal == 100
	})
	if c.engines["n3"].Stats().StateTransfers == 0 {
		t.Error("joiner did not record a state transfer")
	}

	// The joiner now participates: kill the old members, state survives.
	for _, n := range []string{"n1", "n2"} {
		c.fabric.CrashNode(n)
		c.engines[n].Stop()
		c.rings[n].Stop()
	}
	local := c.engines["n3"].Proxy(GroupRef{ID: 15})
	out, err := local.Invoke("get")
	if err != nil {
		t.Fatalf("surviving joiner: %v", err)
	}
	if out[0].AsLongLong() != 100 {
		t.Fatalf("joiner state = %d, want 100", out[0].AsLongLong())
	}
}

func TestEngineStopUnblocksCallers(t *testing.T) {
	c := newCluster(t, 2)
	def := GroupDef{ID: 16, Name: "stop", Style: Active}
	c.host(def, "n1")
	proxy := c.engines["n2"].Proxy(GroupRef{ID: 16}, WithTimeout(30*time.Second))
	c.fabric.CrashNode("n1") // no one will answer
	done := make(chan error, 1)
	go func() {
		_, err := proxy.Invoke("add", cdr.Long(1))
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	c.engines["n2"].Stop()
	select {
	case err := <-done:
		if !errors.Is(err, ErrEngineStopped) {
			t.Fatalf("got %v, want ErrEngineStopped", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("caller not unblocked by Stop")
	}
}

func TestHostReplicaErrors(t *testing.T) {
	c := newCluster(t, 1)
	def := GroupDef{ID: 17, Name: "dup-host", Style: Active}
	c.host(def, "n1")
	err := c.engines["n1"].HostReplica(def, &account{}, true)
	if !errors.Is(err, ErrAlreadyHosted) {
		t.Fatalf("got %v, want ErrAlreadyHosted", err)
	}
}

func TestCallTimeout(t *testing.T) {
	c := newCluster(t, 2)
	// Group 99 is hosted nowhere: the call must time out.
	proxy := c.engines["n1"].Proxy(GroupRef{ID: 99}, WithTimeout(80*time.Millisecond), WithRetryInterval(30*time.Millisecond))
	_, err := proxy.Invoke("add", cdr.Long(1))
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("got %v, want ErrCallTimeout", err)
	}
}

func TestStyleStrings(t *testing.T) {
	for s, want := range map[Style]string{
		Active: "ACTIVE", WarmPassive: "WARM_PASSIVE", ColdPassive: "COLD_PASSIVE",
		Stateless: "STATELESS", ActiveWithVoting: "ACTIVE_WITH_VOTING",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if Style(99).String() == "" {
		t.Error("unknown style")
	}
	if !Active.IsActive() || Active.IsPassive() || !WarmPassive.IsPassive() {
		t.Error("style predicates")
	}
}
