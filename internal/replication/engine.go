package replication

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/drstore"
	"repro/internal/fault"
	"repro/internal/orb"
	"repro/internal/totem"
	"repro/internal/wal"
)

// epochAnchor is the shared origin of deterministic logical time; it must
// be identical at every engine so replicas compute the same timestamps.
var epochAnchor = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// dedupRetain bounds per-replica duplicate-detection records (an
// implementation of the FT_REQUEST expiration idea: sufficiently old
// requests can no longer be deduplicated).
const dedupRetain = 4096

// Errors returned by the engine and proxies.
var (
	ErrEngineStopped = errors.New("replication: engine stopped")
	ErrCallTimeout   = errors.New("replication: invocation timed out")
	ErrAlreadyHosted = errors.New("replication: group already hosted on this node")
)

// Config parameterizes an Engine.
type Config struct {
	// Node is this engine's node name (must match the ring's node).
	Node string
	// Ring is the totem endpoint the engine communicates through. The
	// caller retains ownership (and stops it after the engine).
	Ring *totem.Ring
	// Rings, when set, is the sharded transport pool: R independent totem
	// rings (distinct ports, distinct tokens) that the engine fans in
	// events from. Each object group lives entirely on one shard
	// (ShardFor(gid, R), or its explicit pin), so per-group total order is
	// preserved while independent groups proceed in parallel. Setting only
	// Ring is equivalent to Rings = []*totem.Ring{Ring}; with both set,
	// Rings wins and Ring is ignored.
	Rings []*totem.Ring
	// Notifier receives fault reports derived from membership changes
	// (optional).
	Notifier *fault.Notifier
	// CallTimeout bounds one logical invocation including retries
	// (default 5s).
	CallTimeout time.Duration
	// RetryInterval is how often an unanswered invocation is retransmitted
	// (default 500ms).
	RetryInterval time.Duration
	// SyncRetryInterval is how often a replica stuck awaiting state
	// transfer re-requests a snapshot (default 150ms).
	SyncRetryInterval time.Duration
	// MaxRetryInterval caps the exponential client-retransmission backoff
	// (default 8 × RetryInterval).
	MaxRetryInterval time.Duration
	// LogFactory builds the per-replica write-ahead log. The default is an
	// in-memory log; deployments that need crash-restart recovery supply
	// file-backed logs (wal.OpenFileLog) here.
	LogFactory func(def GroupDef) wal.Log
	// LeaseDuration is the validity window of LEADER_FOLLOWER read leases
	// (default 150ms). The leader renews at roughly a third of it; a new
	// leader fences writes for LeaseDuration + LeaseGuard after takeover.
	LeaseDuration time.Duration
	// LeaseGuard is the guard band absorbing bounded clock-rate skew and
	// delivery lag: readers retire a lease LeaseGuard before its local
	// expiry (default 20ms).
	LeaseGuard time.Duration
	// Clock supplies the local wall clock for lease accounting (default
	// time.Now). Tests inject skewed clocks per engine here — the lease
	// protocol never compares timestamps across nodes, only durations.
	Clock func() time.Time
	// DR, when set, is the disaster-recovery shipping target: the senior
	// primary-component member of each hosted group ships its definition,
	// periodic checkpoints (with the duplicate-suppression window), and
	// per-operation update records there, so a standby domain can re-host
	// every group after this whole domain dies. Nil disables shipping.
	DR drstore.Store
}

func (c *Config) fill() {
	if len(c.Rings) == 0 && c.Ring != nil {
		c.Rings = []*totem.Ring{c.Ring}
	}
	if len(c.Rings) > 0 {
		c.Ring = c.Rings[0]
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 5 * time.Second
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 500 * time.Millisecond
	}
	if c.SyncRetryInterval <= 0 {
		c.SyncRetryInterval = 150 * time.Millisecond
	}
	if c.MaxRetryInterval <= 0 {
		c.MaxRetryInterval = 8 * c.RetryInterval
	}
	if c.LogFactory == nil {
		c.LogFactory = func(GroupDef) wal.Log { return &wal.MemLog{} }
	}
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = 150 * time.Millisecond
	}
	if c.LeaseGuard <= 0 {
		c.LeaseGuard = 20 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// now reads the engine's (injectable) local clock.
func (e *Engine) now() time.Time { return e.cfg.Clock() }

// Stats counts engine-level replication events (experiments E5/E7 read
// these).
type Stats struct {
	Executions        uint64 // servant dispatches performed
	DupInvocations    uint64 // duplicate invocations suppressed (receiver side)
	SuppressedReplies uint64 // replies suppressed (sender side)
	DupReplies        uint64 // duplicate replies discarded (receiver side)
	Replays           uint64 // operations re-executed during failover
	Fulfillments      uint64 // fulfillment operations re-invoked after remerge
	Checkpoints       uint64 // checkpoints multicast
	StateTransfers    uint64 // state snapshots applied (join/remerge)
	Retries           uint64 // client-side invocation retransmissions
	LfReads           uint64 // leased local reads served (no totem entry)
	LfRedirects       uint64 // direct-lane submits bounced (wrong node/no lease)
	LfTakeovers       uint64 // leader-follower leadership takeovers
	LfLeases          uint64 // lease grants/renewals multicast
	HealNudges        uint64 // post-heal catch-up state requests sent
}

type engineStats struct {
	executions        atomic.Uint64
	dupInvocations    atomic.Uint64
	suppressedReplies atomic.Uint64
	dupReplies        atomic.Uint64
	replays           atomic.Uint64
	fulfillments      atomic.Uint64
	checkpoints       atomic.Uint64
	stateTransfers    atomic.Uint64
	retries           atomic.Uint64
	lfReads           atomic.Uint64
	lfRedirects       atomic.Uint64
	lfTakeovers       atomic.Uint64
	lfLeases          atomic.Uint64
	healNudges        atomic.Uint64
}

// Engine is one node's replication runtime: it hosts replicas of object
// groups and issues invocations to (possibly remote) groups.
type Engine struct {
	cfg  Config
	stat engineStats

	// mu is a RWMutex because the delivery fan-in is read-dominated: every
	// ordered message does a replicaFor lookup (and every proxy call an
	// ensureReplyJoined check), while the map itself changes only on group
	// creation/removal. With R shards delivering concurrently the old
	// exclusive Mutex serialized the shards against each other
	// (BenchmarkEngineLookupContention measures the difference).
	mu          sync.RWMutex
	hosted      map[uint64]*replica
	pending     map[opKey]*pendingCall
	replyJoined map[uint64]bool
	shardPin    map[uint64]int // explicit gid→shard placements (0-based)
	rootSeq     atomic.Uint64
	ringMembers []string
	stopped     bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

type pendingCall struct {
	votesNeeded int
	votes       map[string]*msgReply
	ch          chan *msgReply
}

// NewEngine creates an engine bound to one started ring (Config.Ring) or a
// sharded pool of them (Config.Rings).
func NewEngine(cfg Config) (*Engine, error) {
	cfg.fill()
	if len(cfg.Rings) == 0 {
		return nil, errors.New("replication: Config.Ring or Config.Rings required")
	}
	for _, r := range cfg.Rings {
		if r == nil {
			return nil, errors.New("replication: nil ring in Config.Rings")
		}
	}
	if cfg.Node == "" {
		cfg.Node = cfg.Rings[0].Node()
	}
	e := &Engine{
		cfg:         cfg,
		hosted:      make(map[uint64]*replica),
		pending:     make(map[opKey]*pendingCall),
		replyJoined: make(map[uint64]bool),
		shardPin:    make(map[uint64]int),
		stopCh:      make(chan struct{}),
	}
	return e, nil
}

// Start launches one delivery loop per transport shard, the sync-retry
// maintenance timer, and the LEADER_FOLLOWER lease renewal loop; it also
// claims each ring's direct (off-order) lane for the LF fast path.
func (e *Engine) Start() {
	e.wg.Add(len(e.cfg.Rings) + 2)
	for i, ring := range e.cfg.Rings {
		ring.SetDirectHandler(e.onDirect)
		go e.runRing(ring, i)
	}
	go e.syncRetryLoop()
	go e.lfLeaseLoop()
}

// lfLeaseLoop periodically renews read leases for every hosted
// LEADER_FOLLOWER group this node leads. Renewing at about a third of the
// lease duration keeps readers' leases continuously live (two renewals
// may be lost before reads start redirecting to the leader).
func (e *Engine) lfLeaseLoop() {
	defer e.wg.Done()
	interval := e.cfg.LeaseDuration / 3
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case <-ticker.C:
		}
		e.mu.RLock()
		reps := make([]*replica, 0, len(e.hosted))
		for _, r := range e.hosted {
			if r.def.Style.IsLeaderFollower() {
				reps = append(reps, r)
			}
		}
		e.mu.RUnlock()
		for _, r := range reps {
			r.lfMaybeGrant()
		}
	}
}

// onDirect is the rings' direct-lane handler: submits route to the hosted
// replica's executor, replies complete the waiting client call. The lane
// is unordered and unreliable by design — anything confusing is dropped
// and the ordered path picks up the slack.
func (e *Engine) onDirect(from, group string, payload []byte) {
	m, err := decodeWire(payload)
	if err != nil {
		return
	}
	switch v := m.(type) {
	case *msgLfSubmit:
		if r := e.replicaFor(v.GroupID); r != nil {
			r.q.push(taskLfSubmit{m: v})
		}
	case *msgLfReply:
		e.completeCall(&msgReply{
			GroupID:   v.GroupID,
			Key:       v.Key,
			Status:    v.Status,
			Body:      v.Body,
			Node:      v.Node,
			ExecMsgID: v.Seq,
		})
	}
}

// Shards returns the number of transport shards the engine fans in from.
func (e *Engine) Shards() int { return len(e.cfg.Rings) }

// PinShard records an explicit gid→shard placement so every subsequent
// join, multicast, and reply subscription for the group uses that ring.
// Out-of-range shards clamp into the pool (a domain restarted with fewer
// shards must still reach groups pinned under the old layout).
func (e *Engine) PinShard(gid uint64, shard int) {
	if shard < 0 {
		shard = 0
	}
	if shard >= len(e.cfg.Rings) {
		shard = len(e.cfg.Rings) - 1
	}
	e.mu.Lock()
	e.shardPin[gid] = shard
	e.mu.Unlock()
}

// shardOf resolves a group's transport shard: explicit pin first, then the
// deterministic hash route.
func (e *Engine) shardOf(gid uint64) int {
	if len(e.cfg.Rings) == 1 {
		return 0
	}
	e.mu.RLock()
	pin, ok := e.shardPin[gid]
	e.mu.RUnlock()
	if ok {
		return pin
	}
	return ShardFor(gid, len(e.cfg.Rings))
}

// ringFor returns the totem ring carrying the group's traffic.
func (e *Engine) ringFor(gid uint64) *totem.Ring {
	return e.cfg.Rings[e.shardOf(gid)]
}

// syncRetryLoop re-requests state transfer for replicas stuck syncing —
// the expected sender may have vanished in membership churn.
func (e *Engine) syncRetryLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.SyncRetryInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case <-ticker.C:
		}
		e.mu.Lock()
		reps := make(map[uint64]*replica, len(e.hosted))
		for gid, r := range e.hosted {
			reps[gid] = r
		}
		e.mu.Unlock()
		stuck := make(map[uint64]uint64)
		for gid, r := range reps {
			if st := r.status(); st.Syncing {
				stuck[gid] = st.LastExec
			}
		}
		for gid, lastExec := range stuck {
			if payload := e.encodeOrReport(&msgStateReq{GroupID: gid, From: e.cfg.Node, LastExec: lastExec}); payload != nil {
				_ = e.ringFor(gid).Multicast(invGroupName(gid), payload)
			}
		}
	}
}

// Stop shuts the engine down (the ring is left running for its owner to
// stop).
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	reps := make([]*replica, 0, len(e.hosted))
	for _, r := range e.hosted {
		reps = append(reps, r)
	}
	pend := e.pending
	e.pending = make(map[opKey]*pendingCall)
	e.mu.Unlock()
	close(e.stopCh)
	for _, r := range reps {
		r.q.close()
	}
	for _, p := range pend {
		close(p.ch)
	}
	e.wg.Wait()
}

// Node returns the engine's node name.
func (e *Engine) Node() string { return e.cfg.Node }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Executions:        e.stat.executions.Load(),
		DupInvocations:    e.stat.dupInvocations.Load(),
		SuppressedReplies: e.stat.suppressedReplies.Load(),
		DupReplies:        e.stat.dupReplies.Load(),
		Replays:           e.stat.replays.Load(),
		Fulfillments:      e.stat.fulfillments.Load(),
		Checkpoints:       e.stat.checkpoints.Load(),
		StateTransfers:    e.stat.stateTransfers.Load(),
		Retries:           e.stat.retries.Load(),
		LfReads:           e.stat.lfReads.Load(),
		LfRedirects:       e.stat.lfRedirects.Load(),
		LfTakeovers:       e.stat.lfTakeovers.Load(),
		LfLeases:          e.stat.lfLeases.Load(),
		HealNudges:        e.stat.healNudges.Load(),
	}
}

// HostReplica places a replica of the group on this node. initial must be
// true only when the group is being created (all initial replicas start
// with identical zero state before any traffic); later additions pass
// false and are brought up to date by state transfer from an existing
// member.
func (e *Engine) HostReplica(def GroupDef, servant orb.Servant, initial bool) error {
	def.fill()
	r := newReplica(e, def, servant, !initial, e.cfg.LogFactory(def))
	if err := e.addHosted(def, r); err != nil {
		return err
	}
	return e.startHosting(def, r)
}

// HostReplicaFromLog hosts a replica whose state is first recovered from a
// write-ahead log — the crash-restart rejoin path. The servant is rebuilt by
// ReplayLog (checkpoint + logged updates), the replica's duplicate table is
// seeded with the replayed operations, and the member then rejoins the group
// marked syncing: a surviving member answers with a checkpoint, and the
// adoptState freshness guard keeps the recovered state when the offered
// snapshot is older. If *all* members crashed and restart from logs, the
// msgStateReq/selfPromote path elects the senior recovered state.
func (e *Engine) HostReplicaFromLog(def GroupDef, servant orb.Servant, log wal.Log) error {
	def.fill()
	lastMsgID, replayed, err := ReplayLog(def, log, servant)
	if err != nil {
		return err
	}
	r := newReplica(e, def, servant, true, log)
	r.lastExec = lastMsgID
	// The replayed log's newest update is also the logged horizon: a stale
	// duplicate checkpoint offered during rejoin must not compact past it.
	r.lastLogged = lastMsgID
	if def.Style.IsLeaderFollower() {
		// LF record ids carry the leader sequence in the low bits; resume
		// the session-token horizon (and promotion numbering) from it.
		r.lfApplied = lastMsgID & lfSeqMask
	}
	for _, k := range replayed {
		r.dedup[k] = &opRecord{deliveredInv: true, answered: true, executedLocal: true}
		r.dedupFIFO = append(r.dedupFIFO, k)
	}
	if err := e.addHosted(def, r); err != nil {
		return err
	}
	return e.startHosting(def, r)
}

// HostRecoveredReplica hosts a group restored from a shipped
// disaster-recovery snapshot — the standby-promotion path. The servant
// already carries the recovered state (core.Standby staged it from the
// store); covered lists the operations that state includes. The replica
// starts operational (not syncing) with lastExec 0: message ids from the
// source domain's ring lineage don't compare against this domain's, so
// exactly-once for shipped-covered operations rests entirely on the seeded
// duplicate table — covered operations are marked delivered, answered, and
// executed, and a client retransmission into the new domain can neither
// re-execute nor re-answer them (like crash-restart rejoin, the original
// reply bodies stayed with the dead domain, so such retries time out
// rather than double-execute).
func (e *Engine) HostRecoveredReplica(def GroupDef, servant orb.Servant, state []byte, covered []drstore.OpRef) error {
	def.fill()
	r := newReplica(e, def, servant, false, e.cfg.LogFactory(def))
	for _, ref := range covered {
		k := opKey{ClientID: ref.ClientID, ParentSeq: ref.ParentSeq, OpSeq: ref.OpSeq}
		r.dedup[k] = &opRecord{deliveredInv: true, answered: true, executedLocal: true}
		r.dedupFIFO = append(r.dedupFIFO, k)
	}
	if len(state) > 0 {
		// Anchor the new local log so a crash of the promoted replica
		// recovers to the shipped state, not to zero.
		_ = r.log.Append(wal.Record{Kind: wal.KindCheckpoint, MsgID: 0, Data: state})
	}
	if err := e.addHosted(def, r); err != nil {
		return err
	}
	return e.startHosting(def, r)
}

// LogLen reports the number of live records in a hosted replica's
// write-ahead log (ok=false when the group is not hosted here) — the
// observable the compaction-bound tests assert on.
func (e *Engine) LogLen(gid uint64) (int, bool) {
	r := e.replicaFor(gid)
	if r == nil {
		return 0, false
	}
	return r.log.Len(), true
}

func (e *Engine) addHosted(def GroupDef, r *replica) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return ErrEngineStopped
	}
	if _, ok := e.hosted[def.ID]; ok {
		return fmt.Errorf("%w: %d", ErrAlreadyHosted, def.ID)
	}
	e.hosted[def.ID] = r
	return nil
}

func (e *Engine) startHosting(def GroupDef, r *replica) error {
	if def.Shard > 0 {
		e.PinShard(def.ID, def.Shard-1)
	}
	// Ship the group definition at hosting time (every member, idempotent):
	// a group that never sees traffic must still be re-hostable from the
	// store after a domain-wide outage.
	if e.cfg.DR != nil {
		_ = e.cfg.DR.PutMeta(drstore.Meta{
			GroupID:              def.ID,
			Name:                 def.Name,
			TypeID:               def.TypeID,
			Style:                uint8(def.Style),
			CheckpointEvery:      def.CheckpointEvery,
			CheckpointEveryBytes: def.CheckpointEveryBytes,
			Shard:                def.Shard,
		})
	}
	ring := e.ringFor(def.ID)
	if err := ring.JoinGroup(invGroupName(def.ID)); err != nil {
		return fmt.Errorf("replication: join group: %w", err)
	}
	if err := ring.JoinGroup(repGroupName(def.ID)); err != nil {
		return fmt.Errorf("replication: join reply group: %w", err)
	}
	e.mu.Lock()
	e.replyJoined[def.ID] = true
	e.mu.Unlock()

	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		r.executorLoop()
	}()
	return nil
}

// RemoveReplica withdraws this node's replica of the group.
func (e *Engine) RemoveReplica(gid uint64) {
	e.mu.Lock()
	r, ok := e.hosted[gid]
	if ok {
		delete(e.hosted, gid)
	}
	e.mu.Unlock()
	if !ok {
		return
	}
	r.q.close()
	_ = e.ringFor(gid).LeaveGroup(invGroupName(gid))
	// Stay in the reply group: this node may still act as a client.
}

// GroupStatus reports a hosted replica's view (tests and tools).
type GroupStatus struct {
	Members   []string
	Primary   string
	Secondary bool // in a secondary partition component
	Syncing   bool // awaiting state transfer
	LastExec  uint64
}

// GroupStatus returns the replica's status, or false if not hosted here.
func (e *Engine) GroupStatus(gid uint64) (GroupStatus, bool) {
	e.mu.RLock()
	r, ok := e.hosted[gid]
	e.mu.RUnlock()
	if !ok {
		return GroupStatus{}, false
	}
	return r.status(), true
}

func (e *Engine) replicaFor(gid uint64) *replica {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.hosted[gid]
}

func (e *Engine) ensureReplyJoined(gid uint64) {
	e.mu.RLock()
	joined := e.replyJoined[gid]
	e.mu.RUnlock()
	if joined {
		return
	}
	e.mu.Lock()
	joined = e.replyJoined[gid]
	if !joined {
		e.replyJoined[gid] = true
	}
	stopped := e.stopped
	e.mu.Unlock()
	if !joined && !stopped {
		_ = e.ringFor(gid).JoinGroup(repGroupName(gid))
	}
}

// runRing is the per-shard delivery loop: it demultiplexes one ring's
// totally ordered event stream to hosted replicas and pending client calls.
// It must never block on servant execution — that happens in per-replica
// executor goroutines. With R shards, R of these loops run concurrently;
// per-group order is safe because a group's traffic arrives on exactly one
// ring and its replica executes from a single FIFO taskQueue.
func (e *Engine) runRing(ring *totem.Ring, shard int) {
	defer e.wg.Done()
	for {
		var ev totem.Event
		var ok bool
		// Fast path: poll the event stream without the two-way selectgo —
		// under multicast load events arrive in bursts, and the engine loop
		// is on the delivery hot path of every invocation and reply.
		select {
		case ev, ok = <-ring.Events():
			if !ok {
				return
			}
		default:
			select {
			case <-e.stopCh:
				return
			case ev, ok = <-ring.Events():
				if !ok {
					return
				}
			}
		}
		switch v := ev.(type) {
		case totem.Deliver:
			e.onDeliver(v)
		case totem.GroupView:
			e.onGroupView(v)
		case totem.ViewChange:
			// All shards share one fate domain (a node crash silences every
			// ring it runs), so shard 0 alone feeds node-level fault
			// reports — R near-simultaneous ViewChanges would otherwise
			// push R duplicate crash reports per dead node.
			if shard == 0 {
				e.onRingView(v)
			}
		}
	}
}

func (e *Engine) onDeliver(d totem.Deliver) {
	m, err := decodeWire(d.Payload)
	if err != nil {
		return // foreign traffic on our groups: drop
	}
	switch v := m.(type) {
	case *msgInvocation:
		if r := e.replicaFor(v.GroupID); r != nil {
			r.q.push(taskInvoke{msgID: d.MsgID, m: v})
		}
	case *msgReply:
		e.completeCall(v)
		if r := e.replicaFor(v.GroupID); r != nil {
			r.markAnswered(v)
			r.q.push(taskReply{msgID: d.MsgID, m: v})
		}
	case *msgCheckpoint:
		if r := e.replicaFor(v.GroupID); r != nil {
			r.q.push(taskCheckpoint{msgID: d.MsgID, m: v})
		}
	case *msgStateReq:
		if r := e.replicaFor(v.GroupID); r != nil {
			r.q.push(taskStateReq{m: v})
		}
	case *msgLfOrder:
		if r := e.replicaFor(v.GroupID); r != nil {
			r.q.push(taskLfOrder{msgID: d.MsgID, m: v})
		}
	case *msgLfLease:
		if r := e.replicaFor(v.GroupID); r != nil {
			r.q.push(taskLfLease{m: v})
		}
	}
}

func (e *Engine) onGroupView(gv totem.GroupView) {
	e.mu.RLock()
	var target *replica
	for gid, r := range e.hosted {
		if gv.Group == invGroupName(gid) {
			target = r
			break
		}
	}
	e.mu.RUnlock()
	if target != nil {
		target.q.push(taskView{members: gv.Members, epoch: gv.Ring.Epoch})
	}
}

// onRingView reports node-level faults derived from ring membership.
func (e *Engine) onRingView(vc totem.ViewChange) {
	e.mu.Lock()
	old := e.ringMembers
	e.ringMembers = append([]string(nil), vc.Members...)
	notifier := e.cfg.Notifier
	e.mu.Unlock()
	if notifier == nil {
		return
	}
	cur := make(map[string]bool, len(vc.Members))
	for _, m := range vc.Members {
		cur[m] = true
	}
	for _, m := range old {
		if !cur[m] {
			notifier.Push(fault.Report{Kind: fault.NodeCrash, Node: m, Member: m})
		}
	}
}

// completeCall routes a reply to the waiting client call, applying majority
// voting when requested.
func (e *Engine) completeCall(m *msgReply) {
	e.mu.Lock()
	p, ok := e.pending[m.Key]
	if !ok {
		e.mu.Unlock()
		e.stat.dupReplies.Add(1)
		return
	}
	if _, seen := p.votes[m.Node]; seen {
		e.mu.Unlock()
		e.stat.dupReplies.Add(1)
		return
	}
	p.votes[m.Node] = m
	if len(p.votes) < p.votesNeeded {
		e.mu.Unlock()
		return
	}
	delete(e.pending, m.Key)
	winner := m
	if p.votesNeeded > 1 {
		winner = majorityReply(p.votes)
	}
	e.mu.Unlock()
	p.ch <- winner
}

// majorityReply picks the most common (status, body) outcome among votes.
// Only called when more than one vote was collected; the single-vote styles
// take the reply directly and skip the signature hashing.
func majorityReply(votes map[string]*msgReply) *msgReply {
	type bucket struct {
		rep   *msgReply
		count int
	}
	buckets := make(map[string]*bucket, len(votes))
	var best *bucket
	for _, v := range votes {
		sig := fmt.Sprintf("%d|%x", v.Status, v.Body)
		b, ok := buckets[sig]
		if !ok {
			b = &bucket{rep: v}
			buckets[sig] = b
		}
		b.count++
		if best == nil || b.count > best.count {
			best = b
		}
	}
	return best.rep
}

func (e *Engine) registerCall(key opKey, votes int) (*pendingCall, error) {
	if votes < 1 {
		votes = 1
	}
	p := &pendingCall{
		votesNeeded: votes,
		votes:       make(map[string]*msgReply, votes),
		ch:          make(chan *msgReply, 1),
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return nil, ErrEngineStopped
	}
	e.pending[key] = p
	return p, nil
}

func (e *Engine) unregisterCall(key opKey) {
	e.mu.Lock()
	delete(e.pending, key)
	e.mu.Unlock()
}

func (e *Engine) nextRootSeq() uint64 {
	return e.rootSeq.Add(1)
}

// encodeOrReport marshals a wire message, reporting (rather than panicking
// on) the impossible-by-construction unknown-type error. Callers drop the
// message on nil.
func (e *Engine) encodeOrReport(m any) []byte {
	b, err := encodeWire(m)
	if err != nil {
		if e.cfg.Notifier != nil {
			e.cfg.Notifier.Push(fault.Report{
				Kind:   fault.InvariantViolation,
				Node:   e.cfg.Node,
				Detail: err.Error(),
			})
		}
		return nil
	}
	return b
}
