package chaos

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/replication"
)

// seedsPerStyle reads CHAOS_SEEDS (default 2 for the quick tier-1 run; CI
// and `make chaos` raise it for the full sweep).
func seedsPerStyle() int {
	if v := os.Getenv("CHAOS_SEEDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 2
}

// TestChaosSweep runs seeded fault schedules against every replication
// style and checks the full invariant suite after each: virtual-synchrony
// order consistency, exactly-once accounting, state convergence, WAL
// recovery consistency, and goroutine-leak freedom.
func TestChaosSweep(t *testing.T) {
	styles := []replication.Style{
		replication.Active,
		replication.WarmPassive,
		replication.ColdPassive,
	}
	seeds := seedsPerStyle()
	for _, style := range styles {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			style, seed := style, seed
			// Sequential on purpose: the goroutine-leak check compares
			// against a per-harness baseline of the whole process.
			t.Run(fmt.Sprintf("%s/seed%d", style, seed), func(t *testing.T) {
				h := New(t, Options{Style: style, Seed: seed})
				s := Generate(h.Rng, h.Nodes, 4)
				s.Seed = seed
				t.Logf("schedule %s", s.Describe())
				h.Run(s)
				h.CheckGoroutines()
			})
		}
	}
}

// TestChaosDRSweep runs seeded schedules that include the whole-domain
// failover episode: every replica fail-stops at once, a warm standby over
// the shared DR store promotes the group with zero acknowledged operations
// lost and exactly-once preserved, and the primaries then restart from
// their WALs and must still pass the full invariant suite (the finale's
// convergence and WAL-replay checks prove the detour through the standby
// corrupted nothing). Only the passive styles run here: they persist WALs,
// so the primary domain can resurrect with its acknowledged state. An
// active group keeps no local log by design — after a whole-domain outage
// the promoted standby IS the recovery, which TestStandbyPromotion covers.
func TestChaosDRSweep(t *testing.T) {
	styles := []replication.Style{
		replication.WarmPassive,
		replication.ColdPassive,
	}
	seeds := seedsPerStyle()
	for _, style := range styles {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			style, seed := style, seed
			t.Run(fmt.Sprintf("%s/seed%d", style, seed), func(t *testing.T) {
				h := New(t, Options{Style: style, Seed: seed, DR: true, CheckpointEvery: 4})
				s := GenerateDR(h.Rng, h.Nodes, 1, 4)
				// Guarantee at least one disaster per schedule: the random
				// draw may not have picked it.
				s.Episodes = append(s.Episodes, Episode{Kind: EpDomainFailover, Victim: h.Nodes[0], Invokes: 3})
				s.Seed = seed
				t.Logf("schedule %s", s.Describe())
				h.Run(s)
				h.CheckGoroutines()
			})
		}
	}
}

// TestChaosSweepSharded is the sweep over a two-shard transport pool: every
// node runs two rings, the group hash-routes onto one of them, and the
// episode space includes shard-partition faults that sever a single ring of
// the pool. The invariant suite is unchanged — per-shard total order, exactly
// once, convergence, WAL recovery, and no leaked goroutines from pool
// teardown.
func TestChaosSweepSharded(t *testing.T) {
	styles := []replication.Style{
		replication.Active,
		replication.WarmPassive,
		replication.ColdPassive,
	}
	const shards = 2
	seeds := seedsPerStyle()
	for _, style := range styles {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			style, seed := style, seed
			t.Run(fmt.Sprintf("%s/seed%d", style, seed), func(t *testing.T) {
				h := New(t, Options{Style: style, Seed: seed, Shards: shards})
				s := GenerateSharded(h.Rng, h.Nodes, shards, 4)
				s.Seed = seed
				t.Logf("schedule %s", s.Describe())
				h.Run(s)
				h.CheckGoroutines()
			})
		}
	}
}
