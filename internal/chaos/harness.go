package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/drstore"
	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/replication"
	"repro/internal/totem"
	"repro/internal/wal"
)

const ringPort = 4000

// Options parameterizes a harness.
type Options struct {
	// Style is the group's replication style.
	Style replication.Style
	// Seed derives the fabric's randomness and the schedule generator.
	Seed int64
	// Replicas is the number of replica nodes (default 3). One extra
	// never-faulted node hosts the client.
	Replicas int
	// FileLogs backs every replica's WAL with a file in a test temp dir
	// (crash-restart recovery then survives process state loss); default is
	// one persistent in-memory log per node.
	FileLogs bool
	// CheckpointEvery overrides the group's checkpoint period.
	CheckpointEvery int
	// NoCoalesceOn lists nodes whose rings run with coalescing disabled
	// (mixed-ring fault tests).
	NoCoalesceOn []string
	// Shards is the number of transport rings per node (default 1). The
	// group hash-routes onto one of them; the others run alongside so pool
	// lifecycle (crash, restart, teardown) is exercised under faults.
	Shards int
	// DR attaches a shared in-memory disaster-recovery store that every
	// replica engine ships into, enabling the EpDomainFailover episode
	// (whole-domain outage + warm-standby promotion). Schedules containing
	// that episode must come from GenerateDR.
	DR bool
}

// ObsMsg is one recorded delivery: enough to check virtual-synchrony order
// consistency without retaining payloads.
type ObsMsg struct {
	MsgID  uint64
	Ring   totem.RingID
	Seq    uint64
	Hash   uint64
	Sender string
}

// Recorder captures one shard of one node incarnation's complete delivery
// sequence via the totem Observer hook. Shards record separately because
// ring ids are only unique within a shard: two shards of the same pool can
// both be on "epoch 3 at n1" while carrying unrelated sequence spaces.
type Recorder struct {
	Node  string
	Inc   int
	Shard int

	mu   sync.Mutex
	msgs []ObsMsg
}

func (r *Recorder) observe(d totem.Deliver) {
	h := fnv.New64a()
	h.Write(d.Payload)
	r.mu.Lock()
	r.msgs = append(r.msgs, ObsMsg{
		MsgID:  d.MsgID,
		Ring:   d.Ring,
		Seq:    d.Seq,
		Hash:   h.Sum64(),
		Sender: d.Sender,
	})
	r.mu.Unlock()
}

// Msgs returns a snapshot of the recorded sequence.
func (r *Recorder) Msgs() []ObsMsg {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]ObsMsg(nil), r.msgs...)
}

// Harness wires one replicated group (plus a client node) onto a simulated
// fabric and exposes fault-injection and invariant-checking operations.
type Harness struct {
	tb     testing.TB
	opts   Options
	Rng    *rand.Rand
	Fabric *netsim.Fabric
	Faults *fault.Notifier
	Nodes  []string // replica nodes
	Client string   // client node; never faulted
	Def    replication.GroupDef

	// store is the shared DR shipping target (nil unless Options.DR). It
	// is an interface field assigned only when enabled, so engines see a
	// true nil when disabled.
	store drstore.Store

	mu        sync.Mutex
	rings     map[string][]*totem.Ring
	engines   map[string]*replication.Engine
	servants  map[string]*Account
	logs      map[string]wal.Log
	incarn    map[string]int
	down      map[string]bool
	recorders []*Recorder

	proxy      *replication.Proxy
	ackedSum   int64
	ackedCount int64

	logDir        string
	baseGoroutine int
	closed        bool
}

// New builds and starts a harness: fabric, rings, engines, hosted group,
// client proxy.
func New(tb testing.TB, opts Options) *Harness {
	tb.Helper()
	if opts.Replicas <= 0 {
		opts.Replicas = 3
	}
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	h := &Harness{
		tb:            tb,
		opts:          opts,
		Rng:           rand.New(rand.NewSource(opts.Seed)),
		Faults:        &fault.Notifier{},
		Client:        "client",
		incarn:        make(map[string]int),
		down:          make(map[string]bool),
		rings:         make(map[string][]*totem.Ring),
		engines:       make(map[string]*replication.Engine),
		servants:      make(map[string]*Account),
		logs:          make(map[string]wal.Log),
		baseGoroutine: runtime.NumGoroutine(),
	}
	for i := 0; i < opts.Replicas; i++ {
		h.Nodes = append(h.Nodes, fmt.Sprintf("n%d", i+1))
	}
	if opts.FileLogs {
		h.logDir = tb.TempDir()
	}
	if opts.DR {
		h.store = drstore.NewMemStore()
	}
	h.Fabric = netsim.NewFabric(netsim.Config{
		Latency: 50 * time.Microsecond,
		Jitter:  100 * time.Microsecond,
		Seed:    opts.Seed,
	})
	for _, n := range append(append([]string(nil), h.Nodes...), h.Client) {
		h.Fabric.AddNode(n)
	}
	h.Def = replication.GroupDef{
		ID:              1,
		Name:            "chaos-acct",
		TypeID:          "IDL:repro/ChaosAccount:1.0",
		Style:           opts.Style,
		CheckpointEvery: opts.CheckpointEvery,
	}
	var popts []replication.ProxyOption
	if opts.Style.IsLeaderFollower() {
		h.Def.ReadOnlyOps = []string{"get"}
		popts = append(popts, replication.WithLFFastPath("get"))
	}
	for _, n := range h.Nodes {
		h.startNode(n, false)
	}
	h.startNode(h.Client, false)
	h.proxy = h.engines[h.Client].Proxy(replication.GroupRef{ID: h.Def.ID}, popts...)
	h.WaitMembers(h.Nodes)
	tb.Cleanup(h.Close)
	return h
}

// logFor returns the node's persistent WAL, creating it on first use. File
// logs are reopened per incarnation (recovery from disk); memory logs are
// one shared instance per node (recovery from the retained record slice).
func (h *Harness) logFor(node string) wal.Log {
	if h.logDir != "" {
		l, err := wal.OpenFileLog(filepath.Join(h.logDir, node+".wal"))
		if err != nil {
			h.tb.Fatalf("open file log for %s: %v", node, err)
		}
		h.mu.Lock()
		h.logs[node] = l
		h.mu.Unlock()
		return l
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	l, ok := h.logs[node]
	if !ok {
		l = &wal.MemLog{}
		h.logs[node] = l
	}
	return l
}

// openLogForRead returns a node's WAL for a read-only replay check without
// disturbing the live instance: file logs are opened as a separate handle
// (released by the returned func), memory logs are shared and safe.
func (h *Harness) openLogForRead(node string) (wal.Log, func()) {
	if h.logDir != "" {
		l, err := wal.OpenFileLog(filepath.Join(h.logDir, node+".wal"))
		if err != nil {
			h.tb.Fatalf("open file log for %s: %v", node, err)
		}
		return l, func() { _ = l.Close() }
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.logs[node], func() {}
}

func (h *Harness) noCoalesce(node string) bool {
	for _, n := range h.opts.NoCoalesceOn {
		if n == node {
			return true
		}
	}
	return false
}

// startNode boots one node: ring + engine, and (for replica nodes) a hosted
// servant — fresh for the initial boot, recovered from the node's WAL on
// restart.
func (h *Harness) startNode(node string, fromLog bool) {
	h.tb.Helper()
	h.mu.Lock()
	h.incarn[node]++
	inc := h.incarn[node]
	h.mu.Unlock()

	universe := append(append([]string(nil), h.Nodes...), h.Client)
	rings := make([]*totem.Ring, 0, h.opts.Shards)
	for shard := 0; shard < h.opts.Shards; shard++ {
		rec := &Recorder{Node: node, Inc: inc, Shard: shard}
		h.mu.Lock()
		h.recorders = append(h.recorders, rec)
		h.mu.Unlock()
		ring, err := totem.NewRing(h.Fabric, totem.Config{
			Node:              node,
			Universe:          universe,
			Port:              totem.ShardPort(ringPort, shard),
			HeartbeatInterval: 4 * time.Millisecond,
			StrictInvariants:  true,
			Faults:            h.Faults,
			Observer:          rec.observe,
			NoCoalesce:        h.noCoalesce(node),
		})
		if err != nil {
			totem.StopPool(rings)
			h.tb.Fatalf("ring %s shard %d: %v", node, shard, err)
		}
		ring.Start()
		rings = append(rings, ring)
	}
	eng, err := replication.NewEngine(replication.Config{
		Node:              node,
		Rings:             rings,
		Notifier:          h.Faults,
		CallTimeout:       10 * time.Second,
		RetryInterval:     120 * time.Millisecond,
		SyncRetryInterval: 50 * time.Millisecond,
		LogFactory:        func(replication.GroupDef) wal.Log { return h.logFor(node) },
		DR:                h.store,
	})
	if err != nil {
		h.tb.Fatalf("engine %s: %v", node, err)
	}
	eng.Start()

	h.mu.Lock()
	h.rings[node] = rings
	h.engines[node] = eng
	h.down[node] = false
	h.mu.Unlock()

	if node == h.Client {
		return
	}
	acct := &Account{}
	if fromLog {
		err = eng.HostReplicaFromLog(h.Def, acct, h.logFor(node))
	} else {
		err = eng.HostReplica(h.Def, acct, true)
	}
	if err != nil {
		h.tb.Fatalf("host on %s: %v", node, err)
	}
	h.mu.Lock()
	h.servants[node] = acct
	h.mu.Unlock()
}

// Invoke performs one acknowledged "add" through the client proxy and
// accounts for it. Any error is a harness failure: schedules are designed to
// keep a functioning majority at all times.
func (h *Harness) Invoke(amount int32) {
	h.tb.Helper()
	if _, err := h.proxy.Invoke("add", cdr.Long(amount)); err != nil {
		h.tb.Fatalf("seed %d: invoke failed under schedule: %v", h.opts.Seed, err)
	}
	h.mu.Lock()
	h.ackedSum += int64(amount)
	h.ackedCount++
	h.mu.Unlock()
}

// burst issues n acknowledged writes back to back with no pacing — used
// to leave a leader-follower order stream in flight when a fault hits.
func (h *Harness) burst(n int) {
	h.tb.Helper()
	for i := 0; i < n; i++ {
		h.Invoke(1)
	}
}

// Get performs one read through the client proxy and checks
// read-your-writes: the returned balance must equal the acknowledged sum.
// For LEADER_FOLLOWER groups the read may be served from a leased replica,
// which must never lag the session's own acknowledged writes.
func (h *Harness) Get() {
	h.tb.Helper()
	out, err := h.proxy.Invoke("get")
	if err != nil {
		h.tb.Fatalf("seed %d: read failed under schedule: %v", h.opts.Seed, err)
	}
	h.mu.Lock()
	want := h.ackedSum
	h.mu.Unlock()
	if got := out[0].AsLongLong(); got != want {
		h.tb.Fatalf("seed %d: stale read: balance %d, acked sum %d", h.opts.Seed, got, want)
	}
}

// Leader returns the group's current leader/primary as seen from a live
// replica.
func (h *Harness) Leader() string {
	h.tb.Helper()
	return h.authoritative()
}

// Acked returns the sum and count of acknowledged operations.
func (h *Harness) Acked() (sum, count int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ackedSum, h.ackedCount
}

// Crash fails a replica node: its fabric links sever and its local stack
// stops (the process is gone). The node's WAL survives for Restart.
func (h *Harness) Crash(node string) {
	h.tb.Helper()
	h.mu.Lock()
	if h.down[node] {
		h.mu.Unlock()
		return
	}
	h.down[node] = true
	rings, eng := h.rings[node], h.engines[node]
	h.mu.Unlock()
	h.Fabric.CrashNode(node)
	eng.Stop()
	totem.StopPool(rings)
	if l, ok := h.logs[node]; ok && h.logDir != "" {
		_ = l.Close() // file handle dies with the "process"
	}
}

// Restart boots a crashed replica node with a fresh servant recovered from
// its write-ahead log.
func (h *Harness) Restart(node string) {
	h.tb.Helper()
	h.mu.Lock()
	if !h.down[node] {
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	h.Fabric.RestartNode(node)
	h.startNode(node, true)
}

// DownNodes lists currently crashed replica nodes.
func (h *Harness) DownNodes() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for _, n := range h.Nodes {
		if h.down[n] {
			out = append(out, n)
		}
	}
	return out
}

// LiveReplicas lists replica nodes that are currently up.
func (h *Harness) LiveReplicas() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for _, n := range h.Nodes {
		if !h.down[n] {
			out = append(out, n)
		}
	}
	return out
}

// Store returns the shared DR store (nil unless Options.DR).
func (h *Harness) Store() drstore.Store { return h.store }

// Engine returns the node's current engine.
func (h *Harness) Engine(node string) *replication.Engine {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.engines[node]
}

// Servant returns the node's current servant instance.
func (h *Harness) Servant(node string) *Account {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.servants[node]
}

// Recorders snapshots all per-incarnation delivery recorders.
func (h *Harness) Recorders() []*Recorder {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*Recorder(nil), h.recorders...)
}

// WaitMembers blocks until every listed node's replica reports exactly that
// membership and is done syncing.
func (h *Harness) WaitMembers(on []string) {
	h.tb.Helper()
	want := append([]string(nil), on...)
	sortStrings(want)
	h.waitFor(15*time.Second, fmt.Sprintf("membership %v", want), func() bool {
		for _, node := range on {
			st, ok := h.Engine(node).GroupStatus(h.Def.ID)
			if !ok || st.Syncing || !equalStrings(st.Members, want) {
				return false
			}
		}
		return true
	})
}

// waitFor polls cond until it holds or the deadline passes.
func (h *Harness) waitFor(d time.Duration, what string, cond func() bool) {
	h.tb.Helper()
	if h.poll(d, cond) {
		return
	}
	h.tb.Fatalf("seed %d: timeout waiting for %s", h.opts.Seed, what)
}

// poll is waitFor without the fatal: callers that can report richer
// diagnostics check the result themselves.
func (h *Harness) poll(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// Close stops every live node's engine and ring. Idempotent; registered as
// a test cleanup.
func (h *Harness) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	var engines []*replication.Engine
	var rings []*totem.Ring
	for n, isDown := range h.down {
		if isDown {
			continue
		}
		engines = append(engines, h.engines[n])
		rings = append(rings, h.rings[n]...)
	}
	h.mu.Unlock()
	for _, e := range engines {
		e.Stop()
	}
	totem.StopPool(rings)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
