package chaos

import (
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/replication"
)

// TestMeasureFaultTimings measures the fault-tolerance latency
// distributions reported in EXPERIMENTS.md (E5–E8): fault-detection time
// (crash to fault report at a survivor), failover time (primary crash to
// the first successfully acknowledged invocation), and recovery time
// (restart to full membership with state synchronized). Gated behind
// CHAOS_MEASURE because it is a measurement run, not a correctness test.
func TestMeasureFaultTimings(t *testing.T) {
	if os.Getenv("CHAOS_MEASURE") == "" {
		t.Skip("set CHAOS_MEASURE=1 to run timing measurements")
	}
	const trials = 10
	for _, style := range []replication.Style{replication.Active, replication.WarmPassive, replication.ColdPassive} {
		style := style
		t.Run(style.String(), func(t *testing.T) {
			var detect, failover, rejoin []time.Duration
			for i := 0; i < trials; i++ {
				h := New(t, Options{Style: style, Seed: int64(100 + i)})
				h.drive(2)

				// Crash the primary — the worst case for failover.
				victim := h.authoritative()
				ch, cancel := h.Faults.Subscribe(func(r fault.Report) bool {
					return (r.Kind == fault.NodeCrash || r.Kind == fault.ObjectCrash) && r.Node == victim
				})
				t0 := time.Now()
				h.Crash(victim)
				select {
				case <-ch:
					detect = append(detect, time.Since(t0))
				case <-time.After(10 * time.Second):
					t.Fatalf("trial %d: crash of %s never reported", i, victim)
				}
				cancel()

				tf := time.Now()
				h.Invoke(1) // blocks (with retransmission) until a new primary answers
				failover = append(failover, time.Since(tf))
				h.WaitMembers(h.LiveReplicas())

				tr := time.Now()
				h.Restart(victim)
				h.WaitMembers(h.Nodes)
				rejoin = append(rejoin, time.Since(tr))

				h.drive(1)
				h.CheckAll()
				h.Close()
			}
			reportDist(t, "detection (crash -> fault report)", detect)
			reportDist(t, "failover (crash -> next acked invoke)", failover)
			reportDist(t, "recovery (restart -> synced membership)", rejoin)
		})
	}
}

func reportDist(t *testing.T, what string, ds []time.Duration) {
	t.Helper()
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(ds)-1))
		return ds[idx]
	}
	t.Logf("%-40s n=%d min=%v p50=%v p90=%v max=%v",
		what, len(ds), ds[0], pct(0.5), pct(0.9), ds[len(ds)-1])
}
