// Package chaos is a deterministic, seeded fault-injection harness for the
// whole replication stack: it drives a netsim fabric through declarative
// fault schedules — crashes and restarts, partitions and heals, loss bursts,
// delay spikes, slow nodes, and protocol-targeted packet drops — while
// client traffic flows, and afterwards checks stack-wide invariants: virtual
// synchrony order consistency across every ring member, exactly-once
// accounting of acknowledged operations, state convergence, write-ahead-log
// crash-recovery consistency, and goroutine-leak freedom.
//
// Everything is derived from one seed, so a failing schedule replays
// exactly.
package chaos

import (
	"errors"
	"sync"

	"repro/internal/cdr"
	"repro/internal/orb"
)

// Account is the chaos workload servant: a balance plus an operation count.
// It is Checkpointable but deliberately not Updatable, so warm-passive
// primaries fall back to full-snapshot updates (the harness exercises the
// snapshot path; delta updates are covered by the replication unit tests).
type Account struct {
	mu      sync.Mutex
	balance int64
	ops     int64
}

// RepoID names the servant type.
func (a *Account) RepoID() string { return "IDL:repro/ChaosAccount:1.0" }

// Dispatch executes one operation.
func (a *Account) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch inv.Operation {
	case "add":
		a.ops++
		a.balance += int64(inv.Args[0].AsLong())
		return []cdr.Value{cdr.LongLong(a.balance)}, nil
	case "get":
		return []cdr.Value{cdr.LongLong(a.balance), cdr.LongLong(a.ops)}, nil
	default:
		return nil, errors.New("chaos: bad op")
	}
}

// GetState snapshots the account (orb.Checkpointable).
func (a *Account) GetState() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(a.balance)
	e.WriteLongLong(a.ops)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

// SetState installs a snapshot (orb.Checkpointable).
func (a *Account) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	bal, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	ops, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.balance, a.ops = bal, ops
	a.mu.Unlock()
	return nil
}

// Snapshot returns (balance, ops) atomically.
func (a *Account) Snapshot() (int64, int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance, a.ops
}
