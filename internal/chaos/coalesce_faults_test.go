package chaos

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/replication"
	"repro/internal/totem"
)

// TestBatchFrameDrop drops entire coalesced dataBatch frames on the wire —
// every message in the frame vanishes at once — and verifies per-seq
// retransmission recovers them: all members converge and deliver
// identically, and no acked operation is lost or doubled.
func TestBatchFrameDrop(t *testing.T) {
	h := New(t, Options{Style: replication.Active, Seed: 11})
	var dropped atomic.Int64
	h.Fabric.SetDropFilter(func(from, to string, port uint16, payload []byte) bool {
		if totem.Classify(payload) == totem.ClassDataBatch && dropped.Load() < 8 {
			dropped.Add(1)
			return true
		}
		return false
	})
	h.drive(6)
	h.Fabric.SetDropFilter(nil)
	h.drive(3)
	if dropped.Load() == 0 {
		t.Fatal("no dataBatch frames observed on the wire; coalescing inactive?")
	}
	h.CheckAll()
	h.CheckGoroutines()
}

// TestTokenHolderCrash kills the token at its holder: a drop filter eats
// the next token the victim sends (so the token dies in its hands), then
// the victim crash-stops. The survivors must reform the ring, recover every
// ordered-but-undelivered message, and keep serving; the victim then
// rejoins and converges.
func TestTokenHolderCrash(t *testing.T) {
	h := New(t, Options{Style: replication.Active, Seed: 12})
	victim := h.Nodes[1]
	holding := make(chan struct{})
	var fired atomic.Bool
	h.Fabric.SetDropFilter(func(from, to string, port uint16, payload []byte) bool {
		if from == victim && totem.Classify(payload) == totem.ClassToken {
			if fired.CompareAndSwap(false, true) {
				close(holding)
			}
			return true // the victim holds the token; it never leaves
		}
		return false
	})
	h.Invoke(1)
	select {
	case <-holding:
	case <-time.After(10 * time.Second):
		t.Fatal("victim never held the token")
	}
	h.Crash(victim)
	h.Fabric.SetDropFilter(nil)
	h.WaitMembers(h.LiveReplicas())
	h.drive(4)
	h.Restart(victim)
	h.WaitMembers(h.Nodes)
	h.drive(3)
	h.CheckAll()
	h.CheckGoroutines()
}

// TestMixedNoCoalescePartition partitions a ring whose members disagree on
// coalescing (one node ships bare data packets, the rest batch frames) and
// heals it: the mixed encodings must interoperate through EVS recovery with
// identical delivery everywhere.
func TestMixedNoCoalescePartition(t *testing.T) {
	h := New(t, Options{Style: replication.Active, Seed: 13, NoCoalesceOn: []string{"n2"}})
	victim := h.Nodes[2]
	rest := []string{h.Client}
	for _, n := range h.Nodes {
		if n != victim {
			rest = append(rest, n)
		}
	}
	h.drive(2)
	h.Fabric.Partition(rest, []string{victim})
	h.WaitMembers(h.LiveMajority(victim))
	h.drive(4)
	h.Fabric.Heal()
	h.WaitMembers(h.Nodes)
	h.drive(3)
	h.CheckAll()
	h.CheckGoroutines()
}
