package chaos

import (
	"testing"

	"repro/internal/replication"
)

// TestFileLogCrashRestart exercises durable crash-restart recovery: a
// FileLog-backed replica fail-stops (its in-memory state is gone; only the
// on-disk WAL survives), operations continue on the survivors, and the
// restarted incarnation recovers from wal.Recover + rejoin. Its state must
// match the survivors exactly — no acked operation lost or doubled — and
// replaying any member's log must reproduce the acked state.
func TestFileLogCrashRestart(t *testing.T) {
	for _, style := range []replication.Style{replication.WarmPassive, replication.ColdPassive} {
		style := style
		t.Run(style.String(), func(t *testing.T) {
			h := New(t, Options{Style: style, Seed: 21, FileLogs: true, CheckpointEvery: 4})
			h.drive(6) // spans a checkpoint, so recovery replays checkpoint + tail

			// Crash the current primary: the worst case — failover AND the
			// restarted node recovering from disk.
			primary := h.authoritative()
			h.Crash(primary)
			h.WaitMembers(h.LiveReplicas())
			h.drive(5)

			h.Restart(primary)
			h.WaitMembers(h.Nodes)
			h.drive(3)

			h.CheckAll()
			h.CheckGoroutines()
		})
	}
}
