package chaos

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/replication"
	"repro/internal/totem"
)

// CheckAll runs every post-schedule invariant: virtual-synchrony order
// consistency, exactly-once accounting with state convergence, and (for
// passive styles) WAL crash-recovery consistency. Goroutine-leak checking
// needs the harness closed first, so it runs separately (CheckGoroutines).
func (h *Harness) CheckAll() {
	h.tb.Helper()
	h.CheckDeliveryInvariants()
	h.CheckConvergence()
	h.CheckWALConsistency()
	if n := h.Faults.Dropped(); n != 0 {
		h.tb.Fatalf("seed %d: fault notifier dropped %d reports (a subscriber fell behind its buffer)",
			h.opts.Seed, n)
	}
}

// CheckDeliveryInvariants verifies virtual-synchrony ordering over the
// complete delivery histories of every node incarnation:
//
//	V1: MsgIDs are strictly increasing at each incarnation.
//	V2: within one ring, each incarnation's sequence numbers are strictly
//	    increasing (the ring's own contiguity assert guarantees density).
//	V3: a (ring, seq) slot carries the same payload (hash) and sender at
//	    every incarnation that delivers it — no divergence, anywhere, ever.
func (h *Harness) CheckDeliveryInvariants() {
	h.tb.Helper()
	type slot struct {
		shard int // ring ids are only unique within one shard of the pool
		ring  totem.RingID
		seq   uint64
	}
	type content struct {
		hash   uint64
		sender string
		owner  string
	}
	seen := make(map[slot]content)
	for _, rec := range h.Recorders() {
		who := fmt.Sprintf("%s#%d/s%d", rec.Node, rec.Inc, rec.Shard)
		msgs := rec.Msgs()
		lastSeq := make(map[totem.RingID]uint64)
		for k, m := range msgs {
			if k > 0 && m.MsgID <= msgs[k-1].MsgID {
				h.tb.Fatalf("seed %d: %s: MsgID not strictly increasing at %d (%d after %d)",
					h.opts.Seed, who, k, m.MsgID, msgs[k-1].MsgID)
			}
			if last, ok := lastSeq[m.Ring]; ok && m.Seq <= last {
				h.tb.Fatalf("seed %d: %s: ring %v seq not increasing (%d after %d)",
					h.opts.Seed, who, m.Ring, m.Seq, last)
			}
			lastSeq[m.Ring] = m.Seq
			k2 := slot{shard: rec.Shard, ring: m.Ring, seq: m.Seq}
			if prev, ok := seen[k2]; ok {
				if prev.hash != m.Hash || prev.sender != m.Sender {
					h.tb.Fatalf("seed %d: ring %v seq %d diverges between %s and %s",
						h.opts.Seed, m.Ring, m.Seq, prev.owner, who)
				}
			} else {
				seen[k2] = content{hash: m.Hash, sender: m.Sender, owner: who}
			}
		}
	}
}

// authoritative returns the node whose servant holds the authoritative
// state: the group's current primary (first member of the converged view).
func (h *Harness) authoritative() string {
	h.tb.Helper()
	live := h.LiveReplicas()
	if len(live) == 0 {
		h.tb.Fatalf("seed %d: no live replicas to check", h.opts.Seed)
	}
	st, ok := h.Engine(live[0]).GroupStatus(h.Def.ID)
	if !ok || st.Primary == "" {
		h.tb.Fatalf("seed %d: no primary visible from %s", h.opts.Seed, live[0])
	}
	return st.Primary
}

// CheckConvergence verifies exactly-once accounting and replica-state
// convergence: the authoritative state must equal exactly the acknowledged
// operations (none lost, none doubled), and every live replica that
// executes operations (active styles) or tracks the primary (warm passive)
// must converge to it. Cold-passive backups hold state only in their logs;
// CheckWALConsistency covers them.
func (h *Harness) CheckConvergence() {
	h.tb.Helper()
	wantSum, wantCount := h.Acked()
	primary := h.authoritative()

	if !h.poll(25*time.Second, func() bool {
		bal, ops := h.Servant(primary).Snapshot()
		return bal == wantSum && ops == wantCount
	}) {
		bal, ops := h.Servant(primary).Snapshot()
		h.tb.Fatalf("seed %d: exactly-once violated: primary %s has balance=%d ops=%d, acked sum=%d count=%d",
			h.opts.Seed, primary, bal, ops, wantSum, wantCount)
	}

	var track []string
	switch h.Def.Style {
	case replication.ColdPassive:
		track = []string{primary}
	default:
		track = h.LiveReplicas()
	}
	if !h.poll(25*time.Second, func() bool {
		for _, n := range track {
			bal, ops := h.Servant(n).Snapshot()
			if bal != wantSum || ops != wantCount {
				return false
			}
		}
		return true
	}) {
		for _, n := range track {
			bal, ops := h.Servant(n).Snapshot()
			h.tb.Logf("replica %s: balance=%d ops=%d", n, bal, ops)
		}
		h.tb.Fatalf("seed %d: replicas did not converge to acked sum=%d count=%d",
			h.opts.Seed, wantSum, wantCount)
	}
}

// CheckWALConsistency verifies crash-recovery consistency for passive
// styles: replaying each live member's write-ahead log into a fresh servant
// must reproduce the authoritative state exactly — so a crash at this
// instant, followed by recovery from the log, loses nothing.
func (h *Harness) CheckWALConsistency() {
	h.tb.Helper()
	// Leader-follower groups log like the passive primaries (the leader
	// appends before executing, followers at order application), so their
	// WALs must replay to the acked state too.
	if !h.Def.Style.IsPassive() && !h.Def.Style.IsLeaderFollower() {
		return
	}
	wantSum, wantCount := h.Acked()
	for _, n := range h.LiveReplicas() {
		n := n
		var lastBal, lastOps int64
		var lastErr error
		ok := h.poll(25*time.Second, func() bool {
			ghost := &Account{}
			log, release := h.openLogForRead(n)
			_, _, err := replication.ReplayLog(h.Def, log, ghost)
			release()
			if err != nil {
				lastErr = err
				return false
			}
			lastErr = nil
			lastBal, lastOps = ghost.Snapshot()
			return lastBal == wantSum && lastOps == wantCount
		})
		if !ok {
			h.tb.Fatalf("seed %d: WAL of %s replays to balance=%d ops=%d (err=%v), acked sum=%d count=%d",
				h.opts.Seed, n, lastBal, lastOps, lastErr, wantSum, wantCount)
		}
	}
}

// CheckGoroutines verifies the whole run leaked no goroutines: after Close,
// the count must return to (near) the pre-harness baseline. The small slack
// absorbs runtime-internal goroutines and netsim deliveries still draining.
func (h *Harness) CheckGoroutines() {
	h.tb.Helper()
	h.Close()
	deadline := time.Now().Add(10 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= h.baseGoroutine+4 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	buf = buf[:runtime.Stack(buf, true)]
	h.tb.Fatalf("seed %d: goroutine leak: %d running, baseline %d\n%s",
		h.opts.Seed, n, h.baseGoroutine, buf)
}
