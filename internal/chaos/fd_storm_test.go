package chaos

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/totem"
)

// The fd storm episode reproduces PR 6's failure mode in miniature and
// A/B-tests the detector against it: four ring members under a sustained
// multicast storm, one of which is repeatedly slowed (all its datagrams
// delayed, both directions) but never actually dies. The fixed-window
// detector reads the first long pause as a death and reforms the ring
// without the node — a false eviction, paid again on re-admission. The
// adaptive phi-accrual detector must instead suspect the node, hold it
// through the confirm grace, and retract when its heartbeats resume:
// zero evictions, with the suspect/recover lifecycle visible on the
// fault notifier and no report lost to subscriber overflow.

// fdStormPort keeps this episode's rings off the harness's ringPort.
const fdStormPort = 4400

type fdStormResult struct {
	evictions int    // full views on healthy nodes that excluded the slow node
	suspects  int64  // EventSuspect reports naming the slow node
	recovers  int64  // EventRecover reports naming the slow node
	dropped   uint64 // notifier reports lost to subscriber overflow
}

// fdStormRun drives the episode with the chosen detector and reports what
// the healthy members observed. Timing: heartbeat 4ms, fixed/floor window
// 24ms, confirm grace 90ms. The slow-node pulses delay the victim's
// traffic for 30ms (primes the adaptive estimator with one flap), then
// 3×55ms — long enough for the fixed window to evict and install a view
// (~24ms detect + 12ms settle + formation), comfortably short of the
// adaptive dead point (suspect at roughly the window, plus the 90ms
// dwell).
func fdStormRun(t *testing.T, fixed bool) fdStormResult {
	t.Helper()
	nodes := []string{"a", "b", "c", "d"}
	const victim = "d" // sorts last, so a healthy node always coordinates

	fabric := netsim.NewFabric(netsim.Config{
		Latency: 50 * time.Microsecond,
		Jitter:  100 * time.Microsecond,
		Seed:    23,
	})
	for _, n := range nodes {
		fabric.AddNode(n)
	}

	notifier := &fault.Notifier{}
	var suspects, recovers atomic.Int64
	repCh, cancelSub := notifier.Subscribe(nil)
	repDone := make(chan struct{})
	go func() {
		defer close(repDone)
		for r := range repCh {
			if r.Node != victim {
				continue
			}
			switch r.Event {
			case fault.EventSuspect:
				suspects.Add(1)
			case fault.EventRecover:
				recovers.Add(1)
			}
		}
	}()

	var evictions atomic.Int64
	rings := make([]*totem.Ring, 0, len(nodes))
	var evWG sync.WaitGroup
	for _, n := range nodes {
		ring, err := totem.NewRing(fabric, totem.Config{
			Node:              n,
			Universe:          nodes,
			Port:              fdStormPort,
			HeartbeatInterval: 4 * time.Millisecond,
			FailTimeout:       24 * time.Millisecond,
			MaxFailTimeout:    96 * time.Millisecond,
			ConfirmGrace:      90 * time.Millisecond,
			FixedFailDetect:   fixed,
			StrictInvariants:  true,
			Faults:            notifier,
		})
		if err != nil {
			t.Fatal(err)
		}
		rings = append(rings, ring)
		evWG.Add(1)
		// Drain every ring's events; on the healthy nodes, count views
		// that exclude the victim after a full view was installed (the
		// startup views grow toward full membership and must not count).
		go func(r *totem.Ring, healthy bool) {
			defer evWG.Done()
			sawFull := false
			for ev := range r.Events() {
				vc, ok := ev.(totem.ViewChange)
				if !ok {
					continue
				}
				hasVictim := false
				for _, m := range vc.Members {
					if m == victim {
						hasVictim = true
					}
				}
				switch {
				case len(vc.Members) == len(nodes) && hasVictim:
					sawFull = true
				case healthy && sawFull && !hasVictim:
					evictions.Add(1)
				}
			}
		}(ring, n != victim)
		ring.Start()
	}
	defer func() {
		for _, r := range rings {
			r.Stop()
		}
		evWG.Wait()
		cancelSub()
		<-repDone
	}()

	waitFullViews(t, rings, len(nodes))

	// Saturate the data plane for the whole episode: two producers
	// multicasting as fast as backpressure admits. The control-plane
	// priority lane is what keeps the heartbeats and tokens from queueing
	// behind this backlog.
	for _, r := range rings {
		if err := r.JoinGroup("storm"); err != nil {
			t.Fatal(err)
		}
	}
	stopStorm := make(chan struct{})
	var stormWG sync.WaitGroup
	payload := make([]byte, 256)
	for _, r := range rings[:2] {
		stormWG.Add(1)
		go func(r *totem.Ring) {
			defer stormWG.Done()
			for {
				select {
				case <-stopStorm:
					return
				default:
				}
				if err := r.Multicast("storm", payload); err != nil {
					return
				}
			}
		}(r)
	}

	for _, d := range []time.Duration{
		30 * time.Millisecond,
		55 * time.Millisecond,
		55 * time.Millisecond,
		55 * time.Millisecond,
	} {
		fabric.SetNodeDelay(victim, d)
		time.Sleep(d)
		fabric.SetNodeDelay(victim, 0)
		time.Sleep(150 * time.Millisecond) // recover, re-observe, re-widen
	}

	// Whatever the detector did, the ring must converge back to full
	// membership once the slow node's traffic flows normally again.
	waitFullViews(t, rings, len(nodes))
	close(stopStorm)
	stormWG.Wait()

	return fdStormResult{
		evictions: int(evictions.Load()),
		suspects:  suspects.Load(),
		recovers:  recovers.Load(),
		dropped:   notifier.Dropped(),
	}
}

// waitFullViews blocks until every ring reports a view with n members.
func waitFullViews(t *testing.T, rings []*totem.Ring, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		for _, r := range rings {
			if _, members := r.CurrentRing(); len(members) != n {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for _, r := range rings {
				_, m := r.CurrentRing()
				t.Logf("%s: view %v", r.Node(), m)
			}
			t.Fatal("rings never converged to the full view")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// The adaptive detector must hold a slowed-but-alive member through every
// pulse: suspicions raised and retracted, no view ever excluding it, and
// no fault report lost.
func TestFDStormAdaptiveHoldsSlowNode(t *testing.T) {
	res := fdStormRun(t, false)
	if res.evictions != 0 {
		t.Fatalf("adaptive detector evicted the slow-but-alive node %d time(s)", res.evictions)
	}
	if res.suspects == 0 {
		t.Fatal("no suspicion was ever raised for the slow node — the pulses did not bite")
	}
	if res.recovers == 0 {
		t.Fatal("suspicions raised but never retracted for the slow node")
	}
	if res.dropped != 0 {
		t.Fatalf("notifier dropped %d fault reports (subscriber overflow)", res.dropped)
	}
}

// The same episode with the legacy fixed window demonstrates the failure
// mode the adaptive detector removes: the pause reads as a death, the
// ring reforms without the node, and membership churns on re-admission.
func TestFDStormFixedWindowFlaps(t *testing.T) {
	res := fdStormRun(t, true)
	if res.evictions == 0 {
		t.Fatal("fixed-window detector never evicted the slow node — the episode lost its teeth")
	}
	if res.dropped != 0 {
		t.Fatalf("notifier dropped %d fault reports (subscriber overflow)", res.dropped)
	}
}
