package chaos

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/replication"
	"repro/internal/totem"
)

// EpisodeKind enumerates the fault episodes a schedule is built from.
type EpisodeKind int

// Episode kinds.
const (
	// EpCrashRestart crashes a replica, runs traffic without it, then
	// restarts it (recovery from its WAL) and runs more traffic.
	EpCrashRestart EpisodeKind = iota
	// EpPartitionHeal isolates one replica from the rest (the client stays
	// with the majority), runs traffic, then heals.
	EpPartitionHeal
	// EpLossBurst raises fabric-wide datagram loss while traffic flows.
	EpLossBurst
	// EpDelaySpike raises fabric latency/jitter while traffic flows.
	EpDelaySpike
	// EpSlowNode adds a per-node delay to one replica (a GC pause or an
	// overloaded host) while traffic flows.
	EpSlowNode
	// EpTokenDrop drops the next N totem token packets sent by one replica
	// — targeted protocol-state loss forcing token-retransmission or ring
	// reformation.
	EpTokenDrop
	// EpShardPartition severs exactly one shard's port at one replica (a
	// port-targeted drop filter): that ring reforms without the victim while
	// the node — and its other shards — stay up. Generated only for sharded
	// harnesses.
	EpShardPartition
	// EpDomainFailover fail-stops every replica at once (a whole-domain
	// disaster), promotes a warm standby over the harness's DR store,
	// verifies zero acknowledged operations were lost and exactly-once for
	// continued standby traffic, then discards the standby and restarts the
	// primary replicas from their WALs. Generated only by GenerateDR, for
	// harnesses with Options.DR.
	EpDomainFailover
	// EpLeaderCrashStream (LEADER_FOLLOWER groups) fires a rapid write
	// burst so the leader's asynchronous order stream to the followers is
	// still in flight, then crashes the leader: the senior follower must
	// take over with every acknowledged invocation preserved exactly once,
	// and serve reads immediately after promotion. The Victim field is
	// advisory — the actual victim is whoever leads at crash time.
	// Generated only by GenerateLF.
	EpLeaderCrashStream
	// EpLeaseExpiry (LEADER_FOLLOWER groups) isolates the leader so read
	// leases decay un-renewed while leased local reads race the expiry,
	// drives writes against the successor, then heals. Reads must never
	// return stale acknowledged state and never wedge. Generated only by
	// GenerateLF.
	EpLeaseExpiry

	episodeKinds        = 6 // kinds every harness generates
	shardedEpisodeKinds = 7 // adds EpShardPartition when Shards > 1
)

var episodeNames = map[EpisodeKind]string{
	EpCrashRestart:   "crash-restart",
	EpPartitionHeal:  "partition-heal",
	EpLossBurst:      "loss-burst",
	EpDelaySpike:     "delay-spike",
	EpSlowNode:       "slow-node",
	EpTokenDrop:      "token-drop",
	EpShardPartition: "shard-partition",
	EpDomainFailover: "domain-failover",

	EpLeaderCrashStream: "leader-crash-stream",
	EpLeaseExpiry:       "lease-expiry",
}

func (k EpisodeKind) String() string { return episodeNames[k] }

// Episode is one fault event plus the traffic driven under it.
type Episode struct {
	Kind    EpisodeKind
	Victim  string        // target replica (crash/partition/slow/token kinds)
	Loss    float64       // EpLossBurst
	Delay   time.Duration // EpDelaySpike / EpSlowNode
	Drops   int           // EpTokenDrop
	Shard   int           // EpShardPartition: which ring of the pool is severed
	Invokes int           // acknowledged operations driven during the episode
}

// Schedule is a deterministic fault-injection plan.
type Schedule struct {
	Seed     int64
	Episodes []Episode
}

// Generate derives a schedule from the rng: episodes in random order with
// random victims and intensities. Invariant by construction: at most one
// replica is faulty at a time, and the client always stays with a majority.
func Generate(rng *rand.Rand, replicas []string, episodes int) Schedule {
	return GenerateSharded(rng, replicas, 1, episodes)
}

// GenerateSharded is Generate for a pool of `shards` rings per node: with
// more than one shard the episode space grows by EpShardPartition, which
// targets a single ring of the pool.
func GenerateSharded(rng *rand.Rand, replicas []string, shards, episodes int) Schedule {
	kinds := make([]EpisodeKind, episodeKinds)
	for k := range kinds {
		kinds[k] = EpisodeKind(k)
	}
	if shards > 1 {
		kinds = append(kinds, EpShardPartition)
	}
	return GenerateFrom(rng, replicas, shards, episodes, kinds)
}

// GenerateDR is GenerateSharded with the whole-domain failover episode added
// to the draw; it requires a harness built with Options.DR. Generate and
// GenerateSharded never emit EpDomainFailover, so existing seeds replay
// byte-for-byte.
func GenerateDR(rng *rand.Rand, replicas []string, shards, episodes int) Schedule {
	kinds := make([]EpisodeKind, episodeKinds)
	for k := range kinds {
		kinds[k] = EpisodeKind(k)
	}
	if shards > 1 {
		kinds = append(kinds, EpShardPartition)
	}
	kinds = append(kinds, EpDomainFailover)
	return GenerateFrom(rng, replicas, shards, episodes, kinds)
}

// GenerateLF is GenerateSharded with the leader-follower episodes added
// to the draw — leader crash mid-order-stream and the lease-expiry race —
// for harnesses whose group style is LEADER_FOLLOWER. The base generators
// never emit these kinds, so existing seeds replay byte-for-byte.
func GenerateLF(rng *rand.Rand, replicas []string, shards, episodes int) Schedule {
	kinds := make([]EpisodeKind, episodeKinds)
	for k := range kinds {
		kinds[k] = EpisodeKind(k)
	}
	if shards > 1 {
		kinds = append(kinds, EpShardPartition)
	}
	kinds = append(kinds, EpLeaderCrashStream, EpLeaseExpiry)
	return GenerateFrom(rng, replicas, shards, episodes, kinds)
}

// GenerateFrom derives a schedule whose episodes draw only from the given
// kinds — the composition seam for harnesses (like internal/slo) that want
// a specific fault mix rather than the full sweep. Victims and intensities
// come from the rng exactly as in Generate, so a (seed, kinds) pair always
// yields the same schedule.
func GenerateFrom(rng *rand.Rand, replicas []string, shards, episodes int, kinds []EpisodeKind) Schedule {
	s := Schedule{}
	for i := 0; i < episodes; i++ {
		ep := Episode{
			Kind:    kinds[rng.Intn(len(kinds))],
			Victim:  replicas[rng.Intn(len(replicas))],
			Invokes: 2 + rng.Intn(3),
		}
		switch ep.Kind {
		case EpLossBurst:
			ep.Loss = 0.02 + 0.10*rng.Float64()
		case EpDelaySpike:
			ep.Delay = time.Duration(200+rng.Intn(1500)) * time.Microsecond
		case EpSlowNode:
			ep.Delay = time.Duration(1+rng.Intn(3)) * time.Millisecond
		case EpTokenDrop:
			ep.Drops = 2 + rng.Intn(6)
		case EpShardPartition:
			if shards > 1 {
				ep.Shard = rng.Intn(shards)
			}
		}
		s.Episodes = append(s.Episodes, ep)
	}
	return s
}

// Run executes the schedule: each episode applies its fault, drives
// acknowledged traffic under it, and clears it; the finale restores every
// node, drives final traffic, and runs the full invariant check.
func (h *Harness) Run(s Schedule) {
	h.tb.Helper()
	for i, ep := range s.Episodes {
		h.runEpisode(i, ep)
	}
	// Finale: heal everything, restart the dead, converge, check.
	h.Fabric.Heal()
	h.Fabric.SetLoss(0)
	h.Fabric.SetDropFilter(nil)
	h.Fabric.SetLatency(50*time.Microsecond, 100*time.Microsecond)
	for _, n := range h.DownNodes() {
		h.Restart(n)
	}
	h.WaitMembers(h.Nodes)
	for i := 0; i < 3; i++ {
		h.Invoke(1)
	}
	if h.Def.Style.IsLeaderFollower() {
		h.Get()
	}
	h.CheckAll()
}

func (h *Harness) runEpisode(i int, ep Episode) {
	h.tb.Helper()
	if t, ok := h.tb.(interface{ Logf(string, ...any) }); ok {
		t.Logf("episode %d: %s victim=%s", i, ep.Kind, ep.Victim)
	}
	switch ep.Kind {
	case EpCrashRestart:
		h.Crash(ep.Victim)
		h.WaitMembers(h.LiveReplicas())
		h.drive(ep.Invokes)
		h.Restart(ep.Victim)
		h.WaitMembers(h.Nodes)
		h.drive(ep.Invokes)
	case EpPartitionHeal:
		rest := []string{h.Client}
		for _, n := range h.Nodes {
			if n != ep.Victim {
				rest = append(rest, n)
			}
		}
		h.Fabric.Partition(rest, []string{ep.Victim})
		h.WaitMembers(h.LiveMajority(ep.Victim))
		h.drive(ep.Invokes)
		h.Fabric.Heal()
		h.WaitMembers(h.Nodes)
		h.drive(ep.Invokes)
	case EpLossBurst:
		h.Fabric.SetLoss(ep.Loss)
		h.drive(ep.Invokes)
		h.Fabric.SetLoss(0)
	case EpDelaySpike:
		h.Fabric.SetLatency(ep.Delay, ep.Delay/2)
		h.drive(ep.Invokes)
		h.Fabric.SetLatency(50*time.Microsecond, 100*time.Microsecond)
	case EpSlowNode:
		h.Fabric.SetNodeDelay(ep.Victim, ep.Delay)
		h.drive(ep.Invokes)
		h.Fabric.SetNodeDelay(ep.Victim, 0)
	case EpTokenDrop:
		var dropped atomic.Int64
		limit := int64(ep.Drops)
		h.Fabric.SetDropFilter(func(from, to string, port uint16, payload []byte) bool {
			if from == ep.Victim && totem.Classify(payload) == totem.ClassToken {
				if dropped.Add(1) <= limit {
					return true
				}
			}
			return false
		})
		h.drive(ep.Invokes)
		h.Fabric.SetDropFilter(nil)
	case EpShardPartition:
		port := totem.ShardPort(ringPort, ep.Shard)
		h.Fabric.SetDropFilter(func(from, to string, p uint16, payload []byte) bool {
			return p == port && (from == ep.Victim || to == ep.Victim)
		})
		if replication.ShardFor(h.Def.ID, h.opts.Shards) == ep.Shard {
			// The group's own shard lost the victim: wait for the survivor
			// ring to reform so the traffic below flows without retry stalls.
			h.WaitMembers(h.LiveMajority(ep.Victim))
		}
		h.drive(ep.Invokes)
		h.Fabric.SetDropFilter(nil)
		h.WaitMembers(h.Nodes)
		h.drive(ep.Invokes)
	case EpDomainFailover:
		h.runDomainFailover(ep)
	case EpLeaderCrashStream:
		leader := h.Leader()
		// Back-to-back writes leave the asynchronous order stream to the
		// followers in flight when the leader dies.
		h.burst(3 + h.Rng.Intn(4))
		h.Crash(leader)
		h.WaitMembers(h.LiveReplicas())
		// The successor must serve a read immediately after promotion and
		// hold every acknowledged write from the interrupted stream.
		h.Get()
		h.drive(ep.Invokes)
		h.Restart(leader)
		h.WaitMembers(h.Nodes)
		h.drive(ep.Invokes)
	case EpLeaseExpiry:
		leader := h.Leader()
		rest := []string{h.Client}
		for _, n := range h.Nodes {
			if n != leader {
				rest = append(rest, n)
			}
		}
		h.Fabric.Partition(rest, []string{leader})
		// Leased reads race the decaying lease: each must either serve
		// from a still-valid lease or take the ordered/redirect path —
		// never return stale acknowledged state, never wedge.
		for i := 0; i < 4; i++ {
			h.Get()
			time.Sleep(time.Duration(3+h.Rng.Intn(8)) * time.Millisecond)
		}
		h.WaitMembers(h.LiveMajority(leader))
		h.drive(ep.Invokes)
		h.Get()
		h.Fabric.Heal()
		h.WaitMembers(h.Nodes)
		h.drive(ep.Invokes)
	default:
		h.tb.Fatalf("unknown episode kind %d", ep.Kind)
	}
}

// LiveMajority is the replica set with one victim excluded (used while the
// victim is partitioned away but not crashed).
func (h *Harness) LiveMajority(excluded string) []string {
	var out []string
	for _, n := range h.LiveReplicas() {
		if n != excluded {
			out = append(out, n)
		}
	}
	return out
}

// drive issues n acknowledged operations with small deterministic pauses so
// traffic interleaves with the fault in progress.
func (h *Harness) drive(n int) {
	h.tb.Helper()
	for i := 0; i < n; i++ {
		h.Invoke(1)
		time.Sleep(time.Duration(1+h.Rng.Intn(4)) * time.Millisecond)
	}
}

// Describe renders the schedule for failure logs.
func (s Schedule) Describe() string {
	out := fmt.Sprintf("seed=%d:", s.Seed)
	for _, ep := range s.Episodes {
		out += fmt.Sprintf(" [%s %s]", ep.Kind, ep.Victim)
	}
	return out
}
