package chaos

import (
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/orb"
)

// runDomainFailover executes the disaster-recovery episode: every replica
// fail-stops at once, a warm standby built over the harness's shared DR
// store promotes the group, and the episode asserts the recovery point is
// exactly the acknowledged state (RPO 0 — every style ships before the
// client ack) and that exactly-once holds for traffic continued on the
// standby. The standby is then discarded and the primary replicas restart
// from their own WALs, so standby-side operations are deliberately kept out
// of the harness accounting: the resurrected primary domain never saw them.
func (h *Harness) runDomainFailover(ep Episode) {
	h.tb.Helper()
	if h.store == nil {
		h.tb.Fatalf("seed %d: EpDomainFailover requires Options.DR", h.opts.Seed)
	}
	h.drive(ep.Invokes)
	killSum, killCount := h.Acked()

	// Whole-domain outage. The client node survives (its ring carries the
	// epoch forward, so post-restart message ids stay monotone for the
	// store's staleness checks) but has nobody to invoke until the end.
	for _, n := range h.LiveReplicas() {
		h.Crash(n)
	}

	standby, err := core.NewStandby(core.StandbyOptions{
		Domain: core.Options{
			Nodes:     []string{"dr1"},
			Heartbeat: 4 * time.Millisecond,
		},
		Store: h.store,
		Factories: map[string]ftcorba.Factory{
			h.Def.TypeID: func() orb.Servant { return &Account{} },
		},
	})
	if err != nil {
		h.tb.Fatalf("seed %d: standby: %v", h.opts.Seed, err)
	}
	defer standby.Stop()
	if err := standby.Domain().WaitReady(10 * time.Second); err != nil {
		h.tb.Fatalf("seed %d: standby domain: %v", h.opts.Seed, err)
	}
	res, err := standby.Promote()
	if err != nil {
		h.tb.Fatalf("seed %d: promote: %v", h.opts.Seed, err)
	}
	if res.Groups[h.Def.ID] == "" {
		h.tb.Fatalf("seed %d: group %d not promoted (skipped: %v)", h.opts.Seed, h.Def.ID, res.Skipped)
	}
	if err := standby.WaitPromoted(res, 10*time.Second); err != nil {
		h.tb.Fatalf("seed %d: %v", h.opts.Seed, err)
	}

	p, err := standby.Proxy("dr1", h.Def.ID)
	if err != nil {
		h.tb.Fatalf("seed %d: standby proxy: %v", h.opts.Seed, err)
	}
	out, err := p.Invoke("get")
	if err != nil {
		h.tb.Fatalf("seed %d: standby get: %v", h.opts.Seed, err)
	}
	if got := out[0].AsLongLong(); got != killSum {
		h.tb.Fatalf("seed %d: RPO violation: standby balance = %d, acked at kill = %d", h.opts.Seed, got, killSum)
	}
	if got := out[1].AsLongLong(); got != killCount {
		h.tb.Fatalf("seed %d: standby ops = %d, acked count at kill = %d (lost or double-executed)", h.opts.Seed, got, killCount)
	}

	// Continued service with exactly-once: each add applies exactly once.
	for i := int64(1); i <= int64(ep.Invokes); i++ {
		out, err := p.Invoke("add", cdr.Long(1))
		if err != nil {
			h.tb.Fatalf("seed %d: standby add: %v", h.opts.Seed, err)
		}
		if got := out[0].AsLongLong(); got != killSum+i {
			h.tb.Fatalf("seed %d: exactly-once violation on standby: balance = %d, want %d", h.opts.Seed, got, killSum+i)
		}
	}
	standby.Stop()

	// Resurrect the primary domain from its WALs and resume the schedule.
	for _, n := range h.DownNodes() {
		h.Restart(n)
	}
	h.WaitMembers(h.Nodes)
	h.drive(ep.Invokes)
}
