package chaos

import (
	"fmt"
	"testing"

	"repro/internal/replication"
)

// TestChaosLFSweep runs seeded fault schedules against the LEADER_FOLLOWER
// style with the leader-specific episodes in the draw, and appends one of
// each so every run covers a leader crash mid-order-stream and a
// lease-expiry race regardless of the random mix. The full invariant suite
// runs after each schedule: virtual-synchrony order consistency,
// exactly-once accounting (no acked invocation lost across leader
// failover), state convergence, WAL replay, read-your-writes on every
// leased read, and goroutine-leak freedom.
func TestChaosLFSweep(t *testing.T) {
	seeds := seedsPerStyle()
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			h := New(t, Options{Style: replication.LeaderFollower, Seed: seed})
			s := GenerateLF(h.Rng, h.Nodes, 1, 3)
			// Guarantee coverage: the random draw may miss the LF kinds.
			s.Episodes = append(s.Episodes,
				Episode{Kind: EpLeaderCrashStream, Victim: h.Nodes[0], Invokes: 3},
				Episode{Kind: EpLeaseExpiry, Victim: h.Nodes[0], Invokes: 3},
			)
			s.Seed = seed
			t.Logf("schedule %s", s.Describe())
			h.Run(s)
			h.CheckGoroutines()
		})
	}
}
