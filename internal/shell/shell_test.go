package shell

import (
	"strings"
	"testing"
)

func newShell(t *testing.T) (*Shell, *strings.Builder) {
	t.Helper()
	var out strings.Builder
	sh, err := New([]string{"n1", "n2", "n3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sh.Close)
	return sh, &out
}

func run(t *testing.T, sh *Shell, line string) {
	t.Helper()
	if err := sh.Exec(line); err != nil {
		t.Fatalf("%q: %v", line, err)
	}
}

func TestCreatePutGet(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh, "create store active 2")
	run(t, sh, "put store answer 42")
	run(t, sh, "get store answer")
	run(t, sh, "keys store")
	run(t, sh, "del store answer")
	run(t, sh, "get store answer") // not found path
	s := out.String()
	for _, want := range []string{"created store", "42 [", "[answer]", "(not found)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestStatusAndGroups(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh, "create w warm 3")
	run(t, sh, "groups")
	run(t, sh, "status w")
	run(t, sh, "nodes")
	run(t, sh, "stats n1")
	s := out.String()
	for _, want := range []string{"WARM_PASSIVE", "primary", "backup", "executions="} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestCrashAndSurvive(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh, "create kv active 3")
	run(t, sh, "put kv k v")
	run(t, sh, "crash n1")
	run(t, sh, "get kv k")
	if !strings.Contains(out.String(), "v [") {
		t.Errorf("get after crash failed:\n%s", out.String())
	}
	run(t, sh, "nodes")
	if !strings.Contains(out.String(), "crashed") {
		t.Error("nodes did not report the crash")
	}
}

func TestPartitionHeal(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh, "create kv active 3")
	run(t, sh, "partition n1,n2|n3")
	run(t, sh, "heal")
	s := out.String()
	if !strings.Contains(s, "partitioned into") || !strings.Contains(s, "network healed") {
		t.Errorf("partition/heal output:\n%s", s)
	}
}

func TestErrors(t *testing.T) {
	sh, _ := newShell(t)
	for _, bad := range []string{
		"bogus",
		"create",
		"create x nope 2",
		"create x active zero",
		"get missing k",
		"crash ghost",
		"partition onlyone",
		"status nope",
		"stats ghost",
		"put kv k", // kv not created yet + wrong arity handled first
	} {
		if err := sh.Exec(bad); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", bad)
		}
	}
	// Duplicate create.
	run(t, sh, "create dup active 1")
	if err := sh.Exec("create dup active 1"); err == nil {
		t.Error("duplicate create must fail")
	}
}

func TestRunLoop(t *testing.T) {
	sh, out := newShell(t)
	script := strings.NewReader("help\ncreate s active 1\nput s a b\nget s a\nquit\n")
	sh.Run(script)
	if !strings.Contains(out.String(), "b [") {
		t.Errorf("scripted session failed:\n%s", out.String())
	}
}
