// Package shell implements the interactive FT-domain console behind
// cmd/ftsh: create replicated objects, invoke them, and inject faults from
// a command line — a hands-on harness for exploring the infrastructure.
package shell

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/orb"
	"repro/internal/replication"
)

// kvType is the repository id of the built-in replicated key/value store
// the shell creates objects from.
const kvType = "IDL:ftsh/KV:1.0"

// kvServant is a deterministic, checkpointable string map.
type kvServant struct {
	mu   sync.Mutex
	data map[string]string
}

func newKVServant() orb.Servant { return &kvServant{data: make(map[string]string)} }

func (s *kvServant) RepoID() string { return kvType }

func (s *kvServant) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch inv.Operation {
	case "put":
		s.data[inv.Args[0].AsString()] = inv.Args[1].AsString()
		return []cdr.Value{cdr.ULong(uint32(len(s.data)))}, nil
	case "get":
		v, ok := s.data[inv.Args[0].AsString()]
		if !ok {
			return nil, &orb.UserException{Name: "IDL:ftsh/NotFound:1.0"}
		}
		return []cdr.Value{cdr.Str(v)}, nil
	case "del":
		delete(s.data, inv.Args[0].AsString())
		return []cdr.Value{cdr.ULong(uint32(len(s.data)))}, nil
	case "keys":
		keys := make([]string, 0, len(s.data))
		for k := range s.data {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		vals := make([]cdr.Value, len(keys))
		for i, k := range keys {
			vals[i] = cdr.Str(k)
		}
		return []cdr.Value{cdr.Seq(vals...)}, nil
	}
	return nil, &orb.UserException{Name: "IDL:ftsh/BadOp:1.0"}
}

func (s *kvServant) GetState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteULong(uint32(len(keys)))
	for _, k := range keys {
		e.WriteString(k)
		e.WriteString(s.data[k])
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (s *kvServant) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	n, err := d.ReadULong()
	if err != nil {
		return err
	}
	data := make(map[string]string, n)
	for i := uint32(0); i < n; i++ {
		k, err := d.ReadString()
		if err != nil {
			return err
		}
		v, err := d.ReadString()
		if err != nil {
			return err
		}
		data[k] = v
	}
	s.mu.Lock()
	s.data = data
	s.mu.Unlock()
	return nil
}

// Shell is one console session bound to a domain.
type Shell struct {
	domain *core.Domain
	out    io.Writer
	groups map[string]uint64 // name -> gid
}

// New creates a shell over a freshly built domain with the given nodes.
func New(nodes []string, out io.Writer) (*Shell, error) {
	d, err := core.NewDomain(core.Options{Nodes: nodes, Heartbeat: 5 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	if err := d.WaitReady(10 * time.Second); err != nil {
		d.Stop()
		return nil, err
	}
	if err := d.RegisterFactory(kvType, newKVServant); err != nil {
		d.Stop()
		return nil, err
	}
	return &Shell{domain: d, out: out, groups: make(map[string]uint64)}, nil
}

// Close stops the underlying domain.
func (s *Shell) Close() { s.domain.Stop() }

// Run reads commands until EOF or "quit".
func (s *Shell) Run(in io.Reader) {
	scanner := bufio.NewScanner(in)
	for {
		fmt.Fprint(s.out, "ftsh> ")
		if !scanner.Scan() {
			fmt.Fprintln(s.out)
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := s.Exec(line); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	}
}

// Exec runs one command line.
func (s *Shell) Exec(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		s.help()
		return nil
	case "nodes":
		return s.cmdNodes()
	case "create":
		return s.cmdCreate(args)
	case "groups":
		return s.cmdGroups()
	case "status":
		return s.cmdStatus(args)
	case "put", "get", "del", "keys":
		return s.cmdKV(cmd, args)
	case "crash":
		return s.cmdCrash(args)
	case "partition":
		return s.cmdPartition(args)
	case "heal":
		s.domain.Heal()
		fmt.Fprintln(s.out, "network healed")
		return nil
	case "stats":
		return s.cmdStats(args)
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (s *Shell) help() {
	fmt.Fprint(s.out, `commands:
  nodes                                list domain nodes
  create <name> <style> <replicas>    create a replicated KV object
                                       style: active | voting | warm | cold
  groups                              list created objects
  status <name>                       replica status of an object
  put <name> <key> <value>            write through the group
  get <name> <key>                    read through the group
  del <name> <key>                    delete a key
  keys <name>                         list keys
  crash <node>                        fail-stop a node
  partition <a,b|c,d>                 split the network into components
  heal                                remove all partitions
  stats <node>                        replication engine counters
  quit                                exit
`)
}

func (s *Shell) cmdNodes() error {
	for _, n := range s.domain.Nodes() {
		state := "up"
		if s.domain.Node(n) == nil {
			state = "crashed"
		}
		fmt.Fprintf(s.out, "  %-12s %s\n", n, state)
	}
	return nil
}

func parseStyle(name string) (replication.Style, error) {
	switch name {
	case "active":
		return replication.Active, nil
	case "voting":
		return replication.ActiveWithVoting, nil
	case "warm":
		return replication.WarmPassive, nil
	case "cold":
		return replication.ColdPassive, nil
	case "leader":
		return replication.LeaderFollower, nil
	default:
		return 0, fmt.Errorf("unknown style %q (active|voting|warm|cold|leader)", name)
	}
}

func (s *Shell) cmdCreate(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: create <name> <style> <replicas>")
	}
	name := args[0]
	if _, exists := s.groups[name]; exists {
		return fmt.Errorf("object %q already exists", name)
	}
	style, err := parseStyle(args[1])
	if err != nil {
		return err
	}
	replicas, err := strconv.Atoi(args[2])
	if err != nil || replicas < 1 {
		return fmt.Errorf("bad replica count %q", args[2])
	}
	props := &ftcorba.Properties{
		ReplicationStyle:      style,
		InitialNumberReplicas: replicas,
	}
	if style.IsLeaderFollower() {
		// Declared reads are served replica-locally under the leader
		// lease instead of entering the ordered stream.
		props.ReadOnlyOps = []string{"get", "keys"}
	}
	_, gid, err := s.domain.Create(name, kvType, props)
	if err != nil {
		return err
	}
	if err := s.domain.WaitGroupReady(gid, replicas, 10*time.Second); err != nil {
		return err
	}
	s.groups[name] = gid
	members, _ := s.domain.RM.Members(gid)
	fmt.Fprintf(s.out, "created %s (group %d, %s) on %v\n", name, gid, style, members)
	return nil
}

func (s *Shell) cmdGroups() error {
	names := make([]string, 0, len(s.groups))
	for n := range s.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		gid := s.groups[n]
		members, err := s.domain.RM.Members(gid)
		if err != nil {
			continue
		}
		p, _ := s.domain.RM.PropertiesOf(gid)
		fmt.Fprintf(s.out, "  %-12s group %-3d %-14s members %v\n", n, gid, p.ReplicationStyle, members)
	}
	return nil
}

func (s *Shell) lookup(name string) (uint64, error) {
	gid, ok := s.groups[name]
	if !ok {
		return 0, fmt.Errorf("no object %q (see groups)", name)
	}
	return gid, nil
}

// clientNode picks a live node to issue invocations from.
func (s *Shell) clientNode() (string, error) {
	for _, n := range s.domain.Nodes() {
		if s.domain.Node(n) != nil {
			return n, nil
		}
	}
	return "", fmt.Errorf("no live nodes")
}

func (s *Shell) cmdStatus(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: status <name>")
	}
	gid, err := s.lookup(args[0])
	if err != nil {
		return err
	}
	members, err := s.domain.RM.Members(gid)
	if err != nil {
		return err
	}
	for _, m := range members {
		node := s.domain.Node(m)
		if node == nil {
			fmt.Fprintf(s.out, "  %-12s crashed\n", m)
			continue
		}
		st, ok := node.Engine.GroupStatus(gid)
		if !ok {
			fmt.Fprintf(s.out, "  %-12s not hosting\n", m)
			continue
		}
		role := "backup"
		if st.Primary == m {
			role = "primary"
		}
		flags := ""
		if st.Secondary {
			flags += " [secondary-component]"
		}
		if st.Syncing {
			flags += " [syncing]"
		}
		fmt.Fprintf(s.out, "  %-12s %-8s view %v%s\n", m, role, st.Members, flags)
	}
	return nil
}

func (s *Shell) cmdKV(op string, args []string) error {
	want := map[string]int{"put": 3, "get": 2, "del": 2, "keys": 1}[op]
	if len(args) != want {
		return fmt.Errorf("usage: %s <name>%s", op, map[string]string{
			"put": " <key> <value>", "get": " <key>", "del": " <key>", "keys": "",
		}[op])
	}
	gid, err := s.lookup(args[0])
	if err != nil {
		return err
	}
	from, err := s.clientNode()
	if err != nil {
		return err
	}
	proxy, err := s.domain.Proxy(from, gid)
	if err != nil {
		return err
	}
	start := time.Now()
	var out []cdr.Value
	switch op {
	case "put":
		out, err = proxy.Invoke("put", cdr.Str(args[1]), cdr.Str(args[2]))
	case "get":
		out, err = proxy.Invoke("get", cdr.Str(args[1]))
	case "del":
		out, err = proxy.Invoke("del", cdr.Str(args[1]))
	case "keys":
		out, err = proxy.Invoke("keys")
	}
	elapsed := time.Since(start).Round(time.Microsecond)
	if err != nil {
		var uexc *orb.UserException
		if ok := asUserExc(err, &uexc); ok && uexc.Name == "IDL:ftsh/NotFound:1.0" {
			fmt.Fprintf(s.out, "(not found) [%v]\n", elapsed)
			return nil
		}
		return err
	}
	switch op {
	case "put", "del":
		fmt.Fprintf(s.out, "ok, %d key(s) [%v]\n", out[0].AsULong(), elapsed)
	case "get":
		fmt.Fprintf(s.out, "%s [%v]\n", out[0].AsString(), elapsed)
	case "keys":
		seq := out[0].AsSeq()
		names := make([]string, len(seq))
		for i, v := range seq {
			names[i] = v.AsString()
		}
		fmt.Fprintf(s.out, "%v [%v]\n", names, elapsed)
	}
	return nil
}

func asUserExc(err error, target **orb.UserException) bool {
	u, ok := err.(*orb.UserException)
	if ok {
		*target = u
	}
	return ok
}

func (s *Shell) cmdCrash(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: crash <node>")
	}
	if s.domain.Node(args[0]) == nil {
		return fmt.Errorf("node %q is not up", args[0])
	}
	s.domain.CrashNode(args[0])
	fmt.Fprintf(s.out, "%s crashed\n", args[0])
	return nil
}

func (s *Shell) cmdPartition(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: partition a,b|c,d")
	}
	var groups [][]string
	for _, comp := range strings.Split(args[0], "|") {
		var nodes []string
		for _, n := range strings.Split(comp, ",") {
			n = strings.TrimSpace(n)
			if n != "" {
				nodes = append(nodes, n)
			}
		}
		if len(nodes) > 0 {
			groups = append(groups, nodes)
		}
	}
	if len(groups) < 2 {
		return fmt.Errorf("need at least two components, e.g. partition n1,n2|n3")
	}
	s.domain.Partition(groups...)
	fmt.Fprintf(s.out, "partitioned into %v\n", groups)
	return nil
}

func (s *Shell) cmdStats(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: stats <node>")
	}
	node := s.domain.Node(args[0])
	if node == nil {
		return fmt.Errorf("node %q is not up", args[0])
	}
	st := node.Engine.Stats()
	fmt.Fprintf(s.out, "  executions=%d dupInvocations=%d suppressedReplies=%d dupReplies=%d\n",
		st.Executions, st.DupInvocations, st.SuppressedReplies, st.DupReplies)
	fmt.Fprintf(s.out, "  replays=%d fulfillments=%d checkpoints=%d stateTransfers=%d retries=%d\n",
		st.Replays, st.Fulfillments, st.Checkpoints, st.StateTransfers, st.Retries)
	return nil
}
