package ftcorba_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/orb"
	"repro/internal/replication"
)

// TestChurnMemberReplacement drives ReplicationManager-managed member
// replacement through repeated crash/recruit/restart churn: each round
// fail-stops the group's senior member, waits for the manager to recruit a
// spare (with state transfer), verifies exactly-once continuity of the
// replicated counter through the transition, and then restarts the crashed
// node so it re-registers and rejoins the spare pool for later rounds.
func TestChurnMemberReplacement(t *testing.T) {
	for _, style := range []replication.Style{replication.Active, replication.WarmPassive} {
		style := style
		t.Run(style.String(), func(t *testing.T) {
			d, err := core.NewDomain(core.Options{
				Nodes:     []string{"n1", "n2", "n3", "n4", "client"},
				Heartbeat: 4 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(d.Stop)
			if err := d.WaitReady(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			// The client node has no factory, so the manager never
			// recruits it and the proxy's host survives every round.
			err = d.RegisterFactory(tallyType, func() orb.Servant { return &tally{} }, "n1", "n2", "n3", "n4")
			if err != nil {
				t.Fatal(err)
			}

			_, gid, err := d.Create("churn", tallyType, &ftcorba.Properties{
				ReplicationStyle:      style,
				InitialNumberReplicas: 2,
				MinimumNumberReplicas: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.WaitGroupReady(gid, 2, 5*time.Second); err != nil {
				t.Fatal(err)
			}
			proxy, err := d.Proxy("client", gid)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := proxy.Invoke("bump"); err != nil {
				t.Fatal(err)
			}

			const rounds = 3
			for r := 0; r < rounds; r++ {
				members, err := d.RM.Members(gid)
				if err != nil {
					t.Fatal(err)
				}
				victim := members[0]
				t.Logf("round %d: crashing %s (members %v)", r, victim, members)
				d.CrashNode(victim)

				// The manager must notice the crash and recruit a spare.
				deadline := time.Now().Add(10 * time.Second)
				for {
					cur, _ := d.RM.Members(gid)
					if len(cur) >= 2 && !containsStr(cur, victim) {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("round %d: no recruitment after crash of %s: members=%v", r, victim, cur)
					}
					time.Sleep(5 * time.Millisecond)
				}
				if err := d.WaitGroupReady(gid, 2, 10*time.Second); err != nil {
					cur, _ := d.RM.Members(gid)
					for _, m := range cur {
						if n := d.Node(m); n != nil {
							st, hosted := n.Engine.GroupStatus(gid)
							t.Logf("member %s: hosted=%v status=%+v", m, hosted, st)
						} else {
							t.Logf("member %s: node not running", m)
						}
					}
					t.Fatalf("round %d: %v (members=%v)", r, err, cur)
				}

				// Exactly-once continuity across the replacement.
				out, err := proxy.Invoke("bump")
				if err != nil {
					t.Fatalf("round %d: bump: %v", r, err)
				}
				if got, want := out[0].AsLongLong(), int64(r+2); got != want {
					t.Fatalf("round %d: counter = %d, want %d (op lost or doubled in churn)", r, got, want)
				}

				// Bring the victim back; it re-registers and becomes a
				// spare candidate for the next round.
				if err := d.RestartNode(victim); err != nil {
					t.Fatalf("round %d: restart %s: %v", r, victim, err)
				}
			}

			if v, _ := d.RM.Version(gid); v < uint32(1+2*rounds) {
				t.Errorf("IOGR version = %d after %d churn rounds, want >= %d", v, rounds, 1+2*rounds)
			}
		})
	}
}
