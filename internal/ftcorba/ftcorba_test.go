package ftcorba_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/orb"
	"repro/internal/replication"
)

// tally is a minimal checkpointable servant counting invocations.
type tally struct {
	mu sync.Mutex
	n  int64
}

func (t *tally) RepoID() string { return "IDL:repro/Tally:1.0" }

func (t *tally) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch inv.Operation {
	case "bump":
		t.n++
		return []cdr.Value{cdr.LongLong(t.n)}, nil
	case "get":
		return []cdr.Value{cdr.LongLong(t.n)}, nil
	}
	return nil, &orb.UserException{Name: "IDL:repro/BadOp:1.0"}
}

func (t *tally) GetState() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(t.n)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (t *tally) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	n, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.n = n
	t.mu.Unlock()
	return nil
}

const tallyType = "IDL:repro/Tally:1.0"

func newDomain(t *testing.T, nodes ...string) *core.Domain {
	t.Helper()
	d, err := core.NewDomain(core.Options{
		Nodes:     nodes,
		Heartbeat: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterFactory(tallyType, func() orb.Servant { return &tally{} }); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCreateObjectGroup(t *testing.T) {
	d := newDomain(t, "n1", "n2", "n3", "n4")
	ref, gid, err := d.Create("tally", tallyType, &ftcorba.Properties{
		ReplicationStyle:      replication.Active,
		InitialNumberReplicas: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WaitGroupReady(gid, 3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if !ref.IsGroup() || len(ref.Profiles) != 3 {
		t.Fatalf("IOGR = %+v", ref)
	}
	g, err := ref.FTGroup()
	if err != nil || g.GroupID != gid || g.Version != 1 || g.FTDomainID != "ft-domain" {
		t.Fatalf("FTGroup = %+v, %v", g, err)
	}

	proxy, err := d.Proxy("n4", gid)
	if err != nil {
		t.Fatal(err)
	}
	out, err := proxy.Invoke("bump")
	if err != nil || out[0].AsLongLong() != 1 {
		t.Fatalf("bump via RM-created group: %v %v", out, err)
	}
}

func TestPropertiesDefaultsAndTypeOverrides(t *testing.T) {
	d := newDomain(t, "n1", "n2", "n3")
	d.RM.SetTypeProperties(tallyType, ftcorba.Properties{
		ReplicationStyle:      replication.WarmPassive,
		InitialNumberReplicas: 2,
	})
	_, gid, err := d.Create("typed", tallyType, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.RM.PropertiesOf(gid)
	if err != nil {
		t.Fatal(err)
	}
	if p.ReplicationStyle != replication.WarmPassive || p.InitialNumberReplicas != 2 {
		t.Errorf("props = %+v", p)
	}
	if p.MinimumNumberReplicas != 2 || p.CheckpointInterval != 16 {
		t.Errorf("defaults not filled: %+v", p)
	}
	if _, err := d.RM.PropertiesOf(999); !errors.Is(err, ftcorba.ErrUnknownGroup) {
		t.Errorf("unknown group: %v", err)
	}
}

func TestAddRemoveMember(t *testing.T) {
	d := newDomain(t, "n1", "n2", "n3")
	_, gid, err := d.Create("grow", tallyType, &ftcorba.Properties{InitialNumberReplicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WaitGroupReady(gid, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	proxy, _ := d.Proxy("n3", gid)
	for i := 0; i < 3; i++ {
		if _, err := proxy.Invoke("bump"); err != nil {
			t.Fatal(err)
		}
	}

	members, _ := d.RM.Members(gid)
	spare := ""
	for _, n := range []string{"n1", "n2", "n3"} {
		found := false
		for _, m := range members {
			if m == n {
				found = true
			}
		}
		if !found {
			spare = n
		}
	}
	ref, err := d.RM.AddMember(gid, spare)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Profiles) != 3 {
		t.Fatalf("IOGR after add has %d profiles", len(ref.Profiles))
	}
	if v, _ := d.RM.Version(gid); v != 2 {
		t.Errorf("version = %d, want 2", v)
	}
	if err := d.WaitGroupReady(gid, 3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// New member must answer with transferred state.
	out, err := proxy.Invoke("get")
	if err != nil || out[0].AsLongLong() != 3 {
		t.Fatalf("get after add: %v %v", out, err)
	}

	if _, err := d.RM.AddMember(gid, spare); !errors.Is(err, ftcorba.ErrMemberExists) {
		t.Errorf("duplicate add: %v", err)
	}
	if _, err := d.RM.RemoveMember(gid, spare); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.RM.Version(gid); v != 3 {
		t.Errorf("version after remove = %d", v)
	}
	if _, err := d.RM.RemoveMember(gid, spare); !errors.Is(err, ftcorba.ErrNoSuchMember) {
		t.Errorf("double remove: %v", err)
	}
}

func TestAutomaticRecovery(t *testing.T) {
	d := newDomain(t, "n1", "n2", "n3", "n4")
	_, gid, err := d.Create("heal", tallyType, &ftcorba.Properties{
		ReplicationStyle:      replication.Active,
		InitialNumberReplicas: 2,
		MinimumNumberReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WaitGroupReady(gid, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	members, _ := d.RM.Members(gid)
	clientNode := ""
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		hosted := false
		for _, m := range members {
			if m == n {
				hosted = true
			}
		}
		if !hosted {
			clientNode = n
			break
		}
	}
	proxy, _ := d.Proxy(clientNode, gid)
	if _, err := proxy.Invoke("bump"); err != nil {
		t.Fatal(err)
	}

	// Kill one member; the manager must recruit a spare automatically.
	victim := members[0]
	d.CrashNode(victim)
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, _ := d.RM.Members(gid)
		if len(cur) >= 2 && !containsStr(cur, victim) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic recovery: members=%v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// State must have survived into the recruited replica.
	out, err := proxy.Invoke("get")
	if err != nil || out[0].AsLongLong() != 1 {
		t.Fatalf("post-recovery state: %v %v", out, err)
	}
	if v, _ := d.RM.Version(gid); v < 3 {
		t.Errorf("IOGR version after crash+recovery = %d, want >= 3", v)
	}
}

func TestCreateErrors(t *testing.T) {
	d := newDomain(t, "n1", "n2")
	if _, _, err := d.Create("big", tallyType, &ftcorba.Properties{InitialNumberReplicas: 5}); !errors.Is(err, ftcorba.ErrNotEnoughNodes) {
		t.Errorf("too many replicas: %v", err)
	}
	if _, _, err := d.Create("x", "IDL:none:1.0", nil); !errors.Is(err, ftcorba.ErrNotEnoughNodes) {
		t.Errorf("no factory: %v", err)
	}
	if err := d.RM.RegisterFactory("ghost", tallyType, func() orb.Servant { return &tally{} }); !errors.Is(err, ftcorba.ErrUnknownNode) {
		t.Errorf("unknown node: %v", err)
	}
	if _, err := d.RM.AddMember(42, "n1"); !errors.Is(err, ftcorba.ErrUnknownGroup) {
		t.Errorf("unknown group: %v", err)
	}
	if _, err := d.RM.Members(42); !errors.Is(err, ftcorba.ErrUnknownGroup) {
		t.Errorf("unknown group members: %v", err)
	}
	if _, err := d.RM.Version(42); !errors.Is(err, ftcorba.ErrUnknownGroup) {
		t.Errorf("unknown group version: %v", err)
	}
}

func TestGroupIDs(t *testing.T) {
	d := newDomain(t, "n1", "n2")
	_, g1, err := d.Create("a", tallyType, &ftcorba.Properties{InitialNumberReplicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, g2, err := d.Create("b", tallyType, &ftcorba.Properties{InitialNumberReplicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	ids := d.RM.GroupIDs()
	if len(ids) != 2 || ids[0] != g1 || ids[1] != g2 {
		t.Errorf("GroupIDs = %v", ids)
	}
	if d.RM.Domain() != "ft-domain" {
		t.Errorf("Domain = %q", d.RM.Domain())
	}
}

func containsStr(set []string, s string) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}

// TestLeaderFollowerGroupEndToEnd creates a LEADER_FOLLOWER group through
// the Replication Manager with recorded read-only operations and verifies
// that Domain.Proxy wires the direct lane automatically: writes go through
// the leader, reads are served from replica-local state under leases, and
// failover preserves every acked write.
func TestLeaderFollowerGroupEndToEnd(t *testing.T) {
	d, err := core.NewDomain(core.Options{
		Nodes:     []string{"n1", "n2", "n3", "n4", "client"},
		Heartbeat: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// No factory on the client node, so the manager never places a replica
	// there and the proxy's host survives the leader crash below.
	err = d.RegisterFactory(tallyType, func() orb.Servant { return &tally{} }, "n1", "n2", "n3", "n4")
	if err != nil {
		t.Fatal(err)
	}
	_, gid, err := d.Create("lf-tally", tallyType, &ftcorba.Properties{
		ReplicationStyle:      replication.LeaderFollower,
		InitialNumberReplicas: 3,
		ReadOnlyOps:           []string{"get"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WaitGroupReady(gid, 3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if ops, lf := d.RM.LFReadOps(gid); !lf || len(ops) != 1 || ops[0] != "get" {
		t.Fatalf("LFReadOps = %v, %v", ops, lf)
	}
	proxy, err := d.Proxy("client", gid)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		out, berr := proxy.Invoke("bump")
		if berr != nil || out[0].AsLongLong() != int64(i) {
			t.Fatalf("bump %d: %v %v", i, out, berr)
		}
	}

	// Leased local reads engage once renewals circulate: read-your-writes
	// must hold on every attempt, and within the deadline some read must be
	// served without entering the ordered path.
	lfReads := func() uint64 {
		var total uint64
		for _, name := range d.Nodes() {
			if n := d.Node(name); n != nil {
				total += n.Engine.Stats().LfReads
			}
		}
		return total
	}
	deadline := time.Now().Add(5 * time.Second)
	for lfReads() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no leased local read served")
		}
		out, gerr := proxy.Invoke("get")
		if gerr != nil || out[0].AsLongLong() != 5 {
			t.Fatalf("get: %v %v", out, gerr)
		}
	}

	// Crash the leader: acked writes survive, the group keeps serving.
	members, err := d.RM.Members(gid)
	if err != nil {
		t.Fatal(err)
	}
	d.CrashNode(members[0])
	out, err := proxy.Invoke("bump")
	if err != nil || out[0].AsLongLong() != 6 {
		t.Fatalf("bump after leader crash: %v %v (acked write lost?)", out, err)
	}
	out, err = proxy.Invoke("get")
	if err != nil || out[0].AsLongLong() != 6 {
		t.Fatalf("get after leader crash: %v %v", out, err)
	}
}
