package ftcorba_test

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/ftcorba"
	"repro/internal/replication"
)

// crashReport is a confirmed node-crash fault as the replication engine
// reports it after a membership eviction.
func crashReport(node string) fault.Report {
	return fault.Report{Kind: fault.NodeCrash, Node: node, Member: node, Detected: time.Now()}
}

func waitMembers(t *testing.T, rm *ftcorba.ReplicationManager, gid uint64, check func([]string) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, _ := rm.Members(gid)
		if check(cur) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: members=%v", what, cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A node whose crash the manager has already processed must never be
// recruited as a spare, even when it sorts first among the candidates.
func TestSpareSelectionSkipsDeadNode(t *testing.T) {
	d := newDomain(t, "n1", "n2", "n3", "n4")
	d.RM.SetRecruitGrace(time.Millisecond)
	_, gid, err := d.Create("dead-spare", tallyType, &ftcorba.Properties{
		ReplicationStyle:      replication.Active,
		InitialNumberReplicas: 2,
		MinimumNumberReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	members, _ := d.RM.Members(gid) // n1, n2 (sorted candidate order)
	if len(members) != 2 {
		t.Fatalf("initial members = %v", members)
	}

	// n3 dies first (it hosts nothing, so only the dead mark changes),
	// then a member dies. The recruit must skip n3 — the old selection
	// took candidates[0] and would have picked the corpse.
	d.Notifier.Push(crashReport("n3"))
	d.Notifier.Push(crashReport(members[0]))
	waitMembers(t, d.RM, gid, func(cur []string) bool {
		return len(cur) == 2 && containsStr(cur, "n4") && !containsStr(cur, "n3")
	}, "recruit skipped dead n3")
}

// A suspected node is quarantined: not trusted as a spare until the
// suspicion resolves.
func TestSpareSelectionSkipsSuspectedNode(t *testing.T) {
	d := newDomain(t, "n1", "n2", "n3", "n4")
	d.RM.SetRecruitGrace(time.Millisecond)
	_, gid, err := d.Create("suspect-spare", tallyType, &ftcorba.Properties{
		ReplicationStyle:      replication.Active,
		InitialNumberReplicas: 2,
		MinimumNumberReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	members, _ := d.RM.Members(gid)

	d.Notifier.Push(fault.Report{
		Kind: fault.NodeCrash, Event: fault.EventSuspect,
		Node: "n3", Member: "n3", Detected: time.Now(),
	})
	d.Notifier.Push(crashReport(members[0]))
	waitMembers(t, d.RM, gid, func(cur []string) bool {
		return len(cur) == 2 && containsStr(cur, "n4") && !containsStr(cur, "n3")
	}, "recruit skipped suspected n3")
}

// A recovery report arriving within the recruit grace cancels the pending
// spare recruitment and re-admits the recovered member in place — the flap
// absorption that keeps a transient pause from provisioning a fresh
// replica (and paying a state transfer) on every blip.
func TestRecoveryWithinGraceCancelsRecruit(t *testing.T) {
	d := newDomain(t, "n1", "n2", "n3")
	d.RM.SetRecruitGrace(500 * time.Millisecond)
	_, gid, err := d.Create("flap", tallyType, &ftcorba.Properties{
		ReplicationStyle:      replication.Active,
		InitialNumberReplicas: 2,
		MinimumNumberReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	members, _ := d.RM.Members(gid)
	victim := members[0]

	d.Notifier.Push(crashReport(victim))
	waitMembers(t, d.RM, gid, func(cur []string) bool {
		return len(cur) == 1 && !containsStr(cur, victim)
	}, "member removed on confirmed fault")

	// The node comes back before the grace expires.
	d.Notifier.Push(fault.Report{
		Kind: fault.NodeCrash, Event: fault.EventRecover,
		Node: victim, Member: victim, Detected: time.Now(),
	})
	waitMembers(t, d.RM, gid, func(cur []string) bool {
		return len(cur) == 2 && containsStr(cur, victim)
	}, "recovered member re-added")

	// Past the grace: the canceled recruit must not fire — n3 stays out.
	time.Sleep(700 * time.Millisecond)
	cur, _ := d.RM.Members(gid)
	if len(cur) != 2 || containsStr(cur, "n3") {
		t.Fatalf("canceled recruit fired anyway: members=%v", cur)
	}
}
