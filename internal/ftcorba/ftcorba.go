// Package ftcorba implements the FT-CORBA management services that
// standardized the experience the paper reports: the Replication Manager
// (combining the PropertyManager, ObjectGroupManager, and GenericFactory
// interfaces), fault-report consumption with automatic replica recovery,
// and IOGR (interoperable object group reference) publication with version
// management.
//
// One Replication Manager administers one FT domain. In the standard the
// manager is itself replicated for fault tolerance; here it is a single
// in-process object (it can be hosted as a replicated group through the
// same engine it manages — see the examples).
package ftcorba

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/ior"
	"repro/internal/orb"
	"repro/internal/replication"
)

// MembershipStyle selects who adds/removes group members.
type MembershipStyle uint8

// Membership styles.
const (
	// MembershipInfrastructure lets the Replication Manager manage
	// membership (including automatic recovery after faults).
	MembershipInfrastructure MembershipStyle = iota + 1
	// MembershipApplication leaves membership to the application.
	MembershipApplication
)

// MonitoringStyle selects the fault-monitoring mechanism.
type MonitoringStyle uint8

// Monitoring styles.
const (
	MonitorPull MonitoringStyle = iota + 1
	MonitorPush
)

// Properties are the FT-CORBA replication properties of an object group.
type Properties struct {
	ReplicationStyle replication.Style
	MembershipStyle  MembershipStyle
	MonitoringStyle  MonitoringStyle
	// InitialNumberReplicas is how many replicas to create (default 2).
	InitialNumberReplicas int
	// MinimumNumberReplicas triggers automatic recovery when membership
	// falls below it (default InitialNumberReplicas).
	MinimumNumberReplicas int
	// CheckpointInterval is operations between checkpoints (passive
	// styles; default 16).
	CheckpointInterval int
	// CheckpointBytes additionally triggers a checkpoint once that many
	// update-record bytes accumulated since the last one (log-compaction
	// byte policy; 0 disables).
	CheckpointBytes int
	// FaultMonitoringInterval parameterizes detectors created for the
	// group (default 50ms).
	FaultMonitoringInterval time.Duration
	// Shard explicitly places the group on one transport shard of the
	// engines' ring pool. 1-based so the zero value means "route by hash"
	// (replication.ShardFor): Shard=N pins the group to ring N-1. The
	// manager records the placement and core.Domain.Proxy propagates it to
	// clients; it is inert in single-ring domains.
	Shard int
	// ReadOnlyOps lists operations that never mutate servant state
	// (IDL readonly attribute accessors and the like). For
	// LEADER_FOLLOWER groups these are servable from any replica's local
	// state under its read lease; core.Domain.Proxy propagates the list
	// to clients as a WithLFFastPath option. Ignored for other styles.
	ReadOnlyOps []string
}

func (p *Properties) fill() {
	if p.ReplicationStyle == 0 {
		p.ReplicationStyle = replication.Active
	}
	if p.MembershipStyle == 0 {
		p.MembershipStyle = MembershipInfrastructure
	}
	if p.MonitoringStyle == 0 {
		p.MonitoringStyle = MonitorPull
	}
	if p.InitialNumberReplicas <= 0 {
		p.InitialNumberReplicas = 2
	}
	if p.MinimumNumberReplicas <= 0 {
		p.MinimumNumberReplicas = p.InitialNumberReplicas
	}
	if p.CheckpointInterval <= 0 {
		p.CheckpointInterval = 16
	}
	if p.FaultMonitoringInterval <= 0 {
		p.FaultMonitoringInterval = 50 * time.Millisecond
	}
}

// Factory creates servant instances of one type on demand (the
// GenericFactory hook). Each call must return a fresh servant with zero
// state.
type Factory func() orb.Servant

// Errors returned by the Replication Manager.
var (
	ErrNoFactory      = errors.New("ftcorba: no factory registered for type")
	ErrUnknownGroup   = errors.New("ftcorba: unknown object group")
	ErrUnknownNode    = errors.New("ftcorba: node not registered")
	ErrNotEnoughNodes = errors.New("ftcorba: not enough nodes with factories")
	ErrMemberExists   = errors.New("ftcorba: node already hosts a member")
	ErrNoSuchMember   = errors.New("ftcorba: node hosts no member of the group")
)

// nodeRec is one registered host.
type nodeRec struct {
	engine    *replication.Engine
	orbPort   uint16
	factories map[string]Factory
}

// groupRec is the manager's record of one object group.
type groupRec struct {
	def     replication.GroupDef
	props   Properties
	typeID  string
	members []string // nodes hosting replicas, sorted
	version uint32
}

// pendingRecruit is a deferred spare recruitment: a confirmed member fault
// schedules it, the RecruitGrace timer fires it, and a recovery report for
// the failed node cancels it (the recovered member is re-added instead).
type pendingRecruit struct {
	gid    uint64
	failed string
	timer  *time.Timer
}

// ReplicationManager administers object groups in one FT domain.
type ReplicationManager struct {
	domain string

	mu     sync.Mutex
	nodes  map[string]*nodeRec
	groups map[uint64]*groupRec
	nextID uint64

	defaultProps Properties
	typeProps    map[string]Properties

	// Failure-detector state mirror: suspected nodes are quarantined (never
	// chosen as spares) until the suspicion resolves; confirmed-dead nodes
	// stay excluded until they re-register or a recovery report arrives.
	suspected map[string]time.Time
	deadNodes map[string]bool
	pending   map[uint64]*pendingRecruit
	// recruitGrace delays spare recruitment after a confirmed fault so a
	// member that was evicted by an over-eager detector (and whose recovery
	// report is seconds behind the fault report) rejoins in place instead
	// of triggering a provisioning storm.
	recruitGrace time.Duration

	stopCh  chan struct{}
	wg      sync.WaitGroup
	stopped bool
}

// NewReplicationManager creates a manager for the named FT domain.
func NewReplicationManager(domain string) *ReplicationManager {
	rm := &ReplicationManager{
		domain:       domain,
		nodes:        make(map[string]*nodeRec),
		groups:       make(map[uint64]*groupRec),
		typeProps:    make(map[string]Properties),
		suspected:    make(map[string]time.Time),
		deadNodes:    make(map[string]bool),
		pending:      make(map[uint64]*pendingRecruit),
		recruitGrace: 75 * time.Millisecond,
		stopCh:       make(chan struct{}),
	}
	rm.defaultProps.fill()
	return rm
}

// SetRecruitGrace overrides the delay between a confirmed member fault and
// spare recruitment. Zero recruits immediately (the pre-hysteresis
// behavior); tests that need deterministic timing use it.
func (rm *ReplicationManager) SetRecruitGrace(d time.Duration) {
	rm.mu.Lock()
	rm.recruitGrace = d
	rm.mu.Unlock()
}

// Domain returns the FT domain name.
func (rm *ReplicationManager) Domain() string { return rm.domain }

// Stop terminates background consumers.
func (rm *ReplicationManager) Stop() {
	rm.mu.Lock()
	if rm.stopped {
		rm.mu.Unlock()
		return
	}
	rm.stopped = true
	for gid, p := range rm.pending {
		p.timer.Stop()
		delete(rm.pending, gid)
	}
	rm.mu.Unlock()
	close(rm.stopCh)
	rm.wg.Wait()
}

// RegisterNode makes a host available for replica placement. Re-registering
// an existing node replaces its engine — the crash-restart case, where the
// node returns with a fresh engine but its factory registrations (and any
// group memberships the manager assigns next) remain valid.
func (rm *ReplicationManager) RegisterNode(node string, engine *replication.Engine, orbPort uint16) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	// Registration is proof of life: a restarted node sheds any dead or
	// suspected mark it carried.
	delete(rm.deadNodes, node)
	delete(rm.suspected, node)
	if rec, ok := rm.nodes[node]; ok {
		rec.engine = engine
		rec.orbPort = orbPort
		return
	}
	rm.nodes[node] = &nodeRec{engine: engine, orbPort: orbPort, factories: make(map[string]Factory)}
}

// RegisterFactory installs a servant factory for a type on a node (the
// GenericFactory registration step).
func (rm *ReplicationManager) RegisterFactory(node, typeID string, f Factory) error {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	n, ok := rm.nodes[node]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, node)
	}
	n.factories[typeID] = f
	return nil
}

// --- PropertyManager -------------------------------------------------------

// SetDefaultProperties sets domain-wide defaults.
func (rm *ReplicationManager) SetDefaultProperties(p Properties) {
	p.fill()
	rm.mu.Lock()
	rm.defaultProps = p
	rm.mu.Unlock()
}

// SetTypeProperties overrides defaults for one repository id.
func (rm *ReplicationManager) SetTypeProperties(typeID string, p Properties) {
	p.fill()
	rm.mu.Lock()
	rm.typeProps[typeID] = p
	rm.mu.Unlock()
}

// PropertiesOf returns the effective properties of a group.
func (rm *ReplicationManager) PropertiesOf(gid uint64) (Properties, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	g, ok := rm.groups[gid]
	if !ok {
		return Properties{}, fmt.Errorf("%w: %d", ErrUnknownGroup, gid)
	}
	return g.props, nil
}

func (rm *ReplicationManager) effectiveProps(typeID string, override *Properties) Properties {
	if override != nil {
		p := *override
		p.fill()
		return p
	}
	if p, ok := rm.typeProps[typeID]; ok {
		return p
	}
	return rm.defaultProps
}

// --- GenericFactory / ObjectGroupManager -----------------------------------

// CreateObjectGroup creates a replicated object of the given type:
// InitialNumberReplicas replicas are placed on distinct nodes that have a
// factory for the type, and the group's IOGR is returned.
// Pass nil props to use the type/domain defaults.
func (rm *ReplicationManager) CreateObjectGroup(name, typeID string, props *Properties) (*ior.Ref, uint64, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	p := rm.effectiveProps(typeID, props)

	candidates := rm.nodesWithFactoryLocked(typeID, nil)
	if len(candidates) < p.InitialNumberReplicas {
		return nil, 0, fmt.Errorf("%w: need %d, have %d for %s",
			ErrNotEnoughNodes, p.InitialNumberReplicas, len(candidates), typeID)
	}
	chosen := candidates[:p.InitialNumberReplicas]

	rm.nextID++
	gid := rm.nextID
	def := replication.GroupDef{
		ID:                   gid,
		Name:                 name,
		TypeID:               typeID,
		Style:                p.ReplicationStyle,
		CheckpointEvery:      p.CheckpointInterval,
		CheckpointEveryBytes: p.CheckpointBytes,
		Shard:                p.Shard,
		ReadOnlyOps:          append([]string(nil), p.ReadOnlyOps...),
	}
	for _, node := range chosen {
		n := rm.nodes[node]
		if err := n.engine.HostReplica(def, n.factories[typeID](), true); err != nil {
			return nil, 0, fmt.Errorf("ftcorba: host replica on %s: %w", node, err)
		}
	}
	g := &groupRec{def: def, props: p, typeID: typeID, members: chosen, version: 1}
	rm.groups[gid] = g
	return rm.iogrLocked(g), gid, nil
}

// nodesWithFactoryLocked lists nodes having a factory for typeID,
// excluding those in skip, sorted for determinism.
func (rm *ReplicationManager) nodesWithFactoryLocked(typeID string, skip []string) []string {
	var out []string
	for name, n := range rm.nodes {
		if _, ok := n.factories[typeID]; !ok {
			continue
		}
		skipped := false
		for _, s := range skip {
			if s == name {
				skipped = true
				break
			}
		}
		if !skipped {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// AddMember places an additional replica on the node (ObjectGroupManager::
// add_member); the new replica is synchronized by state transfer.
func (rm *ReplicationManager) AddMember(gid uint64, node string) (*ior.Ref, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	g, ok := rm.groups[gid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownGroup, gid)
	}
	n, ok := rm.nodes[node]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, node)
	}
	f, ok := n.factories[g.typeID]
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrNoFactory, g.typeID, node)
	}
	for _, m := range g.members {
		if m == node {
			return nil, fmt.Errorf("%w: %s", ErrMemberExists, node)
		}
	}
	// A replica that is still hosted means the manager's record and the
	// engine diverged — typically a fault-detector false positive evicted
	// the member while the replica lived on. Re-adding then just
	// reconciles the membership record; the replica needs no state
	// transfer because it never left the group's view.
	if err := n.engine.HostReplica(g.def, f(), false); err != nil &&
		!errors.Is(err, replication.ErrAlreadyHosted) {
		return nil, fmt.Errorf("ftcorba: host replica: %w", err)
	}
	g.members = append(g.members, node)
	sort.Strings(g.members)
	g.version++
	return rm.iogrLocked(g), nil
}

// RemoveMember withdraws the replica on the node (ObjectGroupManager::
// remove_member).
func (rm *ReplicationManager) RemoveMember(gid uint64, node string) (*ior.Ref, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	g, ok := rm.groups[gid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownGroup, gid)
	}
	idx := -1
	for i, m := range g.members {
		if m == node {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchMember, node)
	}
	if n, ok := rm.nodes[node]; ok {
		n.engine.RemoveReplica(gid)
	}
	g.members = append(g.members[:idx], g.members[idx+1:]...)
	g.version++
	return rm.iogrLocked(g), nil
}

// ShardOf reports a group's explicit transport-shard placement (0-based),
// or ok=false when the group routes by hash (or is unknown) — callers then
// rely on the engines' deterministic ShardFor route.
func (rm *ReplicationManager) ShardOf(gid uint64) (shard int, ok bool) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	g, found := rm.groups[gid]
	if !found || g.def.Shard <= 0 {
		return 0, false
	}
	return g.def.Shard - 1, true
}

// LFReadOps reports a LEADER_FOLLOWER group's lease-servable read-only
// operations. ok is false when the group is unknown or uses another
// replication style — callers then build a plain ordered-path proxy.
func (rm *ReplicationManager) LFReadOps(gid uint64) (ops []string, ok bool) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	g, found := rm.groups[gid]
	if !found || !g.def.Style.IsLeaderFollower() {
		return nil, false
	}
	return append([]string(nil), g.def.ReadOnlyOps...), true
}

// Members returns the group's current hosting nodes.
func (rm *ReplicationManager) Members(gid uint64) ([]string, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	g, ok := rm.groups[gid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownGroup, gid)
	}
	return append([]string(nil), g.members...), nil
}

// IOGR returns the group's current reference (version-stamped).
func (rm *ReplicationManager) IOGR(gid uint64) (*ior.Ref, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	g, ok := rm.groups[gid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownGroup, gid)
	}
	return rm.iogrLocked(g), nil
}

// Version returns the group's IOGR version.
func (rm *ReplicationManager) Version(gid uint64) (uint32, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	g, ok := rm.groups[gid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownGroup, gid)
	}
	return g.version, nil
}

// iogrLocked builds the group's IOGR: one profile per member, primary
// flagged (senior member, matching the engine's primary rule).
func (rm *ReplicationManager) iogrLocked(g *groupRec) *ior.Ref {
	members := make([]ior.GroupMember, 0, len(g.members))
	for i, node := range g.members {
		port := uint16(0)
		if n, ok := rm.nodes[node]; ok {
			port = n.orbPort
		}
		members = append(members, ior.GroupMember{
			Host:      node,
			Port:      port,
			ObjectKey: []byte(fmt.Sprintf("og/%d", g.def.ID)),
			Primary:   i == 0,
		})
	}
	return ior.NewGroup(g.typeID, ior.FTGroup{
		FTDomainID: rm.domain,
		GroupID:    g.def.ID,
		Version:    g.version,
	}, members)
}

// --- Fault consumption and automatic recovery -------------------------------

// ConsumeFaults subscribes the manager to a fault notifier: member-crash
// reports shrink the affected groups, and (for infrastructure-controlled
// membership) replicas are re-created on spare nodes to restore
// MinimumNumberReplicas — the FT-CORBA automatic recovery loop.
func (rm *ReplicationManager) ConsumeFaults(n *fault.Notifier) {
	ch, cancel := n.Subscribe(nil)
	rm.wg.Add(1)
	go func() {
		defer rm.wg.Done()
		defer cancel()
		for {
			select {
			case <-rm.stopCh:
				return
			case r, ok := <-ch:
				if !ok {
					return
				}
				rm.handleFault(r)
			}
		}
	}()
}

func (rm *ReplicationManager) handleFault(r fault.Report) {
	switch r.Event {
	case fault.EventSuspect:
		// Quarantine: a suspected node is never recruited as a spare, but
		// its existing memberships stay — suspicion is not eviction.
		rm.mu.Lock()
		if _, ok := rm.suspected[r.Node]; !ok {
			when := r.Detected
			if when.IsZero() {
				when = time.Now()
			}
			rm.suspected[r.Node] = when
		}
		rm.mu.Unlock()
		return
	case fault.EventRecover:
		rm.nodeRecovered(r.Node)
		return
	}
	switch r.Kind {
	case fault.ObjectCrash:
		rm.memberFailed(r.GroupID, r.Node)
	case fault.NodeCrash, fault.ProcessCrash:
		// Every group with a member on the node lost that member.
		rm.mu.Lock()
		rm.deadNodes[r.Node] = true
		delete(rm.suspected, r.Node)
		var affected []uint64
		for gid, g := range rm.groups {
			for _, m := range g.members {
				if m == r.Node {
					affected = append(affected, gid)
					break
				}
			}
		}
		rm.mu.Unlock()
		for _, gid := range affected {
			rm.memberFailed(gid, r.Node)
		}
	}
}

// nodeRecovered handles a recovery report: the node's quarantine marks are
// cleared, and any recruit still pending for a group that lost this very
// node is canceled — the recovered member is re-added in place, which is
// exactly the flap the recruit grace exists to absorb.
func (rm *ReplicationManager) nodeRecovered(node string) {
	rm.mu.Lock()
	delete(rm.suspected, node)
	delete(rm.deadNodes, node)
	var readd []uint64
	for gid, p := range rm.pending {
		if p.failed == node {
			p.timer.Stop()
			delete(rm.pending, gid)
			readd = append(readd, gid)
		}
	}
	rm.mu.Unlock()
	for _, gid := range readd {
		_, _ = rm.AddMember(gid, node)
	}
}

func (rm *ReplicationManager) memberFailed(gid uint64, node string) {
	rm.mu.Lock()
	g, ok := rm.groups[gid]
	if !ok {
		rm.mu.Unlock()
		return
	}
	idx := -1
	for i, m := range g.members {
		if m == node {
			idx = i
			break
		}
	}
	if idx < 0 {
		rm.mu.Unlock()
		return
	}
	g.members = append(g.members[:idx], g.members[idx+1:]...)
	g.version++
	needRecovery := g.props.MembershipStyle == MembershipInfrastructure &&
		len(g.members) < g.props.MinimumNumberReplicas
	if needRecovery && !rm.stopped && rm.pending[gid] == nil {
		p := &pendingRecruit{gid: gid, failed: node}
		p.timer = time.AfterFunc(rm.recruitGrace, func() { rm.fireRecruit(p) })
		rm.pending[gid] = p
	}
	rm.mu.Unlock()
}

// fireRecruit runs when a pending recruit's grace expires without the
// failed member recovering: re-check the group still needs a replica and
// place one on the first healthy spare.
func (rm *ReplicationManager) fireRecruit(p *pendingRecruit) {
	rm.mu.Lock()
	if rm.pending[p.gid] != p {
		rm.mu.Unlock()
		return // canceled by a recovery, or superseded
	}
	delete(rm.pending, p.gid)
	g, ok := rm.groups[p.gid]
	if !ok || rm.stopped ||
		g.props.MembershipStyle != MembershipInfrastructure ||
		len(g.members) >= g.props.MinimumNumberReplicas {
		rm.mu.Unlock()
		return
	}
	spare := rm.selectSpareLocked(g, p.failed)
	rm.mu.Unlock()
	if spare != "" {
		// Best-effort: the spare may itself be down; the next fault report
		// will retry elsewhere.
		_, _ = rm.AddMember(p.gid, spare)
	}
}

// selectSpareLocked picks the first registered node that has a factory for
// the group's type, hosts no member, and is neither confirmed dead nor
// currently suspected by the failure detector. The old code took
// candidates[0] unconditionally, which happily recruited a node whose
// crash the manager had itself just processed.
func (rm *ReplicationManager) selectSpareLocked(g *groupRec, failed string) string {
	candidates := rm.nodesWithFactoryLocked(g.typeID, append([]string{failed}, g.members...))
	for _, c := range candidates {
		if rm.deadNodes[c] {
			continue
		}
		if _, sus := rm.suspected[c]; sus {
			continue
		}
		return c
	}
	return ""
}

// GroupIDs lists all managed group ids, sorted.
func (rm *ReplicationManager) GroupIDs() []uint64 {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	out := make([]uint64, 0, len(rm.groups))
	for gid := range rm.groups {
		out = append(out, gid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
