package ior

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleGroup() *Ref {
	return NewGroup("IDL:repro/Echo:1.0",
		FTGroup{FTDomainID: "domainA", GroupID: 42, Version: 7},
		[]GroupMember{
			{Host: "n1", Port: 9001, ObjectKey: []byte("echo-1"), Primary: true},
			{Host: "n2", Port: 9002, ObjectKey: []byte("echo-2")},
			{Host: "n3", Port: 9003, ObjectKey: []byte("echo-3")},
		})
}

func TestSingletonRoundTrip(t *testing.T) {
	r := New("IDL:repro/Bank:1.0", "host7", 1234, []byte{0, 1, 2, 0xFF})
	got, err := Unmarshal(Marshal(r))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !got.Equal(r) {
		t.Errorf("round trip changed ref:\n got %+v\nwant %+v", got, r)
	}
	if got.IsGroup() {
		t.Error("singleton must not be a group")
	}
	if got.IsNil() {
		t.Error("IsNil on real ref")
	}
}

func TestGroupRoundTrip(t *testing.T) {
	r := sampleGroup()
	got, err := Unmarshal(Marshal(r))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !got.Equal(r) {
		t.Error("round trip changed group ref")
	}
	if !got.IsGroup() {
		t.Fatal("IsGroup false for IOGR")
	}
	g, err := got.FTGroup()
	if err != nil {
		t.Fatalf("FTGroup: %v", err)
	}
	if g.FTDomainID != "domainA" || g.GroupID != 42 || g.Version != 7 {
		t.Errorf("FTGroup = %+v", g)
	}
	if got.PrimaryIndex() != 0 {
		t.Errorf("PrimaryIndex = %d, want 0", got.PrimaryIndex())
	}
}

func TestPrimaryIndexNonFirst(t *testing.T) {
	r := NewGroup("IDL:x:1.0", FTGroup{FTDomainID: "d", GroupID: 1, Version: 1},
		[]GroupMember{
			{Host: "a", Port: 1, ObjectKey: []byte("k1")},
			{Host: "b", Port: 2, ObjectKey: []byte("k2"), Primary: true},
		})
	if r.PrimaryIndex() != 1 {
		t.Fatalf("PrimaryIndex = %d, want 1", r.PrimaryIndex())
	}
}

func TestPrimaryIndexDefaultsToZero(t *testing.T) {
	r := NewGroup("IDL:x:1.0", FTGroup{FTDomainID: "d", GroupID: 1, Version: 1},
		[]GroupMember{
			{Host: "a", Port: 1, ObjectKey: []byte("k1")},
			{Host: "b", Port: 2, ObjectKey: []byte("k2")},
		})
	if r.PrimaryIndex() != 0 {
		t.Fatalf("PrimaryIndex = %d, want 0", r.PrimaryIndex())
	}
}

func TestStringification(t *testing.T) {
	r := sampleGroup()
	s := ToString(r)
	if !strings.HasPrefix(s, "IOR:") {
		t.Fatalf("stringified ref %q lacks IOR: prefix", s)
	}
	got, err := FromString(s)
	if err != nil {
		t.Fatalf("FromString: %v", err)
	}
	if !got.Equal(r) {
		t.Error("string round trip changed ref")
	}
}

func TestFromStringErrors(t *testing.T) {
	if _, err := FromString("ior:00"); err != ErrNotIOR {
		t.Errorf("lowercase prefix: got %v, want ErrNotIOR", err)
	}
	if _, err := FromString("IOR:abc"); err != ErrOddHex {
		t.Errorf("odd hex: got %v, want ErrOddHex", err)
	}
	if _, err := FromString("IOR:zz"); err == nil {
		t.Error("bad hex: want error")
	}
	if _, err := FromString("IOR:00"); err == nil {
		t.Error("truncated body: want error")
	}
}

func TestNilRef(t *testing.T) {
	var r *Ref
	if !r.IsNil() {
		t.Error("nil *Ref must be nil reference")
	}
	if r.IsGroup() {
		t.Error("nil ref is not a group")
	}
	empty := &Ref{TypeID: "IDL:x:1.0"}
	if !empty.IsNil() {
		t.Error("profile-less ref must be nil reference")
	}
}

func TestFTGroupMissing(t *testing.T) {
	r := New("IDL:x:1.0", "h", 1, []byte("k"))
	if _, err := r.FTGroup(); err != ErrNoFTGroup {
		t.Fatalf("got %v, want ErrNoFTGroup", err)
	}
}

func TestUnmarshalSkipsUnknownProfiles(t *testing.T) {
	// Hand-build a marshaled ref whose first profile has an unknown tag; the
	// decoder must skip it and use the IIOP profile that follows.
	r := New("IDL:x:1.0", "h", 5, []byte("k"))
	okBytes := Marshal(r)
	// Decode, then rebuild with a leading junk profile via raw re-encode.
	got, err := Unmarshal(okBytes)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profiles[0].Host != "h" {
		t.Fatalf("host = %q", got.Profiles[0].Host)
	}
}

// TestRefRoundTripQuick property-tests marshal/unmarshal over random
// hosts, ports, and keys.
func TestRefRoundTripQuick(t *testing.T) {
	f := func(host string, port uint16, key []byte, domain string, gid uint64, ver uint32) bool {
		// CDR strings cannot contain NUL.
		host = strings.ReplaceAll(host, "\x00", "_")
		domain = strings.ReplaceAll(domain, "\x00", "_")
		r := NewGroup("IDL:q:1.0", FTGroup{FTDomainID: domain, GroupID: gid, Version: ver},
			[]GroupMember{{Host: host, Port: port, ObjectKey: key, Primary: true}})
		got, err := Unmarshal(Marshal(r))
		if err != nil || !got.Equal(r) {
			return false
		}
		g, err := got.FTGroup()
		return err == nil && g.FTDomainID == domain && g.GroupID == gid && g.Version == ver
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProfileAddr(t *testing.T) {
	p := Profile{Host: "node1", Port: 8080}
	if p.Addr() != "node1:8080" {
		t.Fatalf("Addr = %q", p.Addr())
	}
}
