// Package ior implements interoperable object references (IORs) and
// FT-CORBA interoperable object *group* references (IOGRs).
//
// An IOR names one CORBA object: a repository id plus one or more tagged
// profiles, each giving a protocol endpoint and an object key. An IOGR is
// an IOR with one profile per replica plus FT tagged components:
// TAG_FT_GROUP (domain id, group id, group version) and TAG_FT_PRIMARY
// (marks the profile of the primary replica). Clients holding an IOGR can
// fail over between profiles transparently, and detect stale references by
// comparing group versions — this is the standardized mechanism that grew
// out of the systems the paper describes.
package ior

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"repro/internal/cdr"
)

// Tag values for profiles and components (subset of the OMG registry).
const (
	TagInternetIOP uint32 = 0  // TAG_INTERNET_IOP: an IIOP profile
	TagMultiComp   uint32 = 1  // TAG_MULTIPLE_COMPONENTS
	TagFTGroup     uint32 = 27 // TAG_FT_GROUP
	TagFTPrimary   uint32 = 28 // TAG_FT_PRIMARY
	TagFTHeartbeat uint32 = 29 // TAG_FT_HEARTBEAT_ENABLED
	TagOrbType     uint32 = 0x4f425400
)

// Errors returned when parsing references.
var (
	ErrNotIOR    = errors.New("ior: string does not begin with \"IOR:\"")
	ErrOddHex    = errors.New("ior: stringified IOR has odd hex length")
	ErrNoProfile = errors.New("ior: reference has no usable profile")
	ErrNoFTGroup = errors.New("ior: reference carries no TAG_FT_GROUP component")
)

// Component is a tagged component inside a profile.
type Component struct {
	Tag  uint32
	Data []byte // CDR encapsulation
}

// Profile is one endpoint at which the object (or one replica) is reachable.
type Profile struct {
	// Host and Port locate the endpoint. In this codebase Host is a node
	// name on the simulated network fabric (or a real IP for TCP tests).
	Host string
	Port uint16
	// ObjectKey is the opaque key the target object adapter uses to find
	// the servant.
	ObjectKey []byte
	// Components carries tagged components (FT group info, primary flag…).
	Components []Component
}

// HasComponent reports whether the profile carries a component with tag.
func (p *Profile) HasComponent(tag uint32) bool {
	for _, c := range p.Components {
		if c.Tag == tag {
			return true
		}
	}
	return false
}

// Component returns the data of the first component with tag, or nil.
func (p *Profile) Component(tag uint32) []byte {
	for _, c := range p.Components {
		if c.Tag == tag {
			return c.Data
		}
	}
	return nil
}

// Addr renders the endpoint as host:port.
func (p *Profile) Addr() string { return fmt.Sprintf("%s:%d", p.Host, p.Port) }

// FTGroup is the body of a TAG_FT_GROUP component: it identifies the object
// group a profile belongs to, with a version that the infrastructure bumps
// on every membership change so clients can detect stale IOGRs.
type FTGroup struct {
	FTDomainID string
	GroupID    uint64
	Version    uint32
}

// Ref is an object reference: an IOR when it has a single profile, an IOGR
// when it has several (one per replica) plus FT components.
type Ref struct {
	// TypeID is the repository id of the most-derived interface, e.g.
	// "IDL:repro/Inventory:1.0".
	TypeID   string
	Profiles []Profile
}

// IsNil reports whether the reference is the nil object reference.
func (r *Ref) IsNil() bool { return r == nil || len(r.Profiles) == 0 }

// IsGroup reports whether the reference is an IOGR (carries FT group info).
func (r *Ref) IsGroup() bool {
	if r == nil {
		return false
	}
	for i := range r.Profiles {
		if r.Profiles[i].HasComponent(TagFTGroup) {
			return true
		}
	}
	return false
}

// FTGroup extracts the group identification from the first profile carrying
// a TAG_FT_GROUP component.
func (r *Ref) FTGroup() (FTGroup, error) {
	for i := range r.Profiles {
		if data := r.Profiles[i].Component(TagFTGroup); data != nil {
			return decodeFTGroup(data)
		}
	}
	return FTGroup{}, ErrNoFTGroup
}

// PrimaryIndex returns the index of the profile flagged TAG_FT_PRIMARY,
// or 0 if none is flagged (per FT-CORBA a client may then try profiles in
// order).
func (r *Ref) PrimaryIndex() int {
	for i := range r.Profiles {
		if data := r.Profiles[i].Component(TagFTPrimary); data != nil {
			if d, err := cdr.DecodeEncapsulation(data); err == nil {
				if isPrimary, err := d.ReadBool(); err == nil && isPrimary {
					return i
				}
			}
		}
	}
	return 0
}

// Equal reports whether two references denote the same object(s) at the
// same endpoints (used by tests).
func (r *Ref) Equal(o *Ref) bool {
	if r.IsNil() || o.IsNil() {
		return r.IsNil() && o.IsNil()
	}
	if r.TypeID != o.TypeID || len(r.Profiles) != len(o.Profiles) {
		return false
	}
	for i := range r.Profiles {
		a, b := &r.Profiles[i], &o.Profiles[i]
		if a.Host != b.Host || a.Port != b.Port || string(a.ObjectKey) != string(b.ObjectKey) {
			return false
		}
		if len(a.Components) != len(b.Components) {
			return false
		}
		for j := range a.Components {
			if a.Components[j].Tag != b.Components[j].Tag ||
				string(a.Components[j].Data) != string(b.Components[j].Data) {
				return false
			}
		}
	}
	return true
}

// New builds a plain (singleton) IOR.
func New(typeID, host string, port uint16, objectKey []byte) *Ref {
	return &Ref{
		TypeID: typeID,
		Profiles: []Profile{{
			Host:      host,
			Port:      port,
			ObjectKey: append([]byte(nil), objectKey...),
		}},
	}
}

// GroupMember describes one replica endpoint when building an IOGR.
type GroupMember struct {
	Host      string
	Port      uint16
	ObjectKey []byte
	Primary   bool
}

// NewGroup builds an IOGR for an object group: one profile per member, each
// tagged with the group identity; the primary (if any) additionally tagged
// TAG_FT_PRIMARY.
func NewGroup(typeID string, g FTGroup, members []GroupMember) *Ref {
	ref := &Ref{TypeID: typeID}
	groupComp := Component{Tag: TagFTGroup, Data: encodeFTGroup(g)}
	for _, m := range members {
		p := Profile{
			Host:      m.Host,
			Port:      m.Port,
			ObjectKey: append([]byte(nil), m.ObjectKey...),
			Components: []Component{
				{Tag: TagFTGroup, Data: append([]byte(nil), groupComp.Data...)},
			},
		}
		if m.Primary {
			p.Components = append(p.Components, Component{
				Tag: TagFTPrimary,
				Data: cdr.EncodeEncapsulation(cdr.BigEndian, func(e *cdr.Encoder) {
					e.WriteBool(true)
				}),
			})
		}
		ref.Profiles = append(ref.Profiles, p)
	}
	return ref
}

func encodeFTGroup(g FTGroup) []byte {
	return cdr.EncodeEncapsulation(cdr.BigEndian, func(e *cdr.Encoder) {
		e.WriteString(g.FTDomainID)
		e.WriteULongLong(g.GroupID)
		e.WriteULong(g.Version)
	})
}

func decodeFTGroup(data []byte) (FTGroup, error) {
	d, err := cdr.DecodeEncapsulation(data)
	if err != nil {
		return FTGroup{}, fmt.Errorf("ior: bad FT group component: %w", err)
	}
	var g FTGroup
	if g.FTDomainID, err = d.ReadString(); err != nil {
		return FTGroup{}, fmt.Errorf("ior: bad FT group component: %w", err)
	}
	if g.GroupID, err = d.ReadULongLong(); err != nil {
		return FTGroup{}, fmt.Errorf("ior: bad FT group component: %w", err)
	}
	if g.Version, err = d.ReadULong(); err != nil {
		return FTGroup{}, fmt.Errorf("ior: bad FT group component: %w", err)
	}
	return g, nil
}

// Marshal encodes the reference as a CDR encapsulation (the standard wire
// form used inside messages and for stringification).
func Marshal(r *Ref) []byte {
	return cdr.EncodeEncapsulation(cdr.BigEndian, func(e *cdr.Encoder) {
		e.WriteString(r.TypeID)
		e.WriteULong(uint32(len(r.Profiles)))
		for i := range r.Profiles {
			p := &r.Profiles[i]
			e.WriteULong(TagInternetIOP)
			body := cdr.EncodeEncapsulation(cdr.BigEndian, func(pe *cdr.Encoder) {
				pe.WriteOctet(1) // IIOP major
				pe.WriteOctet(2) // IIOP minor
				pe.WriteString(p.Host)
				pe.WriteUShort(p.Port)
				pe.WriteOctetSeq(p.ObjectKey)
				pe.WriteULong(uint32(len(p.Components)))
				for _, c := range p.Components {
					pe.WriteULong(c.Tag)
					pe.WriteOctetSeq(c.Data)
				}
			})
			e.WriteOctetSeq(body)
		}
	})
}

// Unmarshal decodes a reference produced by Marshal.
func Unmarshal(b []byte) (*Ref, error) {
	d, err := cdr.DecodeEncapsulation(b)
	if err != nil {
		return nil, fmt.Errorf("ior: %w", err)
	}
	r := &Ref{}
	if r.TypeID, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("ior: type id: %w", err)
	}
	n, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("ior: profile count: %w", err)
	}
	if n > 1024 {
		return nil, fmt.Errorf("ior: implausible profile count %d", n)
	}
	for i := uint32(0); i < n; i++ {
		tag, err := d.ReadULong()
		if err != nil {
			return nil, fmt.Errorf("ior: profile tag: %w", err)
		}
		body, err := d.ReadOctetSeq()
		if err != nil {
			return nil, fmt.Errorf("ior: profile body: %w", err)
		}
		if tag != TagInternetIOP {
			continue // skip unknown profile kinds, per CORBA rules
		}
		p, err := decodeIIOPProfile(body)
		if err != nil {
			return nil, err
		}
		r.Profiles = append(r.Profiles, p)
	}
	if len(r.Profiles) == 0 {
		return nil, ErrNoProfile
	}
	return r, nil
}

func decodeIIOPProfile(body []byte) (Profile, error) {
	var p Profile
	pd, err := cdr.DecodeEncapsulation(body)
	if err != nil {
		return p, fmt.Errorf("ior: profile encapsulation: %w", err)
	}
	if _, err := pd.ReadOctet(); err != nil { // major
		return p, fmt.Errorf("ior: version: %w", err)
	}
	if _, err := pd.ReadOctet(); err != nil { // minor
		return p, fmt.Errorf("ior: version: %w", err)
	}
	if p.Host, err = pd.ReadString(); err != nil {
		return p, fmt.Errorf("ior: host: %w", err)
	}
	if p.Port, err = pd.ReadUShort(); err != nil {
		return p, fmt.Errorf("ior: port: %w", err)
	}
	if p.ObjectKey, err = pd.ReadOctetSeq(); err != nil {
		return p, fmt.Errorf("ior: object key: %w", err)
	}
	nc, err := pd.ReadULong()
	if err != nil {
		return p, fmt.Errorf("ior: component count: %w", err)
	}
	if nc > 1024 {
		return p, fmt.Errorf("ior: implausible component count %d", nc)
	}
	for j := uint32(0); j < nc; j++ {
		var c Component
		if c.Tag, err = pd.ReadULong(); err != nil {
			return p, fmt.Errorf("ior: component tag: %w", err)
		}
		if c.Data, err = pd.ReadOctetSeq(); err != nil {
			return p, fmt.Errorf("ior: component data: %w", err)
		}
		p.Components = append(p.Components, c)
	}
	return p, nil
}

// ToString renders the reference in the classic stringified form
// "IOR:<hex of marshaled encapsulation>".
func ToString(r *Ref) string {
	return "IOR:" + strings.ToLower(hex.EncodeToString(Marshal(r)))
}

// FromString parses a stringified reference produced by ToString (or any
// CORBA ORB emitting the same layout).
func FromString(s string) (*Ref, error) {
	if !strings.HasPrefix(s, "IOR:") {
		return nil, ErrNotIOR
	}
	hexPart := s[len("IOR:"):]
	if len(hexPart)%2 != 0 {
		return nil, ErrOddHex
	}
	raw, err := hex.DecodeString(hexPart)
	if err != nil {
		return nil, fmt.Errorf("ior: %w", err)
	}
	return Unmarshal(raw)
}
