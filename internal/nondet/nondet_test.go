package nondet

import (
	"testing"
	"testing/quick"
	"time"
)

func TestReplicaDeterminism(t *testing.T) {
	anchor := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(gid, msgID uint64) bool {
		a := NewContext(gid, msgID, anchor)
		b := NewContext(gid, msgID, anchor)
		if !a.Now().Equal(b.Now()) {
			return false
		}
		for i := 0; i < 10; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		if a.Intn(100) != b.Intn(100) || a.Float64() != b.Float64() {
			return false
		}
		return a.Seq("x") == b.Seq("x") && a.Seq("x") == b.Seq("x")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDifferentInvocationsDiffer(t *testing.T) {
	anchor := time.Now()
	a := NewContext(1, 100, anchor)
	b := NewContext(1, 101, anchor)
	if a.Now().Equal(b.Now()) {
		t.Error("distinct invocations must get distinct logical times")
	}
	// Random streams differ with overwhelming probability.
	same := true
	for i := 0; i < 4; i++ {
		if a.Uint64() != b.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("distinct invocations produced identical random streams")
	}
}

func TestLogicalTimeMonotonic(t *testing.T) {
	anchor := time.Unix(0, 0)
	prev := NewContext(7, 0, anchor).Now()
	for msg := uint64(1); msg < 100; msg++ {
		now := NewContext(7, msg, anchor).Now()
		if !now.After(prev) {
			t.Fatalf("logical time not monotonic at msg %d", msg)
		}
		prev = now
	}
}

func TestSeqCountersIndependent(t *testing.T) {
	c := NewContext(1, 1, time.Now())
	if c.Seq("a") != 1 || c.Seq("b") != 1 || c.Seq("a") != 2 {
		t.Error("named counters must be independent and monotonic")
	}
	if c.MsgID() != 1 {
		t.Error("MsgID accessor broken")
	}
}
