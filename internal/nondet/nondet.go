// Package nondet controls sources of nondeterminism inside replicated
// objects.
//
// One of the central lessons of the fault-tolerant CORBA experience is that
// active replication only works if every replica computes identical results
// from identical ordered inputs. Wall-clock reads, random numbers, thread
// scheduling, and local counters silently diverge replicas. The
// infrastructure therefore supplies replicas with *logical* replacements
// whose values are functions of the totally ordered message stream:
//
//   - Clock yields a logical timestamp derived from the ordered message id
//     of the invocation being executed, identical at every replica;
//   - Rand yields a deterministic pseudo-random stream seeded from the
//     group identity and re-seeded per invocation from the ordered message
//     id, so every replica draws the same values in the same order;
//   - Sequence yields per-object monotonic counters that advance only at
//     invocation boundaries.
//
// Replicated servants receive a *Context through the invocation path and
// must use it instead of time.Now, math/rand, etc.
package nondet

import (
	"math/rand"
	"sync"
	"time"
)

// Context carries the deterministic facilities for one invocation. It is
// created by the replication infrastructure from the ordered message that
// delivered the invocation and must not outlive the invocation.
type Context struct {
	msgID uint64
	base  time.Time
	seed  int64
	mu    sync.Mutex
	rng   *rand.Rand // created on first draw; seeding is too costly to pay per invocation
	seqs  map[string]uint64
}

// NewContext builds a deterministic context for an invocation ordered as
// msgID within group gid. epochStart anchors logical time; all replicas
// configure the same anchor (it is part of the group's creation record).
// The pseudo-random source is seeded lazily: most operations never draw
// randomness, and rngSource seeding dominates dispatch cost if paid
// unconditionally on every invocation.
func NewContext(gid uint64, msgID uint64, epochStart time.Time) *Context {
	return &Context{
		msgID: msgID,
		base:  epochStart,
		seed:  int64(gid*0x9E3779B97F4A7C15 ^ msgID*0xBF58476D1CE4E5B9),
	}
}

// random returns the deterministic source, creating it on first use.
// Callers must hold c.mu.
func (c *Context) random() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.seed))
	}
	return c.rng
}

// MsgID returns the ordered message id of the invocation.
func (c *Context) MsgID() uint64 { return c.msgID }

// Now returns the deterministic logical time of this invocation: the epoch
// anchor advanced by one microsecond per ordered message. Every replica
// executing the same invocation observes the same value — the consistent
// time service the Eternal line of work describes.
func (c *Context) Now() time.Time {
	return c.base.Add(time.Duration(c.msgID) * time.Microsecond)
}

// Uint64 draws the next deterministic pseudo-random value.
func (c *Context) Uint64() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.random().Uint64()
}

// Intn draws a deterministic value in [0, n).
func (c *Context) Intn(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.random().Intn(n)
}

// Float64 draws a deterministic value in [0, 1).
func (c *Context) Float64() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.random().Float64()
}

// Seq returns the next value of a named per-invocation counter (1, 2, …).
// Replicas issuing the same sequence of Seq calls observe the same values.
func (c *Context) Seq(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seqs == nil {
		c.seqs = make(map[string]uint64)
	}
	c.seqs[name]++
	return c.seqs[name]
}
