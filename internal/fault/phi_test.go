package fault

import (
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// All estimator/state-machine tests drive the clock explicitly — no
// sleeping, no wall time — so every assertion is deterministic.

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// feedRegular observes n arrivals spaced exactly by iv, returning the last
// arrival time.
func feedRegular(obs interface{ Observe(time.Time) }, start time.Time, iv time.Duration, n int) time.Time {
	at := start
	for i := 0; i < n; i++ {
		obs.Observe(at)
		at = at.Add(iv)
	}
	return at.Add(-iv)
}

// feedRegularSusp is feedRegular for *Suspicion (Observe returns a value).
func feedRegularSusp(s *Suspicion, start time.Time, iv time.Duration, n int) time.Time {
	at := start
	for i := 0; i < n; i++ {
		s.Observe(at)
		at = at.Add(iv)
	}
	return at.Add(-iv)
}

func TestPhiKnownDistribution(t *testing.T) {
	// Regular 100ms arrivals with a 10ms deviation floor: the normal model
	// is fully determined, so phi and its crossings match the analytic
	// inverse.
	e := NewPhiEstimator(16, 10*time.Millisecond)
	last := feedRegular(e, t0, 100*time.Millisecond, 20)

	mean, std := e.MeanStd()
	if mean != 100*time.Millisecond || std != 10*time.Millisecond {
		t.Fatalf("mean/std = %v/%v, want 100ms/10ms (floored)", mean, std)
	}
	for _, phi := range []float64{1, 3, 8} {
		cross := e.Crossing(phi)
		want := 0.1 + 0.01*math.Sqrt2*math.Erfcinv(2*math.Pow(10, -phi))
		if got := cross.Seconds(); math.Abs(got-want) > 1e-6 {
			t.Errorf("Crossing(%v) = %vs, want %vs", phi, got, want)
		}
		// Phi at its own crossing point returns the threshold.
		if got := e.Phi(last.Add(cross)); math.Abs(got-phi) > 0.05 {
			t.Errorf("Phi(last+Crossing(%v)) = %v", phi, got)
		}
	}
	// Monotonic in elapsed time.
	if p1, p2 := e.Phi(last.Add(50*time.Millisecond)), e.Phi(last.Add(200*time.Millisecond)); p1 >= p2 {
		t.Errorf("phi not monotonic: %v then %v", p1, p2)
	}
	// A huge gap saturates rather than overflowing.
	if p := e.Phi(last.Add(time.Hour)); p != phiCap {
		t.Errorf("phi after 1h = %v, want cap %v", p, phiCap)
	}
}

func TestPhiJitterWidensWindow(t *testing.T) {
	tight := NewPhiEstimator(32, time.Millisecond)
	feedRegular(tight, t0, 100*time.Millisecond, 30)

	// Same mean, alternating 50/150ms arrivals: the observed deviation
	// must push the fail crossing far out.
	loose := NewPhiEstimator(32, time.Millisecond)
	at := t0
	for i := 0; i < 30; i++ {
		loose.Observe(at)
		if i%2 == 0 {
			at = at.Add(50 * time.Millisecond)
		} else {
			at = at.Add(150 * time.Millisecond)
		}
	}
	ct, cl := tight.Crossing(8), loose.Crossing(8)
	if cl < 2*ct {
		t.Errorf("jittered crossing %v not ≫ tight crossing %v", cl, ct)
	}
	if cl < 300*time.Millisecond {
		t.Errorf("jittered crossing %v, want > mean+5σ ≈ 380ms", cl)
	}
}

func TestPhiWindowEvictsOldSamples(t *testing.T) {
	e := NewPhiEstimator(8, time.Millisecond)
	last := feedRegular(e, t0, 10*time.Millisecond, 100)
	// 8 slower samples displace the entire 10ms history.
	at := last
	for i := 0; i < 8; i++ {
		at = at.Add(50 * time.Millisecond)
		e.Observe(at)
	}
	mean, _ := e.MeanStd()
	if diff := mean - 50*time.Millisecond; diff < -10*time.Microsecond || diff > 10*time.Microsecond {
		t.Errorf("windowed mean = %v, want ~50ms after eviction", mean)
	}
	if e.Samples() != 8 {
		t.Errorf("samples = %d, want 8", e.Samples())
	}
}

func TestSuspicionLifecycle(t *testing.T) {
	s := NewSuspicion(SuspicionConfig{MinWindow: 60 * time.Millisecond})
	last := feedRegularSusp(s, t0, 10*time.Millisecond, 20)

	// Within the suspect floor (MinWindow/2 = 30ms): still alive.
	if tr := s.Eval(last.Add(25 * time.Millisecond)); tr != TransNone || s.State() != StateAlive {
		t.Fatalf("early eval: %v/%v", tr, s.State())
	}
	// Past the suspect floor: suspicion raised exactly once.
	if tr := s.Eval(last.Add(35 * time.Millisecond)); tr != TransSuspect || s.State() != StateSuspect {
		t.Fatalf("suspect eval: %v/%v", tr, s.State())
	}
	if tr := s.Eval(last.Add(40 * time.Millisecond)); tr != TransNone {
		t.Fatalf("duplicate suspect: %v", tr)
	}
	// Past the fail window (60ms) but inside the confirmation grace
	// (60ms from suspectedAt=+35ms): not yet dead.
	if tr := s.Eval(last.Add(70 * time.Millisecond)); tr != TransNone || s.State() != StateSuspect {
		t.Fatalf("premature death: %v/%v", tr, s.State())
	}
	// Grace elapsed and still silent: confirmed.
	if tr := s.Eval(last.Add(100 * time.Millisecond)); tr != TransDead || s.State() != StateDead {
		t.Fatalf("confirm eval: %v/%v", tr, s.State())
	}
	st := s.Stats()
	if st.Raised != 1 || st.Confirmed != 1 || st.Retracted != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.DetectTotal != 100*time.Millisecond {
		t.Errorf("time-to-detect = %v, want 100ms", st.DetectTotal)
	}
	// Heartbeats resume: recovery, fresh history.
	if tr := s.Observe(last.Add(200 * time.Millisecond)); tr != TransRecover || s.State() != StateAlive {
		t.Fatalf("recover: %v/%v", tr, s.State())
	}
	if s.est.Samples() != 0 {
		t.Errorf("history not reset on recovery: %d samples", s.est.Samples())
	}
}

func TestSuspicionFlapsDoNotEvict(t *testing.T) {
	// A target that repeatedly goes silent just past the suspect window
	// and then beats again must flap (suspect/retract) without ever being
	// confirmed dead — and every retraction must widen the windows.
	s := NewSuspicion(SuspicionConfig{MinWindow: 60 * time.Millisecond})
	last := feedRegularSusp(s, t0, 10*time.Millisecond, 20)

	suspects, retracts := 0, 0
	prevSuspectW := time.Duration(0)
	at := last
	for cycle := 0; cycle < 5; cycle++ {
		sw, _ := s.Windows(at)
		if sw < prevSuspectW {
			t.Errorf("cycle %d: suspect window shrank %v -> %v", cycle, prevSuspectW, sw)
		}
		prevSuspectW = sw
		// Go silent until just past the current suspect window.
		silent := at.Add(sw + 5*time.Millisecond)
		switch tr := s.Eval(silent); tr {
		case TransSuspect:
			suspects++
		case TransDead:
			t.Fatalf("cycle %d: flap evicted the target", cycle)
		}
		// Late heartbeat retracts.
		silent = silent.Add(2 * time.Millisecond)
		if tr := s.Observe(silent); tr == TransRetract {
			retracts++
		} else if tr == TransRecover {
			t.Fatalf("cycle %d: unexpected recover (was dead)", cycle)
		}
		at = silent
	}
	if suspects == 0 || suspects != retracts {
		t.Errorf("suspects=%d retracts=%d, want equal and nonzero", suspects, retracts)
	}
	st := s.Stats()
	if st.Confirmed != 0 {
		t.Errorf("flap sequence confirmed a death: %+v", st)
	}
	if st.Retracted != uint64(retracts) {
		t.Errorf("stats retracted = %d, want %d", st.Retracted, retracts)
	}
	// The flap penalty must have widened the suspect window beyond its
	// floor (30ms).
	sw, fw := s.Windows(at)
	if sw <= 30*time.Millisecond {
		t.Errorf("suspect window %v did not widen after %d flaps", sw, retracts)
	}
	if fw <= 60*time.Millisecond {
		t.Errorf("fail window %v did not widen after %d flaps", fw, retracts)
	}
}

func TestSuspicionWindowsClamp(t *testing.T) {
	s := NewSuspicion(SuspicionConfig{MinWindow: 60 * time.Millisecond, MaxWindow: 90 * time.Millisecond})
	// Wild jitter: crossings would exceed the cap without clamping.
	at := t0
	for i := 0; i < 20; i++ {
		s.Observe(at)
		if i%2 == 0 {
			at = at.Add(5 * time.Millisecond)
		} else {
			at = at.Add(400 * time.Millisecond)
		}
	}
	sw, fw := s.Windows(at)
	if fw != 90*time.Millisecond {
		t.Errorf("fail window %v, want clamped to 90ms", fw)
	}
	if sw > 90*time.Millisecond {
		t.Errorf("suspect window %v exceeds cap", sw)
	}
}

// TestDetectorAdaptiveSuspectFaultRecover exercises the Detector wiring:
// PUSH monitoring in adaptive mode must publish suspect → fault on silence
// and recover once heartbeats resume.
func TestDetectorAdaptiveSuspectFaultRecover(t *testing.T) {
	var n Notifier
	ch, cancel := n.Subscribe(nil)
	defer cancel()
	d := NewDetector(Config{Interval: 5 * time.Millisecond, Retries: 2, Adaptive: true}, &n)
	defer d.Stop()

	d.Watch("hb", Target{Report: Report{Kind: NodeCrash, Node: "n1"}})
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				d.Heartbeat("hb")
			}
		}
	}()
	time.Sleep(30 * time.Millisecond)
	select {
	case r := <-ch:
		t.Fatalf("report while heartbeating: %+v", r)
	default:
	}
	close(stop)

	wait := func(want Event) Report {
		t.Helper()
		for {
			select {
			case r := <-ch:
				if r.Event == want {
					return r
				}
				t.Fatalf("got %v report %+v, want %v", r.Event, r, want)
			case <-time.After(2 * time.Second):
				t.Fatalf("no %v report", want)
			}
		}
	}
	if r := wait(EventSuspect); r.Node != "n1" {
		t.Errorf("suspect report %+v", r)
	}
	wait(EventFault)
	if q := d.Quality(); q.Raised != 1 || q.Confirmed != 1 {
		t.Errorf("quality counters = %+v", q)
	}

	// Heartbeats resume: the fault is followed by a recovery report.
	d.Heartbeat("hb")
	wait(EventRecover)
}

// TestPullProbeSerialized is the regression test for the per-tick goroutine
// leak: a stuck probe must pin exactly one goroutine no matter how many
// intervals elapse.
func TestPullProbeSerialized(t *testing.T) {
	var n Notifier
	d := NewDetector(Config{Interval: 2 * time.Millisecond, Timeout: time.Millisecond, Retries: 3}, &n)
	defer d.Stop()

	block := make(chan struct{})
	defer close(block)
	before := runtime.NumGoroutine()
	d.Watch("stuck", Target{
		Report: Report{Kind: ProcessCrash, Node: "n1"},
		Probe: func() error {
			<-block
			return nil
		},
	})
	time.Sleep(100 * time.Millisecond) // ~50 ticks; the old code leaked one goroutine per tick
	if after := runtime.NumGoroutine(); after > before+4 {
		t.Fatalf("goroutines %d -> %d: probes not serialized", before, after)
	}
}

func TestNotifierDroppedCount(t *testing.T) {
	var n Notifier
	_, cancel := n.Subscribe(nil) // never consumed
	defer cancel()
	for i := 0; i < 1024+16; i++ {
		n.Push(Report{Kind: NodeCrash, Node: "x"})
	}
	if got := n.Dropped(); got < 16 {
		t.Errorf("Dropped() = %d, want >= 16", got)
	}
}

func TestEventString(t *testing.T) {
	if EventFault.String() != "fault" || EventSuspect.String() != "suspect" ||
		EventRecover.String() != "recover" || Event(9).String() != "unknown" {
		t.Error("Event.String broken")
	}
}

func TestProbeSpacingRelaxesAndClamps(t *testing.T) {
	s := NewSuspicion(SuspicionConfig{Window: 16, MinWindow: 20 * time.Millisecond})
	base := 5 * time.Millisecond
	max := 40 * time.Millisecond

	// Thin history: base cadence.
	s.Observe(t0)
	if got := s.ProbeSpacing(t0, base, max); got != base {
		t.Fatalf("spacing with thin history = %v, want base %v", got, base)
	}

	// A regular history relaxes the spacing above base (half the suspect
	// window) without exceeding the cap.
	last := feedRegularSusp(s, t0, 5*time.Millisecond, 16)
	got := s.ProbeSpacing(last, base, max)
	if got <= base {
		t.Fatalf("spacing with regular history = %v, want > base %v", got, base)
	}
	if got > max {
		t.Fatalf("spacing %v exceeds cap %v", got, max)
	}

	// A tiny cap clamps.
	if c := s.ProbeSpacing(last, base, 6*time.Millisecond); c != 6*time.Millisecond {
		t.Fatalf("spacing under cap 6ms = %v", c)
	}

	// Once suspect, the base cadence returns so confirmation is not delayed.
	late := last.Add(200 * time.Millisecond)
	if tr := s.Eval(late); tr != TransSuspect {
		t.Fatalf("Eval at +200ms = %v, want suspect", tr)
	}
	if got := s.ProbeSpacing(late, base, max); got != base {
		t.Fatalf("spacing while suspect = %v, want base %v", got, base)
	}
}

// TestAdaptiveProbeSchedulingReducesTraffic runs two PULL detectors against
// an always-alive target — one fixed, one with AdaptiveProbe — and checks
// that the adaptive one issues measurably fewer probes while still
// detecting a subsequent crash.
func TestAdaptiveProbeSchedulingReducesTraffic(t *testing.T) {
	run := func(adaptive bool) (probes int64, det *Detector, n *Notifier, count *atomicCounter) {
		n = &Notifier{}
		count = &atomicCounter{}
		det = NewDetector(Config{
			Interval:      2 * time.Millisecond,
			Retries:       2,
			AdaptiveProbe: adaptive,
		}, n)
		det.Watch("t", Target{
			Report: Report{Kind: ObjectCrash, Node: "n1", Member: "t"},
			Probe:  count.probe,
		})
		time.Sleep(300 * time.Millisecond)
		return count.n.Load(), det, n, count
	}

	fixedProbes, fixedDet, _, _ := run(false)
	fixedDet.Stop()
	adaptiveProbes, adaptiveDet, notifier, count := run(true)
	defer adaptiveDet.Stop()

	if adaptiveProbes >= fixedProbes*3/4 {
		t.Fatalf("adaptive scheduling did not thin probes: fixed=%d adaptive=%d",
			fixedProbes, adaptiveProbes)
	}

	// The relaxed cadence must not cost detection: kill the target and
	// expect suspicion then a confirmed fault.
	ch, cancel := notifier.Subscribe(nil)
	defer cancel()
	count.dead.Store(true)
	sawFault := false
	deadline := time.After(2 * time.Second)
	for !sawFault {
		select {
		case r := <-ch:
			if r.Event == EventFault {
				sawFault = true
			}
		case <-deadline:
			t.Fatal("no fault detected after target died under adaptive probing")
		}
	}
}

type atomicCounter struct {
	n    atomic.Int64
	dead atomic.Bool
}

func (c *atomicCounter) probe() error {
	c.n.Add(1)
	if c.dead.Load() {
		return errors.New("probe: target dead")
	}
	return nil
}
