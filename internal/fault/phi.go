package fault

import (
	"math"
	"time"
)

// Phi-accrual failure detection (Hayashibara et al.): instead of a binary
// alive/dead verdict from a fixed timeout, each monitored target keeps a
// windowed history of heartbeat inter-arrival times and computes
//
//	phi(t) = -log10( P(no heartbeat by t | history) )
//
// under a normal approximation of the inter-arrival distribution. A quiet
// network with tight arrivals yields a small crossing time; jitter under
// load widens the variance and therefore the effective window, so the
// detector adapts to observed conditions instead of tripping on a constant.
//
// The Suspicion state machine layered on top turns phi crossings into an
// alive -> suspect -> dead progression with hysteresis: suspicion is raised
// at a low threshold (cheap, reversible — consumers quarantine, they do not
// evict), death is confirmed only at a high threshold after the suspicion
// has stood for a confirmation grace period, and every retracted suspicion
// (a late heartbeat) widens subsequent windows so a flapping target has to
// stay silent progressively longer to be declared dead.
//
// Everything here is driven by explicit time arguments — no internal clock
// — so tests inject deterministic schedules.

// PhiEstimator maintains a windowed inter-arrival history for one target.
// Not safe for concurrent use; callers hold their own lock.
type PhiEstimator struct {
	samples []float64 // ring buffer of inter-arrival times, seconds
	idx     int
	n       int
	sum     float64
	sumSq   float64
	last    time.Time
	hasLast bool
	minStd  float64 // variance floor, seconds
}

// phiCap bounds phi where the tail probability underflows float64.
const phiCap = 300

// NewPhiEstimator returns an estimator keeping the last window inter-arrival
// samples with the given floor on the standard deviation (the floor keeps a
// perfectly regular history from producing a zero-width distribution that
// would trip on the first microsecond of jitter).
func NewPhiEstimator(window int, minStdDev time.Duration) *PhiEstimator {
	if window <= 0 {
		window = 64
	}
	return &PhiEstimator{
		samples: make([]float64, window),
		minStd:  minStdDev.Seconds(),
	}
}

// Observe records a heartbeat arrival at now.
func (e *PhiEstimator) Observe(now time.Time) {
	if e.hasLast {
		iv := now.Sub(e.last).Seconds()
		if iv < 0 {
			iv = 0
		}
		if e.n == len(e.samples) {
			old := e.samples[e.idx]
			e.sum -= old
			e.sumSq -= old * old
		} else {
			e.n++
		}
		e.samples[e.idx] = iv
		e.sum += iv
		e.sumSq += iv * iv
		e.idx = (e.idx + 1) % len(e.samples)
	}
	e.last = now
	e.hasLast = true
}

// Reset discards the history (used after a confirmed death: the silent gap
// preceding a recovery is not evidence about the reborn target's cadence).
func (e *PhiEstimator) Reset() {
	e.idx, e.n = 0, 0
	e.sum, e.sumSq = 0, 0
	e.hasLast = false
}

// Samples reports how many inter-arrival observations are held.
func (e *PhiEstimator) Samples() int { return e.n }

// Last returns the most recent arrival time and whether one exists.
func (e *PhiEstimator) Last() (time.Time, bool) { return e.last, e.hasLast }

// meanStd returns the windowed mean and floored standard deviation in
// seconds.
func (e *PhiEstimator) meanStd() (mean, std float64) {
	if e.n == 0 {
		return 0, e.minStd
	}
	mean = e.sum / float64(e.n)
	variance := e.sumSq/float64(e.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	std = math.Sqrt(variance)
	if std < e.minStd {
		std = e.minStd
	}
	return mean, std
}

// MeanStd exposes the windowed mean and floored standard deviation.
func (e *PhiEstimator) MeanStd() (mean, std time.Duration) {
	m, s := e.meanStd()
	return time.Duration(m * float64(time.Second)), time.Duration(s * float64(time.Second))
}

// Phi returns the suspicion level at now: -log10 of the probability that a
// heartbeat gap at least this long occurs given the observed history. Zero
// when no history exists.
func (e *PhiEstimator) Phi(now time.Time) float64 {
	if !e.hasLast || e.n == 0 {
		return 0
	}
	elapsed := now.Sub(e.last).Seconds()
	mean, std := e.meanStd()
	// Tail probability of the normal approximation.
	p := 0.5 * math.Erfc((elapsed-mean)/(std*math.Sqrt2))
	if p <= 0 || math.IsNaN(p) {
		return phiCap
	}
	phi := -math.Log10(p)
	if phi > phiCap {
		return phiCap
	}
	if phi < 0 {
		return 0
	}
	return phi
}

// Crossing returns the elapsed-since-last-arrival at which Phi reaches the
// given threshold, i.e. the adaptive detection window implied by the
// history. Zero when no history exists (callers clamp to their floor).
func (e *PhiEstimator) Crossing(phi float64) time.Duration {
	if e.n == 0 {
		return 0
	}
	mean, std := e.meanStd()
	// Invert phi = -log10(0.5*erfc(x/sqrt2)): x = erfcinv(2*10^-phi).
	p := 2 * math.Pow(10, -phi)
	if p >= 2 {
		return 0
	}
	t := mean + std*math.Sqrt2*math.Erfcinv(p)
	if t < 0 {
		t = 0
	}
	return time.Duration(t * float64(time.Second))
}

// State is a target's position in the suspicion machine.
type State uint8

const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// Transition is the outcome of feeding the machine an arrival or an
// evaluation tick.
type Transition uint8

const (
	// TransNone: no state change.
	TransNone Transition = iota
	// TransSuspect: alive -> suspect (phi crossed the suspect threshold).
	TransSuspect
	// TransRetract: suspect -> alive (a heartbeat arrived; the suspicion
	// was wrong and counts as a flap).
	TransRetract
	// TransDead: suspect -> dead (phi stayed past the fail threshold for
	// the confirmation grace period).
	TransDead
	// TransRecover: dead -> alive (heartbeats resumed after a confirmed
	// death; the history is reset).
	TransRecover
)

// SuspicionConfig parameterizes one target's machine. MinWindow is the only
// required field: it is both the floor of the adaptive fail window (so a
// calm network behaves like the legacy fixed detector) and the unit the
// other defaults scale from.
type SuspicionConfig struct {
	// Window is the inter-arrival history length (default 64).
	Window int
	// PhiSuspect raises a suspicion when crossed (default 1).
	PhiSuspect float64
	// PhiFail is required (alongside ConfirmGrace) to confirm death
	// (default 8).
	PhiFail float64
	// MinStdDev floors the estimator's deviation (default MinWindow/16).
	MinStdDev time.Duration
	// MinWindow floors the fail window; the suspect window floors at half
	// of it. Required.
	MinWindow time.Duration
	// MaxWindow caps both adaptive windows (default 3*MinWindow) so a
	// wildly jittery history cannot defer detection forever.
	MaxWindow time.Duration
	// ConfirmGrace is the minimum dwell in suspect before death can be
	// confirmed (default MinWindow). A heartbeat inside the dwell retracts
	// the suspicion instead of letting one long gap evict.
	ConfirmGrace time.Duration
	// FlapPenalty widens both windows by this fraction per recent
	// retraction (default 0.5).
	FlapPenalty float64
	// FlapWindow is how long a retraction keeps counting toward the
	// penalty (default 32*MinWindow).
	FlapWindow time.Duration
	// MaxFlapCount caps how many retractions compound (default 4).
	MaxFlapCount int
}

func (c *SuspicionConfig) fill() {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.PhiSuspect <= 0 {
		c.PhiSuspect = 1
	}
	if c.PhiFail <= 0 {
		c.PhiFail = 8
	}
	if c.MinStdDev <= 0 {
		c.MinStdDev = c.MinWindow / 16
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 3 * c.MinWindow
	}
	if c.ConfirmGrace <= 0 {
		c.ConfirmGrace = c.MinWindow
	}
	if c.FlapPenalty <= 0 {
		c.FlapPenalty = 0.5
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = 32 * c.MinWindow
	}
	if c.MaxFlapCount <= 0 {
		c.MaxFlapCount = 4
	}
}

// SuspicionStats are the detection-quality counters for one target.
type SuspicionStats struct {
	Raised    uint64 // suspicions raised
	Retracted uint64 // suspicions retracted by a late heartbeat (flaps)
	Confirmed uint64 // suspicions confirmed into deaths
	// DetectTotal sums, over confirmed deaths, the gap between the last
	// heartbeat and the confirmation — divide by Confirmed for the mean
	// time-to-detect.
	DetectTotal time.Duration
}

// Suspicion is the per-target alive/suspect/dead machine. Not safe for
// concurrent use; callers hold their own lock and supply all times.
type Suspicion struct {
	cfg         SuspicionConfig
	est         *PhiEstimator
	state       State
	suspectedAt time.Time
	flaps       []time.Time
	stats       SuspicionStats
}

// NewSuspicion builds a machine in StateAlive with no history.
func NewSuspicion(cfg SuspicionConfig) *Suspicion {
	cfg.fill()
	return &Suspicion{
		cfg: cfg,
		est: NewPhiEstimator(cfg.Window, cfg.MinStdDev),
	}
}

// State returns the current state.
func (s *Suspicion) State() State { return s.state }

// Stats returns the quality counters accumulated so far.
func (s *Suspicion) Stats() SuspicionStats { return s.stats }

// Phi exposes the current suspicion level (diagnostics).
func (s *Suspicion) Phi(now time.Time) float64 { return s.est.Phi(now) }

// Observe feeds a heartbeat arrival. It may retract a suspicion or recover
// a confirmed death.
func (s *Suspicion) Observe(now time.Time) Transition {
	if s.state == StateDead {
		// A reborn target's cadence owes nothing to the death gap.
		s.est.Reset()
		s.est.Observe(now)
		s.state = StateAlive
		return TransRecover
	}
	s.est.Observe(now)
	if s.state == StateSuspect {
		s.state = StateAlive
		s.stats.Retracted++
		s.recordFlap(now)
		return TransRetract
	}
	return TransNone
}

// Eval advances the machine at now (called periodically). It may raise a
// suspicion or confirm a death; it never retracts (only arrivals do).
func (s *Suspicion) Eval(now time.Time) Transition {
	last, ok := s.est.Last()
	if !ok {
		return TransNone
	}
	elapsed := now.Sub(last)
	suspectW, failW := s.windows(now)
	switch s.state {
	case StateAlive:
		if elapsed > suspectW {
			s.state = StateSuspect
			s.suspectedAt = now
			s.stats.Raised++
			return TransSuspect
		}
	case StateSuspect:
		if elapsed > failW && now.Sub(s.suspectedAt) >= s.cfg.ConfirmGrace {
			s.state = StateDead
			s.stats.Confirmed++
			s.stats.DetectTotal += elapsed
			return TransDead
		}
	}
	return TransNone
}

// ProbeSpacing recommends the delay before the next liveness probe of this
// target: the current fail window, clamped to [base, max]. For a healthy
// target the fail window floors at Retries*Interval and then tracks the
// observed inter-arrival mean, so a steady target is probed progressively
// less often; the worst-case extra detection latency for a silent crash is
// one fail window, still bounded by the estimator's MaxWindow clamp. While
// the target is suspect or dead — or the arrival history is still too thin
// to trust — the base cadence applies, so detection latency under
// suspicion is unchanged from the fixed scheduler.
//
// The feedback is intentionally self-limiting: relaxing the cadence
// stretches the observed inter-arrival mean, which widens the fail
// window, which relaxes the cadence further — until the estimator's
// MaxWindow (and the max clamp here) stops the drift. A jitter burst
// widens the variance but also trips the suspect threshold sooner,
// snapping the spacing back to base.
func (s *Suspicion) ProbeSpacing(now time.Time, base, max time.Duration) time.Duration {
	if s.state != StateAlive || s.est.Samples() < s.cfg.Window/4 {
		return base
	}
	_, failW := s.windows(now)
	d := failW
	if d < base {
		d = base
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// Windows reports the effective suspect and fail windows at now, after
// clamping and flap widening (diagnostics and tests).
func (s *Suspicion) Windows(now time.Time) (suspect, fail time.Duration) {
	return s.windows(now)
}

func (s *Suspicion) windows(now time.Time) (suspect, fail time.Duration) {
	// Floor first, then widen: the flap penalty must stretch even a
	// tight-history window that clamped to its floor.
	factor := 1 + s.cfg.FlapPenalty*float64(s.recentFlaps(now))
	suspect = widenWindow(s.est.Crossing(s.cfg.PhiSuspect), s.cfg.MinWindow/2, s.cfg.MaxWindow, factor)
	fail = widenWindow(s.est.Crossing(s.cfg.PhiFail), s.cfg.MinWindow, s.cfg.MaxWindow, factor)
	return suspect, fail
}

func widenWindow(w, lo, hi time.Duration, factor float64) time.Duration {
	if w < lo {
		w = lo
	}
	w = time.Duration(float64(w) * factor)
	if hi > 0 && w > hi {
		w = hi
	}
	return w
}

func (s *Suspicion) recordFlap(now time.Time) {
	// Trim expired entries, then append; bounded by MaxFlapCount so the
	// slice never grows past what the penalty can use.
	keep := s.flaps[:0]
	for _, t := range s.flaps {
		if now.Sub(t) <= s.cfg.FlapWindow {
			keep = append(keep, t)
		}
	}
	s.flaps = append(keep, now)
	if len(s.flaps) > s.cfg.MaxFlapCount {
		s.flaps = s.flaps[len(s.flaps)-s.cfg.MaxFlapCount:]
	}
}

func (s *Suspicion) recentFlaps(now time.Time) int {
	n := 0
	for _, t := range s.flaps {
		if now.Sub(t) <= s.cfg.FlapWindow {
			n++
		}
	}
	return n
}

