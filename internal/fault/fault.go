// Package fault implements FT-CORBA-style fault management: fault
// detectors that monitor targets, and a fault notifier that fans fault
// reports out to interested consumers (chiefly the replication manager).
//
// The standard defines two monitoring styles, both provided here:
//
//   - PULL: the detector periodically invokes an is_alive probe on the
//     target and declares a fault after Retries consecutive misses, so the
//     detection time is roughly Interval*Retries + Timeout — the quantity
//     experiment E3 sweeps;
//   - PUSH: the target sends heartbeats and the detector declares a fault
//     when none arrives within the window.
//
// Detectors are arranged per-host with the notifier global, mirroring the
// hierarchical detector deployment of the FT-CORBA standard.
package fault

import (
	"sync"
	"time"
)

// Kind classifies a fault report.
type Kind uint8

// Fault kinds.
const (
	ObjectCrash Kind = iota + 1
	ProcessCrash
	NodeCrash
	// InvariantViolation reports a broken protocol invariant detected at
	// runtime (e.g. a non-contiguous delivery or an unencodable message).
	// In strict-invariant builds these abort instead; in production they
	// are reported here and the protocol recovers by reformation.
	InvariantViolation
)

var kindNames = map[Kind]string{
	ObjectCrash:        "object-crash",
	ProcessCrash:       "process-crash",
	NodeCrash:          "node-crash",
	InvariantViolation: "invariant-violation",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Report is one fault notification, identifying the failed entity in the
// object→process→node hierarchy.
type Report struct {
	Kind Kind
	// Node is the host of the failed entity.
	Node string
	// GroupID identifies the object group of a failed member (object
	// faults only).
	GroupID uint64
	// Member identifies the failed member/target within its scope.
	Member string
	// Detail describes the fault (invariant violations).
	Detail string
	// Detected is when the detector declared the fault.
	Detected time.Time
}

// Notifier fans fault reports out to subscribers. The zero value is ready
// to use.
type Notifier struct {
	mu   sync.Mutex
	subs map[int]*subscription
	next int
}

type subscription struct {
	filter func(Report) bool
	ch     chan Report
}

// Subscribe registers a consumer. Reports matching filter (nil = all) are
// delivered on the returned channel; cancel unsubscribes and closes it.
// Delivery never blocks the notifier: a subscriber that falls more than
// 1024 reports behind loses the oldest ones.
func (n *Notifier) Subscribe(filter func(Report) bool) (<-chan Report, func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.subs == nil {
		n.subs = make(map[int]*subscription)
	}
	id := n.next
	n.next++
	sub := &subscription{filter: filter, ch: make(chan Report, 1024)}
	n.subs[id] = sub
	cancel := func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if s, ok := n.subs[id]; ok {
			delete(n.subs, id)
			close(s.ch)
		}
	}
	return sub.ch, cancel
}

// Push publishes a fault report to all matching subscribers.
func (n *Notifier) Push(r Report) {
	if r.Detected.IsZero() {
		r.Detected = time.Now()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, s := range n.subs {
		if s.filter != nil && !s.filter(r) {
			continue
		}
		select {
		case s.ch <- r:
		default:
			// Drop the oldest to make room; a fault consumer that is this
			// far behind is itself suspect.
			select {
			case <-s.ch:
			default:
			}
			select {
			case s.ch <- r:
			default:
			}
		}
	}
}

// Config parameterizes a detector.
type Config struct {
	// Interval between probes (PULL) or expected heartbeats (PUSH).
	Interval time.Duration
	// Timeout for one probe to answer.
	Timeout time.Duration
	// Retries is how many consecutive failed probes (or missed heartbeat
	// windows) are tolerated before a fault is declared.
	Retries int
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
}

// Target is one monitored entity.
type Target struct {
	// Report template: Kind/Node/GroupID/Member copied into fault reports.
	Report Report
	// Probe implements PULL monitoring: return nil if alive. A nil Probe
	// makes the target PUSH-monitored (liveness asserted via Heartbeat).
	Probe func() error
}

// Detector monitors a set of targets and pushes faults to a Notifier.
type Detector struct {
	cfg      Config
	notifier *Notifier

	mu      sync.Mutex
	targets map[string]*targetState
	stopped bool
	wg      sync.WaitGroup
	stopCh  chan struct{}
}

type targetState struct {
	target    Target
	misses    int
	lastBeat  time.Time
	announced bool
	stop      chan struct{}
}

// NewDetector creates a detector pushing reports into notifier.
func NewDetector(cfg Config, notifier *Notifier) *Detector {
	cfg.fill()
	return &Detector{
		cfg:      cfg,
		notifier: notifier,
		targets:  make(map[string]*targetState),
		stopCh:   make(chan struct{}),
	}
}

// Watch starts monitoring a target under the given id; watching an existing
// id replaces the previous target.
func (d *Detector) Watch(id string, t Target) {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	if old, ok := d.targets[id]; ok {
		close(old.stop)
	}
	st := &targetState{target: t, lastBeat: time.Now(), stop: make(chan struct{})}
	d.targets[id] = st
	d.mu.Unlock()

	d.wg.Add(1)
	go d.monitor(id, st)
}

// Unwatch stops monitoring the id.
func (d *Detector) Unwatch(id string) {
	d.mu.Lock()
	if st, ok := d.targets[id]; ok {
		close(st.stop)
		delete(d.targets, id)
	}
	d.mu.Unlock()
}

// Heartbeat records a PUSH-style liveness assertion for the id.
func (d *Detector) Heartbeat(id string) {
	d.mu.Lock()
	if st, ok := d.targets[id]; ok {
		st.lastBeat = time.Now()
		st.misses = 0
		st.announced = false
	}
	d.mu.Unlock()
}

// Stop terminates all monitoring.
func (d *Detector) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	for id, st := range d.targets {
		close(st.stop)
		delete(d.targets, id)
	}
	d.mu.Unlock()
	close(d.stopCh)
	d.wg.Wait()
}

func (d *Detector) monitor(id string, st *targetState) {
	defer d.wg.Done()
	ticker := time.NewTicker(d.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-d.stopCh:
			return
		case <-ticker.C:
		}
		if st.target.Probe != nil {
			d.pullProbe(id, st)
		} else {
			d.pushCheck(id, st)
		}
	}
}

// pullProbe runs one is_alive probe with a timeout.
func (d *Detector) pullProbe(id string, st *targetState) {
	done := make(chan error, 1)
	go func() { done <- st.target.Probe() }()
	var err error
	timer := time.NewTimer(d.cfg.Timeout)
	defer timer.Stop()
	select {
	case err = <-done:
	case <-timer.C:
		err = errProbeTimeout
	case <-st.stop:
		return
	case <-d.stopCh:
		return
	}

	d.mu.Lock()
	if err == nil {
		st.misses = 0
		st.announced = false
		d.mu.Unlock()
		return
	}
	st.misses++
	declare := st.misses >= d.cfg.Retries && !st.announced
	if declare {
		st.announced = true
	}
	d.mu.Unlock()
	if declare {
		d.notifier.Push(st.target.Report)
	}
}

// pushCheck verifies a heartbeat arrived within the window.
func (d *Detector) pushCheck(id string, st *targetState) {
	d.mu.Lock()
	window := time.Duration(d.cfg.Retries) * d.cfg.Interval
	late := time.Since(st.lastBeat) > window
	declare := late && !st.announced
	if declare {
		st.announced = true
	}
	d.mu.Unlock()
	if declare {
		d.notifier.Push(st.target.Report)
	}
}

type probeTimeoutError struct{}

func (probeTimeoutError) Error() string { return "fault: probe timeout" }

var errProbeTimeout = probeTimeoutError{}
