// Package fault implements FT-CORBA-style fault management: fault
// detectors that monitor targets, and a fault notifier that fans fault
// reports out to interested consumers (chiefly the replication manager).
//
// The standard defines two monitoring styles, both provided here:
//
//   - PULL: the detector periodically invokes an is_alive probe on the
//     target and declares a fault after Retries consecutive misses, so the
//     detection time is roughly Interval*Retries + Timeout — the quantity
//     experiment E3 sweeps;
//   - PUSH: the target sends heartbeats and the detector declares a fault
//     when none arrives within the window.
//
// Detectors are arranged per-host with the notifier global, mirroring the
// hierarchical detector deployment of the FT-CORBA standard.
package fault

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a fault report.
type Kind uint8

// Fault kinds.
const (
	ObjectCrash Kind = iota + 1
	ProcessCrash
	NodeCrash
	// InvariantViolation reports a broken protocol invariant detected at
	// runtime (e.g. a non-contiguous delivery or an unencodable message).
	// In strict-invariant builds these abort instead; in production they
	// are reported here and the protocol recovers by reformation.
	InvariantViolation
)

var kindNames = map[Kind]string{
	ObjectCrash:        "object-crash",
	ProcessCrash:       "process-crash",
	NodeCrash:          "node-crash",
	InvariantViolation: "invariant-violation",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Event distinguishes confirmed faults from the suspicion lifecycle around
// them. The zero value is EventFault so every pre-existing Push site keeps
// its meaning.
type Event uint8

const (
	// EventFault is a confirmed fault: the entity is declared failed.
	EventFault Event = iota
	// EventSuspect reports a raised suspicion: the entity missed enough
	// heartbeats to be quarantined but not yet evicted.
	EventSuspect
	// EventRecover reports a retracted suspicion or a post-fault recovery:
	// the entity is alive after all.
	EventRecover
)

var eventNames = map[Event]string{
	EventFault:   "fault",
	EventSuspect: "suspect",
	EventRecover: "recover",
}

// String names the event.
func (e Event) String() string {
	if s, ok := eventNames[e]; ok {
		return s
	}
	return "unknown"
}

// Report is one fault notification, identifying the failed entity in the
// object→process→node hierarchy.
type Report struct {
	Kind Kind
	// Event is the lifecycle stage: confirmed fault (the zero value),
	// raised suspicion, or recovery.
	Event Event
	// Node is the host of the failed entity.
	Node string
	// GroupID identifies the object group of a failed member (object
	// faults only).
	GroupID uint64
	// Member identifies the failed member/target within its scope.
	Member string
	// Detail describes the fault (invariant violations).
	Detail string
	// Detected is when the detector declared the fault.
	Detected time.Time
}

// Notifier fans fault reports out to subscribers. The zero value is ready
// to use.
type Notifier struct {
	mu      sync.Mutex
	subs    map[int]*subscription
	next    int
	dropped atomic.Uint64
}

type subscription struct {
	filter func(Report) bool
	ch     chan Report
}

// Subscribe registers a consumer. Reports matching filter (nil = all) are
// delivered on the returned channel; cancel unsubscribes and closes it.
// Delivery never blocks the notifier: a subscriber that falls more than
// 1024 reports behind loses the oldest ones.
func (n *Notifier) Subscribe(filter func(Report) bool) (<-chan Report, func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.subs == nil {
		n.subs = make(map[int]*subscription)
	}
	id := n.next
	n.next++
	sub := &subscription{filter: filter, ch: make(chan Report, 1024)}
	n.subs[id] = sub
	cancel := func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if s, ok := n.subs[id]; ok {
			delete(n.subs, id)
			close(s.ch)
		}
	}
	return sub.ch, cancel
}

// Push publishes a fault report to all matching subscribers.
func (n *Notifier) Push(r Report) {
	if r.Detected.IsZero() {
		r.Detected = time.Now()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, s := range n.subs {
		if s.filter != nil && !s.filter(r) {
			continue
		}
		select {
		case s.ch <- r:
		default:
			// Drop the oldest to make room; a fault consumer that is this
			// far behind is itself suspect. The loss is counted so chaos
			// invariants can assert no report vanished during a storm.
			select {
			case <-s.ch:
				n.dropped.Add(1)
			default:
			}
			select {
			case s.ch <- r:
			default:
				n.dropped.Add(1)
			}
		}
	}
}

// Dropped reports how many reports were discarded because a subscriber fell
// behind its channel buffer.
func (n *Notifier) Dropped() uint64 { return n.dropped.Load() }

// Config parameterizes a detector.
type Config struct {
	// Interval between probes (PULL) or expected heartbeats (PUSH).
	Interval time.Duration
	// Timeout for one probe to answer.
	Timeout time.Duration
	// Retries is how many consecutive failed probes (or missed heartbeat
	// windows) are tolerated before a fault is declared.
	Retries int

	// Adaptive switches the fixed Retries*Interval window for a per-target
	// phi-accrual Suspicion machine: faults are preceded by EventSuspect
	// reports, late recoveries push EventRecover, and the effective window
	// adapts to observed arrival jitter between MinWindow (Retries*Interval)
	// and MaxWindow.
	Adaptive bool
	// PhiSuspect / PhiFail override the suspicion thresholds (defaults 1, 8).
	PhiSuspect float64
	PhiFail    float64
	// FDWindow is the inter-arrival history length (default 64).
	FDWindow int
	// MaxWindow caps the adaptive window (default 3*Retries*Interval).
	MaxWindow time.Duration
	// ConfirmGrace is the minimum suspect dwell before a fault is confirmed
	// (default Retries*Interval).
	ConfirmGrace time.Duration

	// AdaptiveProbe derives each PULL target's probe cadence from its phi
	// estimator instead of the fixed Interval: a target answering with
	// tight regularity is probed at a relaxed spacing (up to
	// MaxProbeInterval), while a suspect, dead, or history-poor target is
	// probed at the base Interval — so steady-state probe traffic shrinks
	// without widening detection latency once suspicion is raised. Implies
	// Adaptive (the estimator supplies the statistics); PUSH targets are
	// unaffected.
	AdaptiveProbe bool
	// MaxProbeInterval caps the relaxed probe spacing (default 4*Interval).
	MaxProbeInterval time.Duration
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.AdaptiveProbe {
		c.Adaptive = true // the probe scheduler reads the phi estimator
		if c.MaxProbeInterval <= 0 {
			c.MaxProbeInterval = 4 * c.Interval
		}
	}
}

// suspicionConfig derives the per-target machine parameters.
func (c *Config) suspicionConfig() SuspicionConfig {
	return SuspicionConfig{
		Window:       c.FDWindow,
		PhiSuspect:   c.PhiSuspect,
		PhiFail:      c.PhiFail,
		MinWindow:    time.Duration(c.Retries) * c.Interval,
		MaxWindow:    c.MaxWindow,
		ConfirmGrace: c.ConfirmGrace,
	}
}

// Target is one monitored entity.
type Target struct {
	// Report template: Kind/Node/GroupID/Member copied into fault reports.
	Report Report
	// Probe implements PULL monitoring: return nil if alive. A nil Probe
	// makes the target PUSH-monitored (liveness asserted via Heartbeat).
	Probe func() error
}

// Detector monitors a set of targets and pushes faults to a Notifier.
type Detector struct {
	cfg      Config
	notifier *Notifier

	mu      sync.Mutex
	targets map[string]*targetState
	stopped bool
	wg      sync.WaitGroup
	stopCh  chan struct{}
}

type targetState struct {
	target    Target
	misses    int
	lastBeat  time.Time
	announced bool
	stop      chan struct{}
	// probing serializes PULL probes: at most one outstanding probe per
	// target, so a stuck Probe pins one goroutine instead of leaking one
	// per tick.
	probing    bool
	probeStart time.Time
	// susp drives adaptive (phi-accrual) detection; nil in fixed mode.
	susp *Suspicion
}

// NewDetector creates a detector pushing reports into notifier.
func NewDetector(cfg Config, notifier *Notifier) *Detector {
	cfg.fill()
	return &Detector{
		cfg:      cfg,
		notifier: notifier,
		targets:  make(map[string]*targetState),
		stopCh:   make(chan struct{}),
	}
}

// Watch starts monitoring a target under the given id; watching an existing
// id replaces the previous target.
func (d *Detector) Watch(id string, t Target) {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	if old, ok := d.targets[id]; ok {
		close(old.stop)
	}
	st := &targetState{target: t, lastBeat: time.Now(), stop: make(chan struct{})}
	if d.cfg.Adaptive {
		st.susp = NewSuspicion(d.cfg.suspicionConfig())
		st.susp.Observe(st.lastBeat)
	}
	d.targets[id] = st
	d.mu.Unlock()

	d.wg.Add(1)
	go d.monitor(id, st)
}

// Unwatch stops monitoring the id.
func (d *Detector) Unwatch(id string) {
	d.mu.Lock()
	if st, ok := d.targets[id]; ok {
		close(st.stop)
		delete(d.targets, id)
	}
	d.mu.Unlock()
}

// Heartbeat records a PUSH-style liveness assertion for the id.
func (d *Detector) Heartbeat(id string) {
	now := time.Now()
	var recover Report
	push := false
	d.mu.Lock()
	if st, ok := d.targets[id]; ok {
		st.lastBeat = now
		st.misses = 0
		st.announced = false
		if st.susp != nil {
			switch st.susp.Observe(now) {
			case TransRetract, TransRecover:
				recover = st.target.Report
				recover.Event = EventRecover
				recover.Detected = now
				push = true
			}
		}
	}
	d.mu.Unlock()
	if push {
		d.notifier.Push(recover)
	}
}

// Quality aggregates the detection-quality counters over all adaptive
// targets: suspicions raised, confirmed, retracted, and total time-to-detect.
func (d *Detector) Quality() SuspicionStats {
	var agg SuspicionStats
	d.mu.Lock()
	for _, st := range d.targets {
		if st.susp == nil {
			continue
		}
		s := st.susp.Stats()
		agg.Raised += s.Raised
		agg.Retracted += s.Retracted
		agg.Confirmed += s.Confirmed
		agg.DetectTotal += s.DetectTotal
	}
	d.mu.Unlock()
	return agg
}

// Stop terminates all monitoring.
func (d *Detector) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	for id, st := range d.targets {
		close(st.stop)
		delete(d.targets, id)
	}
	d.mu.Unlock()
	close(d.stopCh)
	d.wg.Wait()
}

func (d *Detector) monitor(id string, st *targetState) {
	defer d.wg.Done()
	timer := time.NewTimer(d.cfg.Interval)
	defer timer.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-d.stopCh:
			return
		case <-timer.C:
		}
		if st.target.Probe != nil {
			d.pullProbe(id, st)
		} else {
			d.pushCheck(id, st)
		}
		timer.Reset(d.nextDelay(st))
	}
}

// nextDelay schedules the following monitoring tick. PUSH targets and
// fixed-mode PULL targets keep the configured Interval; with AdaptiveProbe
// a PULL target's spacing follows its phi estimator (see
// Suspicion.ProbeSpacing).
func (d *Detector) nextDelay(st *targetState) time.Duration {
	if !d.cfg.AdaptiveProbe || st.target.Probe == nil {
		return d.cfg.Interval
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if st.susp == nil {
		return d.cfg.Interval
	}
	return st.susp.ProbeSpacing(time.Now(), d.cfg.Interval, d.cfg.MaxProbeInterval)
}

// pullProbe drives PULL monitoring for one tick. Probes are serialized per
// target: if the previous probe is still in flight the tick launches
// nothing — an overdue in-flight probe counts as a miss, so a stuck Probe
// pins exactly one goroutine and is still detected within Retries ticks.
func (d *Detector) pullProbe(id string, st *targetState) {
	now := time.Now()
	d.mu.Lock()
	if st.probing {
		var r Report
		ok := false
		if now.Sub(st.probeStart) > d.cfg.Timeout {
			r, ok = d.missLocked(st, now)
		}
		d.mu.Unlock()
		if ok {
			d.notifier.Push(r)
		}
		return
	}
	st.probing = true
	st.probeStart = now
	d.mu.Unlock()

	go func() {
		err := st.target.Probe()
		select {
		case <-st.stop:
			return
		case <-d.stopCh:
			return
		default:
		}
		done := time.Now()
		var r Report
		ok := false
		d.mu.Lock()
		st.probing = false
		if err == nil {
			st.misses = 0
			st.announced = false
			st.lastBeat = done
			if st.susp != nil {
				switch st.susp.Observe(done) {
				case TransRetract, TransRecover:
					r = st.target.Report
					r.Event = EventRecover
					r.Detected = done
					ok = true
				}
			}
		} else {
			r, ok = d.missLocked(st, done)
		}
		d.mu.Unlock()
		if ok {
			d.notifier.Push(r)
		}
	}()
}

// missLocked records one failed/overdue probe and advances the detection
// state, returning a report to push (after unlocking). Caller holds d.mu.
func (d *Detector) missLocked(st *targetState, now time.Time) (Report, bool) {
	if st.susp != nil {
		return d.evalLocked(st, now)
	}
	st.misses++
	if st.misses >= d.cfg.Retries && !st.announced {
		st.announced = true
		return st.target.Report, true
	}
	return Report{}, false
}

// evalLocked steps an adaptive target's suspicion machine, returning a
// report to push (after unlocking). Caller holds d.mu.
func (d *Detector) evalLocked(st *targetState, now time.Time) (Report, bool) {
	r := st.target.Report
	switch st.susp.Eval(now) {
	case TransSuspect:
		r.Event = EventSuspect
	case TransDead:
		r.Event = EventFault
	default:
		return Report{}, false
	}
	r.Detected = now
	return r, true
}

// pushCheck verifies a heartbeat arrived within the window.
func (d *Detector) pushCheck(id string, st *targetState) {
	now := time.Now()
	d.mu.Lock()
	if st.susp != nil {
		r, ok := d.evalLocked(st, now)
		d.mu.Unlock()
		if ok {
			d.notifier.Push(r)
		}
		return
	}
	window := time.Duration(d.cfg.Retries) * d.cfg.Interval
	late := now.Sub(st.lastBeat) > window
	declare := late && !st.announced
	if declare {
		st.announced = true
	}
	d.mu.Unlock()
	if declare {
		d.notifier.Push(st.target.Report)
	}
}

