package fault

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestNotifierFanOutAndFilter(t *testing.T) {
	var n Notifier
	all, cancelAll := n.Subscribe(nil)
	defer cancelAll()
	nodeOnly, cancelNode := n.Subscribe(func(r Report) bool { return r.Kind == NodeCrash })
	defer cancelNode()

	n.Push(Report{Kind: ObjectCrash, Node: "n1", Member: "obj"})
	n.Push(Report{Kind: NodeCrash, Node: "n2"})

	r1 := <-all
	r2 := <-all
	if r1.Kind != ObjectCrash || r2.Kind != NodeCrash {
		t.Errorf("all-subscriber got %v then %v", r1.Kind, r2.Kind)
	}
	rn := <-nodeOnly
	if rn.Kind != NodeCrash || rn.Node != "n2" {
		t.Errorf("filtered subscriber got %+v", rn)
	}
	select {
	case extra := <-nodeOnly:
		t.Errorf("filtered subscriber got unexpected %+v", extra)
	default:
	}
}

func TestNotifierCancelCloses(t *testing.T) {
	var n Notifier
	ch, cancel := n.Subscribe(nil)
	cancel()
	if _, ok := <-ch; ok {
		t.Error("channel must be closed after cancel")
	}
	cancel() // double cancel is safe
	n.Push(Report{Kind: NodeCrash})
}

func TestNotifierStampsDetectedTime(t *testing.T) {
	var n Notifier
	ch, cancel := n.Subscribe(nil)
	defer cancel()
	n.Push(Report{Kind: ObjectCrash})
	r := <-ch
	if r.Detected.IsZero() {
		t.Error("Detected not stamped")
	}
}

func TestPullDetectionDeclaresFault(t *testing.T) {
	var n Notifier
	ch, cancel := n.Subscribe(nil)
	defer cancel()
	d := NewDetector(Config{Interval: 5 * time.Millisecond, Retries: 2}, &n)
	defer d.Stop()

	var alive atomic.Bool
	alive.Store(true)
	d.Watch("t1", Target{
		Report: Report{Kind: ObjectCrash, Node: "n1", GroupID: 7, Member: "r1"},
		Probe: func() error {
			if alive.Load() {
				return nil
			}
			return errors.New("dead")
		},
	})

	time.Sleep(25 * time.Millisecond) // several healthy probes
	select {
	case r := <-ch:
		t.Fatalf("fault while alive: %+v", r)
	default:
	}

	start := time.Now()
	alive.Store(false)
	select {
	case r := <-ch:
		if r.GroupID != 7 || r.Member != "r1" || r.Kind != ObjectCrash {
			t.Errorf("report = %+v", r)
		}
		// Detection should take roughly Retries*Interval.
		if d := time.Since(start); d > 500*time.Millisecond {
			t.Errorf("detection took %v", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fault never declared")
	}

	// Exactly one report per fault (no repeat storm).
	time.Sleep(30 * time.Millisecond)
	select {
	case r := <-ch:
		t.Errorf("duplicate report %+v", r)
	default:
	}

	// Recovery re-arms detection.
	alive.Store(true)
	time.Sleep(25 * time.Millisecond)
	alive.Store(false)
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("fault not re-declared after recovery")
	}
}

func TestPullProbeTimeoutCountsAsMiss(t *testing.T) {
	var n Notifier
	ch, cancel := n.Subscribe(nil)
	defer cancel()
	d := NewDetector(Config{Interval: 5 * time.Millisecond, Timeout: 3 * time.Millisecond, Retries: 2}, &n)
	defer d.Stop()

	block := make(chan struct{})
	defer close(block)
	d.Watch("hang", Target{
		Report: Report{Kind: ProcessCrash, Node: "n1", Member: "p"},
		Probe: func() error {
			<-block
			return nil
		},
	})
	select {
	case r := <-ch:
		if r.Kind != ProcessCrash {
			t.Errorf("got %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hanging probe not detected")
	}
}

func TestPushMonitoring(t *testing.T) {
	var n Notifier
	ch, cancel := n.Subscribe(nil)
	defer cancel()
	d := NewDetector(Config{Interval: 5 * time.Millisecond, Retries: 3}, &n)
	defer d.Stop()

	d.Watch("hb", Target{Report: Report{Kind: NodeCrash, Node: "n9"}})
	stopBeats := make(chan struct{})
	go func() {
		ticker := time.NewTicker(4 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stopBeats:
				return
			case <-ticker.C:
				d.Heartbeat("hb")
			}
		}
	}()
	time.Sleep(40 * time.Millisecond)
	select {
	case r := <-ch:
		t.Fatalf("fault while heartbeating: %+v", r)
	default:
	}
	close(stopBeats)
	select {
	case r := <-ch:
		if r.Node != "n9" {
			t.Errorf("got %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("missed heartbeats not detected")
	}
}

func TestUnwatchStopsReports(t *testing.T) {
	var n Notifier
	ch, cancel := n.Subscribe(nil)
	defer cancel()
	d := NewDetector(Config{Interval: 5 * time.Millisecond, Retries: 1}, &n)
	defer d.Stop()
	d.Watch("x", Target{
		Report: Report{Kind: ObjectCrash, Member: "x"},
		Probe:  func() error { return errors.New("always dead") },
	})
	d.Unwatch("x")
	time.Sleep(25 * time.Millisecond)
	select {
	case r := <-ch:
		// A single in-flight report can race Unwatch; more than one is a bug.
		select {
		case r2 := <-ch:
			t.Errorf("reports after Unwatch: %+v then %+v", r, r2)
		default:
		}
	default:
	}
}

func TestWatchAfterStopIgnored(t *testing.T) {
	var n Notifier
	d := NewDetector(Config{}, &n)
	d.Stop()
	d.Watch("late", Target{Probe: func() error { return nil }})
	d.Stop() // idempotent
}

func TestKindString(t *testing.T) {
	if ObjectCrash.String() != "object-crash" || NodeCrash.String() != "node-crash" ||
		ProcessCrash.String() != "process-crash" || Kind(99).String() != "unknown" {
		t.Error("Kind.String broken")
	}
}
