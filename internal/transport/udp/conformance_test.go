package udp_test

import (
	"testing"

	"repro/internal/transport"
	"repro/internal/transport/conformance"
	"repro/internal/transport/udp"
)

// TestTransportConformance runs the shared transport contract suite
// against the real-socket UDP backend on loopback (a Cluster: one
// single-node Transport per name over a shared peer map, exactly the
// multi-process deployment shape collapsed into one process).
func TestTransportConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T, nodes []string) transport.Transport {
		c, err := udp.NewLoopbackCluster(nodes, 0, 511)
		if err != nil {
			t.Fatalf("NewLoopbackCluster: %v", err)
		}
		return c
	})
}
