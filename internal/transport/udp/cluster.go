package udp

import (
	"fmt"

	"repro/internal/transport"
)

// Cluster bundles one Transport per node, all sharing a loopback peer
// map, so a single process can stand in for a whole deployment over real
// sockets: `ftbench -transport udp` runs the in-process experiments with
// ring traffic on actual UDP, and the conformance suite drives both
// backends through the same any-node Open. A real multi-process
// deployment uses one New per process with the shared Peers map instead.
type Cluster struct {
	peers map[string]Peer
	tps   map[string]*Transport
}

var _ transport.Transport = (*Cluster)(nil)

// NewLoopbackCluster builds a cluster for the given node names whose
// logical ports all fall in [logicalLo, logicalHi]. It probes for real
// loopback port ranges so that each node's window is free and no two
// nodes' windows collide.
func NewLoopbackCluster(nodes []string, logicalLo, logicalHi uint16) (*Cluster, error) {
	if logicalHi < logicalLo {
		return nil, fmt.Errorf("udp: bad logical window [%d,%d]", logicalLo, logicalHi)
	}
	span := int(logicalHi) - int(logicalLo) + 1
	starts, err := PickBases(len(nodes), span)
	if err != nil {
		return nil, err
	}
	peers := make(map[string]Peer, len(nodes))
	for i, n := range nodes {
		base := starts[i] - int(logicalLo)
		if base < 1 {
			return nil, fmt.Errorf("udp: logical window [%d,%d] does not fit below probe range", logicalLo, logicalHi)
		}
		peers[n] = Peer{Host: "127.0.0.1", Base: base}
	}
	c := &Cluster{peers: peers, tps: make(map[string]*Transport, len(nodes))}
	for _, n := range nodes {
		tp, err := New(n, peers)
		if err != nil {
			return nil, err
		}
		c.tps[n] = tp
	}
	return c, nil
}

// Open binds the node's logical port via that node's transport.
func (c *Cluster) Open(node string, port uint16) (transport.Port, error) {
	tp, ok := c.tps[node]
	if !ok {
		return nil, fmt.Errorf("udp: cluster has no node %q", node)
	}
	return tp.Open(node, port)
}

// Peers returns the shared peer map (e.g. to hand to child processes).
func (c *Cluster) Peers() map[string]Peer {
	out := make(map[string]Peer, len(c.peers))
	for k, v := range c.peers {
		out[k] = v
	}
	return out
}
