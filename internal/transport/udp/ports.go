package udp

import (
	"fmt"
	"math/rand"
	"net"
)

// PickBases finds n distinct real-port bases on loopback, each with span
// consecutive UDP ports free at probe time, for building the static peer
// map of a single-machine deployment (tests, the multi-process bench).
// The probe sockets are closed before returning, so a base is only
// reserved in the practical sense — callers should bind promptly.
//
// Candidates stay in [20000, 32000), below the kernel's default ephemeral
// range, so a base is not stolen by an unrelated outgoing connection
// between probe and bind.
func PickBases(n, span int) ([]int, error) {
	if n < 1 || span < 1 {
		return nil, fmt.Errorf("udp: bad PickBases request n=%d span=%d", n, span)
	}
	const lo, hi = 20000, 32000
	bases := make([]int, 0, n)
	taken := make(map[int]bool)
	for attempt := 0; len(bases) < n; attempt++ {
		if attempt > 200 {
			return nil, fmt.Errorf("udp: no free port range of %d after %d probes", span, attempt)
		}
		base := lo + rand.Intn(hi-lo-span)
		overlap := false
		for b := range taken {
			if base < b+span && b < base+span {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		if !rangeFree(base, span) {
			continue
		}
		taken[base] = true
		bases = append(bases, base)
	}
	return bases, nil
}

func rangeFree(base, span int) bool {
	conns := make([]*net.UDPConn, 0, span)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for p := base; p < base+span; p++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: p})
		if err != nil {
			return false
		}
		conns = append(conns, c)
	}
	return true
}
