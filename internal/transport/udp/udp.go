// Package udp is the real-socket backend of the transport seam: logical
// datagram ports carried over UDP sockets, used by the multi-process
// deployment mode so transport shards occupy real OS processes (and, on
// real hardware, real cores) instead of goroutines inside one simulation.
//
// Addressing is a static peer map fixed at construction: every logical
// node name maps to a host plus a real base port, and logical port p of a
// node lives at base+p on that host. The map must be identical in every
// process of a deployment — like the netsim fabric's node table, it is
// the closed universe the totem protocol already assumes.
//
// Wire format: each UDP datagram is a 1-byte sender-name length, the
// sender's node name, a 1-byte scheduling class, then the payload. The
// name header exists because reverse address mapping cannot identify
// senders — a node sends from whichever ephemeral or per-shard source port
// the kernel picked, not from its listening base. The class byte carries
// the control-plane priority lane: the kernel socket buffer is strictly
// FIFO, so a dedicated reader goroutine drains it eagerly into two
// in-process queues and Recv serves the control queue first — a heartbeat
// or token never waits behind a multicast backlog.
package udp

import (
	"fmt"
	"net"
	"net/netip"
	"sync"

	"repro/internal/transport"
)

// Peer locates one node of the deployment.
type Peer struct {
	// Host is an IP address or resolvable name ("127.0.0.1" for the
	// loopback multi-process bench).
	Host string
	// Base is the real UDP port backing the node's logical port 0; logical
	// port p binds Base+p.
	Base int
}

// Transport opens logical datagram ports for one local node over real UDP
// sockets. It implements transport.Transport for that node only — unlike
// the netsim fabric, one process speaks for one node.
type Transport struct {
	node  string
	peers map[string]netip.Addr // resolved peer IPs
	bases map[string]int        // peer real base ports

	mu    sync.Mutex
	addrs map[destKey]netip.AddrPort // resolved (node, logical port) targets

	sendBufs sync.Pool // *[]byte scratch for header+payload framing
}

type destKey struct {
	node string
	port uint16
}

// New builds a transport speaking for node. peers must cover every node
// the deployment will ever address, including node itself (the local
// listen address comes from the same map).
func New(node string, peers map[string]Peer) (*Transport, error) {
	if node == "" {
		return nil, fmt.Errorf("udp: node name required")
	}
	if len(node) > 255 {
		return nil, fmt.Errorf("udp: node name %q exceeds the 255-byte wire header", node)
	}
	if _, ok := peers[node]; !ok {
		return nil, fmt.Errorf("udp: peer map missing local node %q", node)
	}
	t := &Transport{
		node:  node,
		peers: make(map[string]netip.Addr, len(peers)),
		bases: make(map[string]int, len(peers)),
		addrs: make(map[destKey]netip.AddrPort),
	}
	t.sendBufs.New = func() any { b := make([]byte, 0, 2048); return &b }
	for name, p := range peers {
		ip, err := resolveHost(p.Host)
		if err != nil {
			return nil, fmt.Errorf("udp: peer %s: %w", name, err)
		}
		if p.Base < 1 || p.Base > 65535 {
			return nil, fmt.Errorf("udp: peer %s: base port %d out of range", name, p.Base)
		}
		t.peers[name] = ip
		t.bases[name] = p.Base
	}
	return t, nil
}

func resolveHost(host string) (netip.Addr, error) {
	if ip, err := netip.ParseAddr(host); err == nil {
		return ip, nil
	}
	ips, err := net.LookupIP(host)
	if err != nil {
		return netip.Addr{}, err
	}
	for _, ip := range ips {
		if a, ok := netip.AddrFromSlice(ip); ok {
			return a.Unmap(), nil
		}
	}
	return netip.Addr{}, fmt.Errorf("no usable address for %q", host)
}

// Node reports the local node name the transport speaks for.
func (t *Transport) Node() string { return t.node }

func (t *Transport) resolve(node string, lport uint16) (netip.AddrPort, error) {
	key := destKey{node, lport}
	t.mu.Lock()
	ap, ok := t.addrs[key]
	t.mu.Unlock()
	if ok {
		return ap, nil
	}
	ip, ok := t.peers[node]
	if !ok {
		return netip.AddrPort{}, fmt.Errorf("udp: unknown node %q", node)
	}
	real := t.bases[node] + int(lport)
	if real > 65535 {
		return netip.AddrPort{}, fmt.Errorf("udp: node %q logical port %d overflows real port space (base %d)", node, lport, t.bases[node])
	}
	ap = netip.AddrPortFrom(ip, uint16(real))
	t.mu.Lock()
	t.addrs[key] = ap
	t.mu.Unlock()
	return ap, nil
}

// maxDatagram bounds one framed datagram: the UDP payload ceiling. The
// totem layer's MaxFrameBytes default (60KiB) stays comfortably under it.
const maxDatagram = 65507

// Open binds the node's logical port on a real UDP socket. Only the local
// node's ports can be opened.
func (t *Transport) Open(node string, lport uint16) (transport.Port, error) {
	if node != t.node {
		return nil, fmt.Errorf("udp: transport speaks for %q, cannot open port on %q", t.node, node)
	}
	real := t.bases[node] + int(lport)
	if real > 65535 {
		return nil, fmt.Errorf("udp: logical port %d overflows real port space (base %d)", lport, t.bases[node])
	}
	ip := t.peers[node]
	conn, err := net.ListenUDP("udp", net.UDPAddrFromAddrPort(netip.AddrPortFrom(ip, uint16(real))))
	if err != nil {
		return nil, fmt.Errorf("udp: open %s:%d (logical %d): %w", ip, real, lport, err)
	}
	// The default kernel socket buffer (~208KiB) overflows under totem's
	// bursty token-driven sends — a stalled reader sheds datagrams and the
	// protocol pays retransmissions. Ask for more; the kernel clamps to
	// rmem_max/wmem_max, so a refusal is not an error.
	_ = conn.SetReadBuffer(4 << 20)
	_ = conn.SetWriteBuffer(1 << 20)
	p := &port{
		t:       t,
		conn:    conn,
		logical: lport,
		names:   make(map[string]string),
	}
	p.cond = sync.NewCond(&p.mu)
	p.recvBufs.New = func() any { b := make([]byte, maxDatagram); return &b }
	p.smallBufs.New = func() any { b := make([]byte, smallBuf); return &b }
	go p.readLoop()
	return p, nil
}

var (
	_ transport.Port        = (*port)(nil)
	_ transport.ClassSender = (*port)(nil)
)

// laneBudget bounds each in-process receive lane by retained buffer
// bytes, not datagram count: the lanes replace the kernel socket buffer
// as the burst absorber, so their capacity must match what the 4MiB
// kernel buffer used to hold (~4k small datagrams at ~1KiB skb truesize
// each, ~64 max-size ones). A fixed datagram count would silently shrink
// that for small-payload bursts — the sequencer baseline, which owns no
// retransmission, surfaced exactly that as delivery loss. Past the
// budget the newest datagram is shed, the same tail-drop the kernel
// applies under overload (the protocol owns reliability either way).
const laneBudget = 8 << 20

// smallBuf is the copy cutoff: payloads at or under it are copied into a
// compact pooled buffer so a lane full of tiny datagrams pins ~2KiB each
// instead of a full maxDatagram read buffer.
const smallBuf = 2048

// udpDgram is one received datagram staged between the reader goroutine
// and Recv, keeping its pooled backing buffer alive until recycled.
type udpDgram struct {
	from    string
	payload []byte
	buf     *[]byte
}

// dgramQueue is a growable ring of staged datagrams (same shape as the
// netsim receive ring: front-pops must not strand capacity), accounting
// the bytes of backing capacity it retains.
type dgramQueue struct {
	buf   []udpDgram
	head  int
	n     int
	bytes int
}

func (q *dgramQueue) len() int { return q.n }

func (q *dgramQueue) push(d udpDgram) {
	if q.n == len(q.buf) {
		grown := make([]udpDgram, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = d
	q.n++
	q.bytes += cap(*d.buf)
}

func (q *dgramQueue) pop() udpDgram {
	slot := &q.buf[q.head]
	d := *slot
	*slot = udpDgram{} // release the buffer reference: slots are reused
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.bytes -= cap(*d.buf)
	return d
}


type port struct {
	t       *Transport
	conn    *net.UDPConn
	logical uint16

	mu      sync.Mutex
	cond    *sync.Cond
	ctlq    dgramQueue // control lane: served first
	dataq   dgramQueue
	closed  bool
	readErr error
	// prev is the pooled buffer backing the payload handed out by the last
	// Recv; it is recycled on the next call — the valid-until-next-Recv
	// contract of transport.Port.
	prev *[]byte

	recvBufs  sync.Pool // *[]byte of maxDatagram for the reader goroutine
	smallBufs sync.Pool // *[]byte of smallBuf for compacted small payloads
	// names interns sender node names so the steady state allocates no
	// string per datagram. Owned by the reader goroutine: no lock.
	names map[string]string
}

// recycle returns a staged buffer to the pool it came from, told apart by
// capacity (small copies vs full-size read buffers).
func (p *port) recycle(bp *[]byte) {
	if cap(*bp) <= smallBuf {
		p.smallBufs.Put(bp)
	} else {
		p.recvBufs.Put(bp)
	}
}

func (p *port) Send(node string, lport uint16, payload []byte) error {
	return p.SendClass(node, lport, payload, transport.ClassData)
}

// SendClass is Send with an explicit scheduling class carried in the wire
// header; the receiver's reader goroutine sorts it into the matching lane.
func (p *port) SendClass(node string, lport uint16, payload []byte, class transport.Class) error {
	ap, err := p.t.resolve(node, lport)
	if err != nil {
		return err
	}
	name := p.t.node
	n := 2 + len(name) + len(payload)
	if n > maxDatagram {
		return fmt.Errorf("udp: datagram %d bytes exceeds limit %d", n, maxDatagram)
	}
	bp := p.t.sendBufs.Get().(*[]byte)
	b := *bp
	if cap(b) < n {
		b = make([]byte, 0, n)
	}
	b = b[:n]
	b[0] = byte(len(name))
	copy(b[1:], name)
	b[1+len(name)] = byte(class)
	copy(b[2+len(name):], payload)
	_, err = p.conn.WriteToUDPAddrPort(b, ap)
	*bp = b[:0]
	p.t.sendBufs.Put(bp)
	return err
}

// readLoop drains the kernel socket as fast as datagrams arrive, staging
// them into the two priority lanes. Draining eagerly keeps the FIFO kernel
// buffer short, which is what lets the control lane overtake a data
// backlog at all.
func (p *port) readLoop() {
	for {
		bp := p.recvBufs.Get().(*[]byte)
		b := *bp
		n, _, err := p.conn.ReadFromUDPAddrPort(b)
		if err != nil {
			p.recvBufs.Put(bp)
			p.mu.Lock()
			if p.readErr == nil {
				p.readErr = err
			}
			p.closed = true
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		if n < 2 {
			p.recvBufs.Put(bp)
			continue
		}
		nl := int(b[0])
		if n < 2+nl {
			p.recvBufs.Put(bp)
			continue
		}
		from, ok := p.names[string(b[1:1+nl])]
		if !ok {
			from = string(b[1 : 1+nl])
			p.names[from] = from
		}
		class := transport.Class(b[1+nl])
		payload := b[2+nl : n]
		if len(payload) <= smallBuf {
			sp := p.smallBufs.Get().(*[]byte)
			copy((*sp)[:len(payload)], payload)
			payload = (*sp)[:len(payload)]
			p.recvBufs.Put(bp)
			bp = sp
		}
		d := udpDgram{from: from, payload: payload, buf: bp}
		p.mu.Lock()
		q := &p.dataq
		if class == transport.ClassControl {
			q = &p.ctlq
		}
		if p.closed || q.bytes >= laneBudget {
			p.mu.Unlock()
			p.recycle(bp)
			continue
		}
		q.push(d)
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

func (p *port) Recv() (transport.Datagram, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.prev != nil {
		p.recycle(p.prev)
		p.prev = nil
	}
	for {
		if p.ctlq.len() > 0 {
			d := p.ctlq.pop()
			p.prev = d.buf
			return transport.Datagram{From: d.from, Payload: d.payload}, nil
		}
		if p.dataq.len() > 0 {
			d := p.dataq.pop()
			p.prev = d.buf
			return transport.Datagram{From: d.from, Payload: d.payload}, nil
		}
		if p.closed {
			return transport.Datagram{}, p.readErr
		}
		p.cond.Wait()
	}
}

func (p *port) Local() (string, uint16) { return p.t.node, p.logical }

func (p *port) Close() error {
	err := p.conn.Close()
	p.mu.Lock()
	p.closed = true
	if p.readErr == nil {
		p.readErr = net.ErrClosed
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	return err
}
