// Package udp is the real-socket backend of the transport seam: logical
// datagram ports carried over UDP sockets, used by the multi-process
// deployment mode so transport shards occupy real OS processes (and, on
// real hardware, real cores) instead of goroutines inside one simulation.
//
// Addressing is a static peer map fixed at construction: every logical
// node name maps to a host plus a real base port, and logical port p of a
// node lives at base+p on that host. The map must be identical in every
// process of a deployment — like the netsim fabric's node table, it is
// the closed universe the totem protocol already assumes.
//
// Wire format: each UDP datagram is a 1-byte sender-name length, the
// sender's node name, then the payload. The header exists because reverse
// address mapping cannot identify senders — a node sends from whichever
// ephemeral or per-shard source port the kernel picked, not from its
// listening base.
package udp

import (
	"fmt"
	"net"
	"net/netip"
	"sync"

	"repro/internal/transport"
)

// Peer locates one node of the deployment.
type Peer struct {
	// Host is an IP address or resolvable name ("127.0.0.1" for the
	// loopback multi-process bench).
	Host string
	// Base is the real UDP port backing the node's logical port 0; logical
	// port p binds Base+p.
	Base int
}

// Transport opens logical datagram ports for one local node over real UDP
// sockets. It implements transport.Transport for that node only — unlike
// the netsim fabric, one process speaks for one node.
type Transport struct {
	node  string
	peers map[string]netip.Addr // resolved peer IPs
	bases map[string]int        // peer real base ports

	mu    sync.Mutex
	addrs map[destKey]netip.AddrPort // resolved (node, logical port) targets

	sendBufs sync.Pool // *[]byte scratch for header+payload framing
}

type destKey struct {
	node string
	port uint16
}

// New builds a transport speaking for node. peers must cover every node
// the deployment will ever address, including node itself (the local
// listen address comes from the same map).
func New(node string, peers map[string]Peer) (*Transport, error) {
	if node == "" {
		return nil, fmt.Errorf("udp: node name required")
	}
	if len(node) > 255 {
		return nil, fmt.Errorf("udp: node name %q exceeds the 255-byte wire header", node)
	}
	if _, ok := peers[node]; !ok {
		return nil, fmt.Errorf("udp: peer map missing local node %q", node)
	}
	t := &Transport{
		node:  node,
		peers: make(map[string]netip.Addr, len(peers)),
		bases: make(map[string]int, len(peers)),
		addrs: make(map[destKey]netip.AddrPort),
	}
	t.sendBufs.New = func() any { b := make([]byte, 0, 2048); return &b }
	for name, p := range peers {
		ip, err := resolveHost(p.Host)
		if err != nil {
			return nil, fmt.Errorf("udp: peer %s: %w", name, err)
		}
		if p.Base < 1 || p.Base > 65535 {
			return nil, fmt.Errorf("udp: peer %s: base port %d out of range", name, p.Base)
		}
		t.peers[name] = ip
		t.bases[name] = p.Base
	}
	return t, nil
}

func resolveHost(host string) (netip.Addr, error) {
	if ip, err := netip.ParseAddr(host); err == nil {
		return ip, nil
	}
	ips, err := net.LookupIP(host)
	if err != nil {
		return netip.Addr{}, err
	}
	for _, ip := range ips {
		if a, ok := netip.AddrFromSlice(ip); ok {
			return a.Unmap(), nil
		}
	}
	return netip.Addr{}, fmt.Errorf("no usable address for %q", host)
}

// Node reports the local node name the transport speaks for.
func (t *Transport) Node() string { return t.node }

func (t *Transport) resolve(node string, lport uint16) (netip.AddrPort, error) {
	key := destKey{node, lport}
	t.mu.Lock()
	ap, ok := t.addrs[key]
	t.mu.Unlock()
	if ok {
		return ap, nil
	}
	ip, ok := t.peers[node]
	if !ok {
		return netip.AddrPort{}, fmt.Errorf("udp: unknown node %q", node)
	}
	real := t.bases[node] + int(lport)
	if real > 65535 {
		return netip.AddrPort{}, fmt.Errorf("udp: node %q logical port %d overflows real port space (base %d)", node, lport, t.bases[node])
	}
	ap = netip.AddrPortFrom(ip, uint16(real))
	t.mu.Lock()
	t.addrs[key] = ap
	t.mu.Unlock()
	return ap, nil
}

// maxDatagram bounds one framed datagram: the UDP payload ceiling. The
// totem layer's MaxFrameBytes default (60KiB) stays comfortably under it.
const maxDatagram = 65507

// Open binds the node's logical port on a real UDP socket. Only the local
// node's ports can be opened.
func (t *Transport) Open(node string, lport uint16) (transport.Port, error) {
	if node != t.node {
		return nil, fmt.Errorf("udp: transport speaks for %q, cannot open port on %q", t.node, node)
	}
	real := t.bases[node] + int(lport)
	if real > 65535 {
		return nil, fmt.Errorf("udp: logical port %d overflows real port space (base %d)", lport, t.bases[node])
	}
	ip := t.peers[node]
	conn, err := net.ListenUDP("udp", net.UDPAddrFromAddrPort(netip.AddrPortFrom(ip, uint16(real))))
	if err != nil {
		return nil, fmt.Errorf("udp: open %s:%d (logical %d): %w", ip, real, lport, err)
	}
	// The default kernel socket buffer (~208KiB) overflows under totem's
	// bursty token-driven sends — a stalled reader sheds datagrams and the
	// protocol pays retransmissions. Ask for more; the kernel clamps to
	// rmem_max/wmem_max, so a refusal is not an error.
	_ = conn.SetReadBuffer(4 << 20)
	_ = conn.SetWriteBuffer(1 << 20)
	return &port{
		t:       t,
		conn:    conn,
		logical: lport,
		rbuf:    make([]byte, maxDatagram),
		names:   make(map[string]string),
	}, nil
}

var _ transport.Port = (*port)(nil)

type port struct {
	t       *Transport
	conn    *net.UDPConn
	logical uint16
	// rbuf is the single pooled receive buffer: Recv reads into it and
	// hands out sub-slices, which is exactly the valid-until-next-Recv
	// payload contract of transport.Port.
	rbuf []byte
	// names interns sender node names so the steady state allocates no
	// string per datagram. Recv is single-consumer, so no lock.
	names map[string]string
}

func (p *port) Send(node string, lport uint16, payload []byte) error {
	ap, err := p.t.resolve(node, lport)
	if err != nil {
		return err
	}
	name := p.t.node
	n := 1 + len(name) + len(payload)
	if n > maxDatagram {
		return fmt.Errorf("udp: datagram %d bytes exceeds limit %d", n, maxDatagram)
	}
	bp := p.t.sendBufs.Get().(*[]byte)
	b := *bp
	if cap(b) < n {
		b = make([]byte, 0, n)
	}
	b = b[:n]
	b[0] = byte(len(name))
	copy(b[1:], name)
	copy(b[1+len(name):], payload)
	_, err = p.conn.WriteToUDPAddrPort(b, ap)
	*bp = b[:0]
	p.t.sendBufs.Put(bp)
	return err
}

func (p *port) Recv() (transport.Datagram, error) {
	for {
		n, _, err := p.conn.ReadFromUDPAddrPort(p.rbuf)
		if err != nil {
			return transport.Datagram{}, err
		}
		if n < 1 {
			continue
		}
		nl := int(p.rbuf[0])
		if n < 1+nl {
			continue
		}
		from, ok := p.names[string(p.rbuf[1:1+nl])]
		if !ok {
			from = string(p.rbuf[1 : 1+nl])
			p.names[from] = from
		}
		return transport.Datagram{From: from, Payload: p.rbuf[1+nl : n]}, nil
	}
}

func (p *port) Local() (string, uint16) { return p.t.node, p.logical }

func (p *port) Close() error { return p.conn.Close() }
