// Package transport defines the datagram seam under the totem layer: the
// minimal unreliable-datagram contract the group communication protocol
// needs from a network. Two backends implement it:
//
//   - internal/netsim — the deterministic in-process fabric (seeded loss,
//     latency, partitions, crash injection). The chaos harness and every
//     reproducible experiment run here; the wire is byte-identical to the
//     pre-seam code.
//   - internal/transport/udp — real UDP sockets with a static peer map,
//     used by the multi-process deployment mode so R transport shards can
//     occupy R OS processes (and, on real hardware, R cores).
//
// The contract is deliberately tiny: named nodes, 16-bit logical ports,
// fire-and-forget datagrams. Logical ports are a transport-independent
// namespace — ShardPort below is the one port-layout rule every backend
// and every fault filter shares — and each backend maps them onto its own
// addressing (netsim: the port itself; udp: a per-node real-port base plus
// the logical port).
package transport

// Datagram is one received unreliable message.
type Datagram struct {
	// From is the logical node name of the sender.
	From string
	// Payload is the datagram body. Ownership is the receiver's, but the
	// bytes are only guaranteed valid until the next Recv call on the same
	// Port: backends may reuse receive buffers (the udp backend does).
	// Consumers that retain payload bytes past the next Recv must copy
	// them first; the totem layer decodes (copying) before its next Recv.
	Payload []byte
}

// Port is one bound unreliable datagram endpoint on a node.
//
// Send is safe for concurrent use. Recv is single-consumer: one goroutine
// drains the port (the totem receive loop), which is what makes the
// valid-until-next-Recv payload contract usable.
type Port interface {
	// Send transmits a datagram to the named node's logical port. Like
	// UDP, it never blocks awaiting delivery and never reports remote
	// failure — only local errors (closed port, unknown destination).
	// The transport must not retain payload after Send returns unless it
	// takes ownership without mutating it (netsim does; udp copies into
	// its own scratch buffer).
	Send(node string, port uint16, payload []byte) error
	// Recv blocks until a datagram arrives or the port closes; after
	// Close it returns a non-nil error.
	Recv() (Datagram, error)
	// Local reports the port's own node name and logical port.
	Local() (node string, port uint16)
	// Close releases the endpoint and unblocks a pending Recv.
	Close() error
}

// Transport opens datagram ports on behalf of named local nodes. A
// backend may serve one node (udp: this process's identity) or many
// (netsim: every simulated host in the fabric).
type Transport interface {
	// Open binds the node's logical port. Opening a port that is already
	// bound on the same node fails; after Close the port can be rebound.
	Open(node string, port uint16) (Port, error)
}

// Class tags a datagram's scheduling priority at the transport layer.
// Control-plane traffic (totem hellos, membership packets, the token) must
// not queue behind an application-multicast backlog: a heartbeat that
// arrives late because ten thousand dataBatch frames were ahead of it in a
// receive queue reads exactly like a dead peer, which is how provisioning
// storms used to evict healthy members. Backends with a priority lane
// deliver ClassControl datagrams ahead of any queued ClassData ones; loss,
// latency, and fault filters apply to both lanes identically.
type Class uint8

const (
	// ClassData is the default lane: application multicast payloads.
	ClassData Class = iota
	// ClassControl is the priority lane: liveness and membership traffic.
	ClassControl
)

// ClassSender is optionally implemented by Ports that provide a
// control-plane priority lane. Ports without it treat every datagram as
// ClassData (plain FIFO), which is always correct — the lane is a
// scheduling hint, not a delivery guarantee.
type ClassSender interface {
	// SendClass is Send with an explicit scheduling class.
	SendClass(node string, port uint16, payload []byte, class Class) error
}

// SendClass sends via the port's priority lane when the backend has one and
// falls back to plain Send otherwise.
func SendClass(p Port, node string, port uint16, payload []byte, class Class) error {
	if cs, ok := p.(ClassSender); ok {
		return cs.SendClass(node, port, payload, class)
	}
	return p.Send(node, port, payload)
}

// ShardPort is the canonical port layout shared by every backend: shard i
// of a ring pool based at logical port base listens on base+i on every
// node. Keeping the layout a pure function of (base, shard) — and keeping
// it in logical port space, below any backend's real addressing — means
// nodes need no coordination to find each other's shards and fault
// filters can target one shard without knowing which backend carries it.
func ShardPort(base uint16, shard int) uint16 {
	return base + uint16(shard)
}
