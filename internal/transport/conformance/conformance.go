// Package conformance is the executable contract of the transport seam:
// one test suite run against every backend, so the properties the totem
// layer depends on — delivery with sender identity, close-unblocks-recv,
// port rebinding, large datagrams, concurrent senders — are pinned by
// tests instead of by whichever backend happened to come first.
//
// Each backend's own test package calls Run with a factory that builds a
// fresh deployment for the requested node names. The factory returns a
// transport.Transport able to open ports for any of those nodes: the
// netsim fabric does this natively; the udp backend's test wraps one
// single-node Transport per name (see internal/transport/udp tests).
package conformance

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// Factory builds a fresh backend deployment covering the given node
// names. Cleanup is registered on t.
type Factory func(t *testing.T, nodes []string) transport.Transport

// Run executes the full conformance suite against one backend.
func Run(t *testing.T, newBackend Factory) {
	t.Run("Delivery", func(t *testing.T) { testDelivery(t, newBackend) })
	t.Run("Local", func(t *testing.T) { testLocal(t, newBackend) })
	t.Run("PortReuse", func(t *testing.T) { testPortReuse(t, newBackend) })
	t.Run("CloseUnblocksRecv", func(t *testing.T) { testCloseUnblocksRecv(t, newBackend) })
	t.Run("LargeDatagram", func(t *testing.T) { testLargeDatagram(t, newBackend) })
	t.Run("ConcurrentSend", func(t *testing.T) { testConcurrentSend(t, newBackend) })
	t.Run("PriorityLane", func(t *testing.T) { testPriorityLane(t, newBackend) })
	t.Run("BurstAbsorption", func(t *testing.T) { testBurstAbsorption(t, newBackend) })
}

const recvWait = 5 * time.Second

// recvOne runs Recv on its own goroutine with a deadline, copying the
// payload so assertions outlive the next Recv.
func recvOne(t *testing.T, p transport.Port) transport.Datagram {
	t.Helper()
	type res struct {
		dg  transport.Datagram
		err error
	}
	ch := make(chan res, 1)
	go func() {
		dg, err := p.Recv()
		dg.Payload = append([]byte(nil), dg.Payload...)
		ch <- res{dg, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("Recv: %v", r.err)
		}
		return r.dg
	case <-time.After(recvWait):
		t.Fatalf("Recv: no datagram within %v", recvWait)
		return transport.Datagram{}
	}
}

func open(t *testing.T, tp transport.Transport, node string, port uint16) transport.Port {
	t.Helper()
	p, err := tp.Open(node, port)
	if err != nil {
		t.Fatalf("Open(%s,%d): %v", node, port, err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func testDelivery(t *testing.T, newBackend Factory) {
	tp := newBackend(t, []string{"a", "b"})
	pa := open(t, tp, "a", 100)
	pb := open(t, tp, "b", 100)
	payload := []byte("hello from a")
	if err := pa.Send("b", 100, payload); err != nil {
		t.Fatalf("Send: %v", err)
	}
	dg := recvOne(t, pb)
	if dg.From != "a" {
		t.Fatalf("From = %q, want %q", dg.From, "a")
	}
	if !bytes.Equal(dg.Payload, payload) {
		t.Fatalf("Payload = %q, want %q", dg.Payload, payload)
	}
	// The seam's port spaces are per destination port, not per connection:
	// b replies to a different logical port of a.
	pa2 := open(t, tp, "a", 101)
	if err := pb.Send("a", 101, []byte("reply")); err != nil {
		t.Fatalf("Send reply: %v", err)
	}
	if dg := recvOne(t, pa2); dg.From != "b" || string(dg.Payload) != "reply" {
		t.Fatalf("reply = %q from %q", dg.Payload, dg.From)
	}
}

// The suite keeps every logical port below 512 so single-machine backends
// can lay real per-node port ranges side by side (the udp test separates
// peer bases by 512).
func testLocal(t *testing.T, newBackend Factory) {
	tp := newBackend(t, []string{"a"})
	p := open(t, tp, "a", 321)
	node, port := p.Local()
	if node != "a" || port != 321 {
		t.Fatalf("Local() = %q,%d, want a,321", node, port)
	}
}

func testPortReuse(t *testing.T, newBackend Factory) {
	tp := newBackend(t, []string{"a", "b"})
	p, err := tp.Open("a", 200)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Double-bind of a live port must fail.
	if dup, err := tp.Open("a", 200); err == nil {
		dup.Close()
		t.Fatalf("second Open of a live port succeeded")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// After Close the port is rebindable and functional again.
	p2 := open(t, tp, "a", 200)
	pb := open(t, tp, "b", 200)
	if err := pb.Send("a", 200, []byte("again")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if dg := recvOne(t, p2); string(dg.Payload) != "again" {
		t.Fatalf("rebound port got %q", dg.Payload)
	}
}

func testCloseUnblocksRecv(t *testing.T, newBackend Factory) {
	tp := newBackend(t, []string{"a"})
	p, err := tp.Open("a", 300)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := p.Recv()
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let Recv block
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatalf("Recv returned nil error after Close")
		}
	case <-time.After(recvWait):
		t.Fatalf("Recv still blocked %v after Close", recvWait)
	}
	// Recv after Close also errors (no hang, no zero-value success).
	if _, err := p.Recv(); err == nil {
		t.Fatalf("Recv on closed port returned nil error")
	}
}

func testLargeDatagram(t *testing.T, newBackend Factory) {
	tp := newBackend(t, []string{"a", "b"})
	pa := open(t, tp, "a", 400)
	pb := open(t, tp, "b", 400)
	// The totem coalescer packs frames up to MaxFrameBytes (60KiB default);
	// every backend must carry one intact.
	payload := make([]byte, 60<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := pa.Send("b", 400, payload); err != nil {
		t.Fatalf("Send: %v", err)
	}
	dg := recvOne(t, pb)
	if !bytes.Equal(dg.Payload, payload) {
		t.Fatalf("large payload corrupted: got %d bytes", len(dg.Payload))
	}
}

// testPriorityLane pins the control-plane lane contract: a ClassControl
// datagram sent after a pile of data must not wait behind it. Backends
// without a lane (plain Send fallback) still deliver everything, so the
// test first checks delivery, then — only when the backend implements
// transport.ClassSender — asserts the control datagram overtakes the bulk
// of the queued data.
func testPriorityLane(t *testing.T, newBackend Factory) {
	tp := newBackend(t, []string{"a", "b"})
	pa := open(t, tp, "a", 510)
	pb := open(t, tp, "b", 510)

	const backlog = 64
	for i := 0; i < backlog; i++ {
		if err := transport.SendClass(pa, "b", 510, []byte(fmt.Sprintf("data-%d", i)), transport.ClassData); err != nil {
			t.Fatalf("data send %d: %v", i, err)
		}
	}
	if err := transport.SendClass(pa, "b", 510, []byte("ctl"), transport.ClassControl); err != nil {
		t.Fatalf("control send: %v", err)
	}
	// Give an async backend (udp's reader goroutine) time to stage the
	// backlog before the first Recv; netsim queues are synchronous.
	time.Sleep(200 * time.Millisecond)

	_, hasLane := pa.(transport.ClassSender)
	ctlPos := -1
	for i := 0; i < backlog+1; i++ {
		dg := recvOne(t, pb)
		if string(dg.Payload) == "ctl" {
			ctlPos = i
			break
		}
	}
	if ctlPos < 0 {
		t.Fatalf("control datagram never delivered")
	}
	if hasLane && ctlPos > backlog/8 {
		t.Fatalf("control datagram delivered at position %d behind %d queued data (no priority)", ctlPos, backlog)
	}
}

// testBurstAbsorption pins the burst capacity a protocol without
// retransmission (the fixed-sequencer baseline) depends on: a few
// thousand small datagrams sent before the receiver ever calls Recv must
// all arrive. This is the kernel-socket-buffer capacity the UDP backend's
// in-process lanes must preserve — a count-bounded lane sheds exactly
// this workload.
func testBurstAbsorption(t *testing.T, newBackend Factory) {
	tp := newBackend(t, []string{"a", "b"})
	pa := open(t, tp, "a", 509)
	pb := open(t, tp, "b", 509)

	const burst = 3000
	payload := []byte("burst-payload-0123456789abcdef-0123456789abcdef-0123456789")
	for i := 0; i < burst; i++ {
		if err := pa.Send("b", 509, payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < burst; i++ {
		dg := recvOne(t, pb)
		if len(dg.Payload) != len(payload) {
			t.Fatalf("datagram %d: got %d bytes, want %d", i, len(dg.Payload), len(payload))
		}
	}
}

func testConcurrentSend(t *testing.T, newBackend Factory) {
	const senders = 8
	const perSender = 64
	nodes := []string{"rx"}
	for i := 0; i < senders; i++ {
		nodes = append(nodes, fmt.Sprintf("s%d", i))
	}
	tp := newBackend(t, nodes)
	rx := open(t, tp, "rx", 500)

	// Drain concurrently with the sends so no backend-side queue or kernel
	// socket buffer has to hold the full volume.
	type got struct {
		from    string
		payload []byte
	}
	recvd := make(chan got, senders*perSender)
	go func() {
		for {
			dg, err := rx.Recv()
			if err != nil {
				close(recvd)
				return
			}
			recvd <- got{dg.From, append([]byte(nil), dg.Payload...)}
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		name := fmt.Sprintf("s%d", s)
		p := open(t, tp, name, 500)
		wg.Add(1)
		go func(s int, p transport.Port) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				msg := []byte(fmt.Sprintf("s%d/%d|payload-%d", s, i, s*perSender+i))
				if err := p.Send("rx", 500, msg); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}(s, p)
	}
	wg.Wait()

	// Both shipped backends are loss-free in this setting (netsim with no
	// injected loss; loopback UDP with a live reader and bounded volume),
	// so every datagram must arrive intact — corruption or cross-sender
	// interleaving inside one payload would show up here.
	seen := make(map[string]bool)
	deadline := time.After(recvWait)
	for len(seen) < senders*perSender {
		select {
		case g, ok := <-recvd:
			if !ok {
				t.Fatalf("receiver closed early")
			}
			var s, i int
			var rest string
			if _, err := fmt.Sscanf(string(g.payload), "s%d/%d|%s", &s, &i, &rest); err != nil {
				t.Fatalf("corrupt payload %q", g.payload)
			}
			if want := fmt.Sprintf("s%d", s); g.from != want {
				t.Fatalf("payload %q arrived from %q", g.payload, g.from)
			}
			if rest != fmt.Sprintf("payload-%d", s*perSender+i) {
				t.Fatalf("payload %q body mismatch", g.payload)
			}
			seen[string(g.payload)] = true
		case <-deadline:
			t.Fatalf("received %d/%d datagrams within %v", len(seen), senders*perSender, recvWait)
		}
	}
	rx.Close()
}
