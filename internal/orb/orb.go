package orb

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/giop"
	"repro/internal/iiop"
	"repro/internal/ior"
	"repro/internal/netsim"
)

// ClientInterceptor observes and augments outgoing requests and their
// replies — the PortableInterceptor-style hook FT-CORBA implementations use
// to attach FT_REQUEST / FT_GROUP_VERSION service contexts without touching
// application code.
type ClientInterceptor interface {
	// SendRequest may mutate the request (typically appending service
	// contexts). Returning an error aborts the invocation.
	SendRequest(req *giop.Request) error
	// ReceiveReply observes the reply before it reaches the application.
	ReceiveReply(req *giop.Request, rep *giop.Reply)
}

// ServerInterceptor observes and augments inbound dispatch.
type ServerInterceptor interface {
	// ReceiveRequest may inspect the request. Returning a non-nil reply
	// short-circuits dispatch (used for duplicate suppression: answer from
	// the reply log instead of re-executing).
	ReceiveRequest(req *giop.Request) *giop.Reply
	// SendReply may mutate the outgoing reply.
	SendReply(req *giop.Request, rep *giop.Reply)
}

// Config parameterizes an ORB instance.
type Config struct {
	// Node is the fabric node this ORB runs on.
	Node string
	// Fabric is the simulated network (nil means real TCP on 127.0.0.1).
	Fabric *netsim.Fabric
	// Port is the IIOP listen port.
	Port uint16
	// FTDomain tags references exported by this ORB.
	FTDomain string
	// RequestTimeout bounds each remote invocation attempt (default 2s).
	RequestTimeout time.Duration
	// FailoverRetries is how many extra full profile walks an invocation
	// performs after the first walk fails on every profile (default 1;
	// negative disables retries). Retried walks re-dial: failed profiles'
	// cached connections are invalidated via Transport.FailConn.
	FailoverRetries int
	// FailoverBackoff is the base wait between profile walks, doubled per
	// walk with jitter (default 5ms).
	FailoverBackoff time.Duration
}

// ORB is one Object Request Broker instance: an object adapter plus a
// client-side invocation engine.
type ORB struct {
	cfg       Config
	transport *iiop.Transport
	server    *iiop.Server
	listener  net.Listener

	mu       sync.RWMutex
	servants map[string]Servant
	clientIc []ClientInterceptor
	serverIc []ServerInterceptor
	closed   bool
}

// New creates and starts an ORB.
func New(cfg Config) (*ORB, error) {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	if cfg.FailoverRetries == 0 {
		cfg.FailoverRetries = 1
	}
	if cfg.FailoverRetries < 0 {
		cfg.FailoverRetries = 0
	}
	if cfg.FailoverBackoff <= 0 {
		cfg.FailoverBackoff = 5 * time.Millisecond
	}
	o := &ORB{cfg: cfg, servants: make(map[string]Servant)}

	var err error
	var dial iiop.Dialer
	if cfg.Fabric != nil {
		o.listener, err = cfg.Fabric.Listen(cfg.Node, cfg.Port)
		if err != nil {
			return nil, fmt.Errorf("orb: listen: %w", err)
		}
		dial = func(host string, port uint16) (net.Conn, error) {
			return cfg.Fabric.Dial(cfg.Node, host, port)
		}
	} else {
		o.listener, err = net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", cfg.Port))
		if err != nil {
			return nil, fmt.Errorf("orb: listen: %w", err)
		}
		dial = func(host string, port uint16) (net.Conn, error) {
			return net.Dial("tcp", fmt.Sprintf("%s:%d", host, port))
		}
	}
	o.transport = iiop.NewTransport(dial)
	o.server = iiop.NewServer(o.listener, (*orbHandler)(o))
	o.server.Serve()
	return o, nil
}

// Node returns the ORB's node name.
func (o *ORB) Node() string { return o.cfg.Node }

// Port returns the IIOP listen port.
func (o *ORB) Port() uint16 { return o.cfg.Port }

// Transport exposes the client transport (used by the interception layer).
func (o *ORB) Transport() *iiop.Transport { return o.transport }

// AddClientInterceptor appends a client-side interceptor.
func (o *ORB) AddClientInterceptor(ic ClientInterceptor) {
	o.mu.Lock()
	o.clientIc = append(o.clientIc, ic)
	o.mu.Unlock()
}

// AddServerInterceptor appends a server-side interceptor.
func (o *ORB) AddServerInterceptor(ic ServerInterceptor) {
	o.mu.Lock()
	o.serverIc = append(o.serverIc, ic)
	o.mu.Unlock()
}

// ActivateObject registers a servant under an object key and returns its
// reference.
func (o *ORB) ActivateObject(key string, s Servant) *ior.Ref {
	o.mu.Lock()
	o.servants[key] = s
	o.mu.Unlock()
	return ior.New(s.RepoID(), o.cfg.Node, o.cfg.Port, []byte(key))
}

// DeactivateObject removes a servant.
func (o *ORB) DeactivateObject(key string) {
	o.mu.Lock()
	delete(o.servants, key)
	o.mu.Unlock()
}

// ServantFor returns the servant bound to key.
func (o *ORB) ServantFor(key string) (Servant, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	s, ok := o.servants[key]
	return s, ok
}

// DispatchLocal runs a request against the local adapter without the
// network — the replication engine delivers totally ordered invocations
// through this path.
func (o *ORB) DispatchLocal(req *giop.Request, inv *Invocation) *giop.Reply {
	return (*orbHandler)(o).dispatch(req, inv)
}

// Shutdown stops the ORB.
func (o *ORB) Shutdown() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.closed = true
	o.mu.Unlock()
	o.transport.Close()
	o.server.Close()
}

// orbHandler adapts the ORB to iiop.Handler.
type orbHandler ORB

func (h *orbHandler) HandleRequest(req *giop.Request) *giop.Reply {
	return h.dispatch(req, nil)
}

func (h *orbHandler) dispatch(req *giop.Request, inv *Invocation) *giop.Reply {
	o := (*ORB)(h)
	o.mu.RLock()
	serverIc := o.serverIc
	s, ok := o.servants[string(req.ObjectKey)]
	o.mu.RUnlock()

	for _, ic := range serverIc {
		if rep := ic.ReceiveRequest(req); rep != nil {
			return rep
		}
	}

	var rep *giop.Reply
	if !ok {
		rep = &giop.Reply{
			RequestID: req.RequestID,
			Status:    giop.ReplySystemException,
			Body: giop.SystemException{
				RepoID:    giop.ExcObjectNotExist,
				Minor:     1,
				Completed: giop.CompletedNo,
			}.Encode(),
		}
	} else if req.Operation == "_is_alive" {
		// Built-in liveness probe used by PULL fault detectors.
		rep = BuildReply(req.RequestID, nil, nil)
	} else {
		if inv == nil {
			args, err := DecodeRequestBody(req.Body)
			if err != nil {
				rep = BuildReply(req.RequestID, nil, giop.SystemException{
					RepoID: giop.ExcInternal, Minor: 2, Completed: giop.CompletedNo,
				})
			} else {
				inv = &Invocation{Operation: req.Operation, Args: args}
			}
		}
		if rep == nil {
			results, err := s.Dispatch(inv)
			rep = BuildReply(req.RequestID, results, err)
		}
	}

	for _, ic := range serverIc {
		ic.SendReply(req, rep)
	}
	return rep
}

func (h *orbHandler) HandleLocate(req *giop.LocateRequest) *giop.LocateReply {
	o := (*ORB)(h)
	o.mu.RLock()
	_, ok := o.servants[string(req.ObjectKey)]
	o.mu.RUnlock()
	status := giop.LocateUnknown
	if ok {
		status = giop.LocateHere
	}
	return &giop.LocateReply{RequestID: req.RequestID, Status: status}
}
