package orb

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/giop"
	"repro/internal/ior"
	"repro/internal/netsim"
)

func newFabric(t *testing.T, nodes ...string) *netsim.Fabric {
	t.Helper()
	f := netsim.NewFabric(netsim.Config{})
	for _, n := range nodes {
		f.AddNode(n)
	}
	return f
}

func newORB(t *testing.T, f *netsim.Fabric, node string, port uint16) *ORB {
	t.Helper()
	o, err := New(Config{Node: node, Fabric: f, Port: port, RequestTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Shutdown)
	return o
}

func counterServant() *MethodServant {
	var count int64
	return NewMethodServant("IDL:repro/Counter:1.0").
		Define("inc", func(inv *Invocation) ([]cdr.Value, error) {
			n := inv.Args[0].AsLong()
			return []cdr.Value{cdr.Long(int32(atomic.AddInt64(&count, int64(n))))}, nil
		}).
		Define("get", func(inv *Invocation) ([]cdr.Value, error) {
			return []cdr.Value{cdr.Long(int32(atomic.LoadInt64(&count)))}, nil
		}).
		Define("fail", func(inv *Invocation) ([]cdr.Value, error) {
			return nil, &UserException{Name: "IDL:repro/Overflow:1.0", Info: []cdr.Value{cdr.Str("boom")}}
		}).
		Define("broken", func(inv *Invocation) ([]cdr.Value, error) {
			return nil, errors.New("internal failure")
		})
}

func TestRemoteInvocation(t *testing.T) {
	f := newFabric(t, "client", "server")
	srv := newORB(t, f, "server", 8000)
	cli := newORB(t, f, "client", 8001)

	ref := srv.ActivateObject("counter", counterServant())
	proxy := cli.Proxy(ref)

	out, err := proxy.Invoke("inc", cdr.Long(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].AsLong() != 5 {
		t.Fatalf("inc returned %v", out)
	}
	out, err = proxy.Invoke("inc", cdr.Long(3))
	if err != nil || out[0].AsLong() != 8 {
		t.Fatalf("second inc: %v %v", out, err)
	}
}

func TestUserException(t *testing.T) {
	f := newFabric(t, "client", "server")
	srv := newORB(t, f, "server", 8000)
	cli := newORB(t, f, "client", 8001)
	ref := srv.ActivateObject("counter", counterServant())
	_, err := cli.Proxy(ref).Invoke("fail")
	var uexc *UserException
	if !errors.As(err, &uexc) {
		t.Fatalf("got %v, want UserException", err)
	}
	if uexc.Name != "IDL:repro/Overflow:1.0" || uexc.Info[0].AsString() != "boom" {
		t.Errorf("exception = %+v", uexc)
	}
}

func TestSystemExceptions(t *testing.T) {
	f := newFabric(t, "client", "server")
	srv := newORB(t, f, "server", 8000)
	cli := newORB(t, f, "client", 8001)
	ref := srv.ActivateObject("counter", counterServant())

	_, err := cli.Proxy(ref).Invoke("no-such-op")
	var sysExc giop.SystemException
	if !errors.As(err, &sysExc) || sysExc.RepoID != giop.ExcBadOperation {
		t.Errorf("unknown op: got %v", err)
	}

	_, err = cli.Proxy(ref).Invoke("broken")
	if !errors.As(err, &sysExc) || sysExc.RepoID != giop.ExcInternal {
		t.Errorf("internal error: got %v", err)
	}

	badRef := ior.New("IDL:x:1.0", "server", 8000, []byte("missing"))
	_, err = cli.Proxy(badRef).Invoke("get")
	if !errors.As(err, &sysExc) || sysExc.RepoID != giop.ExcObjectNotExist {
		t.Errorf("missing object: got %v", err)
	}
}

func TestNilReference(t *testing.T) {
	f := newFabric(t, "client")
	cli := newORB(t, f, "client", 8001)
	_, err := cli.Proxy(&ior.Ref{}).Invoke("x")
	var sysExc giop.SystemException
	if !errors.As(err, &sysExc) || sysExc.RepoID != giop.ExcObjectNotExist {
		t.Errorf("got %v", err)
	}
}

func TestIsAliveProbe(t *testing.T) {
	f := newFabric(t, "client", "server")
	srv := newORB(t, f, "server", 8000)
	cli := newORB(t, f, "client", 8001)
	ref := srv.ActivateObject("counter", counterServant())
	proxy := cli.Proxy(ref)
	if err := proxy.IsAlive(); err != nil {
		t.Fatalf("IsAlive on live object: %v", err)
	}
	f.CrashNode("server")
	if err := proxy.IsAlive(); err == nil {
		t.Fatal("IsAlive must fail after crash")
	}
}

func TestOneway(t *testing.T) {
	f := newFabric(t, "client", "server")
	srv := newORB(t, f, "server", 8000)
	cli := newORB(t, f, "client", 8001)
	done := make(chan struct{}, 1)
	s := NewMethodServant("IDL:x:1.0").Define("notify", func(inv *Invocation) ([]cdr.Value, error) {
		done <- struct{}{}
		return nil, nil
	})
	ref := srv.ActivateObject("o", s)
	if err := cli.Proxy(ref).InvokeOneway("notify"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("oneway never dispatched")
	}
}

// TestIOGRFailover is the heart of the client-side FT semantics: with a
// group reference whose primary is dead, the proxy must transparently fail
// over to a backup profile.
func TestIOGRFailover(t *testing.T) {
	f := newFabric(t, "client", "s1", "s2")
	o1 := newORB(t, f, "s1", 8000)
	o2 := newORB(t, f, "s2", 8000)
	cli := newORB(t, f, "client", 8001)

	o1.ActivateObject("obj", counterServant())
	o2.ActivateObject("obj", counterServant())

	iogr := ior.NewGroup("IDL:repro/Counter:1.0",
		ior.FTGroup{FTDomainID: "d", GroupID: 1, Version: 1},
		[]ior.GroupMember{
			{Host: "s1", Port: 8000, ObjectKey: []byte("obj"), Primary: true},
			{Host: "s2", Port: 8000, ObjectKey: []byte("obj")},
		})
	proxy := cli.Proxy(iogr)

	if _, err := proxy.Invoke("inc", cdr.Long(1)); err != nil {
		t.Fatalf("pre-crash invoke: %v", err)
	}
	f.CrashNode("s1")
	out, err := proxy.Invoke("inc", cdr.Long(2))
	if err != nil {
		t.Fatalf("failover invoke: %v", err)
	}
	// s2 is an independent (non-state-synchronized) servant here; the point
	// is reachability, not state (state consistency is the replication
	// engine's job, tested there).
	if out[0].AsLong() != 2 {
		t.Errorf("backup state = %v", out[0])
	}
	f.CrashNode("s2")
	if _, err := proxy.Invoke("inc", cdr.Long(1)); !errors.Is(err, ErrAllProfilesFailed) {
		t.Errorf("all dead: got %v", err)
	}
}

// locationForwarder short-circuits every request with LOCATION_FORWARD.
type locationForwarder struct{ target *ior.Ref }

func (l *locationForwarder) ReceiveRequest(req *giop.Request) *giop.Reply {
	return &giop.Reply{
		RequestID: req.RequestID,
		Status:    giop.ReplyLocationForward,
		Body:      ior.Marshal(l.target),
	}
}

func (l *locationForwarder) SendReply(*giop.Request, *giop.Reply) {}

func TestLocationForward(t *testing.T) {
	f := newFabric(t, "client", "agent", "server")
	agent := newORB(t, f, "agent", 8000)
	srv := newORB(t, f, "server", 8000)
	cli := newORB(t, f, "client", 8001)

	realRef := srv.ActivateObject("counter", counterServant())
	agent.ActivateObject("counter", counterServant())
	agent.AddServerInterceptor(&locationForwarder{target: realRef})

	agentRef := ior.New("IDL:repro/Counter:1.0", "agent", 8000, []byte("counter"))
	proxy := cli.Proxy(agentRef)
	out, err := proxy.Invoke("inc", cdr.Long(7))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].AsLong() != 7 {
		t.Errorf("forwarded invoke = %v", out)
	}
	// The proxy must have cached the forwarded reference.
	if proxy.Ref().Profiles[0].Host != "server" {
		t.Errorf("proxy did not adopt forwarded ref: %+v", proxy.Ref().Profiles[0])
	}
}

// recordingInterceptor captures service contexts client-side.
type recordingInterceptor struct {
	sent     atomic.Int64
	received atomic.Int64
}

func (r *recordingInterceptor) SendRequest(req *giop.Request) error {
	req.Contexts = append(req.Contexts, giop.ServiceContext{
		ID:   giop.SvcFTRequest,
		Data: giop.FTRequest{ClientID: "c", RetentionID: uint64(r.sent.Add(1))}.Encode(),
	})
	return nil
}

func (r *recordingInterceptor) ReceiveReply(req *giop.Request, rep *giop.Reply) {
	r.received.Add(1)
}

// contextEcho reflects the FT_REQUEST retention id back in the reply body.
type contextEcho struct{}

func (contextEcho) RepoID() string { return "IDL:repro/CtxEcho:1.0" }
func (contextEcho) Dispatch(inv *Invocation) ([]cdr.Value, error) {
	return nil, errors.New("dispatch must not be reached in this test")
}

func TestClientInterceptorAddsContext(t *testing.T) {
	f := newFabric(t, "client", "server")
	srv := newORB(t, f, "server", 8000)
	cli := newORB(t, f, "client", 8001)

	var gotRetention atomic.Int64
	s := NewMethodServant("IDL:x:1.0").Define("op", func(inv *Invocation) ([]cdr.Value, error) {
		return nil, nil
	})
	srv.AddServerInterceptor(serverCtxReader{&gotRetention})
	ref := srv.ActivateObject("o", s)

	ic := &recordingInterceptor{}
	cli.AddClientInterceptor(ic)
	if _, err := cli.Proxy(ref).Invoke("op"); err != nil {
		t.Fatal(err)
	}
	if gotRetention.Load() != 1 {
		t.Errorf("server saw retention %d, want 1", gotRetention.Load())
	}
	if ic.received.Load() != 1 {
		t.Errorf("ReceiveReply called %d times", ic.received.Load())
	}
}

type serverCtxReader struct{ got *atomic.Int64 }

func (s serverCtxReader) ReceiveRequest(req *giop.Request) *giop.Reply {
	if data := giop.FindContext(req.Contexts, giop.SvcFTRequest); data != nil {
		if ft, err := giop.DecodeFTRequest(data); err == nil {
			s.got.Store(int64(ft.RetentionID))
		}
	}
	return nil
}

func (serverCtxReader) SendReply(*giop.Request, *giop.Reply) {}

func TestDispatchLocal(t *testing.T) {
	f := newFabric(t, "server")
	srv := newORB(t, f, "server", 8000)
	srv.ActivateObject("counter", counterServant())
	req := &giop.Request{
		RequestID: 1,
		ObjectKey: []byte("counter"),
		Operation: "inc",
	}
	rep := srv.DispatchLocal(req, &Invocation{Operation: "inc", Args: []cdr.Value{cdr.Long(4)}})
	out, err := ReplyOutcome(rep)
	if err != nil || out[0].AsLong() != 4 {
		t.Fatalf("local dispatch: %v %v", out, err)
	}
}

func TestMethodServantOperations(t *testing.T) {
	s := counterServant()
	ops := s.Operations()
	want := []string{"broken", "fail", "get", "inc"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v", ops)
		}
	}
	if s.RepoID() != "IDL:repro/Counter:1.0" {
		t.Error("RepoID")
	}
}

func TestReplyRoundTripHelpers(t *testing.T) {
	// NO_EXCEPTION
	rep := BuildReply(1, []cdr.Value{cdr.Str("ok")}, nil)
	out, err := ReplyOutcome(rep)
	if err != nil || out[0].AsString() != "ok" {
		t.Errorf("no-exception helper: %v %v", out, err)
	}
	// User exception
	rep = BuildReply(1, nil, &UserException{Name: "E", Info: []cdr.Value{cdr.Long(2)}})
	_, err = ReplyOutcome(rep)
	var uexc *UserException
	if !errors.As(err, &uexc) || uexc.Info[0].AsLong() != 2 {
		t.Errorf("user exception helper: %v", err)
	}
	// System exception
	rep = BuildReply(1, nil, giop.SystemException{RepoID: giop.ExcTransient, Minor: 3, Completed: giop.CompletedMaybe})
	_, err = ReplyOutcome(rep)
	var sysExc giop.SystemException
	if !errors.As(err, &sysExc) || sysExc.Minor != 3 {
		t.Errorf("system exception helper: %v", err)
	}
	// Unknown status
	if _, err := ReplyOutcome(&giop.Reply{Status: 99}); err == nil {
		t.Error("unknown status must error")
	}
}
