// Package orb implements a miniature Object Request Broker: typed servants
// behind a POA-style object adapter on the server side, and object-reference
// proxies with transparent profile failover on the client side, speaking
// GIOP/IIOP from packages giop and iiop.
//
// This is the unreplicated substrate the fault tolerance layers build on
// (and measure against): the replication engine reuses the Servant model
// for replica dispatch, the interception approach taps the ORB's IIOP
// connections, and the FT-CORBA services are themselves ORB objects.
package orb

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cdr"
	"repro/internal/giop"
	"repro/internal/nondet"
)

// Invocation carries one request through dispatch.
type Invocation struct {
	// Operation is the IDL operation name.
	Operation string
	// Args are the decoded request arguments.
	Args []cdr.Value
	// Det supplies deterministic time/randomness when the servant runs
	// replicated; nil for plain unreplicated dispatch.
	Det *nondet.Context
	// Caller optionally exposes infrastructure context (e.g. the
	// replication engine for nested invocations); nil otherwise.
	Caller any
}

// UserException is an application-level exception carried in a reply
// (CORBA user exceptions, as opposed to system exceptions).
type UserException struct {
	// Name is the exception repository id or symbolic name.
	Name string
	// Info carries exception members.
	Info []cdr.Value
}

// Error implements error.
func (e *UserException) Error() string {
	return fmt.Sprintf("user exception %s", e.Name)
}

// Servant is the implementation of one object (or one replica of one
// object). Dispatch must be deterministic given the same sequence of
// invocations when used with active replication; all nondeterminism must
// come from inv.Det.
type Servant interface {
	// RepoID returns the repository id of the servant's interface.
	RepoID() string
	// Dispatch executes one operation. Returning a *UserException produces
	// a user-exception reply; a giop.SystemException produces a system
	// exception reply; any other error produces a CORBA UNKNOWN-style
	// internal system exception.
	Dispatch(inv *Invocation) ([]cdr.Value, error)
}

// Checkpointable is implemented by servants whose state can be captured and
// restored — required for passive replication, state transfer to new
// replicas, and recovery.
type Checkpointable interface {
	// GetState serializes the full application state.
	GetState() ([]byte, error)
	// SetState replaces the application state.
	SetState([]byte) error
}

// Updatable is optionally implemented by servants that can produce and
// apply incremental updates (postimages), avoiding full-state transfer
// after every operation under warm passive replication.
type Updatable interface {
	// LastUpdate returns the postimage of the most recent operation.
	LastUpdate() ([]byte, error)
	// ApplyUpdate applies a postimage produced by LastUpdate.
	ApplyUpdate([]byte) error
}

// MethodFunc implements one operation.
type MethodFunc func(inv *Invocation) ([]cdr.Value, error)

// MethodServant is a Servant assembled from a method table — the analogue
// of an IDL-generated skeleton.
type MethodServant struct {
	repoID  string
	mu      sync.RWMutex
	methods map[string]MethodFunc
}

var _ Servant = (*MethodServant)(nil)

// NewMethodServant creates an empty skeleton for the given repository id.
func NewMethodServant(repoID string) *MethodServant {
	return &MethodServant{repoID: repoID, methods: make(map[string]MethodFunc)}
}

// Define registers an operation; it returns the servant for chaining.
func (s *MethodServant) Define(op string, fn MethodFunc) *MethodServant {
	s.mu.Lock()
	s.methods[op] = fn
	s.mu.Unlock()
	return s
}

// Operations lists the defined operation names, sorted.
func (s *MethodServant) Operations() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ops := make([]string, 0, len(s.methods))
	for op := range s.methods {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}

// RepoID returns the repository id.
func (s *MethodServant) RepoID() string { return s.repoID }

// Dispatch routes to the method table.
func (s *MethodServant) Dispatch(inv *Invocation) ([]cdr.Value, error) {
	s.mu.RLock()
	fn, ok := s.methods[inv.Operation]
	s.mu.RUnlock()
	if !ok {
		return nil, giop.SystemException{
			RepoID:    giop.ExcBadOperation,
			Minor:     1,
			Completed: giop.CompletedNo,
		}
	}
	return fn(inv)
}

// ErrNoServant is returned when dispatching to an unknown object key.
var ErrNoServant = errors.New("orb: no servant for object key")

// EncodeReplyBody renders result values for a NO_EXCEPTION reply.
func EncodeReplyBody(results []cdr.Value) []byte {
	e := cdr.GetEncoder(cdr.BigEndian)
	cdr.EncodeValues(e, results)
	out := e.TakeBytes()
	e.Release()
	return out
}

// DecodeReplyBody parses a NO_EXCEPTION reply body.
func DecodeReplyBody(body []byte) ([]cdr.Value, error) {
	if len(body) == 0 {
		return nil, nil
	}
	return cdr.DecodeValues(cdr.NewDecoder(body, cdr.BigEndian))
}

// EncodeRequestBody renders request arguments.
func EncodeRequestBody(args []cdr.Value) []byte {
	return EncodeReplyBody(args)
}

// DecodeRequestBody parses request arguments.
func DecodeRequestBody(body []byte) ([]cdr.Value, error) {
	return DecodeReplyBody(body)
}

// EncodeUserException renders a user exception reply body.
func EncodeUserException(exc *UserException) []byte {
	e := cdr.GetEncoder(cdr.BigEndian)
	e.WriteString(exc.Name)
	cdr.EncodeValues(e, exc.Info)
	out := e.TakeBytes()
	e.Release()
	return out
}

// DecodeUserException parses a user exception reply body.
func DecodeUserException(body []byte) (*UserException, error) {
	d := cdr.NewDecoder(body, cdr.BigEndian)
	name, err := d.ReadString()
	if err != nil {
		return nil, fmt.Errorf("orb: user exception name: %w", err)
	}
	info, err := cdr.DecodeValues(d)
	if err != nil {
		return nil, fmt.Errorf("orb: user exception info: %w", err)
	}
	return &UserException{Name: name, Info: info}, nil
}

// BuildReply converts a Dispatch outcome into a GIOP reply: results, user
// exception, or system exception.
func BuildReply(requestID uint32, results []cdr.Value, err error) *giop.Reply {
	switch {
	case err == nil:
		return &giop.Reply{
			RequestID: requestID,
			Status:    giop.ReplyNoException,
			Body:      EncodeReplyBody(results),
		}
	default:
		var uexc *UserException
		if errors.As(err, &uexc) {
			return &giop.Reply{
				RequestID: requestID,
				Status:    giop.ReplyUserException,
				Body:      EncodeUserException(uexc),
			}
		}
		var sysExc giop.SystemException
		if errors.As(err, &sysExc) {
			return &giop.Reply{
				RequestID: requestID,
				Status:    giop.ReplySystemException,
				Body:      sysExc.Encode(),
			}
		}
		return &giop.Reply{
			RequestID: requestID,
			Status:    giop.ReplySystemException,
			Body: giop.SystemException{
				RepoID:    giop.ExcInternal,
				Minor:     0,
				Completed: giop.CompletedMaybe,
			}.Encode(),
		}
	}
}

// ReplyOutcome converts a GIOP reply back into Dispatch form on the client.
func ReplyOutcome(rep *giop.Reply) ([]cdr.Value, error) {
	switch rep.Status {
	case giop.ReplyNoException:
		return DecodeReplyBody(rep.Body)
	case giop.ReplyUserException:
		uexc, err := DecodeUserException(rep.Body)
		if err != nil {
			return nil, err
		}
		return nil, uexc
	case giop.ReplySystemException:
		sysExc, err := giop.DecodeSystemException(rep.Body, cdr.BigEndian)
		if err != nil {
			return nil, err
		}
		return nil, sysExc
	default:
		return nil, fmt.Errorf("orb: unexpected reply status %d", rep.Status)
	}
}
