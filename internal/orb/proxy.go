package orb

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cdr"
	"repro/internal/giop"
	"repro/internal/ior"
)

// ErrAllProfilesFailed is returned when every replica endpoint in an IOGR
// has been tried without success.
var ErrAllProfilesFailed = errors.New("orb: all profiles failed")

// maxForwards bounds LOCATION_FORWARD chains.
const maxForwards = 8

// ObjectRef is a client-side proxy for a (possibly group) object reference.
// Invocations transparently fail over across the reference's profiles and
// follow LOCATION_FORWARD replies — the FT-CORBA client-side failover
// semantics.
type ObjectRef struct {
	orb *ORB
	ref *ior.Ref
}

// Proxy wraps a reference for invocation through this ORB.
func (o *ORB) Proxy(ref *ior.Ref) *ObjectRef {
	return &ObjectRef{orb: o, ref: ref}
}

// Ref returns the (possibly updated, after forwards) reference.
func (p *ObjectRef) Ref() *ior.Ref { return p.ref }

// Invoke performs a twoway invocation.
func (p *ObjectRef) Invoke(op string, args ...cdr.Value) ([]cdr.Value, error) {
	return p.invoke(op, args, true)
}

// InvokeOneway fires a request without waiting for any reply.
func (p *ObjectRef) InvokeOneway(op string, args ...cdr.Value) error {
	_, err := p.invoke(op, args, false)
	return err
}

// IsAlive probes the target with the built-in liveness operation — the
// PULL-style fault monitoring hook.
func (p *ObjectRef) IsAlive() error {
	_, err := p.invoke("_is_alive", nil, true)
	return err
}

func (p *ObjectRef) invoke(op string, args []cdr.Value, twoway bool) ([]cdr.Value, error) {
	if p.ref.IsNil() {
		return nil, giop.SystemException{RepoID: giop.ExcObjectNotExist, Completed: giop.CompletedNo}
	}
	ref := p.ref
	var lastErr error
	for forwards := 0; forwards <= maxForwards; forwards++ {
		// Try the primary profile first, then the others in order — the
		// standard IOGR failover walk. A walk that fails on every profile is
		// repeated up to FailoverRetries times with jittered exponential
		// backoff: transient faults (a failing-over group, a node mid-restart)
		// often resolve within a walk or two, and the backoff keeps a herd of
		// retrying clients from hammering the recovering endpoints in
		// lockstep.
		order := profileOrder(ref)
		for walk := 0; ; walk++ {
			for _, idx := range order {
				prof := &ref.Profiles[idx]
				rep, err := p.invokeProfile(prof, op, args, twoway)
				switch {
				case err == nil && !twoway:
					return nil, nil
				case err == nil && rep.Status == giop.ReplyLocationForward:
					fwd, ferr := ior.Unmarshal(rep.Body)
					if ferr != nil {
						return nil, fmt.Errorf("orb: bad forward reference: %w", ferr)
					}
					ref = fwd
					p.ref = fwd // cache the fresher reference
					goto forwarded
				case err == nil:
					return ReplyOutcome(rep)
				default:
					// Communication failure: declare the profile's cached
					// connection dead (so any later attempt re-dials instead
					// of reusing a wedged stream) and fail over to the next
					// profile.
					lastErr = err
					p.orb.transport.FailConn(prof.Host, prof.Port, err)
				}
			}
			if walk >= p.orb.cfg.FailoverRetries {
				break
			}
			time.Sleep(failoverBackoff(p.orb.cfg.FailoverBackoff, walk))
		}
		if lastErr != nil {
			return nil, fmt.Errorf("%w: %s: last error: %v", ErrAllProfilesFailed, op, lastErr)
		}
		return nil, fmt.Errorf("%w: %s", ErrAllProfilesFailed, op)
	forwarded:
		continue
	}
	return nil, fmt.Errorf("orb: too many forwards invoking %s", op)
}

// failoverBackoff is the wait before retry walk number walk+1: base doubled
// per walk, capped at 8× base, with ±25% jitter.
func failoverBackoff(base time.Duration, walk int) time.Duration {
	d := base << uint(walk)
	if max := 8 * base; d <= 0 || d > max {
		d = max
	}
	jitter := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + jitter
}

func profileOrder(ref *ior.Ref) []int {
	primary := ref.PrimaryIndex()
	order := make([]int, 0, len(ref.Profiles))
	order = append(order, primary)
	for i := range ref.Profiles {
		if i != primary {
			order = append(order, i)
		}
	}
	return order
}

func (p *ObjectRef) invokeProfile(prof *ior.Profile, op string, args []cdr.Value, twoway bool) (*giop.Reply, error) {
	flags := giop.ResponseExpected
	if !twoway {
		flags = giop.ResponseNone
	}
	req := &giop.Request{
		RequestID:     p.orb.transport.NextRequestID(),
		ResponseFlags: flags,
		ObjectKey:     append([]byte(nil), prof.ObjectKey...),
		Operation:     op,
		Body:          EncodeRequestBody(args),
	}
	p.orb.mu.RLock()
	clientIc := p.orb.clientIc
	p.orb.mu.RUnlock()
	for _, ic := range clientIc {
		if err := ic.SendRequest(req); err != nil {
			return nil, err
		}
	}
	rep, err := p.orb.transport.Invoke(prof.Host, prof.Port, req, p.orb.cfg.RequestTimeout)
	if err != nil {
		return nil, err
	}
	if rep != nil {
		for _, ic := range clientIc {
			ic.ReceiveReply(req, rep)
		}
	}
	return rep, nil
}
