// Package mproc runs the replication stack across real OS processes: a
// parent orchestrator spawns one child process per replica node, each
// child re-executes the parent binary with -role node and builds its own
// totem ring pool + replication engine over loopback UDP, and the parent
// itself participates as the client node of the same universe. This is
// the deployment shape of the source paper's system — replicas as
// processes on a real transport — where everything before this package
// ran as goroutines inside one simulation.
//
// Configuration travels to children as JSON in the ConfigEnv environment
// variable (no files, no flags to quote). Readiness is a handshake on
// stdout: a child prints ReadyLine exactly once, after its rings contain
// the full universe and its hosted groups report complete views.
// Shutdown is stdin EOF: when the parent closes the pipe (or dies, which
// closes it too), children stop their stacks and exit — no orphaned
// processes outliving a crashed orchestrator.
package mproc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/orb"
	"repro/internal/replication"
	"repro/internal/totem"
	"repro/internal/transport/udp"
)

// ConfigEnv is the environment variable carrying a child's JSON Config.
const ConfigEnv = "FTBENCH_NODE_CONFIG"

// ReadyLine is the stdout handshake a child prints when its stack is up.
const ReadyLine = "MPROC-READY"

// GroupSpec statically places one object group: with no Replication
// Manager spanning the processes, every process derives the same group
// table from its Config instead of asking an RM.
type GroupSpec struct {
	ID     uint64
	Name   string
	TypeID string
	// Shard pins the group to a transport shard (1-based, like
	// replication.GroupDef.Shard); 0 uses the deterministic hash route.
	Shard int
	// Hosts are the node names hosting a replica.
	Hosts []string
}

// Config is one process's complete view of the deployment. Every process
// (children and the parent's client node) gets the same Universe, Peers,
// and Groups; only Node differs.
type Config struct {
	Node     string
	Universe []string
	Peers    map[string]udp.Peer
	// Shards is the ring-pool width R; BasePort is the logical port of
	// shard 0 (shard i listens on transport.ShardPort(BasePort, i)).
	Shards   int
	BasePort uint16
	// Heartbeat is the totem gossip interval (JSON: nanoseconds).
	Heartbeat time.Duration
	// IdleTokenDelay overrides totem's idle-token pacing (0 keeps the
	// 1ms default; negative disables the hold so the token rotates
	// continuously). The default is tuned for the simulated fabric, where
	// a token rotation is free but the simulation's timers are coarse; on
	// a real transport deployments run eager rotation instead (classic
	// Totem implementations spin the token continuously on real
	// networks), because timer granularity would otherwise floor every
	// idle-start invocation at the host's timer resolution.
	IdleTokenDelay time.Duration
	CallTimeout    time.Duration
	RetryInterval  time.Duration
	Groups         []GroupSpec
}

// Node is one running process's stack: rings over UDP plus the engine.
type Node struct {
	Engine *replication.Engine
	Rings  []*totem.Ring
	cfg    Config
}

// StartNode builds and starts the stack described by cfg in this
// process. servants maps TypeIDs to servant factories for the groups this
// node hosts (may be nil for a pure client node hosting none).
func StartNode(cfg Config, servants map[string]func() orb.Servant) (*Node, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	tp, err := udp.New(cfg.Node, cfg.Peers)
	if err != nil {
		return nil, err
	}
	rings, err := totem.NewRingPool(tp, totem.Config{
		Node:              cfg.Node,
		Universe:          cfg.Universe,
		Port:              cfg.BasePort,
		HeartbeatInterval: cfg.Heartbeat,
		IdleTokenDelay:    cfg.IdleTokenDelay,
	}, cfg.Shards)
	if err != nil {
		return nil, err
	}
	totem.StartPool(rings)
	engine, err := replication.NewEngine(replication.Config{
		Node:          cfg.Node,
		Rings:         rings,
		CallTimeout:   cfg.CallTimeout,
		RetryInterval: cfg.RetryInterval,
	})
	if err != nil {
		totem.StopPool(rings)
		return nil, err
	}
	engine.Start()
	n := &Node{Engine: engine, Rings: rings, cfg: cfg}
	for _, g := range cfg.Groups {
		if !contains(g.Hosts, cfg.Node) {
			continue
		}
		factory, ok := servants[g.TypeID]
		if !ok {
			n.Stop()
			return nil, fmt.Errorf("mproc: no servant factory for %s (group %q)", g.TypeID, g.Name)
		}
		def := replication.GroupDef{
			ID:     g.ID,
			Name:   g.Name,
			TypeID: g.TypeID,
			Style:  replication.Active,
			Shard:  g.Shard,
		}
		// initial=true: all processes host their replicas at startup with
		// identical zero state, before any client traffic exists.
		if err := n.Engine.HostReplica(def, factory(), true); err != nil {
			n.Stop()
			return nil, fmt.Errorf("mproc: host group %q: %w", g.Name, err)
		}
	}
	return n, nil
}

// WaitReady blocks until every ring shard has formed a ring containing
// the full universe and every locally hosted group reports a complete,
// synchronized view.
func (n *Node) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if n.ready() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mproc: node %s did not stabilize within %v", n.cfg.Node, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (n *Node) ready() bool {
	for _, r := range n.Rings {
		id, members := r.CurrentRing()
		if id.IsZero() || len(members) != len(n.cfg.Universe) {
			return false
		}
	}
	for _, g := range n.cfg.Groups {
		if !contains(g.Hosts, n.cfg.Node) {
			continue
		}
		st, hosted := n.Engine.GroupStatus(g.ID)
		if !hosted || st.Syncing || len(st.Members) != len(g.Hosts) {
			return false
		}
	}
	return true
}

// Stop shuts the stack down (engine first, then rings, like core).
func (n *Node) Stop() {
	n.Engine.Stop()
	totem.StopPool(n.Rings)
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// --- child side ----------------------------------------------------------

// ChildMain is the whole lifecycle of an `-role node` child process: read
// Config from the environment, start the stack, handshake readiness on
// stdout, then serve until stdin reaches EOF. It returns the process exit
// code.
func ChildMain(servants map[string]func() orb.Servant) int {
	// A replica child is a dedicated process with a small, bounded live
	// heap (group state + retransmission windows); the default GC target
	// makes it collect many times per second under multicast load. Trade
	// a few MB of heap for most of that CPU back — unless the operator
	// set GOGC explicitly, which the runtime already honored.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(300)
	}
	raw := os.Getenv(ConfigEnv)
	if raw == "" {
		fmt.Fprintf(os.Stderr, "mproc: %s not set\n", ConfigEnv)
		return 2
	}
	var cfg Config
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mproc: bad %s: %v\n", ConfigEnv, err)
		return 2
	}
	n, err := StartNode(cfg, servants)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mproc: %s: %v\n", cfg.Node, err)
		return 1
	}
	defer n.Stop()
	if err := n.WaitReady(30 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "mproc: %v\n", err)
		return 1
	}
	fmt.Println(ReadyLine)
	// Serve until the parent closes our stdin (clean stop) or dies (the
	// pipe closes with it).
	io.Copy(io.Discard, os.Stdin)
	return 0
}

// --- parent side ---------------------------------------------------------

// Child is one spawned replica process.
type Child struct {
	Node  string
	cmd   *exec.Cmd
	stdin io.WriteCloser
	ready <-chan error
}

// Spawn re-executes the current binary as `-role node` for the given node
// name, with cfg (Node overridden) in the environment. The child's stderr
// passes through; its stdout is scanned for the readiness handshake.
func Spawn(cfg Config, node string) (*Child, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cfg.Node = node
	raw, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe, "-role", "node")
	cmd.Env = append(os.Environ(), ConfigEnv+"="+string(raw))
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	ready := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) == ReadyLine {
				ready <- nil
				// Keep draining so the child never blocks on stdout.
				for sc.Scan() {
				}
				return
			}
		}
		ready <- fmt.Errorf("mproc: child %s exited before %s", node, ReadyLine)
	}()
	return &Child{Node: node, cmd: cmd, stdin: stdin, ready: ready}, nil
}

// AwaitReady blocks until the child's readiness handshake or the timeout.
func (c *Child) AwaitReady(timeout time.Duration) error {
	select {
	case err := <-c.ready:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("mproc: child %s not ready within %v", c.Node, timeout)
	}
}

// Stop asks the child to exit (stdin EOF) and waits, killing it if it
// ignores the request.
func (c *Child) Stop() {
	c.stdin.Close()
	done := make(chan struct{})
	go func() {
		c.cmd.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		c.cmd.Process.Kill()
		<-done
	}
}

// StopAll stops children in parallel-safe sequence (stdin EOFs first so
// they wind down concurrently, then waits).
func StopAll(children []*Child) {
	for _, c := range children {
		c.stdin.Close()
	}
	for _, c := range children {
		c.Stop()
	}
}
