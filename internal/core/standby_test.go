package core_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/drstore"
	"repro/internal/ftcorba"
	"repro/internal/orb"
	"repro/internal/replication"
)

// counter is a Checkpointable accumulator: "add" folds the argument in and
// returns the running sum plus the op count, "get" just reads them.
type counter struct {
	mu  sync.Mutex
	sum int64
	ops int64
}

func (c *counter) RepoID() string { return "IDL:repro/StandbyCounter:1.0" }

func (c *counter) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if inv.Operation == "add" {
		c.sum += int64(inv.Args[0].AsLong())
		c.ops++
	}
	return []cdr.Value{cdr.LongLong(c.sum), cdr.LongLong(c.ops)}, nil
}

func (c *counter) GetState() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(c.sum)
	e.WriteLongLong(c.ops)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (c *counter) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	sum, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	ops, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.sum, c.ops = sum, ops
	c.mu.Unlock()
	return nil
}

const counterType = "IDL:repro/StandbyCounter:1.0"

// TestStandbyPromotion is the disaster-recovery end-to-end: a primary
// domain ships to a store while serving each stateful replication style,
// dies completely, and a warm standby promotes every group with no
// acknowledged operation lost (cold-passive and warm-passive ship before
// the client ack, active ships before execution) and exactly-once
// preserved for continued traffic.
func TestStandbyPromotion(t *testing.T) {
	store := drstore.NewMemStore()
	defer store.Close()

	primary, err := core.NewDomain(core.Options{
		Nodes:     []string{"p1", "p2"},
		Heartbeat: 4 * time.Millisecond,
		DRStore:   store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Stop()
	if err := primary.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := primary.RegisterFactory(counterType, func() orb.Servant { return &counter{} }); err != nil {
		t.Fatal(err)
	}

	styles := []replication.Style{replication.ColdPassive, replication.WarmPassive, replication.Active}
	gids := make([]uint64, len(styles))
	for i, style := range styles {
		_, gid, err := primary.Create("g", counterType, &ftcorba.Properties{
			ReplicationStyle:      style,
			InitialNumberReplicas: 2,
			CheckpointInterval:    4, // several compactions over 10 ops
		})
		if err != nil {
			t.Fatalf("%v: create: %v", style, err)
		}
		if err := primary.WaitGroupReady(gid, 2, 5*time.Second); err != nil {
			t.Fatalf("%v: ready: %v", style, err)
		}
		gids[i] = gid
	}

	const ops = 10
	var wantSum int64
	for i := 1; i <= ops; i++ {
		wantSum += int64(i)
	}
	for i, gid := range gids {
		p, err := primary.Proxy("p2", gid)
		if err != nil {
			t.Fatal(err)
		}
		for v := 1; v <= ops; v++ {
			out, err := p.Invoke("add", cdr.Long(int32(v)))
			if err != nil {
				t.Fatalf("%v: add(%d): %v", styles[i], v, err)
			}
			if v == ops && out[0].AsLongLong() != wantSum {
				t.Fatalf("%v: primary sum = %d, want %d", styles[i], out[0].AsLongLong(), wantSum)
			}
		}
	}

	standby, err := core.NewStandby(core.StandbyOptions{
		Domain: core.Options{
			Nodes:     []string{"s1", "s2"},
			Heartbeat: 4 * time.Millisecond,
		},
		Store:     store,
		Factories: map[string]ftcorba.Factory{counterType: func() orb.Servant { return &counter{} }},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Stop()
	if err := standby.Domain().WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Whole-domain outage, then promotion.
	primary.Stop()
	res, err := standby.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != len(gids) {
		t.Fatalf("promoted %d groups (%v skipped: %v), want %d", len(res.Groups), res.Groups, res.Skipped, len(gids))
	}
	if err := standby.WaitPromoted(res, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	for i, gid := range gids {
		p, err := standby.Proxy("s1", gid)
		if err != nil {
			t.Fatal(err)
		}
		out, err := p.Invoke("get")
		if err != nil {
			t.Fatalf("%v: standby get: %v", styles[i], err)
		}
		if got := out[0].AsLongLong(); got != wantSum {
			t.Errorf("%v: RPO violation: standby sum = %d, want %d (acked ops lost)", styles[i], got, wantSum)
		}
		if got := out[1].AsLongLong(); got != ops {
			t.Errorf("%v: standby ops = %d, want %d (lost or double-executed)", styles[i], got, ops)
		}
		// Continued service with exactly-once: new operations apply once.
		out, err = p.Invoke("add", cdr.Long(100))
		if err != nil {
			t.Fatalf("%v: post-promotion add: %v", styles[i], err)
		}
		if got := out[0].AsLongLong(); got != wantSum+100 {
			t.Errorf("%v: post-promotion sum = %d, want %d", styles[i], got, wantSum+100)
		}
		if got := out[1].AsLongLong(); got != ops+1 {
			t.Errorf("%v: post-promotion ops = %d, want %d", styles[i], got, ops+1)
		}
	}

	// Double promotion must fail loudly.
	if _, err := standby.Promote(); err == nil {
		t.Error("second Promote succeeded")
	}
}

// TestStandbySkipsUnknownType verifies a shipped group with no registered
// factory is reported rather than silently dropped or fatal.
func TestStandbySkipsUnknownType(t *testing.T) {
	store := drstore.NewMemStore()
	defer store.Close()
	if err := store.PutMeta(drstore.Meta{GroupID: 9, Name: "x", TypeID: "IDL:unknown:1.0", Style: uint8(replication.ColdPassive)}); err != nil {
		t.Fatal(err)
	}

	standby, err := core.NewStandby(core.StandbyOptions{
		Domain:    core.Options{Nodes: []string{"s1"}, Heartbeat: 4 * time.Millisecond},
		Store:     store,
		Factories: map[string]ftcorba.Factory{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Stop()
	res, err := standby.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 || res.Skipped[9] == "" {
		t.Fatalf("result = %+v, want group 9 skipped with a reason", res)
	}
}
