package core_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/orb"
	"repro/internal/replication"
)

type slot struct {
	mu sync.Mutex
	v  int64
}

func (s *slot) RepoID() string { return "IDL:repro/Slot:1.0" }

func (s *slot) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if inv.Operation == "set" {
		s.v = int64(inv.Args[0].AsLong())
	}
	return []cdr.Value{cdr.LongLong(s.v)}, nil
}

func (s *slot) GetState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(s.v)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (s *slot) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	v, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.v = v
	s.mu.Unlock()
	return nil
}

func TestDomainLifecycle(t *testing.T) {
	d, err := core.NewDomain(core.Options{
		Nodes:     []string{"a", "b", "c"},
		Heartbeat: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := d.Nodes(); len(got) != 3 || got[0] != "a" {
		t.Fatalf("Nodes = %v", got)
	}
	if d.Node("a") == nil || d.Node("zz") != nil {
		t.Error("Node lookup broken")
	}

	if err := d.RegisterFactory("IDL:repro/Slot:1.0", func() orb.Servant { return &slot{} }); err != nil {
		t.Fatal(err)
	}
	_, gid, err := d.Create("slot", "IDL:repro/Slot:1.0", &ftcorba.Properties{
		ReplicationStyle:      replication.WarmPassive,
		InitialNumberReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WaitGroupReady(gid, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	p, err := d.Proxy("c", gid)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Invoke("set", cdr.Long(11))
	if err != nil || out[0].AsLongLong() != 11 {
		t.Fatalf("set: %v %v", out, err)
	}

	if _, err := d.Proxy("zz", gid); !errors.Is(err, core.ErrUnknownClientNode) {
		t.Errorf("unknown client: %v", err)
	}

	// Crash + double stop are safe.
	d.CrashNode("b")
	d.CrashNode("b")
	d.Stop()
	d.Stop()
}

func TestDomainDefaults(t *testing.T) {
	d, err := core.NewDomain(core.Options{Heartbeat: 4 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if len(d.Nodes()) != 3 {
		t.Fatalf("default nodes = %v", d.Nodes())
	}
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}
