package core_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/orb"
	"repro/internal/replication"
)

// TestShardedDomain drives several independent groups across a multi-ring
// domain: hash-routed and explicitly pinned groups, invocations from a
// non-hosting node, and a crash/restart cycle of a whole ring pool.
func TestShardedDomain(t *testing.T) {
	d, err := core.NewDomain(core.Options{
		Nodes:     []string{"a", "b", "c", "cl"},
		Heartbeat: 4 * time.Millisecond,
		Shards:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	workers := []string{"a", "b", "c"}
	if err := d.RegisterFactory("IDL:repro/Slot:1.0", func() orb.Servant { return &slot{} }, workers...); err != nil {
		t.Fatal(err)
	}

	// Group 1..4 hash-route; group 5 is pinned to shard 2 explicitly.
	var gids []uint64
	for i := 0; i < 4; i++ {
		_, gid, err := d.Create(fmt.Sprintf("g%d", i), "IDL:repro/Slot:1.0", &ftcorba.Properties{
			ReplicationStyle:      replication.Active,
			InitialNumberReplicas: 3,
			MembershipStyle:       ftcorba.MembershipApplication,
		})
		if err != nil {
			t.Fatal(err)
		}
		gids = append(gids, gid)
	}
	_, pinned, err := d.Create("pinned", "IDL:repro/Slot:1.0", &ftcorba.Properties{
		ReplicationStyle:      replication.Active,
		InitialNumberReplicas: 3,
		MembershipStyle:       ftcorba.MembershipApplication,
		Shard:                 3, // 1-based: ring index 2
	})
	if err != nil {
		t.Fatal(err)
	}
	gids = append(gids, pinned)
	if shard, ok := d.RM.ShardOf(pinned); !ok || shard != 2 {
		t.Fatalf("ShardOf(pinned) = %d, %v; want 2, true", shard, ok)
	}
	if _, ok := d.RM.ShardOf(gids[0]); ok {
		t.Fatal("hash-routed group should not report an explicit shard")
	}
	for _, gid := range gids {
		if err := d.WaitGroupReady(gid, 3, 10*time.Second); err != nil {
			t.Fatalf("group %d: %v", gid, err)
		}
	}

	// Concurrent traffic to every group from the client node.
	var wg sync.WaitGroup
	errs := make(chan error, len(gids))
	for i, gid := range gids {
		wg.Add(1)
		go func(i int, gid uint64) {
			defer wg.Done()
			p, err := d.Proxy("cl", gid)
			if err != nil {
				errs <- err
				return
			}
			for k := 0; k < 5; k++ {
				want := int64(100*i + k)
				out, err := p.Invoke("set", cdr.Long(int32(want)))
				if err != nil {
					errs <- fmt.Errorf("group %d: %w", gid, err)
					return
				}
				if got := out[0].AsLongLong(); got != want {
					errs <- fmt.Errorf("group %d: got %d want %d", gid, got, want)
					return
				}
			}
		}(i, gid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Crash and restart a whole pool; the domain must re-stabilize on
	// every shard and keep serving all groups.
	d.CrashNode("c")
	if err := d.RestartNode("c"); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	p, err := d.Proxy("cl", pinned)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := p.Invoke("set", cdr.Long(777)); err != nil || out[0].AsLongLong() != 777 {
		t.Fatalf("post-restart invoke: %v %v", out, err)
	}
}

// TestShardForDeterminism pins down the router contract: pure function,
// full range, stable single-shard degenerate case.
func TestShardForDeterminism(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7} {
		seen := make(map[int]bool)
		for gid := uint64(1); gid <= 64; gid++ {
			s := replication.ShardFor(gid, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardFor(%d, %d) = %d out of range", gid, shards, s)
			}
			if s != replication.ShardFor(gid, shards) {
				t.Fatalf("ShardFor(%d, %d) unstable", gid, shards)
			}
			seen[s] = true
		}
		if len(seen) != shards {
			t.Fatalf("ShardFor with %d shards only used %d of them over 64 gids", shards, len(seen))
		}
	}
}
