package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/drstore"
	"repro/internal/ftcorba"
	"repro/internal/orb"
	"repro/internal/replication"
)

// StandbyOptions configures a cross-domain warm standby.
type StandbyOptions struct {
	// Domain configures the standby's own FT domain (its own fabric, rings,
	// and engines — fully independent of the primary domain's).
	Domain Options
	// Store is the disaster-recovery store the primary domain ships into
	// (the same Store value, or a DirStore over the same directory).
	Store drstore.Store
	// SyncInterval paces the background staging loop (default 25ms).
	SyncInterval time.Duration
	// Factories maps repository type ids to servant factories. A shipped
	// group whose TypeID has no factory here cannot be staged and is
	// skipped (reported by Promote).
	Factories map[string]ftcorba.Factory
}

// Standby is the warm-standby half of the disaster-recovery tier: a second
// core.Domain that continuously consumes the checkpoints and log segments
// the primary domain ships into a drstore.Store, keeping one staged servant
// per group hot. After the primary domain is declared dead, Promote()
// re-hosts every staged group on the standby's engines with the shipped
// duplicate-suppression windows seeded, preserving exactly-once semantics
// for every operation a shipped checkpoint or segment covers.
//
// The staged servants live outside any engine until promotion: staging is
// pure replay (replication.ApplyRecord per shipped record), so the standby
// adds no traffic to the primary domain and no ordering constraints of its
// own. Promotion starts a fresh ring lineage — shipped message ids are not
// comparable to the standby's — so exactly-once rests entirely on the
// operation keys, exactly like the crash-restart rejoin path.
type Standby struct {
	opts   StandbyOptions
	domain *Domain

	mu       sync.Mutex
	staged   map[uint64]*stagedGroup
	skipped  map[uint64]string // gid → reason (no factory, store error)
	promoted bool
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// stagedGroup is one group's warm state between shipments.
type stagedGroup struct {
	def     replication.GroupDef
	servant orb.Servant
	lastCp  uint64 // UpToMsgID of the installed checkpoint (0 = none)
	applied uint64 // highest shipped update MsgID applied to the servant
	// covered accumulates the duplicate-suppression window: the last
	// checkpoint's window plus every invocation record applied after it.
	// Installing a newer checkpoint resets it to that checkpoint's window,
	// which keeps it bounded by the shipping compaction policy.
	covered    []drstore.OpRef
	coveredSet map[drstore.OpRef]bool
}

// NewStandby builds the standby domain and starts the background staging
// loop.
func NewStandby(opts StandbyOptions) (*Standby, error) {
	if opts.Store == nil {
		return nil, errors.New("core: standby requires a Store")
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 25 * time.Millisecond
	}
	d, err := NewDomain(opts.Domain)
	if err != nil {
		return nil, fmt.Errorf("core: standby domain: %w", err)
	}
	s := &Standby{
		opts:    opts,
		domain:  d,
		staged:  make(map[uint64]*stagedGroup),
		skipped: make(map[uint64]string),
		stopCh:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.syncLoop()
	return s, nil
}

// Domain exposes the standby's underlying domain (tests and proxies).
func (s *Standby) Domain() *Domain { return s.domain }

func (s *Standby) syncLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			_ = s.SyncOnce()
		}
	}
}

// SyncOnce performs one staging pass: every shipped group's new checkpoint
// and segment records are applied to its staged servant. It is idempotent
// and safe to call concurrently with the background loop.
func (s *Standby) SyncOnce() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return nil
	}
	gids, err := s.opts.Store.Groups()
	if err != nil {
		return err
	}
	var first error
	for _, gid := range gids {
		if err := s.syncGroupLocked(gid); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Standby) syncGroupLocked(gid uint64) error {
	snap, ok, err := s.opts.Store.Snapshot(gid)
	if err != nil || !ok {
		return err
	}
	g, exists := s.staged[gid]
	if !exists {
		if _, alreadySkipped := s.skipped[gid]; alreadySkipped {
			return nil
		}
		factory, have := s.opts.Factories[snap.Meta.TypeID]
		if !have {
			s.skipped[gid] = fmt.Sprintf("no factory for %q", snap.Meta.TypeID)
			return nil
		}
		g = &stagedGroup{
			def: replication.GroupDef{
				ID:                   snap.Meta.GroupID,
				Name:                 snap.Meta.Name,
				TypeID:               snap.Meta.TypeID,
				Style:                replication.Style(snap.Meta.Style),
				CheckpointEvery:      snap.Meta.CheckpointEvery,
				CheckpointEveryBytes: snap.Meta.CheckpointEveryBytes,
				Shard:                snap.Meta.Shard,
			},
			servant:    factory(),
			coveredSet: make(map[drstore.OpRef]bool),
		}
		s.staged[gid] = g
	}

	// A newer checkpoint supersedes everything staged so far: install its
	// state and restart the covered window from its shipped dedup window.
	if cp := snap.Checkpoint; cp != nil && cp.UpToMsgID > g.lastCp && cp.UpToMsgID >= g.applied {
		ck, checkpointable := g.servant.(orb.Checkpointable)
		if !checkpointable {
			return fmt.Errorf("core: standby group %d: checkpoint shipped but servant is not Checkpointable", gid)
		}
		if err := ck.SetState(cp.State); err != nil {
			return fmt.Errorf("core: standby group %d: install checkpoint: %w", gid, err)
		}
		g.lastCp = cp.UpToMsgID
		g.applied = cp.UpToMsgID
		g.covered = append(g.covered[:0], cp.Covered...)
		g.coveredSet = make(map[drstore.OpRef]bool, len(cp.Covered))
		for _, ref := range cp.Covered {
			g.coveredSet[ref] = true
		}
	}

	for _, rec := range snap.Updates {
		if rec.MsgID <= g.applied {
			continue
		}
		ref, isInv, applied := replication.ApplyRecord(g.def, g.servant, rec)
		if !applied {
			continue
		}
		if isInv && !g.coveredSet[ref] {
			g.coveredSet[ref] = true
			g.covered = append(g.covered, ref)
		}
		g.applied = rec.MsgID
	}
	return nil
}

// PromoteResult reports what a promotion recovered.
type PromoteResult struct {
	// Groups maps every promoted group id to the standby node now hosting
	// it.
	Groups map[uint64]string
	// Skipped maps group ids that could not be promoted to the reason.
	Skipped map[uint64]string
}

// Promote declares the primary domain dead and takes over: the staging
// loop stops, one final staging pass drains the store, and every staged
// group is re-hosted on the standby's engines (groups round-robin across
// the standby's nodes, each with its shipped dedup window seeded via
// Engine.HostRecoveredReplica). After Promote returns, Proxy serves the
// recovered groups.
func (s *Standby) Promote() (PromoteResult, error) {
	s.mu.Lock()
	if s.promoted {
		s.mu.Unlock()
		return PromoteResult{}, errors.New("core: standby already promoted")
	}
	s.mu.Unlock()
	close(s.stopCh)
	s.wg.Wait()
	if err := s.SyncOnce(); err != nil {
		return PromoteResult{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.promoted = true
	res := PromoteResult{
		Groups:  make(map[uint64]string, len(s.staged)),
		Skipped: make(map[uint64]string, len(s.skipped)),
	}
	for gid, reason := range s.skipped {
		res.Skipped[gid] = reason
	}
	nodes := s.domain.Nodes()
	if len(nodes) == 0 {
		return res, errors.New("core: standby domain has no nodes")
	}
	// Deterministic placement order so repeated recoveries land alike.
	gids := make([]uint64, 0, len(s.staged))
	for gid := range s.staged {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for i, gid := range gids {
		g := s.staged[gid]
		target := s.domain.Node(nodes[i%len(nodes)])
		if target == nil {
			res.Skipped[gid] = "standby node down"
			continue
		}
		var state []byte
		if ck, ok := g.servant.(orb.Checkpointable); ok {
			state, _ = ck.GetState()
		}
		if err := target.Engine.HostRecoveredReplica(g.def, g.servant, state, g.covered); err != nil {
			res.Skipped[gid] = err.Error()
			continue
		}
		res.Groups[gid] = target.Name
	}
	return res, nil
}

// WaitPromoted blocks until every promoted group's replica reports an
// operational singleton view (ready to serve), or the timeout elapses.
func (s *Standby) WaitPromoted(res PromoteResult, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for gid, nodeName := range res.Groups {
		n := s.domain.Node(nodeName)
		if n == nil {
			return fmt.Errorf("core: standby node %s vanished", nodeName)
		}
		for {
			st, hosted := n.Engine.GroupStatus(gid)
			if hosted && !st.Syncing && len(st.Members) == 1 {
				break
			}
			if !time.Now().Before(deadline) {
				return fmt.Errorf("core: promoted group %d not ready on %s", gid, nodeName)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

// Proxy builds a proxy for a promoted group from a standby node. Shipped
// explicit shard pins are clamped into the standby's (possibly smaller)
// ring pool and applied to the proxy — the standby's Replication Manager
// knows nothing about recovered groups, so Domain.Proxy's automatic pin
// lookup cannot help here.
func (s *Standby) Proxy(fromNode string, gid uint64, opts ...replication.ProxyOption) (*replication.Proxy, error) {
	s.mu.Lock()
	g, ok := s.staged[gid]
	s.mu.Unlock()
	if ok && g.def.Shard > 0 {
		pin := g.def.Shard - 1
		if shards := s.domain.opts.Shards; pin >= shards {
			pin = shards - 1
		}
		opts = append([]replication.ProxyOption{replication.WithShard(pin)}, opts...)
	}
	return s.domain.Proxy(fromNode, gid, opts...)
}

// Stop shuts the standby down (staging loop and domain). Safe to call
// whether or not Promote ran.
func (s *Standby) Stop() {
	s.mu.Lock()
	alreadyPromoted := s.promoted
	s.mu.Unlock()
	if !alreadyPromoted {
		select {
		case <-s.stopCh:
		default:
			close(s.stopCh)
		}
	}
	s.wg.Wait()
	s.domain.Stop()
}
