// Package core assembles the full fault-tolerant CORBA stack into an FT
// domain: a simulated network fabric, one Totem ring endpoint + replication
// engine (+ optionally an ORB) per node, a fault notifier, and a
// Replication Manager administering object groups.
//
// It is the one-call construction path used by the examples, the demo
// binaries, and the experiment harness; the root package re-exports its
// API.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/drstore"
	"repro/internal/fault"
	"repro/internal/ftcorba"
	"repro/internal/ior"
	"repro/internal/netsim"
	"repro/internal/orb"
	"repro/internal/replication"
	"repro/internal/totem"
	"repro/internal/transport"
)

// Options configures a Domain.
type Options struct {
	// Domain is the FT domain name (default "ft-domain").
	Domain string
	// Nodes are the host names to create (default n1..n3).
	Nodes []string
	// Net configures the simulated network.
	Net netsim.Config
	// Transport, when set, carries the Totem ring traffic instead of the
	// simulated fabric (e.g. a udp.Cluster for real loopback sockets). It
	// must be able to open ports for every node name in Nodes. The fabric
	// still exists for the ORB/IIOP side, and the fault-injection methods
	// (Partition, Heal, CrashNode's network isolation) only affect fabric
	// traffic — chaos experiments need the default netsim transport.
	Transport transport.Transport
	// IdleTokenDelay overrides totem's idle-token pacing on every ring
	// the domain builds: 0 keeps totem's default hold (right for the
	// simulated fabric, whose timers bound CPU spin), negative disables
	// the hold so the token rotates continuously (right for real-socket
	// transports, where any timer-based hold floors idle-start latency
	// at the host's timer resolution).
	IdleTokenDelay time.Duration
	// Heartbeat is the Totem gossip interval; all protocol timeouts derive
	// from it (default 5ms — laptop-scale; raise for slow machines).
	Heartbeat time.Duration
	// Shards is the number of independent Totem rings each node runs
	// (default 1 — today's single-ring wire behaviour, byte for byte).
	// With R>1, shard i occupies port baseRingPort+i on every node and
	// each object group's traffic lives entirely on one shard, so
	// independent groups stop sharing a token rotation.
	Shards int
	// ORBPort, when nonzero, additionally starts a plain ORB per node on
	// this port (used by the interception and service approaches).
	ORBPort uint16
	// CallTimeout bounds replicated invocations (default 10s).
	CallTimeout time.Duration
	// RetryInterval is the invocation retransmission period (default 1s).
	RetryInterval time.Duration
	// DRStore, when set, is the disaster-recovery shipping target wired
	// into every node's replication engine: senior members ship group
	// definitions, checkpoints, and update records there so a Standby
	// built over the same store can take over after this domain dies.
	DRStore drstore.Store
}

func (o *Options) fill() {
	if o.Domain == "" {
		o.Domain = "ft-domain"
	}
	if len(o.Nodes) == 0 {
		o.Nodes = []string{"n1", "n2", "n3"}
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 5 * time.Millisecond
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = time.Second
	}
}

// BaseRingPort is the logical transport port of ring shard 0; shard i
// listens on BaseRingPort+i (totem.ShardPort). Exported so out-of-process
// deployments and real-socket backends can reserve the same logical
// window without depending on this package's construction path.
const BaseRingPort = 4000

// Node bundles one host's protocol endpoints.
type Node struct {
	Name   string
	Ring   *totem.Ring   // shard 0 (kept for single-ring callers)
	Rings  []*totem.Ring // the full transport pool, Rings[0] == Ring
	Engine *replication.Engine
	ORB    *orb.ORB // nil unless Options.ORBPort was set
}

// Domain is a running FT domain.
type Domain struct {
	opts     Options
	Fabric   *netsim.Fabric
	Notifier *fault.Notifier
	RM       *ftcorba.ReplicationManager
	nodes    map[string]*Node
	order    []string
	stopped  bool
}

// NewDomain builds and starts a domain.
func NewDomain(opts Options) (*Domain, error) {
	opts.fill()
	d := &Domain{
		opts:     opts,
		Fabric:   netsim.NewFabric(opts.Net),
		Notifier: &fault.Notifier{},
		RM:       ftcorba.NewReplicationManager(opts.Domain),
		nodes:    make(map[string]*Node),
		order:    append([]string(nil), opts.Nodes...),
	}
	for _, n := range opts.Nodes {
		d.Fabric.AddNode(n)
	}
	for _, name := range opts.Nodes {
		node, err := d.startNode(name)
		if err != nil {
			d.Stop()
			return nil, err
		}
		d.nodes[name] = node
	}
	d.RM.ConsumeFaults(d.Notifier)
	return d, nil
}

func (d *Domain) startNode(name string) (*Node, error) {
	var tp transport.Transport = d.Fabric
	if d.opts.Transport != nil {
		tp = d.opts.Transport
	}
	rings, err := totem.NewRingPool(tp, totem.Config{
		Node:              name,
		Universe:          d.opts.Nodes,
		Port:              BaseRingPort,
		HeartbeatInterval: d.opts.Heartbeat,
		IdleTokenDelay:    d.opts.IdleTokenDelay,
		Faults:            d.Notifier,
	}, d.opts.Shards)
	if err != nil {
		return nil, fmt.Errorf("core: ring pool on %s: %w", name, err)
	}
	totem.StartPool(rings)
	engine, err := replication.NewEngine(replication.Config{
		Node:          name,
		Rings:         rings,
		Notifier:      d.Notifier,
		CallTimeout:   d.opts.CallTimeout,
		RetryInterval: d.opts.RetryInterval,
		DR:            d.opts.DRStore,
	})
	if err != nil {
		totem.StopPool(rings)
		return nil, fmt.Errorf("core: engine on %s: %w", name, err)
	}
	engine.Start()
	node := &Node{Name: name, Ring: rings[0], Rings: rings, Engine: engine}
	if d.opts.ORBPort != 0 {
		node.ORB, err = orb.New(orb.Config{
			Node:     name,
			Fabric:   d.Fabric,
			Port:     d.opts.ORBPort,
			FTDomain: d.opts.Domain,
		})
		if err != nil {
			engine.Stop()
			totem.StopPool(rings)
			return nil, fmt.Errorf("core: orb on %s: %w", name, err)
		}
	}
	d.RM.RegisterNode(name, engine, d.opts.ORBPort)
	return node, nil
}

// Node returns the named node (nil if unknown or crashed-and-removed).
func (d *Domain) Node(name string) *Node { return d.nodes[name] }

// Nodes lists node names in creation order.
func (d *Domain) Nodes() []string { return append([]string(nil), d.order...) }

// Stop shuts the whole domain down.
func (d *Domain) Stop() {
	if d.stopped {
		return
	}
	d.stopped = true
	d.RM.Stop()
	for _, n := range d.nodes {
		if n.ORB != nil {
			n.ORB.Shutdown()
		}
		n.Engine.Stop()
		totem.StopPool(n.Rings)
	}
}

// CrashNode fail-stops a node: network isolation plus local stack
// shutdown. The node cannot be restarted (create a fresh domain member via
// the Replication Manager's recovery instead).
func (d *Domain) CrashNode(name string) {
	n, ok := d.nodes[name]
	if !ok {
		return
	}
	d.Fabric.CrashNode(name)
	if n.ORB != nil {
		n.ORB.Shutdown()
	}
	n.Engine.Stop()
	totem.StopPool(n.Rings)
	delete(d.nodes, name)
}

// RestartNode brings a crashed node back: network reattachment, a fresh
// protocol stack, and re-registration with the Replication Manager (which
// replaces the dead incarnation's engine but keeps the node's servant
// factories, so the manager can recruit it again).
func (d *Domain) RestartNode(name string) error {
	if _, ok := d.nodes[name]; ok {
		return fmt.Errorf("core: node %s is already running", name)
	}
	known := false
	for _, n := range d.order {
		if n == name {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("core: unknown node %s", name)
	}
	d.Fabric.RestartNode(name)
	node, err := d.startNode(name)
	if err != nil {
		return err
	}
	d.nodes[name] = node
	return nil
}

// Partition splits the network (see netsim.Fabric.Partition).
func (d *Domain) Partition(groups ...[]string) { d.Fabric.Partition(groups...) }

// Heal removes all partitions.
func (d *Domain) Heal() { d.Fabric.Heal() }

// RegisterFactory installs a servant factory for a type on the given nodes
// (all nodes when none specified).
func (d *Domain) RegisterFactory(typeID string, f ftcorba.Factory, on ...string) error {
	if len(on) == 0 {
		on = d.order
	}
	for _, node := range on {
		if err := d.RM.RegisterFactory(node, typeID, f); err != nil {
			return err
		}
	}
	return nil
}

// Create creates a replicated object group via the Replication Manager.
func (d *Domain) Create(name, typeID string, props *ftcorba.Properties) (*ior.Ref, uint64, error) {
	return d.RM.CreateObjectGroup(name, typeID, props)
}

// ErrUnknownClientNode is returned by Proxy for an unregistered node.
var ErrUnknownClientNode = errors.New("core: unknown client node")

// Proxy builds a group proxy issuing invocations from the given node. When
// the Replication Manager records an explicit shard placement for the
// group, the proxy is pinned to it so clients and replicas agree on the
// transport ring (hash-routed groups need no pin: every engine computes
// the same route).
func (d *Domain) Proxy(fromNode string, gid uint64, opts ...replication.ProxyOption) (*replication.Proxy, error) {
	n, ok := d.nodes[fromNode]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownClientNode, fromNode)
	}
	if shard, pinned := d.RM.ShardOf(gid); pinned {
		opts = append([]replication.ProxyOption{replication.WithShard(shard)}, opts...)
	}
	// LEADER_FOLLOWER groups get the direct lane automatically: writes
	// unicast to the leader, the recorded read-only operations are served
	// from replica-local state under read leases. Caller options follow, so
	// an explicit WithLFAttemptTimeout (etc.) still applies.
	if ops, lf := d.RM.LFReadOps(gid); lf {
		opts = append([]replication.ProxyOption{replication.WithLFFastPath(ops...)}, opts...)
	}
	return n.Engine.Proxy(replication.GroupRef{ID: gid}, opts...), nil
}

// WaitReady blocks until every node agrees on one ring containing all live
// nodes, or the timeout elapses.
func (d *Domain) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if d.ringsAgree() {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return errors.New("core: domain did not stabilize")
}

func (d *Domain) ringsAgree() bool {
	// Every shard must independently stabilize: for each shard index all
	// nodes agree on one ring id containing every live node.
	for shard := 0; shard < d.opts.Shards; shard++ {
		var ref totem.RingID
		first := true
		for _, n := range d.nodes {
			id, members := n.Rings[shard].CurrentRing()
			if id.IsZero() || len(members) != len(d.nodes) {
				return false
			}
			if first {
				ref = id
				first = false
			} else if id != ref {
				return false
			}
		}
	}
	return true
}

// WaitGroupReady blocks until every hosting member of the group reports a
// synchronized view with the expected member count.
func (d *Domain) WaitGroupReady(gid uint64, replicas int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if d.groupReady(gid, replicas) {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("core: group %d did not reach %d ready replicas", gid, replicas)
}

func (d *Domain) groupReady(gid uint64, replicas int) bool {
	members, err := d.RM.Members(gid)
	if err != nil || len(members) != replicas {
		return false
	}
	for _, m := range members {
		n, ok := d.nodes[m]
		if !ok {
			return false
		}
		st, hosted := n.Engine.GroupStatus(gid)
		if !hosted || st.Syncing || len(st.Members) != replicas {
			return false
		}
	}
	return true
}
