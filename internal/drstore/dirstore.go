package drstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cdr"
	"repro/internal/wal"
)

// DirStore is the durable Store: one subdirectory per group holding the
// shipped meta, the latest checkpoint, and a framed segment file of the
// updates appended since it. The checkpoint write is the durability point
// (temp file + fsync + rename), after which the covered prefix of the
// segment file is compacted away — exactly the recovery contract the local
// FileLog keeps, lifted to a location a standby can read.
//
// A full in-memory mirror backs reads, so Snapshot never touches the disk;
// OpenDirStore rebuilds the mirror from the files (tolerating a torn
// segment tail the same way FileLog does: keep the intact prefix).
type DirStore struct {
	mu     sync.Mutex
	dir    string
	groups map[uint64]*groupState
	segs   map[uint64]*os.File // open segment files, one per group
	closed bool
}

var _ Store = (*DirStore)(nil)

// File names inside a group directory.
const (
	metaFile = "meta"
	ckptFile = "ckpt"
	segFile  = "updates.seg"
)

// OpenDirStore opens (or creates) a directory-backed store and loads every
// group found under it.
func OpenDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("drstore: mkdir: %w", err)
	}
	s := &DirStore{
		dir:    dir,
		groups: make(map[uint64]*groupState),
		segs:   make(map[uint64]*os.File),
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("drstore: scan: %w", err)
	}
	for _, ent := range ents {
		if !ent.IsDir() || !strings.HasPrefix(ent.Name(), "g") {
			continue
		}
		gid, perr := strconv.ParseUint(ent.Name()[1:], 10, 64)
		if perr != nil {
			continue
		}
		if lerr := s.loadGroup(gid); lerr != nil {
			s.Close()
			return nil, lerr
		}
	}
	return s, nil
}

func (s *DirStore) groupDir(gid uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("g%d", gid))
}

func (s *DirStore) loadGroup(gid uint64) error {
	g := &groupState{}
	gdir := s.groupDir(gid)
	if b, err := os.ReadFile(filepath.Join(gdir, metaFile)); err == nil {
		m, derr := decodeMeta(b)
		if derr != nil {
			return fmt.Errorf("drstore: group %d meta: %w", gid, derr)
		}
		g.meta = m
	}
	if b, err := os.ReadFile(filepath.Join(gdir, ckptFile)); err == nil {
		cp, derr := decodeCheckpoint(b)
		if derr != nil {
			return fmt.Errorf("drstore: group %d checkpoint: %w", gid, derr)
		}
		g.cp = cp
		g.haveCp = true
		g.lastMsg = cp.UpToMsgID
	}
	f, err := os.OpenFile(filepath.Join(gdir, segFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("drstore: group %d segment: %w", gid, err)
	}
	good, err := readFrames(f, func(body []byte) error {
		rec, derr := decodeUpdate(body)
		if derr != nil {
			return derr
		}
		if rec.MsgID > g.lastMsg {
			g.updates = append(g.updates, rec)
			g.lastMsg = rec.MsgID
		}
		return nil
	})
	if err != nil {
		f.Close()
		return fmt.Errorf("drstore: group %d segment: %w", gid, err)
	}
	// Torn tail (a shipper died mid-write): keep the intact prefix and
	// truncate so new frames don't land after garbage.
	if terr := f.Truncate(good); terr != nil {
		f.Close()
		return fmt.Errorf("drstore: group %d truncate: %w", gid, terr)
	}
	if _, serr := f.Seek(good, io.SeekStart); serr != nil {
		f.Close()
		return fmt.Errorf("drstore: group %d seek: %w", gid, serr)
	}
	s.groups[gid] = g
	s.segs[gid] = f
	return nil
}

// ensureGroup creates the group's directory and segment file on first use.
func (s *DirStore) ensureGroup(gid uint64) (*groupState, error) {
	if g, ok := s.groups[gid]; ok {
		return g, nil
	}
	if err := os.MkdirAll(s.groupDir(gid), 0o755); err != nil {
		return nil, fmt.Errorf("drstore: mkdir group: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(s.groupDir(gid), segFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("drstore: open segment: %w", err)
	}
	g := &groupState{}
	s.groups[gid] = g
	s.segs[gid] = f
	return g, nil
}

// writeFileSync writes a small file durably: temp + fsync + rename.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// PutMeta registers a group definition.
func (s *DirStore) PutMeta(m Meta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	g, err := s.ensureGroup(m.GroupID)
	if err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(s.groupDir(m.GroupID), metaFile), encodeMeta(m)); err != nil {
		return fmt.Errorf("drstore: write meta: %w", err)
	}
	g.meta = m
	return nil
}

// PutCheckpoint ships a snapshot: durable checkpoint write, then segment
// compaction.
func (s *DirStore) PutCheckpoint(gid uint64, cp Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	g, err := s.ensureGroup(gid)
	if err != nil {
		return err
	}
	if !g.acceptCheckpoint(cp) {
		return nil
	}
	if err := writeFileSync(filepath.Join(s.groupDir(gid), ckptFile), encodeCheckpoint(g.cp)); err != nil {
		return fmt.Errorf("drstore: write checkpoint: %w", err)
	}
	return s.rewriteSegment(gid, g)
}

// rewriteSegment replaces the group's segment file with the retained
// updates (compaction after an accepted checkpoint).
func (s *DirStore) rewriteSegment(gid uint64, g *groupState) error {
	f := s.segs[gid]
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("drstore: compact: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("drstore: compact seek: %w", err)
	}
	for _, u := range g.updates {
		if _, err := f.Write(frame(encodeUpdate(u))); err != nil {
			return fmt.Errorf("drstore: compact write: %w", err)
		}
	}
	return nil
}

// AppendUpdate ships one update record.
func (s *DirStore) AppendUpdate(gid uint64, rec wal.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	g, err := s.ensureGroup(gid)
	if err != nil {
		return err
	}
	if !g.acceptUpdate(rec) {
		return nil
	}
	if _, err := s.segs[gid].Write(frame(encodeUpdate(rec))); err != nil {
		return fmt.Errorf("drstore: append: %w", err)
	}
	return nil
}

// Snapshot returns a group's shipped state from the in-memory mirror.
func (s *DirStore) Snapshot(gid uint64) (Snapshot, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Snapshot{}, false, ErrClosed
	}
	g, ok := s.groups[gid]
	if !ok {
		return Snapshot{}, false, nil
	}
	return g.snapshot(), true, nil
}

// Groups lists shipped group ids, sorted.
func (s *DirStore) Groups() ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make([]uint64, 0, len(s.groups))
	for gid := range s.groups {
		out = append(out, gid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Close syncs and closes every segment file.
func (s *DirStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, f := range s.segs {
		if err := f.Sync(); err != nil && first == nil {
			first = err
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- framing and codecs -----------------------------------------------------

// frame length-prefixes one encoded body (4-byte big-endian), the same
// convention the local FileLog uses.
func frame(body []byte) []byte {
	out := make([]byte, 4+len(body))
	out[0] = byte(len(body) >> 24)
	out[1] = byte(len(body) >> 16)
	out[2] = byte(len(body) >> 8)
	out[3] = byte(len(body))
	copy(out[4:], body)
	return out
}

// readFrames streams length-prefixed bodies from the file's start, stopping
// cleanly at EOF or a torn/undecodable tail. It returns the byte offset of
// the end of the last intact frame.
func readFrames(f *os.File, visit func(body []byte) error) (good int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
			return good, nil // EOF or torn length prefix: stop at the prefix
		}
		n := uint32(lenBuf[0])<<24 | uint32(lenBuf[1])<<16 | uint32(lenBuf[2])<<8 | uint32(lenBuf[3])
		body := make([]byte, n)
		if _, err := io.ReadFull(f, body); err != nil {
			return good, nil // torn body
		}
		if err := visit(body); err != nil {
			return good, nil // corrupt tail
		}
		good += int64(4 + n)
	}
}

func encodeMeta(m Meta) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteULongLong(m.GroupID)
	e.WriteString(m.Name)
	e.WriteString(m.TypeID)
	e.WriteOctet(m.Style)
	e.WriteLongLong(int64(m.CheckpointEvery))
	e.WriteLongLong(int64(m.CheckpointEveryBytes))
	e.WriteLongLong(int64(m.Shard))
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func decodeMeta(b []byte) (Meta, error) {
	var m Meta
	d := cdr.NewDecoder(b, cdr.BigEndian)
	var err error
	if m.GroupID, err = d.ReadULongLong(); err != nil {
		return m, err
	}
	if m.Name, err = d.ReadString(); err != nil {
		return m, err
	}
	if m.TypeID, err = d.ReadString(); err != nil {
		return m, err
	}
	if m.Style, err = d.ReadOctet(); err != nil {
		return m, err
	}
	var v int64
	if v, err = d.ReadLongLong(); err != nil {
		return m, err
	}
	m.CheckpointEvery = int(v)
	if v, err = d.ReadLongLong(); err != nil {
		return m, err
	}
	m.CheckpointEveryBytes = int(v)
	if v, err = d.ReadLongLong(); err != nil {
		return m, err
	}
	m.Shard = int(v)
	return m, nil
}

func encodeCheckpoint(cp Checkpoint) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteULongLong(cp.UpToMsgID)
	e.WriteOctetSeq(cp.State)
	e.WriteULong(uint32(len(cp.Covered)))
	for _, k := range cp.Covered {
		e.WriteString(k.ClientID)
		e.WriteULongLong(k.ParentSeq)
		e.WriteULongLong(k.OpSeq)
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func decodeCheckpoint(b []byte) (Checkpoint, error) {
	var cp Checkpoint
	d := cdr.NewDecoder(b, cdr.BigEndian)
	var err error
	if cp.UpToMsgID, err = d.ReadULongLong(); err != nil {
		return cp, err
	}
	if cp.State, err = d.ReadOctetSeq(); err != nil {
		return cp, err
	}
	var n uint32
	if n, err = d.ReadULong(); err != nil {
		return cp, err
	}
	cp.Covered = make([]OpRef, n)
	for i := range cp.Covered {
		if cp.Covered[i].ClientID, err = d.ReadString(); err != nil {
			return cp, err
		}
		if cp.Covered[i].ParentSeq, err = d.ReadULongLong(); err != nil {
			return cp, err
		}
		if cp.Covered[i].OpSeq, err = d.ReadULongLong(); err != nil {
			return cp, err
		}
	}
	return cp, nil
}

func encodeUpdate(rec wal.Record) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(byte(rec.Kind))
	e.WriteULongLong(rec.MsgID)
	e.WriteString(rec.Op)
	e.WriteOctetSeq(rec.Data)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func decodeUpdate(b []byte) (wal.Record, error) {
	var rec wal.Record
	d := cdr.NewDecoder(b, cdr.BigEndian)
	k, err := d.ReadOctet()
	if err != nil {
		return rec, err
	}
	rec.Kind = wal.Kind(k)
	if rec.Kind != wal.KindCheckpoint && rec.Kind != wal.KindUpdate {
		return rec, fmt.Errorf("drstore: bad record kind %d", k)
	}
	if rec.MsgID, err = d.ReadULongLong(); err != nil {
		return rec, err
	}
	if rec.Op, err = d.ReadString(); err != nil {
		return rec, err
	}
	if rec.Data, err = d.ReadOctetSeq(); err != nil {
		return rec, err
	}
	return rec, nil
}
