// Package drstore is the disaster-recovery shipping seam: a pluggable
// store of per-group checkpoints and log segments that decouples what a
// warm standby consumes from where the primary domain's replicas keep
// their local write-ahead logs.
//
// The replication engine's senior members ship three things per group: the
// group's definition (Meta — shipped once at hosting so even traffic-free
// groups can be re-hosted), full-state checkpoints carrying the sender's
// duplicate-suppression window (Checkpoint — the exactly-once anchor), and
// the update records appended since the last checkpoint (invocation logs
// for cold-passive and DR-enabled active groups, state deltas for warm
// passive). A standby domain (core.Standby) replays Snapshot() per group
// to keep a staged servant warm, and promotes from it after the primary
// domain dies.
//
// Stores are idempotent and self-compacting: an update at or below the
// last shipped MsgID is dropped (retransmission after primary failover
// inside the source domain), a checkpoint older than the stored one is
// dropped, and an accepted checkpoint discards the updates it covers. That
// makes shipping safe to retry and bounds the store to one checkpoint plus
// one checkpoint interval of updates per group.
package drstore

import (
	"errors"
	"sort"
	"sync"

	"repro/internal/wal"
)

// Meta is the shipped group definition — everything a standby domain needs
// to re-host the group without access to the source Replication Manager.
type Meta struct {
	GroupID              uint64
	Name                 string
	TypeID               string
	Style                uint8 // replication.Style value
	CheckpointEvery      int
	CheckpointEveryBytes int
	Shard                int // 1-based explicit pin, 0 = hash-routed
}

// OpRef identifies one logical operation for duplicate suppression across
// domains (the exported mirror of replication's operation key).
type OpRef struct {
	ClientID  string
	ParentSeq uint64
	OpSeq     uint64
}

// Checkpoint is one shipped full-state snapshot.
type Checkpoint struct {
	// UpToMsgID is the ordered message id the state reflects (source-domain
	// ring lineage; meaningless in the standby's lineage — promotion relies
	// on Covered, not on msgID comparison).
	UpToMsgID uint64
	State     []byte
	// Covered is the sender's duplicate-suppression window at snapshot
	// time: operations whose effects State already includes. A promoted
	// replica seeds its dedup table from it so a client retransmission
	// cannot re-execute an acknowledged operation on the standby.
	Covered []OpRef
}

// Snapshot is a group's complete shipped history: the latest checkpoint
// (nil if none shipped yet) plus the updates appended after it, oldest
// first.
type Snapshot struct {
	Meta       Meta
	Checkpoint *Checkpoint
	Updates    []wal.Record
}

// Store is the shipping interface. Implementations must be safe for
// concurrent use: every node of the source domain may ship while a standby
// reads.
type Store interface {
	// PutMeta registers (or refreshes) a group definition.
	PutMeta(m Meta) error
	// PutCheckpoint ships a full-state snapshot, superseding any older one
	// and compacting away the updates it covers.
	PutCheckpoint(gid uint64, cp Checkpoint) error
	// AppendUpdate ships one update record (dropped when stale).
	AppendUpdate(gid uint64, rec wal.Record) error
	// Snapshot returns a group's shipped state (ok=false if unknown).
	Snapshot(gid uint64) (Snapshot, bool, error)
	// Groups lists shipped group ids, sorted.
	Groups() ([]uint64, error)
	// Close releases resources.
	Close() error
}

// ErrClosed is returned on use after Close.
var ErrClosed = errors.New("drstore: store closed")

// groupState is one group's in-memory shipped state (shared by MemStore
// and DirStore's cache).
type groupState struct {
	meta    Meta
	haveCp  bool
	cp      Checkpoint
	updates []wal.Record
	lastMsg uint64 // highest update MsgID accepted (0 = none yet)
}

// acceptUpdate applies the staleness rule; reports whether rec was taken.
func (g *groupState) acceptUpdate(rec wal.Record) bool {
	if rec.MsgID <= g.lastMsg || (g.haveCp && rec.MsgID <= g.cp.UpToMsgID) {
		return false
	}
	rec.Data = append([]byte(nil), rec.Data...)
	g.updates = append(g.updates, rec)
	g.lastMsg = rec.MsgID
	return true
}

// acceptCheckpoint applies the supersession rule; reports whether cp won.
func (g *groupState) acceptCheckpoint(cp Checkpoint) bool {
	if g.haveCp && cp.UpToMsgID < g.cp.UpToMsgID {
		return false
	}
	cp.State = append([]byte(nil), cp.State...)
	cp.Covered = append([]OpRef(nil), cp.Covered...)
	g.cp = cp
	g.haveCp = true
	kept := g.updates[:0]
	for _, u := range g.updates {
		if u.MsgID > cp.UpToMsgID {
			kept = append(kept, u)
		}
	}
	g.updates = kept
	if g.lastMsg < cp.UpToMsgID {
		g.lastMsg = cp.UpToMsgID
	}
	return true
}

func (g *groupState) snapshot() Snapshot {
	s := Snapshot{Meta: g.meta}
	if g.haveCp {
		cp := Checkpoint{
			UpToMsgID: g.cp.UpToMsgID,
			State:     append([]byte(nil), g.cp.State...),
			Covered:   append([]OpRef(nil), g.cp.Covered...),
		}
		s.Checkpoint = &cp
	}
	s.Updates = make([]wal.Record, len(g.updates))
	for i, u := range g.updates {
		u.Data = append([]byte(nil), u.Data...)
		s.Updates[i] = u
	}
	return s
}

// --- MemStore ---------------------------------------------------------------

// MemStore is the in-memory Store (tests, benchmarks, and same-process
// standby domains). The zero value is not usable; call NewMemStore.
type MemStore struct {
	mu     sync.Mutex
	groups map[uint64]*groupState
	closed bool
}

var _ Store = (*MemStore)(nil)

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{groups: make(map[uint64]*groupState)}
}

func (s *MemStore) group(gid uint64) *groupState {
	g, ok := s.groups[gid]
	if !ok {
		g = &groupState{}
		s.groups[gid] = g
	}
	return g
}

// PutMeta registers a group definition.
func (s *MemStore) PutMeta(m Meta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.group(m.GroupID).meta = m
	return nil
}

// PutCheckpoint ships a snapshot.
func (s *MemStore) PutCheckpoint(gid uint64, cp Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.group(gid).acceptCheckpoint(cp)
	return nil
}

// AppendUpdate ships one update record.
func (s *MemStore) AppendUpdate(gid uint64, rec wal.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.group(gid).acceptUpdate(rec)
	return nil
}

// Snapshot returns a group's shipped state.
func (s *MemStore) Snapshot(gid uint64) (Snapshot, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Snapshot{}, false, ErrClosed
	}
	g, ok := s.groups[gid]
	if !ok {
		return Snapshot{}, false, nil
	}
	return g.snapshot(), true, nil
}

// Groups lists shipped group ids, sorted.
func (s *MemStore) Groups() ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make([]uint64, 0, len(s.groups))
	for gid := range s.groups {
		out = append(out, gid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Close marks the store closed.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
