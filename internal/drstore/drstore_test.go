package drstore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/wal"
)

func upd(msgID uint64, op string, data []byte) wal.Record {
	return wal.Record{Kind: wal.KindUpdate, MsgID: msgID, Op: op, Data: data}
}

// exercise drives one store through the idempotence + compaction contract.
func exercise(t *testing.T, s Store) {
	t.Helper()
	meta := Meta{GroupID: 7, Name: "acct", TypeID: "IDL:x:1.0", Style: 5, CheckpointEvery: 8, CheckpointEveryBytes: 1 << 16, Shard: 2}
	if err := s.PutMeta(meta); err != nil {
		t.Fatalf("PutMeta: %v", err)
	}
	for _, m := range []uint64{3, 4, 5} {
		if err := s.AppendUpdate(7, upd(m, "inv:add", []byte{byte(m)})); err != nil {
			t.Fatalf("AppendUpdate(%d): %v", m, err)
		}
	}
	// Duplicate and stale appends must be dropped.
	if err := s.AppendUpdate(7, upd(5, "inv:add", []byte{99})); err != nil {
		t.Fatalf("dup append: %v", err)
	}
	if err := s.AppendUpdate(7, upd(2, "inv:add", []byte{2})); err != nil {
		t.Fatalf("stale append: %v", err)
	}
	snap, ok, err := s.Snapshot(7)
	if err != nil || !ok {
		t.Fatalf("Snapshot: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(snap.Meta, meta) {
		t.Fatalf("meta mismatch: %+v vs %+v", snap.Meta, meta)
	}
	if snap.Checkpoint != nil {
		t.Fatalf("unexpected checkpoint before PutCheckpoint")
	}
	if len(snap.Updates) != 3 || snap.Updates[0].MsgID != 3 || snap.Updates[2].MsgID != 5 {
		t.Fatalf("updates = %+v, want msgIDs 3,4,5", snap.Updates)
	}

	// Checkpoint at 4 compacts updates ≤ 4 and keeps 5.
	cp := Checkpoint{UpToMsgID: 4, State: []byte("state@4"), Covered: []OpRef{{ClientID: "c1", ParentSeq: 1, OpSeq: 2}}}
	if err := s.PutCheckpoint(7, cp); err != nil {
		t.Fatalf("PutCheckpoint: %v", err)
	}
	snap, _, _ = s.Snapshot(7)
	if snap.Checkpoint == nil || snap.Checkpoint.UpToMsgID != 4 {
		t.Fatalf("checkpoint = %+v, want UpToMsgID 4", snap.Checkpoint)
	}
	if string(snap.Checkpoint.State) != "state@4" || len(snap.Checkpoint.Covered) != 1 || snap.Checkpoint.Covered[0].ClientID != "c1" {
		t.Fatalf("checkpoint content = %+v", snap.Checkpoint)
	}
	if len(snap.Updates) != 1 || snap.Updates[0].MsgID != 5 {
		t.Fatalf("post-compaction updates = %+v, want only msgID 5", snap.Updates)
	}

	// An older checkpoint (failover retransmission) must be dropped.
	if err := s.PutCheckpoint(7, Checkpoint{UpToMsgID: 3, State: []byte("old")}); err != nil {
		t.Fatalf("old checkpoint: %v", err)
	}
	snap, _, _ = s.Snapshot(7)
	if string(snap.Checkpoint.State) != "state@4" {
		t.Fatalf("older checkpoint overwrote newer: %q", snap.Checkpoint.State)
	}

	// Updates at or below the checkpoint stay dropped even with lastMsg reset.
	if err := s.AppendUpdate(7, upd(4, "inv:add", []byte{4})); err != nil {
		t.Fatalf("covered append: %v", err)
	}
	snap, _, _ = s.Snapshot(7)
	if len(snap.Updates) != 1 {
		t.Fatalf("covered update accepted: %+v", snap.Updates)
	}

	if _, ok, err := s.Snapshot(12345); ok || err != nil {
		t.Fatalf("unknown group: ok=%v err=%v", ok, err)
	}
	gids, err := s.Groups()
	if err != nil || len(gids) != 1 || gids[0] != 7 {
		t.Fatalf("Groups = %v, %v", gids, err)
	}
}

func TestMemStoreContract(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	exercise(t, s)
}

func TestDirStoreContract(t *testing.T) {
	s, err := OpenDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	exercise(t, s)
}

// TestDirStoreReopen verifies a reopened store serves the shipped state,
// including meta, checkpoint, covered window, and post-checkpoint updates.
func TestDirStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDirStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	exercise(t, s)
	before, _, _ := s.Snapshot(7)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, err := OpenDirStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	after, ok, err := s2.Snapshot(7)
	if err != nil || !ok {
		t.Fatalf("reopen snapshot: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("snapshot changed across reopen:\nbefore %+v\nafter  %+v", before, after)
	}
	// Idempotence survives reopen: re-shipping the covered update is a no-op.
	if err := s2.AppendUpdate(7, upd(5, "inv:add", []byte{5})); err != nil {
		t.Fatalf("reship: %v", err)
	}
	again, _, _ := s2.Snapshot(7)
	if len(again.Updates) != len(after.Updates) {
		t.Fatalf("reshipped duplicate accepted after reopen")
	}
}

// TestDirStoreTornSegmentTail verifies a half-written segment frame (shipper
// crash mid-write) loses only that frame on reopen, not the whole segment.
func TestDirStoreTornSegmentTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDirStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.PutMeta(Meta{GroupID: 1, Name: "g"}); err != nil {
		t.Fatalf("meta: %v", err)
	}
	for _, m := range []uint64{1, 2, 3} {
		if err := s.AppendUpdate(1, upd(m, "inv:op", []byte("payload"))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	s.Close()

	seg := filepath.Join(dir, "g1", segFile)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Tear the last frame in half and follow it with a bogus length prefix.
	if err := os.WriteFile(seg, append(b[:len(b)-5], 0xFF, 0xFF, 0xFF, 0x01), 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}

	s2, err := OpenDirStore(dir)
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	defer s2.Close()
	snap, ok, _ := s2.Snapshot(1)
	if !ok || len(snap.Updates) != 2 || snap.Updates[1].MsgID != 2 {
		t.Fatalf("torn tail: updates = %+v, want msgIDs 1,2", snap.Updates)
	}
	// New appends after the truncation must be readable on the next open.
	if err := s2.AppendUpdate(1, upd(3, "inv:op", []byte("re-shipped"))); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	s2.Close()
	s3, err := OpenDirStore(dir)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer s3.Close()
	snap, _, _ = s3.Snapshot(1)
	if len(snap.Updates) != 3 || string(snap.Updates[2].Data) != "re-shipped" {
		t.Fatalf("post-truncate append lost: %+v", snap.Updates)
	}
}
