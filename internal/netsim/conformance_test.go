package netsim_test

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
)

// TestTransportConformance runs the shared transport contract suite
// against the fabric backend: one fabric serves every node name.
func TestTransportConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T, nodes []string) transport.Transport {
		f := netsim.NewFabric(netsim.Config{Seed: 1})
		for _, n := range nodes {
			f.AddNode(n)
		}
		return f
	})
}
