package netsim

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func newTestFabric(t *testing.T, cfg Config, nodes ...string) *Fabric {
	t.Helper()
	f := NewFabric(cfg)
	for _, n := range nodes {
		f.AddNode(n)
	}
	return f
}

func TestStreamRoundTrip(t *testing.T) {
	f := newTestFabric(t, Config{}, "a", "b")
	l, err := f.Listen("b", 9000)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := c.Write(bytes.ToUpper(buf)); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()

	c, err := f.Dial("a", "b", 9000)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "HELLO" {
		t.Fatalf("got %q", buf)
	}
	wg.Wait()
}

func TestStreamLatency(t *testing.T) {
	const lat = 20 * time.Millisecond
	f := newTestFabric(t, Config{Latency: lat}, "a", "b")
	l, _ := f.Listen("b", 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		c.Write([]byte("x"))
	}()
	c, err := f.Dial("a", "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < lat {
		t.Errorf("read completed in %v, want >= %v", got, lat)
	}
}

func TestDialErrors(t *testing.T) {
	f := newTestFabric(t, Config{}, "a", "b")
	if _, err := f.Dial("a", "b", 5); err != ErrNoListener {
		t.Errorf("no listener: got %v", err)
	}
	if _, err := f.Dial("nope", "b", 5); err == nil {
		t.Error("unknown source: want error")
	}
	f.CrashNode("b")
	if _, err := f.Dial("a", "b", 5); err != ErrNodeDown {
		t.Errorf("crashed dest: got %v", err)
	}
	f.RestartNode("b")
	f.Partition([]string{"a"}, []string{"b"})
	if _, err := f.Dial("a", "b", 5); err != ErrUnreachable {
		t.Errorf("partitioned dest: got %v", err)
	}
	f.Heal()
	if !f.Reachable("a", "b") {
		t.Error("heal did not restore reachability")
	}
}

func TestPortInUse(t *testing.T) {
	f := newTestFabric(t, Config{}, "a")
	if _, err := f.Listen("a", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Listen("a", 7); err != ErrPortInUse {
		t.Errorf("got %v, want ErrPortInUse", err)
	}
	if _, err := f.OpenPort("a", 7); err != nil {
		t.Errorf("datagram port namespace must be separate: %v", err)
	}
	if _, err := f.OpenPort("a", 7); err != ErrPortInUse {
		t.Errorf("got %v, want ErrPortInUse", err)
	}
}

func TestPartitionBreaksEstablishedStream(t *testing.T) {
	f := newTestFabric(t, Config{}, "a", "b")
	l, _ := f.Listen("b", 1)
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := f.Dial("a", "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted

	f.Partition([]string{"a"}, []string{"b"})

	if _, err := c.Write([]byte("x")); err == nil {
		t.Error("write across partition must fail")
	}
	buf := make([]byte, 1)
	if _, err := srv.Read(buf); err == nil {
		t.Error("read on severed conn must fail")
	}
}

func TestCrashBreaksStreamAndListener(t *testing.T) {
	f := newTestFabric(t, Config{}, "a", "b")
	l, _ := f.Listen("b", 1)
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	c, err := f.Dial("a", "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	f.CrashNode("b")
	if _, err := c.Write([]byte("x")); err == nil {
		t.Error("write to crashed node must fail")
	}
	if f.NodeUp("b") {
		t.Error("NodeUp after crash")
	}
	f.RestartNode("b")
	if !f.NodeUp("b") {
		t.Error("NodeUp false after restart")
	}
	// After restart the old listener is gone; rebinding must work.
	if _, err := f.Listen("b", 1); err != nil {
		t.Errorf("rebind after restart: %v", err)
	}
}

func TestReadDeadline(t *testing.T) {
	f := newTestFabric(t, Config{}, "a", "b")
	l, _ := f.Listen("b", 1)
	go l.Accept()
	c, err := f.Dial("a", "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
	buf := make([]byte, 1)
	_, err = c.Read(buf)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("got %v, want timeout", err)
	}
	// Clearing the deadline re-enables reads.
	c.SetReadDeadline(time.Time{})
}

func TestCloseGivesEOFAfterDrain(t *testing.T) {
	f := newTestFabric(t, Config{}, "a", "b")
	l, _ := f.Listen("b", 1)
	accepted := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	c, _ := f.Dial("a", "b", 1)
	srv := <-accepted
	c.Write([]byte("bye"))
	c.Close()
	got, err := io.ReadAll(srv)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "bye" {
		t.Fatalf("got %q", got)
	}
}

func TestDatagramDelivery(t *testing.T) {
	f := newTestFabric(t, Config{}, "a", "b")
	pa, err := f.OpenPort("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := f.OpenPort("b", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := pa.Send("b", 100, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	dg, err := pb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if dg.From != "a" || string(dg.Payload) != "ping" {
		t.Fatalf("got %+v", dg)
	}
}

func TestDatagramLossIsTotalAtFullLoss(t *testing.T) {
	f := newTestFabric(t, Config{Loss: 1.0}, "a", "b")
	pa, _ := f.OpenPort("a", 1)
	pb, _ := f.OpenPort("b", 1)
	for i := 0; i < 50; i++ {
		pa.Send("b", 1, []byte("x"))
	}
	done := make(chan struct{})
	go func() {
		pb.Recv()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("datagram delivered despite 100% loss")
	case <-time.After(30 * time.Millisecond):
	}
	pb.Close()
	<-done
}

func TestDatagramPartitionDrops(t *testing.T) {
	f := newTestFabric(t, Config{}, "a", "b")
	pa, _ := f.OpenPort("a", 1)
	pb, _ := f.OpenPort("b", 1)
	f.Partition([]string{"a"}, []string{"b"})
	pa.Send("b", 1, []byte("lost"))
	f.Heal()
	pa.Send("b", 1, []byte("kept"))
	dg, err := pb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(dg.Payload) != "kept" {
		t.Fatalf("got %q, want the post-heal datagram", dg.Payload)
	}
}

func TestDatagramToClosedOrMissingPortIsDropped(t *testing.T) {
	f := newTestFabric(t, Config{}, "a", "b")
	pa, _ := f.OpenPort("a", 1)
	if err := pa.Send("b", 99, []byte("x")); err != nil {
		t.Fatalf("send to missing port must be silent: %v", err)
	}
	if err := pa.Send("zzz", 1, []byte("x")); err != nil {
		t.Fatalf("send to unknown node must be silent: %v", err)
	}
}

func TestSendAfterLocalCrashFails(t *testing.T) {
	f := newTestFabric(t, Config{}, "a", "b")
	pa, _ := f.OpenPort("a", 1)
	f.CrashNode("a")
	if err := pa.Send("b", 1, []byte("x")); err == nil {
		t.Error("send from crashed node must error")
	}
}

func TestDeterministicLoss(t *testing.T) {
	run := func(seed int64) []bool {
		f := NewFabric(Config{Loss: 0.5, Seed: seed})
		f.AddNode("a")
		f.AddNode("b")
		pa, _ := f.OpenPort("a", 1)
		pb, _ := f.OpenPort("b", 1)
		var got []bool
		for i := 0; i < 40; i++ {
			pa.Send("b", 1, []byte{byte(i)})
		}
		deadline := time.After(200 * time.Millisecond)
		received := map[byte]bool{}
	loop:
		for {
			ch := make(chan Datagram, 1)
			go func() {
				dg, err := pb.Recv()
				if err == nil {
					ch <- dg
				}
			}()
			select {
			case dg := <-ch:
				received[dg.Payload[0]] = true
			case <-deadline:
				pb.Close()
				break loop
			}
		}
		for i := 0; i < 40; i++ {
			got = append(got, received[byte(i)])
		}
		return got
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loss pattern differs at %d despite same seed", i)
		}
	}
}

func TestNodesSorted(t *testing.T) {
	f := newTestFabric(t, Config{}, "zeta", "alpha", "mid")
	got := f.Nodes()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v", got)
		}
	}
	f.AddNode("alpha") // duplicate add is a no-op
	if len(f.Nodes()) != 3 {
		t.Error("duplicate AddNode changed node set")
	}
}

func TestAddrRendering(t *testing.T) {
	a := Addr{Node: "n1", Port: 42}
	if a.String() != "n1:42" || a.Network() != "sim" {
		t.Fatalf("Addr = %s/%s", a.String(), a.Network())
	}
}

func TestListenErrors(t *testing.T) {
	f := newTestFabric(t, Config{}, "a")
	if _, err := f.Listen("missing", 1); err == nil {
		t.Error("unknown node: want error")
	}
	f.CrashNode("a")
	if _, err := f.Listen("a", 1); err != ErrNodeDown {
		t.Errorf("crashed node: got %v", err)
	}
	if _, err := f.OpenPort("a", 1); err != ErrNodeDown {
		t.Errorf("crashed node port: got %v", err)
	}
}
