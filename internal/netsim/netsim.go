// Package netsim provides a simulated network fabric for running the whole
// fault-tolerant CORBA stack inside one process.
//
// The paper's systems ran on a LAN of workstations; reproducing their
// fault-injection experiments (crashes, message loss, partitions, remerge)
// on real hardware is neither portable nor deterministic. The fabric
// substitutes for the LAN: it offers
//
//   - stream endpoints (net.Conn / net.Listener) used by the IIOP layer,
//     with configurable one-way latency, and
//   - unreliable datagram endpoints used by the Totem-style group
//     communication layer, with configurable latency, jitter, and loss,
//
// plus deterministic fault injection: node crash/restart and network
// partition/remerge. Partitions and crashes break established streams and
// silently drop datagrams, matching how a LAN fails.
//
// All randomness is drawn from a seeded source, so experiments replay
// identically for a given seed.
package netsim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
)

// Errors reported by the fabric.
var (
	ErrNodeDown    = errors.New("netsim: node is down")
	ErrUnreachable = errors.New("netsim: destination unreachable (partition)")
	ErrNoListener  = errors.New("netsim: connection refused")
	ErrPortInUse   = errors.New("netsim: port already bound")
	ErrClosed      = errors.New("netsim: endpoint closed")
	ErrUnknownNode = errors.New("netsim: unknown node")
	ErrConnBroken  = errors.New("netsim: connection broken by fault injection")
	errDeadline    = &timeoutError{}
)

type timeoutError struct{}

func (*timeoutError) Error() string   { return "netsim: i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// Config sets the fabric-wide link characteristics.
type Config struct {
	// Latency is the one-way delivery delay for every message.
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0,1) that a datagram is silently dropped.
	// Streams are never lossy (they model TCP).
	Loss float64
	// Seed makes jitter and loss deterministic. Zero means seed 1.
	Seed int64
}

// Fabric is the simulated network. Create one per experiment, add nodes,
// then hand Listen/Dial/OpenPort endpoints to the protocol stacks.
type Fabric struct {
	mu        sync.Mutex
	cfg       Config
	rng       *rand.Rand
	nodes     map[string]*nodeState
	component map[string]int // node -> partition component id; all 0 = healed
	nodeDelay map[string]time.Duration
	filter    DropFilter
}

// DropFilter decides whether one datagram should be dropped (return true to
// drop). It runs with the fabric lock held and must not call back into the
// fabric; payload must not be retained or mutated. Chaos schedules use it
// for targeted drops (e.g. token or batch frames); port identifies the
// destination endpoint, which under the sharded transport distinguishes the
// ring a frame belongs to (shard i lives on its own port on every node).
type DropFilter func(from, to string, port uint16, payload []byte) bool

type nodeState struct {
	name      string
	up        bool
	listeners map[uint16]*listener
	dgrams    map[uint16]*DGram
	conns     map[*conn]struct{} // stream endpoints homed on this node
}

// NewFabric creates a fabric with the given link characteristics.
func NewFabric(cfg Config) *Fabric {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Fabric{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		nodes:     make(map[string]*nodeState),
		component: make(map[string]int),
		nodeDelay: make(map[string]time.Duration),
	}
}

// SetLoss changes the datagram loss probability at runtime (loss bursts).
func (f *Fabric) SetLoss(p float64) {
	f.mu.Lock()
	f.cfg.Loss = p
	f.mu.Unlock()
}

// SetLatency changes the base latency and jitter at runtime (delay spikes).
func (f *Fabric) SetLatency(latency, jitter time.Duration) {
	f.mu.Lock()
	f.cfg.Latency = latency
	f.cfg.Jitter = jitter
	f.mu.Unlock()
}

// SetNodeDelay adds extra one-way delay to every message sent from or to the
// node (a slow or paused node). Zero removes the penalty.
func (f *Fabric) SetNodeDelay(node string, d time.Duration) {
	f.mu.Lock()
	if d <= 0 {
		delete(f.nodeDelay, node)
	} else {
		f.nodeDelay[node] = d
	}
	f.mu.Unlock()
}

// SetDropFilter installs (or, with nil, removes) a targeted datagram drop
// filter applied after the probabilistic loss check.
func (f *Fabric) SetDropFilter(fn DropFilter) {
	f.mu.Lock()
	f.filter = fn
	f.mu.Unlock()
}

// AddNode registers a node. Adding an existing node is a no-op.
func (f *Fabric) AddNode(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[name]; ok {
		return
	}
	f.nodes[name] = &nodeState{
		name:      name,
		up:        true,
		listeners: make(map[uint16]*listener),
		dgrams:    make(map[uint16]*DGram),
		conns:     make(map[*conn]struct{}),
	}
	f.component[name] = 0
}

// Nodes returns the registered node names, sorted.
func (f *Fabric) Nodes() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.nodes))
	for n := range f.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// delay computes the one-way delivery delay for one message.
func (f *Fabric) delayLocked(from, to string) time.Duration {
	d := f.cfg.Latency
	if f.cfg.Jitter > 0 {
		d += time.Duration(f.rng.Int63n(int64(f.cfg.Jitter)))
	}
	d += f.nodeDelay[from] + f.nodeDelay[to]
	return d
}

// dropLocked reports whether a datagram should be lost.
func (f *Fabric) dropLocked() bool {
	return f.cfg.Loss > 0 && f.rng.Float64() < f.cfg.Loss
}

// reachableLocked reports whether a can currently talk to b.
func (f *Fabric) reachableLocked(a, b string) bool {
	na, ok1 := f.nodes[a]
	nb, ok2 := f.nodes[b]
	if !ok1 || !ok2 || !na.up || !nb.up {
		return false
	}
	return f.component[a] == f.component[b]
}

// Reachable reports whether node a can currently reach node b.
func (f *Fabric) Reachable(a, b string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reachableLocked(a, b)
}

// Partition splits the network into the given components. Every listed node
// is placed in the component of its group; unlisted nodes join component 0.
// Established streams that now cross a component boundary break immediately.
func (f *Fabric) Partition(groups ...[]string) {
	f.mu.Lock()
	for n := range f.component {
		f.component[n] = 0
	}
	for i, g := range groups {
		for _, n := range g {
			f.component[n] = i + 1
		}
	}
	f.breakSeveredLocked()
	f.mu.Unlock()
}

// Heal removes all partitions (every node back in one component).
func (f *Fabric) Heal() {
	f.mu.Lock()
	for n := range f.component {
		f.component[n] = 0
	}
	f.mu.Unlock()
}

// CrashNode takes a node down: its listeners refuse, its streams break,
// datagrams to and from it vanish.
func (f *Fabric) CrashNode(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[name]
	if !ok || !n.up {
		return
	}
	n.up = false
	// The host's sockets die with it: wake blocked accepts/receives.
	for port, l := range n.listeners {
		l.closeLocked(ErrNodeDown)
		delete(n.listeners, port)
	}
	for port, d := range n.dgrams {
		d.closeLocked(ErrNodeDown)
		delete(n.dgrams, port)
	}
	f.breakSeveredLocked()
}

// RestartNode brings a crashed node back. The software stack must rebind
// its listeners and ports, as after a real reboot.
func (f *Fabric) RestartNode(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[name]
	if !ok || n.up {
		return
	}
	n.up = true
}

// NodeUp reports whether the node is currently up.
func (f *Fabric) NodeUp(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[name]
	return ok && n.up
}

// breakSeveredLocked breaks every established stream whose endpoints can no
// longer reach each other.
func (f *Fabric) breakSeveredLocked() {
	for _, n := range f.nodes {
		for c := range n.conns {
			if !n.up || !f.reachableLocked(c.local.Node, c.remote.Node) {
				c.breakConn(ErrConnBroken)
				delete(n.conns, c)
			}
		}
	}
}

// Addr is the net.Addr implementation for fabric endpoints.
type Addr struct {
	Node string
	Port uint16
}

// Network returns "sim".
func (Addr) Network() string { return "sim" }

// String renders node:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Node, a.Port) }

// --- Streams -------------------------------------------------------------

// chunk is one delivered write with its due time (send time + latency).
type chunk struct {
	data []byte
	due  time.Time
}

// pipeHalf is one direction of a stream: a latency-aware byte queue.
type pipeHalf struct {
	mu       sync.Mutex
	cond     *sync.Cond
	chunks   []chunk
	leftover []byte // partially consumed head chunk
	closed   bool
	err      error
	deadline time.Time
	dlTimer  *time.Timer
}

func newPipeHalf() *pipeHalf {
	h := &pipeHalf{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *pipeHalf) push(data []byte, due time.Time) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return io.ErrClosedPipe
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	h.chunks = append(h.chunks, chunk{data: cp, due: due})
	h.cond.Broadcast()
	return nil
}

func (h *pipeHalf) close(err error) {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		h.err = err
	}
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *pipeHalf) setDeadline(t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.deadline = t
	if h.dlTimer != nil {
		h.dlTimer.Stop()
		h.dlTimer = nil
	}
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		h.dlTimer = time.AfterFunc(d, func() {
			h.mu.Lock()
			h.cond.Broadcast()
			h.mu.Unlock()
		})
	}
	h.cond.Broadcast()
}

func (h *pipeHalf) deadlineExceededLocked() bool {
	return !h.deadline.IsZero() && !time.Now().Before(h.deadline)
}

// read implements latency-aware reads: data is visible only once its due
// time has passed.
func (h *pipeHalf) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if len(h.leftover) > 0 {
			n := copy(p, h.leftover)
			h.leftover = h.leftover[n:]
			return n, nil
		}
		if h.deadlineExceededLocked() {
			return 0, errDeadline
		}
		if len(h.chunks) > 0 {
			head := h.chunks[0]
			now := time.Now()
			if !head.due.After(now) {
				h.chunks = h.chunks[1:]
				n := copy(p, head.data)
				if n < len(head.data) {
					h.leftover = head.data[n:]
				}
				return n, nil
			}
			// Head not due yet: sleep until due (or wakeup) outside cond.
			wait := head.due.Sub(now)
			timer := time.AfterFunc(wait, func() {
				h.mu.Lock()
				h.cond.Broadcast()
				h.mu.Unlock()
			})
			h.cond.Wait()
			timer.Stop()
			continue
		}
		if h.closed {
			if h.err != nil {
				return 0, h.err
			}
			return 0, io.EOF
		}
		h.cond.Wait()
	}
}

// conn is one endpoint of an established simulated stream.
type conn struct {
	fabric *Fabric
	local  Addr
	remote Addr
	rd     *pipeHalf // data arriving here
	wr     *pipeHalf // peer's read half (we push into it)
	peer   *conn

	closeOnce sync.Once
}

var _ net.Conn = (*conn)(nil)

func (c *conn) Read(p []byte) (int, error) { return c.rd.read(p) }

func (c *conn) Write(p []byte) (int, error) {
	c.fabric.mu.Lock()
	if !c.fabric.reachableLocked(c.local.Node, c.remote.Node) {
		c.fabric.mu.Unlock()
		return 0, ErrConnBroken
	}
	due := time.Now().Add(c.fabric.delayLocked(c.local.Node, c.remote.Node))
	c.fabric.mu.Unlock()
	if err := c.wr.push(p, due); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		c.fabric.mu.Lock()
		if n, ok := c.fabric.nodes[c.local.Node]; ok {
			delete(n.conns, c)
		}
		c.fabric.mu.Unlock()
		c.wr.close(nil) // peer sees EOF after draining
		c.rd.close(nil)
	})
	return nil
}

// breakConn severs the stream abruptly (fault injection): both halves
// error out rather than draining.
func (c *conn) breakConn(err error) {
	c.rd.close(err)
	c.wr.close(err)
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

func (c *conn) SetDeadline(t time.Time) error {
	c.rd.setDeadline(t)
	return nil
}
func (c *conn) SetReadDeadline(t time.Time) error {
	c.rd.setDeadline(t)
	return nil
}
func (c *conn) SetWriteDeadline(time.Time) error { return nil }

// listener accepts simulated streams.
type listener struct {
	fabric  *Fabric
	addr    Addr
	mu      sync.Mutex
	cond    *sync.Cond
	backlog []*conn
	closed  bool
}

var _ net.Listener = (*listener)(nil)

// Listen binds a stream listener at host:port.
func (f *Fabric) Listen(host string, port uint16) (net.Listener, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[host]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, host)
	}
	if !n.up {
		return nil, ErrNodeDown
	}
	if _, busy := n.listeners[port]; busy {
		return nil, ErrPortInUse
	}
	l := &listener{fabric: f, addr: Addr{Node: host, Port: port}}
	l.cond = sync.NewCond(&l.mu)
	n.listeners[port] = l
	return l, nil
}

func (l *listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.closed {
			return nil, ErrClosed
		}
		if len(l.backlog) > 0 {
			c := l.backlog[0]
			l.backlog = l.backlog[1:]
			return c, nil
		}
		l.cond.Wait()
	}
}

func (l *listener) Close() error {
	l.fabric.mu.Lock()
	if n, ok := l.fabric.nodes[l.addr.Node]; ok {
		if n.listeners[l.addr.Port] == l {
			delete(n.listeners, l.addr.Port)
		}
	}
	l.fabric.mu.Unlock()
	l.closeLocked(ErrClosed)
	return nil
}

func (l *listener) closeLocked(err error) {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

func (l *listener) Addr() net.Addr { return l.addr }

// Dial opens a stream from node `from` to host:port. The connection is
// established instantaneously (handshake latency is folded into the first
// bytes' latency), mirroring how the real systems reuse pre-opened TCP
// connections.
func (f *Fabric) Dial(from, host string, port uint16) (net.Conn, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[from]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, from)
	}
	if !f.reachableLocked(from, host) {
		if n, ok := f.nodes[host]; !ok || !n.up {
			return nil, ErrNodeDown
		}
		return nil, ErrUnreachable
	}
	n := f.nodes[host]
	l, ok := n.listeners[port]
	if !ok {
		return nil, ErrNoListener
	}

	aToB := newPipeHalf() // bytes flowing client -> server
	bToA := newPipeHalf() // bytes flowing server -> client
	cli := &conn{
		fabric: f,
		local:  Addr{Node: from, Port: 0},
		remote: Addr{Node: host, Port: port},
		rd:     bToA,
		wr:     aToB,
	}
	srv := &conn{
		fabric: f,
		local:  Addr{Node: host, Port: port},
		remote: Addr{Node: from, Port: 0},
		rd:     aToB,
		wr:     bToA,
	}
	cli.peer, srv.peer = srv, cli
	f.nodes[from].conns[cli] = struct{}{}
	n.conns[srv] = struct{}{}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrNoListener
	}
	l.backlog = append(l.backlog, srv)
	l.cond.Broadcast()
	l.mu.Unlock()
	return cli, nil
}

// --- Datagrams -----------------------------------------------------------

// Datagram is one received unreliable message (the transport seam's type;
// the fabric is the seam's deterministic backend).
type Datagram = transport.Datagram

// DGram is an unreliable datagram port, the substrate for the group
// communication protocol (which supplies its own reliability and ordering,
// as Totem does over UDP). It implements transport.Port.
type DGram struct {
	fabric *Fabric
	addr   Addr
	mu     sync.Mutex
	cond   *sync.Cond
	queue  dgramRing // data lane
	ctlq   dgramRing // control lane: delivered first among due datagrams
	closed bool
	waker  *time.Timer // reused wakeup for not-yet-due heads (see Recv)
}

var (
	_ transport.Port        = (*DGram)(nil)
	_ transport.ClassSender = (*DGram)(nil)
)

// Open binds a datagram port at host:port, implementing
// transport.Transport. It is OpenPort behind the seam's interface: the
// fabric plays the role of every simulated node's transport at once.
func (f *Fabric) Open(host string, port uint16) (transport.Port, error) {
	return f.OpenPort(host, port)
}

type timedDatagram struct {
	dg  Datagram
	due time.Time
}

// dgramRing is a growable circular queue of pending datagrams. The
// previous plain-slice queue (append to push, reslice [1:] to pop) shed
// its backing array every few hundred datagrams — popping from the front
// strands capacity, so steady-state traffic reallocated and re-copied the
// queue forever. The ring reuses its slots: pushes and pops on the hot
// path allocate nothing once the queue has reached its high-water size.
type dgramRing struct {
	buf  []timedDatagram
	head int
	n    int
}

func (q *dgramRing) len() int { return q.n }

func (q *dgramRing) push(td timedDatagram) {
	if q.n == len(q.buf) {
		grown := make([]timedDatagram, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = td
	q.n++
}

// peek returns the head slot (valid only while the queue is non-empty).
func (q *dgramRing) peek() *timedDatagram { return &q.buf[q.head] }

func (q *dgramRing) pop() Datagram {
	slot := &q.buf[q.head]
	dg := slot.dg
	*slot = timedDatagram{} // drop the payload reference: slots are reused
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return dg
}

// OpenPort binds a datagram port at host:port.
func (f *Fabric) OpenPort(host string, port uint16) (*DGram, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[host]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, host)
	}
	if !n.up {
		return nil, ErrNodeDown
	}
	if _, busy := n.dgrams[port]; busy {
		return nil, ErrPortInUse
	}
	d := &DGram{fabric: f, addr: Addr{Node: host, Port: port}}
	d.cond = sync.NewCond(&d.mu)
	n.dgrams[port] = d
	return d, nil
}

// Addr returns the bound address.
func (d *DGram) Addr() Addr { return d.addr }

// Local reports the port's node name and logical port (transport.Port).
func (d *DGram) Local() (string, uint16) { return d.addr.Node, d.addr.Port }

// Send transmits a datagram to host:port. Loss, latency, partitions, and
// crashed destinations are applied; Send never blocks and never reports
// delivery failure (like UDP), only local errors.
//
// Ownership: the fabric retains payload without copying (large state
// transfers would otherwise multiply memory traffic); the caller must not
// mutate it after Send. Protocol layers in this module always pass
// freshly encoded buffers.
func (d *DGram) Send(host string, port uint16, payload []byte) error {
	return d.SendClass(host, port, payload, transport.ClassData)
}

// SendClass is Send with an explicit scheduling class: ClassControl
// datagrams land in the destination's priority lane and are received ahead
// of any queued data, while loss, latency, partitions, and fault filters
// apply to both lanes identically (a dropped heartbeat is still dropped —
// the lane only keeps it from queueing behind a multicast backlog).
func (d *DGram) SendClass(host string, port uint16, payload []byte, class transport.Class) error {
	f := d.fabric
	f.mu.Lock()
	if d.isClosed() {
		f.mu.Unlock()
		return ErrClosed
	}
	src := f.nodes[d.addr.Node]
	if src == nil || !src.up {
		f.mu.Unlock()
		return ErrNodeDown
	}
	if !f.reachableLocked(d.addr.Node, host) || f.dropLocked() {
		f.mu.Unlock()
		return nil // silently lost, like UDP
	}
	if f.filter != nil && f.filter(d.addr.Node, host, port, payload) {
		f.mu.Unlock()
		return nil // targeted drop (chaos injection)
	}
	dst := f.nodes[host]
	tgt, ok := dst.dgrams[port]
	if !ok {
		f.mu.Unlock()
		return nil // no such port: dropped
	}
	due := time.Now().Add(f.delayLocked(d.addr.Node, host))
	f.mu.Unlock()

	tgt.mu.Lock()
	if !tgt.closed {
		td := timedDatagram{dg: Datagram{From: d.addr.Node, Payload: payload}, due: due}
		if class == transport.ClassControl {
			tgt.ctlq.push(td)
		} else {
			tgt.queue.push(td)
		}
		tgt.cond.Broadcast()
	}
	tgt.mu.Unlock()
	return nil
}

func (d *DGram) isClosed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// Recv blocks until a datagram is deliverable (its latency has elapsed) or
// the port is closed. The wakeup timer for a not-yet-due head is created
// once per port and Reset on reuse — the old per-wait time.AfterFunc
// allocated a timer for every latency-delayed delivery.
func (d *DGram) Recv() (Datagram, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		// Control lane first: a due heartbeat/token is delivered ahead of
		// any amount of queued data. Not-yet-due heads on either lane set
		// the wakeup for whichever matures sooner.
		var wait time.Duration
		waiting := false
		if d.ctlq.len() > 0 {
			head := d.ctlq.peek()
			now := time.Now()
			if !head.due.After(now) {
				return d.ctlq.pop(), nil
			}
			wait = head.due.Sub(now)
			waiting = true
		}
		if d.queue.len() > 0 {
			head := d.queue.peek()
			now := time.Now()
			if !head.due.After(now) {
				return d.queue.pop(), nil
			}
			if w := head.due.Sub(now); !waiting || w < wait {
				wait = w
				waiting = true
			}
		}
		if waiting {
			if d.waker == nil {
				d.waker = time.AfterFunc(wait, func() {
					d.mu.Lock()
					d.cond.Broadcast()
					d.mu.Unlock()
				})
			} else {
				d.waker.Reset(wait)
			}
			d.cond.Wait()
			d.waker.Stop()
			continue
		}
		if d.closed {
			return Datagram{}, ErrClosed
		}
		d.cond.Wait()
	}
}

// Close releases the port; a blocked Recv returns ErrClosed.
func (d *DGram) Close() error {
	d.fabric.mu.Lock()
	if n, ok := d.fabric.nodes[d.addr.Node]; ok {
		if n.dgrams[d.addr.Port] == d {
			delete(n.dgrams, d.addr.Port)
		}
	}
	d.fabric.mu.Unlock()
	d.closeLocked(ErrClosed)
	return nil
}

func (d *DGram) closeLocked(err error) {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
}
