package slo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/netsim"
	"repro/internal/orb"
	"repro/internal/replication"
)

// Config parameterizes one open-loop SLO run.
type Config struct {
	// Seed derives the arrival schedule, the chaos schedule, and the
	// simulated network's randomness.
	Seed int64
	// Groups is the number of replicated object groups. Groups cycle
	// through the three scenarios (bank, inventory, trader) and through
	// Styles.
	Groups int
	// Replicas per group (default 2; chaos runs want 3 so one faulty
	// member always leaves a majority).
	Replicas int
	// Shards is the transport rings per node (default 1).
	Shards int
	// Styles cycles across groups (default ACTIVE only).
	Styles []replication.Style
	// Clients is the simulated client population; every arrival is issued
	// by one of them (goroutine-pooled — the population costs no memory
	// beyond the schedule itself).
	Clients int
	// Workers is the invoker pool size: the maximum number of in-flight
	// invocations (default 512). It bounds concurrency, not load — a
	// saturated pool queues arrivals whose waiting time still counts
	// against the server because latency is measured from intended start.
	Workers int
	// Rate is the mean arrival rate in invocations/second.
	Rate float64
	// Duration is the arrival-schedule horizon.
	Duration time.Duration
	// Burst, when > 1, makes the arrival process bursty (see ArrivalConfig).
	Burst float64
	// ReadShare, when in (0, 1], overrides every scenario's default op mix
	// with an explicit read fraction: each arrival reads ("stats") with
	// probability ReadShare and mutates otherwise. The LEADER_FOLLOWER
	// read-path workloads drive 0.9; zero keeps the scenarios' own mixes.
	ReadShare float64
	// Heartbeat is the totem gossip interval (default 3ms).
	Heartbeat time.Duration
	// CallTimeout bounds one invocation including retransmissions
	// (default 30s — chaos recovery must fit inside it).
	CallTimeout time.Duration
	// RetryInterval is the client retransmission base (default 400ms).
	RetryInterval time.Duration
	// LegacyAbsorbers selects the pre-adaptive provisioning-storm
	// absorbers: group creation paced in small batches with eager
	// membership healing between readiness polls, sized for the old
	// fixed-window fail detector that a creation storm could push into
	// false evictions. The default (false) leans on the adaptive
	// detector (phi-accrual windows + control-plane priority lane):
	// creation runs in much larger batches and healing becomes a
	// low-frequency last resort. Kept selectable for A/B comparison.
	LegacyAbsorbers bool
	// Chaos, when set, applies a fault schedule while the load runs.
	Chaos *ChaosPlan
	// Stall, when set, is wired into every scenario servant (the
	// coordinated-omission tests arm it mid-run).
	Stall *StallGate
	// OnStart, when set, runs just after the load clock starts (setup and
	// warmup excluded) — the hook tests use to schedule a stall at a known
	// offset into the run.
	OnStart func()
	// Progress, when set, receives human-readable progress lines.
	Progress func(format string, args ...any)
}

// ChaosPlan schedules fault episodes over the run. Episode kinds, victims,
// and intensities come from chaos.GenerateFrom with the run's seed, so a
// (seed, plan) pair always produces the same fault schedule.
type ChaosPlan struct {
	// Kinds is the episode mix (default: crash-restart, token-drop,
	// delay-spike; shard-partition joins when Shards > 1).
	Kinds []chaos.EpisodeKind
	// Episodes is how many episodes to run (default 4).
	Episodes int
	// Lead is calm time before the first episode (default Duration/10).
	Lead time.Duration
	// Hold is how long each episode's fault stays applied (default 40% of
	// the per-episode budget).
	Hold time.Duration
	// Gap is calm time after each episode (default the rest of the
	// budget).
	Gap time.Duration
}

func (c *Config) fill() {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if len(c.Styles) == 0 {
		c.Styles = []replication.Style{replication.Active}
	}
	if c.Workers <= 0 {
		c.Workers = 512
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 3 * time.Millisecond
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 30 * time.Second
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 400 * time.Millisecond
	}
	if c.Chaos != nil {
		p := c.Chaos
		if p.Episodes <= 0 {
			p.Episodes = 4
		}
		if len(p.Kinds) == 0 {
			p.Kinds = []chaos.EpisodeKind{chaos.EpCrashRestart, chaos.EpTokenDrop, chaos.EpDelaySpike}
			if c.Shards > 1 {
				p.Kinds = append(p.Kinds, chaos.EpShardPartition)
			}
		}
		if p.Lead <= 0 {
			p.Lead = c.Duration / 10
		}
		budget := (c.Duration - p.Lead) / time.Duration(p.Episodes)
		if p.Hold <= 0 {
			p.Hold = budget * 2 / 5
		}
		if p.Gap <= 0 {
			p.Gap = budget - p.Hold
			if p.Gap < 0 {
				p.Gap = 0
			}
		}
	}
}

// Result is one run's measurements. All latency histograms are
// coordinated-omission corrected: samples are completion − intended start.
type Result struct {
	ScheduleHash  uint64
	Arrivals      int
	ActiveClients int
	Population    int
	Groups        int

	Issued, Acked, Errors int64
	// Mutations is how many arrivals carried a mutating operation (the
	// read-share workloads assert their mix against it).
	Mutations int64
	Wall                  time.Duration // run start → last completion
	OfferedRate           float64       // arrivals / schedule horizon
	Goodput               float64       // acked / wall

	All *Hist // every completion, from intended start (the open-loop view)
	// Service measures the same completions from the instant a worker
	// actually began each invocation — the number a closed-loop harness
	// would report. Under a server stall, All diverges from Service by the
	// queueing the closed-loop view silently omits; the
	// coordinated-omission tests assert that delta.
	Service *Hist
	Calm    *Hist            // arrivals intended outside fault windows
	ByKind  map[string]*Hist // arrivals intended inside a fault window, per episode kind
	ByStyle map[string]*Hist // per replication style

	// Blackout distributions: for every (episode, group) pair, the longest
	// interval inside the episode's window (plus recovery grace) in which
	// the group completed nothing. Keys are the episode kind, and
	// kind+"/"+style for the per-style split.
	Blackout map[string]*Hist
	// GlobalBlackout is the per-episode longest whole-domain completion
	// gap, one sample per episode, keyed by kind.
	GlobalBlackout map[string][]time.Duration

	// ChaosSchedule is the applied fault schedule (empty when calm).
	ChaosSchedule chaos.Schedule
}

// groupInfo is one group's static routing data.
type groupInfo struct {
	gid    uint64
	typeID string
	style  replication.Style
	proxy  *replication.Proxy
}

// slotWidth is the completion-timeline resolution for blackout detection.
const slotWidth = 10 * time.Millisecond

// Provisioning-storm absorber profiles (see Config.LegacyAbsorbers).
// Legacy pairs small creation batches with eager healing; the thinned
// default trusts the adaptive detector to ride out the join storm, so
// batches are 4× larger and the heal cadence drops to a last resort.
const (
	legacyCreateBatch = 128
	legacyHealEvery   = 50 // polls; ~250ms
	thinCreateBatch   = 512
	thinHealEvery     = 400 // polls; ~2s
)

// absorberProfile returns the creation batch size and readiness-poll heal
// period for the configured absorber regime.
func (c *Config) absorberProfile() (createBatch, healEvery int) {
	if c.LegacyAbsorbers {
		return legacyCreateBatch, legacyHealEvery
	}
	return thinCreateBatch, thinHealEvery
}

// sloCheckpointEvery is the checkpoint period every SLO group runs with
// (the stack default, set explicitly because the WAL-bound invariant below
// derives from it).
const sloCheckpointEvery = 16

// walBound is the compaction invariant asserted after every run for the
// logging (passive) styles: checkpoint-anchored truncation must keep each
// member's live WAL at one checkpoint plus at most one period of updates,
// with one more period of slack for a checkpoint still in flight at scan
// time. Without periodic compaction the log grows with the op count and
// this trips immediately at SLO volumes.
const walBound = 2*sloCheckpointEvery + 2

// blackoutGrace extends each episode's blackout scan past the fault being
// cleared, so recovery tails count toward the blackout and a gap still in
// progress at clear time is not truncated.
const blackoutGrace = 5 * time.Second

// perGroupSlotLimit bounds the per-group completion-timeline memory; runs
// with more groups only get the global blackout numbers.
const perGroupSlotLimit = 128

// window is one fault episode's span, as ns offsets from run start.
type window struct {
	kind       string
	style      string // unused; kinds are domain-wide
	start, end int64
}

type windowLog struct {
	mu sync.RWMutex
	ws []window
}

func (l *windowLog) open(kind string, start int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ws = append(l.ws, window{kind: kind, start: start, end: 1<<63 - 1})
	return len(l.ws) - 1
}

func (l *windowLog) close(idx int, end int64) {
	l.mu.Lock()
	l.ws[idx].end = end
	l.mu.Unlock()
}

// kindAt returns the episode kind whose window covers the offset, or "".
func (l *windowLog) kindAt(off int64) string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for i := range l.ws {
		if off >= l.ws[i].start && off < l.ws[i].end {
			return l.ws[i].kind
		}
	}
	return ""
}

func (l *windowLog) snapshot() []window {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]window(nil), l.ws...)
}

// runner holds one run's live state.
type runner struct {
	cfg    Config
	dom    *core.Domain
	groups []groupInfo
	sched  []Arrival
	t0     time.Time

	next       atomic.Int64
	acked      atomic.Int64
	errs       atomic.Int64
	lastDone   atomic.Int64 // ns offset of last successful completion
	issuedMuts []atomic.Int64
	ackedMuts  []atomic.Int64
	ackedAcc   []atomic.Int64

	all     *Hist
	service *Hist
	calm    *Hist
	byKind  map[string]*Hist
	byStyle map[string]*Hist

	readCut  uint8
	windows  windowLog
	gslots   []atomic.Uint32
	pgslots  [][]atomic.Uint32 // nil when Groups > perGroupSlotLimit
	slotWide int64
}

// groupOf maps a client to its home group (a Fibonacci hash decorrelates
// adjacent client ids from adjacent groups).
func groupOf(client uint32, groups int) int {
	return int((uint64(client) * 0x9E3779B97F4A7C15 >> 33) % uint64(groups))
}

func (r *runner) progress(format string, args ...any) {
	if r.cfg.Progress != nil {
		r.cfg.Progress(format, args...)
	}
}

// Run executes one open-loop SLO workload and returns its measurements.
// Setup failures return a nil Result; invariant violations after the run
// return the (complete) Result alongside the error.
func Run(cfg Config) (*Result, error) {
	cfg.fill()
	if cfg.Groups <= 0 || cfg.Clients <= 0 || cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil, errors.New("slo: Groups, Clients, Rate, and Duration are required")
	}
	r := &runner{cfg: cfg}
	if cfg.ReadShare > 0 {
		cut := cfg.ReadShare * 256
		if cut > 255 {
			cut = 255
		}
		r.readCut = uint8(cut)
	}

	r.sched = GenArrivals(ArrivalConfig{
		Seed: cfg.Seed, Rate: cfg.Rate, Duration: cfg.Duration,
		Clients: cfg.Clients, Burst: cfg.Burst,
	})
	if len(r.sched) == 0 {
		return nil, errors.New("slo: empty arrival schedule")
	}

	if err := r.setup(); err != nil {
		if r.dom != nil {
			r.dom.Stop()
		}
		return nil, err
	}
	defer r.dom.Stop()

	r.initMeasures()

	var chaosSched chaos.Schedule
	stopChaos := make(chan struct{})
	chaosDone := make(chan struct{})
	r.t0 = time.Now()
	if cfg.OnStart != nil {
		cfg.OnStart()
	}
	if cfg.Chaos != nil {
		chaosSched = r.chaosSchedule()
		go r.applyChaos(chaosSched, stopChaos, chaosDone)
	} else {
		close(chaosDone)
	}

	r.progress("slo: driving %d arrivals (%.0f/s over %v) from %d clients across %d groups with %d workers",
		len(r.sched), cfg.Rate, cfg.Duration, cfg.Clients, cfg.Groups, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.worker()
		}()
	}
	wg.Wait()
	close(stopChaos)
	<-chaosDone

	res := r.collect(chaosSched)
	err := r.checkInvariants()
	return res, err
}

// setup builds the domain, the groups, and their proxies, and warms every
// group once so reply-group joins and executor spin-up are off the clock.
func (r *runner) setup() error {
	cfg := r.cfg
	names := make([]string, 0, cfg.Replicas+1)
	for i := 1; i <= cfg.Replicas; i++ {
		names = append(names, fmt.Sprintf("n%d", i))
	}
	workers := append([]string(nil), names...)
	names = append(names, "client")
	d, err := core.NewDomain(core.Options{
		Nodes:         names,
		Net:           netsim.Config{Seed: cfg.Seed},
		Heartbeat:     cfg.Heartbeat,
		Shards:        cfg.Shards,
		CallTimeout:   cfg.CallTimeout,
		RetryInterval: cfg.RetryInterval,
	})
	if err != nil {
		return err
	}
	r.dom = d
	if err := d.WaitReady(15 * time.Second); err != nil {
		return err
	}
	for _, typeID := range ScenarioTypes {
		typeID := typeID
		if err := d.RegisterFactory(typeID, func() orb.Servant {
			return NewScenarioServant(typeID, cfg.Stall)
		}, workers...); err != nil {
			return err
		}
	}

	// Groups are created in bounded batches with a readiness wait between
	// them. Each creation multicasts control joins for the invocation and
	// reply groups; an unpaced thousand-group storm floods the rings
	// faster than the token drains them. With the adaptive detector the
	// control lane and phi windows absorb that storm, so the default
	// profile uses large batches and rare healing; the legacy profile
	// keeps the small-batch/eager-heal pacing the fixed-window detector
	// needed (see Config.LegacyAbsorbers).
	createBatch, _ := cfg.absorberProfile()
	r.progress("slo: creating %d groups (%d replicas, %d shards, batch %d)", cfg.Groups, cfg.Replicas, cfg.Shards, createBatch)
	r.groups = make([]groupInfo, cfg.Groups)
	for lo := 0; lo < cfg.Groups; lo += createBatch {
		hi := lo + createBatch
		if hi > cfg.Groups {
			hi = cfg.Groups
		}
		for i := lo; i < hi; i++ {
			typeID := ScenarioTypes[i%len(ScenarioTypes)]
			style := cfg.Styles[i%len(cfg.Styles)]
			props := &ftcorba.Properties{
				ReplicationStyle:      style,
				InitialNumberReplicas: cfg.Replicas,
				CheckpointInterval:    sloCheckpointEvery,
				MembershipStyle:       ftcorba.MembershipApplication, // the harness repairs membership itself
			}
			if style.IsLeaderFollower() {
				// Every scenario's read op; marks it lease-servable so
				// proxies take the local-read fast path.
				props.ReadOnlyOps = []string{"stats"}
			}
			_, gid, err := d.Create(fmt.Sprintf("slo-%s-%d", ScenarioName(typeID), i), typeID, props)
			if err != nil {
				return fmt.Errorf("slo: create group %d: %w", i, err)
			}
			r.groups[i] = groupInfo{gid: gid, typeID: typeID, style: style}
		}
		if err := r.waitGroupsReady(lo, hi, 30*time.Second); err != nil {
			return err
		}
	}
	for i := range r.groups {
		p, err := d.Proxy("client", r.groups[i].gid)
		if err != nil {
			return err
		}
		r.groups[i].proxy = p
	}

	// Warmup: one read per group, spread over a bounded pool.
	r.progress("slo: warming %d groups", cfg.Groups)
	var idx atomic.Int64
	warmErr := make(chan error, 1)
	var wg sync.WaitGroup
	pool := 64
	if pool > cfg.Groups {
		pool = cfg.Groups
	}
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(idx.Add(1) - 1)
				if i >= len(r.groups) {
					return
				}
				if _, err := r.groups[i].proxy.Invoke("stats"); err != nil {
					select {
					case warmErr <- fmt.Errorf("slo: warmup group %d: %w", i, err):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-warmErr:
		return err
	default:
	}
	return nil
}

// waitGroupsReady polls groups [lo, hi) until all hosting members report a
// synchronized full view. Groups that stay unready get a membership heal
// attempt every healEvery polls: with MembershipApplication style,
// re-adding evicted members is the application's job, and a heal is how
// the harness absorbs fail-detector false positives.
func (r *runner) waitGroupsReady(lo, hi int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	ready := make([]bool, hi-lo)
	remaining := hi - lo
	_, healEvery := r.cfg.absorberProfile()
	for poll := 1; time.Now().Before(deadline) && remaining > 0; poll++ {
		for i := lo; i < hi; i++ {
			if ready[i-lo] {
				continue
			}
			if r.groupReady(i) {
				ready[i-lo] = true
				remaining--
			} else if poll%healEvery == 0 {
				r.healGroup(i)
			}
		}
		if remaining > 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if remaining > 0 {
		return fmt.Errorf("slo: %d of %d groups not ready after %v", remaining, hi-lo, timeout)
	}
	return nil
}

// healGroup re-adds missing members of a shrunken group. The placement is
// deterministic (every group lives on all worker nodes), so the intended
// membership is known. AddMember reconciles with a still-hosted replica,
// making a false-positive eviction cheap to repair, and state-transfers a
// genuinely restarted one.
func (r *runner) healGroup(i int) {
	members, err := r.dom.RM.Members(r.groups[i].gid)
	if err != nil || len(members) >= r.cfg.Replicas {
		return
	}
	have := make(map[string]bool, len(members))
	for _, m := range members {
		have[m] = true
	}
	for w := 1; w <= r.cfg.Replicas; w++ {
		if node := fmt.Sprintf("n%d", w); !have[node] {
			_, _ = r.dom.RM.AddMember(r.groups[i].gid, node)
		}
	}
}

func (r *runner) groupReady(i int) bool {
	members, err := r.dom.RM.Members(r.groups[i].gid)
	if err != nil || len(members) != r.cfg.Replicas {
		return false
	}
	for _, m := range members {
		n := r.dom.Node(m)
		if n == nil {
			return false
		}
		st, hosted := n.Engine.GroupStatus(r.groups[i].gid)
		if !hosted || st.Syncing || len(st.Members) != r.cfg.Replicas {
			return false
		}
	}
	return true
}

func (r *runner) initMeasures() {
	g := len(r.groups)
	r.issuedMuts = make([]atomic.Int64, g)
	r.ackedMuts = make([]atomic.Int64, g)
	r.ackedAcc = make([]atomic.Int64, g)
	r.all = NewHist()
	r.service = NewHist()
	r.calm = NewHist()
	r.byStyle = make(map[string]*Hist)
	for _, gi := range r.groups {
		if _, ok := r.byStyle[gi.style.String()]; !ok {
			r.byStyle[gi.style.String()] = NewHist()
		}
	}
	r.byKind = make(map[string]*Hist)
	if r.cfg.Chaos != nil {
		for _, k := range r.cfg.Chaos.Kinds {
			r.byKind[k.String()] = NewHist()
		}
	}
	r.slotWide = int64(slotWidth)
	span := r.cfg.Duration + r.cfg.CallTimeout + blackoutGrace + 15*time.Second
	slots := int(int64(span)/r.slotWide) + 1
	r.gslots = make([]atomic.Uint32, slots)
	if g <= perGroupSlotLimit {
		r.pgslots = make([][]atomic.Uint32, g)
		for i := range r.pgslots {
			r.pgslots[i] = make([]atomic.Uint32, slots)
		}
	}
}

// worker drains the arrival schedule: claim the next arrival, sleep until
// its intended start, invoke, and account the outcome. Latency is measured
// from the intended start, so queueing delay behind a saturated pool or a
// stalled server is charged to the server — the coordinated-omission
// correction.
func (r *runner) worker() {
	for {
		i := int(r.next.Add(1) - 1)
		if i >= len(r.sched) {
			return
		}
		a := r.sched[i]
		due := r.t0.Add(time.Duration(a.Due))
		if wait := time.Until(due); wait > 0 {
			time.Sleep(wait)
		}
		g := groupOf(a.Client, len(r.groups))
		gi := &r.groups[g]
		op, arg, mutating := scenarioOp(gi.typeID, a.Op, r.readCut)
		if mutating {
			r.issuedMuts[g].Add(1)
		}
		start := time.Now()
		var err error
		if mutating {
			_, err = gi.proxy.Invoke(op, cdr.Long(arg))
		} else {
			_, err = gi.proxy.Invoke(op)
		}
		now := time.Now()
		lat := now.Sub(due)

		r.all.Record(lat)
		r.service.Record(now.Sub(start))
		r.byStyle[gi.style.String()].Record(lat)
		if kind := r.windows.kindAt(a.Due); kind != "" {
			if h := r.byKind[kind]; h != nil {
				h.Record(lat)
			}
		} else {
			r.calm.Record(lat)
		}
		if err != nil {
			r.errs.Add(1)
			continue
		}
		r.acked.Add(1)
		if mutating {
			r.ackedMuts[g].Add(1)
			r.ackedAcc[g].Add(opDelta(gi.typeID, op, arg))
		}
		off := int64(now.Sub(r.t0))
		for {
			last := r.lastDone.Load()
			if off <= last || r.lastDone.CompareAndSwap(last, off) {
				break
			}
		}
		slot := off / r.slotWide
		if slot >= int64(len(r.gslots)) {
			slot = int64(len(r.gslots)) - 1
		}
		r.gslots[slot].Add(1)
		if r.pgslots != nil {
			r.pgslots[g][slot].Add(1)
		}
	}
}

// collect assembles the Result.
func (r *runner) collect(chaosSched chaos.Schedule) *Result {
	wall := time.Duration(r.lastDone.Load())
	if wall <= 0 {
		wall = time.Since(r.t0)
	}
	res := &Result{
		ScheduleHash:   HashArrivals(r.sched),
		Arrivals:       len(r.sched),
		ActiveClients:  CountDistinctClients(r.sched, r.cfg.Clients),
		Population:     r.cfg.Clients,
		Groups:         len(r.groups),
		Acked:          r.acked.Load(),
		Mutations:      sumCounters(r.issuedMuts),
		Errors:         r.errs.Load(),
		Wall:           wall,
		OfferedRate:    float64(len(r.sched)) / r.cfg.Duration.Seconds(),
		All:            r.all,
		Service:        r.service,
		Calm:           r.calm,
		ByKind:         r.byKind,
		ByStyle:        r.byStyle,
		Blackout:       make(map[string]*Hist),
		GlobalBlackout: make(map[string][]time.Duration),
		ChaosSchedule:  chaosSched,
	}
	res.Issued = res.Acked + res.Errors
	if wall > 0 {
		res.Goodput = float64(res.Acked) / wall.Seconds()
	}

	// Blackout distributions from the completion timelines.
	styleOf := make([]string, len(r.groups))
	for i, gi := range r.groups {
		styleOf[i] = gi.style.String()
	}
	for _, w := range r.windows.snapshot() {
		end := w.end
		if end == 1<<63-1 {
			end = int64(r.cfg.Duration)
		}
		end += int64(blackoutGrace)
		// The scan cannot extend past the last completion anywhere in the
		// domain: silence after the schedule drains is the run ending, not
		// the server blacking out.
		if last := r.lastDone.Load(); end > last {
			end = last
		}
		if end <= w.start {
			continue
		}
		gap := longestGap(r.gslots, w.start, end, r.slotWide)
		res.GlobalBlackout[w.kind] = append(res.GlobalBlackout[w.kind], gap)
		if r.pgslots == nil {
			continue
		}
		for g := range r.pgslots {
			gap := longestGap(r.pgslots[g], w.start, end, r.slotWide)
			for _, key := range []string{w.kind, w.kind + "/" + styleOf[g]} {
				h := res.Blackout[key]
				if h == nil {
					h = NewHist()
					res.Blackout[key] = h
				}
				h.Record(gap)
			}
		}
	}
	return res
}

func sumCounters(cs []atomic.Int64) int64 {
	var n int64
	for i := range cs {
		n += cs[i].Load()
	}
	return n
}

// longestGap scans a completion timeline between two ns offsets and
// returns the longest all-zero stretch, in slot granularity.
func longestGap(slots []atomic.Uint32, from, to, width int64) time.Duration {
	lo := from / width
	hi := to / width
	if lo < 0 {
		lo = 0
	}
	if hi >= int64(len(slots)) {
		hi = int64(len(slots)) - 1
	}
	var best, run int64
	for s := lo; s <= hi; s++ {
		if slots[s].Load() == 0 {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return time.Duration(best * width)
}

// checkInvariants verifies exactly-once accounting and convergence after
// the run: every group's authoritative mutation count must lie between the
// acknowledged and issued counts (acked ≤ executed ≤ issued), with strict
// equality — including the argument fold — when no invocation failed; and
// ACTIVE groups' live members must agree on the last executed message.
func (r *runner) checkInvariants() error {
	// Heal first: a fault report during the run (an injected crash whose
	// repair lost the race with run end, or a fail-detector false positive
	// on an oversubscribed host) leaves the group shrunken, and under
	// MembershipApplication style nothing re-adds members but us.
	for i := range r.groups {
		r.healGroup(i)
	}
	var errs []error
	for i := range r.groups {
		if err := r.checkGroup(i); err != nil {
			errs = append(errs, err)
			if len(errs) >= 8 {
				errs = append(errs, errors.New("slo: further invariant errors suppressed"))
				break
			}
		}
	}
	return errors.Join(errs...)
}

func (r *runner) checkGroup(i int) error {
	gi := &r.groups[i]
	issued := r.issuedMuts[i].Load()
	acked := r.ackedMuts[i].Load()
	accWant := r.ackedAcc[i].Load()

	// Converge: every hosting member settles (not syncing; ACTIVE members
	// agree on last executed msg).
	deadline := time.Now().Add(20 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		members, err := r.dom.RM.Members(gi.gid)
		if err != nil || len(members) == 0 {
			lastErr = fmt.Errorf("members: %w", err)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		settled := true
		var execs []uint64
		for _, m := range members {
			n := r.dom.Node(m)
			if n == nil {
				settled = false
				break
			}
			st, hosted := n.Engine.GroupStatus(gi.gid)
			if !hosted || st.Syncing {
				settled = false
				break
			}
			execs = append(execs, st.LastExec)
		}
		if settled && (gi.style == replication.Active || gi.style.IsLeaderFollower()) {
			for _, e := range execs {
				if e != execs[0] {
					settled = false
					break
				}
			}
		}
		if !settled {
			lastErr = errors.New("members not settled")
			time.Sleep(10 * time.Millisecond)
			continue
		}
		out, err := gi.proxy.Invoke("stats")
		if err != nil {
			lastErr = fmt.Errorf("stats: %w", err)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		muts, acc := out[0].AsLongLong(), out[1].AsLongLong()
		if muts < acked || muts > issued {
			lastErr = fmt.Errorf("exactly-once violated: executed=%d outside acked=%d..issued=%d", muts, acked, issued)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if muts == acked && acc != accWant {
			lastErr = fmt.Errorf("state divergence: acc=%d want %d at %d ops", acc, accWant, muts)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		// Passive styles log every operation; checkpoint-anchored compaction
		// must keep the live WAL bounded regardless of how many ops the run
		// drove. (Active styles keep no operation log, so there is nothing
		// to bound.) Retried because the scan can race a truncation.
		if gi.style.IsPassive() || gi.style.IsLeaderFollower() {
			over := ""
			for _, m := range members {
				if n := r.dom.Node(m); n != nil {
					if l, ok := n.Engine.LogLen(gi.gid); ok && l > walBound {
						over = fmt.Sprintf("WAL unbounded on %s: %d live records > bound %d (%d mutations driven)", m, l, walBound, issued)
						break
					}
				}
			}
			if over != "" {
				lastErr = errors.New(over)
				time.Sleep(10 * time.Millisecond)
				continue
			}
		}
		return nil
	}
	return fmt.Errorf("slo: group %d (%s/%s, gid %d): %w",
		i, ScenarioName(gi.typeID), gi.style, gi.gid, lastErr)
}
