package slo

import (
	"math"
	"testing"
	"time"
)

// TestArrivalsDeterministic: the schedule is a pure function of the config.
func TestArrivalsDeterministic(t *testing.T) {
	cfg := ArrivalConfig{Seed: 1234, Rate: 5000, Duration: 2 * time.Second, Clients: 100000, Burst: 4}
	a := GenArrivals(cfg)
	b := GenArrivals(cfg)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if HashArrivals(a) != HashArrivals(b) {
		t.Fatal("same config produced different schedules")
	}
	cfg.Seed++
	if HashArrivals(GenArrivals(cfg)) == HashArrivals(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestArrivalsPoissonRate: the pure Poisson process hits the configured
// mean rate within statistical tolerance, and the schedule is time-ordered.
func TestArrivalsPoissonRate(t *testing.T) {
	const rate, secs = 20000.0, 5.0
	a := GenArrivals(ArrivalConfig{Seed: 7, Rate: rate, Duration: 5 * time.Second, Clients: 1 << 20})
	want := rate * secs
	sigma := math.Sqrt(want)
	if got := float64(len(a)); math.Abs(got-want) > 6*sigma {
		t.Fatalf("arrival count %v outside %v ± 6·%.0f", got, want, sigma)
	}
	for i := 1; i < len(a); i++ {
		if a[i].Due < a[i-1].Due {
			t.Fatalf("schedule not time-ordered at %d", i)
		}
	}
	last := a[len(a)-1].Due
	if last >= int64(5*time.Second) || last < int64(4*time.Second) {
		t.Fatalf("last arrival at %v, want within the final second of the horizon", time.Duration(last))
	}
}

// TestArrivalsBurstPreservesMean: burst modulation redistributes arrivals
// into the ON phase without changing the overall mean rate.
func TestArrivalsBurstPreservesMean(t *testing.T) {
	const rate, secs, burst = 20000.0, 5.0, 5.0
	a := GenArrivals(ArrivalConfig{Seed: 7, Rate: rate, Duration: 5 * time.Second, Clients: 1 << 20, Burst: burst})
	want := rate * secs
	sigma := math.Sqrt(want)
	if got := float64(len(a)); math.Abs(got-want) > 6*sigma {
		t.Fatalf("burst arrival count %v outside %v ± 6·%.0f", got, want, sigma)
	}
	// The ON phase (first 10%% of each 1s cycle) must carry burst·10%% of
	// the arrivals.
	on := 0
	for i := range a {
		sec := float64(a[i].Due) / float64(time.Second)
		if sec-math.Floor(sec) < burstOnFraction {
			on++
		}
	}
	wantOn := burst * burstOnFraction * float64(len(a))
	if math.Abs(float64(on)-wantOn) > 6*math.Sqrt(wantOn) {
		t.Fatalf("ON-phase arrivals %d, want ≈ %.0f", on, wantOn)
	}
}

// TestArrivalsClientPopulation: issuers draw from the whole population and
// the distinct-client count is consistent.
func TestArrivalsClientPopulation(t *testing.T) {
	const clients = 1 << 20 // a million simulated clients
	a := GenArrivals(ArrivalConfig{Seed: 3, Rate: 50000, Duration: 4 * time.Second, Clients: clients})
	distinct := CountDistinctClients(a, clients)
	if distinct > len(a) || distinct > clients {
		t.Fatalf("distinct %d inconsistent with %d arrivals, %d population", distinct, len(a), clients)
	}
	// With n draws from m clients, E[distinct] = m(1-(1-1/m)^n); allow 2%.
	n, m := float64(len(a)), float64(clients)
	want := m * (1 - math.Pow(1-1/m, n))
	if math.Abs(float64(distinct)-want) > 0.02*want {
		t.Fatalf("distinct clients %d, want ≈ %.0f", distinct, want)
	}
	for i := range a {
		if a[i].Client >= clients {
			t.Fatalf("client %d outside population", a[i].Client)
		}
	}
}

// TestGroupOf: the client→group hash covers all groups roughly uniformly.
func TestGroupOf(t *testing.T) {
	const groups = 64
	var counts [groups]int
	for c := uint32(0); c < 100000; c++ {
		counts[groupOf(c, groups)]++
	}
	want := 100000.0 / groups
	for g, n := range counts {
		if math.Abs(float64(n)-want) > want/2 {
			t.Fatalf("group %d has %d clients, want ≈ %.0f", g, n, want)
		}
	}
}
