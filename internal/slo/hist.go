// Package slo is the open-loop SLO workload harness: it schedules
// invocation arrivals from a Poisson (or bursty) process against many
// object groups and a large population of lightweight simulated clients,
// drives them through a goroutine pool (never one goroutine per client),
// and records full latency distributions with coordinated-omission
// correction — every sample is measured from the arrival's *intended*
// start time, so a stalled server is charged for the requests that should
// have been issued while it stalled, not just the one that observed the
// stall.
//
// It composes with internal/chaos schedules ("SLO under chaos"): fault
// episodes are applied to the live domain while the open-loop load runs,
// and blackout windows are reported as percentiles over (episode, group)
// pairs rather than as means. cmd/ftbench's "slo" experiment mode drives
// it and exports the percentiles into the BENCH_*.json / benchcmp
// regression-gating pipeline.
package slo

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear, HdrHistogram style. Values (ns) are
// bucketed by power-of-two tier with histSubCount linear sub-buckets per
// tier, so the relative quantization error is bounded by 1/histSubCount
// (~3.1%) across the full int64 range. The bucket array is a fixed-size
// value member: recording is pure index math plus atomic adds — no
// allocation, no locks — so one histogram can absorb the whole worker
// pool's completions on the hot path.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	histTiers    = 64 - histSubBits
	histBuckets  = histTiers * histSubCount
)

// Hist is a fixed-bucket latency histogram in nanoseconds. All methods are
// safe for concurrent use; Record never allocates.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	h := &Hist{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIdx maps a non-negative value to its bucket.
func bucketIdx(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u) // tier 0: exact
	}
	msb := 63 - bits.LeadingZeros64(u)
	tier := msb - histSubBits + 1
	sub := int((u >> uint(msb-histSubBits)) & (histSubCount - 1))
	return tier*histSubCount + sub
}

// bucketHigh is the highest value mapping to the bucket — the conservative
// representative reported for percentiles (an SLO gate should round up).
func bucketHigh(idx int) int64 {
	tier := idx / histSubCount
	sub := idx % histSubCount
	if tier == 0 {
		return int64(sub)
	}
	shift := uint(tier - 1)
	return int64(histSubCount+sub+1)<<shift - 1
}

// Record adds one sample. Negative values clamp to zero.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Mean returns the mean of recorded samples (exact, from the running sum).
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Max returns the largest recorded sample (exact).
func (h *Hist) Max() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Min returns the smallest recorded sample (exact).
func (h *Hist) Min() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Quantile returns the value at quantile q in [0,1]: the upper bound of the
// bucket containing the ceil(q·n)-th sample, clamped to the exact observed
// maximum. Quantile(0) is the min, Quantile(1) the max.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	target := uint64(math.Ceil(q * float64(n)))
	if target > n {
		target = n
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			v := bucketHigh(i)
			if m := h.max.Load(); v > m {
				v = m // the top bucket's bound can exceed the true max
			}
			if m := h.min.Load(); v < m {
				v = m
			}
			return time.Duration(v)
		}
	}
	return h.Max()
}

// Merge adds o's samples into h. Merging is commutative and associative up
// to bucket counts, sums, and extrema, so shards can be combined in any
// order.
func (h *Hist) Merge(o *Hist) {
	if o == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	n := o.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(o.sum.Load())
	for {
		m, v := h.max.Load(), o.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m, v := h.min.Load(), o.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
}

// Snapshot bundles the headline percentiles of one histogram.
type Snapshot struct {
	Count          uint64
	Mean           time.Duration
	P50, P99, P999 time.Duration
	Max            time.Duration
}

// Snap computes the headline percentiles.
func (h *Hist) Snap() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}
