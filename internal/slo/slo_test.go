package slo

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/replication"
)

// TestSLOCalmRun drives a small calm workload end to end: every arrival
// completes, no invariant trips, and the bookkeeping is self-consistent.
func TestSLOCalmRun(t *testing.T) {
	res, err := Run(Config{
		Seed:     11,
		Groups:   6,
		Clients:  20000,
		Workers:  64,
		Rate:     300,
		Duration: 2 * time.Second,
		Styles:   []replication.Style{replication.Active, replication.WarmPassive},
		Progress: t.Logf,
	})
	if err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors in a calm run", res.Errors)
	}
	if res.Acked != int64(res.Arrivals) {
		t.Fatalf("acked %d of %d arrivals", res.Acked, res.Arrivals)
	}
	if got := res.All.Count(); got != uint64(res.Arrivals) {
		t.Fatalf("histogram holds %d samples, want %d", got, res.Arrivals)
	}
	// With no chaos, every arrival is calm and the calm histogram is the
	// whole distribution.
	if res.Calm.Count() != res.All.Count() {
		t.Fatalf("calm %d != all %d without chaos", res.Calm.Count(), res.All.Count())
	}
	var styled uint64
	for _, h := range res.ByStyle {
		styled += h.Count()
	}
	if styled != res.All.Count() {
		t.Fatalf("style split %d != all %d", styled, res.All.Count())
	}
	if res.Goodput <= 0 || res.ActiveClients == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.All.Quantile(0.999) > 5*time.Second {
		t.Fatalf("calm p999 %v is absurd", res.All.Quantile(0.999))
	}
}

// TestSLOHarnessDeterministic: the same seed and chaos plan must reproduce
// the identical arrival schedule and the identical fault schedule, and both
// runs must finish invariant-clean. (Latencies differ — wall-clock noise is
// real — but everything the harness *injects* replays bit-identically.)
func TestSLOHarnessDeterministic(t *testing.T) {
	cfg := Config{
		Seed:     43,
		Groups:   6,
		Replicas: 3,
		Clients:  20000,
		Workers:  64,
		Rate:     250,
		Duration: 4 * time.Second,
		Chaos: &ChaosPlan{
			Kinds:    []chaos.EpisodeKind{chaos.EpCrashRestart, chaos.EpTokenDrop, chaos.EpDelaySpike},
			Episodes: 2,
		},
		Progress: t.Logf,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 1 invariants: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 2 invariants: %v", err)
	}
	if a.ScheduleHash != b.ScheduleHash || a.Arrivals != b.Arrivals {
		t.Fatalf("arrival schedules diverged: %x/%d vs %x/%d",
			a.ScheduleHash, a.Arrivals, b.ScheduleHash, b.Arrivals)
	}
	if !reflect.DeepEqual(a.ChaosSchedule, b.ChaosSchedule) {
		t.Fatalf("chaos schedules diverged:\n%s\nvs\n%s",
			a.ChaosSchedule.Describe(), b.ChaosSchedule.Describe())
	}
	if len(a.ChaosSchedule.Episodes) != 2 {
		t.Fatalf("want 2 episodes, got %d", len(a.ChaosSchedule.Episodes))
	}
	// The fault windows must have caught traffic on both runs: arrivals
	// intended inside an episode window land in the per-kind histograms.
	for _, res := range []*Result{a, b} {
		var faulted uint64
		for _, h := range res.ByKind {
			faulted += h.Count()
		}
		if faulted == 0 {
			t.Fatal("no arrivals classified into fault windows")
		}
		if res.Calm.Count()+faulted != res.All.Count() {
			t.Fatalf("window classification leaks samples: calm %d + faulted %d != all %d",
				res.Calm.Count(), faulted, res.All.Count())
		}
	}
}

// TestSLOCoordinatedOmission is the harness's reason to exist: stall the
// server mid-run and check that the open-loop percentiles (measured from
// intended arrival times) absorb the queueing that the closed-loop view
// (measured from actual invocation start) silently omits.
func TestSLOCoordinatedOmission(t *testing.T) {
	const stall = 1500 * time.Millisecond
	gate := &StallGate{}
	res, err := Run(Config{
		Seed:     5,
		Groups:   1,
		Clients:  5000,
		Workers:  8, // a small pool: most stalled-window arrivals queue behind it
		Rate:     400,
		Duration: 5 * time.Second,
		Stall:    gate,
		OnStart: func() {
			// Stall the servants from 1s into the run until 1s+stall.
			time.AfterFunc(time.Second, func() {
				gate.StallUntil(time.Now().Add(stall))
			})
		},
		Progress: t.Logf,
	})
	if err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	open := res.All.Quantile(0.99)
	closed := res.Service.Quantile(0.99)
	t.Logf("open-loop p99 %v, closed-loop p99 %v (stall %v)", open, closed, stall)
	// ~600 arrivals are due during the stall but only 8 workers block inside
	// invocations, so the closed-loop p99 barely sees it while the open-loop
	// p99 must reflect a large fraction of the stall.
	if open < stall/3 {
		t.Fatalf("open-loop p99 %v does not reflect the %v stall", open, stall)
	}
	if closed >= open/2 {
		t.Fatalf("closed-loop p99 %v too close to open-loop %v: the delta is the point", closed, open)
	}
}

// TestSLOWALBounded drives an SLO-shaped cold-passive load heavy enough
// that each group logs many checkpoint periods' worth of operations, then
// relies on checkInvariants' WAL-bound assertion (via Run) and re-verifies
// the bound directly: compaction must hold every member's live log at one
// checkpoint plus at most ~two periods of updates no matter how many ops
// were driven.
func TestSLOWALBounded(t *testing.T) {
	res, err := Run(Config{
		Seed:     17,
		Groups:   4,
		Clients:  8000,
		Workers:  64,
		Rate:     600,
		Duration: 2 * time.Second,
		Styles:   []replication.Style{replication.ColdPassive, replication.WarmPassive},
		Progress: t.Logf,
	})
	if err != nil {
		t.Fatalf("invariants (includes WAL bound): %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors in a calm run", res.Errors)
	}
	// Sanity: the run must actually have driven enough mutations per group
	// to exceed the bound many times over, or the invariant proves nothing.
	perGroup := float64(res.Acked) / float64(res.Groups)
	if perGroup < 4*walBound {
		t.Fatalf("only ~%.0f ops/group acked; need ≥ %d for the bound to bite", perGroup, 4*walBound)
	}
}

// TestSLOLegacyAbsorbers keeps the pre-adaptive provisioning profile
// selectable: the A/B flag must still provision and run invariant-clean.
func TestSLOLegacyAbsorbers(t *testing.T) {
	res, err := Run(Config{
		Seed:            23,
		Groups:          6,
		Clients:         8000,
		Workers:         32,
		Rate:            200,
		Duration:        time.Second,
		LegacyAbsorbers: true,
		Progress:        t.Logf,
	})
	if err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors in a calm legacy-absorber run", res.Errors)
	}
}

// TestSLOLeaderFollowerReadHeavy drives the LEADER_FOLLOWER style through
// the harness with an explicit 90% read mix: reads ride the leased local
// path, writes the direct leader path, and the exactly-once + WAL-bound
// invariants (checked inside Run) must still hold.
func TestSLOLeaderFollowerReadHeavy(t *testing.T) {
	res, err := Run(Config{
		Seed:      31,
		Groups:    6,
		Replicas:  3,
		Clients:   20000,
		Workers:   64,
		Rate:      400,
		Duration:  2 * time.Second,
		ReadShare: 0.9,
		Styles:    []replication.Style{replication.LeaderFollower},
		Progress:  t.Logf,
	})
	if err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors in a calm LF run", res.Errors)
	}
	if res.Acked != int64(res.Arrivals) {
		t.Fatalf("acked %d of %d arrivals", res.Acked, res.Arrivals)
	}
	st, ok := res.ByStyle["LEADER_FOLLOWER"]
	if !ok || st.Count() == 0 {
		t.Fatalf("no LEADER_FOLLOWER samples: %v", res.ByStyle)
	}
	// The 0.9 cut must actually skew the mix: mutations should be a small
	// minority of arrivals (binomially ~10%; assert < 20%).
	if res.Mutations*5 > int64(res.Arrivals) {
		t.Fatalf("read-heavy mix not applied: %d mutations of %d arrivals", res.Mutations, res.Arrivals)
	}
}
