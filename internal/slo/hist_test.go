package slo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistBucketBoundaries checks the bucket layout invariants exhaustively
// at every tier edge: indices are monotone, every value maps inside its
// bucket's range, and adjacent buckets tile the value space with no gap.
func TestHistBucketBoundaries(t *testing.T) {
	// Tier 0 is exact.
	for v := int64(0); v < histSubCount; v++ {
		if got := bucketIdx(v); got != int(v) {
			t.Fatalf("bucketIdx(%d) = %d, want exact", v, got)
		}
		if got := bucketHigh(int(v)); got != v {
			t.Fatalf("bucketHigh(%d) = %d, want %d", v, got, v)
		}
	}
	// Every bucket's reported upper bound must itself map into that bucket,
	// and the next value must map into a later bucket (no overlap, no gap).
	for idx := 0; idx < histBuckets; idx++ {
		hi := bucketHigh(idx)
		if hi < 0 {
			// The top tier's bound overflows int64; Quantile clamps to the
			// observed max so the wrap is unreachable in reports.
			continue
		}
		if got := bucketIdx(hi); got != idx {
			t.Fatalf("bucketIdx(bucketHigh(%d)=%d) = %d", idx, hi, got)
		}
		if got := bucketIdx(hi + 1); got != idx+1 {
			t.Fatalf("bucketIdx(%d) = %d, want %d (next bucket)", hi+1, got, idx+1)
		}
	}
	// Around every power of two, values must never land in an earlier
	// bucket than smaller values (monotonicity at tier crossings).
	for shift := uint(5); shift < 62; shift++ {
		edge := int64(1) << shift
		for _, v := range []int64{edge - 2, edge - 1, edge, edge + 1} {
			for _, w := range []int64{v + 1, v + 2} {
				if bucketIdx(w) < bucketIdx(v) {
					t.Fatalf("bucketIdx not monotone: idx(%d)=%d > idx(%d)=%d",
						v, bucketIdx(v), w, bucketIdx(w))
				}
			}
		}
	}
}

// TestHistRelativeError checks the quantization guarantee: a bucket's upper
// bound overestimates any value in the bucket by at most 1/histSubCount.
func TestHistRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		v := rng.Int63n(int64(10 * time.Minute))
		hi := bucketHigh(bucketIdx(v))
		if hi < v {
			t.Fatalf("bucketHigh(%d) = %d underestimates", v, hi)
		}
		if v >= histSubCount {
			if relErr := float64(hi-v) / float64(v); relErr > 1.0/histSubCount {
				t.Fatalf("relative error %.4f > %.4f for %d (hi %d)",
					relErr, 1.0/histSubCount, v, hi)
			}
		}
	}
}

// TestHistQuantileOracle compares histogram percentiles against a sorted
// slice of the same samples: the histogram answer must bound the exact
// order statistic from above within the bucket-width error.
func TestHistQuantileOracle(t *testing.T) {
	dists := map[string]func(r *rand.Rand) int64{
		"uniform": func(r *rand.Rand) int64 { return r.Int63n(int64(time.Second)) },
		"exp": func(r *rand.Rand) int64 {
			return int64(r.ExpFloat64() * float64(2*time.Millisecond))
		},
		"bimodal": func(r *rand.Rand) int64 {
			if r.Intn(100) == 0 {
				return int64(time.Second) + r.Int63n(int64(time.Second))
			}
			return r.Int63n(int64(time.Millisecond))
		},
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			h := NewHist()
			const n = 100000
			samples := make([]int64, n)
			for i := range samples {
				samples[i] = gen(rng)
				h.Record(time.Duration(samples[i]))
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
				// The histogram reports the ceil(q·n)-th order statistic
				// (1-indexed); index the oracle identically.
				k := int(math.Ceil(q*float64(n))) - 1
				if k < 0 {
					k = 0
				}
				if k >= n {
					k = n - 1
				}
				exact := samples[k]
				got := int64(h.Quantile(q))
				if got < exact {
					t.Errorf("q%.3f: hist %d < exact %d (must bound from above)", q, got, exact)
				}
				slack := exact/histSubCount + 1
				if got > exact+slack {
					t.Errorf("q%.3f: hist %d > exact %d + slack %d", q, got, exact, slack)
				}
			}
			if h.Count() != n {
				t.Errorf("count %d, want %d", h.Count(), n)
			}
			if int64(h.Min()) != samples[0] || int64(h.Max()) != samples[n-1] {
				t.Errorf("min/max %v/%v, want %d/%d", h.Min(), h.Max(), samples[0], samples[n-1])
			}
		})
	}
}

// TestHistMergeAssociative checks that merging shard histograms is
// order-independent: (a⊕b)⊕c and a⊕(b⊕c) agree on every count, the sum,
// and the extrema.
func TestHistMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func(n int, scale int64) *Hist {
		h := NewHist()
		for i := 0; i < n; i++ {
			h.Record(time.Duration(rng.Int63n(scale)))
		}
		return h
	}
	fill := []*Hist{mk(1000, int64(time.Millisecond)), mk(500, int64(time.Second)), mk(2000, 100)}

	left := NewHist() // ((a ⊕ b) ⊕ c)
	for _, h := range fill {
		left.Merge(h)
	}
	right := NewHist() // (a ⊕ (b ⊕ c))
	bc := NewHist()
	bc.Merge(fill[1])
	bc.Merge(fill[2])
	right.Merge(bc)
	rightFinal := NewHist()
	rightFinal.Merge(fill[0])
	rightFinal.Merge(right)

	if left.Count() != rightFinal.Count() || left.sum.Load() != rightFinal.sum.Load() ||
		left.Max() != rightFinal.Max() || left.Min() != rightFinal.Min() {
		t.Fatalf("merge not associative: %+v vs %+v", left.Snap(), rightFinal.Snap())
	}
	for i := 0; i < histBuckets; i++ {
		if left.counts[i].Load() != rightFinal.counts[i].Load() {
			t.Fatalf("bucket %d: %d vs %d", i, left.counts[i].Load(), rightFinal.counts[i].Load())
		}
	}
	// Merging an empty histogram is the identity.
	before := left.Snap()
	left.Merge(NewHist())
	left.Merge(nil)
	if left.Snap() != before {
		t.Fatalf("empty merge changed the histogram: %+v vs %+v", left.Snap(), before)
	}
}

// TestHistRecordNoAlloc pins the hot-path guarantee: Record and Quantile
// never allocate, so the worker pool can hammer one histogram without GC
// involvement.
func TestHistRecordNoAlloc(t *testing.T) {
	h := NewHist()
	v := time.Duration(0)
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 977 // sweep many buckets
	}); n != 0 {
		t.Fatalf("Record allocates %.1f per call", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = h.Quantile(0.99)
	}); n != 0 {
		t.Fatalf("Quantile allocates %.1f per call", n)
	}
}

// TestHistEmptyAndClamp covers the degenerate cases.
func TestHistEmptyAndClamp(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5 * time.Second) // clamps to zero
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample must clamp: %+v", h.Snap())
	}
	h2 := NewHist()
	h2.Record(10 * time.Millisecond)
	if got := h2.Quantile(0.5); got != 10*time.Millisecond {
		// Single sample: every quantile must clamp to the observed extremum.
		t.Fatalf("single-sample quantile = %v", got)
	}
}
