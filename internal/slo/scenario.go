package slo

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/orb"
)

// The workload mixes the three application scenarios from examples/: bank
// transfers, inventory reservations, and trader feeds. Each scenario is a
// compact servant sharing one accounting convention so the harness can
// check exactly-once semantics uniformly: every mutating operation bumps
// `muts` and folds a deterministic function of its arguments into `acc`,
// and the read operation "stats" returns both. Servants are Checkpointable
// so every replication style (and RM-driven recovery under chaos) works.

// Scenario repository ids.
const (
	BankType      = "IDL:repro/slo/Bank:1.0"
	InventoryType = "IDL:repro/slo/Inventory:1.0"
	TraderType    = "IDL:repro/slo/Trader:1.0"
)

// ScenarioTypes lists the scenario repository ids in placement order.
var ScenarioTypes = []string{BankType, InventoryType, TraderType}

// ScenarioName maps a repository id to its short name (report labels).
func ScenarioName(typeID string) string {
	switch typeID {
	case BankType:
		return "bank"
	case InventoryType:
		return "inventory"
	case TraderType:
		return "trader"
	}
	return "unknown"
}

// StallGate injects a server-side stall: while armed, every mutating
// dispatch sleeps until the gate's deadline. The coordinated-omission tests
// use it to freeze a group mid-run; a nil gate costs one atomic load per
// dispatch.
type StallGate struct {
	until atomic.Int64 // UnixNano deadline; 0 = disarmed
}

// StallUntil arms the gate: dispatches before t sleep until t.
func (g *StallGate) StallUntil(t time.Time) { g.until.Store(t.UnixNano()) }

func (g *StallGate) wait() {
	if g == nil {
		return
	}
	u := g.until.Load()
	if u == 0 {
		return
	}
	if d := time.Until(time.Unix(0, u)); d > 0 {
		time.Sleep(d)
	}
}

// scenarioState is the shared accounting core of every scenario servant.
type scenarioState struct {
	mu   sync.Mutex
	muts int64 // mutating operations applied
	acc  int64 // deterministic fold of mutating-op arguments
}

func (s *scenarioState) apply(amount int64) []cdr.Value {
	s.mu.Lock()
	s.muts++
	s.acc += amount
	muts, acc := s.muts, s.acc
	s.mu.Unlock()
	return []cdr.Value{cdr.LongLong(muts), cdr.LongLong(acc)}
}

func (s *scenarioState) stats() []cdr.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	return []cdr.Value{cdr.LongLong(s.muts), cdr.LongLong(s.acc)}
}

// GetState serializes the accounting core (orb.Checkpointable).
func (s *scenarioState) GetState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(s.muts)
	e.WriteLongLong(s.acc)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

// SetState installs a snapshot (orb.Checkpointable).
func (s *scenarioState) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	muts, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	acc, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.muts, s.acc = muts, acc
	s.mu.Unlock()
	return nil
}

// Bank models the bankidl example: deposits and transfers against one
// replicated branch.
type Bank struct {
	scenarioState
	gate *StallGate
}

// RepoID names the servant type.
func (b *Bank) RepoID() string { return BankType }

// Dispatch executes deposit(amount), transfer(amount), or stats().
func (b *Bank) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	switch inv.Operation {
	case "deposit":
		b.gate.wait()
		return b.apply(int64(inv.Args[0].AsLong())), nil
	case "transfer":
		b.gate.wait()
		// A transfer debits one account and credits another inside the
		// branch: net acc delta is the fee-free amount, op-counted once.
		return b.apply(int64(inv.Args[0].AsLong())), nil
	case "stats":
		return b.stats(), nil
	}
	return nil, &orb.UserException{Name: "IDL:repro/slo/BadOp:1.0"}
}

// Inventory models the inventory example: stock reservations.
type Inventory struct {
	scenarioState
	gate *StallGate
}

// RepoID names the servant type.
func (s *Inventory) RepoID() string { return InventoryType }

// Dispatch executes reserve(n), restock(n), or stats().
func (s *Inventory) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	switch inv.Operation {
	case "reserve":
		s.gate.wait()
		return s.apply(-int64(inv.Args[0].AsLong())), nil
	case "restock":
		s.gate.wait()
		return s.apply(int64(inv.Args[0].AsLong())), nil
	case "stats":
		return s.stats(), nil
	}
	return nil, &orb.UserException{Name: "IDL:repro/slo/BadOp:1.0"}
}

// Trader models the trader example: a position feed.
type Trader struct {
	scenarioState
	gate *StallGate
}

// RepoID names the servant type.
func (t *Trader) RepoID() string { return TraderType }

// Dispatch executes quote(px), settle(px), or stats().
func (t *Trader) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	switch inv.Operation {
	case "quote":
		t.gate.wait()
		return t.apply(int64(inv.Args[0].AsLong())), nil
	case "settle":
		t.gate.wait()
		return t.apply(int64(inv.Args[0].AsLong())), nil
	case "stats":
		return t.stats(), nil
	}
	return nil, &orb.UserException{Name: "IDL:repro/slo/BadOp:1.0"}
}

// NewScenarioServant builds a fresh servant of the given scenario type
// wired to the (possibly nil) stall gate.
func NewScenarioServant(typeID string, gate *StallGate) orb.Servant {
	switch typeID {
	case BankType:
		return &Bank{gate: gate}
	case InventoryType:
		return &Inventory{gate: gate}
	case TraderType:
		return &Trader{gate: gate}
	}
	return nil
}

// scenarioOp maps an arrival's uniform op selector onto the scenario's
// operation mix. It returns the operation name, its argument, and whether
// the operation mutates state (reads are ~10% of each mix and are excluded
// from the exactly-once accounting). A non-zero readCut overrides the
// default mix with an explicit read share: selectors below the cut read,
// the rest split across the scenario's two mutating operations — the
// read-heavy workloads the leased local-read path is measured under.
func scenarioOp(typeID string, sel uint8, readCut uint8) (op string, arg int32, mutating bool) {
	// sel is uniform in [0,256). The argument is derived from the selector
	// so replicas of a group fold identical values into acc.
	amount := int32(sel%97) + 1
	if readCut > 0 {
		if sel < readCut {
			return "stats", 0, false
		}
		first := (sel-readCut)%2 == 0
		switch typeID {
		case BankType:
			if first {
				return "deposit", amount, true
			}
			return "transfer", amount, true
		case InventoryType:
			if first {
				return "reserve", amount, true
			}
			return "restock", amount, true
		case TraderType:
			if first {
				return "quote", amount, true
			}
			return "settle", amount, true
		}
		return "stats", 0, false
	}
	switch typeID {
	case BankType:
		switch {
		case sel < 160:
			return "deposit", amount, true
		case sel < 230:
			return "transfer", amount, true
		default:
			return "stats", 0, false
		}
	case InventoryType:
		switch {
		case sel < 180:
			return "reserve", amount, true
		case sel < 230:
			return "restock", amount, true
		default:
			return "stats", 0, false
		}
	case TraderType:
		switch {
		case sel < 200:
			return "quote", amount, true
		case sel < 230:
			return "settle", amount, true
		default:
			return "stats", 0, false
		}
	}
	return "stats", 0, false
}

// opDelta is the acc delta a mutating op applies server-side (the client
// folds the same function to predict the authoritative accumulator).
func opDelta(typeID, op string, arg int32) int64 {
	if typeID == InventoryType && op == "reserve" {
		return -int64(arg)
	}
	return int64(arg)
}
