package slo

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/ftcorba"
	"repro/internal/totem"
)

// The chaos driver composes internal/chaos episode schedules with the
// open-loop load: where the chaos harness *alternates* faults and traffic,
// here faults land while the arrival schedule keeps firing, so the latency
// histograms capture what clients actually experience through a fault —
// the blackout, the retransmission tail, and the recovery hump.

// sloRingPort mirrors the core domain's base ring port (shard i is
// ShardPort(base, i)); EpShardPartition's drop filter targets it.
const sloRingPort = 4000

// chaosSeedSalt decorrelates the chaos rng from the arrival rng, which
// consumes the raw seed.
const chaosSeedSalt = 0x510C4A05C4A05

// chaosSchedule derives the run's fault schedule from its seed. The
// schedule depends only on (Seed, Replicas, Shards, Kinds, Episodes), so a
// rerun replays byte-identical faults.
func (r *runner) chaosSchedule() chaos.Schedule {
	p := r.cfg.Chaos
	rng := rand.New(rand.NewSource(r.cfg.Seed ^ chaosSeedSalt))
	replicas := make([]string, r.cfg.Replicas)
	for i := range replicas {
		replicas[i] = fmt.Sprintf("n%d", i+1)
	}
	s := chaos.GenerateFrom(rng, replicas, r.cfg.Shards, p.Episodes, p.Kinds)
	s.Seed = r.cfg.Seed
	return s
}

// applyChaos runs the episode schedule against the live domain: lead-in
// calm, then per episode open a measurement window, apply the fault, hold,
// clear it, close the window, and idle through the gap. It always restores
// the domain (fabric settings, downed nodes, group membership) before
// returning, even when the load finishes mid-episode.
func (r *runner) applyChaos(s chaos.Schedule, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	p := r.cfg.Chaos
	defer func() {
		r.dom.Fabric.SetDropFilter(nil)
		r.dom.Fabric.SetLoss(0)
		r.dom.Fabric.SetLatency(0, 0)
		r.dom.Heal()
	}()
	if !r.sleepOrStop(p.Lead, stop) {
		return
	}
	for i, ep := range s.Episodes {
		r.progress("slo: episode %d/%d: %s victim=%s", i+1, len(s.Episodes), ep.Kind, ep.Victim)
		widx := r.windows.open(ep.Kind.String(), int64(time.Since(r.t0)))
		r.applyEpisode(ep)
		r.sleepOrStop(p.Hold, stop) // hold even if the load drained: clear below must run
		r.clearEpisode(ep)
		r.windows.close(widx, int64(time.Since(r.t0)))
		if !r.sleepOrStop(p.Gap, stop) {
			return
		}
	}
}

// sleepOrStop sleeps d unless stop closes first; it reports whether the
// full sleep elapsed.
func (r *runner) sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

func (r *runner) applyEpisode(ep chaos.Episode) {
	f := r.dom.Fabric
	switch ep.Kind {
	case chaos.EpCrashRestart:
		r.dom.CrashNode(ep.Victim)
	case chaos.EpPartitionHeal:
		rest := []string{"client"}
		for i := 1; i <= r.cfg.Replicas; i++ {
			if n := fmt.Sprintf("n%d", i); n != ep.Victim {
				rest = append(rest, n)
			}
		}
		f.Partition(rest, []string{ep.Victim})
	case chaos.EpLossBurst:
		f.SetLoss(ep.Loss)
	case chaos.EpDelaySpike:
		f.SetLatency(ep.Delay, ep.Delay/2)
	case chaos.EpSlowNode:
		f.SetNodeDelay(ep.Victim, ep.Delay)
	case chaos.EpTokenDrop:
		var dropped atomic.Int64
		limit := int64(ep.Drops)
		f.SetDropFilter(func(from, to string, port uint16, payload []byte) bool {
			return from == ep.Victim && totem.Classify(payload) == totem.ClassToken &&
				dropped.Add(1) <= limit
		})
	case chaos.EpShardPartition:
		port := totem.ShardPort(sloRingPort, ep.Shard)
		f.SetDropFilter(func(from, to string, p uint16, payload []byte) bool {
			return p == port && (from == ep.Victim || to == ep.Victim)
		})
	}
}

func (r *runner) clearEpisode(ep chaos.Episode) {
	f := r.dom.Fabric
	switch ep.Kind {
	case chaos.EpCrashRestart:
		if err := r.dom.RestartNode(ep.Victim); err != nil {
			r.progress("slo: restart %s: %v", ep.Victim, err)
			return
		}
		r.repairMembership(ep.Victim)
	case chaos.EpPartitionHeal:
		f.Heal()
		r.repairMembership(ep.Victim)
	case chaos.EpLossBurst:
		f.SetLoss(0)
	case chaos.EpDelaySpike:
		f.SetLatency(0, 0)
	case chaos.EpSlowNode:
		f.SetNodeDelay(ep.Victim, 0)
	case chaos.EpTokenDrop, chaos.EpShardPartition:
		f.SetDropFilter(nil)
	}
}

// repairMembership re-adds the victim to every group the fault evicted it
// from. The groups run MembershipStyle APPLICATION, so the application —
// this harness — owns re-recruitment after a failure (the RM already
// shrank membership when the fault notifier reported the victim).
func (r *runner) repairMembership(victim string) {
	repaired := 0
	for i := range r.groups {
		members, err := r.dom.RM.Members(r.groups[i].gid)
		if err != nil {
			continue
		}
		present := false
		for _, m := range members {
			if m == victim {
				present = true
				break
			}
		}
		if present {
			continue
		}
		// AddMember state-transfers from a live member; retry briefly while
		// the restarted node's rings re-form.
		for attempt := 0; attempt < 50; attempt++ {
			_, err = r.dom.RM.AddMember(r.groups[i].gid, victim)
			if err == nil || errors.Is(err, ftcorba.ErrMemberExists) {
				repaired++
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil && !errors.Is(err, ftcorba.ErrMemberExists) {
			r.progress("slo: re-add %s to group %d: %v", victim, i, err)
		}
	}
	r.progress("slo: membership repaired: %s re-added to %d groups", victim, repaired)
}
