package naming_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/ior"
	"repro/internal/naming"
	"repro/internal/orb"
	"repro/internal/replication"
)

func newDomain(t *testing.T) *core.Domain {
	t.Helper()
	d, err := core.NewDomain(core.Options{
		Nodes:     []string{"n1", "n2", "n3", "n4"},
		Heartbeat: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return d
}

func deploy(t *testing.T, d *core.Domain) *naming.Client {
	t.Helper()
	c, err := naming.Deploy(d, replication.Active, 3)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sampleRef(name string) *ior.Ref {
	return ior.New("IDL:x/"+name+":1.0", "host", 1234, []byte(name))
}

func TestBindResolveUnbind(t *testing.T) {
	d := newDomain(t)
	ns := deploy(t, d)

	ref := sampleRef("printer")
	if err := ns.Bind("n4", "devices/printer", ref); err != nil {
		t.Fatal(err)
	}
	got, err := ns.Resolve("n4", "devices/printer")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ref) {
		t.Error("resolved reference differs")
	}

	// bind over an existing name fails; rebind succeeds.
	if err := ns.Bind("n4", "devices/printer", ref); !isExc(err, naming.ExcAlreadyBound) {
		t.Errorf("double bind: %v", err)
	}
	ref2 := sampleRef("printer2")
	if err := ns.Rebind("n4", "devices/printer", ref2); err != nil {
		t.Fatal(err)
	}
	got, _ = ns.Resolve("n4", "devices/printer")
	if !got.Equal(ref2) {
		t.Error("rebind did not replace")
	}

	if err := ns.Unbind("n4", "devices/printer"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Resolve("n4", "devices/printer"); !isExc(err, naming.ExcNotFound) {
		t.Errorf("resolve after unbind: %v", err)
	}
	if err := ns.Unbind("n4", "devices/printer"); !isExc(err, naming.ExcNotFound) {
		t.Errorf("double unbind: %v", err)
	}
}

func isExc(err error, name string) bool {
	var uexc *orb.UserException
	return errors.As(err, &uexc) && uexc.Name == name
}

func TestInvalidNames(t *testing.T) {
	d := newDomain(t)
	ns := deploy(t, d)
	for _, bad := range []string{"", "/abs", "trail/", "a//b"} {
		if err := ns.Bind("n4", bad, sampleRef("x")); !isExc(err, naming.ExcInvalidName) {
			t.Errorf("bind %q: %v", bad, err)
		}
	}
}

func TestListWithPrefix(t *testing.T) {
	d := newDomain(t)
	ns := deploy(t, d)
	for _, n := range []string{"svc/a", "svc/b", "dev/c"} {
		if err := ns.Bind("n4", n, sampleRef(n)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := ns.List("n4", "svc/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "svc/a" || names[1] != "svc/b" {
		t.Errorf("List = %v", names)
	}
	all, _ := ns.List("n4", "")
	if len(all) != 3 {
		t.Errorf("List all = %v", all)
	}
}

// TestNamingSurvivesCrash is the point of the exercise: the naming service
// is itself replicated, so losing a replica loses nothing.
func TestNamingSurvivesCrash(t *testing.T) {
	d := newDomain(t)
	ns := deploy(t, d)
	if err := ns.Bind("n4", "critical/service", sampleRef("s")); err != nil {
		t.Fatal(err)
	}
	members, _ := d.RM.Members(ns.GroupID())
	d.CrashNode(members[0])
	got, err := ns.Resolve("n4", "critical/service")
	if err != nil || got.IsNil() {
		t.Fatalf("resolve after crash: %v %v", got, err)
	}
}

// TestBootstrapFlow exercises the end-to-end pattern: create a group,
// bind its IOGR, and have a client bootstrap purely through the name.
func TestBootstrapFlow(t *testing.T) {
	d := newDomain(t)
	ns := deploy(t, d)

	// An application group to advertise.
	type dummy = namingDummy
	if err := d.RegisterFactory("IDL:x/Dummy:1.0", func() orb.Servant { return &dummy{} }); err != nil {
		t.Fatal(err)
	}
	iogr, gid, err := d.Create("dummy", "IDL:x/Dummy:1.0", &ftcorba.Properties{
		ReplicationStyle:      replication.Active,
		InitialNumberReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WaitGroupReady(gid, 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ns.Bind("n1", "apps/dummy", iogr); err != nil {
		t.Fatal(err)
	}

	// A client that knows only the name.
	resolvedGID, err := ns.ResolveGroup("n4", "apps/dummy")
	if err != nil {
		t.Fatal(err)
	}
	if resolvedGID != gid {
		t.Fatalf("resolved gid %d, want %d", resolvedGID, gid)
	}
	proxy, err := d.Proxy("n4", resolvedGID)
	if err != nil {
		t.Fatal(err)
	}
	out, err := proxy.Invoke("ping")
	if err != nil || out[0].AsString() != "pong" {
		t.Fatalf("bootstrap invoke: %v %v", out, err)
	}

	// Non-group binding rejected by ResolveGroup.
	if err := ns.Bind("n1", "apps/plain", sampleRef("p")); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.ResolveGroup("n4", "apps/plain"); !errors.Is(err, naming.ErrNotGroupRef) {
		t.Errorf("ResolveGroup on plain ref: %v", err)
	}
}

// namingDummy is a trivial checkpointable servant for the bootstrap test.
type namingDummy struct{ mu sync.Mutex }

func (*namingDummy) RepoID() string { return "IDL:x/Dummy:1.0" }

func (d *namingDummy) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	if inv.Operation == "ping" {
		return []cdr.Value{cdr.Str("pong")}, nil
	}
	return nil, &orb.UserException{Name: "IDL:x/Bad:1.0"}
}

func (*namingDummy) GetState() ([]byte, error) { return nil, nil }
func (*namingDummy) SetState([]byte) error     { return nil }

// TestStateTransferToNewReplica checks a recruited naming replica receives
// all bindings.
func TestStateTransferToNewReplica(t *testing.T) {
	d := newDomain(t)
	c, err := naming.Deploy(d, replication.WarmPassive, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b", "c"} {
		if err := c.Bind("n4", "x/"+n, sampleRef(n)); err != nil {
			t.Fatal(err)
		}
	}
	members, _ := d.RM.Members(c.GroupID())
	spare := ""
	for _, n := range d.Nodes() {
		in := false
		for _, m := range members {
			if m == n {
				in = true
			}
		}
		if !in {
			spare = n
			break
		}
	}
	if _, err := d.RM.AddMember(c.GroupID(), spare); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitGroupReady(c.GroupID(), 3, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Kill the two original members; only the recruit survives.
	for _, m := range members {
		d.CrashNode(m)
	}
	names, err := c.List("n4", "x/")
	if err != nil || len(names) != 3 {
		t.Fatalf("bindings after total original loss: %v %v", names, err)
	}
}
