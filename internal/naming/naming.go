// Package naming implements a CosNaming-style naming service for the FT
// domain — and hosts it the way the paper's systems did: the naming
// service is itself a replicated object group, made fault-tolerant by the
// same infrastructure it helps clients bootstrap into.
//
// Names are hierarchical ("ctx/sub/obj"); bindings map a name to a
// stringified object (group) reference. The servant is deterministic and
// checkpointable, so it can run under any replication style.
package naming

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/ior"
	"repro/internal/orb"
	"repro/internal/replication"
)

// TypeID is the naming service's repository id.
const TypeID = "IDL:repro/NamingContext:1.0"

// Exception names raised by the service.
const (
	ExcNotFound     = "IDL:repro/CosNaming/NotFound:1.0"
	ExcAlreadyBound = "IDL:repro/CosNaming/AlreadyBound:1.0"
	ExcInvalidName  = "IDL:repro/CosNaming/InvalidName:1.0"
)

// Servant is the naming-context implementation.
type Servant struct {
	mu       sync.Mutex
	bindings map[string]string // name -> stringified ref
}

// NewServant creates an empty naming context.
func NewServant() *Servant {
	return &Servant{bindings: make(map[string]string)}
}

// RepoID returns the repository id.
func (s *Servant) RepoID() string { return TypeID }

func validName(n string) bool {
	if n == "" || strings.HasPrefix(n, "/") || strings.HasSuffix(n, "/") {
		return false
	}
	for _, seg := range strings.Split(n, "/") {
		if seg == "" {
			return false
		}
	}
	return true
}

// Dispatch implements bind, rebind, resolve, unbind, and list.
func (s *Servant) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch inv.Operation {
	case "bind", "rebind":
		name := inv.Args[0].AsString()
		if !validName(name) {
			return nil, &orb.UserException{Name: ExcInvalidName, Info: []cdr.Value{cdr.Str(name)}}
		}
		if _, exists := s.bindings[name]; exists && inv.Operation == "bind" {
			return nil, &orb.UserException{Name: ExcAlreadyBound, Info: []cdr.Value{cdr.Str(name)}}
		}
		s.bindings[name] = inv.Args[1].AsString()
		return nil, nil
	case "resolve":
		name := inv.Args[0].AsString()
		ref, ok := s.bindings[name]
		if !ok {
			return nil, &orb.UserException{Name: ExcNotFound, Info: []cdr.Value{cdr.Str(name)}}
		}
		return []cdr.Value{cdr.Str(ref)}, nil
	case "unbind":
		name := inv.Args[0].AsString()
		if _, ok := s.bindings[name]; !ok {
			return nil, &orb.UserException{Name: ExcNotFound, Info: []cdr.Value{cdr.Str(name)}}
		}
		delete(s.bindings, name)
		return nil, nil
	case "list":
		prefix := inv.Args[0].AsString()
		names := make([]string, 0, len(s.bindings))
		for n := range s.bindings {
			if strings.HasPrefix(n, prefix) {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		out := make([]cdr.Value, len(names))
		for i, n := range names {
			out[i] = cdr.Str(n)
		}
		return []cdr.Value{cdr.Seq(out...)}, nil
	}
	return nil, &orb.UserException{Name: "IDL:repro/CosNaming/BadOperation:1.0"}
}

// GetState snapshots all bindings deterministically.
func (s *Servant) GetState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.bindings))
	for n := range s.bindings {
		names = append(names, n)
	}
	sort.Strings(names)
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteULong(uint32(len(names)))
	for _, n := range names {
		e.WriteString(n)
		e.WriteString(s.bindings[n])
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

// SetState restores bindings from a snapshot.
func (s *Servant) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	n, err := d.ReadULong()
	if err != nil {
		return err
	}
	bindings := make(map[string]string, n)
	for i := uint32(0); i < n; i++ {
		name, err := d.ReadString()
		if err != nil {
			return err
		}
		ref, err := d.ReadString()
		if err != nil {
			return err
		}
		bindings[name] = ref
	}
	s.mu.Lock()
	s.bindings = bindings
	s.mu.Unlock()
	return nil
}

// --- Deployment and client ---------------------------------------------------

// ErrNotGroupRef is returned by ResolveGroup for non-group bindings.
var ErrNotGroupRef = errors.New("naming: bound reference is not an object group")

// Deploy creates the replicated naming service in a domain and returns a
// client for it. replicas selects the degree (0 means 3, capped at the
// number of registered nodes).
func Deploy(d *core.Domain, style replication.Style, replicas int) (*Client, error) {
	if replicas <= 0 {
		replicas = 3
	}
	if n := len(d.Nodes()); replicas > n {
		replicas = n
	}
	if err := d.RegisterFactory(TypeID, func() orb.Servant { return NewServant() }); err != nil {
		return nil, err
	}
	_, gid, err := d.Create("naming", TypeID, &ftcorba.Properties{
		ReplicationStyle:      style,
		InitialNumberReplicas: replicas,
	})
	if err != nil {
		return nil, fmt.Errorf("naming: create: %w", err)
	}
	if err := d.WaitGroupReady(gid, replicas, 10*time.Second); err != nil {
		return nil, err
	}
	return &Client{domain: d, gid: gid}, nil
}

// Client invokes the naming service from any node of the domain.
type Client struct {
	domain *core.Domain
	gid    uint64
}

// GroupID returns the service's object group id (for bootstrap exchange).
func (c *Client) GroupID() uint64 { return c.gid }

func (c *Client) proxy(from string) (*replication.Proxy, error) {
	return c.domain.Proxy(from, c.gid)
}

// Bind registers ref under name, failing if already bound.
func (c *Client) Bind(from, name string, ref *ior.Ref) error {
	p, err := c.proxy(from)
	if err != nil {
		return err
	}
	_, err = p.Invoke("bind", cdr.Str(name), cdr.Str(ior.ToString(ref)))
	return err
}

// Rebind registers ref under name, replacing any existing binding.
func (c *Client) Rebind(from, name string, ref *ior.Ref) error {
	p, err := c.proxy(from)
	if err != nil {
		return err
	}
	_, err = p.Invoke("rebind", cdr.Str(name), cdr.Str(ior.ToString(ref)))
	return err
}

// Resolve returns the reference bound to name.
func (c *Client) Resolve(from, name string) (*ior.Ref, error) {
	p, err := c.proxy(from)
	if err != nil {
		return nil, err
	}
	out, err := p.Invoke("resolve", cdr.Str(name))
	if err != nil {
		return nil, err
	}
	return ior.FromString(out[0].AsString())
}

// ResolveGroup resolves a name and returns the group id its IOGR names —
// the bootstrap step a client uses before building a group proxy.
func (c *Client) ResolveGroup(from, name string) (uint64, error) {
	ref, err := c.Resolve(from, name)
	if err != nil {
		return 0, err
	}
	g, err := ref.FTGroup()
	if err != nil {
		return 0, ErrNotGroupRef
	}
	return g.GroupID, nil
}

// Unbind removes a binding.
func (c *Client) Unbind(from, name string) error {
	p, err := c.proxy(from)
	if err != nil {
		return err
	}
	_, err = p.Invoke("unbind", cdr.Str(name))
	return err
}

// List returns the bound names with the given prefix, sorted.
func (c *Client) List(from, prefix string) ([]string, error) {
	p, err := c.proxy(from)
	if err != nil {
		return nil, err
	}
	out, err := p.Invoke("list", cdr.Str(prefix))
	if err != nil {
		return nil, err
	}
	seq := out[0].AsSeq()
	names := make([]string, len(seq))
	for i, v := range seq {
		names[i] = v.AsString()
	}
	return names, nil
}
