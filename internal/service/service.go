// Package service implements the OGS-style *service approach* to
// fault-tolerant CORBA: fault tolerance is provided by an explicit object
// group service that applications invoke through the ORB, above it rather
// than below it.
//
// The client makes a perfectly ordinary CORBA invocation on the
// GroupService object ("invoke", carrying the target group id, the
// operation name, and the marshaled arguments); the service forwards the
// call through the replication engine. Compared to the interception
// approach, the group logic is visible to the application and costs an
// extra marshal/dispatch hop per call — the trade-off experiment E8
// quantifies.
package service

import (
	"repro/internal/cdr"
	"repro/internal/giop"
	"repro/internal/ior"
	"repro/internal/orb"
	"repro/internal/replication"
)

// TypeID is the repository id of the group service interface.
const TypeID = "IDL:repro/GroupService:1.0"

// ObjectKey is the service's well-known object key.
const ObjectKey = "svc/group-service"

// NewServant builds the GroupService servant forwarding through engine.
//
// IDL sketch:
//
//	interface GroupService {
//	    any_seq invoke(in unsigned long long group, in string op, in any_seq args)
//	        raises (/* target's exceptions */);
//	    oneway void invoke_oneway(in unsigned long long group, in string op, in any_seq args);
//	};
func NewServant(engine *replication.Engine) *orb.MethodServant {
	s := orb.NewMethodServant(TypeID)
	s.Define("invoke", func(inv *orb.Invocation) ([]cdr.Value, error) {
		gid, op, args, err := splitArgs(inv.Args)
		if err != nil {
			return nil, err
		}
		return engine.Proxy(replication.GroupRef{ID: gid}).Invoke(op, args...)
	})
	s.Define("invoke_oneway", func(inv *orb.Invocation) ([]cdr.Value, error) {
		gid, op, args, err := splitArgs(inv.Args)
		if err != nil {
			return nil, err
		}
		return nil, engine.Proxy(replication.GroupRef{ID: gid}).InvokeOneway(op, args...)
	})
	return s
}

func splitArgs(in []cdr.Value) (uint64, string, []cdr.Value, error) {
	if len(in) < 2 || in[0].Kind != cdr.KindULongLong || in[1].Kind != cdr.KindString {
		return 0, "", nil, giop.SystemException{
			RepoID:    giop.ExcBadOperation,
			Minor:     10,
			Completed: giop.CompletedNo,
		}
	}
	var args []cdr.Value
	if len(in) > 2 {
		args = in[2].AsSeq()
	}
	return in[0].AsULongLong(), in[1].AsString(), args, nil
}

// Publish registers the servant with an ORB under the well-known key and
// returns its reference.
func Publish(o *orb.ORB, engine *replication.Engine) *ior.Ref {
	return o.ActivateObject(ObjectKey, NewServant(engine))
}

// Client invokes object groups through a remote GroupService.
type Client struct {
	svc *orb.ObjectRef
}

// NewClient wraps a GroupService reference for calls issued via o.
func NewClient(o *orb.ORB, ref *ior.Ref) *Client {
	return &Client{svc: o.Proxy(ref)}
}

// Invoke performs op on the group through the service.
func (c *Client) Invoke(gid uint64, op string, args ...cdr.Value) ([]cdr.Value, error) {
	return c.svc.Invoke("invoke", cdr.ULongLong(gid), cdr.Str(op), cdr.Seq(args...))
}

// InvokeOneway fires op on the group without waiting.
func (c *Client) InvokeOneway(gid uint64, op string, args ...cdr.Value) error {
	return c.svc.InvokeOneway("invoke_oneway", cdr.ULongLong(gid), cdr.Str(op), cdr.Seq(args...))
}
