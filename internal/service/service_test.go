package service_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/giop"
	"repro/internal/orb"
	"repro/internal/replication"
	"repro/internal/service"
)

type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) RepoID() string { return "IDL:repro/Ctr:1.0" }

func (c *counter) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch inv.Operation {
	case "add":
		c.n += int64(inv.Args[0].AsLong())
		return []cdr.Value{cdr.LongLong(c.n)}, nil
	case "err":
		return nil, &orb.UserException{Name: "IDL:repro/E:1.0"}
	}
	return nil, giop.SystemException{RepoID: giop.ExcBadOperation, Completed: giop.CompletedNo}
}

func (c *counter) GetState() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(c.n)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (c *counter) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	n, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.n = n
	c.mu.Unlock()
	return nil
}

const ctrType = "IDL:repro/Ctr:1.0"

func setup(t *testing.T) (*core.Domain, uint64, *service.Client) {
	t.Helper()
	d, err := core.NewDomain(core.Options{
		Nodes:       []string{"n1", "n2", "client"},
		Heartbeat:   4 * time.Millisecond,
		ORBPort:     7000,
		CallTimeout: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterFactory(ctrType, func() orb.Servant { return &counter{} }, "n1", "n2"); err != nil {
		t.Fatal(err)
	}
	_, gid, err := d.Create("ctr", ctrType, &ftcorba.Properties{
		ReplicationStyle:      replication.Active,
		InitialNumberReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WaitGroupReady(gid, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// The group service runs on n1 (a gateway into the group layer); the
	// client reaches it by an ordinary ORB call.
	svcRef := service.Publish(d.Node("n1").ORB, d.Node("n1").Engine)
	client := service.NewClient(d.Node("client").ORB, svcRef)
	return d, gid, client
}

func TestServiceApproachInvocation(t *testing.T) {
	_, gid, client := setup(t)
	out, err := client.Invoke(gid, "add", cdr.Long(5))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].AsLongLong() != 5 {
		t.Fatalf("add = %v", out)
	}
	out, err = client.Invoke(gid, "add", cdr.Long(2))
	if err != nil || out[0].AsLongLong() != 7 {
		t.Fatalf("second add: %v %v", out, err)
	}
}

func TestServiceApproachExceptions(t *testing.T) {
	_, gid, client := setup(t)
	_, err := client.Invoke(gid, "err")
	var uexc *orb.UserException
	if !errors.As(err, &uexc) || uexc.Name != "IDL:repro/E:1.0" {
		t.Fatalf("got %v", err)
	}
	// Malformed service call.
	_, err = client.Invoke(0, "")
	if err == nil {
		t.Fatal("invoking group 0 must fail")
	}
}

func TestServiceApproachOneway(t *testing.T) {
	_, gid, client := setup(t)
	if err := client.InvokeOneway(gid, "add", cdr.Long(3)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		out, err := client.Invoke(gid, "add", cdr.Long(0))
		if err == nil && out[0].AsLongLong() == 3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("oneway never applied: %v %v", out, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServiceBadArguments(t *testing.T) {
	d, _, _ := setup(t)
	// Call the service with a wrong signature directly.
	svcRef := service.Publish(d.Node("n2").ORB, d.Node("n2").Engine)
	raw := d.Node("client").ORB.Proxy(svcRef)
	_, err := raw.Invoke("invoke", cdr.Str("not-a-gid"))
	var sysExc giop.SystemException
	if !errors.As(err, &sysExc) || sysExc.RepoID != giop.ExcBadOperation {
		t.Fatalf("got %v", err)
	}
}
