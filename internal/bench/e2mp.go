package bench

import (
	"fmt"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/mproc"
	"repro/internal/orb"
	"repro/internal/replication"
	"repro/internal/transport/udp"
)

// E2mp — multi-process sharded throughput. PR 5's E2′ cell showed the
// in-process ceiling: R shards inside one process share one simulation
// (and, under `go test`, one global fabric lock), so aggregate throughput
// capped well below the idle-CPU headroom. Here the same workload runs
// with each replica node as a real OS process and the ring traffic on
// loopback UDP — the deployment shape of the source paper's system, with
// real sockets, real scheduling, and no shared fabric lock.
//
// The parent process is the client node of the universe; it hosts no
// replicas and drives the same clients×groups invoker pool as E2′.

// mpReplicaNodes is the replica-process count (3-way ACTIVE replication,
// like the E2′ cells it is compared against).
const mpReplicaNodes = 3

// mpIdleTokenDelay is the idle-token pacing for the real-socket
// deployment: negative = eager rotation (no idle hold). The 1ms default
// is a simulation artifact: on the fabric a rotation is free, so the
// hold only caps CPU spin. Over real sockets any timer-based hold is
// worse than useless — Go timers on this class of virtualized host fire
// no sooner than ~1.1ms regardless of the requested duration, so even a
// 25µs hold floors every idle-start invocation at a millisecond. Eager
// rotation keeps the token circulating (a few socket syscalls per hop)
// and just-queued work is picked up within one rotation (~tens of µs on
// loopback).
const mpIdleTokenDelay = -1 * time.Nanosecond

// mpConfig assembles the shared deployment Config for a multi-process
// run: the universe, freshly probed loopback peers, and the static group
// table every process derives identically.
func mpConfig(w ShardedWorkload) (mproc.Config, []string, error) {
	replicas := make([]string, 0, mpReplicaNodes)
	for i := 1; i <= mpReplicaNodes; i++ {
		replicas = append(replicas, fmt.Sprintf("n%d", i))
	}
	universe := append(append([]string(nil), replicas...), "client")

	starts, err := udp.PickBases(len(universe), w.Shards)
	if err != nil {
		return mproc.Config{}, nil, err
	}
	peers := make(map[string]udp.Peer, len(universe))
	for i, n := range universe {
		peers[n] = udp.Peer{Host: "127.0.0.1", Base: starts[i] - core.BaseRingPort}
	}

	groups := make([]mproc.GroupSpec, 0, w.Groups)
	for g := 0; g < w.Groups; g++ {
		groups = append(groups, mproc.GroupSpec{
			ID:     uint64(g + 1),
			Name:   fmt.Sprintf("mp-echo-%d", g),
			TypeID: EchoType,
			// Same explicit round-robin placement as E2′: the cell measures
			// transport scaling, not hash balance.
			Shard: g%w.Shards + 1,
			Hosts: replicas,
		})
	}
	return mproc.Config{
		Universe:       universe,
		Peers:          peers,
		Shards:         w.Shards,
		BasePort:       core.BaseRingPort,
		Heartbeat:      heartbeat,
		IdleTokenDelay: mpIdleTokenDelay,
		CallTimeout:    30 * time.Second,
		RetryInterval:  5 * time.Second,
		Groups:         groups,
	}, replicas, nil
}

// MPServants is the servant registry handed to `-role node` children
// (exported for cmd/ftbench's child entry point).
var MPServants = map[string]func() orb.Servant{
	EchoType: func() orb.Servant { return NewEchoServant() },
}

// RunMultiProc runs one multi-process cell: w.Replicas is fixed at 3 (the
// replica process count); the parent re-executes itself as the children,
// so the calling binary must dispatch `-role node` to mproc.ChildMain.
func RunMultiProc(w ShardedWorkload) (float64, error) {
	cfg, replicas, err := mpConfig(w)
	if err != nil {
		return 0, err
	}

	// The client node starts first so the children's full-universe
	// readiness check can pass; it hosts nothing, so it needs no servants.
	clientCfg := cfg
	clientCfg.Node = "client"
	client, err := mproc.StartNode(clientCfg, nil)
	if err != nil {
		return 0, err
	}
	defer client.Stop()

	children := make([]*mproc.Child, 0, len(replicas))
	defer func() { mproc.StopAll(children) }()
	for _, node := range replicas {
		c, err := mproc.Spawn(cfg, node)
		if err != nil {
			return 0, fmt.Errorf("spawn %s: %w", node, err)
		}
		children = append(children, c)
	}
	for _, c := range children {
		if err := c.AwaitReady(30 * time.Second); err != nil {
			return 0, err
		}
	}
	if err := client.WaitReady(30 * time.Second); err != nil {
		return 0, err
	}

	proxyFor := func(gid uint64) (*replication.Proxy, error) {
		shard := cfg.Groups[gid-1].Shard
		return client.Engine.Proxy(replication.GroupRef{ID: gid},
			replication.WithShard(shard-1)), nil
	}
	gids := make([]uint64, 0, len(cfg.Groups))
	for _, g := range cfg.Groups {
		gids = append(gids, g.ID)
	}
	// Warmup: one invocation per group takes reply-group joins and executor
	// spin-up off the clock (as in E2′).
	for _, gid := range gids {
		p, err := proxyFor(gid)
		if err != nil {
			return 0, err
		}
		if _, err := p.Invoke("echo", cdr.OctetSeq(payloadOf(256))); err != nil {
			return 0, fmt.Errorf("warmup group %d: %w", gid, err)
		}
	}
	return driveProxies(proxyFor, gids, w.Clients, w.PerClient)
}

// E2MPMultiProc regenerates the E2mp table and its benchjson records:
// the in-process R=1 netsim baseline (the number PR 5 could not beat by
// more than 1.52×) against multi-process loopback-UDP runs at increasing
// shard counts.
func E2MPMultiProc(scale Scale) (*Table, error) {
	t, _, err := E2MPMultiProcRecords(scale)
	return t, err
}

// E2MPMultiProcRecords is E2MPMultiProc plus the records `ftbench -json`
// snapshots (e2mp/r4 carries the acceptance ratio).
func E2MPMultiProcRecords(scale Scale) (*Table, []Record, error) {
	t := &Table{
		ID:      "E2mp",
		Title:   "Multi-process sharded throughput (ACTIVE/3, 8 groups, 1 sync client/grp, 256B echo)",
		Columns: []string{"deployment", "shards", "procs", "ops/s", "vs 1-proc R=1"},
		Notes: []string{
			"baseline: R=1, all nodes in one process over netsim (the PR 5 regime)",
			"mproc rows: each replica node a real OS process, rings on loopback UDP",
			"procs counts replica processes + the parent (client) process",
			"one synchronous client per group: the paper's CORBA twoway invocation shape",
			"each cell is best-of-3 (single-core host; scheduler noise dominates the spread)",
		},
	}
	perClient := scale.Invocations
	if perClient < 4 {
		perClient = 4
	}
	const groups, clients = 8, 1
	// cellTrials re-runs each cell and keeps the best: on a one-core host a
	// cell can lose >10% to scheduler phasing, and a rare mid-run ring
	// reformation (GC pause outlasting the fail timeout) costs a retry
	// backoff that halves the cell. Best-of-N reports what the deployment
	// can do rather than what the noisiest trial did.
	const cellTrials = 3
	bestOf := func(run func() (float64, error)) (float64, error) {
		var best float64
		for i := 0; i < cellTrials; i++ {
			thr, err := run()
			if err != nil {
				return 0, err
			}
			if thr > best {
				best = thr
			}
		}
		return best, nil
	}

	// The baseline is always the PR 5 regime — one process, netsim — even
	// when ftbench runs with -transport udp, so the ratio stays comparable
	// across invocations.
	saved := TransportFactory
	TransportFactory = nil
	base, err := bestOf(func() (float64, error) {
		return RunSharded(ShardedWorkload{
			Shards: 1, Groups: groups, Replicas: 3,
			Clients: clients, PerClient: perClient,
		})
	})
	TransportFactory = saved
	if err != nil {
		return nil, nil, fmt.Errorf("E2mp baseline: %w", err)
	}
	t.Rows = append(t.Rows, []string{"1-proc netsim", "1", "1",
		fmt.Sprintf("%.0f", base), "1.00x"})
	recs := []Record{{
		Name: "e2mp/baseline-r1", Iters: int64(groups * clients * perClient),
		NsPerOp: 1e9 / base, Extra: map[string]float64{"ops_s": base},
	}}

	for _, shards := range []int{1, 2, 4} {
		w := ShardedWorkload{
			Shards: shards, Groups: groups, Replicas: 3,
			Clients: clients, PerClient: perClient,
		}
		thr, err := bestOf(func() (float64, error) { return RunMultiProc(w) })
		if err != nil {
			return nil, nil, fmt.Errorf("E2mp R=%d: %w", shards, err)
		}
		ratio := thr / base
		t.Rows = append(t.Rows, []string{"mproc udp", fmt.Sprint(shards),
			fmt.Sprint(mpReplicaNodes + 1), fmt.Sprintf("%.0f", thr),
			fmt.Sprintf("%.2fx", ratio)})
		recs = append(recs, Record{
			Name:  fmt.Sprintf("e2mp/r%d", shards),
			Iters: int64(groups * clients * perClient), NsPerOp: 1e9 / thr,
			Extra: map[string]float64{"ops_s": thr, "vs_baseline": ratio},
		})
	}
	return t, recs, nil
}
