package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/drstore"
	"repro/internal/ftcorba"
	"repro/internal/netsim"
	"repro/internal/orb"
	"repro/internal/replication"
)

// The DR experiment measures the disaster-recovery tier end to end: a
// primary domain ships checkpoints and update segments into a drstore while
// serving load, every replica node fail-stops mid-load, and a warm standby
// domain promotes the shipped groups. Reported: RPO in operations (acked
// at kill minus recovered — must be zero: every style ships before the
// client ack), RTO in milliseconds (kill to first successful standby
// invocation), and exactly-once violations across the takeover (must be
// zero).

// drCounterType is the DR workload servant's repository id.
const drCounterType = "IDL:repro/DRCounter:1.0"

// drCheckpointEvery keeps checkpoint-anchored compaction active during the
// run (several periods per group elapse before the kill).
const drCheckpointEvery = 8

// drCounter is a checkpointable accumulator: recovered state is directly
// comparable against the client-side acked count.
type drCounter struct {
	mu       sync.Mutex
	sum, ops int64
}

func (c *drCounter) RepoID() string { return drCounterType }

func (c *drCounter) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if inv.Operation == "bump" {
		c.sum += int64(inv.Args[0].AsLong())
		c.ops++
	}
	return []cdr.Value{cdr.LongLong(c.sum), cdr.LongLong(c.ops)}, nil
}

func (c *drCounter) GetState() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(c.sum)
	e.WriteLongLong(c.ops)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (c *drCounter) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	sum, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	ops, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.sum, c.ops = sum, ops
	c.mu.Unlock()
	return nil
}

// drGroup is one group's per-run accounting.
type drGroup struct {
	gid           uint64
	style         replication.Style
	proxy         *replication.Proxy
	issued, acked atomic.Int64
	recovered     int64 // ops reported by the standby after promotion
	rto           time.Duration
	eoViolations  int64
}

// DRRecovery runs the disaster-recovery experiment (ByID "dr").
func DRRecovery(scale Scale) (*Table, error) {
	t, _, err := DRRecoveryRecords(scale)
	return t, err
}

// DRRecoveryRecords runs the experiment and also returns snapshot records
// (rpo_ops, rto_ms, eo_violations) for the regression pipeline.
func DRRecoveryRecords(scale Scale) (*Table, []Record, error) {
	styles := []replication.Style{replication.ColdPassive, replication.WarmPassive, replication.Active}
	groupsPerStyle, opsPerGroup := 4, 150
	switch {
	case scale.Invocations <= smokeSLOCutoff:
		groupsPerStyle, opsPerGroup = 1, 24
	case scale.Invocations < FullScale.Invocations:
		groupsPerStyle, opsPerGroup = 2, 40
	}

	store := drstore.NewMemStore()
	defer store.Close()

	const replicas = 3
	workers := make([]string, 0, replicas)
	for i := 1; i <= replicas; i++ {
		workers = append(workers, fmt.Sprintf("n%d", i))
	}
	primary, err := core.NewDomain(core.Options{
		Nodes:         append(append([]string(nil), workers...), "client"),
		Net:           netsim.Config{Seed: 7},
		Heartbeat:     heartbeat,
		CallTimeout:   3 * time.Second,
		RetryInterval: 100 * time.Millisecond,
		DRStore:       store,
	})
	if err != nil {
		return nil, nil, err
	}
	defer primary.Stop()
	if err := primary.WaitReady(10 * time.Second); err != nil {
		return nil, nil, err
	}
	if err := primary.RegisterFactory(drCounterType, func() orb.Servant { return &drCounter{} }, workers...); err != nil {
		return nil, nil, err
	}

	groups := make([]*drGroup, 0, len(styles)*groupsPerStyle)
	for _, style := range styles {
		for i := 0; i < groupsPerStyle; i++ {
			_, gid, err := primary.Create(fmt.Sprintf("dr-%s-%d", style, i), drCounterType, &ftcorba.Properties{
				ReplicationStyle:      style,
				InitialNumberReplicas: 2,
				CheckpointInterval:    drCheckpointEvery,
				MembershipStyle:       ftcorba.MembershipApplication,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("dr: create %v group: %w", style, err)
			}
			if err := primary.WaitGroupReady(gid, 2, 10*time.Second); err != nil {
				return nil, nil, fmt.Errorf("dr: group %d: %w", gid, err)
			}
			p, err := primary.Proxy("client", gid)
			if err != nil {
				return nil, nil, err
			}
			groups = append(groups, &drGroup{gid: gid, style: style, proxy: p})
		}
	}

	// Warm standby over the same store, synced continuously while the
	// primary serves.
	standby, err := core.NewStandby(core.StandbyOptions{
		Domain: core.Options{
			Nodes:     []string{"s1", "s2"},
			Heartbeat: heartbeat,
		},
		Store: store,
		Factories: map[string]ftcorba.Factory{
			drCounterType: func() orb.Servant { return &drCounter{} },
		},
	})
	if err != nil {
		return nil, nil, err
	}
	defer standby.Stop()
	if err := standby.Domain().WaitReady(10 * time.Second); err != nil {
		return nil, nil, err
	}

	// Drive load across all groups; once half the target operations have
	// been acknowledged, fail-stop every primary replica node at once.
	killTrigger := make(chan struct{})
	var killOnce sync.Once
	trip := func() { killOnce.Do(func() { close(killTrigger) }) }
	killed := make(chan struct{})
	var tKill time.Time
	go func() {
		<-killTrigger
		tKill = time.Now()
		for _, n := range workers {
			primary.CrashNode(n)
		}
		close(killed)
	}()

	killAt := int64(len(groups) * opsPerGroup / 2)
	var total atomic.Int64
	var driverErrMu sync.Mutex
	var driverErr error
	var wg sync.WaitGroup
	for _, g := range groups {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerGroup; i++ {
				g.issued.Add(1)
				if _, err := g.proxy.Invoke("bump", cdr.Long(1)); err != nil {
					select {
					case <-killTrigger:
						// Expected: the domain died under this invocation.
					default:
						driverErrMu.Lock()
						if driverErr == nil {
							driverErr = fmt.Errorf("dr: pre-kill invoke on group %d: %w", g.gid, err)
						}
						driverErrMu.Unlock()
						trip() // unblock the kill flow; the run fails below
					}
					return
				}
				g.acked.Add(1)
				if total.Add(1) == killAt {
					trip()
				}
			}
		}()
	}

	// Disaster, then promotion. RTO clocks from the first crash to each
	// group's first successful standby invocation.
	<-killed
	res, err := standby.Promote()
	if err != nil {
		return nil, nil, fmt.Errorf("dr: promote: %w", err)
	}
	for _, g := range groups {
		if res.Groups[g.gid] == "" {
			return nil, nil, fmt.Errorf("dr: group %d not promoted (skipped: %v)", g.gid, res.Skipped)
		}
	}
	if err := standby.WaitPromoted(res, 30*time.Second); err != nil {
		return nil, nil, err
	}
	for _, g := range groups {
		p, err := standby.Proxy("s1", g.gid)
		if err != nil {
			return nil, nil, err
		}
		out, err := p.Invoke("read")
		if err != nil {
			return nil, nil, fmt.Errorf("dr: standby read group %d: %w", g.gid, err)
		}
		g.rto = time.Since(tKill)
		g.recovered = out[1].AsLongLong()
		g.proxy = p // post-promotion traffic goes to the standby
	}

	// Let the in-flight pre-kill invocations drain (they time out against
	// the dead domain) so the acked counters are final.
	wg.Wait()
	driverErrMu.Lock()
	derr := driverErr
	driverErrMu.Unlock()
	if derr != nil {
		return nil, nil, derr
	}

	// Continued service with exactly-once: each bump must advance the op
	// count by exactly one from the recovered state.
	const postOps = 3
	for _, g := range groups {
		want := g.recovered
		for i := 0; i < postOps; i++ {
			out, err := g.proxy.Invoke("bump", cdr.Long(1))
			if err != nil {
				return nil, nil, fmt.Errorf("dr: post-promotion bump group %d: %w", g.gid, err)
			}
			want++
			if out[1].AsLongLong() != want {
				g.eoViolations++
			}
		}
	}

	// Assemble per-style aggregates.
	tab := &Table{
		ID:    "DR",
		Title: "disaster recovery: whole-domain kill mid-load, warm-standby promotion, measured RPO/RTO",
		Columns: []string{"style", "groups", "acked@kill", "recovered", "rpo(ops)",
			"rto p50(ms)", "rto max(ms)", "eo violations"},
	}
	var totalAcked, totalRPO, totalEO int64
	var rtoMax time.Duration
	var allRTOs []time.Duration
	for _, style := range styles {
		var acked, recovered, rpo, eo int64
		var rtos []time.Duration
		for _, g := range groups {
			if g.style != style {
				continue
			}
			acked += g.acked.Load()
			recovered += g.recovered
			if d := g.acked.Load() - g.recovered; d > 0 {
				rpo += d
			}
			if g.recovered > g.issued.Load() {
				eo++ // more executions recovered than were ever issued
			}
			eo += g.eoViolations
			rtos = append(rtos, g.rto)
			allRTOs = append(allRTOs, g.rto)
			if g.rto > rtoMax {
				rtoMax = g.rto
			}
		}
		totalAcked += acked
		totalRPO += rpo
		totalEO += eo
		s := summarize(rtos)
		tab.Rows = append(tab.Rows, []string{
			style.String(), fmt.Sprintf("%d", groupsPerStyle),
			fmt.Sprintf("%d", acked), fmt.Sprintf("%d", recovered),
			fmt.Sprintf("%d", rpo),
			fmt.Sprintf("%.1f", s.p50/1e3), fmt.Sprintf("%.1f", s.p99/1e3),
			fmt.Sprintf("%d", eo),
		})
	}
	sAll := summarize(allRTOs)
	tab.Rows = append(tab.Rows, []string{
		"all", fmt.Sprintf("%d", len(groups)),
		fmt.Sprintf("%d", totalAcked), "-", fmt.Sprintf("%d", totalRPO),
		fmt.Sprintf("%.1f", sAll.p50/1e3), fmt.Sprintf("%.3f", float64(rtoMax)/1e6),
		fmt.Sprintf("%d", totalEO),
	})
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("kill at %d of %d target ops; recovered counts may exceed acked@kill by executed-but-unacked in-flight ops (not an RPO loss)", killAt, len(groups)*opsPerGroup),
		"rpo counts acknowledged operations missing after promotion — every style ships to the store before the client ack, so it must be 0",
		"rto is operator-initiated promotion (no failure-detection delay): crash → Promote → first successful standby invocation",
	)

	if totalRPO > 0 || totalEO > 0 {
		return tab, nil, fmt.Errorf("dr: invariant violated: rpo=%d ops lost, %d exactly-once violations", totalRPO, totalEO)
	}
	recs := []Record{{
		Name:    "dr/failover",
		Iters:   totalAcked,
		NsPerOp: float64(rtoMax.Nanoseconds()),
		Extra: map[string]float64{
			"rpo_ops":       float64(totalRPO),
			"rto_ms":        float64(rtoMax) / 1e6,
			"eo_violations": float64(totalEO),
		},
	}}
	return tab, recs, nil
}
