// Package bench is the experiment harness: it regenerates the paper-style
// evaluation tables (E1–E8 in DESIGN.md) plus the group-communication
// microbenchmark (T1). Each experiment builds a fresh FT domain on the
// simulated network, drives a workload, and reports a Table; cmd/ftbench
// prints them and EXPERIMENTS.md records the measured shapes.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/netsim"
	"repro/internal/orb"
	"repro/internal/replication"
	"repro/internal/transport"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Scale selects run sizes: Quick for `go test -bench`, Full for ftbench.
type Scale struct {
	// Invocations per measured cell.
	Invocations int
	// Warmup invocations before measuring.
	Warmup int
}

// QuickScale keeps unit-test bench runs fast.
var QuickScale = Scale{Invocations: 60, Warmup: 10}

// FullScale is what cmd/ftbench uses.
var FullScale = Scale{Invocations: 400, Warmup: 50}

// netConfig is the simulated LAN used by all experiments. Link latency is
// zero: the host's sleep/timer resolution (~1ms on virtualized kernels)
// would otherwise dwarf the protocol costs being measured, and every
// sub-millisecond sleep rounds up to it. Measured latencies therefore
// reflect protocol + processing costs over an ideal wire (EXPERIMENTS.md
// discusses the implications).
func netConfig() netsim.Config {
	return netsim.Config{Seed: 7}
}

// heartbeat is the default Totem gossip interval for experiments.
const heartbeat = 3 * time.Millisecond

// TransportFactory, when non-nil, supplies the ring transport for every
// domain and ring set the experiments construct (cmd/ftbench sets it for
// `-transport udp`: a fresh loopback udp.Cluster per construction). Nil
// keeps the default: the deterministic netsim fabric. Experiments that
// inject network faults through the fabric (partitions, targeted drops)
// only make sense on the default transport; cmd/ftbench rejects the
// combination rather than silently measuring an un-faulted run.
var TransportFactory func(nodes []string) (transport.Transport, error)

// optionalTransport resolves the factory for core.Options.Transport (nil
// means core uses its own fabric).
func optionalTransport(nodes []string) (transport.Transport, error) {
	if TransportFactory == nil {
		return nil, nil
	}
	return TransportFactory(nodes)
}

// transportIdleDelay is the idle-token pacing matched to the active ring
// transport: totem's default hold on netsim (caps simulation CPU spin),
// eager rotation on a real-socket transport (a timer hold would floor
// idle-start latency at the host's ~1ms timer resolution — see
// EXPERIMENTS.md "PR 7").
func transportIdleDelay() time.Duration {
	if TransportFactory != nil {
		return -1 * time.Nanosecond
	}
	return 0
}

// benchTransport resolves a standalone ring transport for experiments
// that build rings without a core.Domain (T1): the factory if set, else a
// fresh fabric with the nodes added.
func benchTransport(nodes []string) (transport.Transport, error) {
	if TransportFactory != nil {
		return TransportFactory(nodes)
	}
	fabric := netsim.NewFabric(netConfig())
	for _, n := range nodes {
		fabric.AddNode(n)
	}
	return fabric, nil
}

// --- Echo servant ------------------------------------------------------------

// EchoType is the echo servant's repository id.
const EchoType = "IDL:repro/Echo:1.0"

// EchoServant replies with its argument and retains it as state, so
// passive state transfer cost scales with payload size — the mechanism
// behind the active/passive trade-off the paper discusses.
type EchoServant struct {
	mu    sync.Mutex
	state []byte
}

// NewEchoServant returns a fresh echo servant.
func NewEchoServant() *EchoServant { return &EchoServant{} }

// RepoID returns the repository id.
func (s *EchoServant) RepoID() string { return EchoType }

// Dispatch implements echo (returns and retains the payload), fill
// (sets the state to n zero bytes), and size (returns the state length).
func (s *EchoServant) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch inv.Operation {
	case "echo":
		payload := inv.Args[0].AsOctetSeq()
		s.state = append(s.state[:0], payload...)
		return []cdr.Value{cdr.OctetSeq(payload)}, nil
	case "fill":
		s.state = make([]byte, inv.Args[0].AsULong())
		return nil, nil
	case "size":
		return []cdr.Value{cdr.ULong(uint32(len(s.state)))}, nil
	default:
		return nil, &orb.UserException{Name: "IDL:repro/BadOp:1.0"}
	}
}

// GetState snapshots the retained payload.
func (s *EchoServant) GetState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.state...), nil
}

// SetState restores the retained payload.
func (s *EchoServant) SetState(b []byte) error {
	s.mu.Lock()
	s.state = append([]byte(nil), b...)
	s.mu.Unlock()
	return nil
}

// --- measurement helpers -----------------------------------------------------

// summary holds latency statistics in microseconds.
type summary struct {
	mean, p50, p99 float64
}

func summarize(samples []time.Duration) summary {
	if len(samples) == 0 {
		return summary{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, s := range sorted {
		total += s
	}
	pick := func(q float64) time.Duration {
		idx := int(q*float64(len(sorted)-1) + 0.5)
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	us := func(d time.Duration) float64 { return float64(d.Microseconds()) + float64(d.Nanoseconds()%1000)/1000 }
	return summary{
		mean: us(total / time.Duration(len(sorted))),
		p50:  us(pick(0.50)),
		p99:  us(pick(0.99)),
	}
}

func usStr(v float64) string { return fmt.Sprintf("%.1f", v) }

// measure times fn over scale.Invocations after scale.Warmup.
func measure(scale Scale, fn func() error) (summary, error) {
	for i := 0; i < scale.Warmup; i++ {
		if err := fn(); err != nil {
			return summary{}, err
		}
	}
	samples := make([]time.Duration, 0, scale.Invocations)
	for i := 0; i < scale.Invocations; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return summary{}, err
		}
		samples = append(samples, time.Since(start))
	}
	return summarize(samples), nil
}

// buildDomain creates a ready FT domain with n worker nodes plus one
// client node, echo factories everywhere.
func buildDomain(nodes int, orbPort uint16) (*core.Domain, error) {
	names := make([]string, 0, nodes+1)
	for i := 1; i <= nodes; i++ {
		names = append(names, fmt.Sprintf("n%d", i))
	}
	names = append(names, "client")
	tp, err := optionalTransport(names)
	if err != nil {
		return nil, err
	}
	d, err := core.NewDomain(core.Options{
		Nodes:          names,
		Net:            netConfig(),
		Transport:      tp,
		Heartbeat:      heartbeat,
		IdleTokenDelay: transportIdleDelay(),
		ORBPort:        orbPort,
		CallTimeout:    20 * time.Second,
		RetryInterval:  5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	if err := d.WaitReady(10 * time.Second); err != nil {
		d.Stop()
		return nil, err
	}
	workers := names[:nodes]
	if err := d.RegisterFactory(EchoType, func() orb.Servant { return NewEchoServant() }, workers...); err != nil {
		d.Stop()
		return nil, err
	}
	return d, nil
}

// buildDomainHB is buildDomain with an explicit heartbeat in nanoseconds.
func buildDomainHB(nodes int, orbPort uint16, hbNanos int64) (*core.Domain, error) {
	names := make([]string, 0, nodes+1)
	for i := 1; i <= nodes; i++ {
		names = append(names, fmt.Sprintf("n%d", i))
	}
	names = append(names, "client")
	tp, err := optionalTransport(names)
	if err != nil {
		return nil, err
	}
	d, err := core.NewDomain(core.Options{
		Nodes:          names,
		Net:            netConfig(),
		Transport:      tp,
		Heartbeat:      time.Duration(hbNanos),
		IdleTokenDelay: transportIdleDelay(),
		ORBPort:        orbPort,
		CallTimeout:    20 * time.Second,
		RetryInterval:  5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	if err := d.WaitReady(10 * time.Second); err != nil {
		d.Stop()
		return nil, err
	}
	workers := names[:nodes]
	if err := d.RegisterFactory(EchoType, func() orb.Servant { return NewEchoServant() }, workers...); err != nil {
		d.Stop()
		return nil, err
	}
	return d, nil
}

// createEcho places an echo group with the given style and replica count.
func createEcho(d *core.Domain, style replication.Style, replicas int) (uint64, error) {
	_, gid, err := d.Create("echo", EchoType, &ftcorba.Properties{
		ReplicationStyle:      style,
		InitialNumberReplicas: replicas,
		MembershipStyle:       ftcorba.MembershipApplication, // experiments inject faults themselves
	})
	if err != nil {
		return 0, err
	}
	if err := d.WaitGroupReady(gid, replicas, 10*time.Second); err != nil {
		return 0, err
	}
	return gid, nil
}

func payloadOf(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

// All runs every experiment at the given scale (used by cmd/ftbench).
func All(scale Scale) ([]*Table, error) {
	runs := []func(Scale) (*Table, error){
		E1LatencyByStyle,
		E2ReplicationDegree,
		E2PrimeSharding,
		E3Failover,
		E4StateTransfer,
		E5DuplicateSuppression,
		E6CheckpointInterval,
		E7PartitionRemerge,
		E8Approaches,
		T1Totem,
	}
	var tables []*Table
	for _, run := range runs {
		t, err := run(scale)
		if err != nil {
			return tables, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// ByID maps experiment ids to runners.
var ByID = map[string]func(Scale) (*Table, error){
	"e1":   E1LatencyByStyle,
	"e2":   E2ReplicationDegree,
	"e2p":  E2PrimeSharding,
	"e3":   E3Failover,
	"e4":   E4StateTransfer,
	"e5":   E5DuplicateSuppression,
	"e6":   E6CheckpointInterval,
	"e7":   E7PartitionRemerge,
	"e8":   E8Approaches,
	"t1":   T1Totem,
	"slo":  SLOWorkload,
	"e2mp": E2MPMultiProc,
	"dr":   DRRecovery,
	"fd":   FDDetection,
	"lf":   LFLatency,
}
