package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/interception"
	"repro/internal/orb"
	"repro/internal/replication"
	"repro/internal/service"
)

// forwarderType is the repository id of the nested-call relay used by E5.
const forwarderType = "IDL:repro/Forwarder:1.0"

// E5DuplicateSuppression quantifies the duplicate detection/suppression
// machinery: an actively replicated caller group (1–3 replicas) performs
// nested invocations on a 2-replica active target. Each caller replica
// independently multicasts the nested invocation; the target must execute
// exactly once per logical operation. Expected shape: delivered
// invocations grow linearly with caller degree while executions stay
// constant; latency is nearly flat (duplicates are suppressed cheaply).
func E5DuplicateSuppression(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Duplicate suppression in nested invocations (active caller -> active 2-replica target)",
		Columns: []string{"caller replicas", "logical ops", "target executions", "dup invocations", "suppressed replies", "mean(us)"},
	}
	for _, callers := range []int{1, 2, 3} {
		d, err := buildDomain(5, 0)
		if err != nil {
			return nil, err
		}
		targetGid, err := createEcho(d, replication.Active, 2)
		if err != nil {
			d.Stop()
			return nil, err
		}
		// The forwarder relays "relay(payload)" to the target group from
		// inside its replicated dispatch.
		factory := func() orb.Servant {
			return orb.NewMethodServant(forwarderType).
				Define("relay", func(inv *orb.Invocation) ([]cdr.Value, error) {
					return replication.Nested(inv, replication.GroupRef{ID: targetGid}).
						Invoke("echo", inv.Args[0])
				})
		}
		if err := d.RegisterFactory(forwarderType, factory, "n1", "n2", "n3", "n4", "n5"); err != nil {
			d.Stop()
			return nil, err
		}
		_, callerGid, err := d.Create("fwd", forwarderType, &ftcorba.Properties{
			ReplicationStyle:      replication.Active,
			InitialNumberReplicas: callers,
			MembershipStyle:       ftcorba.MembershipApplication,
		})
		if err != nil {
			d.Stop()
			return nil, err
		}
		if err := d.WaitGroupReady(callerGid, callers, 10*time.Second); err != nil {
			d.Stop()
			return nil, err
		}

		proxy, err := d.Proxy("client", callerGid)
		if err != nil {
			d.Stop()
			return nil, err
		}
		arg := cdr.OctetSeq(payloadOf(64))
		base := sumStats(d)
		s, err := measure(scale, func() error {
			_, err := proxy.Invoke("relay", arg)
			return err
		})
		if err != nil {
			d.Stop()
			return nil, fmt.Errorf("E5 callers=%d: %w", callers, err)
		}
		// Let stragglers (suppressed duplicates in flight) settle.
		time.Sleep(100 * time.Millisecond)
		delta := sumStats(d).sub(base)
		logical := scale.Invocations + scale.Warmup

		t.Rows = append(t.Rows, []string{
			fmt.Sprint(callers),
			fmt.Sprint(logical),
			fmt.Sprint(delta.executions),
			fmt.Sprint(delta.dupInvocations),
			fmt.Sprint(delta.suppressedReplies),
			usStr(s.mean),
		})
		d.Stop()
	}
	t.Notes = append(t.Notes,
		"target executions include both target replicas (2 per logical op is correct)",
		"executions also include the caller group's own dispatches (callers per logical op)",
	)
	return t, nil
}

type statSum struct {
	executions        uint64
	dupInvocations    uint64
	suppressedReplies uint64
}

func (a statSum) sub(b statSum) statSum {
	return statSum{
		executions:        a.executions - b.executions,
		dupInvocations:    a.dupInvocations - b.dupInvocations,
		suppressedReplies: a.suppressedReplies - b.suppressedReplies,
	}
}

func sumStats(d *core.Domain) statSum {
	var out statSum
	for _, name := range d.Nodes() {
		n := d.Node(name)
		if n == nil {
			continue
		}
		s := n.Engine.Stats()
		out.executions += s.Executions
		out.dupInvocations += s.DupInvocations
		out.suppressedReplies += s.SuppressedReplies
	}
	return out
}

// E6CheckpointInterval sweeps the cold passive checkpoint interval and
// measures failover cost. Expected shape: steady-state latency is flat
// (checkpoints are off the client's critical path but consume bandwidth);
// replayed operations — and hence failover blackout — grow with the
// interval: the classic checkpoint-frequency/recovery-time trade-off.
func E6CheckpointInterval(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Checkpoint interval vs recovery (cold passive, 3 replicas, 256B echo)",
		Columns: []string{"ckpt every", "ops before crash", "replays", "blackout(ms)"},
	}
	// Offset the op count so it is not a multiple of the intervals (a
	// crash exactly at a checkpoint boundary would hide the replay cost).
	ops := scale.Invocations + 11
	for _, every := range []int{1, 4, 16, 64} {
		replays, blackout, err := checkpointTrial(every, ops)
		if err != nil {
			return nil, fmt.Errorf("E6 every=%d: %w", every, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(every), fmt.Sprint(ops), fmt.Sprint(replays),
			fmt.Sprintf("%.2f", float64(blackout.Microseconds())/1000),
		})
	}
	return t, nil
}

func checkpointTrial(every, ops int) (uint64, time.Duration, error) {
	names := []string{"n1", "n2", "n3", "client"}
	d, err := core.NewDomain(core.Options{
		Nodes:         names,
		Net:           netConfig(),
		Heartbeat:     heartbeat,
		CallTimeout:   30 * time.Second,
		RetryInterval: 30 * heartbeat,
	})
	if err != nil {
		return 0, 0, err
	}
	defer d.Stop()
	if err := d.WaitReady(10 * time.Second); err != nil {
		return 0, 0, err
	}
	if err := d.RegisterFactory(EchoType, func() orb.Servant { return NewEchoServant() }, "n1", "n2", "n3"); err != nil {
		return 0, 0, err
	}
	_, gid, err := d.Create("cold", EchoType, &ftcorba.Properties{
		ReplicationStyle:      replication.ColdPassive,
		InitialNumberReplicas: 3,
		CheckpointInterval:    every,
		MembershipStyle:       ftcorba.MembershipApplication,
	})
	if err != nil {
		return 0, 0, err
	}
	if err := d.WaitGroupReady(gid, 3, 10*time.Second); err != nil {
		return 0, 0, err
	}
	proxy, err := d.Proxy("client", gid)
	if err != nil {
		return 0, 0, err
	}
	arg := cdr.OctetSeq(payloadOf(256))
	for i := 0; i < ops; i++ {
		if _, err := proxy.Invoke("echo", arg); err != nil {
			return 0, 0, err
		}
	}
	members, _ := d.RM.Members(gid)
	crashAt := time.Now()
	d.CrashNode(members[0])
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := proxy.Invoke("echo", arg); err == nil {
			blackout := time.Since(crashAt)
			var replays uint64
			for _, n := range names {
				if node := d.Node(n); node != nil {
					replays += node.Engine.Stats().Replays
				}
			}
			return replays, blackout, nil
		}
	}
	return 0, 0, fmt.Errorf("cold group never recovered")
}

// counterType is the additive servant used by E7.
const counterType = "IDL:repro/PartitionCounter:1.0"

// partitionCounter accumulates adds; fulfillment replays adds unchanged.
type partitionCounter struct {
	mu  sync.Mutex
	sum int64
}

func (c *partitionCounter) RepoID() string { return counterType }

func (c *partitionCounter) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch inv.Operation {
	case "add":
		c.sum += int64(inv.Args[0].AsLong())
		return []cdr.Value{cdr.LongLong(c.sum)}, nil
	case "sum":
		return []cdr.Value{cdr.LongLong(c.sum)}, nil
	}
	return nil, &orb.UserException{Name: "IDL:repro/BadOp:1.0"}
}

func (c *partitionCounter) GetState() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(c.sum)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (c *partitionCounter) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	v, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.sum = v
	c.mu.Unlock()
	return nil
}

// E7PartitionRemerge measures partition healing: operations continue in
// both components; at remerge the secondary's operations replay as
// fulfillment operations. Expected shape: reconciliation time grows with
// the number of queued fulfillment operations (state transfer is constant
// here; replay is the variable part).
func E7PartitionRemerge(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Partition remerge: fulfillment replay cost (active, 3+1 nodes)",
		Columns: []string{"secondary ops", "fulfillments", "reconcile(ms)", "final sum ok"},
		Notes: []string{
			"reconcile = heal() to all replicas agreeing on the merged state",
		},
	}
	for _, secOps := range []int{8, 32, 128} {
		fulfills, reconcile, ok, err := partitionTrial(secOps)
		if err != nil {
			return nil, fmt.Errorf("E7 ops=%d: %w", secOps, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(secOps), fmt.Sprint(fulfills),
			fmt.Sprintf("%.2f", float64(reconcile.Microseconds())/1000),
			fmt.Sprint(ok),
		})
	}
	return t, nil
}

func partitionTrial(secOps int) (uint64, time.Duration, bool, error) {
	names := []string{"n1", "n2", "n3", "client"}
	d, err := core.NewDomain(core.Options{
		Nodes:         names,
		Net:           netConfig(),
		Heartbeat:     heartbeat,
		CallTimeout:   30 * time.Second,
		RetryInterval: 60 * heartbeat,
	})
	if err != nil {
		return 0, 0, false, err
	}
	defer d.Stop()
	if err := d.WaitReady(10 * time.Second); err != nil {
		return 0, 0, false, err
	}
	if err := d.RegisterFactory(counterType, func() orb.Servant { return &partitionCounter{} }, "n1", "n2", "n3"); err != nil {
		return 0, 0, false, err
	}
	_, gid, err := d.Create("pc", counterType, &ftcorba.Properties{
		ReplicationStyle:      replication.Active,
		InitialNumberReplicas: 3,
		MembershipStyle:       ftcorba.MembershipApplication,
	})
	if err != nil {
		return 0, 0, false, err
	}
	if err := d.WaitGroupReady(gid, 3, 10*time.Second); err != nil {
		return 0, 0, false, err
	}

	// Partition n3 away; {n1,n2,client} is the primary component.
	d.Partition([]string{"n1", "n2", "client"}, []string{"n3"})
	if err := waitSecondary(d, "n3", gid); err != nil {
		return 0, 0, false, err
	}

	primarySide, err := d.Proxy("client", gid)
	if err != nil {
		return 0, 0, false, err
	}
	secondarySide, err := d.Proxy("n3", gid)
	if err != nil {
		return 0, 0, false, err
	}
	const primaryOps = 10
	for i := 0; i < primaryOps; i++ {
		if _, err := primarySide.Invoke("add", cdr.Long(1)); err != nil {
			return 0, 0, false, fmt.Errorf("primary-side add: %w", err)
		}
	}
	for i := 0; i < secOps; i++ {
		if _, err := secondarySide.Invoke("add", cdr.Long(1)); err != nil {
			return 0, 0, false, fmt.Errorf("secondary-side add: %w", err)
		}
	}

	want := int64(primaryOps + secOps)
	healAt := time.Now()
	d.Heal()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if converged(d, gid, want) {
			reconcile := time.Since(healAt)
			var fulfills uint64
			for _, n := range names {
				if node := d.Node(n); node != nil {
					fulfills += node.Engine.Stats().Fulfillments
				}
			}
			return fulfills, reconcile, true, nil
		}
		time.Sleep(time.Millisecond)
	}
	return 0, 0, false, fmt.Errorf("components never reconciled")
}

func waitSecondary(d *core.Domain, node string, gid uint64) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := d.Node(node).Engine.GroupStatus(gid); ok && st.Secondary {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("%s never became a secondary component", node)
}

func converged(d *core.Domain, gid uint64, want int64) bool {
	for _, name := range []string{"n1", "n2", "n3"} {
		node := d.Node(name)
		if node == nil {
			return false
		}
		st, ok := node.Engine.GroupStatus(gid)
		if !ok || st.Secondary || st.Syncing || len(st.Members) != 3 {
			return false
		}
	}
	// Confirm the merged value via a read.
	proxy, err := d.Proxy("client", gid)
	if err != nil {
		return false
	}
	out, err := proxy.Invoke("sum")
	return err == nil && out[0].AsLongLong() == want
}

// E8Approaches compares the three architectural integration approaches the
// lessons-learned literature contrasts, plus the unreplicated baseline.
// Expected shape: integrated < interception < service (each adds a
// marshal/hop), all above unreplicated.
func E8Approaches(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Integration approach comparison (active 3-replica echo, 256B)",
		Columns: []string{"approach", "mean(us)", "p50(us)", "p99(us)"},
		Notes: []string{
			"integrated  = application linked against the replication engine",
			"interception = unmodified client ORB, IIOP captured below it",
			"service     = explicit group-service object invoked via the ORB",
		},
	}
	d, err := buildDomain(3, 7000)
	if err != nil {
		return nil, err
	}
	defer d.Stop()
	gid, err := createEcho(d, replication.Active, 3)
	if err != nil {
		return nil, err
	}
	arg := cdr.OctetSeq(payloadOf(256))

	// Unreplicated baseline.
	plainRef := d.Node("n1").ORB.ActivateObject("echo-plain", NewEchoServant())
	plain := d.Node("client").ORB.Proxy(plainRef)
	s, err := measure(scale, func() error {
		_, err := plain.Invoke("echo", arg)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"unreplicated", usStr(s.mean), usStr(s.p50), usStr(s.p99)})

	// Integrated.
	integrated, err := d.Proxy("client", gid)
	if err != nil {
		return nil, err
	}
	s, err = measure(scale, func() error {
		_, err := integrated.Invoke("echo", arg)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"integrated", usStr(s.mean), usStr(s.p50), usStr(s.p99)})

	// Interception.
	bridge, err := interception.Attach(d.Fabric, "client", 7100, d.Node("client").Engine)
	if err != nil {
		return nil, err
	}
	defer bridge.Close()
	legacy := d.Node("client").ORB.Proxy(bridge.RefFor(EchoType, gid))
	s, err = measure(scale, func() error {
		_, err := legacy.Invoke("echo", arg)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"interception", usStr(s.mean), usStr(s.p50), usStr(s.p99)})

	// Service.
	svcRef := service.Publish(d.Node("n1").ORB, d.Node("n1").Engine)
	svc := service.NewClient(d.Node("client").ORB, svcRef)
	s, err = measure(scale, func() error {
		_, err := svc.Invoke(gid, "echo", arg)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"service", usStr(s.mean), usStr(s.p50), usStr(s.p99)})
	return t, nil
}
