package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ftcorba"
	"repro/internal/netsim"
	"repro/internal/orb"
	"repro/internal/replication"
)

// The FD experiment measures fail-detection quality under load: a domain
// serves steady application traffic while a provisioning storm (burst
// group creation, with its joins and state transfers) loads the control
// plane, and one loaded member is really crashed mid-storm. Reported per
// cell: detection latency for the real crash (crash to the confirmed
// NodeCrash fault report) and false evictions (confirmed faults naming
// nodes that never died). The adaptive phi-accrual detector plus the
// control-plane priority lane must keep false evictions at zero across
// the sweep while detection latency stays within ~3× the calm baseline —
// the failure mode being regression-tested is PR 6's eviction cascade,
// where storm-delayed heartbeats read as dead peers.

// fdStormType is the storm groups' repository id. It is registered on
// every worker except the victim, so burst creations keep succeeding
// after the victim is crashed mid-storm.
const fdStormType = "IDL:repro/StormEcho:1.0"

// fdCell is one sweep point: heartbeat interval × offered load.
type fdCell struct {
	name     string
	hb       time.Duration
	stormG   int // groups burst-created during the cell
	invokers int // concurrent steady-group invokers
}

// fdResult is one cell's measurements.
type fdResult struct {
	cell     fdCell
	detect   time.Duration
	falseEv  int64
	suspects int64
	recovers int64
	createdG int
}

// FDDetection runs the fail-detection experiment (ByID "fd").
func FDDetection(scale Scale) (*Table, error) {
	t, _, err := FDDetectionRecords(scale)
	return t, err
}

// FDDetectionRecords runs the sweep and returns snapshot records
// (false_evictions, detect_ms, detect_ratio) for the regression pipeline.
func FDDetectionRecords(scale Scale) (*Table, []Record, error) {
	calm := fdCell{name: "calm", hb: 4 * time.Millisecond}
	var cells []fdCell
	switch {
	case scale.Invocations <= smokeSLOCutoff:
		cells = []fdCell{{name: "storm hb=4ms light", hb: 4 * time.Millisecond, stormG: 4, invokers: 2}}
	case scale.Invocations < FullScale.Invocations:
		cells = []fdCell{
			{name: "storm hb=4ms light", hb: 4 * time.Millisecond, stormG: 6, invokers: 3},
			{name: "storm hb=2ms light", hb: 2 * time.Millisecond, stormG: 6, invokers: 3},
		}
	default:
		cells = []fdCell{
			{name: "storm hb=4ms light", hb: 4 * time.Millisecond, stormG: 8, invokers: 4},
			{name: "storm hb=4ms heavy", hb: 4 * time.Millisecond, stormG: 24, invokers: 8},
			{name: "storm hb=2ms light", hb: 2 * time.Millisecond, stormG: 8, invokers: 4},
			{name: "storm hb=2ms heavy", hb: 2 * time.Millisecond, stormG: 24, invokers: 8},
		}
	}

	calmRes, err := fdRunCell(calm)
	if err != nil {
		return nil, nil, fmt.Errorf("fd: calm cell: %w", err)
	}

	results := []*fdResult{calmRes}
	var falseTotal, stormGroups int64
	var stormMax time.Duration
	for _, c := range cells {
		res, err := fdRunCell(c)
		if err != nil {
			return nil, nil, fmt.Errorf("fd: cell %s: %w", c.name, err)
		}
		results = append(results, res)
		falseTotal += res.falseEv
		stormGroups += int64(res.createdG)
		if res.detect > stormMax {
			stormMax = res.detect
		}
	}

	ratio := float64(stormMax) / float64(calmRes.detect)
	tab := &Table{
		ID:    "FD",
		Title: "fail detection under provisioning storms: adaptive phi-accrual, confirmed-crash latency vs false evictions",
		Columns: []string{"cell", "hb", "storm groups", "invokers",
			"detect(ms)", "false evictions", "suspects", "recoveries"},
	}
	for _, r := range results {
		tab.Rows = append(tab.Rows, []string{
			r.cell.name, r.cell.hb.String(),
			fmt.Sprintf("%d", r.createdG), fmt.Sprintf("%d", r.cell.invokers),
			fmt.Sprintf("%.1f", float64(r.detect)/1e6),
			fmt.Sprintf("%d", r.falseEv),
			fmt.Sprintf("%d", r.suspects), fmt.Sprintf("%d", r.recovers),
		})
	}
	tab.Notes = append(tab.Notes,
		"detect(ms) is real-crash injection to the confirmed NodeCrash report (suspicion, confirm grace, ring reformation, view delivery)",
		"false evictions are confirmed NodeCrash reports naming nodes that never died — the adaptive detector plus the control-plane priority lane must keep this at 0",
		fmt.Sprintf("storm detect max / calm detect = %.2fx (acceptance bound 3x)", ratio),
	)

	if falseTotal > 0 {
		return tab, nil, fmt.Errorf("fd: %d false evictions under storm (must be 0)", falseTotal)
	}
	if scale.Invocations >= FullScale.Invocations && ratio > 3.0 {
		return tab, nil, fmt.Errorf("fd: storm detection %.1fms is %.2fx calm %.1fms (bound 3x)",
			float64(stormMax)/1e6, ratio, float64(calmRes.detect)/1e6)
	}
	recs := []Record{
		{
			Name:    "fd/calm",
			Iters:   1,
			NsPerOp: float64(calmRes.detect.Nanoseconds()),
			Extra:   map[string]float64{"detect_ms": float64(calmRes.detect) / 1e6},
		},
		{
			Name:    "fd/storm",
			Iters:   stormGroups,
			NsPerOp: float64(stormMax.Nanoseconds()),
			Extra: map[string]float64{
				"false_evictions": float64(falseTotal),
				"detect_ms":       float64(stormMax) / 1e6,
				"detect_ratio":    ratio,
			},
		},
	}
	return tab, recs, nil
}

// fdRunCell builds a fresh 6-worker domain, drives the cell's load, kills
// one steady-group member, and reports detection quality. The fabric has
// mild per-datagram jitter so heartbeat inter-arrival variance is real
// (zero variance would make any detector look perfect).
func fdRunCell(c fdCell) (*fdResult, error) {
	const workers = 6
	names := make([]string, 0, workers+1)
	for i := 1; i <= workers; i++ {
		names = append(names, fmt.Sprintf("n%d", i))
	}
	names = append(names, "client")
	victim := "n1"

	d, err := core.NewDomain(core.Options{
		Nodes:         names,
		Net:           netsim.Config{Seed: 11, Latency: 20 * time.Microsecond, Jitter: 150 * time.Microsecond},
		Heartbeat:     c.hb,
		CallTimeout:   10 * time.Second,
		RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer d.Stop()
	if err := d.WaitReady(10 * time.Second); err != nil {
		return nil, err
	}
	if err := d.RegisterFactory(EchoType, func() orb.Servant { return NewEchoServant() }, names[:workers]...); err != nil {
		return nil, err
	}
	// Storm groups land on non-victim workers only, so the burst keeps
	// provisioning after the crash.
	if err := d.RegisterFactory(fdStormType, func() orb.Servant { return NewEchoServant() }, names[1:workers]...); err != nil {
		return nil, err
	}

	// Steady groups (the victim hosts a member of each) plus their client
	// proxies.
	const steadyGroups = 3
	proxies := make([]*replication.Proxy, 0, steadyGroups)
	for i := 0; i < steadyGroups; i++ {
		_, gid, err := d.Create(fmt.Sprintf("fd-steady-%d", i), EchoType, &ftcorba.Properties{
			ReplicationStyle:      replication.Active,
			InitialNumberReplicas: 3,
			MembershipStyle:       ftcorba.MembershipApplication,
		})
		if err != nil {
			return nil, err
		}
		if err := d.WaitGroupReady(gid, 3, 10*time.Second); err != nil {
			return nil, err
		}
		p, err := d.Proxy("client", gid)
		if err != nil {
			return nil, err
		}
		proxies = append(proxies, p)
	}

	// Detection-quality collector: everything the notifier publishes for
	// the cell, split into confirmed faults (real detection vs false
	// eviction) and suspicion lifecycle counts.
	var (
		crashedAt atomic.Int64 // ns since start; 0 = not yet crashed
		start     = time.Now()
		detectCh  = make(chan time.Duration, 1)
		falseEv   atomic.Int64
		suspects  atomic.Int64
		recovers  atomic.Int64
	)
	ch, cancelSub := d.Notifier.Subscribe(nil)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for r := range ch {
			switch r.Event {
			case fault.EventSuspect:
				suspects.Add(1)
			case fault.EventRecover:
				recovers.Add(1)
			case fault.EventFault:
				if r.Kind != fault.NodeCrash && r.Kind != fault.ProcessCrash {
					continue
				}
				at := crashedAt.Load()
				if r.Node == victim && at != 0 {
					select {
					case detectCh <- time.Since(start.Add(time.Duration(at))):
					default: // only the first confirmation is the latency
					}
				} else {
					falseEv.Add(1)
				}
			}
		}
	}()

	// Steady invokers hammer the application plane for the whole cell.
	stopInvoke := make(chan struct{})
	var invokeWG sync.WaitGroup
	payload := cdr.OctetSeq(payloadOf(2048))
	for i := 0; i < c.invokers; i++ {
		p := proxies[i%len(proxies)]
		invokeWG.Add(1)
		go func() {
			defer invokeWG.Done()
			for {
				select {
				case <-stopInvoke:
					return
				default:
				}
				// Errors during the crash transition are the client's
				// failover to the surviving replicas; keep driving.
				_, _ = p.Invoke("echo", payload)
			}
		}()
	}

	crash := func() {
		crashedAt.Store(int64(time.Since(start)))
		d.CrashNode(victim)
	}

	created := 0
	if c.stormG == 0 {
		// Calm baseline: give the detector a short history, then crash.
		time.Sleep(50 * c.hb)
		crash()
	} else {
		// Provisioning storm: burst-create groups; the real crash lands in
		// the middle of it.
		for i := 0; i < c.stormG; i++ {
			if i == c.stormG/2 {
				crash()
			}
			_, gid, err := d.Create(fmt.Sprintf("fd-storm-%d", i), fdStormType, &ftcorba.Properties{
				ReplicationStyle:      replication.Active,
				InitialNumberReplicas: 3,
				MembershipStyle:       ftcorba.MembershipApplication,
			})
			if err != nil {
				return nil, fmt.Errorf("storm create %d: %w", i, err)
			}
			if err := d.WaitGroupReady(gid, 3, 10*time.Second); err != nil {
				return nil, fmt.Errorf("storm group %d: %w", i, err)
			}
			created++
		}
	}

	var detect time.Duration
	select {
	case detect = <-detectCh:
	case <-time.After(15 * time.Second):
		close(stopInvoke)
		invokeWG.Wait()
		cancelSub()
		<-collectorDone
		return nil, fmt.Errorf("crash of %s never confirmed", victim)
	}

	// Linger under load past the detection so late false evictions (the
	// cascade failure mode) are observed, then drain.
	time.Sleep(100 * c.hb)
	close(stopInvoke)
	invokeWG.Wait()
	cancelSub()
	<-collectorDone

	return &fdResult{
		cell:     c,
		detect:   detect,
		falseEv:  falseEv.Load(),
		suspects: suspects.Load(),
		recovers: recovers.Load(),
		createdG: created,
	}, nil
}
