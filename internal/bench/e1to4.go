package bench

import (
	"fmt"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/replication"
)

// E1LatencyByStyle measures invocation latency for an echo workload across
// payload sizes and replication styles, against an unreplicated plain-ORB
// baseline. Expected shape (paper/literature): replicated invocation costs
// a small multiple of unreplicated (total ordering dominates); warm passive
// grows fastest with payload because the primary pushes the postimage to
// backups on every operation.
func E1LatencyByStyle(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Invocation latency by replication style vs payload size (3 replicas)",
		Columns: []string{"style", "payload(B)", "mean(us)", "p50(us)", "p99(us)"},
		Notes: []string{
			"unreplicated = plain ORB point-to-point IIOP on the same fabric",
		},
	}
	payloads := []int{16, 256, 4096, 65536}

	// Unreplicated baseline.
	d, err := buildDomain(3, 7000)
	if err != nil {
		return nil, err
	}
	defer d.Stop()
	ref := d.Node("n1").ORB.ActivateObject("echo-plain", NewEchoServant())
	plain := d.Node("client").ORB.Proxy(ref)
	for _, size := range payloads {
		arg := cdr.OctetSeq(payloadOf(size))
		s, err := measure(scale, func() error {
			_, err := plain.Invoke("echo", arg)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("E1 unreplicated %dB: %w", size, err)
		}
		t.Rows = append(t.Rows, []string{"unreplicated", fmt.Sprint(size), usStr(s.mean), usStr(s.p50), usStr(s.p99)})
	}

	for _, style := range []replication.Style{replication.Active, replication.WarmPassive, replication.ColdPassive} {
		gid, err := createEcho(d, style, 3)
		if err != nil {
			return nil, fmt.Errorf("E1 create %v: %w", style, err)
		}
		proxy, err := d.Proxy("client", gid)
		if err != nil {
			return nil, err
		}
		for _, size := range payloads {
			arg := cdr.OctetSeq(payloadOf(size))
			s, err := measure(scale, func() error {
				_, err := proxy.Invoke("echo", arg)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("E1 %v %dB: %w", style, size, err)
			}
			t.Rows = append(t.Rows, []string{style.String(), fmt.Sprint(size), usStr(s.mean), usStr(s.p50), usStr(s.p99)})
		}
	}
	return t, nil
}

// E2ReplicationDegree sweeps group size for active and warm passive
// styles, reporting serial latency and pipelined throughput. Expected
// shape: latency grows mildly with degree (token circulates a longer
// ring); active throughput drops faster than warm passive's because every
// replica executes.
func E2ReplicationDegree(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Latency/throughput vs replication degree (256B echo)",
		Columns: []string{"style", "replicas", "mean(us)", "p99(us)", "ops/s(8 clients)"},
	}
	arg := cdr.OctetSeq(payloadOf(256))
	for _, style := range []replication.Style{replication.Active, replication.WarmPassive} {
		for _, replicas := range []int{1, 2, 3, 4} {
			d, err := buildDomain(4, 0)
			if err != nil {
				return nil, err
			}
			gid, err := createEcho(d, style, replicas)
			if err != nil {
				d.Stop()
				return nil, err
			}
			proxy, err := d.Proxy("client", gid)
			if err != nil {
				d.Stop()
				return nil, err
			}
			s, err := measure(scale, func() error {
				_, err := proxy.Invoke("echo", arg)
				return err
			})
			if err != nil {
				d.Stop()
				return nil, fmt.Errorf("E2 %v/%d: %w", style, replicas, err)
			}
			thr, err := throughput(d, gid, 8, scale.Invocations)
			if err != nil {
				d.Stop()
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				style.String(), fmt.Sprint(replicas),
				usStr(s.mean), usStr(s.p99), fmt.Sprintf("%.0f", thr),
			})
			d.Stop()
		}
	}
	return t, nil
}

// throughput drives the group with `clients` concurrent invokers and
// returns completed operations per second.
func throughput(d *core.Domain, gid uint64, clients, perClient int) (float64, error) {
	arg := cdr.OctetSeq(payloadOf(256))
	errCh := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		go func() {
			proxy, err := d.Proxy("client", gid)
			if err != nil {
				errCh <- err
				return
			}
			for i := 0; i < perClient; i++ {
				if _, err := proxy.Invoke("echo", arg); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	return float64(clients*perClient) / elapsed.Seconds(), nil
}

// E3Failover measures the client-observed blackout when a replica (the
// primary, for passive styles) crashes mid-stream, across fault-detection
// timescales. Expected shape: active ≈ no blackout (surviving replicas
// answer immediately); warm passive blackout ≈ detection + view change;
// cold passive adds log replay on top; everything scales with the
// heartbeat interval.
func E3Failover(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Failover blackout after primary crash (3 replicas, 16B echo)",
		Columns: []string{"style", "heartbeat(ms)", "blackout(ms)", "replays"},
		Notes: []string{
			"blackout = time from crash until the next successful invocation",
			"detection and reconfiguration are driven by the group-communication membership protocol",
		},
	}
	for _, style := range []replication.Style{replication.Active, replication.WarmPassive, replication.ColdPassive} {
		for _, hb := range []time.Duration{2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
			blackout, replays, err := failoverTrial(style, hb)
			if err != nil {
				return nil, fmt.Errorf("E3 %v hb=%v: %w", style, hb, err)
			}
			t.Rows = append(t.Rows, []string{
				style.String(),
				fmt.Sprintf("%.0f", float64(hb.Microseconds())/1000),
				fmt.Sprintf("%.2f", float64(blackout.Microseconds())/1000),
				fmt.Sprint(replays),
			})
		}
	}
	return t, nil
}

func failoverTrial(style replication.Style, hb time.Duration) (time.Duration, uint64, error) {
	names := []string{"n1", "n2", "n3", "client"}
	d, err := core.NewDomain(core.Options{
		Nodes:         names,
		Net:           netConfig(),
		Heartbeat:     hb,
		CallTimeout:   30 * time.Second,
		RetryInterval: 8 * hb,
	})
	if err != nil {
		return 0, 0, err
	}
	defer d.Stop()
	if err := d.WaitReady(10 * time.Second); err != nil {
		return 0, 0, err
	}
	if err := d.RegisterFactory(EchoType, func() orb.Servant { return NewEchoServant() }, "n1", "n2", "n3"); err != nil {
		return 0, 0, err
	}
	gid, err := createEcho(d, style, 3)
	if err != nil {
		return 0, 0, err
	}
	proxy, err := d.Proxy("client", gid)
	if err != nil {
		return 0, 0, err
	}
	arg := cdr.OctetSeq(payloadOf(16))
	for i := 0; i < 20; i++ {
		if _, err := proxy.Invoke("echo", arg); err != nil {
			return 0, 0, err
		}
	}

	members, err := d.RM.Members(gid)
	if err != nil {
		return 0, 0, err
	}
	victim := members[0] // the primary under passive styles
	crashAt := time.Now()
	d.CrashNode(victim)

	// Invoke until the group answers again.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := proxy.Invoke("echo", arg); err == nil {
			blackout := time.Since(crashAt)
			var replays uint64
			for _, n := range names {
				if node := d.Node(n); node != nil {
					replays += node.Engine.Stats().Replays
				}
			}
			return blackout, replays, nil
		}
	}
	return 0, 0, fmt.Errorf("group never recovered")
}

// E4StateTransfer measures how long bringing a new replica up to date
// takes as a function of state size. Expected shape: linear in state size
// above a fixed floor (membership change + snapshot ordering).
func E4StateTransfer(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "State transfer time to a joining replica vs state size (warm passive)",
		Columns: []string{"state(KiB)", "transfer(ms)"},
		Notes: []string{
			"measured from add_member to the joiner reporting a synchronized view",
		},
	}
	sizes := []int{1 << 10, 16 << 10, 256 << 10, 1 << 20, 4 << 20}
	for _, size := range sizes {
		// Fault-detection timescales must dominate the largest single
		// transfer (as on a real LAN, where a multi-MiB snapshot takes
		// hundreds of milliseconds): use a 10ms heartbeat here (widened
		// further under the race detector's ~10x slowdown).
		hb := 10 * time.Millisecond
		if raceEnabled {
			hb = 40 * time.Millisecond
		}
		d, err := core.NewDomain(core.Options{
			Nodes:         []string{"n1", "n2", "n3", "client"},
			Net:           netConfig(),
			Heartbeat:     hb,
			CallTimeout:   30 * time.Second,
			RetryInterval: 5 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		if err := d.WaitReady(10 * time.Second); err != nil {
			d.Stop()
			return nil, err
		}
		if err := d.RegisterFactory(EchoType, func() orb.Servant { return NewEchoServant() }, "n1", "n2", "n3"); err != nil {
			d.Stop()
			return nil, err
		}
		gid, err := createEcho(d, replication.WarmPassive, 2)
		if err != nil {
			d.Stop()
			return nil, err
		}
		proxy, err := d.Proxy("client", gid)
		if err != nil {
			d.Stop()
			return nil, err
		}
		if _, err := proxy.Invoke("fill", cdr.ULong(uint32(size))); err != nil {
			d.Stop()
			return nil, err
		}
		// The spare is whichever worker hosts no member yet.
		members, _ := d.RM.Members(gid)
		spare := ""
		for _, n := range []string{"n1", "n2", "n3"} {
			if !containsName(members, n) {
				spare = n
			}
		}
		start := time.Now()
		if _, err := d.RM.AddMember(gid, spare); err != nil {
			d.Stop()
			return nil, err
		}
		if err := d.WaitGroupReady(gid, 3, 60*time.Second); err != nil {
			d.Stop()
			return nil, err
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(size >> 10),
			fmt.Sprintf("%.2f", float64(elapsed.Microseconds())/1000),
		})
		d.Stop()
	}
	return t, nil
}

func containsName(set []string, s string) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}
