package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/replication"
	"repro/internal/slo"
)

// The SLO experiment drives the open-loop workload harness (internal/slo)
// in two phases — a calm run and a run under a composed chaos schedule —
// and reports tail latency, goodput, and blackout time as percentiles.
// Unlike E1–E8, which measure one invocation at a time, this is the
// system-level view: thousands of groups, a large simulated client
// population, Poisson+burst arrivals, and coordinated-omission-corrected
// latency accounting.

// Record mirrors cmd/benchjson's snapshot shape, so ftbench can upsert SLO
// percentiles into BENCH_*.json and cmd/benchcmp can gate them like any
// benchmark metric.
type Record struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_op"`
	Extra   map[string]float64 `json:"extra,omitempty"`
}

// sloProfile sizes the two phases for a scale tier.
type sloProfile struct {
	calm, chaotic slo.Config
}

// sloStyles cycles groups across the styles whose latency profiles the
// paper contrasts. Cold passive joined in PR 8: its per-op logging plus
// checkpoint-anchored compaction is now part of the recorded profile, and
// the harness's WAL-bound invariant runs against it at SLO volume.
var sloStyles = []replication.Style{replication.Active, replication.WarmPassive, replication.ColdPassive}

// sloChaosKinds is the composed episode mix: leader churn (crash-restart),
// protocol-state loss (token-drop), fabric-wide latency (delay-spike), and
// — on sharded runs — single-ring severance (shard-partition).
func sloChaosKinds(shards int) []chaos.EpisodeKind {
	kinds := []chaos.EpisodeKind{chaos.EpCrashRestart, chaos.EpTokenDrop, chaos.EpDelaySpike}
	if shards > 1 {
		kinds = append(kinds, chaos.EpShardPartition)
	}
	return kinds
}

// sloProfileFor maps the harness scale tiers onto run sizes. All rates sit
// well below the single-core saturation point measured in PR5 (~13.5k
// acked ops/s) so the percentiles measure the protocol, not a saturated
// host.
func sloProfileFor(scale Scale, seed int64) sloProfile {
	var p sloProfile
	switch {
	case scale.Invocations <= smokeSLOCutoff:
		// Smoke: seconds-long, exercised by `go test`.
		p.calm = slo.Config{
			Groups: 8, Clients: 4000, Workers: 96,
			Rate: 400, Duration: 2 * time.Second, Burst: 3,
		}
		p.chaotic = slo.Config{
			Groups: 6, Replicas: 3, Clients: 4000, Workers: 96,
			Rate: 300, Duration: 4 * time.Second,
			Chaos: &slo.ChaosPlan{Kinds: sloChaosKinds(1), Episodes: 2},
		}
	case scale.Invocations < FullScale.Invocations:
		// Quick: the CI tier (ftbench -quick).
		p.calm = slo.Config{
			Groups: 48, Clients: 60000, Workers: 256,
			Rate: 1200, Duration: 6 * time.Second, Burst: 4,
			Heartbeat: 5 * time.Millisecond,
		}
		p.chaotic = slo.Config{
			Groups: 16, Replicas: 3, Shards: 2, Clients: 30000, Workers: 192,
			Rate: 700, Duration: 10 * time.Second,
			Heartbeat: 5 * time.Millisecond,
			Chaos:     &slo.ChaosPlan{Kinds: sloChaosKinds(2), Episodes: 4},
		}
	default:
		// Full: the recorded evaluation run. The calm phase is the
		// million-client simulation: ≥1k groups, a 10⁶ client population,
		// ~112k arrivals so >100k distinct clients invoke.
		// The wider heartbeats trade detection latency for fail-detector
		// precision: at thousand-group scale on a shared host, scheduling
		// gaps routinely exceed the tight smoke-tier windows and false
		// positives would dominate the measurement.
		p.calm = slo.Config{
			Groups: 1024, Clients: 1 << 20, Workers: 768, Shards: 4,
			Rate: 2800, Duration: 40 * time.Second, Burst: 4,
			Heartbeat: 25 * time.Millisecond,
		}
		p.chaotic = slo.Config{
			Groups: 64, Replicas: 3, Shards: 2, Clients: 200000, Workers: 512,
			Rate: 1500, Duration: 30 * time.Second,
			Heartbeat: 10 * time.Millisecond,
			Chaos:     &slo.ChaosPlan{Kinds: sloChaosKinds(2), Episodes: 6},
		}
	}
	p.calm.Seed = seed
	p.calm.Styles = sloStyles
	p.chaotic.Seed = seed
	p.chaotic.Styles = sloStyles
	return p
}

// smokeSLOCutoff: scales at or below this invocation count (bench_test's
// smokeScale) get the seconds-long smoke profile.
const smokeSLOCutoff = 8

// SLOWorkload runs the SLO experiment (ByID "slo").
func SLOWorkload(scale Scale) (*Table, error) {
	t, _, err := SLOWorkloadSeeded(scale, 1, nil)
	return t, err
}

// SLOWorkloadSeeded runs both phases with an explicit seed and returns the
// table plus snapshot records for the regression pipeline. progress, when
// non-nil, receives live status lines.
func SLOWorkloadSeeded(scale Scale, seed int64, progress func(string, ...any)) (*Table, []Record, error) {
	p := sloProfileFor(scale, seed)
	p.calm.Progress = progress
	p.chaotic.Progress = progress

	calm, err := slo.Run(p.calm)
	if err != nil {
		return nil, nil, fmt.Errorf("slo calm phase: %w", err)
	}
	chaotic, err := slo.Run(p.chaotic)
	if err != nil {
		return nil, nil, fmt.Errorf("slo chaos phase: %w", err)
	}

	tab := &Table{
		ID:    "SLO",
		Title: "open-loop workload: latency percentiles, goodput, and blackout under chaos",
		Columns: []string{"phase", "segment", "samples", "p50(ms)", "p99(ms)", "p999(ms)",
			"max(ms)", "goodput(op/s)", "errors", "blackout p99(ms)"},
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/1e6) }
	addRow := func(phase, segment string, h *slo.Hist, goodput float64, errs int64, blackout *slo.Hist) {
		s := h.Snap()
		g, e, b := "-", "-", "-"
		if goodput >= 0 {
			g = fmt.Sprintf("%.0f", goodput)
		}
		if errs >= 0 {
			e = fmt.Sprintf("%d", errs)
		}
		if blackout != nil && blackout.Count() > 0 {
			b = ms(blackout.Quantile(0.99))
		}
		tab.Rows = append(tab.Rows, []string{
			phase, segment, fmt.Sprintf("%d", s.Count),
			ms(s.P50), ms(s.P99), ms(s.P999), ms(s.Max), g, e, b,
		})
	}

	addRow("calm", "all", calm.All, calm.Goodput, calm.Errors, nil)
	for _, style := range sloStyles {
		addRow("calm", style.String(), calm.ByStyle[style.String()], -1, -1, nil)
	}
	addRow("chaos", "all", chaotic.All, chaotic.Goodput, chaotic.Errors, nil)
	addRow("chaos", "calm-windows", chaotic.Calm, -1, -1, nil)
	kinds := make([]string, 0, len(chaotic.ByKind))
	for k := range chaotic.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		if chaotic.ByKind[k].Count() == 0 {
			continue // kind in the plan's mix but not drawn by this seed
		}
		addRow("chaos", k, chaotic.ByKind[k], -1, -1, chaotic.Blackout[k])
	}
	for _, style := range sloStyles {
		addRow("chaos", style.String(), chaotic.ByStyle[style.String()], -1, -1,
			mergedBlackout(chaotic, "/"+style.String()))
	}

	tab.Notes = append(tab.Notes,
		fmt.Sprintf("calm: %d arrivals from %d distinct clients (population %d) over %d groups, schedule %016x",
			calm.Arrivals, calm.ActiveClients, calm.Population, calm.Groups, calm.ScheduleHash),
		fmt.Sprintf("chaos: %d arrivals over %d groups, %d episodes: %s",
			chaotic.Arrivals, chaotic.Groups, len(chaotic.ChaosSchedule.Episodes),
			describeEpisodes(chaotic)),
		"latency is coordinated-omission corrected: measured from intended arrival, not send",
		"blackout p99 is over (episode, group) pairs: the longest per-group completion gap inside each episode window",
	)

	recs := []Record{
		sloRecord("slo/calm", calm, nil),
		sloRecord("slo/chaos", chaotic, mergedBlackout(chaotic, "")),
	}
	return tab, recs, nil
}

// mergedBlackout folds the per-kind blackout histograms whose key carries
// the given suffix ("" = the plain per-kind entries) into one distribution.
func mergedBlackout(res *slo.Result, suffix string) *slo.Hist {
	out := slo.NewHist()
	for key, h := range res.Blackout {
		if suffix == "" && !strings.Contains(key, "/") {
			out.Merge(h)
		} else if suffix != "" && strings.HasSuffix(key, suffix) {
			out.Merge(h)
		}
	}
	return out
}

func describeEpisodes(res *slo.Result) string {
	parts := make([]string, 0, len(res.ChaosSchedule.Episodes))
	for _, ep := range res.ChaosSchedule.Episodes {
		parts = append(parts, fmt.Sprintf("%s@%s", ep.Kind, ep.Victim))
	}
	return strings.Join(parts, " ")
}

// sloRecord flattens one phase into a snapshot record. Percentiles land in
// Extra under the unit names cmd/benchcmp's registry gates on.
func sloRecord(name string, res *slo.Result, blackout *slo.Hist) Record {
	s := res.All.Snap()
	us := func(d time.Duration) float64 { return float64(d) / 1e3 }
	r := Record{
		Name:    name,
		Iters:   int64(res.Arrivals),
		NsPerOp: float64(s.Mean),
		Extra: map[string]float64{
			"p50_us":      us(s.P50),
			"p99_us":      us(s.P99),
			"p999_us":     us(s.P999),
			"goodput_ops": res.Goodput,
			"errors":      float64(res.Errors),
		},
	}
	if blackout != nil && blackout.Count() > 0 {
		r.Extra["blackout_p99_ms"] = float64(blackout.Quantile(0.99)) / 1e6
	}
	return r
}
