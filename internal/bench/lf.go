package bench

import (
	"fmt"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/orb"
	"repro/internal/replication"
)

// The LF experiment measures what the LEADER_FOLLOWER style buys over the
// totally-ordered baseline: leased local reads that never enter totem, and
// direct-lane writes whose ack cost is one order delivery instead of the
// full invoke/reply exchange. The sweep varies the rings' idle-token
// pacing — the knob that sets the ordered path's idle-start latency floor
// — and shows the leased read decoupled from it: ACTIVE writes (and LF
// writes, whose ack gate rides the order stream) scale with the token
// hold, while the leased read stays flat at RPC cost. A final cell crashes
// the leader mid-stream and reports the write blackout until the senior
// follower answers again.

// lfCell is one sweep point: the idle-token pacing applied to every ring.
type lfCell struct {
	name string
	idle time.Duration
}

// lfResult is one cell's measurements.
type lfResult struct {
	cell    lfCell
	activeW summary // ACTIVE style write ("echo"), ordered path
	lfW     summary // LF write, direct lane (ack = own order delivery)
	lfRead  summary // LF read under the lease, no totem entry
}

// lfReadP50Bound is the full-scale acceptance bound on the leased read's
// median at replication degree 3 (ISSUE: decoupled from token pacing).
const lfReadP50Bound = 100.0 // µs

// LFLatency runs the leader-follower latency experiment (ByID "lf").
func LFLatency(scale Scale) (*Table, error) {
	t, _, err := LFLatencyRecords(scale)
	return t, err
}

// LFLatencyRecords runs the sweep and returns snapshot records
// (read p50/p99, write p50 vs ACTIVE, failover blackout) for the
// regression pipeline.
func LFLatencyRecords(scale Scale) (*Table, []Record, error) {
	var cells []lfCell
	switch {
	case scale.Invocations <= smokeSLOCutoff:
		cells = []lfCell{{name: "idle=default", idle: 0}}
	case scale.Invocations < FullScale.Invocations:
		cells = []lfCell{
			{name: "idle=default", idle: 0},
			{name: "idle=2ms", idle: 2 * time.Millisecond},
		}
	default:
		cells = []lfCell{
			{name: "idle=default", idle: 0},
			{name: "idle=1ms", idle: time.Millisecond},
			{name: "idle=4ms", idle: 4 * time.Millisecond},
		}
	}

	var results []*lfResult
	var readP50Max, readP99Max, readP50Min float64
	for _, c := range cells {
		res, err := lfRunCell(c, scale)
		if err != nil {
			return nil, nil, fmt.Errorf("lf: cell %s: %w", c.name, err)
		}
		results = append(results, res)
		if res.lfRead.p50 > readP50Max {
			readP50Max = res.lfRead.p50
		}
		if res.lfRead.p99 > readP99Max {
			readP99Max = res.lfRead.p99
		}
		if readP50Min == 0 || res.lfRead.p50 < readP50Min {
			readP50Min = res.lfRead.p50
		}
	}

	blackout, err := lfFailoverBlackout()
	if err != nil {
		return nil, nil, fmt.Errorf("lf: failover: %w", err)
	}

	base := results[0]
	writeRatio := base.lfW.p50 / base.activeW.p50
	tab := &Table{
		ID:    "LF",
		Title: "leader-follower: leased local reads vs ordered-path latency across idle-token pacing (degree 3)",
		Columns: []string{"cell", "active write p50/p99(us)", "lf write p50/p99(us)",
			"lf read p50/p99(us)"},
	}
	for _, r := range results {
		tab.Rows = append(tab.Rows, []string{
			r.cell.name,
			usStr(r.activeW.p50) + "/" + usStr(r.activeW.p99),
			usStr(r.lfW.p50) + "/" + usStr(r.lfW.p99),
			usStr(r.lfRead.p50) + "/" + usStr(r.lfRead.p99),
		})
	}
	tab.Notes = append(tab.Notes,
		"writes enter the ordered stream (ACTIVE per-op total order; LF ack gate = the leader's own order delivery), so both scale with the idle-token hold",
		"the leased read is served from replica-local state without entering totem: its latency must stay flat across the pacing sweep",
		fmt.Sprintf("lf write p50 / active write p50 = %.2fx at default pacing", writeRatio),
		fmt.Sprintf("leader-crash write blackout (crash to first answered write at the successor) = %.1fms", float64(blackout)/1e6),
	)

	if scale.Invocations >= FullScale.Invocations {
		if readP50Max > lfReadP50Bound {
			return tab, nil, fmt.Errorf("lf: leased read p50 %.1fus exceeds %.0fus bound (worst pacing cell)",
				readP50Max, lfReadP50Bound)
		}
	}

	recs := []Record{
		{
			Name:    "lf/read",
			Iters:   int64(scale.Invocations * len(cells)),
			NsPerOp: readP50Max * 1e3,
			Extra: map[string]float64{
				"read_p50_us":        readP50Max,
				"read_p99_us":        readP99Max,
				"read_p50_spread_us": readP50Max - readP50Min, // decoupling: spread across pacing cells
			},
		},
		{
			Name:    "lf/write",
			Iters:   int64(scale.Invocations),
			NsPerOp: base.lfW.p50 * 1e3,
			Extra: map[string]float64{
				"write_p50_us":  base.lfW.p50,
				"write_p99_us":  base.lfW.p99,
				"active_p50_us": base.activeW.p50,
				"vs_active":     writeRatio,
			},
		},
		{
			Name:    "lf/failover",
			Iters:   1,
			NsPerOp: float64(blackout.Nanoseconds()),
			Extra:   map[string]float64{"blackout_ms": float64(blackout) / 1e6},
		},
	}
	return tab, recs, nil
}

// lfBuildDomain is a 3-worker domain with explicit idle-token pacing, an
// ACTIVE echo group, and an LF echo group with "size" leased.
func lfBuildDomain(idle time.Duration) (*core.Domain, *replication.Proxy, *replication.Proxy, uint64, error) {
	names := []string{"n1", "n2", "n3", "client"}
	d, err := core.NewDomain(core.Options{
		Nodes:          names,
		Net:            netConfig(),
		Heartbeat:      heartbeat,
		IdleTokenDelay: idle,
		CallTimeout:    20 * time.Second,
		RetryInterval:  50 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	ok := false
	defer func() {
		if !ok {
			d.Stop()
		}
	}()
	if err := d.WaitReady(10 * time.Second); err != nil {
		return nil, nil, nil, 0, err
	}
	if err := d.RegisterFactory(EchoType, func() orb.Servant { return NewEchoServant() }, "n1", "n2", "n3"); err != nil {
		return nil, nil, nil, 0, err
	}

	gidA, err := createEcho(d, replication.Active, 3)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	pA, err := d.Proxy("client", gidA)
	if err != nil {
		return nil, nil, nil, 0, err
	}

	_, gidL, err := d.Create("lf-echo", EchoType, &ftcorba.Properties{
		ReplicationStyle:      replication.LeaderFollower,
		InitialNumberReplicas: 3,
		MembershipStyle:       ftcorba.MembershipApplication,
		ReadOnlyOps:           []string{"size"},
	})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	if err := d.WaitGroupReady(gidL, 3, 10*time.Second); err != nil {
		return nil, nil, nil, 0, err
	}
	// Domain.Proxy turns the recorded ReadOnlyOps into the LF fast path.
	pL, err := d.Proxy("client", gidL)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	ok = true
	return d, pA, pL, gidL, nil
}

// lfRunCell measures one pacing cell: ACTIVE write, LF write, leased read.
func lfRunCell(c lfCell, scale Scale) (*lfResult, error) {
	d, pA, pL, _, err := lfBuildDomain(c.idle)
	if err != nil {
		return nil, err
	}
	defer d.Stop()

	payload := cdr.OctetSeq(payloadOf(1024))
	res := &lfResult{cell: c}
	if res.activeW, err = measure(scale, func() error {
		_, err := pA.Invoke("echo", payload)
		return err
	}); err != nil {
		return nil, fmt.Errorf("active write: %w", err)
	}
	if res.lfW, err = measure(scale, func() error {
		_, err := pL.Invoke("echo", payload)
		return err
	}); err != nil {
		return nil, fmt.Errorf("lf write: %w", err)
	}
	// The writes above double as lease warmup: grants renew at ~Dur/3, so
	// by now every replica holds a live lease and reads stay local.
	if res.lfRead, err = measure(scale, func() error {
		_, err := pL.Invoke("size")
		return err
	}); err != nil {
		return nil, fmt.Errorf("lf read: %w", err)
	}
	return res, nil
}

// lfFailoverBlackout crashes the LF leader under a write stream and
// reports how long writes stay unanswered: crash to the first write the
// senior follower (now leader) acks. The successor fences writes for
// LeaseDuration+LeaseGuard past takeover, so the blackout includes the
// lease drain by design.
func lfFailoverBlackout() (time.Duration, error) {
	d, _, pL, gidL, err := lfBuildDomain(0)
	if err != nil {
		return 0, err
	}
	defer d.Stop()

	arg := cdr.OctetSeq(payloadOf(64))
	for i := 0; i < 20; i++ {
		if _, err := pL.Invoke("echo", arg); err != nil {
			return 0, fmt.Errorf("warmup write %d: %w", i, err)
		}
	}

	members, err := d.RM.Members(gidL)
	if err != nil {
		return 0, err
	}
	leader := members[0]
	crashAt := time.Now()
	d.CrashNode(leader)

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		// Errors during the transition are the client's failover; keep
		// driving until the successor answers.
		if _, err := pL.Invoke("echo", arg); err == nil {
			return time.Since(crashAt), nil
		}
	}
	return 0, fmt.Errorf("lf group never recovered after crashing leader %s", leader)
}
