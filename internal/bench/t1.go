package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/totem"
)

// T1Totem microbenchmarks the group communication substrate: ordered
// multicast latency (send to self-delivery) and throughput across ring
// sizes, with the classic fixed-sequencer protocol as the ablation
// baseline. Expected shape: ring latency grows with ring size (the token
// must reach the sender before it may transmit); the sequencer has lower
// small-scale latency but a central bottleneck and no fault tolerance.
func T1Totem(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "T1",
		Title:   "Ordered multicast microbenchmark: token ring vs fixed sequencer",
		Columns: []string{"protocol", "nodes", "payload(B)", "latency mean(us)", "msgs/s (burst)"},
		Notes: []string{
			"latency = multicast to self-delivery at the sender",
			"throughput = burst of messages timed to last delivery at one node",
		},
	}
	for _, nodes := range []int{2, 3, 5} {
		for _, size := range []int{64, 1024} {
			lat, thr, err := ringTrial(nodes, size, scale)
			if err != nil {
				return nil, fmt.Errorf("T1 ring %d/%d: %w", nodes, size, err)
			}
			t.Rows = append(t.Rows, []string{
				"totem-ring", fmt.Sprint(nodes), fmt.Sprint(size),
				usStr(lat.mean), fmt.Sprintf("%.0f", thr),
			})
		}
	}
	for _, nodes := range []int{2, 3, 5} {
		for _, size := range []int{64, 1024} {
			lat, thr, err := sequencerTrial(nodes, size, scale)
			if err != nil {
				return nil, fmt.Errorf("T1 seq %d/%d: %w", nodes, size, err)
			}
			t.Rows = append(t.Rows, []string{
				"sequencer", fmt.Sprint(nodes), fmt.Sprint(size),
				usStr(lat.mean), fmt.Sprintf("%.0f", thr),
			})
		}
	}
	return t, nil
}

func ringTrial(nodes, size int, scale Scale) (summary, float64, error) {
	names := make([]string, 0, nodes)
	for i := 1; i <= nodes; i++ {
		names = append(names, fmt.Sprintf("r%d", i))
	}
	tp, err := benchTransport(names)
	if err != nil {
		return summary{}, 0, err
	}
	rings := make([]*totem.Ring, 0, nodes)
	defer func() {
		for _, r := range rings {
			r.Stop()
		}
	}()
	for _, n := range names {
		r, err := totem.NewRing(tp, totem.Config{
			Node:              n,
			Universe:          names,
			Port:              4000,
			HeartbeatInterval: heartbeat,
		})
		if err != nil {
			return summary{}, 0, err
		}
		r.Start()
		rings = append(rings, r)
	}
	sender := rings[0]
	if err := sender.JoinGroup("bench"); err != nil {
		return summary{}, 0, err
	}
	var delivered atomic.Int64
	go func() {
		for ev := range sender.Events() {
			if _, ok := ev.(totem.Deliver); ok {
				delivered.Add(1)
			}
		}
	}()
	// Wait for a stable full ring.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, members := sender.CurrentRing(); len(members) == nodes {
			break
		}
		if time.Now().After(deadline) {
			return summary{}, 0, fmt.Errorf("ring never formed")
		}
		time.Sleep(time.Millisecond)
	}

	payload := payloadOf(size)
	lat, err := measure(scale, func() error {
		base := delivered.Load()
		if err := sender.Multicast("bench", payload); err != nil {
			return err
		}
		return waitDelivered(&delivered, base+1, 10*time.Second)
	})
	if err != nil {
		return summary{}, 0, err
	}

	// Throughput: burst, then count deliveries.
	burst := scale.Invocations * 4
	base := delivered.Load()
	start := time.Now()
	for i := 0; i < burst; i++ {
		if err := sender.Multicast("bench", payload); err != nil {
			return summary{}, 0, err
		}
	}
	if err := waitDelivered(&delivered, base+int64(burst), 60*time.Second); err != nil {
		return summary{}, 0, fmt.Errorf("burst: %w", err)
	}
	thr := float64(burst) / time.Since(start).Seconds()
	return lat, thr, nil
}

func sequencerTrial(nodes, size int, scale Scale) (summary, float64, error) {
	names := make([]string, 0, nodes)
	for i := 1; i <= nodes; i++ {
		names = append(names, fmt.Sprintf("s%d", i))
	}
	tp, err := benchTransport(names)
	if err != nil {
		return summary{}, 0, err
	}
	seqs := make([]*totem.Sequencer, 0, nodes)
	defer func() {
		for _, s := range seqs {
			s.Stop()
		}
	}()
	for _, n := range names {
		s, err := totem.NewSequencer(tp, n, names, 5000)
		if err != nil {
			return summary{}, 0, err
		}
		seqs = append(seqs, s)
	}
	// Measure at a non-sequencer node (worst case: two hops).
	sender := seqs[len(seqs)-1]
	var delivered atomic.Int64
	go func() {
		for ev := range sender.Events() {
			if _, ok := ev.(totem.Deliver); ok {
				delivered.Add(1)
			}
		}
	}()

	payload := payloadOf(size)
	lat, err := measure(scale, func() error {
		base := delivered.Load()
		if err := sender.Multicast("bench", payload); err != nil {
			return err
		}
		return waitDelivered(&delivered, base+1, 10*time.Second)
	})
	if err != nil {
		return summary{}, 0, err
	}

	burst := scale.Invocations * 4
	base := delivered.Load()
	start := time.Now()
	for i := 0; i < burst; i++ {
		if err := sender.Multicast("bench", payload); err != nil {
			return summary{}, 0, err
		}
	}
	if err := waitDelivered(&delivered, base+int64(burst), 60*time.Second); err != nil {
		return summary{}, 0, fmt.Errorf("burst: %w", err)
	}
	thr := float64(burst) / time.Since(start).Seconds()
	return lat, thr, nil
}

// waitDelivered polls the delivery counter until it reaches target.
func waitDelivered(counter *atomic.Int64, target int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if counter.Load() >= target {
			return nil
		}
		time.Sleep(20 * time.Microsecond)
	}
	return fmt.Errorf("delivery timeout (%d/%d)", counter.Load(), target)
}
