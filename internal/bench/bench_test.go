package bench

import (
	"io"
	"strconv"
	"strings"
	"testing"
	"time"
)

// smokeScale keeps the experiment smoke tests fast; correctness of the
// numbers is not asserted here (EXPERIMENTS.md records full runs), only
// that every experiment completes and produces a well-formed table.
var smokeScale = Scale{Invocations: 8, Warmup: 2}

func checkTable(t *testing.T, tab *Table, wantRows int) {
	t.Helper()
	if tab.ID == "" || tab.Title == "" || len(tab.Columns) == 0 {
		t.Fatalf("malformed table: %+v", tab)
	}
	if len(tab.Rows) != wantRows {
		t.Fatalf("%s: %d rows, want %d", tab.ID, len(tab.Rows), wantRows)
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("%s row %d has %d cells, want %d", tab.ID, i, len(row), len(tab.Columns))
		}
	}
	tab.Fprint(io.Discard)
}

func TestE1Smoke(t *testing.T) {
	tab, err := E1LatencyByStyle(smokeScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 16) // 4 styles x 4 payloads

	// Sanity on the shape: replicated invocations must cost more than the
	// unreplicated baseline at the same payload.
	mean := func(style, payload string) float64 {
		for _, row := range tab.Rows {
			if row[0] == style && row[1] == payload {
				v, _ := strconv.ParseFloat(row[2], 64)
				return v
			}
		}
		t.Fatalf("row %s/%s missing", style, payload)
		return 0
	}
	if mean("ACTIVE", "256") <= mean("unreplicated", "256") {
		t.Log("warning: active not slower than unreplicated at 256B (timing noise at smoke scale)")
	}
}

func TestE2Smoke(t *testing.T) {
	tab, err := E2ReplicationDegree(smokeScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 8) // 2 styles x 4 degrees
}

func TestE3Smoke(t *testing.T) {
	tab, err := E3Failover(smokeScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 9) // 3 styles x 3 heartbeats
	for _, row := range tab.Rows {
		blackout, err := strconv.ParseFloat(row[2], 64)
		if err != nil || blackout <= 0 {
			t.Errorf("row %v: bad blackout", row)
		}
		if blackout > 5000 {
			t.Errorf("row %v: implausible blackout %.0fms", row, blackout)
		}
	}
}

func TestE4Smoke(t *testing.T) {
	tab, err := E4StateTransfer(smokeScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 5)
	// Shape: transfer time must grow from the smallest to the largest state.
	first, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	last, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][1], 64)
	if last < first {
		t.Errorf("state transfer not increasing with size: %.2f .. %.2f", first, last)
	}
}

func TestE5Smoke(t *testing.T) {
	tab, err := E5DuplicateSuppression(smokeScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3)
	// With 3 caller replicas there must be suppressed duplicates.
	row := tab.Rows[2]
	dups, _ := strconv.ParseInt(row[3], 10, 64)
	if dups == 0 {
		t.Errorf("no duplicate invocations with 3 callers: %v", row)
	}
}

func TestE6Smoke(t *testing.T) {
	tab, err := E6CheckpointInterval(smokeScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 4)
	// Shape: replay count grows with the checkpoint interval.
	r0, _ := strconv.ParseInt(tab.Rows[0][2], 10, 64)
	r3, _ := strconv.ParseInt(tab.Rows[3][2], 10, 64)
	if r3 < r0 {
		t.Errorf("replays not increasing with interval: %d .. %d", r0, r3)
	}
}

func TestE7Smoke(t *testing.T) {
	tab, err := E7PartitionRemerge(smokeScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3)
	for _, row := range tab.Rows {
		if row[3] != "true" {
			t.Errorf("row %v: did not converge", row)
		}
		want := row[0]
		if row[1] != want {
			t.Errorf("row %v: fulfillments %s != secondary ops %s", row, row[1], want)
		}
	}
}

func TestE8Smoke(t *testing.T) {
	tab, err := E8Approaches(smokeScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 4)
}

func TestT1Smoke(t *testing.T) {
	tab, err := T1Totem(smokeScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 12) // 2 protocols x 3 sizes x 2 payloads
}

func TestSLOSmoke(t *testing.T) {
	tab, recs, err := SLOWorkloadSeeded(smokeScale, 1, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	// calm: all + per-style rows; chaos: all + calm-windows + per-kind rows
	// (the 2-episode smoke schedule hits 1 or 2 distinct kinds) + per-style
	// rows.
	minRows := 2*(1+len(sloStyles)) + 2 // + calm-windows + ≥1 episode kind
	if len(tab.Rows) < minRows || len(tab.Rows) > minRows+1 {
		t.Fatalf("unexpected row count %d:\n%v", len(tab.Rows), tab.Rows)
	}
	checkTable(t, tab, len(tab.Rows))
	if len(recs) != 2 || recs[0].Name != "slo/calm" || recs[1].Name != "slo/chaos" {
		t.Fatalf("records: %+v", recs)
	}
	for _, r := range recs {
		if r.Iters == 0 || r.NsPerOp <= 0 {
			t.Fatalf("degenerate record %+v", r)
		}
		for _, key := range []string{"p50_us", "p99_us", "p999_us", "goodput_ops", "errors"} {
			if _, ok := r.Extra[key]; !ok {
				t.Fatalf("record %s missing %s: %+v", r.Name, key, r.Extra)
			}
		}
	}
	if recs[0].Extra["errors"] != 0 {
		t.Fatalf("calm phase had %v errors", recs[0].Extra["errors"])
	}
	if _, ok := recs[1].Extra["blackout_p99_ms"]; !ok {
		t.Fatalf("chaos record missing blackout_p99_ms: %+v", recs[1].Extra)
	}
}

func TestTablePrinting(t *testing.T) {
	tab := &Table{
		ID:      "X",
		Title:   "demo",
		Columns: []string{"a", "longer-column"},
		Rows:    [][]string{{"1", "2"}, {"wide-cell-content", "3"}},
		Notes:   []string{"a note"},
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"X — demo", "longer-column", "wide-cell-content", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestByIDComplete(t *testing.T) {
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "t1", "slo"} {
		if ByID[id] == nil {
			t.Errorf("ByID missing %s", id)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := summarize([]time.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond})
	if s.mean < 1900 || s.mean > 2100 {
		t.Errorf("mean = %v", s.mean)
	}
	if s.p50 != 2000 {
		t.Errorf("p50 = %v", s.p50)
	}
	if s.p99 != 3000 {
		t.Errorf("p99 = %v", s.p99)
	}
	if z := summarize(nil); z.mean != 0 {
		t.Errorf("empty summarize = %+v", z)
	}
}
