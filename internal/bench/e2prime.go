package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/orb"
	"repro/internal/replication"
)

// E2′ — sharded-transport throughput. The single-ring transport caps
// aggregate throughput at one token rotation no matter how many independent
// groups exist; the sharded pool gives each group its own token (R rings,
// groups hash-routed across them). Expected shape: for G independent groups,
// aggregate throughput grows with the shard count until the host is
// CPU-bound; for a single group it stays flat (one group can never use more
// than one ring — per-group total order is the invariant FT-CORBA needs).

// ShardedWorkload parameterizes one E2′ cell (exported so bench_test.go
// drives the same workload as the table).
type ShardedWorkload struct {
	Shards    int // rings per node
	Groups    int // independent ACTIVE groups
	Replicas  int // replicas per group
	Clients   int // concurrent invokers per group
	PerClient int // operations per invoker
}

// RunSharded builds a fresh sharded domain, drives every group
// concurrently, and returns aggregate completed operations per second.
func RunSharded(w ShardedWorkload) (float64, error) {
	d, err := newShardedDomain(w)
	if err != nil {
		return 0, err
	}
	defer d.Stop()
	gids, err := createShardedGroups(d, w)
	if err != nil {
		return 0, err
	}
	// Warmup: touch every group once so reply-group joins and executor
	// spin-up are off the clock.
	for _, gid := range gids {
		p, err := d.Proxy("client", gid)
		if err != nil {
			return 0, err
		}
		if _, err := p.Invoke("echo", cdr.OctetSeq(payloadOf(256))); err != nil {
			return 0, err
		}
	}
	return driveSharded(d, gids, w.Clients, w.PerClient)
}

func newShardedDomain(w ShardedWorkload) (*core.Domain, error) {
	names := []string{"n1", "n2", "n3", "n4", "client"}
	tp, err := optionalTransport(names)
	if err != nil {
		return nil, err
	}
	d, err := core.NewDomain(core.Options{
		Nodes:          names,
		Net:            netConfig(),
		Transport:      tp,
		Heartbeat:      heartbeat,
		IdleTokenDelay: transportIdleDelay(),
		Shards:         w.Shards,
		CallTimeout:    30 * time.Second,
		RetryInterval:  5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	if err := d.WaitReady(15 * time.Second); err != nil {
		d.Stop()
		return nil, err
	}
	if err := d.RegisterFactory(EchoType, func() orb.Servant { return NewEchoServant() }, names[:4]...); err != nil {
		d.Stop()
		return nil, err
	}
	return d, nil
}

func createShardedGroups(d *core.Domain, w ShardedWorkload) ([]uint64, error) {
	gids := make([]uint64, 0, w.Groups)
	for g := 0; g < w.Groups; g++ {
		_, gid, err := d.Create(fmt.Sprintf("shard-echo-%d", g), EchoType, &ftcorba.Properties{
			ReplicationStyle:      replication.Active,
			InitialNumberReplicas: w.Replicas,
			MembershipStyle:       ftcorba.MembershipApplication,
			// Round-robin placement rather than the hash route: the cell
			// measures transport scaling, so it should not inherit hash
			// imbalance noise across the small group count.
			Shard: g%w.Shards + 1,
		})
		if err != nil {
			return nil, err
		}
		if err := d.WaitGroupReady(gid, w.Replicas, 15*time.Second); err != nil {
			return nil, err
		}
		gids = append(gids, gid)
	}
	return gids, nil
}

// driveSharded runs clients×len(gids) concurrent invokers and returns
// aggregate ops/s.
func driveSharded(d *core.Domain, gids []uint64, clients, perClient int) (float64, error) {
	return driveProxies(func(gid uint64) (*replication.Proxy, error) {
		return d.Proxy("client", gid)
	}, gids, clients, perClient)
}

// driveProxies is the transport-agnostic drive loop shared by the
// in-process (E2′) and multi-process (E2mp) cells: clients×len(gids)
// concurrent invokers against whatever proxy construction the deployment
// provides, returning aggregate ops/s.
func driveProxies(proxyFor func(gid uint64) (*replication.Proxy, error), gids []uint64, clients, perClient int) (float64, error) {
	arg := cdr.OctetSeq(payloadOf(256))
	errCh := make(chan error, len(gids)*clients)
	var wg sync.WaitGroup
	start := time.Now()
	for _, gid := range gids {
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(gid uint64) {
				defer wg.Done()
				proxy, err := proxyFor(gid)
				if err != nil {
					errCh <- err
					return
				}
				for i := 0; i < perClient; i++ {
					if _, err := proxy.Invoke("echo", arg); err != nil {
						errCh <- fmt.Errorf("group %d: %w", gid, err)
						return
					}
				}
			}(gid)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return 0, err
	}
	return float64(len(gids)*clients*perClient) / elapsed.Seconds(), nil
}

// E2PrimeSharding regenerates the E2′ table: aggregate throughput vs shard
// count for 8 independent groups, plus the single-group control row per
// shard count (expected flat — one group still rides one token).
func E2PrimeSharding(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E2'",
		Title:   "Aggregate throughput vs transport shards (ACTIVE/3, 256B echo)",
		Columns: []string{"shards", "groups", "clients/grp", "ops/s", "vs R=1"},
		Notes: []string{
			"groups=8: independent groups round-robined across shards (each shard its own token)",
			"groups=1: control — a single group cannot use more than one ring",
			"clients/grp=2: latency-bound regime (token-hold waits dominate)",
			"clients/grp=8: the host CPU saturates — sharding cannot add cycles",
		},
	}
	perClient := scale.Invocations / 8
	if perClient < 4 {
		perClient = 4
	}
	cells := []struct{ groups, clients int }{{8, 2}, {8, 8}, {1, 2}}
	for _, c := range cells {
		var base float64
		for _, shards := range []int{1, 2, 4} {
			thr, err := RunSharded(ShardedWorkload{
				Shards: shards, Groups: c.groups, Replicas: 3,
				Clients: c.clients, PerClient: perClient,
			})
			if err != nil {
				return nil, fmt.Errorf("E2' R=%d G=%d: %w", shards, c.groups, err)
			}
			if shards == 1 {
				base = thr
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(shards), fmt.Sprint(c.groups), fmt.Sprint(c.clients),
				fmt.Sprintf("%.0f", thr), fmt.Sprintf("%.2fx", thr/base),
			})
		}
	}
	return t, nil
}
