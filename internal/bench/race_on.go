//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in; timing-
// sensitive experiments widen their detection timescales under it.
const raceEnabled = true
