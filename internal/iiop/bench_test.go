package iiop

import (
	"net"
	"testing"

	"repro/internal/giop"
	"repro/internal/netsim"
)

// newBenchPair is newSimPair for benchmarks (testing.TB-free fatal path).
func newBenchPair(b *testing.B, h Handler) (*Transport, func()) {
	b.Helper()
	f := netsim.NewFabric(netsim.Config{})
	f.AddNode("client")
	f.AddNode("server")
	l, err := f.Listen("server", 9999)
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(l, h)
	srv.Serve()
	tr := NewTransport(func(host string, port uint16) (net.Conn, error) {
		return f.Dial("client", host, port)
	})
	return tr, func() { tr.Close(); srv.Close() }
}

// BenchmarkIIOPRoundTrip measures one twoway request/reply over the
// transport, and asserts the pooled read path holds: with request frames,
// reply frames for the client read loop excluded (they escape to the
// caller), write framing, and cdr encoders all recycled, a steady-state
// round trip must stay under an allocation budget. The budget is loose
// enough for the per-call bookkeeping that is real (pending-call channel,
// reply struct, goroutine-crossing) and tight enough that reverting frame
// pooling (one allocation per read frame per side, plus body copies) blows
// it.
func BenchmarkIIOPRoundTrip(b *testing.B) {
	tr, cleanup := newBenchPair(b, &echoHandler{})
	defer cleanup()
	req := &giop.Request{
		ResponseFlags: giop.ResponseExpected,
		ObjectKey:     []byte("obj"),
		Operation:     "echo",
		Body:          make([]byte, 256),
	}
	invoke := func() {
		req.RequestID = tr.NextRequestID()
		if _, err := tr.Invoke("server", 9999, req, 0); err != nil {
			b.Fatal(err)
		}
	}
	invoke() // establish the connection off the clock
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		invoke()
	}
	b.StopTimer()

	allocs := testing.AllocsPerRun(200, invoke)
	// Measured 20 allocs/op with pooled zero-copy server reads vs ~25
	// without (the server-side frame, body, object key, and context copies
	// return). The remainder is per-call bookkeeping — pending-call channel,
	// the escaping client-side reply and its frame, netsim datagram copies —
	// and the ceiling of 22 catches a regression that reintroduces
	// per-frame allocation on the server read path.
	if allocs > 22 {
		b.Fatalf("round trip allocates %.1f/op; pooled read path budget is 22", allocs)
	}
}

// BenchmarkGIOPReadPooled isolates the read path: one pre-encoded frame
// decoded repeatedly through the pooled reader. The assertion pins the
// zero-allocation steady state for the frame buffer itself (the message
// struct and its slice headers still allocate).
func BenchmarkGIOPReadPooled(b *testing.B) {
	frame := giop.Marshal(&giop.Request{
		RequestID:     1,
		ResponseFlags: giop.ResponseExpected,
		ObjectKey:     []byte("obj"),
		Operation:     "echo",
		Body:          make([]byte, 256),
	})
	src := &replayReader{frame: frame}
	r := giop.NewReader(src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, buf, err := r.ReadMessagePooled()
		if err != nil {
			b.Fatal(err)
		}
		if m.(*giop.Request).RequestID != 1 {
			b.Fatal("bad decode")
		}
		giop.ReleaseFrame(buf)
	}
}

// replayReader serves the same frame forever.
type replayReader struct {
	frame []byte
	off   int
}

func (r *replayReader) Read(p []byte) (int, error) {
	if r.off == len(r.frame) {
		r.off = 0
	}
	n := copy(p, r.frame[r.off:])
	r.off += n
	return n, nil
}
