package iiop

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/giop"
)

// silentConn models a TCP connection whose peer died without FIN/RST: writes
// are swallowed successfully and reads block until the local side closes.
type silentConn struct {
	closed    chan struct{}
	closeOnce sync.Once
}

func newSilentConn() *silentConn { return &silentConn{closed: make(chan struct{})} }

func (c *silentConn) Read(p []byte) (int, error) {
	<-c.closed
	return 0, net.ErrClosed
}

func (c *silentConn) Write(p []byte) (int, error) {
	select {
	case <-c.closed:
		return 0, net.ErrClosed
	default:
		return len(p), nil
	}
}

func (c *silentConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

func (c *silentConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *silentConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *silentConn) SetDeadline(t time.Time) error      { return nil }
func (c *silentConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *silentConn) SetWriteDeadline(t time.Time) error { return nil }

// TestFailConnWakesUnboundedWait reproduces the silently-dead-peer hang: an
// Invoke with no timeout blocks on a connection whose read loop will never
// observe an error. FailConn must wake the waiter and force the next Invoke
// to re-dial.
func TestFailConnWakesUnboundedWait(t *testing.T) {
	var dials atomic.Int32
	tr := NewTransport(func(host string, port uint16) (net.Conn, error) {
		dials.Add(1)
		return newSilentConn(), nil
	})
	defer tr.Close()

	cause := errors.New("peer declared dead by fault detector")
	done := make(chan error, 1)
	go func() {
		req := &giop.Request{
			RequestID:     tr.NextRequestID(),
			ResponseFlags: giop.ResponseExpected,
			Operation:     "ping",
		}
		_, err := tr.Invoke("dead-host", 4000, req, 0)
		done <- err
	}()

	// Let the invocation reach its unbounded wait, then declare the peer dead.
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("Invoke returned before FailConn: %v", err)
	default:
	}
	tr.FailConn("dead-host", 4000, cause)

	select {
	case err := <-done:
		if !errors.Is(err, cause) {
			t.Fatalf("Invoke error = %v, want the FailConn cause", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Invoke still blocked after FailConn — unbounded wait has no failure wakeup")
	}

	// The invalidated connection must not be reused.
	before := dials.Load()
	req := &giop.Request{
		RequestID:     tr.NextRequestID(),
		ResponseFlags: giop.ResponseExpected,
		Operation:     "ping",
	}
	if _, err := tr.Invoke("dead-host", 4000, req, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("post-FailConn Invoke error = %v, want timeout on fresh dead conn", err)
	}
	if dials.Load() != before+1 {
		t.Fatalf("dials = %d, want %d (FailConn should force a re-dial)", dials.Load(), before+1)
	}
}

// TestFailConnWakesBoundedWait covers the timed wait path: the connection
// failure must win over the (much later) deadline.
func TestFailConnWakesBoundedWait(t *testing.T) {
	tr := NewTransport(func(host string, port uint16) (net.Conn, error) {
		return newSilentConn(), nil
	})
	defer tr.Close()

	done := make(chan error, 1)
	go func() {
		req := &giop.Request{
			RequestID:     tr.NextRequestID(),
			ResponseFlags: giop.ResponseExpected,
			Operation:     "ping",
		}
		_, err := tr.Invoke("dead-host", 4000, req, time.Hour)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	tr.FailConn("dead-host", 4000, nil)
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Invoke error = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timed Invoke still blocked after FailConn")
	}
}
