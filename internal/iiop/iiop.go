// Package iiop implements the Internet Inter-ORB Protocol transport: GIOP
// messages carried over stream connections, with client-side connection
// caching and request/reply correlation, and a server-side dispatcher.
//
// The transport is deliberately independent of the fault tolerance layers
// above it: it moves GIOP messages between one client endpoint and one
// server endpoint, exactly like a plain ORB's IIOP engine. The interception
// approach (package interception) taps precisely this layer, which is how
// the Eternal system retrofitted fault tolerance under unmodified ORBs.
package iiop

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/giop"
)

// Errors returned by the transport.
var (
	ErrClosed   = errors.New("iiop: connection closed")
	ErrTimeout  = errors.New("iiop: request timed out")
	ErrShutdown = errors.New("iiop: transport shut down")
)

// Dialer opens a stream to host:port. The netsim fabric and net.Dial both
// satisfy it via small adapters.
type Dialer func(host string, port uint16) (net.Conn, error)

// Handler processes inbound requests on a server endpoint. Implementations
// must be safe for concurrent calls.
//
// Ownership: the request and every byte slice reachable from it (Body,
// ObjectKey, service context data) are backed by a pooled frame that is
// recycled after HandleRequest returns and the reply has been written. A
// handler that wants any of those bytes past that point must copy them; the
// reply it returns must not alias the request (building it with the cdr
// encoder or orb.BuildReply always copies).
type Handler interface {
	// HandleRequest services one request. For oneway requests (response
	// flags 0) the returned reply is discarded and may be nil.
	HandleRequest(req *giop.Request) *giop.Reply
	// HandleLocate answers object-location queries.
	HandleLocate(req *giop.LocateRequest) *giop.LocateReply
}

// --- Client side -----------------------------------------------------------

// Transport is a client-side connection manager: it caches one connection
// per destination and correlates replies to requests.
type Transport struct {
	dial Dialer

	mu     sync.Mutex
	conns  map[string]*clientConn
	nextID uint32
	closed bool
}

// NewTransport creates a client transport using dial.
func NewTransport(dial Dialer) *Transport {
	return &Transport{dial: dial, conns: make(map[string]*clientConn)}
}

// NextRequestID allocates a fresh GIOP request id.
func (t *Transport) NextRequestID() uint32 {
	return atomic.AddUint32(&t.nextID, 1)
}

type clientConn struct {
	conn net.Conn
	wmu  sync.Mutex
	w    *giop.Writer

	done chan struct{} // closed once the connection is declared dead

	mu      sync.Mutex
	pending map[uint32]chan *giop.Reply
	err     error
}

func (t *Transport) getConn(host string, port uint16) (*clientConn, error) {
	key := fmt.Sprintf("%s:%d", host, port)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrShutdown
	}
	if cc, ok := t.conns[key]; ok {
		t.mu.Unlock()
		return cc, nil
	}
	t.mu.Unlock()

	nc, err := t.dial(host, port)
	if err != nil {
		return nil, fmt.Errorf("iiop: dial %s: %w", key, err)
	}
	cc := &clientConn{
		conn:    nc,
		w:       giop.NewWriter(nc),
		done:    make(chan struct{}),
		pending: make(map[uint32]chan *giop.Reply),
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		nc.Close()
		return nil, ErrShutdown
	}
	if existing, ok := t.conns[key]; ok {
		// Lost the race; use the established connection.
		t.mu.Unlock()
		nc.Close()
		return existing, nil
	}
	t.conns[key] = cc
	t.mu.Unlock()

	go func() {
		readErr := cc.readLoop()
		cc.fail(readErr)
		t.mu.Lock()
		if t.conns[key] == cc {
			delete(t.conns, key)
		}
		t.mu.Unlock()
	}()
	return cc, nil
}

func (c *clientConn) readLoop() error {
	r := giop.NewReader(c.conn)
	for {
		m, err := r.ReadMessage()
		if err != nil {
			return err
		}
		switch v := m.(type) {
		case *giop.Reply:
			c.complete(v.RequestID, v)
		case *giop.LocateReply:
			// Locate replies are funneled through the same pending map via
			// the request id space.
			c.complete(v.RequestID, &giop.Reply{RequestID: v.RequestID, Status: v.Status, Body: v.Body})
		case *giop.CloseConnection:
			return ErrClosed
		default:
			// Requests arriving on a client connection indicate a peer bug;
			// report a protocol error and drop the connection.
			c.wmu.Lock()
			_ = c.w.WriteMessage(&giop.MessageError{})
			c.wmu.Unlock()
			return fmt.Errorf("iiop: unexpected %T on client connection", m)
		}
	}
}

func (c *clientConn) complete(id uint32, rep *giop.Reply) {
	c.mu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if ok {
		ch <- rep
	}
}

func (c *clientConn) fail(err error) {
	if err == nil {
		err = ErrClosed
	}
	c.mu.Lock()
	first := c.err == nil
	if first {
		c.err = err
	}
	pend := c.pending
	c.pending = make(map[uint32]chan *giop.Reply)
	c.mu.Unlock()
	if first {
		close(c.done)
	}
	for _, ch := range pend {
		close(ch)
	}
	c.conn.Close()
}

// deadErr returns the recorded failure cause (ErrClosed if none was set).
func (c *clientConn) deadErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrClosed
}

func (c *clientConn) register(id uint32) (chan *giop.Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	ch := make(chan *giop.Reply, 1)
	c.pending[id] = ch
	return ch, nil
}

func (c *clientConn) unregister(id uint32) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Invoke sends a request to host:port and waits for the reply (or timeout;
// zero means wait forever). Oneway requests return immediately with a nil
// reply.
func (t *Transport) Invoke(host string, port uint16, req *giop.Request, timeout time.Duration) (*giop.Reply, error) {
	cc, err := t.getConn(host, port)
	if err != nil {
		return nil, err
	}
	oneway := req.ResponseFlags == giop.ResponseNone
	var ch chan *giop.Reply
	if !oneway {
		if ch, err = cc.register(req.RequestID); err != nil {
			return nil, err
		}
	}

	cc.wmu.Lock()
	err = cc.w.WriteMessage(req)
	cc.wmu.Unlock()
	if err != nil {
		if !oneway {
			cc.unregister(req.RequestID)
		}
		cc.fail(err)
		return nil, fmt.Errorf("iiop: send: %w", err)
	}
	if oneway {
		return nil, nil
	}

	if timeout <= 0 {
		// Even an unbounded wait must have a connection-failure wakeup path:
		// over real TCP a peer can die without FIN/RST, leaving the read loop
		// blocked forever. FailConn (or Close) closes done and frees us.
		select {
		case rep, ok := <-ch:
			if !ok {
				return nil, cc.deadErr()
			}
			return rep, nil
		case <-cc.done:
			return cc.drainOrDead(ch, req.RequestID)
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case rep, ok := <-ch:
		if !ok {
			return nil, cc.deadErr()
		}
		return rep, nil
	case <-cc.done:
		return cc.drainOrDead(ch, req.RequestID)
	case <-timer.C:
		cc.unregister(req.RequestID)
		// Best-effort cancel so the server can drop the work.
		cc.wmu.Lock()
		_ = cc.w.WriteMessage(&giop.CancelRequest{RequestID: req.RequestID})
		cc.wmu.Unlock()
		return nil, ErrTimeout
	}
}

// drainOrDead resolves a wait that lost the race between a reply landing and
// the connection being declared dead: a reply already buffered (or a closed
// channel) wins, otherwise the failure cause is returned.
func (c *clientConn) drainOrDead(ch chan *giop.Reply, id uint32) (*giop.Reply, error) {
	select {
	case rep, ok := <-ch:
		if ok {
			return rep, nil
		}
	default:
	}
	c.unregister(id)
	return nil, c.deadErr()
}

// FailConn invalidates the cached connection to host:port: every invocation
// blocked on it — including unbounded waits — wakes with the given cause,
// and the next Invoke re-dials. This is the external recovery hook for
// silently dead peers: real TCP delivers no reader-side error when the
// remote host vanishes without FIN/RST, so the read loop alone can never
// notice. Fault detectors above the transport call this when they declare
// the endpoint dead. No-op if no connection is cached.
func (t *Transport) FailConn(host string, port uint16, cause error) {
	key := fmt.Sprintf("%s:%d", host, port)
	t.mu.Lock()
	cc, ok := t.conns[key]
	if ok {
		delete(t.conns, key)
	}
	t.mu.Unlock()
	if !ok {
		return
	}
	if cause == nil {
		cause = ErrClosed
	}
	cc.fail(cause)
}

// Close shuts down all cached connections.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := make([]*clientConn, 0, len(t.conns))
	for _, cc := range t.conns {
		conns = append(conns, cc)
	}
	t.conns = make(map[string]*clientConn)
	t.mu.Unlock()
	for _, cc := range conns {
		cc.wmu.Lock()
		_ = cc.w.WriteMessage(&giop.CloseConnection{})
		cc.wmu.Unlock()
		cc.fail(ErrShutdown)
	}
}

// --- Server side -----------------------------------------------------------

// Server accepts IIOP connections and dispatches requests to a Handler.
type Server struct {
	l       net.Listener
	handler Handler
	wg      sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer wraps an accepting listener. Call Serve to start.
func NewServer(l net.Listener, h Handler) *Server {
	return &Server{l: l, handler: h, conns: make(map[net.Conn]struct{})}
}

// Serve runs the accept loop in a background goroutine and returns.
func (s *Server) Serve() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := s.l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serveConn(conn)
		}
	}()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var wmu sync.Mutex
	w := giop.NewWriter(conn)
	r := giop.NewReader(conn)
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		// Requests read into pooled frames; each frame is recycled once its
		// request is fully served (see the Handler ownership contract).
		m, frame, err := r.ReadMessagePooled()
		if err != nil {
			return
		}
		switch v := m.(type) {
		case *giop.Request:
			reqWG.Add(1)
			go func(req *giop.Request, frame []byte) {
				defer reqWG.Done()
				defer giop.ReleaseFrame(frame)
				rep := s.handler.HandleRequest(req)
				if req.ResponseFlags == giop.ResponseNone || rep == nil {
					return
				}
				rep.RequestID = req.RequestID
				wmu.Lock()
				_ = w.WriteMessage(rep)
				wmu.Unlock()
			}(v, frame)
		case *giop.LocateRequest:
			rep := s.handler.HandleLocate(v)
			if rep == nil {
				rep = &giop.LocateReply{RequestID: v.RequestID, Status: giop.LocateUnknown}
			}
			rep.RequestID = v.RequestID
			wmu.Lock()
			_ = w.WriteMessage(rep)
			wmu.Unlock()
			giop.ReleaseFrame(frame)
		case *giop.CancelRequest:
			// Cancellation is advisory in GIOP; the handler may already be
			// running. Nothing to do in this implementation.
			giop.ReleaseFrame(frame)
		case *giop.CloseConnection:
			giop.ReleaseFrame(frame)
			return
		case *giop.MessageError:
			giop.ReleaseFrame(frame)
			return
		default:
			giop.ReleaseFrame(frame)
			wmu.Lock()
			_ = w.WriteMessage(&giop.MessageError{})
			wmu.Unlock()
			return
		}
	}
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.l.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.l.Addr() }
