package iiop

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/giop"
	"repro/internal/netsim"
)

// echoHandler replies with the request body uppercased, or sleeps on demand.
type echoHandler struct {
	delay time.Duration
}

func (h *echoHandler) HandleRequest(req *giop.Request) *giop.Reply {
	if h.delay > 0 {
		time.Sleep(h.delay)
	}
	return &giop.Reply{
		RequestID: req.RequestID,
		Status:    giop.ReplyNoException,
		Body:      bytes.ToUpper(req.Body),
	}
}

func (h *echoHandler) HandleLocate(req *giop.LocateRequest) *giop.LocateReply {
	status := giop.LocateUnknown
	if string(req.ObjectKey) == "known" {
		status = giop.LocateHere
	}
	return &giop.LocateReply{RequestID: req.RequestID, Status: status}
}

func newSimPair(t *testing.T, h Handler) (*Transport, func()) {
	t.Helper()
	f := netsim.NewFabric(netsim.Config{})
	f.AddNode("client")
	f.AddNode("server")
	l, err := f.Listen("server", 9999)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, h)
	srv.Serve()
	tr := NewTransport(func(host string, port uint16) (net.Conn, error) {
		return f.Dial("client", host, port)
	})
	return tr, func() { tr.Close(); srv.Close() }
}

func TestInvokeEcho(t *testing.T) {
	tr, cleanup := newSimPair(t, &echoHandler{})
	defer cleanup()
	req := &giop.Request{
		RequestID:     tr.NextRequestID(),
		ResponseFlags: giop.ResponseExpected,
		ObjectKey:     []byte("obj"),
		Operation:     "echo",
		Body:          []byte("hello"),
	}
	rep, err := tr.Invoke("server", 9999, req, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != giop.ReplyNoException || string(rep.Body) != "HELLO" {
		t.Fatalf("reply = %+v", rep)
	}
}

func TestConcurrentInvocationsShareConnection(t *testing.T) {
	tr, cleanup := newSimPair(t, &echoHandler{})
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf("msg-%d", i))
			req := &giop.Request{
				RequestID:     tr.NextRequestID(),
				ResponseFlags: giop.ResponseExpected,
				Operation:     "echo",
				Body:          body,
			}
			rep, err := tr.Invoke("server", 9999, req, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(rep.Body, bytes.ToUpper(body)) {
				errs <- fmt.Errorf("reply mismatch for %s: %s", body, rep.Body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestOnewayReturnsImmediately(t *testing.T) {
	tr, cleanup := newSimPair(t, &echoHandler{delay: 100 * time.Millisecond})
	defer cleanup()
	req := &giop.Request{
		RequestID:     tr.NextRequestID(),
		ResponseFlags: giop.ResponseNone,
		Operation:     "fire",
	}
	start := time.Now()
	rep, err := tr.Invoke("server", 9999, req, time.Second)
	if err != nil || rep != nil {
		t.Fatalf("oneway: rep=%v err=%v", rep, err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Error("oneway blocked on handler")
	}
}

func TestInvokeTimeout(t *testing.T) {
	tr, cleanup := newSimPair(t, &echoHandler{delay: 500 * time.Millisecond})
	defer cleanup()
	req := &giop.Request{
		RequestID:     tr.NextRequestID(),
		ResponseFlags: giop.ResponseExpected,
		Operation:     "slow",
	}
	if _, err := tr.Invoke("server", 9999, req, 20*time.Millisecond); err != ErrTimeout {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
}

func TestDialFailure(t *testing.T) {
	f := netsim.NewFabric(netsim.Config{})
	f.AddNode("client")
	tr := NewTransport(func(host string, port uint16) (net.Conn, error) {
		return f.Dial("client", host, port)
	})
	defer tr.Close()
	req := &giop.Request{RequestID: 1, ResponseFlags: giop.ResponseExpected}
	if _, err := tr.Invoke("ghost", 1, req, time.Second); err == nil {
		t.Fatal("want dial error")
	}
}

func TestConnectionBreakFailsPending(t *testing.T) {
	f := netsim.NewFabric(netsim.Config{})
	f.AddNode("client")
	f.AddNode("server")
	l, err := f.Listen("server", 9999)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, &echoHandler{delay: time.Second})
	srv.Serve()
	defer srv.Close()
	tr := NewTransport(func(host string, port uint16) (net.Conn, error) {
		return f.Dial("client", host, port)
	})
	defer tr.Close()

	done := make(chan error, 1)
	go func() {
		req := &giop.Request{RequestID: tr.NextRequestID(), ResponseFlags: giop.ResponseExpected, Operation: "x"}
		_, err := tr.Invoke("server", 9999, req, 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	f.CrashNode("server")
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pending invocation must fail when the server dies")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending invocation hung after server crash")
	}
}

func TestLocateRequest(t *testing.T) {
	f := netsim.NewFabric(netsim.Config{})
	f.AddNode("client")
	f.AddNode("server")
	l, _ := f.Listen("server", 9999)
	srv := NewServer(l, &echoHandler{})
	srv.Serve()
	defer srv.Close()

	// Drive the locate path with a raw connection (Transport funnels
	// LocateReply through the same pending map keyed by request id, so a
	// manual exchange keeps this test independent).
	conn, err := f.Dial("client", "server", 9999)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := giop.NewWriter(conn)
	r := giop.NewReader(conn)
	if err := w.WriteMessage(&giop.LocateRequest{RequestID: 7, ObjectKey: []byte("known")}); err != nil {
		t.Fatal(err)
	}
	m, err := r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	lr, ok := m.(*giop.LocateReply)
	if !ok || lr.RequestID != 7 || lr.Status != giop.LocateHere {
		t.Fatalf("got %T %+v", m, m)
	}
}

func TestTransportCloseRejectsFurtherUse(t *testing.T) {
	tr, cleanup := newSimPair(t, &echoHandler{})
	defer cleanup()
	tr.Close()
	req := &giop.Request{RequestID: 1, ResponseFlags: giop.ResponseExpected}
	if _, err := tr.Invoke("server", 9999, req, time.Second); err != ErrShutdown {
		t.Fatalf("got %v, want ErrShutdown", err)
	}
	tr.Close() // idempotent
}

func TestOverRealTCP(t *testing.T) {
	// The transport must also work over the operating system's TCP stack,
	// demonstrating the IIOP engine is substrate-independent.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	srv := NewServer(l, &echoHandler{})
	srv.Serve()
	defer srv.Close()

	tr := NewTransport(func(host string, port uint16) (net.Conn, error) {
		return net.Dial("tcp", l.Addr().String())
	})
	defer tr.Close()
	req := &giop.Request{
		RequestID:     tr.NextRequestID(),
		ResponseFlags: giop.ResponseExpected,
		Operation:     "echo",
		Body:          []byte("tcp"),
	}
	rep, err := tr.Invoke("ignored", 0, req, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Body) != "TCP" {
		t.Fatalf("got %q", rep.Body)
	}
}
