package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

func testLogs(t *testing.T) map[string]Log {
	t.Helper()
	fl, err := OpenFileLog(filepath.Join(t.TempDir(), "test.wal"))
	if err != nil {
		t.Fatal(err)
	}
	logs := map[string]Log{"mem": &MemLog{}, "file": fl}
	t.Cleanup(func() {
		for _, l := range logs {
			l.Close()
		}
	})
	return logs
}

func TestRecoverEmptyLog(t *testing.T) {
	for name, l := range testLogs(t) {
		cp, updates, ok, err := l.Recover()
		if err != nil || ok || len(updates) != 0 || cp.Kind != 0 {
			t.Errorf("%s: empty recover = %+v %v %v %v", name, cp, updates, ok, err)
		}
	}
}

func TestRecoverUpdatesOnly(t *testing.T) {
	for name, l := range testLogs(t) {
		for i := uint64(1); i <= 3; i++ {
			if err := l.Append(Record{Kind: KindUpdate, MsgID: i, Op: "inc", Data: []byte{byte(i)}}); err != nil {
				t.Fatal(err)
			}
		}
		_, updates, ok, err := l.Recover()
		if err != nil || ok {
			t.Fatalf("%s: %v ok=%v", name, err, ok)
		}
		if len(updates) != 3 || updates[2].MsgID != 3 {
			t.Errorf("%s: updates = %+v", name, updates)
		}
	}
}

func TestRecoverCheckpointAndSuffix(t *testing.T) {
	for name, l := range testLogs(t) {
		l.Append(Record{Kind: KindUpdate, MsgID: 1, Op: "a"})
		l.Append(Record{Kind: KindCheckpoint, MsgID: 2, Data: []byte("state-2")})
		l.Append(Record{Kind: KindUpdate, MsgID: 3, Op: "b", Data: []byte("x")})
		l.Append(Record{Kind: KindCheckpoint, MsgID: 4, Data: []byte("state-4")})
		l.Append(Record{Kind: KindUpdate, MsgID: 5, Op: "c"})
		l.Append(Record{Kind: KindUpdate, MsgID: 6, Op: "d"})

		cp, updates, ok, err := l.Recover()
		if err != nil || !ok {
			t.Fatalf("%s: %v ok=%v", name, err, ok)
		}
		if string(cp.Data) != "state-4" || cp.MsgID != 4 {
			t.Errorf("%s: cp = %+v", name, cp)
		}
		if len(updates) != 2 || updates[0].Op != "c" || updates[1].Op != "d" {
			t.Errorf("%s: updates = %+v", name, updates)
		}
	}
}

func TestTruncateAtCheckpoint(t *testing.T) {
	for name, l := range testLogs(t) {
		for i := uint64(1); i <= 10; i++ {
			kind := KindUpdate
			if i == 6 {
				kind = KindCheckpoint
			}
			l.Append(Record{Kind: kind, MsgID: i})
		}
		if err := l.TruncateAtCheckpoint(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if l.Len() != 5 { // checkpoint + 4 updates after it
			t.Errorf("%s: Len = %d, want 5", name, l.Len())
		}
		cp, updates, ok, _ := l.Recover()
		if !ok || cp.MsgID != 6 || len(updates) != 4 {
			t.Errorf("%s: post-truncate recover = %+v %d ok=%v", name, cp, len(updates), ok)
		}
	}
}

func TestAppendAfterClose(t *testing.T) {
	for name, l := range testLogs(t) {
		l.Close()
		if err := l.Append(Record{Kind: KindUpdate}); err != ErrClosed {
			t.Errorf("%s: got %v, want ErrClosed", name, err)
		}
	}
}

func TestFileLogPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.wal")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: KindCheckpoint, MsgID: 10, Data: []byte("snap")})
	l.Append(Record{Kind: KindUpdate, MsgID: 11, Op: "inc", Data: []byte{1}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	cp, updates, ok, err := l2.Recover()
	if err != nil || !ok {
		t.Fatalf("recover: %v ok=%v", err, ok)
	}
	if string(cp.Data) != "snap" || len(updates) != 1 || updates[0].Op != "inc" {
		t.Errorf("got %+v / %+v", cp, updates)
	}
}

func TestFileLogToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: KindCheckpoint, MsgID: 1, Data: []byte("ok")})
	l.Close()

	// Simulate a crash mid-append: write a length prefix with no body.
	f, err := openAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 50, 1, 2}) // claims 50 bytes, supplies 2
	f.Close()

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	cp, _, ok, _ := l2.Recover()
	if !ok || string(cp.Data) != "ok" {
		t.Errorf("torn tail corrupted earlier records: %+v ok=%v", cp, ok)
	}
}

// TestFileLogTruncatesTornTail injects corruption and verifies load()
// physically truncates the garbage: records appended after reopening a torn
// log must survive the NEXT reopen. (Before the fix, load() merely stopped
// reading, new appends landed after the garbage, and the torn record's
// length prefix swallowed them on the following recovery.)
func TestFileLogTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "truncate.wal")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: KindCheckpoint, MsgID: 1, Data: []byte("base")})
	l.Append(Record{Kind: KindUpdate, MsgID: 2, Op: "inc", Data: []byte{1}})
	l.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Crash mid-append: half a record followed by nothing.
	f, err := openAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 40, 0xDE, 0xAD}) // claims 40 bytes, supplies 2
	f.Close()

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	if l2.Len() != 2 {
		t.Fatalf("torn reopen Len = %d, want 2", l2.Len())
	}
	if err := l2.Append(Record{Kind: KindUpdate, MsgID: 3, Op: "inc", Data: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) <= len(intact) {
		t.Fatalf("append after torn reopen did not grow the file: %d <= %d", len(b), len(intact))
	}
	if string(b[:len(intact)]) != string(intact) {
		t.Fatalf("intact prefix damaged by truncation")
	}

	l3, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer l3.Close()
	cp, updates, ok, err := l3.Recover()
	if err != nil || !ok {
		t.Fatalf("recover: %v ok=%v", err, ok)
	}
	if string(cp.Data) != "base" || len(updates) != 2 || updates[1].MsgID != 3 {
		t.Errorf("post-truncation append lost: cp=%+v updates=%+v", cp, updates)
	}
}

// TestFileLogTruncatesCorruptTail covers the undecodable-body case (bit rot
// or a torn write that happens to frame correctly).
func TestFileLogTruncatesCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: KindCheckpoint, MsgID: 5, Data: []byte("snap")})
	l.Close()

	f, err := openAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 2, 0xFF, 0xFF}) // well-framed, bad record kind
	f.Close()

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("reopen corrupt: %v", err)
	}
	if l2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l2.Len())
	}
	l2.Append(Record{Kind: KindUpdate, MsgID: 6, Op: "inc"})
	l2.Close()

	l3, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	cp, updates, ok, _ := l3.Recover()
	if !ok || cp.MsgID != 5 || len(updates) != 1 || updates[0].MsgID != 6 {
		t.Errorf("recover after corrupt-tail truncation: cp=%+v updates=%+v ok=%v", cp, updates, ok)
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	f := func(kindBit bool, msgID uint64, op string, data []byte) bool {
		op = sanitize(op)
		kind := KindCheckpoint
		if kindBit {
			kind = KindUpdate
		}
		rec := Record{Kind: kind, MsgID: msgID, Op: op, Data: data}
		got, err := decodeRecord(encodeRecord(rec))
		if err != nil {
			return false
		}
		return got.Kind == rec.Kind && got.MsgID == rec.MsgID && got.Op == rec.Op &&
			string(got.Data) == string(rec.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRecoverEquivalenceQuick checks MemLog and FileLog recover identically
// for random record sequences.
func TestRecoverEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mem := &MemLog{}
		fl, err := OpenFileLog(filepath.Join(t.TempDir(), fmt.Sprintf("eq-%d.wal", seed&0xFFFF)))
		if err != nil {
			return false
		}
		defer fl.Close()
		n := r.Intn(20)
		for i := 0; i < n; i++ {
			rec := Record{Kind: KindUpdate, MsgID: uint64(i)}
			if r.Intn(4) == 0 {
				rec.Kind = KindCheckpoint
			}
			mem.Append(rec)
			fl.Append(rec)
		}
		c1, u1, ok1, _ := mem.Recover()
		c2, u2, ok2, _ := fl.Recover()
		if ok1 != ok2 || c1.MsgID != c2.MsgID || len(u1) != len(u2) {
			return false
		}
		for i := range u1 {
			if u1[i].MsgID != u2[i].MsgID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] == 0 {
			b[i] = '_'
		}
	}
	return string(b)
}
