// Package wal implements the logging-and-recovery mechanisms behind warm
// and cold passive replication: a log of state checkpoints interleaved with
// the update operations (or state deltas) applied since the last
// checkpoint.
//
// On failover, a backup recovers by loading the most recent checkpoint and
// replaying the updates logged after it; the checkpointing interval
// therefore trades steady-state cost against recovery time (experiment E6).
// Two implementations are provided: MemLog (what the infrastructure uses on
// the simulated nodes) and FileLog (a durable variant demonstrating the
// same record format on disk).
package wal

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"sync"

	"repro/internal/cdr"
)

// Kind distinguishes log record types.
type Kind uint8

// Record kinds.
const (
	KindCheckpoint Kind = iota + 1
	KindUpdate
)

// Record is one log entry.
type Record struct {
	Kind Kind
	// MsgID is the ordered message id of the invocation that produced this
	// record; recovery uses it to resume duplicate detection correctly.
	MsgID uint64
	// Op names the operation for update records (diagnostic).
	Op string
	// Data is the checkpointed state or the update payload.
	Data []byte
}

// Log is the interface shared by MemLog and FileLog.
type Log interface {
	// Append adds a record.
	Append(rec Record) error
	// Recover returns the most recent checkpoint record (zero Record and
	// false if none) and all update records appended after it, oldest
	// first.
	Recover() (cp Record, updates []Record, ok bool, err error)
	// Len returns the number of live records (since the last truncation).
	Len() int
	// TruncateAtCheckpoint drops every record before the most recent
	// checkpoint (log compaction after a successful checkpoint broadcast).
	TruncateAtCheckpoint() error
	// Close releases resources.
	Close() error
}

// ErrClosed is returned when appending to a closed log.
var ErrClosed = errors.New("wal: log closed")

// --- MemLog ----------------------------------------------------------------

// MemLog is an in-memory log. The zero value is ready to use.
type MemLog struct {
	mu     sync.Mutex
	recs   []Record
	closed bool
}

var _ Log = (*MemLog)(nil)

// Append adds a record.
func (l *MemLog) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	rec.Data = append([]byte(nil), rec.Data...)
	l.recs = append(l.recs, rec)
	return nil
}

// Recover returns the latest checkpoint and subsequent updates.
func (l *MemLog) Recover() (Record, []Record, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return recoverFrom(l.recs)
}

// Len returns the number of retained records.
func (l *MemLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// TruncateAtCheckpoint drops records preceding the latest checkpoint.
func (l *MemLog) TruncateAtCheckpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := latestCheckpoint(l.recs)
	if idx > 0 {
		l.recs = append([]Record(nil), l.recs[idx:]...)
	}
	return nil
}

// Close marks the log closed.
func (l *MemLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

func latestCheckpoint(recs []Record) int {
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Kind == KindCheckpoint {
			return i
		}
	}
	return -1
}

func recoverFrom(recs []Record) (Record, []Record, bool, error) {
	idx := latestCheckpoint(recs)
	if idx < 0 {
		updates := append([]Record(nil), recs...)
		return Record{}, updates, false, nil
	}
	updates := append([]Record(nil), recs[idx+1:]...)
	return recs[idx], updates, true, nil
}

// --- FileLog ---------------------------------------------------------------

// FileLog is a durable log of length-prefixed CDR records.
type FileLog struct {
	mu     sync.Mutex
	f      *os.File
	recs   []Record // index kept in memory; file is the durable copy
	closed bool
}

var _ Log = (*FileLog)(nil)

// OpenFileLog opens (or creates) a file-backed log, loading any existing
// records.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &FileLog{f: f}
	if err := l.load(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

func (l *FileLog) load() error {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	// good tracks the end of the last intact record. A torn or corrupt tail
	// (crash mid-append) is truncated away rather than merely skipped:
	// leaving the garbage in place would let the next Append land after it,
	// and the torn record's length prefix would then swallow those bytes on
	// the following recovery — silently losing every later record.
	var good int64
	torn := false
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(l.f, lenBuf[:]); err != nil {
			if err == io.EOF {
				break
			}
			if err == io.ErrUnexpectedEOF {
				torn = true // torn length prefix
				break
			}
			return fmt.Errorf("wal: read length: %w", err)
		}
		n := uint32(lenBuf[0])<<24 | uint32(lenBuf[1])<<16 | uint32(lenBuf[2])<<8 | uint32(lenBuf[3])
		body := make([]byte, n)
		if _, err := io.ReadFull(l.f, body); err != nil {
			torn = true // torn body
			break
		}
		rec, err := decodeRecord(body)
		if err != nil {
			torn = true // corrupt tail
			break
		}
		l.recs = append(l.recs, rec)
		good += int64(4 + n)
	}
	if torn {
		log.Printf("wal: %s: torn record at offset %d; truncating tail", l.f.Name(), good)
		if err := l.f.Truncate(good); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if _, err := l.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	return nil
}

func encodeRecord(rec Record) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(byte(rec.Kind))
	e.WriteULongLong(rec.MsgID)
	e.WriteString(rec.Op)
	e.WriteOctetSeq(rec.Data)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func decodeRecord(b []byte) (Record, error) {
	var rec Record
	d := cdr.NewDecoder(b, cdr.BigEndian)
	k, err := d.ReadOctet()
	if err != nil {
		return rec, err
	}
	rec.Kind = Kind(k)
	if rec.Kind != KindCheckpoint && rec.Kind != KindUpdate {
		return rec, fmt.Errorf("wal: bad record kind %d", k)
	}
	if rec.MsgID, err = d.ReadULongLong(); err != nil {
		return rec, err
	}
	if rec.Op, err = d.ReadString(); err != nil {
		return rec, err
	}
	if rec.Data, err = d.ReadOctetSeq(); err != nil {
		return rec, err
	}
	return rec, nil
}

// Append adds and persists a record.
func (l *FileLog) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	body := encodeRecord(rec)
	frame := make([]byte, 4+len(body))
	frame[0] = byte(len(body) >> 24)
	frame[1] = byte(len(body) >> 16)
	frame[2] = byte(len(body) >> 8)
	frame[3] = byte(len(body))
	copy(frame[4:], body)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	// Checkpoints are the recovery anchor: everything before one is about to
	// be compacted away, so it must actually be on disk before that happens.
	// Update records stay buffered (synced on Close) — losing a torn tail of
	// updates costs replay work, losing a checkpoint costs the whole state.
	if rec.Kind == KindCheckpoint {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync checkpoint: %w", err)
		}
	}
	rec.Data = append([]byte(nil), rec.Data...)
	l.recs = append(l.recs, rec)
	return nil
}

// Recover returns the latest checkpoint and subsequent updates.
func (l *FileLog) Recover() (Record, []Record, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return recoverFrom(l.recs)
}

// Len returns the number of retained records.
func (l *FileLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// TruncateAtCheckpoint compacts the log file to start at the most recent
// checkpoint.
func (l *FileLog) TruncateAtCheckpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := latestCheckpoint(l.recs)
	if idx <= 0 {
		return nil
	}
	kept := append([]Record(nil), l.recs[idx:]...)
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	l.recs = nil
	for _, rec := range kept {
		body := encodeRecord(rec)
		frame := make([]byte, 4+len(body))
		frame[0] = byte(len(body) >> 24)
		frame[1] = byte(len(body) >> 16)
		frame[2] = byte(len(body) >> 8)
		frame[3] = byte(len(body))
		copy(frame[4:], body)
		if _, err := l.f.Write(frame); err != nil {
			return fmt.Errorf("wal: rewrite: %w", err)
		}
		l.recs = append(l.recs, rec)
	}
	// The rewrite replaced the whole file; sync so a crash right after
	// compaction can't lose the surviving checkpoint.
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync compaction: %w", err)
	}
	return nil
}

// Close syncs and closes the file.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: sync: %w", err)
	}
	return l.f.Close()
}
