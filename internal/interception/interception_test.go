package interception_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/ftcorba"
	"repro/internal/giop"
	"repro/internal/interception"
	"repro/internal/orb"
	"repro/internal/replication"
)

// register is a replicated servant with one slot.
type register struct {
	mu sync.Mutex
	v  int64
}

func (r *register) RepoID() string { return "IDL:repro/Register:1.0" }

func (r *register) Dispatch(inv *orb.Invocation) ([]cdr.Value, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch inv.Operation {
	case "set":
		r.v = int64(inv.Args[0].AsLong())
		return nil, nil
	case "get":
		return []cdr.Value{cdr.LongLong(r.v)}, nil
	case "boom":
		return nil, &orb.UserException{Name: "IDL:repro/Boom:1.0"}
	}
	return nil, giop.SystemException{RepoID: giop.ExcBadOperation, Completed: giop.CompletedNo}
}

func (r *register) GetState() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(r.v)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (r *register) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	v, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.v = v
	r.mu.Unlock()
	return nil
}

const regType = "IDL:repro/Register:1.0"

func setup(t *testing.T) (*core.Domain, uint64, *interception.Bridge) {
	t.Helper()
	d, err := core.NewDomain(core.Options{
		Nodes:     []string{"n1", "n2", "n3", "client"},
		Heartbeat: 4 * time.Millisecond,
		ORBPort:   7000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterFactory(regType, func() orb.Servant { return &register{} }, "n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	_, gid, err := d.Create("reg", regType, &ftcorba.Properties{
		ReplicationStyle:      replication.Active,
		InitialNumberReplicas: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WaitGroupReady(gid, 3, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Attach the interception point on the client's node: the unmodified
	// client ORB will talk plain IIOP to it.
	bridge, err := interception.Attach(d.Fabric, "client", 7100, d.Node("client").Engine)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bridge.Close)
	return d, gid, bridge
}

func TestTransparentReplicatedInvocation(t *testing.T) {
	d, gid, bridge := setup(t)
	// The legacy client: a plain ORB invocation on what looks like an
	// ordinary singleton object.
	legacyRef := bridge.RefFor(regType, gid)
	if legacyRef.IsGroup() {
		t.Fatal("interception ref must look like a plain object")
	}
	client := d.Node("client").ORB.Proxy(legacyRef)

	if _, err := client.Invoke("set", cdr.Long(41)); err != nil {
		t.Fatalf("set: %v", err)
	}
	out, err := client.Invoke("get")
	if err != nil || out[0].AsLongLong() != 41 {
		t.Fatalf("get: %v %v", out, err)
	}
}

func TestInterceptionSurvivesReplicaCrash(t *testing.T) {
	d, gid, bridge := setup(t)
	client := d.Node("client").ORB.Proxy(bridge.RefFor(regType, gid))
	if _, err := client.Invoke("set", cdr.Long(7)); err != nil {
		t.Fatal(err)
	}
	members, _ := d.RM.Members(gid)
	d.CrashNode(members[0])
	out, err := client.Invoke("get")
	if err != nil || out[0].AsLongLong() != 7 {
		t.Fatalf("post-crash get through interceptor: %v %v", out, err)
	}
}

func TestUserExceptionPassesThrough(t *testing.T) {
	d, gid, bridge := setup(t)
	client := d.Node("client").ORB.Proxy(bridge.RefFor(regType, gid))
	_, err := client.Invoke("boom")
	var uexc *orb.UserException
	if !errors.As(err, &uexc) || uexc.Name != "IDL:repro/Boom:1.0" {
		t.Fatalf("got %v", err)
	}
}

func TestIsAliveAndLocate(t *testing.T) {
	d, gid, bridge := setup(t)
	client := d.Node("client").ORB.Proxy(bridge.RefFor(regType, gid))
	if err := client.IsAlive(); err != nil {
		t.Fatalf("IsAlive: %v", err)
	}
}

func TestForeignObjectKeyRejected(t *testing.T) {
	d, _, bridge := setup(t)
	_ = bridge
	badRef := bridge.RefFor(regType, 0)
	// Overwrite the key with something that is not an intercepted group.
	badRef.Profiles[0].ObjectKey = []byte("not-a-group")
	client := d.Node("client").ORB.Proxy(badRef)
	_, err := client.Invoke("get")
	var sysExc giop.SystemException
	if !errors.As(err, &sysExc) || sysExc.RepoID != giop.ExcObjectNotExist {
		t.Fatalf("got %v", err)
	}
}

func TestOnewayThroughInterceptor(t *testing.T) {
	d, gid, bridge := setup(t)
	client := d.Node("client").ORB.Proxy(bridge.RefFor(regType, gid))
	if err := client.InvokeOneway("set", cdr.Long(9)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		out, err := client.Invoke("get")
		if err == nil && out[0].AsLongLong() == 9 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("oneway set never applied: %v %v", out, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
