// Package interception implements the Eternal-style *interception
// approach* to fault-tolerant CORBA: an unmodified client-side ORB issues
// plain IIOP requests, which are captured below the ORB and redirected
// through the group communication engine.
//
// The original system interposed on the socket library (library
// interpositioning under the ORB); the equivalent capture point here is a
// local IIOP endpoint owned by the interceptor. A client ORB is handed a
// normal IOR whose profile points at the interceptor; every GIOP Request
// it sends is decoded, mapped to the object group named by its object key
// ("og/<gid>"), invoked through the replication engine's totally ordered
// multicast, and answered with a plain GIOP Reply. The client ORB remains
// completely unaware of replication — the defining property (and the
// central lesson about its limits: nondeterminism inside the client cannot
// be intercepted here).
package interception

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/giop"
	"repro/internal/iiop"
	"repro/internal/ior"
	"repro/internal/netsim"
	"repro/internal/orb"
	"repro/internal/replication"
)

// Bridge is one node's interception point.
type Bridge struct {
	node   string
	port   uint16
	engine *replication.Engine
	server *iiop.Server
}

// Attach binds an interception endpoint on the node. IORs minted with
// RefFor route unmodified ORB traffic through it.
func Attach(fabric *netsim.Fabric, node string, port uint16, engine *replication.Engine) (*Bridge, error) {
	l, err := fabric.Listen(node, port)
	if err != nil {
		return nil, fmt.Errorf("interception: listen: %w", err)
	}
	b := &Bridge{node: node, port: port, engine: engine}
	b.server = iiop.NewServer(l, (*bridgeHandler)(b))
	b.server.Serve()
	return b, nil
}

// Close detaches the interception point.
func (b *Bridge) Close() { b.server.Close() }

// RefFor mints the plain (non-group) IOR a legacy client is given: it
// looks like an ordinary object but its profile addresses the interceptor.
func (b *Bridge) RefFor(typeID string, gid uint64) *ior.Ref {
	return ior.New(typeID, b.node, b.port, []byte(objectKeyFor(gid)))
}

func objectKeyFor(gid uint64) string { return fmt.Sprintf("og/%d", gid) }

// parseObjectKey extracts the group id from an intercepted object key.
func parseObjectKey(key []byte) (uint64, error) {
	s := string(key)
	if !strings.HasPrefix(s, "og/") {
		return 0, fmt.Errorf("interception: foreign object key %q", s)
	}
	gid, err := strconv.ParseUint(s[len("og/"):], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("interception: bad group id in key %q", s)
	}
	return gid, nil
}

type bridgeHandler Bridge

func (h *bridgeHandler) HandleRequest(req *giop.Request) *giop.Reply {
	gid, err := parseObjectKey(req.ObjectKey)
	if err != nil {
		return &giop.Reply{
			RequestID: req.RequestID,
			Status:    giop.ReplySystemException,
			Body: giop.SystemException{
				RepoID:    giop.ExcObjectNotExist,
				Minor:     2,
				Completed: giop.CompletedNo,
			}.Encode(),
		}
	}
	if req.Operation == "_is_alive" {
		return orb.BuildReply(req.RequestID, nil, nil)
	}
	args, err := orb.DecodeRequestBody(req.Body)
	if err != nil {
		return orb.BuildReply(req.RequestID, nil, giop.SystemException{
			RepoID:    giop.ExcInternal,
			Minor:     3,
			Completed: giop.CompletedNo,
		})
	}
	proxy := h.engine.Proxy(replication.GroupRef{ID: gid})
	if req.ResponseFlags == giop.ResponseNone {
		_ = proxy.InvokeOneway(req.Operation, args...)
		return nil
	}
	results, err := proxy.Invoke(req.Operation, args...)
	if err != nil && !isApplicationError(err) {
		// Infrastructure failure: surface as COMM_FAILURE so a legacy
		// client applies its usual retry logic.
		return orb.BuildReply(req.RequestID, nil, giop.SystemException{
			RepoID:    giop.ExcCommFailure,
			Minor:     4,
			Completed: giop.CompletedMaybe,
		})
	}
	return orb.BuildReply(req.RequestID, results, err)
}

// isApplicationError distinguishes outcomes that must flow to the client
// unchanged (user and system exceptions raised by the servant).
func isApplicationError(err error) bool {
	switch err.(type) {
	case *orb.UserException, giop.SystemException:
		return true
	}
	return false
}

func (h *bridgeHandler) HandleLocate(req *giop.LocateRequest) *giop.LocateReply {
	status := giop.LocateUnknown
	if _, err := parseObjectKey(req.ObjectKey); err == nil {
		status = giop.LocateHere
	}
	return &giop.LocateReply{RequestID: req.RequestID, Status: status}
}
