package totem

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestDataBatchRoundTrip exercises the coalesced-frame codec: many
// sub-messages with mixed groups and sizes (including empty payloads) must
// survive an encode/decode cycle bit for bit.
func TestDataBatchRoundTrip(t *testing.T) {
	in := &dataBatch{
		Ring:     RingID{Epoch: 3, Coord: "n2"},
		Sender:   "n2",
		FirstSeq: 41,
		Groups:   []string{"g", "og/7", "", "g", "big"},
		Payloads: [][]byte{
			[]byte("alpha"),
			[]byte{0, 1, 2, 3, 255},
			nil,
			[]byte("delta"),
			bytes.Repeat([]byte{0xAB}, 8192),
		},
	}
	got, err := decodePacket(mustEncodePacket(t, in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	out, ok := got.(*dataBatch)
	if !ok {
		t.Fatalf("decoded %T, want *dataBatch", got)
	}
	if out.Ring != in.Ring || out.Sender != in.Sender || out.FirstSeq != in.FirstSeq {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if len(out.Groups) != len(in.Groups) || len(out.Payloads) != len(in.Payloads) {
		t.Fatalf("count mismatch: %d/%d groups, %d/%d payloads",
			len(out.Groups), len(in.Groups), len(out.Payloads), len(in.Payloads))
	}
	for i := range in.Groups {
		if out.Groups[i] != in.Groups[i] {
			t.Errorf("group %d: %q vs %q", i, out.Groups[i], in.Groups[i])
		}
		if !bytes.Equal(out.Payloads[i], in.Payloads[i]) {
			t.Errorf("payload %d mismatch (%d vs %d bytes)", i, len(out.Payloads[i]), len(in.Payloads[i]))
		}
	}
}

// burstAndVerify fires bursts from every node without pacing (so sendQ
// batches build up and coalesced frames are emitted), waits for total
// delivery everywhere, and checks the per-node sequences are identical.
func burstAndVerify(t *testing.T, c *cluster, perNode int) {
	t.Helper()
	for _, n := range c.nodes {
		n := n
		go func() {
			for i := 0; i < perNode; i++ {
				c.rings[n].Multicast("g", []byte(fmt.Sprintf("%s-%d", n, i)))
			}
		}()
	}
	total := perNode * len(c.nodes)
	waitFor(t, 10*time.Second, "all deliveries", func() bool {
		for _, n := range c.nodes {
			if c.collect[n].deliverCount() < total {
				return false
			}
		}
		return true
	})
	ref := c.collect[c.nodes[0]].deliverSnapshot()[:total]
	for _, n := range c.nodes[1:] {
		got := c.collect[n].deliverSnapshot()[:total]
		for i := range ref {
			if got[i].MsgID != ref[i].MsgID || got[i].Seq != ref[i].Seq ||
				!bytes.Equal(got[i].Payload, ref[i].Payload) {
				t.Fatalf("%s diverges at %d: %+v vs %+v", n, i, got[i], ref[i])
			}
		}
	}
	// Every burst message must arrive exactly once per node, in strictly
	// increasing MsgID order. Raw seq contiguity is deliberately NOT
	// asserted: a loss-heavy run can reform the ring mid-burst, and the
	// group re-announcement control traffic on the new ring consumes
	// sequence numbers between app deliveries.
	for _, n := range c.nodes {
		ds := c.collect[n].deliverSnapshot()
		for i := 1; i < len(ds); i++ {
			if ds[i].MsgID <= ds[i-1].MsgID {
				t.Fatalf("%s: MsgID not increasing at %d: %d then %d", n, i, ds[i-1].MsgID, ds[i].MsgID)
			}
		}
		seen := make(map[string]int, len(ds))
		for _, d := range ds {
			seen[string(d.Payload)]++
		}
		for _, from := range c.nodes {
			for i := 0; i < perNode; i++ {
				key := fmt.Sprintf("%s-%d", from, i)
				if seen[key] != 1 {
					t.Fatalf("%s: delivered %q %d times", n, key, seen[key])
				}
			}
		}
	}
}

// TestCoalescedDeliveryOrder checks that bursty traffic — which the sender
// packs into multi-message frames — still delivers in one identical total
// order with contiguous sequence numbers at every node, and that coalesced
// frames were actually used.
func TestCoalescedDeliveryOrder(t *testing.T) {
	c := newCluster(t, netsim.Config{Latency: 50 * time.Microsecond}, 3)
	for _, n := range c.nodes {
		if err := c.rings[n].JoinGroup("g"); err != nil {
			t.Fatal(err)
		}
	}
	c.startAll()
	c.waitStableRing(3*time.Second, c.nodes)
	burstAndVerify(t, c, 80)

	var batches uint64
	for _, n := range c.nodes {
		batches += c.rings[n].Stats().Batches
	}
	if batches == 0 {
		t.Fatal("no coalesced frames emitted; bursts should batch")
	}
}

// TestMixedCoalescingInterop runs a ring where one node is configured with
// NoCoalesce (an "old" node emitting only per-message data packets) next to
// coalescing peers. Every node must still decode everything and agree on
// the total order — the compatibility story for rolling upgrades.
func TestMixedCoalescingInterop(t *testing.T) {
	c := &cluster{
		t:       t,
		fabric:  netsim.NewFabric(netsim.Config{Latency: 50 * time.Microsecond}),
		rings:   make(map[string]*Ring),
		collect: make(map[string]*collector),
		nodes:   []string{"n1", "n2", "n3"},
	}
	for _, node := range c.nodes {
		c.fabric.AddNode(node)
	}
	for _, node := range c.nodes {
		cfg := testConfig(node, c.nodes)
		if node == "n2" {
			cfg.NoCoalesce = true // the legacy sender
		}
		r, err := NewRing(c.fabric, cfg)
		if err != nil {
			t.Fatalf("NewRing(%s): %v", node, err)
		}
		c.rings[node] = r
		c.collect[node] = collect(r)
	}
	t.Cleanup(func() {
		for _, r := range c.rings {
			r.Stop()
		}
	})
	for _, n := range c.nodes {
		if err := c.rings[n].JoinGroup("g"); err != nil {
			t.Fatal(err)
		}
	}
	c.startAll()
	c.waitStableRing(3*time.Second, c.nodes)
	burstAndVerify(t, c, 60)

	if got := c.rings["n2"].Stats().Batches; got != 0 {
		t.Fatalf("NoCoalesce node emitted %d batch frames", got)
	}
}

// TestCoalescedRetransmission drops a significant fraction of datagrams —
// including whole coalesced frames — and checks that every sub-message is
// recovered. Retransmissions are served per sequence number as single data
// packets from the message log, so losing one frame must never lose the
// batch.
func TestCoalescedRetransmission(t *testing.T) {
	c := newCluster(t, netsim.Config{Loss: 0.15, Seed: 7}, 3)
	for _, n := range c.nodes {
		if err := c.rings[n].JoinGroup("g"); err != nil {
			t.Fatal(err)
		}
	}
	c.startAll()
	c.waitStableRing(5*time.Second, c.nodes)
	burstAndVerify(t, c, 40)
}

// TestSingletonFastPath checks the ring-of-one shortcut: messages
// multicast on a singleton ring self-deliver in order without waiting for
// the idle-token rotation, so a tight request/reply loop stays live.
func TestSingletonFastPath(t *testing.T) {
	c := newCluster(t, netsim.Config{}, 1)
	if err := c.rings["n1"].JoinGroup("solo"); err != nil {
		t.Fatal(err)
	}
	c.startAll()
	c.waitStableRing(3*time.Second, c.nodes)

	const rounds = 100
	for i := 0; i < rounds; i++ {
		if err := c.rings["n1"].Multicast("solo", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
		want := i + 1
		waitFor(t, 2*time.Second, fmt.Sprintf("delivery %d", want), func() bool {
			return c.collect["n1"].deliverCount() >= want
		})
	}
	ds := c.collect["n1"].deliverSnapshot()
	for i := 0; i < rounds; i++ {
		if string(ds[i].Payload) != fmt.Sprintf("m%d", i) {
			t.Fatalf("delivery %d = %q", i, ds[i].Payload)
		}
	}
}
