package totem

import "sync"

// Event is delivered to the application layer in a single total order per
// ring (and, across rings, in local delivery order). The concrete types are
// Deliver, ViewChange, and GroupView.
type Event interface{ isEvent() }

// Deliver carries one totally ordered multicast message.
type Deliver struct {
	// MsgID is a system-wide unique, totally ordered message identifier:
	// the ring epoch in the high bits and the on-ring sequence number in
	// the low bits. Eternal-style operation identifiers are built from it.
	MsgID uint64
	// Ring identifies the ring that ordered the message.
	Ring RingID
	// Seq is the on-ring sequence number (contiguous from 1 per ring).
	Seq uint64
	// Group is the destination process group.
	Group string
	// Sender is the node that multicast the message.
	Sender string
	// Payload is the application payload.
	Payload []byte
}

func (Deliver) isEvent() {}

// ViewChange announces a new ring membership, totally ordered with respect
// to message delivery (extended virtual synchrony: members coming from the
// same previous ring deliver the same messages before the same view).
type ViewChange struct {
	Ring    RingID
	Members []string
}

func (ViewChange) isEvent() {}

// GroupView announces the membership of one process group, emitted whenever
// it changes (join/leave messages or ring view changes). All group members
// observe the same GroupView at the same point in the delivery order.
type GroupView struct {
	Ring    RingID
	Group   string
	Members []string
}

func (GroupView) isEvent() {}

// MsgIDFor composes the system-wide message identifier from a ring epoch
// and an on-ring sequence number. Epochs are bounded well below 2^24 in any
// realistic run, and on-ring sequence numbers below 2^40.
func MsgIDFor(epoch, seq uint64) uint64 { return epoch<<40 | (seq & (1<<40 - 1)) }

// eventQueue is an unbounded FIFO decoupling the protocol goroutine from
// the application consumer: the protocol must never block on a slow
// consumer, or token circulation would stall and trigger spurious
// membership changes.
type eventQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Event
	closed bool
}

func newEventQueue() *eventQueue {
	q := &eventQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *eventQueue) push(ev Event) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, ev)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// pop blocks until an event is available or the queue is closed.
func (q *eventQueue) pop() (Event, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	ev := q.items[0]
	q.items = q.items[1:]
	return ev, true
}

func (q *eventQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
