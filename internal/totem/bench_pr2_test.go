package totem

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// BenchmarkPR2EncodeData measures marshalling one ordered data packet —
// the per-message cost the coalesced frame amortizes.
func BenchmarkPR2EncodeData(b *testing.B) {
	d := &data{
		Ring:    RingID{Epoch: 3, Coord: "n1"},
		Seq:     42,
		Group:   "og/7",
		Sender:  "n2",
		Payload: make([]byte, 256),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := mustEncodePacket(b, d)
		if len(raw) == 0 {
			b.Fatal("empty packet")
		}
	}
}

// BenchmarkPR2PacketRoundTrip measures encode+decode of a data packet.
func BenchmarkPR2PacketRoundTrip(b *testing.B) {
	d := &data{
		Ring:    RingID{Epoch: 3, Coord: "n1"},
		Seq:     42,
		Group:   "og/7",
		Sender:  "n2",
		Payload: make([]byte, 256),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodePacket(mustEncodePacket(b, d)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeOwnedAllocBudget pins the receive-path allocation win that
// PR 7's owned-frame decode bought: once recvLoop hands decodePacketOwned
// a buffer it owns, a 16-message coalesced batch must decode with the
// sub-message payloads and group names aliasing that buffer — a handful
// of fixed allocations (packet struct, slice headers, decoder) rather
// than one copy per sub-message. A regression that re-introduces
// per-payload copies roughly doubles the count and fails here.
func TestDecodeOwnedAllocBudget(t *testing.T) {
	const batch = 16
	db := &dataBatch{
		Ring:     RingID{Epoch: 3, Coord: "n1"},
		Sender:   "n2",
		FirstSeq: 42,
	}
	for i := 0; i < batch; i++ {
		db.Groups = append(db.Groups, "og/7")
		db.Payloads = append(db.Payloads, make([]byte, 256))
	}
	raw := mustEncodePacket(t, db)

	owned := testing.AllocsPerRun(200, func() {
		if _, err := decodePacketOwned(raw); err != nil {
			t.Fatal(err)
		}
	})
	// Fixed costs only: packet struct, decoder, interned-group slice
	// header, payload slice-of-slices header. 8 leaves slack for
	// compiler-version drift without admitting per-message copies
	// (which would add ≥2·batch = 32).
	if owned > 8 {
		t.Fatalf("decodePacketOwned of a %d-message batch: %.0f allocs/op, want ≤ 8", batch, owned)
	}

	// The copying decode (shared-buffer contract) is the upper bound the
	// owned path must stay well under.
	copying := testing.AllocsPerRun(200, func() {
		if _, err := decodePacket(raw); err != nil {
			t.Fatal(err)
		}
	})
	if owned >= copying {
		t.Fatalf("owned decode (%.0f allocs) not cheaper than copying decode (%.0f)", owned, copying)
	}
}

// BenchmarkPR2MulticastBurst drives a 3-node ring with bursts of 16
// queued messages and waits for local delivery of each burst. Coalescing
// packs each burst into far fewer fabric datagrams, so this tracks the
// token-visit amortization directly.
func BenchmarkPR2MulticastBurst(b *testing.B) {
	const burst = 16
	fabric := netsim.NewFabric(netsim.Config{})
	nodes := []string{"a", "b", "c"}
	for _, n := range nodes {
		fabric.AddNode(n)
	}
	var rings []*Ring
	for _, n := range nodes {
		r, err := NewRing(fabric, Config{
			Node: n, Universe: nodes, Port: 4000,
			HeartbeatInterval: 3 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		r.Start()
		rings = append(rings, r)
	}
	b.Cleanup(func() {
		for _, r := range rings {
			r.Stop()
		}
	})
	sender := rings[0]
	if err := sender.JoinGroup("g"); err != nil {
		b.Fatal(err)
	}
	deliver := make(chan struct{}, 4096)
	go func() {
		for ev := range sender.Events() {
			if _, ok := ev.(Deliver); ok {
				deliver <- struct{}{}
			}
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, m := sender.CurrentRing(); len(m) == 3 {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("ring never formed")
		}
		time.Sleep(time.Millisecond)
	}
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			if err := sender.Multicast("g", payload); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < burst; j++ {
			<-deliver
		}
	}
}

// BenchmarkPR2SingletonMulticast measures a ring of one: with the
// fast path it should self-deliver without waiting out token pacing.
func BenchmarkPR2SingletonMulticast(b *testing.B) {
	fabric := netsim.NewFabric(netsim.Config{})
	fabric.AddNode("solo")
	r, err := NewRing(fabric, Config{
		Node: "solo", Universe: []string{"solo"}, Port: 4000,
		HeartbeatInterval: 3 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	r.Start()
	b.Cleanup(r.Stop)
	if err := r.JoinGroup("g"); err != nil {
		b.Fatal(err)
	}
	deliver := make(chan struct{}, 1024)
	go func() {
		for ev := range r.Events() {
			if _, ok := ev.(Deliver); ok {
				deliver <- struct{}{}
			}
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, m := r.CurrentRing(); len(m) == 1 {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("ring never formed")
		}
		time.Sleep(time.Millisecond)
	}
	// Drain the join-control delivery if promiscuity ever surfaces it.
	for len(deliver) > 0 {
		<-deliver
	}
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Multicast("g", payload); err != nil {
			b.Fatal(err)
		}
		<-deliver
	}
}
