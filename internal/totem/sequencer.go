package totem

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cdr"
	"repro/internal/transport"
)

// Sequencer is the classic fixed-sequencer total-order baseline used for
// the group-communication ablation (experiment T1): senders unicast to a
// designated sequencer node (the lexicographically smallest member), which
// stamps a global sequence number and rebroadcasts. Membership is static
// and there is no fault tolerance — it exists to quantify what the ring
// protocol's token pass costs and buys.
type Sequencer struct {
	node    string
	members []string
	port    transport.Port
	portNum uint16
	isSeq   bool

	mu        sync.Mutex
	stopped   bool
	delivered uint64
	pending   map[uint64]seqData
	events    *eventQueue
	evCh      chan Event
	nextSeq   uint64 // sequencer only
	wg        sync.WaitGroup
	stopCh    chan struct{}
}

type seqData struct {
	seq     uint64
	group   string
	sender  string
	payload []byte
}

// Sequencer wire format: 'R' raw submission (to sequencer), 'S' stamped
// broadcast.
func encodeSeqPkt(stamped bool, m seqData) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	if stamped {
		e.WriteOctet('S')
	} else {
		e.WriteOctet('R')
	}
	e.WriteULongLong(m.seq)
	e.WriteString(m.group)
	e.WriteString(m.sender)
	e.WriteOctetSeq(m.payload)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func decodeSeqPkt(b []byte) (stamped bool, m seqData, err error) {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	t, err := d.ReadOctet()
	if err != nil {
		return false, m, err
	}
	switch t {
	case 'S':
		stamped = true
	case 'R':
	default:
		return false, m, fmt.Errorf("totem: bad sequencer packet type %q", t)
	}
	if m.seq, err = d.ReadULongLong(); err != nil {
		return stamped, m, err
	}
	if m.group, err = d.ReadString(); err != nil {
		return stamped, m, err
	}
	if m.sender, err = d.ReadString(); err != nil {
		return stamped, m, err
	}
	m.payload, err = d.ReadOctetSeq()
	return stamped, m, err
}

// NewSequencer creates one endpoint of the fixed-sequencer baseline. All
// endpoints must be given the same member list; the smallest member name is
// the sequencer.
func NewSequencer(tp transport.Transport, node string, members []string, port uint16) (*Sequencer, error) {
	if len(members) == 0 {
		return nil, errors.New("totem: sequencer needs members")
	}
	sorted := append([]string(nil), members...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	dp, err := tp.Open(node, port)
	if err != nil {
		return nil, fmt.Errorf("totem: sequencer port: %w", err)
	}
	s := &Sequencer{
		node:    node,
		members: sorted,
		port:    dp,
		portNum: port,
		isSeq:   sorted[0] == node,
		pending: make(map[uint64]seqData),
		events:  newEventQueue(),
		evCh:    make(chan Event),
		stopCh:  make(chan struct{}),
	}
	s.wg.Add(2)
	go s.recvLoop()
	go s.pumpEvents()
	return s, nil
}

func (s *Sequencer) recvLoop() {
	defer s.wg.Done()
	for {
		dg, err := s.port.Recv()
		if err != nil {
			return
		}
		stamped, m, err := decodeSeqPkt(dg.Payload)
		if err != nil {
			continue
		}
		if stamped {
			s.deliver(m)
			continue
		}
		if !s.isSeq {
			continue
		}
		s.stamp(m)
	}
}

func (s *Sequencer) stamp(m seqData) {
	s.mu.Lock()
	s.nextSeq++
	m.seq = s.nextSeq
	s.mu.Unlock()
	raw := encodeSeqPkt(true, m)
	for _, member := range s.members {
		if member == s.node {
			continue
		}
		_ = s.port.Send(member, s.portNum, raw)
	}
	s.deliver(m)
}

func (s *Sequencer) deliver(m seqData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.seq <= s.delivered {
		return
	}
	s.pending[m.seq] = m
	for {
		next, ok := s.pending[s.delivered+1]
		if !ok {
			return
		}
		delete(s.pending, s.delivered+1)
		s.delivered++
		s.events.push(Deliver{
			MsgID:   next.seq,
			Seq:     next.seq,
			Group:   next.group,
			Sender:  next.sender,
			Payload: next.payload,
		})
	}
}

func (s *Sequencer) pumpEvents() {
	defer s.wg.Done()
	defer close(s.evCh)
	for {
		ev, ok := s.events.pop()
		if !ok {
			return
		}
		select {
		case s.evCh <- ev:
		case <-s.stopCh:
			return
		}
	}
}

// Multicast submits a message for total ordering.
func (s *Sequencer) Multicast(group string, payload []byte) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrStopped
	}
	s.mu.Unlock()
	m := seqData{group: group, sender: s.node, payload: append([]byte(nil), payload...)}
	if s.isSeq {
		s.stamp(m)
		return nil
	}
	return s.port.Send(s.members[0], s.portNum, encodeSeqPkt(false, m))
}

// Events returns the ordered delivery stream.
func (s *Sequencer) Events() <-chan Event { return s.evCh }

// Stop shuts the endpoint down.
func (s *Sequencer) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stopCh)
	s.port.Close()
	s.events.close()
	s.wg.Wait()
}
