package totem

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

func newSeqCluster(t *testing.T, n int) (map[string]*Sequencer, map[string]*[]Deliver, *sync.Mutex) {
	t.Helper()
	fabric := netsim.NewFabric(netsim.Config{})
	var members []string
	for i := 0; i < n; i++ {
		members = append(members, fmt.Sprintf("s%d", i+1))
	}
	for _, m := range members {
		fabric.AddNode(m)
	}
	seqs := make(map[string]*Sequencer)
	logs := make(map[string]*[]Deliver)
	var mu sync.Mutex
	for _, m := range members {
		s, err := NewSequencer(fabric, m, members, 5000)
		if err != nil {
			t.Fatal(err)
		}
		seqs[m] = s
		log := &[]Deliver{}
		logs[m] = log
		go func(s *Sequencer, log *[]Deliver) {
			for ev := range s.Events() {
				if d, ok := ev.(Deliver); ok {
					mu.Lock()
					*log = append(*log, d)
					mu.Unlock()
				}
			}
		}(s, log)
	}
	t.Cleanup(func() {
		for _, s := range seqs {
			s.Stop()
		}
	})
	return seqs, logs, &mu
}

func TestSequencerTotalOrder(t *testing.T) {
	seqs, logs, mu := newSeqCluster(t, 3)
	const perNode = 30
	for name, s := range seqs {
		name, s := name, s
		go func() {
			for i := 0; i < perNode; i++ {
				s.Multicast("g", []byte(fmt.Sprintf("%s-%d", name, i)))
			}
		}()
	}
	total := perNode * len(seqs)
	waitFor(t, 5*time.Second, "sequencer deliveries", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, log := range logs {
			if len(*log) < total {
				return false
			}
		}
		return true
	})
	mu.Lock()
	defer mu.Unlock()
	ref := (*logs["s1"])[:total]
	for name, log := range logs {
		got := (*log)[:total]
		for i := range ref {
			if string(got[i].Payload) != string(ref[i].Payload) {
				t.Fatalf("%s diverges at %d", name, i)
			}
			if i > 0 && got[i].Seq != got[i-1].Seq+1 {
				t.Fatalf("%s: non-contiguous seq at %d", name, i)
			}
		}
	}
}

func TestSequencerStop(t *testing.T) {
	seqs, _, _ := newSeqCluster(t, 2)
	s := seqs["s1"]
	s.Stop()
	if err := s.Multicast("g", nil); err != ErrStopped {
		t.Errorf("Multicast after stop: %v", err)
	}
	s.Stop() // idempotent
}

func TestSequencerNeedsMembers(t *testing.T) {
	fabric := netsim.NewFabric(netsim.Config{})
	if _, err := NewSequencer(fabric, "x", nil, 1); err == nil {
		t.Error("want error for empty member list")
	}
}

func TestSeqPktRoundTrip(t *testing.T) {
	m := seqData{seq: 9, group: "g", sender: "s1", payload: []byte("p")}
	for _, stamped := range []bool{true, false} {
		gotStamped, got, err := decodeSeqPkt(encodeSeqPkt(stamped, m))
		if err != nil || gotStamped != stamped {
			t.Fatalf("stamped=%v: %v %v", stamped, gotStamped, err)
		}
		if got.seq != m.seq || got.group != m.group || got.sender != m.sender || string(got.payload) != "p" {
			t.Fatalf("got %+v", got)
		}
	}
	if _, _, err := decodeSeqPkt([]byte{'X'}); err == nil {
		t.Error("bad type must error")
	}
}
