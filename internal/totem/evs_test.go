package totem

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

// perRing groups a node's deliveries by the ring that ordered them.
func perRing(ds []Deliver) map[RingID][]Deliver {
	out := make(map[RingID][]Deliver)
	for _, d := range ds {
		out[d.Ring] = append(out[d.Ring], d)
	}
	return out
}

// TestEVSInvariantUnderRandomFaults drives rings through random
// partition/heal schedules while every node multicasts, then checks the
// delivery invariants over the complete histories:
//
//	I1 (no corruption): a (ring, seq) slot carries the same message at
//	    every node that delivers it.
//	I2 (total order): MsgIDs are strictly increasing at each node, and
//	    within one ring each node's sequence numbers are strictly
//	    increasing.
//	I3 (prefix consistency): for any two nodes sharing a ring, one node's
//	    delivery list for that ring is a prefix of the other's (recovery
//	    stops at unrecoverable holes instead of skipping them, so lists
//	    stay dense).
//
// The deliverMsg contiguity check (Config.StrictInvariants, set by the
// test cluster) additionally panics on any non-contiguous delivery inside
// the protocol itself.
func TestEVSInvariantUnderRandomFaults(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runEVSTrial(t, seed)
		})
	}
}

func runEVSTrial(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	c := newCluster(t, netsim.Config{Jitter: 200 * time.Microsecond, Seed: seed}, 4)
	c.startAll()
	for _, n := range c.nodes {
		if err := c.rings[n].JoinGroup("evs"); err != nil {
			t.Fatal(err)
		}
	}
	c.waitStableRing(5*time.Second, c.nodes)

	// Background senders on every node.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, n := range c.nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.rings[n].Multicast("evs", []byte(fmt.Sprintf("%s-%d", n, i)))
				i++
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// Random fault schedule: partitions and heals.
	splits := [][][]string{
		{{"n1", "n2"}, {"n3", "n4"}},
		{{"n1"}, {"n2", "n3", "n4"}},
		{{"n1", "n3"}, {"n2", "n4"}},
		{{"n1", "n2", "n3"}, {"n4"}},
	}
	for i := 0; i < 4; i++ {
		time.Sleep(time.Duration(20+rng.Intn(40)) * time.Millisecond)
		c.fabric.Partition(splits[rng.Intn(len(splits))]...)
		time.Sleep(time.Duration(60+rng.Intn(60)) * time.Millisecond)
		c.fabric.Heal()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Let the final ring settle and drain.
	c.waitStableRing(10*time.Second, c.nodes)
	time.Sleep(100 * time.Millisecond)

	delivers := make(map[string][]Deliver)
	rings := make(map[string]map[RingID][]Deliver)
	for _, n := range c.nodes {
		delivers[n] = c.collect[n].deliverSnapshot()
		rings[n] = perRing(delivers[n])
	}

	// I2a: MsgIDs strictly increasing per node.
	for _, n := range c.nodes {
		for k := 1; k < len(delivers[n]); k++ {
			if delivers[n][k].MsgID <= delivers[n][k-1].MsgID {
				t.Fatalf("%s: MsgID not strictly increasing at %d: %d after %d",
					n, k, delivers[n][k].MsgID, delivers[n][k-1].MsgID)
			}
		}
	}

	// I2b: per-ring sequence numbers strictly increasing per node.
	for _, n := range c.nodes {
		for rid, ds := range rings[n] {
			for k := 1; k < len(ds); k++ {
				if ds[k].Seq <= ds[k-1].Seq {
					t.Fatalf("%s ring %v: seq not increasing (%d after %d)", n, rid, ds[k].Seq, ds[k-1].Seq)
				}
			}
		}
	}

	// I1: a (ring, seq) slot never carries two different messages.
	type slot struct {
		ring RingID
		seq  uint64
	}
	content := make(map[slot]string)
	for _, n := range c.nodes {
		for rid, ds := range rings[n] {
			for _, d := range ds {
				k := slot{ring: rid, seq: d.Seq}
				if prev, ok := content[k]; ok && prev != string(d.Payload) {
					t.Fatalf("ring %v seq %d delivered with two different payloads", rid, d.Seq)
				}
				content[k] = string(d.Payload)
			}
		}
	}

	// I3: prefix consistency for every pair sharing a ring.
	for i, a := range c.nodes {
		for _, b := range c.nodes[i+1:] {
			for rid, da := range rings[a] {
				db, shared := rings[b][rid]
				if !shared {
					continue
				}
				n := len(da)
				if len(db) < n {
					n = len(db)
				}
				for k := 0; k < n; k++ {
					if da[k].Seq != db[k].Seq || string(da[k].Payload) != string(db[k].Payload) {
						t.Fatalf("ring %v: %s and %s diverge at position %d (seq %d vs %d)",
							rid, a, b, k, da[k].Seq, db[k].Seq)
					}
				}
			}
		}
	}

	// Sanity: real traffic flowed and the faults really split the ring.
	total := 0
	for _, n := range c.nodes {
		total += len(delivers[n])
	}
	if total == 0 {
		t.Fatal("no deliveries recorded — trial degenerate")
	}
	if views := c.collect[c.nodes[0]].viewsSnapshot(); len(views) < 2 {
		t.Logf("note: only %d view(s) at %s — faults may not have split the ring this seed", len(views), c.nodes[0])
	}
}
