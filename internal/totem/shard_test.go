package totem

import (
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
)

// TestShardPortLayout pins the one port-layout rule every backend and
// every fault filter share: shard i of a pool based at port p listens on
// p+i, and totem.ShardPort is exactly the transport-layer contract (no
// second copy of the arithmetic that could drift). PR 7 moved the layout
// into the transport package; this guards against the chaos/slo drop
// filters and the ring pool ever disagreeing about which port a shard is
// on again.
func TestShardPortLayout(t *testing.T) {
	for _, base := range []uint16{1, 4000, 9000} {
		for shard := 0; shard < 8; shard++ {
			want := base + uint16(shard)
			if got := transport.ShardPort(base, shard); got != want {
				t.Fatalf("transport.ShardPort(%d, %d) = %d, want %d", base, shard, got, want)
			}
			if got := ShardPort(base, shard); got != transport.ShardPort(base, shard) {
				t.Fatalf("totem.ShardPort(%d, %d) = %d diverges from transport contract", base, shard, got)
			}
		}
	}
}

// TestRingPoolTrafficOnLayoutPorts taps every datagram a two-shard pool
// puts on the fabric and asserts all of it — formation, token, data —
// flows on exactly the two contractual ports. This is the observable a
// targeted fault filter depends on: if a pool ever bound a shard
// anywhere else, a filter written against ShardPort would silently miss
// it (the abstraction leak PR 7 closed).
func TestRingPoolTrafficOnLayoutPorts(t *testing.T) {
	const base = 4000
	fabric := netsim.NewFabric(netsim.Config{})
	nodes := []string{"a", "b"}
	for _, n := range nodes {
		fabric.AddNode(n)
	}

	var mu sync.Mutex
	seen := map[uint16]bool{}
	fabric.SetDropFilter(func(from, to string, port uint16, payload []byte) bool {
		mu.Lock()
		seen[port] = true
		mu.Unlock()
		return false
	})
	defer fabric.SetDropFilter(nil)

	pools := make([][]*Ring, len(nodes))
	for i, n := range nodes {
		p, err := NewRingPool(fabric, Config{
			Node: n, Universe: nodes, Port: base,
			HeartbeatInterval: 2 * time.Millisecond,
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		pools[i] = p
		StartPool(p)
		defer StopPool(p)
	}
	waitFull := func(r *Ring) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if _, m := r.CurrentRing(); len(m) == len(nodes) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("ring never formed")
			}
			time.Sleep(time.Millisecond)
		}
	}
	for shard := 0; shard < 2; shard++ {
		waitFull(pools[0][shard])
	}

	// Push a multicast through each shard so the tap sees data traffic,
	// not just formation and tokens.
	for shard, ring := range pools[0] {
		deliver := make(chan struct{}, 16)
		go func() {
			for ev := range ring.Events() {
				if _, ok := ev.(Deliver); ok {
					deliver <- struct{}{}
				}
			}
		}()
		if err := ring.JoinGroup("g"); err != nil {
			t.Fatalf("shard %d join: %v", shard, err)
		}
		if err := ring.Multicast("g", []byte("x")); err != nil {
			t.Fatalf("shard %d multicast: %v", shard, err)
		}
		select {
		case <-deliver:
		case <-time.After(5 * time.Second):
			t.Fatalf("shard %d never delivered", shard)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	for shard := 0; shard < 2; shard++ {
		if !seen[ShardPort(base, shard)] {
			t.Errorf("no traffic observed on shard %d's contractual port %d", shard, ShardPort(base, shard))
		}
	}
	for port := range seen {
		if port != ShardPort(base, 0) && port != ShardPort(base, 1) {
			t.Errorf("pool traffic on port %d, outside the ShardPort layout", port)
		}
	}
}
