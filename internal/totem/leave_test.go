package totem

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
)

// These tests cover the leave half of the process-group lifecycle: the join
// paths get exercised by everything else, but LeaveGroup, rejoin after a
// leave, and the sequencing behaviour of a group with no members at all are
// the paths a membership bug would hide in.

// TestLeaveGroupStopsDelivery verifies a leave is a real unsubscription:
// messages multicast after the leave reach the remaining member but never
// the departed one, while the departed node keeps participating in the ring
// itself.
func TestLeaveGroupStopsDelivery(t *testing.T) {
	c := newCluster(t, netsim.Config{}, 3)
	c.startAll()
	c.waitStableRing(3*time.Second, c.nodes)
	for _, n := range []string{"n1", "n2"} {
		if err := c.rings[n].JoinGroup("g"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 3*time.Second, "both joined", func() bool {
		return sameStrings(c.rings["n3"].GroupMembers("g"), []string{"n1", "n2"})
	})

	if err := c.rings["n2"].LeaveGroup("g"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "leave visible everywhere", func() bool {
		for _, n := range c.nodes {
			if !sameStrings(c.rings[n].GroupMembers("g"), []string{"n1"}) {
				return false
			}
		}
		return true
	})

	atLeave := c.collect["n2"].deliverCount()
	c.rings["n3"].Multicast("g", []byte("post-leave"))
	waitFor(t, 3*time.Second, "n1 delivers post-leave", func() bool {
		ds := c.collect["n1"].deliverSnapshot()
		return len(ds) > 0 && string(ds[len(ds)-1].Payload) == "post-leave"
	})
	// The departed member must see nothing new; give stray deliveries a
	// moment to surface before declaring victory.
	time.Sleep(20 * time.Millisecond)
	if got := c.collect["n2"].deliverCount(); got != atLeave {
		t.Errorf("departed member delivered %d messages after leaving", got-atLeave)
	}
}

// TestRejoinAfterLeave verifies leave→rejoin is clean: the rejoined member
// appears in every node's group view again, receives messages sent after
// the rejoin, and never sees the messages from its absence.
func TestRejoinAfterLeave(t *testing.T) {
	c := newCluster(t, netsim.Config{}, 3)
	c.startAll()
	c.waitStableRing(3*time.Second, c.nodes)
	for _, n := range c.nodes {
		if err := c.rings[n].JoinGroup("g"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 3*time.Second, "all joined", func() bool {
		return sameStrings(c.rings["n1"].GroupMembers("g"), c.nodes)
	})

	if err := c.rings["n2"].LeaveGroup("g"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "n2 out", func() bool {
		return sameStrings(c.rings["n1"].GroupMembers("g"), []string{"n1", "n3"})
	})
	c.rings["n1"].Multicast("g", []byte("while-away"))
	waitFor(t, 3*time.Second, "n3 delivers while-away", func() bool {
		ds := c.collect["n3"].deliverSnapshot()
		return len(ds) > 0 && string(ds[len(ds)-1].Payload) == "while-away"
	})

	if err := c.rings["n2"].JoinGroup("g"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "rejoin visible everywhere", func() bool {
		for _, n := range c.nodes {
			if !sameStrings(c.rings[n].GroupMembers("g"), c.nodes) {
				return false
			}
		}
		return true
	})
	c.rings["n3"].Multicast("g", []byte("after-rejoin"))
	waitFor(t, 3*time.Second, "n2 delivers after-rejoin", func() bool {
		ds := c.collect["n2"].deliverSnapshot()
		return len(ds) > 0 && string(ds[len(ds)-1].Payload) == "after-rejoin"
	})
	for _, d := range c.collect["n2"].deliverSnapshot() {
		if string(d.Payload) == "while-away" {
			t.Error("rejoined member delivered a message from its absence")
		}
	}
}

// TestGroupEmptiesSequencingContinues drains a group completely and checks
// the ring's sequencer carries on: multicasts into the empty group are still
// totally ordered (they consume sequence slots and count as protocol
// deliveries) while reaching no subscriber, and a later join resumes
// delivery with MsgIDs strictly after everything ordered during the empty
// period.
func TestGroupEmptiesSequencingContinues(t *testing.T) {
	c := newCluster(t, netsim.Config{}, 3)
	c.startAll()
	c.waitStableRing(3*time.Second, c.nodes)
	for _, n := range []string{"n1", "n2"} {
		if err := c.rings[n].JoinGroup("g"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 3*time.Second, "joined", func() bool {
		return sameStrings(c.rings["n3"].GroupMembers("g"), []string{"n1", "n2"})
	})
	for _, n := range []string{"n1", "n2"} {
		if err := c.rings[n].LeaveGroup("g"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 3*time.Second, "group empty everywhere", func() bool {
		for _, n := range c.nodes {
			if len(c.rings[n].GroupMembers("g")) != 0 {
				return false
			}
		}
		return true
	})

	// Messages into the empty group still flow through the total order.
	base := c.rings["n3"].Stats().Delivered
	appBefore := c.collect["n1"].deliverCount() + c.collect["n2"].deliverCount() + c.collect["n3"].deliverCount()
	const ghosts = 5
	for i := 0; i < ghosts; i++ {
		if err := c.rings["n3"].Multicast("g", []byte(fmt.Sprintf("ghost-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 3*time.Second, "empty-group messages ordered", func() bool {
		return c.rings["n3"].Stats().Delivered >= base+ghosts
	})
	time.Sleep(20 * time.Millisecond)
	if got := c.collect["n1"].deliverCount() + c.collect["n2"].deliverCount() + c.collect["n3"].deliverCount(); got != appBefore {
		t.Errorf("empty group delivered %d messages to applications", got-appBefore)
	}

	// A fresh member picks the sequence back up strictly after the ghosts.
	if err := c.rings["n1"].JoinGroup("g"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "n1 back in", func() bool {
		return sameStrings(c.rings["n2"].GroupMembers("g"), []string{"n1"})
	})
	c.rings["n2"].Multicast("g", []byte("revival"))
	waitFor(t, 3*time.Second, "revival delivered", func() bool {
		ds := c.collect["n1"].deliverSnapshot()
		return len(ds) > 0 && string(ds[len(ds)-1].Payload) == "revival"
	})
	ds := c.collect["n1"].deliverSnapshot()
	last := ds[len(ds)-1]
	if string(last.Payload) != "revival" || last.Sender != "n2" {
		t.Fatalf("revival delivery = %+v", last)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].MsgID <= ds[i-1].MsgID {
			t.Fatalf("MsgID not increasing across the empty period: %d after %d", ds[i].MsgID, ds[i-1].MsgID)
		}
	}
}
