package totem

import (
	"fmt"

	"repro/internal/transport"
)

// Sharded transport support: a node can run a pool of R independent rings
// (distinct fabric ports, distinct circulating tokens) so that independent
// process groups are not serialized behind one token rotation. Each ring in
// a pool is a completely ordinary Ring — the pool is purely a construction
// and lifecycle convenience plus the port-layout convention that makes
// every node derive the same shard→port mapping.

// ShardPort is the canonical port layout of a ring pool: shard i listens on
// base+i on every node. It delegates to the transport layer's contract so
// that every backend and every fault filter agree on the one layout.
func ShardPort(base uint16, shard int) uint16 {
	return transport.ShardPort(base, shard)
}

// ShardName labels one shard of a pool for diagnostics and logs.
func ShardName(node string, shard int) string {
	return fmt.Sprintf("%s#%d", node, shard)
}

// NewRingPool creates (but does not start) shards rings on consecutive
// ports starting at cfg.Port, all sharing the remaining configuration. With
// shards == 1 the pool is exactly one NewRing at cfg.Port — the single-ring
// wire behaviour is unchanged. On any error the already-opened rings are
// stopped so no transport ports leak.
func NewRingPool(tp transport.Transport, cfg Config, shards int) ([]*Ring, error) {
	if shards < 1 {
		shards = 1
	}
	rings := make([]*Ring, 0, shards)
	for i := 0; i < shards; i++ {
		c := cfg
		c.Port = ShardPort(cfg.Port, i)
		r, err := NewRing(tp, c)
		if err != nil {
			for _, prev := range rings {
				prev.Stop()
			}
			return nil, fmt.Errorf("totem: shard %d: %w", i, err)
		}
		rings = append(rings, r)
	}
	return rings, nil
}

// StartPool starts every ring in the pool.
func StartPool(rings []*Ring) {
	for _, r := range rings {
		r.Start()
	}
}

// StopPool stops every ring in the pool (idempotent, like Ring.Stop).
func StopPool(rings []*Ring) {
	for _, r := range rings {
		r.Stop()
	}
}

// AggregateStats sums protocol counters across a pool — the per-ring
// snapshots remain available from each Ring individually.
func AggregateStats(rings []*Ring) Stats {
	var total Stats
	for _, r := range rings {
		s := r.Stats()
		total.Delivered += s.Delivered
		total.Sent += s.Sent
		total.Retransmit += s.Retransmit
		total.Formations += s.Formations
		total.Batches += s.Batches
	}
	return total
}
