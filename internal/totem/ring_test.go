package totem

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

// collector drains a ring's event stream into inspectable slices.
type collector struct {
	mu       sync.Mutex
	delivers []Deliver
	views    []ViewChange
	groups   []GroupView
}

func collect(r *Ring) *collector {
	c := &collector{}
	go func() {
		for ev := range r.Events() {
			c.mu.Lock()
			switch v := ev.(type) {
			case Deliver:
				c.delivers = append(c.delivers, v)
			case ViewChange:
				c.views = append(c.views, v)
			case GroupView:
				c.groups = append(c.groups, v)
			}
			c.mu.Unlock()
		}
	}()
	return c
}

func (c *collector) deliverCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.delivers)
}

func (c *collector) deliverSnapshot() []Deliver {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Deliver(nil), c.delivers...)
}

func (c *collector) viewsSnapshot() []ViewChange {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ViewChange(nil), c.views...)
}

func (c *collector) lastView() (ViewChange, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.views) == 0 {
		return ViewChange{}, false
	}
	return c.views[len(c.views)-1], true
}

// cluster is a test harness: n rings on one fabric.
type cluster struct {
	t       *testing.T
	fabric  *netsim.Fabric
	rings   map[string]*Ring
	collect map[string]*collector
	nodes   []string
}

func testConfig(node string, universe []string) Config {
	return Config{
		Node:              node,
		Universe:          universe,
		Port:              4000,
		HeartbeatInterval: 4 * time.Millisecond,
		FailTimeout:       24 * time.Millisecond,
		TokenTimeout:      48 * time.Millisecond,
		SettleDelay:       12 * time.Millisecond,
		AcceptTimeout:     60 * time.Millisecond,
		MaxBatch:          64,
		StrictInvariants:  true,
	}
}

func newCluster(t *testing.T, netCfg netsim.Config, n int) *cluster {
	t.Helper()
	c := &cluster{
		t:       t,
		fabric:  netsim.NewFabric(netCfg),
		rings:   make(map[string]*Ring),
		collect: make(map[string]*collector),
	}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, fmt.Sprintf("n%d", i+1))
	}
	for _, node := range c.nodes {
		c.fabric.AddNode(node)
	}
	for _, node := range c.nodes {
		r, err := NewRing(c.fabric, testConfig(node, c.nodes))
		if err != nil {
			t.Fatalf("NewRing(%s): %v", node, err)
		}
		c.rings[node] = r
		c.collect[node] = collect(r)
	}
	t.Cleanup(func() {
		for _, r := range c.rings {
			r.Stop()
		}
	})
	return c
}

func (c *cluster) startAll() {
	for _, node := range c.nodes {
		c.rings[node].Start()
	}
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// waitStableRing waits until every listed node reports the same ring with
// exactly those members.
func (c *cluster) waitStableRing(d time.Duration, nodes []string) {
	c.t.Helper()
	waitFor(c.t, d, fmt.Sprintf("stable ring %v", nodes), func() bool {
		var rid RingID
		for i, n := range nodes {
			id, members := c.rings[n].CurrentRing()
			if id.IsZero() || !sameStrings(members, sortedCopy(nodes)) {
				return false
			}
			if i == 0 {
				rid = id
			} else if id != rid {
				return false
			}
		}
		return true
	})
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestRingFormation(t *testing.T) {
	c := newCluster(t, netsim.Config{Latency: 100 * time.Microsecond}, 3)
	c.startAll()
	c.waitStableRing(3*time.Second, c.nodes)
	for _, n := range c.nodes {
		if v, ok := c.collect[n].lastView(); !ok || len(v.Members) != 3 {
			t.Errorf("%s: view = %+v, ok=%v", n, v, ok)
		}
	}
}

func TestTotalOrderAcrossSenders(t *testing.T) {
	c := newCluster(t, netsim.Config{Latency: 50 * time.Microsecond, Jitter: 100 * time.Microsecond}, 3)
	c.startAll()
	for _, n := range c.nodes {
		if err := c.rings[n].JoinGroup("g"); err != nil {
			t.Fatal(err)
		}
	}
	c.waitStableRing(3*time.Second, c.nodes)

	const perNode = 50
	for _, n := range c.nodes {
		n := n
		go func() {
			for i := 0; i < perNode; i++ {
				c.rings[n].Multicast("g", []byte(fmt.Sprintf("%s-%d", n, i)))
			}
		}()
	}
	total := perNode * len(c.nodes)
	waitFor(t, 5*time.Second, "all deliveries", func() bool {
		for _, n := range c.nodes {
			if c.collect[n].deliverCount() < total {
				return false
			}
		}
		return true
	})

	// Every node must deliver the identical sequence.
	ref := c.collect[c.nodes[0]].deliverSnapshot()[:total]
	for _, n := range c.nodes[1:] {
		got := c.collect[n].deliverSnapshot()[:total]
		for i := range ref {
			if got[i].MsgID != ref[i].MsgID || string(got[i].Payload) != string(ref[i].Payload) {
				t.Fatalf("%s diverges at %d: %v vs %v", n, i, got[i], ref[i])
			}
		}
	}

	// MsgIDs must be strictly increasing at each node.
	for _, n := range c.nodes {
		ds := c.collect[n].deliverSnapshot()
		for i := 1; i < len(ds); i++ {
			if ds[i].MsgID <= ds[i-1].MsgID {
				t.Fatalf("%s: MsgID not increasing at %d: %d then %d", n, i, ds[i-1].MsgID, ds[i].MsgID)
			}
		}
	}
}

func TestSelfDelivery(t *testing.T) {
	c := newCluster(t, netsim.Config{}, 1)
	c.startAll()
	c.rings["n1"].JoinGroup("solo")
	c.waitStableRing(3*time.Second, []string{"n1"})
	c.rings["n1"].Multicast("solo", []byte("only"))
	waitFor(t, 3*time.Second, "self delivery", func() bool {
		return c.collect["n1"].deliverCount() >= 1
	})
	d := c.collect["n1"].deliverSnapshot()[0]
	if d.Sender != "n1" || string(d.Payload) != "only" || d.Group != "solo" {
		t.Fatalf("got %+v", d)
	}
}

func TestSubscriptionFiltering(t *testing.T) {
	c := newCluster(t, netsim.Config{}, 2)
	c.startAll()
	c.rings["n1"].JoinGroup("a")
	// n2 joins nothing.
	c.waitStableRing(3*time.Second, c.nodes)
	c.rings["n2"].Multicast("a", []byte("x"))
	waitFor(t, 3*time.Second, "n1 delivery", func() bool {
		return c.collect["n1"].deliverCount() >= 1
	})
	time.Sleep(20 * time.Millisecond)
	if got := c.collect["n2"].deliverCount(); got != 0 {
		t.Errorf("unsubscribed node delivered %d messages", got)
	}
}

func TestGroupViewsConsistent(t *testing.T) {
	c := newCluster(t, netsim.Config{}, 3)
	c.startAll()
	c.waitStableRing(3*time.Second, c.nodes)
	c.rings["n1"].JoinGroup("g")
	c.rings["n2"].JoinGroup("g")
	waitFor(t, 3*time.Second, "group views", func() bool {
		for _, n := range c.nodes {
			if !sameStrings(c.rings[n].GroupMembers("g"), []string{"n1", "n2"}) {
				return false
			}
		}
		return true
	})
	c.rings["n2"].LeaveGroup("g")
	waitFor(t, 3*time.Second, "leave view", func() bool {
		for _, n := range c.nodes {
			if !sameStrings(c.rings[n].GroupMembers("g"), []string{"n1"}) {
				return false
			}
		}
		return true
	})
}

func TestCrashReformsRing(t *testing.T) {
	c := newCluster(t, netsim.Config{}, 3)
	c.startAll()
	for _, n := range c.nodes {
		c.rings[n].JoinGroup("g")
	}
	c.waitStableRing(3*time.Second, c.nodes)

	c.fabric.CrashNode("n3")
	c.rings["n3"].Stop()
	c.waitStableRing(3*time.Second, []string{"n1", "n2"})

	// The survivors keep ordering messages.
	before := c.collect["n1"].deliverCount()
	c.rings["n2"].Multicast("g", []byte("after-crash"))
	waitFor(t, 3*time.Second, "post-crash delivery", func() bool {
		return c.collect["n1"].deliverCount() > before
	})
}

func TestPartitionBothComponentsOperate(t *testing.T) {
	c := newCluster(t, netsim.Config{}, 4)
	c.startAll()
	for _, n := range c.nodes {
		c.rings[n].JoinGroup("g")
	}
	c.waitStableRing(3*time.Second, c.nodes)

	c.fabric.Partition([]string{"n1", "n2"}, []string{"n3", "n4"})
	c.waitStableRing(3*time.Second, []string{"n1", "n2"})
	c.waitStableRing(3*time.Second, []string{"n3", "n4"})

	// Both components continue to multicast and deliver independently.
	n1Before := c.collect["n1"].deliverCount()
	n3Before := c.collect["n3"].deliverCount()
	c.rings["n1"].Multicast("g", []byte("left"))
	c.rings["n4"].Multicast("g", []byte("right"))
	waitFor(t, 3*time.Second, "left component delivery", func() bool {
		return c.collect["n1"].deliverCount() > n1Before && c.collect["n2"].deliverCount() > 0
	})
	waitFor(t, 3*time.Second, "right component delivery", func() bool {
		return c.collect["n3"].deliverCount() > n3Before
	})

	// Remerge: one ring with all four again.
	c.fabric.Heal()
	c.waitStableRing(5*time.Second, c.nodes)

	before := c.collect["n4"].deliverCount()
	c.rings["n1"].Multicast("g", []byte("merged"))
	waitFor(t, 3*time.Second, "post-merge delivery", func() bool {
		return c.collect["n4"].deliverCount() > before
	})
}

// TestEVSSamePrefixPerComponent checks the extended-virtual-synchrony
// guarantee: nodes that proceed together from one view to the next deliver
// the same messages in the same order.
func TestEVSSamePrefixPerComponent(t *testing.T) {
	c := newCluster(t, netsim.Config{Jitter: 200 * time.Microsecond}, 4)
	c.startAll()
	for _, n := range c.nodes {
		c.rings[n].JoinGroup("g")
	}
	c.waitStableRing(3*time.Second, c.nodes)

	// Burst of messages, then an immediate partition mid-stream.
	for i := 0; i < 30; i++ {
		c.rings["n1"].Multicast("g", []byte(fmt.Sprintf("a%d", i)))
		c.rings["n3"].Multicast("g", []byte(fmt.Sprintf("b%d", i)))
	}
	c.fabric.Partition([]string{"n1", "n2"}, []string{"n3", "n4"})
	c.waitStableRing(5*time.Second, []string{"n1", "n2"})
	c.waitStableRing(5*time.Second, []string{"n3", "n4"})
	// Give recovery deliveries a moment to flush.
	time.Sleep(100 * time.Millisecond)

	check := func(a, b string) {
		da := c.collect[a].deliverSnapshot()
		db := c.collect[b].deliverSnapshot()
		n := len(da)
		if len(db) < n {
			n = len(db)
		}
		for i := 0; i < n; i++ {
			if da[i].MsgID != db[i].MsgID || string(da[i].Payload) != string(db[i].Payload) {
				t.Fatalf("%s and %s diverge at %d: %v vs %v", a, b, i, da[i], db[i])
			}
		}
		if len(da) != len(db) {
			t.Fatalf("%s delivered %d, %s delivered %d — same-component members must match", a, len(da), b, len(db))
		}
	}
	check("n1", "n2")
	check("n3", "n4")
}

func TestLossyNetworkStillDelivers(t *testing.T) {
	c := newCluster(t, netsim.Config{Loss: 0.10, Seed: 42}, 3)
	c.startAll()
	for _, n := range c.nodes {
		c.rings[n].JoinGroup("g")
	}
	c.waitStableRing(5*time.Second, c.nodes)

	const msgs = 40
	for i := 0; i < msgs; i++ {
		c.rings["n1"].Multicast("g", []byte(fmt.Sprintf("m%d", i)))
	}
	waitFor(t, 10*time.Second, "lossy delivery", func() bool {
		for _, n := range c.nodes {
			// Count only data messages for group g (views may add noise).
			cnt := 0
			for _, d := range c.collect[n].deliverSnapshot() {
				if d.Group == "g" {
					cnt++
				}
			}
			if cnt < msgs {
				return false
			}
		}
		return true
	})
	// Order must still agree.
	ref := filterGroup(c.collect["n1"].deliverSnapshot(), "g")
	for _, n := range []string{"n2", "n3"} {
		got := filterGroup(c.collect[n].deliverSnapshot(), "g")
		for i := 0; i < msgs; i++ {
			if string(got[i].Payload) != string(ref[i].Payload) {
				t.Fatalf("%s diverges at %d under loss", n, i)
			}
		}
	}
}

func filterGroup(ds []Deliver, g string) []Deliver {
	out := ds[:0:0]
	for _, d := range ds {
		if d.Group == g {
			out = append(out, d)
		}
	}
	return out
}

func TestStatsProgress(t *testing.T) {
	c := newCluster(t, netsim.Config{}, 2)
	c.startAll()
	c.rings["n1"].JoinGroup("g")
	c.waitStableRing(3*time.Second, c.nodes)
	c.rings["n1"].Multicast("g", []byte("x"))
	waitFor(t, 3*time.Second, "delivery", func() bool {
		return c.collect["n1"].deliverCount() >= 1
	})
	s := c.rings["n1"].Stats()
	if s.Sent == 0 || s.Delivered == 0 || s.Formations == 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestAPIAfterStop(t *testing.T) {
	c := newCluster(t, netsim.Config{}, 1)
	c.startAll()
	c.waitStableRing(3*time.Second, []string{"n1"})
	c.rings["n1"].Stop()
	if err := c.rings["n1"].Multicast("g", nil); err != ErrStopped {
		t.Errorf("Multicast after stop: %v", err)
	}
	if err := c.rings["n1"].JoinGroup("g"); err != ErrStopped {
		t.Errorf("JoinGroup after stop: %v", err)
	}
	if err := c.rings["n1"].LeaveGroup("g"); err != ErrStopped {
		t.Errorf("LeaveGroup after stop: %v", err)
	}
	c.rings["n1"].Stop() // double stop is safe
}

func TestRingIDOrdering(t *testing.T) {
	a := RingID{Epoch: 1, Coord: "n1"}
	b := RingID{Epoch: 1, Coord: "n2"}
	cc := RingID{Epoch: 2, Coord: "n0"}
	if !a.Less(b) || !b.Less(cc) || cc.Less(a) {
		t.Error("RingID ordering broken")
	}
	if a.String() == "" || !(RingID{}).IsZero() || a.IsZero() {
		t.Error("RingID helpers broken")
	}
}

func TestMsgIDComposition(t *testing.T) {
	if MsgIDFor(1, 0) <= MsgIDFor(0, 1<<39) {
		t.Error("later epoch must dominate any seq")
	}
	if MsgIDFor(2, 5) <= MsgIDFor(2, 4) {
		t.Error("same epoch must order by seq")
	}
}

func TestPacketRoundTrips(t *testing.T) {
	pkts := []any{
		&hello{From: "a", Alive: []string{"a", "b"}, MaxEpoch: 9, Ring: RingID{Epoch: 3, Coord: "a"}},
		&propose{Ring: RingID{Epoch: 4, Coord: "b"}, Members: []string{"a", "b"}},
		&accept{
			Ring: RingID{Epoch: 4, Coord: "b"}, From: "a",
			OldRing: RingID{Epoch: 3, Coord: "a"}, Delivered: 17,
			Stored: []storedMsg{{Seq: 18, Group: "g", Sender: "a", Payload: []byte{1}}},
			Groups: []string{"g"},
		},
		&install{
			Ring: RingID{Epoch: 4, Coord: "b"}, Members: []string{"a", "b"},
			Recovery: []recoverySet{{OldRing: RingID{Epoch: 3, Coord: "a"},
				Msgs: []storedMsg{{Seq: 18, Group: "g", Sender: "a", Payload: []byte{1, 2}}}}},
			Subs: []groupSub{{Node: "a", Group: "g"}},
		},
		&token{Ring: RingID{Epoch: 4, Coord: "b"}, Round: 7, Seq: 100, Aru: 90, LastAru: 80, Rtr: []uint64{91, 95}},
		&data{Ring: RingID{Epoch: 4, Coord: "b"}, Seq: 101, Group: "g", Sender: "a", Payload: []byte("p"), Resend: true},
	}
	for _, p := range pkts {
		got, err := decodePacket(mustEncodePacket(t, p))
		if err != nil {
			t.Fatalf("%T: %v", p, err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", p) {
			t.Errorf("%T round trip: %+v vs %+v", p, got, p)
		}
	}
	if _, err := decodePacket([]byte{99}); err == nil {
		t.Error("unknown packet type must error")
	}
	if _, err := decodePacket(nil); err == nil {
		t.Error("empty packet must error")
	}
}

// mustEncodePacket encodes a packet, failing the test on error.
func mustEncodePacket(t testing.TB, p any) []byte {
	t.Helper()
	raw, err := encodePacket(p)
	if err != nil {
		t.Fatalf("encodePacket: %v", err)
	}
	return raw
}
