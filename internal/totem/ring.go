// Package totem implements a Totem-style group communication layer:
// reliable, totally ordered multicast with a membership service, built on
// an unreliable datagram substrate (package netsim).
//
// The design follows the single-ring Totem protocol in structure:
//
//   - a token circulates the ring members in a fixed (sorted) order; only
//     the token holder assigns sequence numbers and multicasts messages,
//     yielding a single system-wide total order;
//   - the token carries a retransmission-request list and an
//     all-received-up-to (aru) watermark used to prune message logs;
//   - liveness is tracked by gossip heartbeats; loss of the token or a
//     change in the perceived live set triggers the membership protocol,
//     which forms a new ring (epoch, coordinator) and installs it on all
//     members;
//   - extended virtual synchrony: during formation, members hand their
//     old-ring state to the coordinator, which computes per-old-ring
//     recovery sets so that all new members coming from the same old ring
//     deliver the same messages in the same order before the new view is
//     delivered. Components of a partition each form their own ring and
//     continue operating; on remerge the rings fuse and recovery runs.
//
// A process-group layer is multiplexed on the ring: join/leave requests
// travel as ordered control messages, so every member observes group
// membership changes at the same point in the total order.
//
// Simplifications relative to full Totem (documented for DESIGN.md): only
// agreed delivery (not safe delivery) is implemented — a message is
// delivered as soon as it is received in contiguous sequence order; and a
// message multicast by a node that crashes before any retransmission can
// be unrecoverable, in which case members that had received it keep their
// delivery (Totem confines this case to transitional views).
package totem

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/fault"
	"repro/internal/transport"
)

// ctlGroup is the reserved process-group name used for membership control
// messages (join/leave).
const ctlGroup = "\x00ctl"

// Control message opcodes.
const (
	ctlJoin  = 1
	ctlLeave = 2
)

// Errors returned by the public API.
var (
	ErrStopped = errors.New("totem: ring stopped")
)

// Config parameterizes one ring endpoint.
type Config struct {
	// Node is this endpoint's node name on the fabric.
	Node string
	// Universe lists all nodes that may ever participate (the broadcast
	// domain); heartbeats are sent to every universe member.
	Universe []string
	// Port is the fabric datagram port shared by all ring endpoints.
	Port uint16

	// HeartbeatInterval is the gossip period (default 10ms).
	HeartbeatInterval time.Duration
	// FailTimeout declares a node dead when no heartbeat arrives for this
	// long (default 6 heartbeats). Under the adaptive detector (the
	// default) it is the floor of the failure window, not the window
	// itself: observed heartbeat jitter widens the window up to
	// MaxFailTimeout before a peer is declared dead.
	FailTimeout time.Duration
	// FixedFailDetect reverts peer liveness to the legacy fixed-window
	// check (silence for FailTimeout ⇒ dead) instead of the adaptive
	// phi-accrual suspicion machine. Escape hatch and A/B lever: the chaos
	// storm test shows the fixed window evicting a paused-but-healthy node
	// where the adaptive one retracts the suspicion.
	FixedFailDetect bool
	// MaxFailTimeout caps how far observed jitter may widen the adaptive
	// failure window (default 3×FailTimeout).
	MaxFailTimeout time.Duration
	// PhiSuspect and PhiFail are the phi-accrual thresholds at which a
	// silent peer becomes suspected and fail-eligible (defaults 1 and 8).
	PhiSuspect float64
	PhiFail    float64
	// ConfirmGrace is the minimum dwell in the suspect state before a peer
	// may be declared dead (default FailTimeout). A heartbeat arriving
	// during the grace retracts the suspicion instead of evicting — the
	// hysteresis that keeps a provisioning storm from reforming the ring.
	ConfirmGrace time.Duration
	// TokenTimeout triggers ring re-formation when the token stays away
	// this long (default 12 heartbeats).
	TokenTimeout time.Duration
	// SettleDelay is how long a would-be coordinator waits for the live
	// set to stabilize before proposing (default 3 heartbeats).
	SettleDelay time.Duration
	// AcceptTimeout bounds the coordinator's wait for accepts (default 10
	// heartbeats).
	AcceptTimeout time.Duration
	// MaxBatch bounds messages multicast per token visit (default 64).
	MaxBatch int
	// MaxBatchBytes bounds payload bytes multicast per token visit
	// (default 256KiB) — the token-driven flow control that keeps one
	// node's large transfers from stalling token circulation.
	MaxBatchBytes int
	// IdleTokenDelay paces the token once the ring has been idle for two
	// consecutive rounds: the coordinator withholds the forward for this
	// long so an idle ring does not spin the CPU (default 1ms). Under load
	// the hold is skipped entirely — the token carries a ring-wide backlog
	// count, the first idle round after traffic rotates eagerly to pick up
	// just-queued work, and locally queued work cancels a hold in progress
	// — so back-to-back invocations pay token rotations, not idle holds.
	//
	// A negative value disables idle pacing entirely: the token rotates
	// continuously even when the ring is idle, as classic Totem
	// implementations do on real networks. That trades idle CPU (each
	// rotation is a few socket syscalls per node) for never paying a hold
	// when work arrives mid-rotation — the right trade on a real transport,
	// where timer granularity (often ~1ms on virtualized hosts) would
	// otherwise put a millisecond floor under every idle-start invocation.
	IdleTokenDelay time.Duration
	// MaxFrameBytes bounds the payload bytes coalesced into one fabric
	// datagram when the token holder drains its send queue (default
	// 60KiB). A message larger than the bound still travels, alone in an
	// oversized frame.
	MaxFrameBytes int
	// NoCoalesce makes this node emit one datagram per message (the
	// pre-coalescing wire behavior) instead of packed dataBatch frames.
	// Coalesced frames from other nodes are still accepted, so nodes with
	// and without coalescing interoperate on one ring (conservative
	// rollout; also exercised by tests).
	NoCoalesce bool
	// Promiscuous delivers every ordered message regardless of local group
	// subscription (used by interceptors and tests).
	Promiscuous bool
	// MaxSendQueue bounds the number of locally queued multicasts; when the
	// bound is reached Multicast blocks until the token drains the queue
	// (backpressure), so overload degrades to throttling instead of
	// unbounded memory growth (default 8192).
	MaxSendQueue int
	// StrictInvariants turns internal protocol invariant violations (e.g. a
	// non-contiguous delivery) into panics. Tests run strict; production
	// rings report the violation via Faults and recover by reformation.
	StrictInvariants bool
	// Faults, when set, receives InvariantViolation reports from the
	// degrade (non-strict) path.
	Faults *fault.Notifier
	// Observer, when set, is called synchronously on the protocol goroutine
	// for every ordered message delivered locally, before group-subscription
	// filtering (chaos harnesses record per-node delivery sequences with
	// it). It must be fast and must not call back into the Ring.
	Observer func(Deliver)
}

func (c *Config) fill() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 10 * time.Millisecond
	}
	if c.FailTimeout <= 0 {
		c.FailTimeout = 6 * c.HeartbeatInterval
	}
	if c.MaxFailTimeout <= 0 {
		c.MaxFailTimeout = 3 * c.FailTimeout
	}
	if c.ConfirmGrace <= 0 {
		c.ConfirmGrace = c.FailTimeout
	}
	if c.TokenTimeout <= 0 {
		c.TokenTimeout = 12 * c.HeartbeatInterval
	}
	if c.SettleDelay <= 0 {
		c.SettleDelay = 3 * c.HeartbeatInterval
	}
	if c.AcceptTimeout <= 0 {
		c.AcceptTimeout = 10 * c.HeartbeatInterval
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 256 << 10
	}
	if c.IdleTokenDelay == 0 {
		c.IdleTokenDelay = time.Millisecond
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = 60 << 10
	}
	if c.MaxSendQueue <= 0 {
		c.MaxSendQueue = 8192
	}
}

// ring states.
const (
	stForming      = iota + 1 // no installed ring usable; waiting to form
	stAwaitAccepts            // coordinator collecting accepts
	stOperational             // token circulating
)

type outMsg struct {
	group   string
	payload []byte
}

// eagerParkRounds is how many consecutive workless rounds an eager-mode
// (negative IdleTokenDelay) ring rotates through before parking the token
// at the coordinator. See the parking comment in handleToken.
const eagerParkRounds = 64

// fwdToken is an internal loop event: a paced token forward coming due.
type fwdToken struct {
	ring RingID
	tok  *token
	next string
}

// wake is an internal loop event: Multicast queued new local work. It
// cancels an idle-token hold in progress and, on a singleton ring, triggers
// immediate self-delivery instead of waiting for the self-token timer.
type wake struct{}

var wakeEvent = &wake{}

// Ring is one node's endpoint of the group communication layer.
type Ring struct {
	cfg    Config
	port   transport.Port
	events *eventQueue
	evCh   chan Event

	// Application-facing state, guarded by mu.
	mu       sync.Mutex
	sendCond *sync.Cond // signaled when sendQ shrinks or the ring stops
	sendQ    []outMsg
	subs     map[string]bool
	stopped  bool
	// Published snapshots, updated by the protocol loop.
	pubRing    RingID
	pubMembers []string
	pubGroups  map[string][]string

	// Protocol state, owned by the run goroutine.
	ring        RingID
	members     []string
	state       int
	maxEpoch    uint64
	lastHello   map[string]time.Time
	peerFD      map[string]*fault.Suspicion // adaptive per-peer liveness
	formingFrom time.Time
	formingRing RingID
	formMembers []string
	accepts     map[string]*accept

	store        map[uint64]storedMsg
	delivered    uint64
	pruned       uint64
	lastToken    time.Time
	lastRound    uint64
	retained     *token
	retainedNext string
	groupMembers map[string]map[string]bool
	idleRounds   int           // consecutive workless rounds (coordinator only)
	paceCancel   chan struct{} // closes to release a held idle token early
	parked       bool          // eager mode: token held at the idle coordinator
	unparking    bool          // the re-handled visit must rotate, not re-park
	nudged       bool          // a member announced fresh work: skip the next idle hold
	quietRounds  int           // workless token visits observed here (any member)
	lastSeqSeen  uint64        // token Seq at the previous visit (progress detection)

	packetCh   chan any
	ctlCh      chan any     // priority lane: liveness/membership/token packets
	directCh   chan *direct // unordered point-to-point lane (SendDirect)
	stopCh     chan struct{}
	wg         sync.WaitGroup
	lastSeq    map[RingID]uint64 // per-ring delivery contiguity tracking
	needReform bool              // degrade-mode invariant recovery pending

	// Direct-lane handler, set once via SetDirectHandler before traffic
	// flows (rings are constructed before the engines that consume them,
	// so this cannot be a Config field).
	directMu sync.RWMutex
	directFn func(from, group string, payload []byte)

	// Stats counters (read via Stats).
	statMu        sync.Mutex
	statDelivered uint64
	statSent      uint64
	statRetrans   uint64
	statForms     uint64
	statBatches   uint64
}

// Stats is a snapshot of protocol counters.
type Stats struct {
	Delivered  uint64 // ordered messages delivered locally
	Sent       uint64 // messages this node originated
	Retransmit uint64 // retransmissions this node served
	Formations uint64 // ring formations participated in
	Batches    uint64 // coalesced multi-message frames this node emitted
}

// NewRing creates (but does not start) a ring endpoint on the transport
// (the netsim fabric for deterministic in-process runs, a udp.Transport
// for real-socket multi-process deployments).
func NewRing(tp transport.Transport, cfg Config) (*Ring, error) {
	cfg.fill()
	if cfg.Node == "" {
		return nil, errors.New("totem: Config.Node required")
	}
	port, err := tp.Open(cfg.Node, cfg.Port)
	if err != nil {
		return nil, fmt.Errorf("totem: open port: %w", err)
	}
	r := &Ring{
		cfg:          cfg,
		port:         port,
		events:       newEventQueue(),
		evCh:         make(chan Event),
		subs:         make(map[string]bool),
		lastHello:    make(map[string]time.Time),
		peerFD:       make(map[string]*fault.Suspicion),
		store:        make(map[uint64]storedMsg),
		groupMembers: make(map[string]map[string]bool),
		packetCh:     make(chan any, 1024),
		ctlCh:        make(chan any, 256),
		directCh:     make(chan *direct, 1024),
		stopCh:       make(chan struct{}),
		state:        stForming,
		formingFrom:  time.Now(),
		pubGroups:    make(map[string][]string),
		lastSeq:      make(map[RingID]uint64),
	}
	r.sendCond = sync.NewCond(&r.mu)
	return r, nil
}

// Start launches the protocol goroutines.
func (r *Ring) Start() {
	r.wg.Add(4)
	go r.recvLoop()
	go r.run()
	go r.pumpEvents()
	go r.runDirect()
}

// Stop shuts the endpoint down and waits for its goroutines.
func (r *Ring) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.sendCond.Broadcast()
	r.mu.Unlock()
	close(r.stopCh)
	r.port.Close()
	r.events.close()
	r.wg.Wait()
}

// Node returns this endpoint's node name.
func (r *Ring) Node() string { return r.cfg.Node }

// Events returns the ordered event stream. The channel closes on Stop.
func (r *Ring) Events() <-chan Event { return r.evCh }

// Multicast queues a totally ordered multicast to a process group. The
// message is sent when the token next visits this node; delivery is to all
// subscribed members of the group, in the system-wide total order, on every
// node of the component.
//
// Ownership: the ring retains payload without copying (it flows into the
// message log and fabric datagrams as-is); the caller must not mutate it
// after Multicast returns. Reusing the same immutable buffer across calls
// (e.g. for retransmissions) is fine.
//
// When MaxSendQueue messages are already queued, Multicast blocks until the
// token drains the queue (or the ring stops): overload applies backpressure
// to producers instead of growing memory without bound.
func (r *Ring) Multicast(group string, payload []byte) error {
	r.mu.Lock()
	for !r.stopped && len(r.sendQ) >= r.cfg.MaxSendQueue {
		r.sendCond.Wait()
	}
	if r.stopped {
		r.mu.Unlock()
		return ErrStopped
	}
	wasEmpty := len(r.sendQ) == 0
	r.sendQ = append(r.sendQ, outMsg{group: group, payload: payload})
	r.mu.Unlock()
	if wasEmpty {
		// Nudge the protocol loop: a held idle token should be released
		// now, and a singleton ring can self-deliver immediately. Dropping
		// the nudge when the loop is busy is fine — a busy loop is already
		// processing a token and will see the queue.
		select {
		case r.packetCh <- wakeEvent:
		default:
		}
	}
	return nil
}

// SetDirectHandler registers the callback invoked for every direct
// (point-to-point, unordered) message addressed to this endpoint. The
// callback runs on a dedicated delivery goroutine — never on the protocol
// loop — so handling latency is decoupled from token pacing, but it must
// still be quick (hand off to a queue) or it backlogs the direct lane.
// Calling back into the Ring (SendDirect, Multicast) from the handler is
// allowed.
func (r *Ring) SetDirectHandler(fn func(from, group string, payload []byte)) {
	r.directMu.Lock()
	r.directFn = fn
	r.directMu.Unlock()
}

// SendDirect sends an unordered point-to-point message to one ring
// endpoint, bypassing the token and the total order entirely. Delivery is
// best-effort with UDP semantics: no retransmission, no ordering relative
// to anything, silently dropped if the peer is down, partitioned, has no
// handler registered, or its direct lane is full. Callers layer their own
// request/response retries on top, falling back to the ordered multicast
// path for liveness. The ring retains payload without copying; the caller
// must not mutate it after SendDirect returns.
func (r *Ring) SendDirect(to, group string, payload []byte) error {
	r.mu.Lock()
	stopped := r.stopped
	r.mu.Unlock()
	if stopped {
		return ErrStopped
	}
	d := &direct{From: r.cfg.Node, Group: group, Payload: payload}
	if to == r.cfg.Node {
		// Loopback: skip the wire, deliver on the direct goroutine (the
		// caller may hold locks the handler also wants).
		select {
		case r.directCh <- d:
		default: // lane full: drop, like UDP
		}
		return nil
	}
	raw, err := encodePacket(d)
	if err != nil {
		return err
	}
	r.sendRaw(to, raw)
	return nil
}

// JoinGroup subscribes this node to a group. The join is announced as an
// ordered control message so all members observe it at the same point.
func (r *Ring) JoinGroup(group string) error {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return ErrStopped
	}
	r.subs[group] = true
	r.mu.Unlock()
	return r.Multicast(ctlGroup, encodeCtl(ctlJoin, r.cfg.Node, group))
}

// LeaveGroup unsubscribes this node from a group.
func (r *Ring) LeaveGroup(group string) error {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return ErrStopped
	}
	delete(r.subs, group)
	r.mu.Unlock()
	return r.Multicast(ctlGroup, encodeCtl(ctlLeave, r.cfg.Node, group))
}

// CurrentRing returns the installed ring id and membership (snapshot).
func (r *Ring) CurrentRing() (RingID, []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pubRing, append([]string(nil), r.pubMembers...)
}

// GroupMembers returns the current members of a process group (snapshot).
func (r *Ring) GroupMembers(group string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.pubGroups[group]...)
}

// Stats returns a snapshot of protocol counters.
func (r *Ring) Stats() Stats {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	return Stats{
		Delivered:  r.statDelivered,
		Sent:       r.statSent,
		Retransmit: r.statRetrans,
		Formations: r.statForms,
		Batches:    r.statBatches,
	}
}

func encodeCtl(op byte, node, group string) []byte {
	e := cdr.GetEncoder(cdr.BigEndian)
	e.WriteOctet(op)
	e.WriteString(node)
	e.WriteString(group)
	out := e.TakeBytes()
	e.Release()
	return out
}

func decodeCtl(b []byte) (op byte, node, group string, err error) {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	if op, err = d.ReadOctet(); err != nil {
		return
	}
	if node, err = d.ReadString(); err != nil {
		return
	}
	group, err = d.ReadString()
	return
}

// --- Goroutines ----------------------------------------------------------

func (r *Ring) recvLoop() {
	defer r.wg.Done()
	for {
		dg, err := r.port.Recv()
		if err != nil {
			return
		}
		// The transport's payload is only valid until the next Recv. For
		// payload-bearing packets the datagram is copied out exactly once
		// and the decoder aliases that copy — one allocation per frame
		// instead of one per batched message. Control packets (tokens
		// above all: they circulate continuously under eager rotation)
		// skip the frame copy and decode field-by-field off the transport
		// buffer as before.
		var pkt any
		ch := r.ctlCh
		switch t := pktType(firstOctet(dg.Payload)); t {
		case pktData, pktDataBatch, pktDirect:
			owned := append(make([]byte, 0, len(dg.Payload)), dg.Payload...)
			pkt, err = decodePacketOwned(owned)
			ch = r.packetCh
		default:
			pkt, err = decodePacket(dg.Payload)
		}
		if err != nil {
			continue // corrupt datagram: drop, like UDP
		}
		// Direct packets skip the protocol loop entirely: they carry no
		// ordering state, so routing them through packetCh would only
		// couple their latency to token processing. They get their own
		// lane and goroutine; a full lane drops (UDP semantics).
		if d, ok := pkt.(*direct); ok {
			select {
			case r.directCh <- d:
			default:
			}
			continue
		}
		// Control packets (hello, membership, token, nudge) ride their own
		// channel so the protocol loop can serve them ahead of a multicast
		// backlog — the in-process half of the priority lane. A heartbeat
		// that queued behind a thousand dataBatch frames reads exactly like
		// a dead peer; this is what used to turn provisioning storms into
		// eviction cascades.
		select {
		case ch <- pkt:
		case <-r.stopCh:
			return
		}
	}
}

// runDirect delivers direct-lane messages to the registered handler on a
// goroutine of their own, decoupled from the protocol loop.
func (r *Ring) runDirect() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stopCh:
			return
		case d := <-r.directCh:
			r.directMu.RLock()
			fn := r.directFn
			r.directMu.RUnlock()
			if fn != nil {
				fn(d.From, d.Group, d.Payload)
			}
		}
	}
}

func (r *Ring) pumpEvents() {
	defer r.wg.Done()
	defer close(r.evCh)
	for {
		ev, ok := r.events.pop()
		if !ok {
			return
		}
		select {
		case r.evCh <- ev:
		case <-r.stopCh:
			return
		}
	}
}

func (r *Ring) run() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.HeartbeatInterval)
	defer ticker.Stop()
	r.lastHello[r.cfg.Node] = time.Now()
	for {
		// Control-plane priority: drain pending control packets before
		// considering data. Bounded so a saturated control stream cannot
		// starve the heartbeat tick.
		for n := 0; n < 64; n++ {
			select {
			case pkt := <-r.ctlCh:
				r.handleCtl(pkt)
				continue
			default:
			}
			break
		}
		select {
		case <-r.stopCh:
			return
		case pkt := <-r.ctlCh:
			r.handleCtl(pkt)
		case pkt := <-r.packetCh:
			r.handlePacket(pkt)
			// Drain what queued behind it with nonblocking receives: a
			// single-case select compiles to a cheap channel poll, while
			// re-entering the four-way select costs a full selectgo pass
			// per packet — measurably hot at the ~10^5 packets/s a busy
			// ring sustains. The drain is bounded so a saturated packet
			// stream cannot starve the heartbeat tick (liveness gossip and
			// the failure detector hang off it), and polls the control lane
			// first on every iteration so a heartbeat or token arriving
			// mid-backlog is served before the next data frame.
			for n := 0; n < 128; n++ {
				select {
				case pkt := <-r.ctlCh:
					r.handleCtl(pkt)
					continue
				default:
				}
				select {
				case pkt := <-r.packetCh:
					r.handlePacket(pkt)
					continue
				default:
				}
				break
			}
		case <-ticker.C:
			r.tick()
		}
	}
}

// handleCtl processes a control-lane packet. The token is the one control
// packet whose handling depends on data frames already received: computing
// the retransmission-request list while those frames sit unprocessed in
// packetCh would ask the ring to resend messages that are already here. So
// queued data is drained (bounded) before a token is handled — priority
// for liveness, arrival order for the token's view of the store.
func (r *Ring) handleCtl(pkt any) {
	if _, ok := pkt.(*token); ok {
		for n := 0; n < 256; n++ {
			select {
			case dp := <-r.packetCh:
				r.handlePacket(dp)
				continue
			default:
			}
			break
		}
	}
	r.handlePacket(pkt)
}

// --- Protocol ------------------------------------------------------------

// reportInvariant handles a broken internal invariant: fatal under
// StrictInvariants (tests), otherwise reported to the fault notifier so the
// layers above can react while the ring recovers.
func (r *Ring) reportInvariant(detail string) {
	if r.cfg.StrictInvariants {
		panic(detail)
	}
	if r.cfg.Faults != nil {
		r.cfg.Faults.Push(fault.Report{
			Kind:   fault.InvariantViolation,
			Node:   r.cfg.Node,
			Detail: detail,
		})
	}
}

// sendRaw transmits an encoded packet on the transport lane matching its
// wire classification: liveness, membership, and token traffic ride the
// control-plane priority lane so they never queue behind an
// application-multicast backlog (backends without a lane fall back to
// plain FIFO sends).
func (r *Ring) sendRaw(to string, raw []byte) {
	class := transport.ClassData
	switch Classify(raw) {
	case ClassHello, ClassMembership, ClassToken:
		class = transport.ClassControl
	}
	_ = transport.SendClass(r.port, to, r.cfg.Port, raw, class)
}

func (r *Ring) send(to string, pkt any) {
	if to == r.cfg.Node {
		// Loopback: handle inline to avoid a needless trip through the
		// fabric (and possible loss).
		r.handlePacket(pkt)
		return
	}
	raw, err := encodePacket(pkt)
	if err != nil {
		r.reportInvariant(err.Error())
		return
	}
	r.sendRaw(to, raw)
}

func (r *Ring) broadcastMembers(pkt any, includeSelf bool) {
	raw, err := encodePacket(pkt)
	if err != nil {
		r.reportInvariant(err.Error())
		if includeSelf {
			r.handlePacket(pkt)
		}
		return
	}
	for _, m := range r.members {
		if m == r.cfg.Node {
			continue
		}
		r.sendRaw(m, raw)
	}
	if includeSelf {
		r.handlePacket(pkt)
	}
}

func (r *Ring) aliveSet(now time.Time) []string {
	alive := []string{r.cfg.Node}
	if r.cfg.FixedFailDetect {
		for n, t := range r.lastHello {
			if n == r.cfg.Node {
				continue
			}
			if now.Sub(t) <= r.cfg.FailTimeout {
				alive = append(alive, n)
			}
		}
	} else {
		// Adaptive: a peer stays alive through the whole suspect phase —
		// only a confirmed death (phi past PhiFail AND the ConfirmGrace
		// dwell elapsed) removes it and triggers reformation.
		for n, s := range r.peerFD {
			if s.State() != fault.StateDead {
				alive = append(alive, n)
			}
		}
	}
	sort.Strings(alive)
	return alive
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (r *Ring) tick() {
	now := time.Now()
	r.evalPeers(now)
	// Gossip a heartbeat to the whole universe.
	h := &hello{From: r.cfg.Node, Alive: r.aliveSet(now), MaxEpoch: r.maxEpoch, Ring: r.ring}
	if raw, err := encodePacket(h); err == nil {
		for _, n := range r.cfg.Universe {
			if n != r.cfg.Node {
				r.sendRaw(n, raw)
			}
		}
	}

	// A degrade-mode invariant violation was detected since the last tick:
	// recover by reforming the ring (EVS recovery plus the state-transfer
	// machinery above re-synchronize the members).
	if r.needReform && r.state == stOperational {
		r.needReform = false
		r.enterForming(now)
		return
	}

	alive := r.aliveSet(now)
	switch r.state {
	case stOperational:
		if !sameStrings(alive, r.members) {
			r.enterForming(now)
			return
		}
		if r.parked {
			// Keepalive rotation: a parked token is deliberate silence, which
			// the other members cannot tell apart from token loss. One forced
			// rotation per heartbeat refreshes every member's lastToken (the
			// tick interval is far below TokenTimeout), drains any queue the
			// pre-park race left behind, and re-parks if the ring is still
			// idle — a handful of datagrams per heartbeat instead of a
			// continuous spin.
			r.unpark()
		}
		if now.Sub(r.lastToken) > r.cfg.TokenTimeout {
			r.enterForming(now)
			return
		}
		// Token retransmission: if the token is overdue by half the
		// timeout and we were the last holder, resend our retained copy.
		if r.retained != nil && r.retained.Ring == r.ring &&
			now.Sub(r.lastToken) > r.cfg.TokenTimeout/2 {
			r.send(r.retainedNext, r.retained)
		}
		// Eager-mode nudge retry: queued work with no token visit for a
		// while means our enqueue-time nudge raced the parking round (or was
		// lost) — ask the coordinator again.
		if r.cfg.IdleTokenDelay < 0 && r.ring.Coord != r.cfg.Node &&
			now.Sub(r.lastToken) > r.cfg.HeartbeatInterval/2 {
			r.mu.Lock()
			pending := len(r.sendQ) > 0
			r.mu.Unlock()
			if pending {
				r.send(r.ring.Coord, &nudge{Ring: r.ring, From: r.cfg.Node})
			}
		}
	case stForming:
		if len(alive) > 0 && alive[0] == r.cfg.Node && now.Sub(r.formingFrom) >= r.cfg.SettleDelay {
			r.proposeRing(alive)
		}
	case stAwaitAccepts:
		if now.Sub(r.formingFrom) > r.cfg.AcceptTimeout {
			// Some member never answered; fall back and let the live set
			// re-stabilize (dead members age out of lastHello).
			r.state = stForming
			r.formingFrom = now
		}
	}
}

func (r *Ring) enterForming(now time.Time) {
	r.state = stForming
	r.formingFrom = now
	r.retained = nil
	r.parked = false
}

func (r *Ring) proposeRing(members []string) {
	r.maxEpoch++
	r.formingRing = RingID{Epoch: r.maxEpoch, Coord: r.cfg.Node}
	r.formMembers = append([]string(nil), members...)
	r.accepts = make(map[string]*accept, len(members))
	r.state = stAwaitAccepts
	r.formingFrom = time.Now()
	p := &propose{Ring: r.formingRing, Members: r.formMembers}
	for _, m := range r.formMembers {
		r.send(m, p)
	}
}

func (r *Ring) handlePacket(pkt any) {
	switch v := pkt.(type) {
	case *hello:
		r.handleHello(v)
	case *propose:
		r.handlePropose(v)
	case *accept:
		r.handleAccept(v)
	case *install:
		r.handleInstall(v)
	case *token:
		r.handleToken(v)
	case *data:
		r.handleData(v)
	case *dataBatch:
		r.handleDataBatch(v)
	case *fwdToken:
		if v.ring == r.ring && r.state == stOperational {
			r.paceCancel = nil
			r.send(v.next, v.tok)
		}
	case *nudge:
		if v.Ring == r.ring {
			if r.parked {
				r.unpark()
				break
			}
			if r.paceCancel != nil {
				// Paced mode: release the in-progress idle hold so the
				// nudger's freshly queued work rides the next rotation.
				close(r.paceCancel)
				r.paceCancel = nil
			}
			// The nudge usually races the hold it means to prevent: the
			// nudger's multicast is queued while the token is in flight, so
			// the nudge lands here BEFORE this coordinator's visit arms the
			// hold (the token's backlog fields are a round stale and still
			// read idle). Remember the announcement so the next pacing
			// decision rotates instead of holding; a round that does real
			// work clears it.
			r.nudged = true
		}
	case *wake:
		r.handleWake()
	}
}

// handleWake reacts to freshly queued local work: it ends an idle-token
// hold early, unparks an eager-mode token, fast-paths a singleton ring
// past token pacing entirely, and — at a non-coordinator in eager mode —
// nudges the coordinator in case the token is parked there.
func (r *Ring) handleWake() {
	if r.state != stOperational {
		return
	}
	if len(r.members) == 1 && r.retained != nil {
		// Singleton ring: no token circulation is needed for ordering —
		// reprocess the retained token now and self-deliver in order,
		// instead of waiting out the self-token timer.
		cp := *r.retained
		cp.Rtr = append([]uint64(nil), r.retained.Rtr...)
		r.handleToken(&cp)
		return
	}
	if r.parked {
		r.unpark()
		return
	}
	if r.paceCancel != nil {
		close(r.paceCancel)
		r.paceCancel = nil
	}
	// Non-coordinator with fresh work: the token may be sitting at the
	// coordinator — parked (eager mode) or mid idle-hold (paced mode) —
	// and this node cannot tell directly. It can tell whether the ring
	// has looked idle from here: only after a workless visit can the
	// coordinator be holding or parking (both require consecutive idle
	// rounds, which this member witnessed as the token passed through).
	// Nudge exactly then — a stale nudge costs one ignored ~50-byte
	// datagram, while a suppressed one would stall this queue for the
	// full idle hold (paced) or until the next keepalive tick (eager) —
	// and stay silent on a visibly busy ring, where the rotating token
	// collects the work anyway and a nudge per multicast would tax the
	// hot path. Without the paced-mode nudge, any op whose first ring
	// traffic originates off the coordinator — notably an LF leader's
	// order multicast after a direct-lane submit — pays the whole
	// IdleTokenDelay on an idle ring.
	if r.ring.Coord != r.cfg.Node && r.quietRounds >= 1 {
		r.send(r.ring.Coord, &nudge{Ring: r.ring, From: r.cfg.Node})
	} else {
	}
}

// unpark resumes a parked eager-mode token with one forced rotation. The
// force matters: the re-handled visit sees the same idle ring the parking
// visit saw, and without it the coordinator would re-park on the spot —
// never draining a remote nudger's queue and never refreshing the other
// members' token-loss timers.
func (r *Ring) unpark() {
	r.parked = false
	if r.retained == nil || r.state != stOperational {
		return
	}
	cp := *r.retained
	cp.Rtr = append([]uint64(nil), r.retained.Rtr...)
	r.unparking = true
	r.handleToken(&cp)
	r.unparking = false
}

func (r *Ring) handleHello(h *hello) {
	now := time.Now()
	r.lastHello[h.From] = now
	if !r.cfg.FixedFailDetect && h.From != r.cfg.Node {
		s := r.peerFD[h.From]
		if s == nil {
			s = fault.NewSuspicion(fault.SuspicionConfig{
				PhiSuspect:   r.cfg.PhiSuspect,
				PhiFail:      r.cfg.PhiFail,
				MinWindow:    r.cfg.FailTimeout,
				MaxWindow:    r.cfg.MaxFailTimeout,
				ConfirmGrace: r.cfg.ConfirmGrace,
			})
			r.peerFD[h.From] = s
		}
		switch s.Observe(now) {
		case fault.TransRetract, fault.TransRecover:
			r.pushPeerEvent(h.From, fault.EventRecover, now)
		}
	}
	if h.MaxEpoch > r.maxEpoch {
		r.maxEpoch = h.MaxEpoch
	}
}

// evalPeers advances every peer's suspicion machine to now (adaptive
// detection only). Raised suspicions are reported via Faults so the
// replication tier can quarantine the peer; a confirmed death emits no
// report from here — it only changes aliveSet, and the resulting
// membership eviction is what the replication engine reports as the
// confirmed NodeCrash fault.
func (r *Ring) evalPeers(now time.Time) {
	if r.cfg.FixedFailDetect {
		return
	}
	for peer, s := range r.peerFD {
		if s.Eval(now) == fault.TransSuspect {
			r.pushPeerEvent(peer, fault.EventSuspect, now)
		}
	}
}

// pushPeerEvent reports a peer-liveness transition to the fault notifier.
func (r *Ring) pushPeerEvent(peer string, ev fault.Event, now time.Time) {
	if r.cfg.Faults == nil {
		return
	}
	r.cfg.Faults.Push(fault.Report{
		Kind:     fault.NodeCrash,
		Event:    ev,
		Node:     peer,
		Member:   peer,
		Detected: now,
	})
}

// makeAccept snapshots this node's old-ring state for the coordinator.
func (r *Ring) makeAccept(ringID RingID) *accept {
	stored := make([]storedMsg, 0, len(r.store))
	for _, m := range r.store {
		stored = append(stored, m)
	}
	sort.Slice(stored, func(i, j int) bool { return stored[i].Seq < stored[j].Seq })
	r.mu.Lock()
	groups := make([]string, 0, len(r.subs))
	for g := range r.subs {
		groups = append(groups, g)
	}
	r.mu.Unlock()
	sort.Strings(groups)
	return &accept{
		Ring:      ringID,
		From:      r.cfg.Node,
		OldRing:   r.ring,
		Delivered: r.delivered,
		Stored:    stored,
		Groups:    groups,
	}
}

func (r *Ring) handlePropose(p *propose) {
	if p.Ring.Epoch > r.maxEpoch {
		r.maxEpoch = p.Ring.Epoch
	}
	// Ignore proposals for rings not newer than the installed one.
	if !r.ring.Less(p.Ring) {
		return
	}
	// If we are coordinating a competing formation with a smaller id,
	// abandon it in favor of the larger.
	if r.state == stAwaitAccepts && p.Ring.Less(r.formingRing) {
		return
	}
	if r.state == stOperational {
		r.enterForming(time.Now())
	}
	r.send(p.Ring.Coord, r.makeAccept(p.Ring))
}

func (r *Ring) handleAccept(a *accept) {
	if r.state != stAwaitAccepts || a.Ring != r.formingRing {
		return
	}
	r.accepts[a.From] = a
	for _, m := range r.formMembers {
		if _, ok := r.accepts[m]; !ok {
			return
		}
	}
	r.finishFormation()
}

func (r *Ring) finishFormation() {
	// Union the old-ring states per old ring for EVS recovery.
	byRing := make(map[RingID]map[uint64]storedMsg)
	subs := make([]groupSub, 0)
	for _, a := range r.accepts {
		for _, g := range a.Groups {
			subs = append(subs, groupSub{Node: a.From, Group: g})
		}
		if a.OldRing.IsZero() {
			continue
		}
		set := byRing[a.OldRing]
		if set == nil {
			set = make(map[uint64]storedMsg)
			byRing[a.OldRing] = set
		}
		for _, m := range a.Stored {
			if _, ok := set[m.Seq]; !ok {
				set[m.Seq] = m
			}
		}
	}
	recovery := make([]recoverySet, 0, len(byRing))
	for rid, set := range byRing {
		msgs := make([]storedMsg, 0, len(set))
		for _, m := range set {
			msgs = append(msgs, m)
		}
		sort.Slice(msgs, func(i, j int) bool { return msgs[i].Seq < msgs[j].Seq })
		recovery = append(recovery, recoverySet{OldRing: rid, Msgs: msgs})
	}
	sort.Slice(recovery, func(i, j int) bool { return recovery[i].OldRing.Less(recovery[j].OldRing) })
	sort.Slice(subs, func(i, j int) bool {
		if subs[i].Node != subs[j].Node {
			return subs[i].Node < subs[j].Node
		}
		return subs[i].Group < subs[j].Group
	})

	ins := &install{
		Ring:     r.formingRing,
		Members:  r.formMembers,
		Recovery: recovery,
		Subs:     subs,
	}
	raw, err := encodePacket(ins)
	if err != nil {
		r.reportInvariant(err.Error())
		return
	}
	for _, m := range r.formMembers {
		if m != r.cfg.Node {
			r.sendRaw(m, raw)
		}
	}
	r.handleInstall(ins)
}

func (r *Ring) handleInstall(ins *install) {
	if !r.ring.Less(ins.Ring) {
		return
	}
	if ins.Ring.Epoch > r.maxEpoch {
		r.maxEpoch = ins.Ring.Epoch
	}

	// EVS recovery: deliver the suffix of old-ring messages we are
	// missing, in contiguous sequence order, before the new view. The
	// union stops being useful at the first hole — a message no new
	// member still stores (pruned after full dissemination in a component
	// this node was cut off from) is unrecoverable here, and skipping past
	// it would silently diverge this node from members that delivered it.
	// Delivery stops at the hole; the layers above re-synchronize such a
	// member by state transfer.
	for _, rs := range ins.Recovery {
		if rs.OldRing != r.ring || r.ring.IsZero() {
			continue
		}
		for _, m := range rs.Msgs {
			if m.Seq <= r.delivered {
				continue
			}
			if m.Seq != r.delivered+1 {
				break
			}
			r.delivered = m.Seq
			r.deliverMsg(r.ring, m)
		}
	}

	wasCoordinator := ins.Ring.Coord == r.cfg.Node
	// Old-ring contiguity tracking is no longer needed once its EVS
	// recovery (above) has run; drop it so the map stays bounded.
	for rid := range r.lastSeq {
		if rid != ins.Ring {
			delete(r.lastSeq, rid)
		}
	}
	r.ring = ins.Ring
	r.members = append([]string(nil), ins.Members...)
	r.state = stOperational
	r.store = make(map[uint64]storedMsg)
	r.delivered = 0
	r.pruned = 0
	r.lastRound = 0
	r.lastToken = time.Now()
	r.retained = nil
	r.idleRounds = 0
	r.quietRounds = 0
	r.lastSeqSeen = 0
	r.paceCancel = nil
	r.parked = false
	r.nudged = false

	// Rebuild group membership from the collected subscriptions.
	r.groupMembers = make(map[string]map[string]bool)
	for _, s := range ins.Subs {
		set := r.groupMembers[s.Group]
		if set == nil {
			set = make(map[string]bool)
			r.groupMembers[s.Group] = set
		}
		set[s.Node] = true
	}

	r.statMu.Lock()
	r.statForms++
	r.statMu.Unlock()

	r.publish()
	r.events.push(ViewChange{Ring: r.ring, Members: append([]string(nil), r.members...)})
	groups := make([]string, 0, len(r.groupMembers))
	for g := range r.groupMembers {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		r.events.push(GroupView{Ring: r.ring, Group: g, Members: r.groupMemberList(g)})
	}

	if wasCoordinator {
		t := &token{Ring: r.ring, Round: 0, Seq: 0, Aru: math.MaxUint64, LastAru: 0}
		r.handleToken(t)
	}
}

func (r *Ring) groupMemberList(g string) []string {
	set := r.groupMembers[g]
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// publish refreshes the snapshot accessors.
func (r *Ring) publish() {
	r.mu.Lock()
	r.pubRing = r.ring
	r.pubMembers = append([]string(nil), r.members...)
	r.pubGroups = make(map[string][]string, len(r.groupMembers))
	for g := range r.groupMembers {
		r.pubGroups[g] = r.groupMemberList(g)
	}
	r.mu.Unlock()
}

func (r *Ring) successor() string {
	idx := sort.SearchStrings(r.members, r.cfg.Node)
	next := (idx + 1) % len(r.members)
	return r.members[next]
}

func (r *Ring) handleToken(t *token) {
	if r.state != stOperational || t.Ring != r.ring {
		return
	}
	var prevBacklog uint32
	if r.ring.Coord == r.cfg.Node {
		// The coordinator opens a new round: finalize last round's aru and
		// collect the backlog members reported while the round circulated
		// (drives the eager-release decision below).
		t.Round++
		t.LastAru = t.Aru
		if t.LastAru == math.MaxUint64 {
			t.LastAru = 0
		}
		t.Aru = math.MaxUint64
		prevBacklog = t.Backlog
		t.Backlog = 0
	}
	if t.Round <= r.lastRound {
		return // duplicate (token retransmission raced the original)
	}
	r.lastRound = t.Round
	r.lastToken = time.Now()

	// Serve retransmission requests we can satisfy.
	if len(t.Rtr) > 0 {
		remaining := t.Rtr[:0]
		for _, seq := range t.Rtr {
			if m, ok := r.store[seq]; ok {
				r.broadcastMembers(&data{Ring: r.ring, Seq: m.Seq, Group: m.Group, Sender: m.Sender, Payload: m.Payload, Resend: true}, false)
				r.statMu.Lock()
				r.statRetrans++
				r.statMu.Unlock()
			} else {
				remaining = append(remaining, seq)
			}
		}
		t.Rtr = remaining
	}
	// Request what we are missing.
	have := func(seq uint64) bool {
		_, ok := r.store[seq]
		return ok || seq <= r.delivered
	}
	for seq := r.delivered + 1; seq <= t.Seq; seq++ {
		if !have(seq) && !containsSeq(t.Rtr, seq) {
			t.Rtr = append(t.Rtr, seq)
		}
	}

	// Multicast queued messages, bounded per visit by both count and
	// bytes (token-driven flow control).
	r.mu.Lock()
	take, bytes := 0, 0
	for take < len(r.sendQ) && take < r.cfg.MaxBatch {
		bytes += len(r.sendQ[take].payload)
		take++
		if bytes >= r.cfg.MaxBatchBytes {
			break
		}
	}
	batch := r.sendQ[:take]
	if take == len(r.sendQ) {
		r.sendQ = nil
	} else {
		r.sendQ = append([]outMsg(nil), r.sendQ[take:]...)
	}
	leftover := len(r.sendQ)
	if take > 0 {
		r.sendCond.Broadcast() // queue shrank: release backpressured senders
	}
	r.mu.Unlock()
	if len(batch) > 0 {
		r.sendBatch(t, batch)
	}
	// Report work this visit could not drain, so the coordinator keeps the
	// token rotating eagerly instead of pacing.
	t.Backlog += uint32(leftover)

	// Every member tracks how quiet the ring looks from its own visits:
	// nothing sent here, nothing requested, nothing outstanding, no
	// backlog reported so far this round, and — the signal the others
	// miss — no sequence progress since the last visit. The progress
	// check matters because delivery outruns the token on a fast fabric:
	// by the time the token returns, another member's multicast is
	// already delivered everywhere and Seq == delivered again, so a
	// delivered-only predicate reads a working ring as idle. handleWake
	// consults the counter to decide whether fresh local work needs a
	// nudge — on a visibly busy ring the token is rotating and will
	// collect the work anyway, so nudging every multicast would just tax
	// the hot path.
	quiet := len(batch) == 0 && len(t.Rtr) == 0 && t.Seq == r.delivered &&
		t.Backlog == 0 && t.Seq == r.lastSeqSeen
	r.lastSeqSeen = t.Seq
	if quiet {
		r.quietRounds++
	} else {
		r.quietRounds = 0
	}

	// Aru bookkeeping and log pruning.
	if r.delivered < t.Aru {
		t.Aru = r.delivered
	}
	if t.LastAru > r.pruned && t.LastAru != math.MaxUint64 {
		for seq := r.pruned + 1; seq <= t.LastAru; seq++ {
			delete(r.store, seq)
		}
		r.pruned = t.LastAru
	}

	next := r.successor()
	cp := *t
	cp.Rtr = append([]uint64(nil), t.Rtr...)
	r.retained = &cp
	r.retainedNext = next
	// Idle pacing with eager release under load: withhold the forward only
	// when this round did no work (nothing sent, requested, or outstanding
	// locally), no member reported backlog — neither during the round that
	// just closed nor at this visit — and the ring has already completed a
	// full idle round. Requiring two consecutive idle rounds makes the
	// first post-traffic rotation eager, so an invocation queued while the
	// previous one was being delivered pays one token rotation, not an
	// idle hold plus a rotation.
	if r.ring.Coord == r.cfg.Node {
		// quiet (computed above) includes the sequence-progress check:
		// without it, traffic multicast by *other* members is invisible
		// here — delivery completes before the token returns, so
		// Seq == delivered again — and a coordinator that never sends
		// would re-arm the hold every round, throttling the ring to one
		// rotation per hold.
		idle := quiet && prevBacklog == 0
		if idle {
			r.idleRounds++
		} else {
			r.idleRounds = 0
			r.nudged = false // the announced work is flowing; holds may resume
		}
		if idle && next != r.cfg.Node && !r.unparking {
			if r.cfg.IdleTokenDelay > 0 && r.idleRounds >= 2 {
				if r.nudged {
					// A member announced fresh work that this visit's (stale)
					// backlog fields don't show yet: rotate once eagerly so the
					// next visit at the nudger drains it, instead of arming a
					// hold the nudge already tried to prevent.
					r.nudged = false
				} else {
					r.paceForward(&cp, next)
					return
				}
			}
			if r.cfg.IdleTokenDelay < 0 && r.idleRounds >= eagerParkRounds {
				// Eager mode: a genuinely quiet ring parks the token here
				// instead of spinning it (demand-driven circulation). It
				// resumes immediately on local work (handleWake), on a
				// member's nudge, or — the backstop that keeps every
				// member's token-loss detector satisfied — once per
				// heartbeat tick. The threshold is deliberately much higher
				// than the paced mode's two rounds: eager rotations are the
				// mechanism that picks up work queued in the µs-scale gaps
				// of an active op pipeline (a park/nudge/unpark cycle there
				// costs more than the spin it saves), so only sustained
				// silence — tens of workless rounds, far longer than any
				// in-pipeline gap — parks the ring.
				r.parked = true
				return
			}
		}
	}
	if next == r.cfg.Node {
		// Singleton ring: nothing to pass; reprocess on next tick only if
		// there is pending work, otherwise the retained token is resent by
		// the timeout path. Pending work re-enqueues the token through the
		// control lane rather than recursing: a producer that refills the
		// queue as fast as visits drain it would recurse without bound and
		// starve the heartbeat tick — no hello gossip, so a singleton under
		// sustained load could never remerge with returning peers.
		r.mu.Lock()
		pending := len(r.sendQ) > 0
		r.mu.Unlock()
		if pending {
			select {
			case r.ctlCh <- &cp:
			default:
				// Lane momentarily full: the retained-token resend on the
				// timeout path recovers circulation.
			}
		} else {
			// Keep the token "arriving" so the timeout never fires.
			r.lastToken = time.Now()
			r.selfToken(&cp)
		}
		return
	}
	r.send(next, &cp)
}

// sendBatch assigns contiguous sequence numbers to one token visit's
// batch, logs every message for retransmission, and multicasts the batch
// packed into as few fabric datagrams as MaxFrameBytes allows (or as
// legacy per-message data packets when coalescing is off or the ring is a
// singleton with no one to send to).
func (r *Ring) sendBatch(t *token, batch []outMsg) {
	r.statMu.Lock()
	r.statSent += uint64(len(batch))
	r.statMu.Unlock()
	if r.cfg.NoCoalesce || len(r.members) == 1 {
		for _, om := range batch {
			t.Seq++
			m := storedMsg{Seq: t.Seq, Group: om.group, Sender: r.cfg.Node, Payload: om.payload}
			r.store[m.Seq] = m
			if len(r.members) > 1 {
				r.broadcastMembers(&data{Ring: r.ring, Seq: m.Seq, Group: m.Group, Sender: m.Sender, Payload: m.Payload}, false)
			}
			r.advanceDelivery()
		}
		return
	}
	i := 0
	for i < len(batch) {
		firstSeq := t.Seq + 1
		groups := make([]string, 0, len(batch)-i)
		payloads := make([][]byte, 0, len(batch)-i)
		frameBytes := 0
		for i < len(batch) {
			sz := len(batch[i].payload)
			if len(payloads) > 0 && frameBytes+sz > r.cfg.MaxFrameBytes {
				break // frame full; an oversized single still goes alone
			}
			t.Seq++
			m := storedMsg{Seq: t.Seq, Group: batch[i].group, Sender: r.cfg.Node, Payload: batch[i].payload}
			r.store[m.Seq] = m
			groups = append(groups, m.Group)
			payloads = append(payloads, m.Payload)
			frameBytes += sz
			i++
		}
		r.broadcastMembers(&dataBatch{
			Ring:     r.ring,
			Sender:   r.cfg.Node,
			FirstSeq: firstSeq,
			Groups:   groups,
			Payloads: payloads,
		}, false)
		if len(payloads) > 1 {
			r.statMu.Lock()
			r.statBatches++
			r.statMu.Unlock()
		}
	}
	r.advanceDelivery()
}

// paceForward delays a token forward without blocking the protocol loop.
// The hold ends early if local work arrives (handleWake closes the cancel
// channel).
func (r *Ring) paceForward(t *token, next string) {
	cancel := make(chan struct{})
	r.paceCancel = cancel
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		timer := time.NewTimer(r.cfg.IdleTokenDelay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-cancel:
		case <-r.stopCh:
			return
		}
		select {
		case r.ctlCh <- &fwdToken{ring: t.Ring, tok: t, next: next}:
		case <-r.stopCh:
		}
	}()
}

// selfToken re-enqueues the token to ourselves asynchronously so a
// singleton ring keeps a live token without spinning.
func (r *Ring) selfToken(t *token) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		timer := time.NewTimer(r.cfg.HeartbeatInterval)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-r.stopCh:
			return
		}
		select {
		case r.ctlCh <- t:
		case <-r.stopCh:
		}
	}()
}

func containsSeq(list []uint64, seq uint64) bool {
	for _, s := range list {
		if s == seq {
			return true
		}
	}
	return false
}

// handleDataBatch unpacks a coalesced frame: each sub-message is stored
// and delivered exactly as if it had arrived as its own data packet, in
// contiguous sequence order starting at FirstSeq.
func (r *Ring) handleDataBatch(b *dataBatch) {
	if b.Ring != r.ring {
		return
	}
	for i, p := range b.Payloads {
		seq := b.FirstSeq + uint64(i)
		if seq <= r.delivered {
			continue
		}
		if _, ok := r.store[seq]; ok {
			continue
		}
		r.store[seq] = storedMsg{Seq: seq, Group: b.Groups[i], Sender: b.Sender, Payload: p}
	}
	// Same membership-freeze rule as handleData: see the comment there.
	if r.state == stOperational {
		r.advanceDelivery()
	}
}

func (r *Ring) handleData(d *data) {
	if d.Ring != r.ring {
		return
	}
	if d.Seq <= r.delivered {
		return
	}
	if _, ok := r.store[d.Seq]; ok {
		return
	}
	r.store[d.Seq] = storedMsg{Seq: d.Seq, Group: d.Group, Sender: d.Sender, Payload: d.Payload}
	// Delivery freezes while a membership change is in progress: the
	// accept this node sent snapshotted its delivery point, and advancing
	// past it would diverge from the recovery set the coordinator builds
	// (the role Totem's transitional configuration plays). Late messages
	// are still stored so they reach the union via this node's next
	// accept if the formation restarts.
	if r.state == stOperational {
		r.advanceDelivery()
	}
}

func (r *Ring) advanceDelivery() {
	for {
		m, ok := r.store[r.delivered+1]
		if !ok {
			return
		}
		r.delivered++
		r.deliverMsg(r.ring, m)
	}
}

// deliverMsg hands one ordered message to the application layer (or applies
// it, for control messages). Called both in steady state and during EVS
// recovery (with the old ring id).
//
// The delivery-contiguity invariant (every ring's messages delivered with
// consecutive sequence numbers) is checked on every delivery. A violation is
// a protocol bug, not a recoverable network condition: strict rings abort;
// production rings skip the offending delivery, report the violation, and
// schedule a ring reformation so state transfer re-synchronizes the member.
func (r *Ring) deliverMsg(rid RingID, m storedMsg) {
	if last, ok := r.lastSeq[rid]; ok && m.Seq != last+1 {
		r.reportInvariant(fmt.Sprintf("%s: non-contiguous delivery ring %v: %d after %d", r.cfg.Node, rid, m.Seq, last))
		r.needReform = true
		return
	}
	r.lastSeq[rid] = m.Seq
	r.statMu.Lock()
	r.statDelivered++
	r.statMu.Unlock()
	if r.cfg.Observer != nil {
		r.cfg.Observer(Deliver{
			MsgID:   MsgIDFor(rid.Epoch, m.Seq),
			Ring:    rid,
			Seq:     m.Seq,
			Group:   m.Group,
			Sender:  m.Sender,
			Payload: m.Payload,
		})
	}
	if m.Group == ctlGroup {
		op, node, group, err := decodeCtl(m.Payload)
		if err != nil {
			return
		}
		set := r.groupMembers[group]
		switch op {
		case ctlJoin:
			if set == nil {
				set = make(map[string]bool)
				r.groupMembers[group] = set
			}
			set[node] = true
		case ctlLeave:
			delete(set, node)
		}
		r.publish()
		r.events.push(GroupView{Ring: rid, Group: group, Members: r.groupMemberList(group)})
		return
	}
	r.mu.Lock()
	subscribed := r.subs[m.Group]
	r.mu.Unlock()
	if !subscribed && !r.cfg.Promiscuous {
		return
	}
	r.events.push(Deliver{
		MsgID:   MsgIDFor(rid.Epoch, m.Seq),
		Ring:    rid,
		Seq:     m.Seq,
		Group:   m.Group,
		Sender:  m.Sender,
		Payload: m.Payload,
	})
}
