package totem

import (
	"fmt"

	"repro/internal/cdr"
)

// pktType enumerates protocol packet kinds.
type pktType uint8

const (
	pktHello pktType = iota + 1
	pktPropose
	pktAccept
	pktInstall
	pktToken
	pktData
	pktDataBatch
	pktNudge
	pktDirect
)

// RingID identifies one ring incarnation. Epochs grow monotonically; the
// coordinator name disambiguates concurrent formations in different
// partition components (which necessarily have different coordinators).
type RingID struct {
	Epoch uint64
	Coord string
}

// Less orders ring ids (by epoch, then coordinator).
func (r RingID) Less(o RingID) bool {
	if r.Epoch != o.Epoch {
		return r.Epoch < o.Epoch
	}
	return r.Coord < o.Coord
}

// IsZero reports whether the id is unset.
func (r RingID) IsZero() bool { return r.Epoch == 0 && r.Coord == "" }

// String renders the id as epoch@coord.
func (r RingID) String() string { return fmt.Sprintf("%d@%s", r.Epoch, r.Coord) }

// hello is the gossip heartbeat used for liveness and remerge detection.
type hello struct {
	From     string
	Alive    []string // nodes From currently hears
	MaxEpoch uint64   // highest ring epoch From has seen
	Ring     RingID   // ring From is operating in (zero when forming)
}

// propose is the coordinator's ring formation proposal.
type propose struct {
	Ring    RingID
	Members []string
}

// storedMsg is an ordered message retained for retransmission/recovery.
type storedMsg struct {
	Seq     uint64
	Group   string
	Sender  string
	Payload []byte
}

// accept is a member's answer to a proposal, carrying its old-ring state
// for extended-virtual-synchrony recovery plus its local group
// subscriptions.
type accept struct {
	Ring      RingID
	From      string
	OldRing   RingID
	Delivered uint64 // highest contiguously delivered seq in OldRing
	Stored    []storedMsg
	Groups    []string
}

// recoverySet carries, for one old ring, the union of messages any new
// member of that old ring still holds; members deliver the suffix they are
// missing before installing the new view.
type recoverySet struct {
	OldRing RingID
	Msgs    []storedMsg // sorted by Seq ascending
}

// groupSub records that a node is subscribed to a group.
type groupSub struct {
	Node  string
	Group string
}

// install finalizes formation: members recover, deliver the view change,
// and start circulating the token.
type install struct {
	Ring     RingID
	Members  []string
	Recovery []recoverySet
	Subs     []groupSub
}

// token is the circulating ring token.
type token struct {
	Ring    RingID
	Round   uint64
	Seq     uint64   // highest sequence number assigned on this ring
	Aru     uint64   // min contiguous-received over nodes visited this round
	LastAru uint64   // final Aru of the previous round (safe to prune <=)
	Backlog uint32   // messages left queued ring-wide this round (eager release)
	Rtr     []uint64 // sequence numbers requested for retransmission
}

// nudge asks the coordinator to resume token circulation: under eager
// rotation (negative IdleTokenDelay) an idle ring parks the token at the
// coordinator instead of spinning it, and under paced rotation (positive)
// the coordinator withholds the token for the idle delay; a member that
// queues new work sends a nudge so the token starts rotating again
// immediately (instead of waiting out the hold or the coordinator's
// heartbeat-paced keepalive rotation). Stale nudges — ring already
// rotating, or from an old ring — are ignored, so senders may nudge on
// suspicion.
type nudge struct {
	Ring RingID
	From string
}

// direct is an unordered point-to-point message between two ring endpoints.
// It bypasses the token and the total order entirely — no sequence number,
// no store, no retransmission — and is delivered to the registered direct
// handler (Ring.SetDirectHandler) on its own goroutine, so its latency is
// decoupled from token pacing. Reliability is the application's problem
// (request/response layers retry or fall back to the ordered path), exactly
// like UDP.
type direct struct {
	From    string
	Group   string
	Payload []byte
}

// data is an ordered multicast message (original or retransmission).
type data struct {
	Ring    RingID
	Seq     uint64
	Group   string
	Sender  string
	Payload []byte
	Resend  bool
}

// dataBatch is a coalesced frame: several ordered messages with contiguous
// sequence numbers (FirstSeq, FirstSeq+1, ...), all originated by one token
// holder during a single token visit, packed into one fabric datagram.
// Receivers unpack and deliver each sub-message exactly as if it had
// arrived in its own data packet. Retransmissions always travel as single
// data packets re-framed from the message log, so the recovery path
// addresses individual sequence numbers regardless of original framing.
type dataBatch struct {
	Ring     RingID
	Sender   string
	FirstSeq uint64
	Groups   []string // per sub-message, parallel to Payloads
	Payloads [][]byte
}

func encodeRingID(e *cdr.Encoder, r RingID) {
	e.WriteULongLong(r.Epoch)
	e.WriteString(r.Coord)
}

func decodeRingID(d *cdr.Decoder) (RingID, error) {
	var r RingID
	var err error
	if r.Epoch, err = d.ReadULongLong(); err != nil {
		return r, err
	}
	if r.Coord, err = d.ReadStringInterned(); err != nil {
		return r, err
	}
	return r, nil
}

func encodeStrings(e *cdr.Encoder, ss []string) {
	e.WriteULong(uint32(len(ss)))
	for _, s := range ss {
		e.WriteString(s)
	}
}

func decodeStrings(d *cdr.Decoder) ([]string, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("totem: implausible string count %d", n)
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		s, err := d.ReadStringInterned()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func encodeStoredMsgs(e *cdr.Encoder, ms []storedMsg) {
	e.WriteULong(uint32(len(ms)))
	for _, m := range ms {
		e.WriteULongLong(m.Seq)
		e.WriteString(m.Group)
		e.WriteString(m.Sender)
		e.WriteOctetSeq(m.Payload)
	}
}

func decodeStoredMsgs(d *cdr.Decoder) ([]storedMsg, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("totem: implausible message count %d", n)
	}
	out := make([]storedMsg, 0, n)
	for i := uint32(0); i < n; i++ {
		var m storedMsg
		if m.Seq, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if m.Group, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if m.Sender, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if m.Payload, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// PacketClass coarsely classifies an encoded ring datagram payload without
// decoding it, so fault-injection filters can target specific traffic (the
// circulating token, coalesced batch frames) from outside the package.
type PacketClass uint8

// Packet classes.
const (
	ClassUnknown PacketClass = iota
	ClassHello
	ClassMembership // propose / accept / install
	ClassToken
	ClassData
	ClassDataBatch
	ClassDirect
)

// Classify inspects the leading type octet of an encoded ring datagram.
func Classify(payload []byte) PacketClass {
	if len(payload) == 0 {
		return ClassUnknown
	}
	switch pktType(payload[0]) {
	case pktHello:
		return ClassHello
	case pktPropose, pktAccept, pktInstall:
		return ClassMembership
	case pktToken:
		return ClassToken
	case pktData:
		return ClassData
	case pktDataBatch:
		return ClassDataBatch
	case pktDirect:
		return ClassDirect
	default:
		return ClassUnknown
	}
}

// encodePacket marshals any protocol packet into a datagram payload. The
// buffer comes from the shared encoder pool and its ownership transfers to
// the caller (and onward to the fabric, which retains datagram payloads
// without copying). An unknown packet type is a local programming error and
// is reported as such rather than panicking on the network path.
func encodePacket(p any) ([]byte, error) {
	e := cdr.GetEncoderSized(cdr.BigEndian, packetSizeHint(p))
	switch v := p.(type) {
	case *hello:
		e.WriteOctet(byte(pktHello))
		e.WriteString(v.From)
		encodeStrings(e, v.Alive)
		e.WriteULongLong(v.MaxEpoch)
		encodeRingID(e, v.Ring)
	case *propose:
		e.WriteOctet(byte(pktPropose))
		encodeRingID(e, v.Ring)
		encodeStrings(e, v.Members)
	case *accept:
		e.WriteOctet(byte(pktAccept))
		encodeRingID(e, v.Ring)
		e.WriteString(v.From)
		encodeRingID(e, v.OldRing)
		e.WriteULongLong(v.Delivered)
		encodeStoredMsgs(e, v.Stored)
		encodeStrings(e, v.Groups)
	case *install:
		e.WriteOctet(byte(pktInstall))
		encodeRingID(e, v.Ring)
		encodeStrings(e, v.Members)
		e.WriteULong(uint32(len(v.Recovery)))
		for _, rs := range v.Recovery {
			encodeRingID(e, rs.OldRing)
			encodeStoredMsgs(e, rs.Msgs)
		}
		e.WriteULong(uint32(len(v.Subs)))
		for _, s := range v.Subs {
			e.WriteString(s.Node)
			e.WriteString(s.Group)
		}
	case *token:
		e.WriteOctet(byte(pktToken))
		encodeRingID(e, v.Ring)
		e.WriteULongLong(v.Round)
		e.WriteULongLong(v.Seq)
		e.WriteULongLong(v.Aru)
		e.WriteULongLong(v.LastAru)
		e.WriteULong(v.Backlog)
		e.WriteULong(uint32(len(v.Rtr)))
		for _, s := range v.Rtr {
			e.WriteULongLong(s)
		}
	case *data:
		e.WriteOctet(byte(pktData))
		encodeRingID(e, v.Ring)
		e.WriteULongLong(v.Seq)
		e.WriteString(v.Group)
		e.WriteString(v.Sender)
		e.WriteBool(v.Resend)
		e.WriteOctetSeq(v.Payload)
	case *dataBatch:
		e.WriteOctet(byte(pktDataBatch))
		encodeRingID(e, v.Ring)
		e.WriteString(v.Sender)
		e.WriteULongLong(v.FirstSeq)
		e.WriteULong(uint32(len(v.Payloads)))
		for i, p := range v.Payloads {
			e.WriteString(v.Groups[i])
			e.WriteOctetSeq(p)
		}
	case *nudge:
		e.WriteOctet(byte(pktNudge))
		encodeRingID(e, v.Ring)
		e.WriteString(v.From)
	case *direct:
		e.WriteOctet(byte(pktDirect))
		e.WriteString(v.From)
		e.WriteString(v.Group)
		e.WriteOctetSeq(v.Payload)
	default:
		e.Release()
		return nil, fmt.Errorf("totem: encodePacket: unknown packet %T", p)
	}
	out := e.TakeBytes()
	e.Release()
	return out, nil
}

// firstOctet returns b[0] (the packet-type tag) or an invalid tag for an
// empty datagram.
func firstOctet(b []byte) byte {
	if len(b) == 0 {
		return 0xff
	}
	return b[0]
}

// packetSizeHint returns an upper bound on the encoded size of the
// packets that dominate the wire — data frames (so a coalesced batch
// marshals into one exact-size buffer) and the token (so the packet that
// circulates continuously under eager rotation does not pay the pool's
// 512-byte seed every hop). Other packets return 0: formation traffic is
// rare and the default seed fits it.
func packetSizeHint(p any) int {
	switch v := p.(type) {
	case *data:
		return 64 + len(v.Group) + len(v.Sender) + len(v.Payload)
	case *dataBatch:
		n := 64 + len(v.Sender)
		for i, pl := range v.Payloads {
			n += 16 + len(v.Groups[i]) + len(pl)
		}
		return n
	case *token:
		return 96 + len(v.Ring.Coord) + 8*len(v.Rtr)
	case *direct:
		return 32 + len(v.From) + len(v.Group) + len(v.Payload)
	}
	return 0
}

// decodePacket unmarshals a datagram payload. Every variable-length field
// is copied out, so the caller may reuse b (the transport Recv contract).
func decodePacket(b []byte) (any, error) {
	return decodePacketIn(b, false)
}

// decodePacketOwned unmarshals a datagram payload the caller owns and
// will never modify: payload-bearing fields alias b instead of copying.
// One data batch then costs a single buffer (b itself, copied once off
// the transport's receive buffer) instead of an allocation per message —
// the difference between ~1 and ~2·batch allocations per delivered frame
// on the multicast hot path.
func decodePacketOwned(b []byte) (any, error) {
	return decodePacketIn(b, true)
}

func decodePacketIn(b []byte, owned bool) (any, error) {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	if owned {
		d.SetZeroCopy(true)
	}
	t, err := d.ReadOctet()
	if err != nil {
		return nil, err
	}
	switch pktType(t) {
	case pktHello:
		v := &hello{}
		if v.From, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.Alive, err = decodeStrings(d); err != nil {
			return nil, err
		}
		if v.MaxEpoch, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Ring, err = decodeRingID(d); err != nil {
			return nil, err
		}
		return v, nil
	case pktPropose:
		v := &propose{}
		if v.Ring, err = decodeRingID(d); err != nil {
			return nil, err
		}
		if v.Members, err = decodeStrings(d); err != nil {
			return nil, err
		}
		return v, nil
	case pktAccept:
		v := &accept{}
		if v.Ring, err = decodeRingID(d); err != nil {
			return nil, err
		}
		if v.From, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.OldRing, err = decodeRingID(d); err != nil {
			return nil, err
		}
		if v.Delivered, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Stored, err = decodeStoredMsgs(d); err != nil {
			return nil, err
		}
		if v.Groups, err = decodeStrings(d); err != nil {
			return nil, err
		}
		return v, nil
	case pktInstall:
		v := &install{}
		if v.Ring, err = decodeRingID(d); err != nil {
			return nil, err
		}
		if v.Members, err = decodeStrings(d); err != nil {
			return nil, err
		}
		n, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		if n > 1<<16 {
			return nil, fmt.Errorf("totem: implausible recovery set count %d", n)
		}
		for i := uint32(0); i < n; i++ {
			var rs recoverySet
			if rs.OldRing, err = decodeRingID(d); err != nil {
				return nil, err
			}
			if rs.Msgs, err = decodeStoredMsgs(d); err != nil {
				return nil, err
			}
			v.Recovery = append(v.Recovery, rs)
		}
		ns, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		if ns > 1<<20 {
			return nil, fmt.Errorf("totem: implausible subscription count %d", ns)
		}
		for i := uint32(0); i < ns; i++ {
			var s groupSub
			if s.Node, err = d.ReadStringInterned(); err != nil {
				return nil, err
			}
			if s.Group, err = d.ReadStringInterned(); err != nil {
				return nil, err
			}
			v.Subs = append(v.Subs, s)
		}
		return v, nil
	case pktToken:
		v := &token{}
		if v.Ring, err = decodeRingID(d); err != nil {
			return nil, err
		}
		if v.Round, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Seq, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Aru, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.LastAru, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Backlog, err = d.ReadULong(); err != nil {
			return nil, err
		}
		n, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("totem: implausible rtr count %d", n)
		}
		for i := uint32(0); i < n; i++ {
			s, err := d.ReadULongLong()
			if err != nil {
				return nil, err
			}
			v.Rtr = append(v.Rtr, s)
		}
		return v, nil
	case pktData:
		v := &data{}
		if v.Ring, err = decodeRingID(d); err != nil {
			return nil, err
		}
		if v.Seq, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		if v.Group, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.Sender, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.Resend, err = d.ReadBool(); err != nil {
			return nil, err
		}
		if v.Payload, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		return v, nil
	case pktDataBatch:
		v := &dataBatch{}
		if v.Ring, err = decodeRingID(d); err != nil {
			return nil, err
		}
		if v.Sender, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.FirstSeq, err = d.ReadULongLong(); err != nil {
			return nil, err
		}
		n, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("totem: implausible batch count %d", n)
		}
		v.Groups = make([]string, 0, n)
		v.Payloads = make([][]byte, 0, n)
		for i := uint32(0); i < n; i++ {
			g, err := d.ReadStringInterned()
			if err != nil {
				return nil, err
			}
			p, err := d.ReadOctetSeq()
			if err != nil {
				return nil, err
			}
			v.Groups = append(v.Groups, g)
			v.Payloads = append(v.Payloads, p)
		}
		return v, nil
	case pktNudge:
		v := &nudge{}
		if v.Ring, err = decodeRingID(d); err != nil {
			return nil, err
		}
		if v.From, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		return v, nil
	case pktDirect:
		v := &direct{}
		if v.From, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.Group, err = d.ReadStringInterned(); err != nil {
			return nil, err
		}
		if v.Payload, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		return v, nil
	default:
		return nil, fmt.Errorf("totem: unknown packet type %d", t)
	}
}
