package giop

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/cdr"
)

// Writer emits GIOP messages on a byte stream, fragmenting bodies larger
// than MaxFrame into an initial message plus Fragment messages, as GIOP 1.2
// allows. Writer is not safe for concurrent use; connections serialize
// writes above this layer.
type Writer struct {
	w        io.Writer
	MaxFrame int // largest frame body emitted; 0 means DefaultMaxFrame
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (w *Writer) maxFrame() int {
	if w.MaxFrame <= 0 {
		return DefaultMaxFrame
	}
	return w.MaxFrame
}

// WriteMessage encodes and writes m, fragmenting if necessary. The frame
// is built in a pooled buffer that is recycled after the io.Writer call
// returns (io.Writer implementations must not retain p), so steady-state
// writes on a connection allocate nothing for framing.
func (w *Writer) WriteMessage(m Message) error {
	e := cdr.GetEncoder(cdr.BigEndian)
	defer e.Release()
	writeHeader(e, m.msgType(), 0, false)
	m.encodeBody(e)
	frame := e.Bytes()
	patchSize(frame)
	limit := w.maxFrame() + HeaderLen
	if len(frame) <= limit {
		_, err := w.w.Write(frame)
		return err
	}

	// Fragment: first frame carries the header with the more-fragments flag
	// and the leading body chunk; subsequent frames are Fragment messages.
	// GIOP 1.2 fragments carry the request id first so receivers can
	// interleave; we keep the simpler whole-stream reassembly since our
	// connections never interleave fragmented messages.
	first := frame[:limit]
	hdr := make([]byte, HeaderLen)
	copy(hdr, first[:HeaderLen])
	hdr[6] |= flagMoreFrags
	body := first[HeaderLen:]
	out := append(hdr, body...)
	patchSize(out)
	if _, err := w.w.Write(out); err != nil {
		return err
	}

	rest := frame[limit:]
	for len(rest) > 0 {
		n := len(rest)
		more := false
		if n > w.maxFrame() {
			n = w.maxFrame()
			more = true
		}
		fe := cdr.GetEncoder(cdr.BigEndian)
		writeHeader(fe, MsgFragment, 0, more)
		fe.WriteRaw(rest[:n])
		frag := fe.Bytes()
		patchSize(frag)
		_, err := w.w.Write(frag)
		fe.Release()
		if err != nil {
			return err
		}
		rest = rest[n:]
	}
	return nil
}

// --- read-side frame pool ----------------------------------------------------

// framePool recycles read-side frame buffers, mirroring the encoder pool in
// package cdr (GetEncoder/Release): a steady-state server reads every
// request into a recycled buffer instead of allocating one per frame.
// Buffers above maxPooledFrame are left to the GC so one huge state-transfer
// frame does not stay pinned in the pool forever.
const maxPooledFrame = 1 << 17

var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getFrame(n int) []byte {
	bp := framePool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return (*bp)[:n]
}

// ReleaseFrame returns a frame obtained from ReadMessagePooled to the pool.
// The message decoded from it — and every byte slice aliasing it (Body,
// ObjectKey, service context data) — must be dead by then. nil is a no-op.
func ReleaseFrame(frame []byte) {
	if frame == nil || cap(frame) > maxPooledFrame {
		return
	}
	frame = frame[:0]
	framePool.Put(&frame)
}

// Reader decodes GIOP messages from a byte stream, reassembling fragments.
type Reader struct {
	r   io.Reader
	hdr [HeaderLen]byte
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadMessage reads the next complete message, transparently stitching
// Fragment continuations onto their initial frame. The frame is heap
// allocated and owned by the message: use this when the message escapes to
// callers with no lifecycle (client replies). Dispatch loops with a clear
// end-of-request point should prefer ReadMessagePooled.
func (r *Reader) ReadMessage() (Message, error) {
	m, _, err := r.readMessage(func(n int) []byte { return make([]byte, n) }, false)
	return m, err
}

// ReadMessagePooled is ReadMessage with the frame taken from the package
// frame pool and decoded zero-copy: the message's byte fields are views
// into the returned frame. The caller must hand the frame to ReleaseFrame
// once the message and everything aliasing it are dead. On error no frame
// is retained and there is nothing to release.
func (r *Reader) ReadMessagePooled() (Message, []byte, error) {
	return r.readMessage(getFrame, true)
}

func (r *Reader) readMessage(alloc func(int) []byte, zc bool) (Message, []byte, error) {
	frame, more, err := r.readFrame(alloc)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (Message, []byte, error) {
		ReleaseFrame(frame)
		return nil, nil, err
	}
	if MsgType(frame[7]) == MsgFragment {
		return fail(ErrOrphanFrag)
	}
	for more {
		// Fragment continuations append past the pooled buffer's capacity;
		// the reallocation abandons it. Reassembly is the rare path — per
		// frame pooling is aimed at the steady single-frame case.
		frag, m, err := r.readFrame(getFrame)
		if err != nil {
			return fail(err)
		}
		if MsgType(frag[7]) != MsgFragment {
			ReleaseFrame(frag)
			return fail(fmt.Errorf("giop: expected Fragment, got %v", MsgType(frag[7])))
		}
		frame = append(frame, frag[HeaderLen:]...)
		ReleaseFrame(frag)
		more = m
	}
	frame[6] &^= flagMoreFrags
	patchSize(frame)
	m, err := unmarshal(frame, zc)
	if err != nil {
		return fail(err)
	}
	return m, frame, nil
}

func (r *Reader) readFrame(alloc func(int) []byte) (frame []byte, moreFrags bool, err error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		return nil, false, err
	}
	if string(r.hdr[0:4]) != "GIOP" {
		return nil, false, ErrBadMagic
	}
	if r.hdr[4] != 1 {
		return nil, false, ErrBadVersion
	}
	little := r.hdr[6]&flagLittleEndian != 0
	size := uint32(r.hdr[8])<<24 | uint32(r.hdr[9])<<16 | uint32(r.hdr[10])<<8 | uint32(r.hdr[11])
	if little {
		size = uint32(r.hdr[11])<<24 | uint32(r.hdr[10])<<16 | uint32(r.hdr[9])<<8 | uint32(r.hdr[8])
	}
	if size > MaxMessageSize {
		return nil, false, ErrTooLarge
	}
	frame = alloc(HeaderLen + int(size))
	copy(frame, r.hdr[:])
	if _, err := io.ReadFull(r.r, frame[HeaderLen:]); err != nil {
		return nil, false, err
	}
	return frame, r.hdr[6]&flagMoreFrags != 0, nil
}
