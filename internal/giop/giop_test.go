package giop

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cdr"
)

func sampleRequest() *Request {
	return &Request{
		RequestID:     77,
		ResponseFlags: ResponseExpected,
		ObjectKey:     []byte("group-42/replica-1"),
		Operation:     "deposit",
		Contexts: []ServiceContext{
			{ID: SvcFTRequest, Data: FTRequest{ClientID: "c1", RetentionID: 9, ExpirationTicks: 100}.Encode()},
			{ID: SvcOperationID, Data: OperationID{MsgSeq: 100, ParentSeq: 75, OpSeq: 4}.Encode()},
		},
		Body: []byte{1, 2, 3, 4, 5},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := sampleRequest()
	m, err := Unmarshal(Marshal(req))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	got, ok := m.(*Request)
	if !ok {
		t.Fatalf("got %T", m)
	}
	if got.RequestID != req.RequestID || got.Operation != req.Operation ||
		!bytes.Equal(got.ObjectKey, req.ObjectKey) || !bytes.Equal(got.Body, req.Body) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, req)
	}
	if len(got.Contexts) != 2 {
		t.Fatalf("contexts = %d", len(got.Contexts))
	}
	ft, err := DecodeFTRequest(FindContext(got.Contexts, SvcFTRequest))
	if err != nil || ft.ClientID != "c1" || ft.RetentionID != 9 {
		t.Errorf("FT_REQUEST = %+v, %v", ft, err)
	}
	op, err := DecodeOperationID(FindContext(got.Contexts, SvcOperationID))
	if err != nil || op.MsgSeq != 100 || op.ParentSeq != 75 || op.OpSeq != 4 {
		t.Errorf("OperationID = %+v, %v", op, err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	rep := &Reply{
		RequestID: 77,
		Status:    ReplyNoException,
		Contexts:  []ServiceContext{{ID: SvcFTGroupVersion, Data: FTGroupVersion{Version: 3}.Encode()}},
		Body:      []byte{9, 9, 9},
	}
	m, err := Unmarshal(Marshal(rep))
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Reply)
	if got.RequestID != 77 || got.Status != ReplyNoException || !bytes.Equal(got.Body, rep.Body) {
		t.Errorf("reply mismatch: %+v", got)
	}
	gv, err := DecodeFTGroupVersion(FindContext(got.Contexts, SvcFTGroupVersion))
	if err != nil || gv.Version != 3 {
		t.Errorf("group version = %+v, %v", gv, err)
	}
}

func TestAllMessageTypesRoundTrip(t *testing.T) {
	msgs := []Message{
		&Request{RequestID: 1, Operation: "op", ObjectKey: []byte("k")},
		&Reply{RequestID: 2, Status: ReplySystemException, Body: SystemException{RepoID: ExcCommFailure, Minor: 1, Completed: CompletedMaybe}.Encode()},
		&CancelRequest{RequestID: 3},
		&LocateRequest{RequestID: 4, ObjectKey: []byte("where")},
		&LocateReply{RequestID: 5, Status: LocateHere},
		&LocateReply{RequestID: 6, Status: LocateForward, Body: []byte("ref")},
		&CloseConnection{},
		&MessageError{},
	}
	for _, m := range msgs {
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		if reflect.TypeOf(got) != reflect.TypeOf(m) {
			t.Errorf("type changed: %T -> %T", m, got)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("GIO")); err != cdr.ErrTruncated {
		t.Errorf("short: %v", err)
	}
	bad := Marshal(&CancelRequest{RequestID: 1})
	bad[0] = 'X'
	if _, err := Unmarshal(bad); err != ErrBadMagic {
		t.Errorf("magic: %v", err)
	}
	bad2 := Marshal(&CancelRequest{RequestID: 1})
	bad2[4] = 9
	if _, err := Unmarshal(bad2); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	bad3 := Marshal(&CancelRequest{RequestID: 1})
	bad3[7] = 99
	if _, err := Unmarshal(bad3); err == nil {
		t.Error("bad type: want error")
	}
}

func TestStreamSingleFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	req := sampleRequest()
	if err := w.WriteMessage(req); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	m, err := r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(*Request); got.Operation != "deposit" {
		t.Errorf("operation = %q", got.Operation)
	}
}

func TestStreamFragmentation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.MaxFrame = 64 // force many fragments
	big := make([]byte, 1000)
	for i := range big {
		big[i] = byte(i)
	}
	req := &Request{RequestID: 5, Operation: "bulk", ObjectKey: []byte("k"), Body: big}
	if err := w.WriteMessage(req); err != nil {
		t.Fatal(err)
	}
	// More than one frame must have been emitted.
	if buf.Len() <= HeaderLen+64+len(big)-64 {
		t.Logf("stream length %d", buf.Len())
	}
	r := NewReader(&buf)
	m, err := r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Request)
	if !bytes.Equal(got.Body, big) {
		t.Fatalf("fragmented body corrupted: %d vs %d bytes", len(got.Body), len(big))
	}
	if got.RequestID != 5 || got.Operation != "bulk" {
		t.Errorf("header fields corrupted: %+v", got)
	}
}

func TestStreamMultipleMessages(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := uint32(0); i < 10; i++ {
		if err := w.WriteMessage(&CancelRequest{RequestID: i}); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i := uint32(0); i < 10; i++ {
		m, err := r.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if got := m.(*CancelRequest); got.RequestID != i {
			t.Fatalf("message %d: id %d", i, got.RequestID)
		}
	}
}

func TestOrphanFragmentRejected(t *testing.T) {
	e := cdr.NewEncoder(cdr.BigEndian)
	writeHeader(e, MsgFragment, 0, false)
	frame := e.Bytes()
	patchSize(frame)
	r := NewReader(bytes.NewReader(frame))
	if _, err := r.ReadMessage(); err != ErrOrphanFrag {
		t.Fatalf("got %v, want ErrOrphanFrag", err)
	}
}

func TestSystemExceptionRoundTrip(t *testing.T) {
	exc := SystemException{RepoID: ExcObjectNotExist, Minor: 2, Completed: CompletedNo}
	got, err := DecodeSystemException(exc.Encode(), cdr.BigEndian)
	if err != nil {
		t.Fatal(err)
	}
	if got != exc {
		t.Errorf("got %+v, want %+v", got, exc)
	}
	if exc.Error() == "" {
		t.Error("empty Error()")
	}
}

func TestOperationIDKeyEquality(t *testing.T) {
	// Duplicate invocations differ in MsgSeq but share the operation key —
	// the core of Eternal's duplicate suppression.
	a := OperationID{MsgSeq: 100, ParentSeq: 75, OpSeq: 5}
	b := OperationID{MsgSeq: 152, ParentSeq: 75, OpSeq: 5}
	if a.Key() != b.Key() {
		t.Error("duplicates must share operation key")
	}
	c := OperationID{MsgSeq: 100, ParentSeq: 75, OpSeq: 6}
	if a.Key() == c.Key() {
		t.Error("distinct operations must not share key")
	}
	if a.String() != "<100 75 5>" {
		t.Errorf("String = %q", a.String())
	}
}

func TestFTContextRoundTripQuick(t *testing.T) {
	f := func(client string, retention, exp, msgSeq, parentSeq uint64, opSeq, ver uint32) bool {
		client = sanitize(client)
		ft := FTRequest{ClientID: client, RetentionID: retention, ExpirationTicks: exp}
		gotFT, err := DecodeFTRequest(ft.Encode())
		if err != nil || gotFT != ft {
			return false
		}
		op := OperationID{MsgSeq: msgSeq, ParentSeq: parentSeq, OpSeq: opSeq}
		gotOp, err := DecodeOperationID(op.Encode())
		if err != nil || gotOp != op {
			return false
		}
		gv := FTGroupVersion{Version: ver}
		gotGV, err := DecodeFTGroupVersion(gv.Encode())
		return err == nil && gotGV == gv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] == 0 {
			b[i] = '_'
		}
	}
	return string(b)
}

func TestFindContextMissing(t *testing.T) {
	if FindContext(nil, SvcFTRequest) != nil {
		t.Error("want nil for missing context")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgRequest.String() != "Request" || MsgFragment.String() != "Fragment" {
		t.Error("names wrong")
	}
	if MsgType(200).String() == "" {
		t.Error("unknown type name empty")
	}
}
