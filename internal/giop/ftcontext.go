package giop

import (
	"fmt"

	"repro/internal/cdr"
)

// FTRequest is the FT_REQUEST service context body (FT-CORBA §23.2.7): a
// client-chosen identifier that is identical on every retransmission of a
// logically-same request, letting replicas detect and suppress duplicates
// and return the logged reply instead of re-executing.
type FTRequest struct {
	ClientID    string
	RetentionID uint64
	// ExpirationTicks bounds how long servers must remember the request for
	// duplicate detection (logical ticks of the infrastructure clock).
	ExpirationTicks uint64
}

// Encode renders the context body.
func (f FTRequest) Encode() []byte {
	return cdr.EncodeEncapsulation(cdr.BigEndian, func(e *cdr.Encoder) {
		e.WriteString(f.ClientID)
		e.WriteULongLong(f.RetentionID)
		e.WriteULongLong(f.ExpirationTicks)
	})
}

// DecodeFTRequest parses an FT_REQUEST context body.
func DecodeFTRequest(data []byte) (FTRequest, error) {
	var f FTRequest
	d, err := cdr.DecodeEncapsulation(data)
	if err != nil {
		return f, fmt.Errorf("giop: FT_REQUEST: %w", err)
	}
	if f.ClientID, err = d.ReadString(); err != nil {
		return f, fmt.Errorf("giop: FT_REQUEST client id: %w", err)
	}
	if f.RetentionID, err = d.ReadULongLong(); err != nil {
		return f, fmt.Errorf("giop: FT_REQUEST retention id: %w", err)
	}
	if f.ExpirationTicks, err = d.ReadULongLong(); err != nil {
		return f, fmt.Errorf("giop: FT_REQUEST expiration: %w", err)
	}
	return f, nil
}

// Key returns a map key identifying the logical request.
func (f FTRequest) Key() string {
	return fmt.Sprintf("%s/%d", f.ClientID, f.RetentionID)
}

// FTGroupVersion is the FT_GROUP_VERSION service context body: the group
// version the client believes it is talking to. A server whose group has
// moved on replies LOCATION_FORWARD with a fresh IOGR.
type FTGroupVersion struct {
	Version uint32
}

// Encode renders the context body.
func (f FTGroupVersion) Encode() []byte {
	return cdr.EncodeEncapsulation(cdr.BigEndian, func(e *cdr.Encoder) {
		e.WriteULong(f.Version)
	})
}

// DecodeFTGroupVersion parses an FT_GROUP_VERSION context body.
func DecodeFTGroupVersion(data []byte) (FTGroupVersion, error) {
	var f FTGroupVersion
	d, err := cdr.DecodeEncapsulation(data)
	if err != nil {
		return f, fmt.Errorf("giop: FT_GROUP_VERSION: %w", err)
	}
	if f.Version, err = d.ReadULong(); err != nil {
		return f, fmt.Errorf("giop: FT_GROUP_VERSION: %w", err)
	}
	return f, nil
}

// OperationID is the Eternal-style invocation identifier carried as a
// vendor service context. The triple distinguishes the *message* (which
// differs between redundant transmissions) from the *operation* (which is
// identical for duplicates):
//
//	MsgSeq    — total-order sequence number of the message carrying this
//	            invocation; differs between duplicate transmissions.
//	ParentSeq — sequence number of the message that invoked the parent
//	            operation (0 at the root of a nested chain).
//	OpSeq     — per-parent operation counter assigned by the invoking ORB.
//
// (ParentSeq, OpSeq) is the operation identifier: equal for duplicates,
// unique per logical operation.
type OperationID struct {
	MsgSeq    uint64
	ParentSeq uint64
	OpSeq     uint32
}

// OpKey identifies the logical operation regardless of which replica's
// message carried it.
type OpKey struct {
	ParentSeq uint64
	OpSeq     uint32
}

// Key returns the duplicate-detection key.
func (o OperationID) Key() OpKey { return OpKey{ParentSeq: o.ParentSeq, OpSeq: o.OpSeq} }

// Encode renders the context body.
func (o OperationID) Encode() []byte {
	return cdr.EncodeEncapsulation(cdr.BigEndian, func(e *cdr.Encoder) {
		e.WriteULongLong(o.MsgSeq)
		e.WriteULongLong(o.ParentSeq)
		e.WriteULong(o.OpSeq)
	})
}

// DecodeOperationID parses an OperationID context body.
func DecodeOperationID(data []byte) (OperationID, error) {
	var o OperationID
	d, err := cdr.DecodeEncapsulation(data)
	if err != nil {
		return o, fmt.Errorf("giop: OperationID: %w", err)
	}
	if o.MsgSeq, err = d.ReadULongLong(); err != nil {
		return o, fmt.Errorf("giop: OperationID msg seq: %w", err)
	}
	if o.ParentSeq, err = d.ReadULongLong(); err != nil {
		return o, fmt.Errorf("giop: OperationID parent seq: %w", err)
	}
	if o.OpSeq, err = d.ReadULong(); err != nil {
		return o, fmt.Errorf("giop: OperationID op seq: %w", err)
	}
	return o, nil
}

// String renders the identifier like the paper's figures: ⟨msg parent op⟩.
func (o OperationID) String() string {
	return fmt.Sprintf("<%d %d %d>", o.MsgSeq, o.ParentSeq, o.OpSeq)
}

// SystemException is the GIOP encoding of a CORBA system exception reply.
type SystemException struct {
	RepoID    string // e.g. "IDL:omg.org/CORBA/COMM_FAILURE:1.0"
	Minor     uint32
	Completed uint32 // 0 = YES, 1 = NO, 2 = MAYBE
}

// Completion status values.
const (
	CompletedYes   uint32 = 0
	CompletedNo    uint32 = 1
	CompletedMaybe uint32 = 2
)

// Well-known system exception repository ids used by the infrastructure.
const (
	ExcCommFailure    = "IDL:omg.org/CORBA/COMM_FAILURE:1.0"
	ExcObjectNotExist = "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0"
	ExcBadOperation   = "IDL:omg.org/CORBA/BAD_OPERATION:1.0"
	ExcTransient      = "IDL:omg.org/CORBA/TRANSIENT:1.0"
	ExcNoResponse     = "IDL:omg.org/CORBA/NO_RESPONSE:1.0"
	ExcInternal       = "IDL:omg.org/CORBA/INTERNAL:1.0"
)

// Error implements the error interface so exceptions flow through Go code.
func (s SystemException) Error() string {
	return fmt.Sprintf("system exception %s (minor %d, completed %d)", s.RepoID, s.Minor, s.Completed)
}

// Encode renders the exception as a reply body.
func (s SystemException) Encode() []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteString(s.RepoID)
	e.WriteULong(s.Minor)
	e.WriteULong(s.Completed)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// DecodeSystemException parses a system exception reply body.
func DecodeSystemException(body []byte, order byte) (SystemException, error) {
	var s SystemException
	d := cdr.NewDecoder(body, order)
	var err error
	if s.RepoID, err = d.ReadString(); err != nil {
		return s, fmt.Errorf("giop: exception repo id: %w", err)
	}
	if s.Minor, err = d.ReadULong(); err != nil {
		return s, fmt.Errorf("giop: exception minor: %w", err)
	}
	if s.Completed, err = d.ReadULong(); err != nil {
		return s, fmt.Errorf("giop: exception completed: %w", err)
	}
	return s, nil
}
