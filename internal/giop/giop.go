// Package giop implements a General Inter-ORB Protocol (GIOP) style message
// layer: the request/reply framing that IIOP carries over TCP.
//
// The layout follows GIOP 1.2: a 12-byte header (magic, version, flags,
// message type, body size) followed by a CDR body whose alignment is
// computed from the start of the message. Requests and replies carry
// service contexts — the extension point FT-CORBA uses to piggyback fault
// tolerance metadata (FT_REQUEST request identifiers for duplicate
// detection, FT_GROUP_VERSION for stale-reference detection) on every
// invocation, which is exactly how the systems behind the paper keep the
// application unaware of replication.
//
// Large messages can be split into Fragment messages; the stream reader
// reassembles them transparently.
package giop

import (
	"errors"
	"fmt"

	"repro/internal/cdr"
)

// MsgType enumerates GIOP message types.
type MsgType uint8

// GIOP message types (GIOP 1.2 numbering).
const (
	MsgRequest MsgType = iota
	MsgReply
	MsgCancelRequest
	MsgLocateRequest
	MsgLocateReply
	MsgCloseConnection
	MsgMessageError
	MsgFragment
)

var msgTypeNames = [...]string{
	"Request", "Reply", "CancelRequest", "LocateRequest",
	"LocateReply", "CloseConnection", "MessageError", "Fragment",
}

// String names the message type.
func (t MsgType) String() string {
	if int(t) < len(msgTypeNames) {
		return msgTypeNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Header flags.
const (
	flagLittleEndian = 0x01
	flagMoreFrags    = 0x02
)

// HeaderLen is the fixed GIOP header size.
const HeaderLen = 12

// DefaultMaxFrame is the default largest single GIOP frame emitted by
// WriteMessage before fragmentation kicks in. Readers accept frames up to
// MaxMessageSize regardless.
const DefaultMaxFrame = 1 << 16

// MaxMessageSize bounds accepted message bodies (defensive).
const MaxMessageSize = 1 << 28

// Reply status values (GIOP ReplyStatusType).
const (
	ReplyNoException     uint32 = 0
	ReplyUserException   uint32 = 1
	ReplySystemException uint32 = 2
	ReplyLocationForward uint32 = 3
)

// Response flags for requests.
const (
	ResponseNone     byte = 0x00 // oneway, no reply at all
	ResponseExpected byte = 0x03 // normal twoway
)

// Service context identifiers. FTGroupVersion and FTRequest are the OMG
// FT-CORBA assignments; OperationID is a vendor-range context carrying the
// Eternal-style (parent, op) identifier used for duplicate suppression in
// nested invocations.
const (
	SvcFTGroupVersion uint32 = 12
	SvcFTRequest      uint32 = 13
	SvcOperationID    uint32 = 0x52455001 // vendor range: 'R','E','P',1
)

// Errors produced by the message layer.
var (
	ErrBadMagic   = errors.New("giop: bad magic")
	ErrBadVersion = errors.New("giop: unsupported GIOP version")
	ErrTooLarge   = errors.New("giop: message exceeds size limit")
	ErrBadType    = errors.New("giop: unknown message type")
	ErrOrphanFrag = errors.New("giop: fragment without preceding message")
)

// ServiceContext is one tagged blob in a request/reply header.
type ServiceContext struct {
	ID   uint32
	Data []byte
}

// FindContext returns the first context with the given id, or nil.
func FindContext(ctxs []ServiceContext, id uint32) []byte {
	for _, c := range ctxs {
		if c.ID == id {
			return c.Data
		}
	}
	return nil
}

// Request is a GIOP Request message.
type Request struct {
	RequestID     uint32
	ResponseFlags byte
	ObjectKey     []byte
	Operation     string
	Contexts      []ServiceContext
	Body          []byte // CDR-encoded argument list
}

// Reply is a GIOP Reply message.
type Reply struct {
	RequestID uint32
	Status    uint32
	Contexts  []ServiceContext
	Body      []byte // result values, exception, or forwarded IOR
}

// CancelRequest asks the server to abandon a pending request.
type CancelRequest struct {
	RequestID uint32
}

// LocateRequest asks whether an object key is served here.
type LocateRequest struct {
	RequestID uint32
	ObjectKey []byte
}

// LocateReply statuses.
const (
	LocateUnknown uint32 = 0
	LocateHere    uint32 = 1
	LocateForward uint32 = 2
)

// LocateReply answers a LocateRequest.
type LocateReply struct {
	RequestID uint32
	Status    uint32
	Body      []byte // forwarded IOR when Status == LocateForward
}

// CloseConnection is an orderly shutdown notice.
type CloseConnection struct{}

// MessageError reports a protocol violation to the peer.
type MessageError struct{}

// Message is implemented by all GIOP message kinds.
type Message interface {
	msgType() MsgType
	encodeBody(e *cdr.Encoder)
}

func (*Request) msgType() MsgType         { return MsgRequest }
func (*Reply) msgType() MsgType           { return MsgReply }
func (*CancelRequest) msgType() MsgType   { return MsgCancelRequest }
func (*LocateRequest) msgType() MsgType   { return MsgLocateRequest }
func (*LocateReply) msgType() MsgType     { return MsgLocateReply }
func (*CloseConnection) msgType() MsgType { return MsgCloseConnection }
func (*MessageError) msgType() MsgType    { return MsgMessageError }

func encodeContexts(e *cdr.Encoder, ctxs []ServiceContext) {
	e.WriteULong(uint32(len(ctxs)))
	for _, c := range ctxs {
		e.WriteULong(c.ID)
		e.WriteOctetSeq(c.Data)
	}
}

func decodeContexts(d *cdr.Decoder) ([]ServiceContext, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if n > 4096 {
		return nil, fmt.Errorf("giop: implausible service context count %d", n)
	}
	ctxs := make([]ServiceContext, 0, n)
	for i := uint32(0); i < n; i++ {
		var c ServiceContext
		if c.ID, err = d.ReadULong(); err != nil {
			return nil, err
		}
		if c.Data, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		ctxs = append(ctxs, c)
	}
	return ctxs, nil
}

func (m *Request) encodeBody(e *cdr.Encoder) {
	e.WriteULong(m.RequestID)
	e.WriteOctet(m.ResponseFlags)
	e.WriteRaw([]byte{0, 0, 0}) // reserved
	// Target: KeyAddr addressing disposition.
	e.WriteUShort(0)
	e.WriteOctetSeq(m.ObjectKey)
	e.WriteString(m.Operation)
	encodeContexts(e, m.Contexts)
	if len(m.Body) > 0 {
		e.Align(8) // GIOP 1.2 bodies are 8-aligned
		e.WriteRaw(m.Body)
	}
}

func (m *Reply) encodeBody(e *cdr.Encoder) {
	e.WriteULong(m.RequestID)
	e.WriteULong(m.Status)
	encodeContexts(e, m.Contexts)
	if len(m.Body) > 0 {
		e.Align(8)
		e.WriteRaw(m.Body)
	}
}

func (m *CancelRequest) encodeBody(e *cdr.Encoder) { e.WriteULong(m.RequestID) }

func (m *LocateRequest) encodeBody(e *cdr.Encoder) {
	e.WriteULong(m.RequestID)
	e.WriteUShort(0) // KeyAddr
	e.WriteOctetSeq(m.ObjectKey)
}

func (m *LocateReply) encodeBody(e *cdr.Encoder) {
	e.WriteULong(m.RequestID)
	e.WriteULong(m.Status)
	if len(m.Body) > 0 {
		e.Align(8)
		e.WriteRaw(m.Body)
	}
}

func (*CloseConnection) encodeBody(*cdr.Encoder) {}
func (*MessageError) encodeBody(*cdr.Encoder)    {}

// Marshal encodes a complete single-frame GIOP message. The frame is
// marshalled directly into a single buffer whose size field is patched in
// place — no build-then-copy pass — and ownership of the buffer passes to
// the caller.
func Marshal(m Message) []byte {
	e := cdr.GetEncoder(cdr.BigEndian)
	e.Grow(HeaderLen + sizeHint(m))
	writeHeader(e, m.msgType(), 0, false)
	m.encodeBody(e)
	buf := e.TakeBytes()
	e.Release()
	patchSize(buf)
	return buf
}

// sizeHint estimates the encoded body size so Marshal can reserve the frame
// in one allocation; the constants cover headers, service contexts, and
// alignment padding for typical messages.
func sizeHint(m Message) int {
	switch v := m.(type) {
	case *Request:
		n := len(v.Body) + len(v.ObjectKey) + len(v.Operation) + 64
		for _, c := range v.Contexts {
			n += len(c.Data) + 16
		}
		return n
	case *Reply:
		n := len(v.Body) + 32
		for _, c := range v.Contexts {
			n += len(c.Data) + 16
		}
		return n
	default:
		return 96
	}
}

func writeHeader(e *cdr.Encoder, t MsgType, flags byte, moreFrags bool) {
	e.WriteRaw([]byte{'G', 'I', 'O', 'P', 1, 2})
	if moreFrags {
		flags |= flagMoreFrags
	}
	e.WriteOctet(flags)
	e.WriteOctet(byte(t))
	e.WriteULong(0) // size, patched later
}

func patchSize(buf []byte) {
	size := uint32(len(buf) - HeaderLen)
	buf[8] = byte(size >> 24)
	buf[9] = byte(size >> 16)
	buf[10] = byte(size >> 8)
	buf[11] = byte(size)
}

// Unmarshal decodes a single complete frame produced by Marshal. Fragmented
// streams must go through Reader instead. The decoded message owns copies
// of its byte fields and is safe to retain past the frame.
func Unmarshal(frame []byte) (Message, error) {
	return unmarshal(frame, false)
}

// unmarshal decodes a frame; with zc the message's byte fields (Body,
// ObjectKey, service context data) are views into frame and die with it —
// the pooled read path pairs this with ReleaseFrame.
func unmarshal(frame []byte, zc bool) (Message, error) {
	if len(frame) < HeaderLen {
		return nil, cdr.ErrTruncated
	}
	if string(frame[0:4]) != "GIOP" {
		return nil, ErrBadMagic
	}
	if frame[4] != 1 {
		return nil, ErrBadVersion
	}
	little := frame[6]&flagLittleEndian != 0
	order := byte(cdr.BigEndian)
	if little {
		order = cdr.LittleEndian
	}
	t := MsgType(frame[7])
	d := cdr.NewDecoder(frame, order)
	d.SetZeroCopy(zc)
	if _, err := d.ReadRaw(HeaderLen); err != nil {
		return nil, err
	}
	return decodeBody(t, d)
}

func decodeBody(t MsgType, d *cdr.Decoder) (Message, error) {
	switch t {
	case MsgRequest:
		m := &Request{}
		var err error
		if m.RequestID, err = d.ReadULong(); err != nil {
			return nil, fmt.Errorf("giop: request id: %w", err)
		}
		if m.ResponseFlags, err = d.ReadOctet(); err != nil {
			return nil, fmt.Errorf("giop: response flags: %w", err)
		}
		if _, err = d.ReadRaw(3); err != nil {
			return nil, fmt.Errorf("giop: reserved: %w", err)
		}
		if _, err = d.ReadUShort(); err != nil { // addressing disposition
			return nil, fmt.Errorf("giop: target disposition: %w", err)
		}
		if m.ObjectKey, err = d.ReadOctetSeq(); err != nil {
			return nil, fmt.Errorf("giop: object key: %w", err)
		}
		if m.Operation, err = d.ReadString(); err != nil {
			return nil, fmt.Errorf("giop: operation: %w", err)
		}
		if m.Contexts, err = decodeContexts(d); err != nil {
			return nil, fmt.Errorf("giop: contexts: %w", err)
		}
		if d.Remaining() > 0 {
			if err = d.Align(8); err != nil {
				return nil, err
			}
			m.Body, err = d.ReadRaw(d.Remaining())
			if err != nil {
				return nil, err
			}
		}
		return m, nil
	case MsgReply:
		m := &Reply{}
		var err error
		if m.RequestID, err = d.ReadULong(); err != nil {
			return nil, fmt.Errorf("giop: reply id: %w", err)
		}
		if m.Status, err = d.ReadULong(); err != nil {
			return nil, fmt.Errorf("giop: reply status: %w", err)
		}
		if m.Contexts, err = decodeContexts(d); err != nil {
			return nil, fmt.Errorf("giop: contexts: %w", err)
		}
		if d.Remaining() > 0 {
			if err = d.Align(8); err != nil {
				return nil, err
			}
			m.Body, err = d.ReadRaw(d.Remaining())
			if err != nil {
				return nil, err
			}
		}
		return m, nil
	case MsgCancelRequest:
		m := &CancelRequest{}
		var err error
		if m.RequestID, err = d.ReadULong(); err != nil {
			return nil, err
		}
		return m, nil
	case MsgLocateRequest:
		m := &LocateRequest{}
		var err error
		if m.RequestID, err = d.ReadULong(); err != nil {
			return nil, err
		}
		if _, err = d.ReadUShort(); err != nil {
			return nil, err
		}
		if m.ObjectKey, err = d.ReadOctetSeq(); err != nil {
			return nil, err
		}
		return m, nil
	case MsgLocateReply:
		m := &LocateReply{}
		var err error
		if m.RequestID, err = d.ReadULong(); err != nil {
			return nil, err
		}
		if m.Status, err = d.ReadULong(); err != nil {
			return nil, err
		}
		if d.Remaining() > 0 {
			if err = d.Align(8); err != nil {
				return nil, err
			}
			m.Body, err = d.ReadRaw(d.Remaining())
			if err != nil {
				return nil, err
			}
		}
		return m, nil
	case MsgCloseConnection:
		return &CloseConnection{}, nil
	case MsgMessageError:
		return &MessageError{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, uint8(t))
	}
}
