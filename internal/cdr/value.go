package cdr

import (
	"errors"
	"fmt"
)

// Kind identifies the dynamic type of a Value, a simplified analogue of a
// CORBA TypeCode. Request and reply bodies are sequences of tagged Values so
// the infrastructure can marshal invocations without generated stubs.
type Kind uint8

// Supported value kinds. The set covers what the examples, experiments, and
// the FT infrastructure itself (state blobs, identifiers) need.
const (
	KindVoid Kind = iota + 1
	KindBool
	KindOctet
	KindShort
	KindUShort
	KindLong
	KindULong
	KindLongLong
	KindULongLong
	KindFloat
	KindDouble
	KindString
	KindOctetSeq
	KindSeq // sequence<Value>
)

var kindNames = map[Kind]string{
	KindVoid:      "void",
	KindBool:      "boolean",
	KindOctet:     "octet",
	KindShort:     "short",
	KindUShort:    "ushort",
	KindLong:      "long",
	KindULong:     "ulong",
	KindLongLong:  "longlong",
	KindULongLong: "ulonglong",
	KindFloat:     "float",
	KindDouble:    "double",
	KindString:    "string",
	KindOctetSeq:  "sequence<octet>",
	KindSeq:       "sequence<any>",
}

// String returns the IDL-ish name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrBadKind reports an unknown kind tag in marshaled data.
var ErrBadKind = errors.New("cdr: unknown value kind")

// Value is a self-describing datum: one wire-typed field is valid according
// to Kind. Values are small and passed by value.
type Value struct {
	Kind  Kind
	Bool  bool
	U64   uint64 // octet, ushort, ulong, ulonglong and signed widths (two's complement)
	F64   float64
	Str   string
	Bytes []byte
	Seq   []Value
}

// Constructors for each kind.

// Void returns the void value (used for result-less replies).
func Void() Value { return Value{Kind: KindVoid} }

// Bool wraps a boolean.
func Bool(v bool) Value { return Value{Kind: KindBool, Bool: v} }

// Octet wraps a byte.
func Octet(v byte) Value { return Value{Kind: KindOctet, U64: uint64(v)} }

// Short wraps an int16.
func Short(v int16) Value { return Value{Kind: KindShort, U64: uint64(uint16(v))} }

// UShort wraps a uint16.
func UShort(v uint16) Value { return Value{Kind: KindUShort, U64: uint64(v)} }

// Long wraps an int32.
func Long(v int32) Value { return Value{Kind: KindLong, U64: uint64(uint32(v))} }

// ULong wraps a uint32.
func ULong(v uint32) Value { return Value{Kind: KindULong, U64: uint64(v)} }

// LongLong wraps an int64.
func LongLong(v int64) Value { return Value{Kind: KindLongLong, U64: uint64(v)} }

// ULongLong wraps a uint64.
func ULongLong(v uint64) Value { return Value{Kind: KindULongLong, U64: v} }

// Float wraps a float32.
func Float(v float32) Value { return Value{Kind: KindFloat, F64: float64(v)} }

// Double wraps a float64.
func Double(v float64) Value { return Value{Kind: KindDouble, F64: v} }

// String wraps a string.
func Str(v string) Value { return Value{Kind: KindString, Str: v} }

// OctetSeq wraps a byte slice. The slice is referenced, not copied.
func OctetSeq(v []byte) Value { return Value{Kind: KindOctetSeq, Bytes: v} }

// Seq wraps a sequence of values. The slice is referenced, not copied.
func Seq(v ...Value) Value { return Value{Kind: KindSeq, Seq: v} }

// Accessors with two's-complement reinterpretation for signed kinds.

// AsBool returns the boolean payload.
func (v Value) AsBool() bool { return v.Bool }

// AsOctet returns the octet payload.
func (v Value) AsOctet() byte { return byte(v.U64) }

// AsShort returns the short payload.
func (v Value) AsShort() int16 { return int16(uint16(v.U64)) }

// AsUShort returns the unsigned short payload.
func (v Value) AsUShort() uint16 { return uint16(v.U64) }

// AsLong returns the long payload.
func (v Value) AsLong() int32 { return int32(uint32(v.U64)) }

// AsULong returns the unsigned long payload.
func (v Value) AsULong() uint32 { return uint32(v.U64) }

// AsLongLong returns the long long payload.
func (v Value) AsLongLong() int64 { return int64(v.U64) }

// AsULongLong returns the unsigned long long payload.
func (v Value) AsULongLong() uint64 { return v.U64 }

// AsFloat returns the float payload.
func (v Value) AsFloat() float32 { return float32(v.F64) }

// AsDouble returns the double payload.
func (v Value) AsDouble() float64 { return v.F64 }

// AsString returns the string payload.
func (v Value) AsString() string { return v.Str }

// AsOctetSeq returns the byte-sequence payload without copying.
func (v Value) AsOctetSeq() []byte { return v.Bytes }

// AsSeq returns the nested sequence without copying.
func (v Value) AsSeq() []Value { return v.Seq }

// Equal reports deep equality of two values (used by tests and voting).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindVoid:
		return true
	case KindBool:
		return v.Bool == o.Bool
	case KindFloat, KindDouble:
		return v.F64 == o.F64
	case KindString:
		return v.Str == o.Str
	case KindOctetSeq:
		if len(v.Bytes) != len(o.Bytes) {
			return false
		}
		for i := range v.Bytes {
			if v.Bytes[i] != o.Bytes[i] {
				return false
			}
		}
		return true
	case KindSeq:
		if len(v.Seq) != len(o.Seq) {
			return false
		}
		for i := range v.Seq {
			if !v.Seq[i].Equal(o.Seq[i]) {
				return false
			}
		}
		return true
	default:
		return v.U64 == o.U64
	}
}

// String renders the value for logs and error messages.
func (v Value) String() string {
	switch v.Kind {
	case KindVoid:
		return "void"
	case KindBool:
		return fmt.Sprintf("%t", v.Bool)
	case KindFloat, KindDouble:
		return fmt.Sprintf("%g", v.F64)
	case KindString:
		return fmt.Sprintf("%q", v.Str)
	case KindOctetSeq:
		return fmt.Sprintf("octets[%d]", len(v.Bytes))
	case KindSeq:
		return fmt.Sprintf("seq[%d]", len(v.Seq))
	case KindShort:
		return fmt.Sprintf("%d", v.AsShort())
	case KindLong:
		return fmt.Sprintf("%d", v.AsLong())
	case KindLongLong:
		return fmt.Sprintf("%d", v.AsLongLong())
	default:
		return fmt.Sprintf("%d", v.U64)
	}
}

// EncodeValue writes the kind tag followed by the payload.
func EncodeValue(e *Encoder, v Value) {
	e.WriteOctet(byte(v.Kind))
	switch v.Kind {
	case KindVoid:
	case KindBool:
		e.WriteBool(v.Bool)
	case KindOctet:
		e.WriteOctet(byte(v.U64))
	case KindShort, KindUShort:
		e.WriteUShort(uint16(v.U64))
	case KindLong, KindULong:
		e.WriteULong(uint32(v.U64))
	case KindLongLong, KindULongLong:
		e.WriteULongLong(v.U64)
	case KindFloat:
		e.WriteFloat(float32(v.F64))
	case KindDouble:
		e.WriteDouble(v.F64)
	case KindString:
		e.WriteString(v.Str)
	case KindOctetSeq:
		e.WriteOctetSeq(v.Bytes)
	case KindSeq:
		e.WriteULong(uint32(len(v.Seq)))
		for _, elem := range v.Seq {
			EncodeValue(e, elem)
		}
	default:
		// Encoding an invalid kind is a programming error in the caller;
		// emit void so the stream stays decodable.
		e.buf[len(e.buf)-1] = byte(KindVoid)
	}
}

// DecodeValue reads one tagged value.
func DecodeValue(d *Decoder) (Value, error) {
	tag, err := d.ReadOctet()
	if err != nil {
		return Value{}, err
	}
	k := Kind(tag)
	switch k {
	case KindVoid:
		return Void(), nil
	case KindBool:
		b, err := d.ReadBool()
		return Bool(b), err
	case KindOctet:
		b, err := d.ReadOctet()
		return Octet(b), err
	case KindShort:
		v, err := d.ReadShort()
		return Short(v), err
	case KindUShort:
		v, err := d.ReadUShort()
		return UShort(v), err
	case KindLong:
		v, err := d.ReadLong()
		return Long(v), err
	case KindULong:
		v, err := d.ReadULong()
		return ULong(v), err
	case KindLongLong:
		v, err := d.ReadLongLong()
		return LongLong(v), err
	case KindULongLong:
		v, err := d.ReadULongLong()
		return ULongLong(v), err
	case KindFloat:
		v, err := d.ReadFloat()
		return Float(v), err
	case KindDouble:
		v, err := d.ReadDouble()
		return Double(v), err
	case KindString:
		v, err := d.ReadString()
		return Str(v), err
	case KindOctetSeq:
		v, err := d.ReadOctetSeq()
		return OctetSeq(v), err
	case KindSeq:
		n, err := d.ReadULong()
		if err != nil {
			return Value{}, err
		}
		if n > MaxSeqLen {
			return Value{}, ErrSeqTooLong
		}
		seq := make([]Value, 0, n)
		for i := uint32(0); i < n; i++ {
			elem, err := DecodeValue(d)
			if err != nil {
				return Value{}, err
			}
			seq = append(seq, elem)
		}
		return Value{Kind: KindSeq, Seq: seq}, nil
	default:
		return Value{}, fmt.Errorf("%w: tag %d", ErrBadKind, tag)
	}
}

// EncodeValues writes a counted sequence of values (a request body).
func EncodeValues(e *Encoder, vs []Value) {
	e.WriteULong(uint32(len(vs)))
	for _, v := range vs {
		EncodeValue(e, v)
	}
}

// DecodeValues reads a counted sequence of values.
func DecodeValues(d *Decoder) ([]Value, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if n > MaxSeqLen {
		return nil, ErrSeqTooLong
	}
	vs := make([]Value, 0, n)
	for i := uint32(0); i < n; i++ {
		v, err := DecodeValue(d)
		if err != nil {
			return nil, err
		}
		vs = append(vs, v)
	}
	return vs, nil
}
